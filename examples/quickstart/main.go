// Quickstart: the minimal end-to-end LEAPME flow on a small generated
// camera dataset — train domain embeddings, generate multi-source data,
// train the matcher on some sources, and match the properties of the
// held-out sources.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"sort"

	"leapme"
)

func main() {
	// 1. Embeddings. The paper uses pre-trained GloVe; this repository
	// trains GloVe on a generated product-domain corpus instead (see
	// DESIGN.md for why that preserves the behaviour LEAPME needs).
	fmt.Println("training domain embeddings...")
	spec := leapme.DefaultEmbeddingSpec()
	spec.Categories = []string{"cameras"}
	store, err := leapme.TrainDomainEmbeddings(spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %d words, %d dimensions\n", store.Size(), store.Dim())

	// A taste of what the embeddings learned: nearest neighbours of a
	// camera term.
	fmt.Println("  nearest to \"megapixels\":")
	for _, n := range store.Nearest("megapixels", 3) {
		fmt.Printf("    %-12s %.3f\n", n.Word, n.Sim)
	}

	// 2. Data: a 6-source camera dataset with heterogeneous property
	// names and value formats.
	cfg := leapme.CamerasLite(1)
	cfg.NumSources = 6
	data, err := leapme.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	s := data.Summary()
	fmt.Printf("generated %q: %d sources, %d properties, %d matching pairs\n",
		data.Name, s.Sources, s.Properties, s.MatchingPairs)

	// 3. Matcher: paper defaults (dense net 128/64, staged LR schedule).
	m, err := leapme.NewMatcher(store, leapme.DefaultOptions(1))
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	if err := m.ComputeFeatures(ctx, data); err != nil {
		log.Fatal(err)
	}

	// 4. Train on four sources (positives from ground truth, two random
	// negatives per positive — the paper's regime).
	trainSrc := map[string]bool{"source00": true, "source01": true, "source02": true, "source03": true}
	testSrc := map[string]bool{"source04": true, "source05": true}
	pairs := leapme.TrainingPairs(data.PropsOfSources(trainSrc), 2, rand.New(rand.NewSource(1)))
	fmt.Printf("training on %d labeled pairs...\n", len(pairs))
	if _, err := m.Train(ctx, pairs); err != nil {
		log.Fatal(err)
	}

	// 5. Match the held-out sources.
	matches, err := m.Matches(ctx, data.PropsOfSources(testSrc))
	if err != nil {
		log.Fatal(err)
	}
	sort.Slice(matches, func(i, j int) bool { return matches[i].Score > matches[j].Score })
	fmt.Printf("found %d matches; top 10:\n", len(matches))
	for i, sp := range matches {
		if i >= 10 {
			break
		}
		fmt.Printf("  %.3f  %-38s ~ %s\n", sp.Score, sp.A, sp.B)
	}
}
