// Customdata: matching your own data with LEAPME — the deployment
// workflow. It builds a dataset from raw (source, entity, property,
// value) tuples via FromInstances, labels a handful of pairs by hand,
// trains, saves the model to disk, reloads it into a fresh matcher and
// scores unlabeled pairs.
//
// Run with:
//
//	go run ./examples/customdata
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"

	"leapme"
	"leapme/internal/dataset"
)

func main() {
	// Raw instance tuples as they might arrive from two scraped shops
	// and an internal catalog. No schema, no alignment — just values.
	tuples := []leapme.Instance{
		// shopA uses terse names and bare numbers.
		{Source: "shopA", Entity: "a1", Property: "mp", Value: "24.2"},
		{Source: "shopA", Entity: "a1", Property: "weight", Value: "455 g"},
		{Source: "shopA", Entity: "a1", Property: "price", Value: "$1,299.00"},
		{Source: "shopA", Entity: "a2", Property: "mp", Value: "45.7"},
		{Source: "shopA", Entity: "a2", Property: "weight", Value: "915 g"},
		{Source: "shopA", Entity: "a2", Property: "price", Value: "$2,999.99"},
		// shopB spells everything out.
		{Source: "shopB", Entity: "b1", Property: "camera resolution", Value: "24 megapixels"},
		{Source: "shopB", Entity: "b1", Property: "body weight", Value: "0.45 kg"},
		{Source: "shopB", Entity: "b1", Property: "retail price", Value: "1299 USD"},
		{Source: "shopB", Entity: "b2", Property: "camera resolution", Value: "61 megapixels"},
		{Source: "shopB", Entity: "b2", Property: "body weight", Value: "0.9 kg"},
		{Source: "shopB", Entity: "b2", Property: "retail price", Value: "3499 USD"},
		// catalog uses snake_case.
		{Source: "catalog", Entity: "c1", Property: "effective_pixels", Value: "24 MP"},
		{Source: "catalog", Entity: "c1", Property: "mass", Value: "450 grams"},
		{Source: "catalog", Entity: "c1", Property: "msrp", Value: "€1199"},
		{Source: "catalog", Entity: "c2", Property: "shutter_speed", Value: "30-1/8000 s"},
	}
	data, err := leapme.FromInstances("shops", "cameras", tuples)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %d sources, %d properties, %d instances\n",
		len(data.Sources), len(data.Props), len(data.Instances))

	fmt.Println("training embeddings...")
	spec := leapme.DefaultEmbeddingSpec()
	spec.Categories = []string{"cameras"}
	store, err := leapme.TrainDomainEmbeddings(spec)
	if err != nil {
		log.Fatal(err)
	}

	m, err := leapme.NewMatcher(store, leapme.DefaultOptions(1))
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	if err := m.ComputeFeatures(ctx, data); err != nil {
		log.Fatal(err)
	}

	// Hand-labeled pairs: in a real integration these come from a domain
	// expert or an existing partial alignment.
	key := func(src, name string) leapme.Key { return leapme.Key{Source: src, Name: name} }
	labeled := []leapme.LabeledPair{
		{A: key("shopA", "mp"), B: key("shopB", "camera resolution"), Match: true},
		{A: key("shopA", "weight"), B: key("shopB", "body weight"), Match: true},
		{A: key("shopA", "price"), B: key("shopB", "retail price"), Match: true},
		{A: key("shopA", "mp"), B: key("shopB", "body weight"), Match: false},
		{A: key("shopA", "mp"), B: key("shopB", "retail price"), Match: false},
		{A: key("shopA", "weight"), B: key("shopB", "retail price"), Match: false},
		{A: key("shopA", "weight"), B: key("shopB", "camera resolution"), Match: false},
		{A: key("shopA", "price"), B: key("shopB", "camera resolution"), Match: false},
		{A: key("shopA", "price"), B: key("shopB", "body weight"), Match: false},
	}
	if _, err := m.Train(ctx, labeled); err != nil {
		log.Fatal(err)
	}

	// Persist the trained model...
	dir, err := os.MkdirTemp("", "leapme-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	modelPath := filepath.Join(dir, "matcher.model")
	mf, err := os.Create(modelPath)
	if err != nil {
		log.Fatal(err)
	}
	if err := m.WriteModel(mf); err != nil {
		log.Fatal(err)
	}
	mf.Close()
	fmt.Println("model saved to", modelPath)

	// ...and load it into a fresh matcher, as a serving process would.
	served, err := leapme.NewMatcher(store, leapme.DefaultOptions(1))
	if err != nil {
		log.Fatal(err)
	}
	if err := served.ComputeFeatures(ctx, data); err != nil {
		log.Fatal(err)
	}
	rf, err := os.Open(modelPath)
	if err != nil {
		log.Fatal(err)
	}
	if err := served.ReadModel(rf); err != nil {
		log.Fatal(err)
	}
	rf.Close()

	// Score the catalog's unlabeled properties against both shops.
	fmt.Println("\ncatalog property matches:")
	var scored []leapme.ScoredPair
	err = served.MatchWhere(ctx, data.Props,
		func(a, b dataset.Property) bool { return a.Source == "catalog" || b.Source == "catalog" },
		func(sp leapme.ScoredPair) { scored = append(scored, sp) })
	if err != nil {
		log.Fatal(err)
	}
	sort.Slice(scored, func(i, j int) bool { return scored[i].Score > scored[j].Score })
	for _, sp := range scored {
		marker := " "
		if sp.Match {
			marker = "✓"
		}
		fmt.Printf("  %s %.3f  %-28s ~ %s\n", marker, sp.Score, sp.A, sp.B)
	}
}
