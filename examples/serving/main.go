// Serving: matching as a service. Trains a small model, saves it the way
// `leapme train` does, serves it over HTTP with the same engine as
// cmd/leapme-serve, and then acts as a client: scoring pairs, matching
// whole sources, hot-swapping a retrained model version, and reading the
// metrics — all against a real localhost listener.
//
// Run with:
//
//	go run ./examples/serving
//
// Against a standalone server (leapme-serve) the client half is the same
// code pointed at its address.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"

	"leapme"
)

func main() {
	// 1. Train and save a model — what `leapme embed` + `leapme train` do.
	fmt.Println("training embeddings and matcher...")
	spec := leapme.DefaultEmbeddingSpec()
	spec.Categories = []string{"cameras"}
	store, err := leapme.TrainDomainEmbeddings(spec)
	if err != nil {
		log.Fatal(err)
	}
	data, err := leapme.Generate(leapme.CamerasLite(1))
	if err != nil {
		log.Fatal(err)
	}
	dir, err := os.MkdirTemp("", "leapme-serving")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	modelPath := filepath.Join(dir, "model.leapme")
	saveModel(store, data, modelPath, 1)
	info, err := leapme.LoadModelInfo(modelPath)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("saved model: %v\n", info)

	// 2. Serve it. cmd/leapme-serve wraps exactly this with flags and
	// signal handling; here a test listener keeps the example local.
	srv, err := leapme.NewMatchServer(leapme.ServeConfig{
		Store:  store,
		Models: []leapme.ModelSource{{Name: "cameras", Path: modelPath}},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	fmt.Printf("serving on %s\n\n", ts.URL)

	// 3. Score explicit pairs: POST /v1/match.
	fmt.Println("POST /v1/match")
	resp := post(ts.URL+"/v1/match", map[string]any{
		"pairs": []map[string]any{
			{
				"a": map[string]any{"name": "resolution", "values": []string{"20 mp", "24 mp"}},
				"b": map[string]any{"name": "sensor resolution", "values": []string{"20 megapixels"}},
			},
			{
				"a": map[string]any{"name": "weight", "values": []string{"450 g"}},
				"b": map[string]any{"name": "color", "values": []string{"black"}},
			},
		},
	})
	fmt.Printf("  %s\n\n", resp)

	// 4. Match whole sources: POST /v1/match/all with token blocking.
	fmt.Println("POST /v1/match/all (token blocking)")
	resp = post(ts.URL+"/v1/match/all", map[string]any{
		"sources": map[string]any{
			"shop-a": []map[string]any{
				{"name": "resolution", "values": []string{"20 mp"}},
				{"name": "optical zoom", "values": []string{"5x"}},
			},
			"shop-b": []map[string]any{
				{"name": "sensor resolution", "values": []string{"20 mp"}},
				{"name": "zoom optical", "values": []string{"5 x"}},
			},
		},
		"blocking": "token",
		"top":      5,
	})
	fmt.Printf("  %s\n\n", resp)

	// 5. Hot swap: retrain, overwrite the file, reload. In-flight
	// requests keep their pinned version; new requests see the new one.
	fmt.Println("hot-swapping a retrained model...")
	saveModel(store, data, modelPath, 2)
	if err := srv.Reload(); err != nil {
		log.Fatal(err)
	}
	list := get(ts.URL + "/v1/models")
	fmt.Printf("  GET /v1/models → %s\n", list)
}

// saveModel trains a matcher on the dataset's first sources and writes it
// to path (seed varies the version).
func saveModel(store *leapme.Store, data *leapme.Dataset, path string, seed int64) {
	m, err := leapme.NewMatcher(store, leapme.DefaultOptions(seed))
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	if err := m.ComputeFeatures(ctx, data); err != nil {
		log.Fatal(err)
	}
	train := map[string]bool{}
	for _, s := range data.Sources[:3] {
		train[s] = true
	}
	pairs := leapme.TrainingPairs(data.PropsOfSources(train), 2, rand.New(rand.NewSource(seed)))
	if _, err := m.Train(ctx, pairs); err != nil {
		log.Fatal(err)
	}
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := m.WriteModel(f); err != nil {
		log.Fatal(err)
	}
}

func post(url string, body any) string {
	data, err := json.Marshal(body)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("%s: %d %s", url, resp.StatusCode, buf.String())
	}
	return buf.String()
}

func get(url string) string {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return buf.String()
}
