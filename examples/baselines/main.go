// Baselines: LEAPME against the paper's five comparison systems on one
// dataset — a single-dataset slice of Table II.
//
// Run with:
//
//	go run ./examples/baselines [-dataset headphones] [-runs 3]
package main

import (
	"flag"
	"fmt"
	"log"

	"leapme"
	"leapme/internal/baselines"
)

func main() {
	name := flag.String("dataset", "headphones", "cameras|headphones|phones|tvs (lite variants)")
	runs := flag.Int("runs", 3, "random splits per system")
	frac := flag.Float64("frac", 0.8, "training source fraction")
	flag.Parse()

	var cfg leapme.GenConfig
	switch *name {
	case "cameras":
		cfg = leapme.CamerasLite(1)
	case "headphones":
		cfg = leapme.HeadphonesLite(1)
	case "phones":
		cfg = leapme.PhonesLite(1)
	case "tvs":
		cfg = leapme.TVsLite(1)
	default:
		log.Fatalf("unknown dataset %q", *name)
	}

	fmt.Println("training domain embeddings...")
	store, err := leapme.TrainDomainEmbeddings(leapme.DefaultEmbeddingSpec())
	if err != nil {
		log.Fatal(err)
	}
	data, err := leapme.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	s := data.Summary()
	fmt.Printf("dataset %q: %d sources, %d properties, %d matching pairs\n",
		data.Name, s.Sources, s.Properties, s.MatchingPairs)
	fmt.Printf("protocol: %d runs, %.0f%% of sources for training, 2 negatives per positive\n\n",
		*runs, *frac*100)

	h := leapme.NewHarness(store, 1)
	h.Runs = *runs

	fmt.Printf("%-10s %-6s %-6s %-6s\n", "system", "P", "R", "F1")
	m, err := h.EvalLEAPME(data, leapme.FullFeatures(), *frac)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-10s %-6.2f %-6.2f %-6.2f\n", "LEAPME", m.P, m.R, m.F1)

	for _, mk := range []func() baselines.Matcher{
		func() baselines.Matcher { return baselines.NewNezhadi() },
		func() baselines.Matcher { return baselines.NewAML() },
		func() baselines.Matcher { return baselines.NewFCAMap() },
		func() baselines.Matcher { return baselines.NewSemProp(store) },
		func() baselines.Matcher { return baselines.NewLSH() },
	} {
		bm, err := h.EvalBaseline(data, mk, *frac)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %-6.2f %-6.2f %-6.2f\n", mk().Name(), bm.P, bm.R, bm.F1)
	}
}
