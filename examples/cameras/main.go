// Cameras: the paper's motivating scenario (Fig. 1) end to end — many
// heterogeneous camera sources integrated into property clusters for a
// product knowledge graph.
//
// The example prints a Fig.-1-style excerpt showing how the same
// reference property surfaces under different names and value formats
// across sources, then trains LEAPME, builds the similarity graph over
// the held-out sources, clusters it, and reports cluster quality.
//
// Run with:
//
//	go run ./examples/cameras
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"sort"

	"leapme"
)

func main() {
	fmt.Println("training domain embeddings...")
	spec := leapme.DefaultEmbeddingSpec()
	spec.Categories = []string{"cameras"}
	store, err := leapme.TrainDomainEmbeddings(spec)
	if err != nil {
		log.Fatal(err)
	}

	cfg := leapme.CamerasLite(7)
	data, err := leapme.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	s := data.Summary()
	fmt.Printf("dataset %q: %d sources, %d properties, %d matching pairs\n\n",
		data.Name, s.Sources, s.Properties, s.MatchingPairs)

	// Fig.-1-style excerpt: how "resolution" and "shutter speed" surface
	// across the first three sources.
	printFigure1(data)

	m, err := leapme.NewMatcher(store, leapme.DefaultOptions(7))
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	if err := m.ComputeFeatures(ctx, data); err != nil {
		log.Fatal(err)
	}

	// Train on 6 of 8 sources.
	trainSrc := map[string]bool{}
	testSrc := map[string]bool{}
	for i, src := range data.Sources {
		if i < 6 {
			trainSrc[src] = true
		} else {
			testSrc[src] = true
		}
	}
	pairs := leapme.TrainingPairs(data.PropsOfSources(trainSrc), 2, rand.New(rand.NewSource(7)))
	fmt.Printf("training on %d pairs from %d sources...\n", len(pairs), len(trainSrc))
	if _, err := m.Train(ctx, pairs); err != nil {
		log.Fatal(err)
	}

	// Build the similarity graph over the held-out sources and cluster.
	testProps := data.PropsOfSources(testSrc)
	g := leapme.NewSimilarityGraph()
	for _, p := range testProps {
		g.AddNode(p.Key())
	}
	if err := m.MatchAll(ctx, testProps, func(sp leapme.ScoredPair) {
		if sp.Match {
			g.AddEdge(sp.A, sp.B, sp.Score)
		}
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("similarity graph: %s\n\n", g)

	clusters := g.CorrelationClustering(0.7)
	fmt.Println("largest property clusters (candidates for KG fusion):")
	sort.Slice(clusters, func(i, j int) bool { return len(clusters[i]) > len(clusters[j]) })
	for i, c := range clusters {
		if i >= 5 || len(c) < 2 {
			break
		}
		fmt.Printf("  cluster %d:\n", i)
		for _, k := range c {
			fmt.Printf("    %s\n", k)
		}
	}

	// Quality of the clustering against ground truth.
	truth := matchingPairsOf(data, testSrc)
	p, r, f1 := clusters.PairwiseQuality(truth)
	fmt.Printf("\ncluster pairwise quality: P=%.3f R=%.3f F1=%.3f\n", p, r, f1)
}

// printFigure1 shows the heterogeneity the paper's Fig. 1 illustrates.
func printFigure1(data *leapme.Dataset) {
	fmt.Println("Fig.-1-style excerpt — the same reference property across sources:")
	byRef := map[string][]leapme.Property{}
	for _, p := range data.Props {
		if p.Ref != "" {
			byRef[p.Ref] = append(byRef[p.Ref], p)
		}
	}
	values := data.InstancesByProperty()
	for _, ref := range []string{"resolution", "shutter speed"} {
		fmt.Printf("  reference property %q:\n", ref)
		n := 0
		for _, p := range byRef[ref] {
			if n >= 3 {
				break
			}
			vals := values[p.Key()]
			sample := ""
			if len(vals) > 0 {
				sample = vals[0]
			}
			fmt.Printf("    %-10s %-28q e.g. %q\n", p.Source, p.Name, sample)
			n++
		}
	}
	fmt.Println()
}

func matchingPairsOf(data *leapme.Dataset, sources map[string]bool) []leapme.Pair {
	var truth []leapme.Pair
	props := data.PropsOfSources(sources)
	byRef := map[string][]leapme.Property{}
	for _, p := range props {
		if p.Ref != "" {
			byRef[p.Ref] = append(byRef[p.Ref], p)
		}
	}
	for _, group := range byRef {
		for i := 0; i < len(group); i++ {
			for j := i + 1; j < len(group); j++ {
				if group[i].Source != group[j].Source {
					truth = append(truth, leapme.Pair{A: group[i].Key(), B: group[j].Key()}.Canonical())
				}
			}
		}
	}
	return truth
}
