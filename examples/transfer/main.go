// Transfer: the paper's transfer-learning study — train LEAPME on one
// product category and apply it, unchanged, to another. The trained model
// captures what "a matching property pair looks like" (small feature
// differences, close embeddings) rather than category specifics, so it
// transfers, with some loss against the in-domain reference.
//
// Run with:
//
//	go run ./examples/transfer
package main

import (
	"fmt"
	"log"

	"leapme"
)

func main() {
	fmt.Println("training domain embeddings over all four categories...")
	store, err := leapme.TrainDomainEmbeddings(leapme.DefaultEmbeddingSpec())
	if err != nil {
		log.Fatal(err)
	}

	configs := []leapme.GenConfig{
		leapme.HeadphonesLite(3),
		leapme.PhonesLite(3),
		leapme.TVsLite(3),
	}
	var datasets []*leapme.Dataset
	for _, cfg := range configs {
		d, err := leapme.Generate(cfg)
		if err != nil {
			log.Fatal(err)
		}
		datasets = append(datasets, d)
		s := d.Summary()
		fmt.Printf("  %-16s %d sources, %d properties, %d matching pairs\n",
			d.Name, s.Sources, s.Properties, s.MatchingPairs)
	}

	h := leapme.NewHarness(store, 3)
	h.Runs = 2

	fmt.Println("\ntransfer matrix (train on rows, test on columns; F1):")
	res, err := h.Transfer(datasets)
	if err != nil {
		log.Fatal(err)
	}
	cells := map[string]map[string]leapme.PRF{}
	var order []string
	for _, r := range res {
		if cells[r.TrainDataset] == nil {
			cells[r.TrainDataset] = map[string]leapme.PRF{}
			order = append(order, r.TrainDataset)
		}
		cells[r.TrainDataset][r.TestDataset] = r.Metrics
	}
	fmt.Printf("%-18s", "train\\test")
	for _, c := range order {
		fmt.Printf(" %-16s", c)
	}
	fmt.Println()
	for _, tr := range order {
		fmt.Printf("%-18s", tr)
		for _, te := range order {
			fmt.Printf(" %-16.2f", cells[tr][te].F1)
		}
		fmt.Println()
	}
	fmt.Println("\ndiagonal cells are the in-domain reference (80% split of the")
	fmt.Println("same dataset); off-diagonal cells transfer the trained model")
	fmt.Println("across categories without retraining.")
}
