// Incremental: the paper's knowledge-graph construction scenario — new
// sources arrive over time and are integrated one by one. A trained
// LEAPME matcher scores each arriving source only against the properties
// already integrated (optionally through a blocker), accumulating a
// similarity graph whose clusters are the KG's fused properties.
//
// Run with:
//
//	go run ./examples/incremental
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"leapme"
)

func main() {
	fmt.Println("training domain embeddings...")
	spec := leapme.DefaultEmbeddingSpec()
	spec.Categories = []string{"cameras"}
	store, err := leapme.TrainDomainEmbeddings(spec)
	if err != nil {
		log.Fatal(err)
	}

	cfg := leapme.CamerasLite(21)
	data, err := leapme.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset %q with %d sources\n", data.Name, len(data.Sources))

	// Train once on the first three sources (the "already curated" part
	// of the knowledge graph).
	m, err := leapme.NewMatcher(store, leapme.DefaultOptions(1))
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	if err := m.ComputeFeatures(ctx, data); err != nil {
		log.Fatal(err)
	}
	seed := map[string]bool{}
	for _, s := range data.Sources[:3] {
		seed[s] = true
	}
	pairs := leapme.TrainingPairs(data.PropsOfSources(seed), 2, rand.New(rand.NewSource(1)))
	if _, err := m.Train(ctx, pairs); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("matcher trained on %d labeled pairs from %d seed sources\n\n",
		len(pairs), len(seed))

	// Stream the remaining sources in, one at a time, through a blocker.
	ig, err := leapme.NewIntegrator(m)
	if err != nil {
		log.Fatal(err)
	}
	ig.Blocker = leapme.UnionBlockers(leapme.NewTokenBlocker(), leapme.NewEmbeddingBlocker(store))

	for _, src := range data.Sources[3:] {
		matches, err := ig.AddSource(ctx, data, src)
		if err != nil {
			log.Fatal(err)
		}
		clusters := ig.Clusters(0.7)
		multi := 0
		for _, c := range clusters {
			if len(c) > 1 {
				multi++
			}
		}
		fmt.Printf("+ %s: %3d new matches, graph now %s, %d multi-property clusters\n",
			src, len(matches), ig.Graph(), multi)
	}

	// Final clusters become fused KG properties: reconcile each cluster's
	// values into a canonical profile.
	fmt.Println("\nfused KG properties (cluster → canonical value profile):")
	clusters := ig.Clusters(0.7)
	values := data.InstancesByProperty()
	shown := 0
	for _, c := range clusters {
		if len(c) < 3 {
			continue
		}
		var vals []string
		for _, k := range c {
			vals = append(vals, values[k]...)
		}
		prof := leapme.FuseCluster(vals)
		fmt.Printf("  %d properties (e.g. %s): kind=%s", len(c), c[0], prof.Kind)
		switch prof.Kind.String() {
		case "number":
			fmt.Printf(" unit=%q median=%.1f", prof.Unit, prof.Median)
		case "bool":
			fmt.Printf(" true-rate=%.2f", prof.TrueFraction)
		default:
			fmt.Printf(" top=%v", prof.TopText)
		}
		fmt.Printf(" agreement=%.2f over %d values\n", prof.Agreement, prof.Values)
		shown++
		if shown >= 6 {
			break
		}
	}
}
