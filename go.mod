module leapme

go 1.22
