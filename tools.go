//go:build tools

// Package tools records the external analyzer dependencies of `make
// lint-ext`, in the spirit of the tools.go convention.
//
// The usual form — blank imports pinned through go.mod — is not
// available here: this repository builds fully offline (no module
// proxy, no checksum database), so go.mod must not reference modules
// the build cannot fetch. The single source of truth for tool versions
// is therefore the Makefile:
//
//	STATICCHECK_VERSION  honnef.co/go/tools/cmd/staticcheck
//	GOVULNCHECK_VERSION  golang.org/x/vuln/cmd/govulncheck
//
// `make lint-ext` runs them via `go run <pkg>@<version>`, which
// resolves and verifies the pinned version on network-connected
// machines (CI's lint-ext job) and is deliberately NOT part of `make
// all`. The repository's own invariants are enforced by the offline
// multichecker `cmd/leapme-lint` (`make lint`) instead.
//
// When bumping a version: change the Makefile variable, run `make
// lint-ext` on a connected machine, and update this comment if a tool
// is added or dropped.
package tools
