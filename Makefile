GO ?= go

PACKAGES := ./...
# Packages touched by the robustness and serving work; -race is slow, so
# restrict it.
RACE_PACKAGES := ./internal/core ./internal/nn ./internal/guard ./internal/dataset ./internal/eval ./internal/serve ./internal/cli

.PHONY: all build test vet test-race fuzz bench-json clean

all: build vet test

build:
	$(GO) build $(PACKAGES)

test:
	$(GO) test $(PACKAGES)

vet:
	$(GO) vet $(PACKAGES)

test-race:
	$(GO) test -race $(RACE_PACKAGES)

# Short fuzz pass over the dataset loaders; extend -fuzztime for real runs.
fuzz:
	$(GO) test ./internal/dataset -run='^$$' -fuzz='^FuzzReadJSON$$' -fuzztime=10s
	$(GO) test ./internal/dataset -run='^$$' -fuzz='^FuzzReadJSONQuarantine$$' -fuzztime=10s
	$(GO) test ./internal/dataset -run='^$$' -fuzz='^FuzzReadInstancesCSV$$' -fuzztime=10s

# Machine-readable performance baselines for the serving and training
# pipelines (committed as BENCH_serve.json / BENCH_train.json).
bench-json:
	$(GO) run ./cmd/benchtab -bench serve -out BENCH_serve.json
	$(GO) run ./cmd/benchtab -bench train -out BENCH_train.json

clean:
	$(GO) clean -testcache
