GO ?= go

PACKAGES := ./...
# Packages with new parallel paths; test-determinism re-runs their
# determinism suites under different scheduler conditions.
DETERMINISM_PACKAGES := ./internal/nn ./internal/features ./internal/core ./internal/eval ./internal/tapon ./internal/index ./internal/blocking

# External analyzers run by lint-ext. Pinned here (not in go.mod: the
# repo builds offline, and `go run pkg@version` resolves these only on
# machines/CI with network access). Bump deliberately.
STATICCHECK_VERSION := 2025.1
GOVULNCHECK_VERSION := v1.1.4

.PHONY: all build test vet lint lint-audit lint-ext test-race test-determinism test-chaos fuzz bench-json clean

all: build vet lint test

build:
	$(GO) build $(PACKAGES)

test:
	$(GO) test $(PACKAGES)

vet:
	$(GO) vet $(PACKAGES)

# The repository's own invariants, machine-enforced: determinism,
# guard isolation, ctx cancellation, float comparison, feature layout,
# hot-path allocation freedom, lock discipline, error vocabulary.
# See internal/analysis/doc.go for the catalogue and the
# //lint:allow <analyzer> <reason> suppression syntax.
lint:
	$(GO) run ./cmd/leapme-lint $(PACKAGES)

# Suppression hygiene: re-run the analyzers with //lint:allow ignored
# and fail on directives that no longer suppress anything, so stale
# allows get deleted instead of silently masking future findings.
lint-audit:
	$(GO) run ./cmd/leapme-lint -audit-allows $(PACKAGES)

# General-purpose external analyzers; needs network to fetch the pinned
# tools, so it is a separate CI job rather than part of `make all`.
lint-ext:
	$(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) $(PACKAGES)
	$(GO) run golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION) $(PACKAGES)

test-race:
	$(GO) test -race $(PACKAGES)

# The determinism suites compare Workers=1 against Workers=N inside each
# test; running them at two GOMAXPROCS settings additionally varies how
# the scheduler interleaves the workers. Results must be bit-identical
# in every configuration.
test-determinism:
	GOMAXPROCS=1 $(GO) test -count=1 -run 'Determinism' $(DETERMINISM_PACKAGES)
	GOMAXPROCS=4 $(GO) test -count=1 -run 'Determinism' $(DETERMINISM_PACKAGES)

# The overload/fault-injection suite: the chaos and client packages in
# full, plus the serve-layer chaos and reload-failure tests, all under
# -race — injected panics, stalls and corrupt reloads must never
# surface as data races or dropped requests.
test-chaos:
	$(GO) test -race -count=1 ./internal/chaos ./internal/client
	$(GO) test -race -count=1 -run 'Chaos|ReloadFailure|Admission|DeadlineHeader' ./internal/serve

# Short fuzz pass over the dataset loaders and the serving JSON API;
# extend -fuzztime for real runs.
fuzz:
	$(GO) test ./internal/dataset -run='^$$' -fuzz='^FuzzReadJSON$$' -fuzztime=10s
	$(GO) test ./internal/dataset -run='^$$' -fuzz='^FuzzReadJSONQuarantine$$' -fuzztime=10s
	$(GO) test ./internal/dataset -run='^$$' -fuzz='^FuzzReadInstancesCSV$$' -fuzztime=10s
	$(GO) test ./internal/serve -run='^$$' -fuzz='^FuzzMatchRequest$$' -fuzztime=10s
	$(GO) test ./internal/serve -run='^$$' -fuzz='^FuzzMatchAllRequest$$' -fuzztime=10s

# Machine-readable performance baselines for the serving, training,
# parallel and blocking pipelines (committed as BENCH_*.json).
bench-json:
	$(GO) run ./cmd/benchtab -bench serve -out BENCH_serve.json
	$(GO) run ./cmd/benchtab -bench train -out BENCH_train.json
	$(GO) run ./cmd/benchtab -bench parallel -out BENCH_parallel.json
	$(GO) run ./cmd/benchtab -bench blocking -out BENCH_blocking.json

clean:
	$(GO) clean -testcache
