GO ?= go

PACKAGES := ./...
# Packages touched by the robustness work; -race is slow, so restrict it.
RACE_PACKAGES := ./internal/core ./internal/nn ./internal/guard ./internal/dataset ./internal/eval

.PHONY: all build test vet test-race fuzz clean

all: build vet test

build:
	$(GO) build $(PACKAGES)

test:
	$(GO) test $(PACKAGES)

vet:
	$(GO) vet $(PACKAGES)

test-race:
	$(GO) test -race $(RACE_PACKAGES)

# Short fuzz pass over the dataset loaders; extend -fuzztime for real runs.
fuzz:
	$(GO) test ./internal/dataset -run='^$$' -fuzz='^FuzzReadJSON$$' -fuzztime=10s
	$(GO) test ./internal/dataset -run='^$$' -fuzz='^FuzzReadJSONQuarantine$$' -fuzztime=10s
	$(GO) test ./internal/dataset -run='^$$' -fuzz='^FuzzReadInstancesCSV$$' -fuzztime=10s

clean:
	$(GO) clean -testcache
