package leapme

// Benchmarks, one per paper artefact plus component microbenches. The
// Table II and experiment benches run a reduced single-split protocol so
// `go test -bench=.` finishes in minutes; `cmd/benchtab` regenerates the
// full tables with the multi-run protocol. Quality metrics are attached
// to the benchmark output via b.ReportMetric (P/R/F1 as {p,r,f1}), so the
// bench run doubles as a quick shape check against the paper.

import (
	"context"
	"math/rand"
	"sync"
	"testing"

	"leapme/internal/baselines"
	"leapme/internal/core"
	"leapme/internal/dataset"
	"leapme/internal/domain"
	"leapme/internal/embedding"
	"leapme/internal/eval"
	"leapme/internal/features"
	"leapme/internal/nn"
	"leapme/internal/text"
)

var (
	benchOnce  sync.Once
	benchStore *embedding.Store
	benchData  map[string]*dataset.Dataset
)

func benchSetup(tb testing.TB) (*embedding.Store, map[string]*dataset.Dataset) {
	if tb != nil {
		tb.Helper()
	}
	benchOnce.Do(func() {
		corpus := domain.Corpus(
			[]*domain.Category{domain.Cameras(), domain.Headphones(), domain.Phones(), domain.TVs()},
			domain.CorpusConfig{SentencesPerProp: 60, Seed: 1})
		cfg := embedding.DefaultGloVeConfig()
		cfg.Dim = 32
		cfg.Epochs = 20
		s, err := embedding.TrainGloVe(corpus, cfg)
		if err != nil {
			panic(err)
		}
		benchStore = s
		benchData = map[string]*dataset.Dataset{}
		for _, gc := range []dataset.GenConfig{
			dataset.Lite(dataset.CamerasConfig(1)),
			dataset.Lite(dataset.HeadphonesConfig(1)),
			dataset.Lite(dataset.PhonesConfig(1)),
			dataset.Lite(dataset.TVsConfig(1)),
		} {
			d, err := dataset.Generate(gc)
			if err != nil {
				panic(err)
			}
			benchData[d.Name] = d
		}
	})
	return benchStore, benchData
}

func benchHarness(store *embedding.Store) *eval.Harness {
	h := eval.NewHarness(store, 1)
	h.Runs = 1
	return h
}

func reportPRF(b *testing.B, m eval.PRF) {
	b.ReportMetric(m.P, "p")
	b.ReportMetric(m.R, "r")
	b.ReportMetric(m.F1, "f1")
}

// --- Table II: LEAPME per dataset at 80% training (full features) ---

func benchTable2LEAPME(b *testing.B, ds string) {
	store, data := benchSetup(b)
	h := benchHarness(store)
	var m eval.PRF
	var err error
	for i := 0; i < b.N; i++ {
		m, err = h.EvalLEAPME(data[ds], features.FullConfig(), 0.8)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportPRF(b, m)
}

func BenchmarkTable2_Cameras_LEAPME(b *testing.B)    { benchTable2LEAPME(b, "cameras-lite") }
func BenchmarkTable2_Headphones_LEAPME(b *testing.B) { benchTable2LEAPME(b, "headphones-lite") }
func BenchmarkTable2_Phones_LEAPME(b *testing.B)     { benchTable2LEAPME(b, "phones-lite") }
func BenchmarkTable2_TVs_LEAPME(b *testing.B)        { benchTable2LEAPME(b, "tvs-lite") }

// --- Table II: LEAPME feature-kind variants on cameras ---

func benchTable2Variant(b *testing.B, fc features.Config) {
	store, data := benchSetup(b)
	h := benchHarness(store)
	var m eval.PRF
	var err error
	for i := 0; i < b.N; i++ {
		m, err = h.EvalLEAPME(data["cameras-lite"], fc, 0.8)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportPRF(b, m)
}

func BenchmarkTable2_Cameras_LEAPME_Emb(b *testing.B) {
	benchTable2Variant(b, features.FullConfig().EmbOnly())
}

func BenchmarkTable2_Cameras_LEAPME_NoEmb(b *testing.B) {
	benchTable2Variant(b, features.FullConfig().NonEmbOnly())
}

func BenchmarkTable2_Cameras_NamesOnly(b *testing.B) {
	benchTable2Variant(b, features.Config{Names: true, Embeddings: true, NonEmbeddings: true})
}

func BenchmarkTable2_Cameras_InstancesOnly(b *testing.B) {
	benchTable2Variant(b, features.Config{Instances: true, Embeddings: true, NonEmbeddings: true})
}

// --- Table II: the five baselines on cameras ---

func benchTable2Baseline(b *testing.B, mk func() baselines.Matcher) {
	store, data := benchSetup(b)
	h := benchHarness(store)
	var m eval.PRF
	var err error
	for i := 0; i < b.N; i++ {
		m, err = h.EvalBaseline(data["cameras-lite"], mk, 0.8)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportPRF(b, m)
}

func BenchmarkTable2_Cameras_Nezhadi(b *testing.B) {
	benchTable2Baseline(b, func() baselines.Matcher { return baselines.NewNezhadi() })
}

func BenchmarkTable2_Cameras_AML(b *testing.B) {
	benchTable2Baseline(b, func() baselines.Matcher { return baselines.NewAML() })
}

func BenchmarkTable2_Cameras_FCAMap(b *testing.B) {
	benchTable2Baseline(b, func() baselines.Matcher { return baselines.NewFCAMap() })
}

func BenchmarkTable2_Cameras_SemProp(b *testing.B) {
	store, _ := benchSetup(b)
	benchTable2Baseline(b, func() baselines.Matcher { return baselines.NewSemProp(store) })
}

func BenchmarkTable2_Cameras_LSH(b *testing.B) {
	benchTable2Baseline(b, func() baselines.Matcher { return baselines.NewLSH() })
}

// --- A1: feature-configuration ablation (all 9 configs, cameras) ---

func BenchmarkA1_Ablation_Cameras(b *testing.B) {
	store, data := benchSetup(b)
	h := benchHarness(store)
	for i := 0; i < b.N; i++ {
		if _, err := h.Ablation(data["cameras-lite"], 0.8); err != nil {
			b.Fatal(err)
		}
	}
}

// --- A2: training-fraction sweep (cameras) ---

func BenchmarkA2_FractionSweep_Cameras(b *testing.B) {
	store, data := benchSetup(b)
	h := benchHarness(store)
	for i := 0; i < b.N; i++ {
		if _, err := h.FractionSweep(data["cameras-lite"], []float64{0.2, 0.5, 0.8}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- A3: transfer learning (headphones → phones) ---

func BenchmarkA3_Transfer(b *testing.B) {
	store, data := benchSetup(b)
	h := benchHarness(store)
	for i := 0; i < b.N; i++ {
		if _, err := h.Transfer([]*dataset.Dataset{
			data["headphones-lite"], data["phones-lite"],
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- A4: clustering from the similarity graph (cameras) ---

func BenchmarkA4_Clusterings_Cameras(b *testing.B) {
	store, data := benchSetup(b)
	h := benchHarness(store)
	for i := 0; i < b.N; i++ {
		if _, err := h.Clusterings(data["cameras-lite"]); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Design-choice ablations (DESIGN.md §5) ---

// BenchmarkAblation_NoStandardize measures LEAPME without pair-feature
// z-scoring: expect a noticeably lower F1 under the paper's fixed LR
// schedule.
func BenchmarkAblation_NoStandardize(b *testing.B) {
	store, data := benchSetup(b)
	h := benchHarness(store)
	h.Options.NoStandardize = true
	var m eval.PRF
	var err error
	for i := 0; i < b.N; i++ {
		m, err = h.EvalLEAPME(data["cameras-lite"], features.FullConfig(), 0.8)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportPRF(b, m)
}

// BenchmarkAblation_RawGloVeNorms serves unnormalised GloVe vectors:
// expect the embedding features to degrade (frequency-dependent norms
// distort difference features).
func BenchmarkAblation_RawGloVeNorms(b *testing.B) {
	_, data := benchSetup(b)
	corpus := domain.Corpus(
		[]*domain.Category{domain.Cameras(), domain.Headphones(), domain.Phones(), domain.TVs()},
		domain.CorpusConfig{SentencesPerProp: 60, Seed: 1})
	cfg := embedding.DefaultGloVeConfig()
	cfg.Dim = 32
	cfg.Epochs = 20
	cfg.NoNormalize = true
	raw, err := embedding.TrainGloVe(corpus, cfg)
	if err != nil {
		b.Fatal(err)
	}
	h := benchHarness(raw)
	var m eval.PRF
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err = h.EvalLEAPME(data["cameras-lite"], features.FullConfig(), 0.8)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportPRF(b, m)
}

// BenchmarkAblation_SGNSEmbeddings swaps the GloVe backend for word2vec
// skip-gram: expect comparable quality, demonstrating the matcher is not
// tied to one embedding algorithm.
func BenchmarkAblation_SGNSEmbeddings(b *testing.B) {
	_, data := benchSetup(b)
	corpus := domain.Corpus(
		[]*domain.Category{domain.Cameras(), domain.Headphones(), domain.Phones(), domain.TVs()},
		domain.CorpusConfig{SentencesPerProp: 60, Seed: 1})
	cfg := embedding.DefaultSGNSConfig()
	cfg.Dim = 32
	cfg.Epochs = 10
	sgns, err := embedding.TrainSGNS(corpus, cfg)
	if err != nil {
		b.Fatal(err)
	}
	h := benchHarness(sgns)
	var m eval.PRF
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err = h.EvalLEAPME(data["cameras-lite"], features.FullConfig(), 0.8)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportPRF(b, m)
}

// --- Component microbenches ---

func BenchmarkGloVeTraining(b *testing.B) {
	corpus := domain.Corpus([]*domain.Category{domain.Cameras()},
		domain.CorpusConfig{SentencesPerProp: 20, Seed: 1})
	cfg := embedding.DefaultGloVeConfig()
	cfg.Dim = 16
	cfg.Epochs = 5
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := embedding.TrainGloVe(corpus, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInstanceFeatures(b *testing.B) {
	store, _ := benchSetup(b)
	ex := features.NewExtractor(store)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ex.InstanceFeatures("Nikon D850 45.7 MP full-frame CMOS")
	}
}

func BenchmarkPairVector(b *testing.B) {
	store, _ := benchSetup(b)
	ex := features.NewExtractor(store)
	pairer, err := features.NewPairer(ex, features.FullConfig())
	if err != nil {
		b.Fatal(err)
	}
	p1 := ex.PropertyFeatures("camera resolution", []string{"24.2 MP", "45 megapixels"})
	p2 := ex.PropertyFeatures("effective pixels", []string{"20 MP", "61.0 Mpix"})
	dst := make([]float64, pairer.Dim())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pairer.PairVector(dst, p1, p2)
	}
}

func BenchmarkMatchThroughput(b *testing.B) {
	store, data := benchSetup(b)
	d := data["headphones-lite"]
	m, err := core.NewMatcher(store, core.DefaultOptions(1))
	if err != nil {
		b.Fatal(err)
	}
	m.ComputeFeatures(context.Background(), d)
	train := map[string]bool{}
	for i, s := range d.Sources {
		if i < len(d.Sources)-1 {
			train[s] = true
		}
	}
	pairs := core.TrainingPairs(d.PropsOfSources(train), 2, rand.New(rand.NewSource(1)))
	if _, err := m.Train(context.Background(), pairs); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	scored := 0
	for i := 0; i < b.N; i++ {
		if err := m.MatchAll(context.Background(), d.Props, func(core.ScoredPair) { scored++ }); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(scored)/b.Elapsed().Seconds(), "pairs/s")
}

func BenchmarkNNTraining(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	xs := make([][]float64, 512)
	ys := make([]int, 512)
	for i := range xs {
		xs[i] = make([]float64, 100)
		for j := range xs[i] {
			xs[i][j] = rng.NormFloat64()
		}
		ys[i] = i % 2
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net, err := nn.New(nn.Config{InDim: 100, Hidden: []int{128, 64}, Out: 2, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		cfg := nn.DefaultTrainConfig(1)
		cfg.Schedule = []nn.Phase{{Epochs: 5, LR: 1e-3}}
		if _, err := net.Fit(context.Background(), xs, ys, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStringDistances(b *testing.B) {
	a, c := "camera resolution", "effective pixels"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		text.NormalizedOSA(a, c)
		text.NormalizedLevenshtein(a, c)
		text.NormalizedDamerauLevenshtein(a, c)
		text.NormalizedLCSubstring(a, c)
		text.TriGramDistance(a, c)
		text.JaroWinklerDistance(a, c)
	}
}

func BenchmarkBlocking(b *testing.B) {
	store, data := benchSetup(b)
	d := data["cameras-lite"]
	blk := UnionBlockers(NewTokenBlocker(), NewEmbeddingBlocker(store))
	var q BlockingQuality
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cands := blk.Candidates(d.Props)
		q = MeasureBlocking(cands, d.Props)
	}
	b.ReportMetric(q.PairCompleteness, "completeness")
	b.ReportMetric(q.ReductionRatio, "reduction")
}

func BenchmarkDatasetGeneration(b *testing.B) {
	cfg := dataset.Lite(dataset.HeadphonesConfig(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i)
		if _, err := dataset.Generate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
