// Package leapme is a from-scratch Go implementation of LEAPME
// (LEArning-based Property Matching with Embeddings, Ayala et al., ICDE
// 2021): a supervised, multi-source property matcher that classifies
// pairs of properties from different sources as matching or not, using a
// dense neural network over features computed from property names,
// property instance values, and — centrally — word embeddings of both.
//
// The module is self-contained and offline: it includes its own GloVe and
// word2vec (SGNS) trainers, a product-domain ontology and corpus
// generator standing in for pre-trained Common Crawl GloVe, synthetic
// multi-source dataset generators reproducing the statistics of the
// paper's four evaluation datasets (DI2KG cameras, WDC headphones /
// phones / TVs), five baseline matchers (AML, FCA-Map, Nezhadi et al.,
// SemProp, LSH), and an evaluation harness that regenerates the paper's
// Table II plus ablation, training-fraction, transfer-learning and
// clustering experiments.
//
// # Quick start
//
//	store, _ := leapme.TrainDomainEmbeddings(leapme.DefaultEmbeddingSpec())
//	data, _ := leapme.Generate(leapme.CamerasLite(1))
//	m, _ := leapme.NewMatcher(store, leapme.DefaultOptions(1))
//	ctx := context.Background()
//	m.ComputeFeatures(ctx, data)
//	pairs := leapme.TrainingPairs(data.PropsOfSources(trainSrc), 2, rng)
//	m.Train(ctx, pairs)
//	matches, _ := m.Matches(ctx, data.PropsOfSources(testSrc))
//
// The context cancels long pipeline stages cooperatively (within one
// property featurization, one pair scoring, or one training mini-batch);
// see README.md's "Failure modes & recovery" section for the full
// robustness model (panic isolation, divergence recovery, quarantine).
//
// See examples/ for runnable programs and DESIGN.md for the system map.
package leapme

import (
	"fmt"
	"math/rand"

	"leapme/internal/baselines"
	"leapme/internal/blocking"
	"leapme/internal/core"
	"leapme/internal/dataset"
	"leapme/internal/domain"
	"leapme/internal/embedding"
	"leapme/internal/eval"
	"leapme/internal/features"
	"leapme/internal/fusion"
	"leapme/internal/graph"
	"leapme/internal/guard"
	"leapme/internal/integrate"
	"leapme/internal/nn"
	"leapme/internal/serve"
	"leapme/internal/tapon"
)

// Core matcher API (package core).
type (
	// Matcher is the LEAPME property matcher: compute features, train,
	// classify (Algorithm 1 of the paper).
	Matcher = core.Matcher
	// Options configures a Matcher; zero fields take the paper defaults.
	Options = core.Options
	// LabeledPair is a training example for Matcher.Train.
	LabeledPair = core.LabeledPair
	// ScoredPair is a classified pair with its similarity score.
	ScoredPair = core.ScoredPair
	// Explanation attributes a pair's score to feature groups
	// (Matcher.Explain).
	Explanation = core.Explanation
	// UnitReport accounts for isolated per-unit failures of the last
	// feature/match run (Matcher.LastReport).
	UnitReport = guard.Report
)

// Dataset model (package dataset).
type (
	// Dataset is a multi-source property-matching task.
	Dataset = dataset.Dataset
	// Property is one source-specific property with ground-truth Ref.
	Property = dataset.Property
	// Instance is a (source, entity, property, value) observation.
	Instance = dataset.Instance
	// Key identifies a property within a dataset.
	Key = dataset.Key
	// Pair is an unordered cross-source property pair.
	Pair = dataset.Pair
	// GenConfig parameterises the synthetic dataset generator.
	GenConfig = dataset.GenConfig
)

// Embeddings (package embedding).
type (
	// Store serves trained word vectors.
	Store = embedding.Store
	// GloVeConfig parameterises the GloVe trainer.
	GloVeConfig = embedding.GloVeConfig
	// SGNSConfig parameterises the word2vec SGNS trainer.
	SGNSConfig = embedding.SGNSConfig
)

// Feature configuration (package features).
type (
	// FeatureConfig selects feature groups (the paper's 9 configurations).
	FeatureConfig = features.Config
)

// Similarity graph and clustering (package graph).
type (
	// SimilarityGraph holds scored matches as a weighted graph.
	SimilarityGraph = graph.SimilarityGraph
	// Clustering is a partition of properties into equivalence clusters.
	Clustering = graph.Clustering
)

// Evaluation harness (package eval).
type (
	// Harness runs the paper's evaluation protocol.
	Harness = eval.Harness
	// PRF is a precision/recall/F1 triple.
	PRF = eval.PRF
	// Table2Config selects a slice of Table II to compute.
	Table2Config = eval.Table2Config
	// Table2Row is one Table II cell group.
	Table2Row = eval.Row
)

// Baselines (package baselines).
type (
	// BaselineMatcher is the interface all five baselines implement.
	BaselineMatcher = baselines.Matcher
	// BaselineInput bundles properties and instance values for baselines.
	BaselineInput = baselines.Input
	// BaselineMatch is one baseline prediction.
	BaselineMatch = baselines.Match
)

// Training schedule (package nn).
type (
	// Phase is one stage of the learning-rate schedule.
	Phase = nn.Phase
)

// Serving (package serve) and model introspection (package core).
type (
	// MatchServer is the matching-as-a-service HTTP server: model
	// registry with hot swap, micro-batching scorer, feature cache.
	MatchServer = serve.Server
	// ServeConfig configures a MatchServer.
	ServeConfig = serve.Config
	// ModelSource names a saved model file to serve.
	ModelSource = serve.ModelSource
	// ModelRegistry holds named model versions and the active pointer.
	ModelRegistry = serve.Registry
	// ModelInfo describes a saved model file (LoadModelInfo) without
	// instantiating a matcher.
	ModelInfo = core.ModelInfo
	// Scorer is an immutable scoring snapshot of a trained Matcher,
	// detached from later retraining (Matcher.NewScorer).
	Scorer = core.Scorer
)

// NewMatcher builds a LEAPME matcher over the given embedding store.
func NewMatcher(store *Store, opts Options) (*Matcher, error) {
	return core.NewMatcher(store, opts)
}

// DefaultOptions returns the paper's matcher configuration (hidden layers
// 128/64, batch 32, staged LR schedule, all features, threshold 0.5).
func DefaultOptions(seed int64) Options { return core.DefaultOptions(seed) }

// FullFeatures enables every Table I feature.
func FullFeatures() FeatureConfig { return features.FullConfig() }

// AllFeatureConfigs enumerates the paper's 9 feature configurations.
func AllFeatureConfigs() []FeatureConfig { return features.AllConfigs() }

// PaperSchedule returns the LR schedule of Section IV-D (10 epochs at
// 1e-3, 5 at 1e-4, 5 at 1e-5).
func PaperSchedule() []Phase { return nn.PaperSchedule() }

// NewMatchServer loads the configured models and starts the serving
// pipeline (see cmd/leapme-serve for the standalone binary).
func NewMatchServer(cfg ServeConfig) (*MatchServer, error) { return serve.New(cfg) }

// ParseModelList parses the -model flag syntax: "path" or
// "name=path,name=path,...".
func ParseModelList(s string) ([]ModelSource, error) { return serve.ParseModelList(s) }

// LoadModelInfo describes a model file saved by Matcher.WriteModel (or
// `leapme train`) without loading it into a matcher.
func LoadModelInfo(path string) (ModelInfo, error) { return core.LoadInfoFile(path) }

// TrainingPairs builds a labeled training set in the paper's regime:
// every cross-source ground-truth match among props is a positive, plus
// negRatio random negatives per positive (paper: 2).
func TrainingPairs(props []Property, negRatio int, rng *rand.Rand) []LabeledPair {
	return core.TrainingPairs(props, negRatio, rng)
}

// Generate samples a synthetic multi-source dataset.
func Generate(cfg GenConfig) (*Dataset, error) { return dataset.Generate(cfg) }

// The four dataset presets reproduce the statistics the paper reports.
// The *Lite variants shrink them for fast experiments (see EXPERIMENTS.md
// for the fidelity discussion).

// Cameras returns the full DI2KG-shaped camera preset (24 sources).
func Cameras(seed int64) GenConfig { return dataset.CamerasConfig(seed) }

// Headphones returns the WDC-shaped headphones preset.
func Headphones(seed int64) GenConfig { return dataset.HeadphonesConfig(seed) }

// Phones returns the WDC-shaped phones preset.
func Phones(seed int64) GenConfig { return dataset.PhonesConfig(seed) }

// TVs returns the WDC-shaped TVs preset.
func TVs(seed int64) GenConfig { return dataset.TVsConfig(seed) }

// CamerasLite returns a shrunk camera preset for fast experiments.
func CamerasLite(seed int64) GenConfig { return dataset.Lite(dataset.CamerasConfig(seed)) }

// HeadphonesLite returns a shrunk headphones preset.
func HeadphonesLite(seed int64) GenConfig { return dataset.Lite(dataset.HeadphonesConfig(seed)) }

// PhonesLite returns a shrunk phones preset.
func PhonesLite(seed int64) GenConfig { return dataset.Lite(dataset.PhonesConfig(seed)) }

// TVsLite returns a shrunk TVs preset.
func TVsLite(seed int64) GenConfig { return dataset.Lite(dataset.TVsConfig(seed)) }

// FromInstances builds an unlabeled dataset from raw (source, entity,
// property, value) tuples — the entry point for matching your own data.
func FromInstances(name, category string, instances []Instance) (*Dataset, error) {
	return dataset.FromInstances(name, category, instances)
}

// EmbeddingSpec bundles corpus generation and GloVe training parameters
// for TrainDomainEmbeddings.
type EmbeddingSpec struct {
	// Categories to include in the corpus; nil means all four product
	// categories.
	Categories []string
	// SentencesPerProp controls corpus size (default 120).
	SentencesPerProp int
	// GloVe is the trainer configuration (default DefaultGloVeConfig with
	// Dim 50).
	GloVe GloVeConfig
	// Seed drives corpus sampling.
	Seed int64
}

// DefaultEmbeddingSpec trains 50-dimensional GloVe vectors on the full
// product-domain corpus.
func DefaultEmbeddingSpec() EmbeddingSpec {
	return EmbeddingSpec{
		SentencesPerProp: 120,
		GloVe:            embedding.DefaultGloVeConfig(),
		Seed:             1,
	}
}

// TrainDomainEmbeddings generates a product-domain corpus and trains a
// GloVe store on it — the repository's stand-in for the pre-trained
// Common Crawl GloVe vectors the paper uses (see DESIGN.md).
func TrainDomainEmbeddings(spec EmbeddingSpec) (*Store, error) {
	cats := spec.Categories
	if len(cats) == 0 {
		cats = []string{"cameras", "headphones", "phones", "tvs"}
	}
	all := domain.Categories()
	var selected []*domain.Category
	for _, name := range cats {
		if c, ok := all[name]; ok {
			selected = append(selected, c)
		}
	}
	corpus := domain.Corpus(selected, domain.CorpusConfig{
		SentencesPerProp: spec.SentencesPerProp,
		Seed:             spec.Seed,
	})
	cfg := spec.GloVe
	if cfg.Dim == 0 {
		cfg = embedding.DefaultGloVeConfig()
	}
	return embedding.TrainGloVe(corpus, cfg)
}

// TrainGloVe fits GloVe vectors on a custom tokenised corpus.
func TrainGloVe(sentences [][]string, cfg GloVeConfig) (*Store, error) {
	return embedding.TrainGloVe(sentences, cfg)
}

// TrainSGNS fits word2vec skip-gram vectors on a custom tokenised corpus.
func TrainSGNS(sentences [][]string, cfg SGNSConfig) (*Store, error) {
	return embedding.TrainSGNS(sentences, cfg)
}

// DefaultGloVeConfig returns the reproduction's default GloVe settings.
func DefaultGloVeConfig() GloVeConfig { return embedding.DefaultGloVeConfig() }

// DefaultSGNSConfig returns the reproduction's default SGNS settings.
func DefaultSGNSConfig() SGNSConfig { return embedding.DefaultSGNSConfig() }

// NewHarness returns an evaluation harness with the paper's protocol
// (25 runs, 2:1 negative sampling).
func NewHarness(store *Store, seed int64) *Harness { return eval.NewHarness(store, seed) }

// NewSimilarityGraph returns an empty similarity graph; feed it
// Matcher.MatchAll output and cluster it.
func NewSimilarityGraph() *SimilarityGraph { return graph.New() }

// Value fusion (package fusion): reconcile a matched cluster's values
// into one canonical profile — the paper's future-work fusion step.
type (
	// FusedProfile is a cluster's canonical value profile.
	FusedProfile = fusion.Profile
	// CanonicalValue is one parsed, unit-normalised value.
	CanonicalValue = fusion.Canonical
)

// ParseValue canonicalises one raw value (number+unit, flag, or text).
func ParseValue(v string) CanonicalValue { return fusion.Parse(v) }

// FuseCluster aggregates a property cluster's values into a profile with
// agreement statistics.
func FuseCluster(values []string) FusedProfile { return fusion.FuseCluster(values) }

// Incremental integration (package integrate).
type (
	// Integrator accumulates sources, matching each new one against the
	// properties already integrated.
	Integrator = integrate.Integrator
)

// NewIntegrator wraps a trained matcher for incremental source
// integration.
func NewIntegrator(m *Matcher) (*Integrator, error) { return integrate.New(m) }

// Candidate blocking (package blocking): break the quadratic pair
// barrier before matching.
type (
	// Blocker proposes candidate pairs for the matcher to score.
	Blocker = blocking.Blocker
	// BlockingQuality reports pair completeness and reduction ratio.
	BlockingQuality = blocking.Quality
)

// NewTokenBlocker blocks on shared informative name tokens.
func NewTokenBlocker() Blocker { return blocking.NewTokenBlocker() }

// NewEmbeddingBlocker blocks on name-embedding nearest neighbours.
func NewEmbeddingBlocker(store *Store) Blocker { return blocking.NewEmbeddingBlocker(store) }

// UnionBlockers proposes the union of several blockers' candidates.
func UnionBlockers(bs ...Blocker) Blocker { return blocking.Union(bs) }

// MeasureBlocking scores a candidate set against ground truth.
func MeasureBlocking(cands []Pair, props []Property) BlockingQuality {
	return blocking.Measure(cands, props)
}

// Semantic labelling (package tapon): the two-phase labeler the paper's
// instance features originate from.
type (
	// Labeler assigns reference-ontology labels to properties from their
	// instance values alone (TAPON).
	Labeler = tapon.Labeler
	// LabelerOptions configures a Labeler.
	LabelerOptions = tapon.Options
	// Prediction is one labeled property.
	Prediction = tapon.Prediction
)

// NewLabeler builds a TAPON semantic labeler over the given embedding
// store and label set.
func NewLabeler(store *Store, classes []string, opts LabelerOptions) (*Labeler, error) {
	return tapon.New(store, classes, opts)
}

// DefaultLabelerOptions returns TAPON defaults.
func DefaultLabelerOptions(seed int64) LabelerOptions { return tapon.DefaultOptions(seed) }

// LabelAccuracy scores predictions against a dataset's ground truth,
// returning phase-2 accuracy, phase-1 accuracy and the slot count.
func LabelAccuracy(preds []Prediction, d *Dataset) (phase2, phase1 float64, n int) {
	return tapon.Accuracy(preds, d)
}

// CategoryClasses returns the reference property names of a category —
// the label set for NewLabeler.
func CategoryClasses(category string) ([]string, error) {
	c, ok := domain.Categories()[category]
	if !ok {
		return nil, fmt.Errorf("leapme: unknown category %q", category)
	}
	var out []string
	for _, p := range c.Props {
		out = append(out, p.Canonical)
	}
	return out, nil
}

// Baseline constructors.

// NewAML returns the AgreementMakerLight-style lexical baseline.
func NewAML() BaselineMatcher { return baselines.NewAML() }

// NewFCAMap returns the formal-concept-analysis baseline.
func NewFCAMap() BaselineMatcher { return baselines.NewFCAMap() }

// NewNezhadi returns the supervised string-similarity ML baseline.
// It implements baselines.Trainable and must be trained before matching.
func NewNezhadi() BaselineMatcher { return baselines.NewNezhadi() }

// NewSemProp returns the Seeping-Semantics-style embedding baseline.
func NewSemProp(store *Store) BaselineMatcher { return baselines.NewSemProp(store) }

// NewLSH returns the MinHash instance-based baseline.
func NewLSH() BaselineMatcher { return baselines.NewLSH() }
