package main

import (
	"bytes"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"leapme/internal/core"
	"leapme/internal/dataset"
	"leapme/internal/features"
)

// matrixCell is one point of the scorer throughput matrix: w concurrent
// scorer clones, each running batch-major ScoreBatch over b pairs, at a
// given GOMAXPROCS. One op = every worker finishing one batch.
type matrixCell struct {
	Procs       int     `json:"gomaxprocs"`
	Workers     int     `json:"workers"`
	Batch       int     `json:"batch"`
	Quantized   bool    `json:"quantized,omitempty"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	PairsPerSec float64 `json:"pairs_per_sec"`
}

// matrixDims returns the axes of the bench matrix for the current
// runtime: GOMAXPROCS values up to the process setting, worker counts,
// and batch sizes. The smoke test recomputes these to assert the emitted
// matrix is complete.
func matrixDims() (procs, workers, batches []int) {
	maxProcs := runtime.GOMAXPROCS(0)
	seen := map[int]bool{}
	for _, p := range []int{1, 2, 4, maxProcs} {
		if p >= 1 && p <= maxProcs && !seen[p] {
			seen[p] = true
			procs = append(procs, p)
		}
	}
	return procs, []int{1, 2, 4}, []int{8, 32}
}

// benchMatrix appends the GOMAXPROCS × workers × batch scorer throughput
// matrix to the report: the float64 kernel across the full grid, plus a
// quantised arm at the largest configuration. Quick mode runs one
// iteration per cell; otherwise each cell runs for at least ~200ms.
func benchMatrix(fx *benchFixture, rep *benchReport, quick bool) error {
	m, err := core.NewMatcher(fx.store, core.DefaultOptions(fx.seed))
	if err != nil {
		return err
	}
	if err := m.ReadModel(bytes.NewReader(fx.model)); err != nil {
		return err
	}
	sc, err := m.NewScorer()
	if err != nil {
		return err
	}
	qm, err := core.NewMatcher(fx.store, core.DefaultOptions(fx.seed))
	if err != nil {
		return err
	}
	if err := qm.ReadModel(bytes.NewReader(fx.model)); err != nil {
		return err
	}
	if err := qm.Quantize(); err != nil {
		return err
	}
	qsc, err := qm.NewScorer()
	if err != nil {
		return err
	}

	const maxBatch = 32
	values := fx.data.InstancesByProperty()
	var as, bs []*features.Prop
	dataset.CrossSourcePairs(fx.data.Props, func(a, b dataset.Property) bool {
		as = append(as, sc.Featurize(a.Name, values[a.Key()]))
		bs = append(bs, sc.Featurize(b.Name, values[b.Key()]))
		return len(as) < maxBatch
	})
	if len(as) < maxBatch {
		return fmt.Errorf("fixture has only %d cross-source pairs, want %d", len(as), maxBatch)
	}

	// runCell executes iters rounds: each of w workers scores one b-pair
	// batch per round on its own clone. Returns wall time for all rounds.
	runCell := func(ref *core.Scorer, w, b, iters int) (time.Duration, error) {
		clones := make([]*core.Scorer, w)
		for i := range clones {
			clones[i] = ref.Clone()
		}
		dsts := make([][]float64, w)
		for i := range dsts {
			dsts[i] = make([]float64, b)
		}
		errs := make([]error, w)
		var wg sync.WaitGroup
		start := time.Now()
		for i := 0; i < w; i++ {
			wg.Add(1)
			//lint:allow guardgo bench worker: a panic should crash benchtab, not be isolated into a report
			go func(i int) {
				defer wg.Done()
				for it := 0; it < iters; it++ {
					if err := clones[i].ScoreBatch(dsts[i], as[:b], bs[:b]); err != nil {
						errs[i] = err
						return
					}
				}
			}(i)
		}
		wg.Wait()
		d := time.Since(start)
		for _, err := range errs {
			if err != nil {
				return 0, err
			}
		}
		return d, nil
	}

	measure := func(ref *core.Scorer, procs, w, b int, quantized bool) (matrixCell, error) {
		prev := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(prev)
		iters := 1
		d, err := runCell(ref, w, b, iters) // warm clones, then measure
		if err != nil {
			return matrixCell{}, err
		}
		if !quick {
			// Scale to ~200ms of work per cell for stable numbers.
			if per := d / time.Duration(iters); per > 0 {
				if n := int(200 * time.Millisecond / per); n > 1 {
					iters = n
				}
			}
			if d, err = runCell(ref, w, b, iters); err != nil {
				return matrixCell{}, err
			}
		}
		ns := float64(d.Nanoseconds()) / float64(iters)
		cell := matrixCell{
			Procs: procs, Workers: w, Batch: b, Quantized: quantized,
			Iterations: iters, NsPerOp: ns,
		}
		if ns > 0 {
			cell.PairsPerSec = float64(w*b) * 1e9 / ns
		}
		return cell, nil
	}

	procsSet, workersSet, batchSet := matrixDims()
	for _, p := range procsSet {
		for _, w := range workersSet {
			for _, b := range batchSet {
				cell, err := measure(sc, p, w, b, false)
				if err != nil {
					return err
				}
				rep.Matrix = append(rep.Matrix, cell)
			}
		}
	}
	// Quantised arm at the largest configuration only — the grid shape
	// is pinned by the float64 kernel; this row tracks the int8 path.
	pMax := procsSet[len(procsSet)-1]
	wMax := workersSet[len(workersSet)-1]
	bMax := batchSet[len(batchSet)-1]
	cell, err := measure(qsc, pMax, wMax, bMax, true)
	if err != nil {
		return err
	}
	rep.Matrix = append(rep.Matrix, cell)

	var best float64
	for _, c := range rep.Matrix {
		if !c.Quantized && c.PairsPerSec > best {
			best = c.PairsPerSec
		}
	}
	rep.Derived["matrix_best_pairs_per_sec"] = best
	fmt.Fprintf(os.Stderr, "bench matrix: %d cells, best %.0f pairs/sec\n", len(rep.Matrix), best)
	return nil
}
