package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"leapme/internal/blocking"
	"leapme/internal/dataset"
	"leapme/internal/domain"
	"leapme/internal/index"
)

// blockingRow is one (corpus size, blocker) measurement in
// BENCH_blocking.json. Speedup compares total candidate-generation time
// (index build + all queries) against the exact EmbeddingBlocker scan on
// the same corpus; QuerySpeedup assumes a prebuilt snapshot (the serving
// path) and compares query time alone.
type blockingRow struct {
	Size             int     `json:"size"`
	Blocker          string  `json:"blocker"`
	BuildMs          float64 `json:"build_ms,omitempty"`
	QueryMs          float64 `json:"query_ms"`
	TotalMs          float64 `json:"total_ms"`
	Candidates       int     `json:"candidates"`
	PairCompleteness float64 `json:"pair_completeness"`
	RecallVsExact    float64 `json:"recall_vs_exact"`
	ReductionRatio   float64 `json:"reduction_ratio"`
	Speedup          float64 `json:"speedup,omitempty"`
	QuerySpeedup     float64 `json:"query_speedup,omitempty"`
}

// benchBlocking measures the ANN retrieval layer against the exact
// embedding blocker (the recall oracle) across corpus sizes: pair
// completeness versus ground truth, recall versus the exact scan's
// candidate set, and the candidate-generation speedup the index buys.
func benchBlocking(out string, seed int64, dim, workers int, sizes []int, stamp bool) error {
	start := time.Now()
	fmt.Fprintf(os.Stderr, "bench blocking: training embeddings (dim=%d)...\n", dim)
	store, err := trainStore(seed, dim)
	if err != nil {
		return err
	}

	rep := benchReport{
		Suite:       "blocking",
		Go:          runtime.Version(),
		DegradedEnv: runtime.GOMAXPROCS(0) == 1,
		Config: map[string]any{
			"seed":          seed,
			"embedding_dim": dim,
			"sizes":         sizes,
			"gomaxprocs":    runtime.GOMAXPROCS(0),
			"k":             10,
			"synonym_rate":  0.35,
		},
	}
	if stamp {
		rep.Timestamp = time.Now().UTC().Format(time.RFC3339)
	}

	var rows []blockingRow
	ctx := context.Background()
	for _, size := range sizes {
		cfg := dataset.LargeConfig(domain.Cameras(), size, 12, 0.35, seed)
		d, err := dataset.Generate(cfg)
		if err != nil {
			return err
		}
		props := d.Props
		fmt.Fprintf(os.Stderr, "bench blocking: corpus %d → %d properties, %d truth pairs\n",
			size, len(props), len(dataset.MatchingPairs(props)))

		// Exact oracle: one timed full scan. Quadratic, so one run is both
		// representative and all we can afford at the top sizes.
		exact := blocking.NewEmbeddingBlocker(store)
		t0 := time.Now()
		exactPairs := exact.Candidates(props)
		exactMs := msSince(t0)
		exactQ := blocking.Measure(exactPairs, props)
		exactSet := map[dataset.Pair]bool{}
		for _, p := range exactPairs {
			exactSet[p] = true
		}
		rows = append(rows, blockingRow{
			Size: len(props), Blocker: "exact", QueryMs: exactMs, TotalMs: exactMs,
			Candidates:       len(exactPairs),
			PairCompleteness: exactQ.PairCompleteness,
			RecallVsExact:    1,
			ReductionRatio:   exactQ.ReductionRatio,
		})

		for _, backend := range []string{index.BackendLSH, index.BackendHNSW} {
			opts := index.Options{Backend: backend, Seed: seed, Workers: workers}
			t0 = time.Now()
			snap, err := index.BuildSnapshot(ctx, store, props, opts)
			if err != nil {
				return err
			}
			buildMs := msSince(t0)

			ann := blocking.NewANNBlocker(store, opts)
			ann.Snapshot = snap
			t0 = time.Now()
			cands, err := ann.CandidatesCtx(ctx, props)
			if err != nil {
				return err
			}
			queryMs := msSince(t0)

			q := blocking.Measure(cands, props)
			overlap := 0
			for _, p := range cands {
				if exactSet[p] {
					overlap++
				}
			}
			recall := 0.0
			if len(exactPairs) > 0 {
				recall = float64(overlap) / float64(len(exactPairs))
			}
			row := blockingRow{
				Size: len(props), Blocker: ann.Name(),
				BuildMs: buildMs, QueryMs: queryMs, TotalMs: buildMs + queryMs,
				Candidates:       len(cands),
				PairCompleteness: q.PairCompleteness,
				RecallVsExact:    recall,
				ReductionRatio:   q.ReductionRatio,
			}
			if row.TotalMs > 0 {
				row.Speedup = exactMs / row.TotalMs
			}
			if queryMs > 0 {
				row.QuerySpeedup = exactMs / queryMs
			}
			rows = append(rows, row)
			fmt.Fprintf(os.Stderr, "  %-10s PC=%.3f recall=%.3f RR=%.3f build=%.0fms query=%.0fms speedup=%.1fx\n",
				row.Blocker, row.PairCompleteness, row.RecallVsExact, row.ReductionRatio,
				row.BuildMs, row.QueryMs, row.Speedup)
		}
	}
	rep.Blocking = rows

	// Derived gate values: the best (pair completeness, speedup) an ANN
	// backend achieves at the largest corpus — what the recall-vs-speedup
	// claim in EXPERIMENTS.md rests on.
	maxSize := 0
	for _, r := range rows {
		if r.Blocker != "exact" && r.Size > maxSize {
			maxSize = r.Size
		}
	}
	best := blockingRow{}
	for _, r := range rows {
		if r.Blocker == "exact" || r.Size != maxSize {
			continue
		}
		better := r.PairCompleteness > best.PairCompleteness
		//lint:allow floateq tie-break between identical measured values; any exact-bits outcome is acceptable
		if !better && r.PairCompleteness == best.PairCompleteness {
			better = r.Speedup > best.Speedup
		}
		if better {
			best = r
		}
	}
	rep.Derived = map[string]float64{
		"best_pair_completeness": best.PairCompleteness,
		"best_recall_vs_exact":   best.RecallVsExact,
		"best_speedup":           best.Speedup,
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "bench blocking: wrote %s in %v\n", out, time.Since(start).Round(time.Millisecond))
	return nil
}

func msSince(t time.Time) float64 { return float64(time.Since(t).Nanoseconds()) / 1e6 }
