package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"testing"
)

func TestBenchtabDatasetsTable(t *testing.T) {
	if testing.Short() {
		t.Skip("embedding training in -short mode")
	}
	// The cheapest artefact: dataset statistics only.
	if err := run("datasets", "lite", 1, 1, "headphones", 8, false); err != nil {
		t.Fatal(err)
	}
}

func TestBenchtabUnknownTable(t *testing.T) {
	if testing.Short() {
		t.Skip("embedding training in -short mode")
	}
	if err := run("bogus", "lite", 1, 1, "headphones", 8, false); err == nil {
		t.Error("unknown table accepted")
	}
}

// TestBenchParallelMatrixSmoke runs the parallel suite at GOMAXPROCS=2
// with the 1-iteration budget — the CI gate that the bench matrix
// plumbing works on multi-proc settings: degraded_env must be false, the
// matrix must be complete (full float64 grid + the quantised arm), every
// cell must have measured throughput, and -stamp=false must keep the
// timestamp out of the report.
func TestBenchParallelMatrixSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("embedding training in -short mode")
	}
	prev := runtime.GOMAXPROCS(2)
	defer runtime.GOMAXPROCS(prev)
	out := filepath.Join(t.TempDir(), "BENCH_parallel_smoke.json")
	if err := runBench("parallel", out, 1, 8, 2, true, false); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep benchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.DegradedEnv {
		t.Error("degraded_env true at GOMAXPROCS=2")
	}
	if rep.Timestamp != "" {
		t.Errorf("-stamp=false leaked timestamp %q into the report", rep.Timestamp)
	}
	procs, workers, batches := matrixDims()
	want := len(procs)*len(workers)*len(batches) + 1 // + the quantised arm
	if len(rep.Matrix) != want {
		t.Fatalf("matrix has %d cells, want %d (%v procs × %v workers × %v batches + quant)",
			len(rep.Matrix), want, procs, workers, batches)
	}
	quant := 0
	for i, c := range rep.Matrix {
		if c.PairsPerSec <= 0 || c.NsPerOp <= 0 || c.Iterations < 1 {
			t.Errorf("matrix cell %d unmeasured: %+v", i, c)
		}
		if c.Quantized {
			quant++
		}
	}
	if quant != 1 {
		t.Errorf("matrix has %d quantised cells, want 1", quant)
	}
	if len(rep.Results) == 0 {
		t.Error("parallel suite emitted no results")
	}
	if rep.Derived["matrix_best_pairs_per_sec"] <= 0 {
		t.Error("derived matrix_best_pairs_per_sec missing")
	}
}

func TestBenchtabBadInputs(t *testing.T) {
	if testing.Short() {
		t.Skip("embedding training in -short mode")
	}
	if err := run("datasets", "huge", 1, 1, "headphones", 8, false); err == nil {
		t.Error("unknown scale accepted")
	}
	if err := run("datasets", "lite", 1, 1, "bicycles", 8, false); err == nil {
		t.Error("unknown dataset accepted")
	}
}
