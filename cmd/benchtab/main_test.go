package main

import "testing"

func TestBenchtabDatasetsTable(t *testing.T) {
	if testing.Short() {
		t.Skip("embedding training in -short mode")
	}
	// The cheapest artefact: dataset statistics only.
	if err := run("datasets", "lite", 1, 1, "headphones", 8, false); err != nil {
		t.Fatal(err)
	}
}

func TestBenchtabUnknownTable(t *testing.T) {
	if testing.Short() {
		t.Skip("embedding training in -short mode")
	}
	if err := run("bogus", "lite", 1, 1, "headphones", 8, false); err == nil {
		t.Error("unknown table accepted")
	}
}

func TestBenchtabBadInputs(t *testing.T) {
	if testing.Short() {
		t.Skip("embedding training in -short mode")
	}
	if err := run("datasets", "huge", 1, 1, "headphones", 8, false); err == nil {
		t.Error("unknown scale accepted")
	}
	if err := run("datasets", "lite", 1, 1, "bicycles", 8, false); err == nil {
		t.Error("unknown dataset accepted")
	}
}
