// Command benchtab regenerates the paper's evaluation artefacts:
//
//	benchtab -table 2          # Table II (the paper's main results table)
//	benchtab -table ablation   # A1: the 9 feature configurations on one dataset
//	benchtab -table fractions  # A2: training-fraction sweep
//	benchtab -table transfer   # A3: cross-dataset transfer learning
//	benchtab -table clusters   # A4: property clustering from the similarity graph
//	benchtab -table datasets   # dataset statistics (the paper's Section V-B numbers)
//
// By default it runs on the -lite dataset variants with a reduced run
// count so a full Table II completes in minutes on a laptop; pass
// -scale full -runs 25 for the paper-scale protocol (hours).
// EXPERIMENTS.md records both the expected shapes and measured outputs.
//
// It also emits machine-readable performance baselines for the serving
// and training pipelines (`make bench-json` regenerates both):
//
//	benchtab -bench serve -out BENCH_serve.json
//	benchtab -bench train -out BENCH_train.json
//	benchtab -bench parallel -out BENCH_parallel.json [-workers N]
//	benchtab -bench blocking -out BENCH_blocking.json [-blocking-sizes 2000,5000,10000,15000]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"leapme/internal/dataset"
	"leapme/internal/domain"
	"leapme/internal/embedding"
	"leapme/internal/eval"
)

func main() {
	table := flag.String("table", "2", "which artefact to regenerate: 2|ablation|fractions|transfer|clusters|heterogeneity|datasets")
	scale := flag.String("scale", "lite", "dataset scale: lite|full")
	runs := flag.Int("runs", 3, "runs per configuration (paper: 25)")
	seed := flag.Int64("seed", 1, "seed")
	names := flag.String("datasets", "cameras,headphones,phones,tvs", "datasets to include")
	dim := flag.Int("dim", 50, "embedding dimension")
	verbose := flag.Bool("v", false, "per-run progress on stderr")
	bench := flag.String("bench", "", "emit a JSON benchmark report instead of a table: serve|train|parallel|blocking")
	out := flag.String("out", "", "output file for -bench (default BENCH_<suite>.json)")
	workers := flag.Int("workers", 0, "worker count for the parallel arms and eval repetitions (0 = all CPUs)")
	blockingSizes := flag.String("blocking-sizes", "2000,5000,10000,15000", "corpus sizes for -bench blocking")
	quick := flag.Bool("quick", false, "1-iteration bench budget: validates report shape in CI, numbers are not statistically meaningful")
	stamp := flag.Bool("stamp", true, "stamp wall-clock timestamp into bench JSON (disable for diffable CI output)")
	flag.Parse()

	if *bench != "" {
		if *out == "" {
			*out = "BENCH_" + *bench + ".json"
		}
		var err error
		if *bench == "blocking" {
			var sizes []int
			if sizes, err = parseSizes(*blockingSizes); err == nil {
				err = benchBlocking(*out, *seed, 32, *workers, sizes, *stamp)
			}
		} else {
			err = runBench(*bench, *out, *seed, 32, *workers, *quick, *stamp)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchtab:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*table, *scale, *runs, *seed, *names, *dim, *verbose); err != nil {
		fmt.Fprintln(os.Stderr, "benchtab:", err)
		os.Exit(1)
	}
}

func run(table, scale string, runs int, seed int64, names string, dim int, verbose bool) error {
	start := time.Now()
	fmt.Fprintf(os.Stderr, "training domain embeddings (dim=%d)...\n", dim)
	store, err := trainStore(seed, dim)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "embeddings ready: %d words in %v\n", store.Size(), time.Since(start).Round(time.Millisecond))

	ds, err := buildDatasets(names, scale, seed)
	if err != nil {
		return err
	}

	h := eval.NewHarness(store, seed)
	h.Runs = runs
	if verbose {
		h.OnRun = func(run int, m eval.PRF) { fmt.Fprintf(os.Stderr, "  run %d: %v\n", run, m) }
	}

	switch table {
	case "2":
		rows, err := h.Table2(eval.Table2Config{Datasets: ds})
		if err != nil {
			return err
		}
		fmt.Println("=== Table II: P/R/F1 by feature level, dataset, training fraction ===")
		fmt.Print(eval.RenderTable2(rows))
	case "ablation":
		for _, d := range ds {
			fmt.Printf("=== A1: feature ablation on %s @ 80%% training ===\n", d.Name)
			rows, err := h.Ablation(d, 0.8)
			if err != nil {
				return err
			}
			for _, r := range rows {
				fmt.Printf("%-16s %v\n", r.Config, r.Metrics)
			}
		}
	case "fractions":
		fmt.Println("=== A2: training-fraction sweep (LEAPME, all features) ===")
		fmt.Printf("%-14s %-6s %-6s %-6s %-6s\n", "dataset", "frac", "P", "R", "F1")
		for _, d := range ds {
			pts, err := h.FractionSweep(d, []float64{0.2, 0.4, 0.6, 0.8})
			if err != nil {
				return err
			}
			for _, pt := range pts {
				fmt.Printf("%-14s %-6.1f %-6.2f %-6.2f %-6.2f\n", pt.Dataset, pt.TrainFrac, pt.Metrics.P, pt.Metrics.R, pt.Metrics.F1)
			}
		}
	case "transfer":
		fmt.Println("=== A3: transfer learning (train on rows, test on columns; F1) ===")
		res, err := h.Transfer(ds)
		if err != nil {
			return err
		}
		cells := map[string]map[string]eval.PRF{}
		var order []string
		for _, r := range res {
			if cells[r.TrainDataset] == nil {
				cells[r.TrainDataset] = map[string]eval.PRF{}
				order = append(order, r.TrainDataset)
			}
			cells[r.TrainDataset][r.TestDataset] = r.Metrics
		}
		fmt.Printf("%-14s", "train\\test")
		for _, c := range order {
			fmt.Printf(" %-12s", c)
		}
		fmt.Println()
		for _, tr := range order {
			fmt.Printf("%-14s", tr)
			for _, te := range order {
				fmt.Printf(" %-12.2f", cells[tr][te].F1)
			}
			fmt.Println()
		}
	case "clusters":
		fmt.Println("=== A4: property clustering from the similarity graph (80% training) ===")
		fmt.Printf("%-14s %-24s %-6s %-6s %-6s\n", "dataset", "scheme", "P", "R", "F1")
		for _, d := range ds {
			res, err := h.Clusterings(d)
			if err != nil {
				return err
			}
			for _, r := range res {
				fmt.Printf("%-14s %-24s %-6.2f %-6.2f %-6.2f\n", r.Dataset, r.Scheme, r.Metrics.P, r.Metrics.R, r.Metrics.F1)
			}
		}
	case "heterogeneity":
		fmt.Println("=== A5: name-heterogeneity sweep (80% training; F1) ===")
		fmt.Println("lower canonical bias = sources agree less on names")
		fmt.Printf("%-8s %-8s %-8s %-8s %-10s\n", "bias", "LEAPME", "AML", "FCA-Map", "margin")
		cfg := dataset.HeadphonesConfig(seed)
		if scale == "lite" {
			cfg = dataset.Lite(cfg)
		}
		pts, err := h.HeterogeneitySweep(cfg, nil)
		if err != nil {
			return err
		}
		for _, pt := range pts {
			best := pt.AML.F1
			if pt.FCAMap.F1 > best {
				best = pt.FCAMap.F1
			}
			fmt.Printf("%-8.1f %-8.2f %-8.2f %-8.2f %+-10.2f\n",
				pt.CanonicalBias, pt.LEAPME.F1, pt.AML.F1, pt.FCAMap.F1, pt.LEAPME.F1-best)
		}
	case "datasets":
		fmt.Println("=== Dataset statistics (compare with the paper's Section V-B) ===")
		fmt.Printf("%-14s %-8s %-11s %-9s %-10s %-14s\n", "dataset", "sources", "properties", "entities", "instances", "matching pairs")
		for _, d := range ds {
			s := d.Summary()
			fmt.Printf("%-14s %-8d %-11d %-9d %-10d %-14d\n", d.Name, s.Sources, s.Properties, s.Entities, s.Instances, s.MatchingPairs)
		}
	default:
		return fmt.Errorf("unknown table %q", table)
	}
	fmt.Fprintf(os.Stderr, "total time: %v\n", time.Since(start).Round(time.Millisecond))
	return nil
}

// parseSizes parses the -blocking-sizes list.
func parseSizes(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		var n int
		if _, err := fmt.Sscanf(part, "%d", &n); err != nil || n <= 0 {
			return nil, fmt.Errorf("bad -blocking-sizes entry %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty -blocking-sizes")
	}
	return out, nil
}

func trainStore(seed int64, dim int) (*embedding.Store, error) {
	all := domain.Categories()
	cats := []*domain.Category{all["cameras"], all["headphones"], all["phones"], all["tvs"]}
	corpus := domain.Corpus(cats, domain.CorpusConfig{SentencesPerProp: 120, Seed: seed})
	cfg := embedding.DefaultGloVeConfig()
	cfg.Dim = dim
	cfg.Seed = seed
	return embedding.TrainGloVe(corpus, cfg)
}

func buildDatasets(names, scale string, seed int64) ([]*dataset.Dataset, error) {
	configs := map[string]dataset.GenConfig{
		"cameras":    dataset.CamerasConfig(seed),
		"headphones": dataset.HeadphonesConfig(seed),
		"phones":     dataset.PhonesConfig(seed),
		"tvs":        dataset.TVsConfig(seed),
	}
	var ds []*dataset.Dataset
	for _, name := range strings.Split(names, ",") {
		cfg, ok := configs[strings.TrimSpace(name)]
		if !ok {
			return nil, fmt.Errorf("unknown dataset %q", name)
		}
		switch scale {
		case "lite":
			cfg = dataset.Lite(cfg)
		case "full":
		default:
			return nil, fmt.Errorf("unknown scale %q (lite|full)", scale)
		}
		d, err := dataset.Generate(cfg)
		if err != nil {
			return nil, err
		}
		ds = append(ds, d)
	}
	return ds, nil
}
