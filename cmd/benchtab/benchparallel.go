package main

import (
	"context"
	"runtime"

	"leapme/internal/core"
	"leapme/internal/eval"
	"leapme/internal/features"
	"leapme/internal/nn"
)

// benchParallel measures the parallel pipeline against its 1-worker arm:
// the chunked trainer in nn.Fit, property featurization, and the
// 25-repetition evaluation loop. Both arms run the *same* deterministic
// algorithm (the worker count never changes results, only wall clock), so
// the derived speedups isolate scheduling overhead and core utilisation.
// On a single-core machine the honest answer is ~1x; the ≥2x acceptance
// target applies to 4+ core hardware. It also emits the scorer bench
// matrix (GOMAXPROCS × workers × batch size — see benchmatrix.go).
func benchParallel(fx *benchFixture, rep *benchReport, workers int, quick bool) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	rep.Config["workers"] = workers
	ctx := context.Background()

	matcherAt := func(w int) (*core.Matcher, error) {
		opts := core.DefaultOptions(fx.seed)
		opts.Workers = w
		m, err := core.NewMatcher(fx.store, opts)
		if err != nil {
			return nil, err
		}
		return m, m.ComputeFeatures(ctx, fx.data)
	}

	// Featurization: whole dataset, 1 worker vs N.
	featAt := func(name string, w int) (benchResult, error) {
		r, err := benchOp(quick, func() error {
			_, err := matcherAt(w)
			return err
		})
		return resultOf(name, len(fx.data.Props), r), err
	}
	feat1, err := featAt("featurize_workers_1", 1)
	if err != nil {
		return err
	}
	featN, err := featAt("featurize_workers_n", workers)
	if err != nil {
		return err
	}

	// Training: chunked gradient path, 1 worker vs N, features shared.
	m1, err := matcherAt(1)
	if err != nil {
		return err
	}
	fitAt := func(name string, w int) (benchResult, error) {
		opts := core.DefaultOptions(fx.seed)
		opts.Workers = w
		m, err := core.NewMatcher(fx.store, opts)
		if err != nil {
			return benchResult{}, err
		}
		if err := m.AdoptFeatures(m1); err != nil {
			return benchResult{}, err
		}
		r, err := benchOp(quick, func() error {
			_, err := m.Train(ctx, fx.pairs)
			return err
		})
		return resultOf(name, len(fx.pairs), r), err
	}
	fit1, err := fitAt("fit_workers_1", 1)
	if err != nil {
		return err
	}
	fitN, err := fitAt("fit_workers_n", workers)
	if err != nil {
		return err
	}

	// The paper's repetition loop: 25 random splits, serial vs concurrent
	// repetitions (3 splits under -quick). A shortened LR schedule keeps
	// one op in seconds; the serial/parallel ratio is what matters, not
	// the absolute time.
	evalRuns := 25
	if quick {
		evalRuns = 3
	}
	evalAt := func(name string, w int) (benchResult, error) {
		h := eval.NewHarness(fx.store, fx.seed)
		h.Runs = evalRuns
		h.Workers = w
		h.Options.Workers = 1 // per-rep training single-threaded: reps are the unit
		h.Options.Schedule = []nn.Phase{{Epochs: 4, LR: 1e-3}}
		r, err := benchOp(quick, func() error {
			_, err := h.EvalLEAPMEStats(fx.data, features.FullConfig(), 0.8)
			return err
		})
		return resultOf(name, h.Runs, r), err
	}
	eval1, err := evalAt("eval_reps_serial", 1)
	if err != nil {
		return err
	}
	evalN, err := evalAt("eval_reps_parallel", workers)
	if err != nil {
		return err
	}
	rep.Config["eval_runs"] = evalRuns
	rep.Config["eval_epochs"] = 4

	rep.Results = append(rep.Results, feat1, featN, fit1, fitN, eval1, evalN)
	rep.Derived = map[string]float64{
		"featurize_speedup": feat1.NsPerOp / featN.NsPerOp,
		"fit_speedup":       fit1.NsPerOp / fitN.NsPerOp,
		"eval_speedup":      eval1.NsPerOp / evalN.NsPerOp,
		"workers":           float64(workers),
	}
	return benchMatrix(fx, rep, quick)
}
