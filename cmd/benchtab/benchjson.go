package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"testing"
	"time"

	"leapme/internal/core"
	"leapme/internal/dataset"
	"leapme/internal/embedding"
	"leapme/internal/features"
	"leapme/internal/mathx"
	"leapme/internal/serve"
)

// benchResult is one benchmark row in BENCH_*.json.
type benchResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	PairsPerOp  int     `json:"pairs_per_op,omitempty"`
	PairsPerSec float64 `json:"pairs_per_sec,omitempty"`
}

// benchReport is the BENCH_serve.json / BENCH_train.json document.
type benchReport struct {
	Suite string `json:"suite"`
	Go    string `json:"go"`
	// Timestamp is the wall-clock stamp of the run. -stamp=false omits
	// it so CI can diff reports without a guaranteed churn line.
	Timestamp string `json:"timestamp,omitempty"`
	// DegradedEnv marks numbers taken on a crippled runtime — currently
	// GOMAXPROCS=1, where parallel suites measure scheduling overhead, not
	// speedup. Readers (and CI diffing) must not compare degraded reports
	// against healthy ones.
	DegradedEnv bool               `json:"degraded_env,omitempty"`
	Config      map[string]any     `json:"config"`
	Results     []benchResult      `json:"results,omitempty"`
	Blocking    []blockingRow      `json:"blocking,omitempty"`
	Matrix      []matrixCell       `json:"matrix,omitempty"`
	Derived     map[string]float64 `json:"derived,omitempty"`
}

// benchOp measures one operation: the full path runs it under
// testing.Benchmark (auto-scaled iteration count), the quick path runs
// exactly one iteration and synthesises the result — the 1-iteration
// budget CI smoke runs use to validate report shape without paying for
// statistically meaningful numbers.
func benchOp(quick bool, op func() error) (testing.BenchmarkResult, error) {
	if quick {
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		t0 := time.Now()
		err := op()
		d := time.Since(t0)
		runtime.ReadMemStats(&m1)
		return testing.BenchmarkResult{
			N: 1, T: d,
			MemAllocs: m1.Mallocs - m0.Mallocs,
			MemBytes:  m1.TotalAlloc - m0.TotalAlloc,
		}, err
	}
	var opErr error
	r := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := op(); err != nil {
				opErr = err
				b.FailNow()
			}
		}
	})
	return r, opErr
}

func resultOf(name string, pairsPerOp int, r testing.BenchmarkResult) benchResult {
	ns := float64(r.T.Nanoseconds()) / float64(r.N)
	out := benchResult{
		Name:        name,
		Iterations:  r.N,
		NsPerOp:     ns,
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		PairsPerOp:  pairsPerOp,
	}
	if pairsPerOp > 0 && ns > 0 {
		out.PairsPerSec = float64(pairsPerOp) * 1e9 / ns
	}
	return out
}

// benchFixture is the shared setup for both suites: embeddings, a lite
// dataset, a trained matcher and its serialised model.
type benchFixture struct {
	seed  int64
	dim   int
	store *embedding.Store
	data  *dataset.Dataset
	pairs []core.LabeledPair
	model []byte
}

func newBenchFixture(seed int64, dim int) (*benchFixture, error) {
	store, err := trainStore(seed, dim)
	if err != nil {
		return nil, err
	}
	d, err := dataset.Generate(dataset.Lite(dataset.CamerasConfig(seed)))
	if err != nil {
		return nil, err
	}
	m, err := core.NewMatcher(store, core.DefaultOptions(seed))
	if err != nil {
		return nil, err
	}
	ctx := context.Background()
	if err := m.ComputeFeatures(ctx, d); err != nil {
		return nil, err
	}
	pairs := core.TrainingPairs(d.Props, 2, mathx.NewRand(seed))
	if _, err := m.Train(ctx, pairs); err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := m.WriteModel(&buf); err != nil {
		return nil, err
	}
	return &benchFixture{seed: seed, dim: dim, store: store, data: d, pairs: pairs, model: buf.Bytes()}, nil
}

// runBench runs the serve, train or parallel suite and writes the JSON
// report. quick caps every measurement at one iteration; stamp=false
// omits the wall-clock timestamp for diffable CI output.
func runBench(suite, out string, seed int64, dim, workers int, quick, stamp bool) error {
	start := time.Now()
	fmt.Fprintf(os.Stderr, "bench %s: preparing fixture (embeddings dim=%d, lite cameras, trained model)...\n", suite, dim)
	fx, err := newBenchFixture(seed, dim)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "bench %s: fixture ready in %v\n", suite, time.Since(start).Round(time.Millisecond))

	rep := benchReport{
		Suite:       suite,
		Go:          runtime.Version(),
		DegradedEnv: runtime.GOMAXPROCS(0) == 1,
		Config: map[string]any{
			"seed":           fx.seed,
			"embedding_dim":  fx.dim,
			"dataset":        fx.data.Name,
			"properties":     len(fx.data.Props),
			"training_pairs": len(fx.pairs),
			"gomaxprocs":     runtime.GOMAXPROCS(0),
			"quick":          quick,
		},
	}
	if stamp {
		rep.Timestamp = time.Now().UTC().Format(time.RFC3339)
	}
	switch suite {
	case "serve":
		err = benchServe(fx, &rep, quick)
	case "train":
		err = benchTrain(fx, &rep, workers, quick)
	case "parallel":
		err = benchParallel(fx, &rep, workers, quick)
	default:
		return fmt.Errorf("unknown bench suite %q (serve|train|parallel)", suite)
	}
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "bench %s: wrote %s in %v\n", suite, out, time.Since(start).Round(time.Millisecond))
	return nil
}

func benchTrain(fx *benchFixture, rep *benchReport, workers int, quick bool) error {
	ctx := context.Background()

	// Feature computation over the whole dataset (one op = all properties).
	r, err := benchOp(quick, func() error {
		m, err := core.NewMatcher(fx.store, core.DefaultOptions(fx.seed))
		if err != nil {
			return err
		}
		return m.ComputeFeatures(ctx, fx.data)
	})
	if err != nil {
		return err
	}
	rep.Results = append(rep.Results, resultOf("compute_features_dataset", 0, r))

	// Flat-slab featurisation of the same properties through the
	// extractor's matrix path — the allocation-free emission the
	// pipeline uses underneath ComputeFeatures.
	values := fx.data.InstancesByProperty()
	items := make([]features.PropertyInput, len(fx.data.Props))
	for i, p := range fx.data.Props {
		items[i] = features.PropertyInput{Name: p.Name, Values: values[p.Key()]}
	}
	fmEx := features.NewExtractor(fx.store)
	r, err = benchOp(quick, func() error {
		_, _, err := fmEx.FeatureMatrix(ctx, 0, items)
		return err
	})
	if err != nil {
		return err
	}
	rep.Results = append(rep.Results, resultOf("feature_matrix", 0, r))

	// Training-pair generation.
	r, err = benchOp(quick, func() error {
		core.TrainingPairs(fx.data.Props, 2, mathx.NewRand(fx.seed))
		return nil
	})
	if err != nil {
		return err
	}
	rep.Results = append(rep.Results, resultOf("training_pair_generation", len(fx.pairs), r))

	// Full training run (features precomputed once outside the timer);
	// pairs/sec counts labeled pairs consumed per second of training.
	m, err := core.NewMatcher(fx.store, core.DefaultOptions(fx.seed))
	if err != nil {
		return err
	}
	if err := m.ComputeFeatures(ctx, fx.data); err != nil {
		return err
	}
	r, err = benchOp(quick, func() error {
		_, err := m.Train(ctx, fx.pairs)
		return err
	})
	if err != nil {
		return err
	}
	trainFull := resultOf("train_full", len(fx.pairs), r)
	rep.Results = append(rep.Results, trainFull)

	// Same training run through the flat TrainKernel (Workers ≥ 1
	// dispatches core.Train onto it). The trained bytes are bit-identical
	// to the chunked Fit path — the equivalence suites pin that — so this
	// row measures pure hot-path speedup, not a different model.
	kw := workers
	if kw <= 0 {
		kw = runtime.GOMAXPROCS(0)
	}
	kOpts := core.DefaultOptions(fx.seed)
	kOpts.Workers = kw
	km, err := core.NewMatcher(fx.store, kOpts)
	if err != nil {
		return err
	}
	if err := km.ComputeFeatures(ctx, fx.data); err != nil {
		return err
	}
	r, err = benchOp(quick, func() error {
		_, err := km.Train(ctx, fx.pairs)
		return err
	})
	if err != nil {
		return err
	}
	trainKernel := resultOf("train_kernel_full", len(fx.pairs), r)
	rep.Results = append(rep.Results, trainKernel)

	if rep.Derived == nil {
		rep.Derived = map[string]float64{}
	}
	if trainKernel.NsPerOp > 0 {
		rep.Derived["train_speedup"] = trainFull.NsPerOp / trainKernel.NsPerOp
	}
	rep.Config["kernel_workers"] = kw
	return nil
}

// benchPairs builds the wire-level request body reused by the HTTP
// benchmarks: n cross-source pairs with instance values.
func benchPairs(fx *benchFixture, n int) ([]byte, error) {
	values := fx.data.InstancesByProperty()
	type propSpec struct {
		Name   string   `json:"name"`
		Values []string `json:"values,omitempty"`
	}
	type pairSpec struct {
		A propSpec `json:"a"`
		B propSpec `json:"b"`
	}
	var pairs []pairSpec
	dataset.CrossSourcePairs(fx.data.Props, func(a, b dataset.Property) bool {
		pairs = append(pairs, pairSpec{
			A: propSpec{Name: a.Name, Values: values[a.Key()]},
			B: propSpec{Name: b.Name, Values: values[b.Key()]},
		})
		return len(pairs) < n
	})
	if len(pairs) < n {
		return nil, fmt.Errorf("fixture has only %d cross-source pairs, want %d", len(pairs), n)
	}
	return json.Marshal(map[string]any{"pairs": pairs})
}

func benchServe(fx *benchFixture, rep *benchReport, quick bool) error {
	dir, err := os.MkdirTemp("", "leapme-bench")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	modelPath := dir + "/model.leapme"
	if err := os.WriteFile(modelPath, fx.model, 0o644); err != nil {
		return err
	}

	const pairsPerReq = 32
	body, err := benchPairs(fx, pairsPerReq)
	if err != nil {
		return err
	}
	rep.Config["pairs_per_request"] = pairsPerReq

	// newServer spins up an httptest server; cache toggles the feature
	// cache so cold vs warm isolates its effect.
	newServer := func(cacheSize int) (*serve.Server, *httptest.Server, error) {
		s, err := serve.New(serve.Config{
			Store:     fx.store,
			Models:    []serve.ModelSource{{Name: "default", Path: modelPath}},
			CacheSize: cacheSize,
		})
		if err != nil {
			return nil, nil, err
		}
		return s, httptest.NewServer(s.Handler()), nil
	}
	post := func(ts *httptest.Server) error {
		resp, err := ts.Client().Post(ts.URL+"/v1/match", "application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("/v1/match: status %d", resp.StatusCode)
		}
		var sink struct {
			Results []struct {
				Error string `json:"error"`
			} `json:"results"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&sink); err != nil {
			return err
		}
		for _, r := range sink.Results {
			if r.Error != "" {
				return fmt.Errorf("pair failed: %s", r.Error)
			}
		}
		return nil
	}
	benchHTTP := func(name string, cacheSize int, parallel bool) (benchResult, error) {
		s, ts, err := newServer(cacheSize)
		if err != nil {
			return benchResult{}, err
		}
		defer func() { ts.Close(); s.Close() }()
		if err := post(ts); err != nil { // warm-up (fills cache when enabled)
			return benchResult{}, err
		}
		var r testing.BenchmarkResult
		if parallel && !quick {
			var benchErr error
			r = testing.Benchmark(func(b *testing.B) {
				b.RunParallel(func(pb *testing.PB) {
					for pb.Next() {
						if err := post(ts); err != nil {
							benchErr = err
							return
						}
					}
				})
			})
			if benchErr != nil {
				return benchResult{}, benchErr
			}
		} else {
			if r, err = benchOp(quick, func() error { return post(ts) }); err != nil {
				return benchResult{}, err
			}
		}
		return resultOf(name, pairsPerReq, r), nil
	}

	cold, err := benchHTTP("http_match_cold_cache_off", -1, false)
	if err != nil {
		return err
	}
	warm, err := benchHTTP("http_match_warm_cache_on", 0, false)
	if err != nil {
		return err
	}
	conc, err := benchHTTP("http_match_concurrent_cache_on", 0, true)
	if err != nil {
		return err
	}
	rep.Results = append(rep.Results, cold, warm, conc)

	// Library scorer baseline: same pairs, no HTTP, no batching — the
	// floor the serving layers are compared against.
	m, err := core.NewMatcher(fx.store, core.DefaultOptions(fx.seed))
	if err != nil {
		return err
	}
	if err := m.ReadModel(bytes.NewReader(fx.model)); err != nil {
		return err
	}
	sc, err := m.NewScorer()
	if err != nil {
		return err
	}
	values := fx.data.InstancesByProperty()
	var as, bs []*features.Prop
	dataset.CrossSourcePairs(fx.data.Props, func(a, b dataset.Property) bool {
		as = append(as, sc.Featurize(a.Name, values[a.Key()]))
		bs = append(bs, sc.Featurize(b.Name, values[b.Key()]))
		return len(as) < pairsPerReq
	})
	dst := make([]float64, len(as))
	r, err := benchOp(quick, func() error { return sc.ScoreBatch(dst, as, bs) })
	if err != nil {
		return err
	}
	batchLib := resultOf("scorer_batch_library", len(as), r)
	rep.Results = append(rep.Results, batchLib)

	// Single-pair path: same arena-backed kernel, no batch gathering.
	r, err = benchOp(quick, func() error {
		_, err := sc.Score(as[0], bs[0])
		return err
	})
	if err != nil {
		return err
	}
	rep.Results = append(rep.Results, resultOf("scorer_single_library", 1, r))

	// Quantised scorer: the opt-in int8/float32 kernel over the same
	// model and pairs (quantised at load, as Options.Quantized would).
	qm, err := core.NewMatcher(fx.store, core.DefaultOptions(fx.seed))
	if err != nil {
		return err
	}
	if err := qm.ReadModel(bytes.NewReader(fx.model)); err != nil {
		return err
	}
	if err := qm.Quantize(); err != nil {
		return err
	}
	qsc, err := qm.NewScorer()
	if err != nil {
		return err
	}
	r, err = benchOp(quick, func() error { return qsc.ScoreBatch(dst, as, bs) })
	if err != nil {
		return err
	}
	batchQuant := resultOf("scorer_batch_quant", len(as), r)
	rep.Results = append(rep.Results, batchQuant)

	rep.Derived = map[string]float64{
		// How much the feature cache buys on repeated property content:
		// identical requests, cache off vs on.
		"feature_cache_speedup": cold.NsPerOp / warm.NsPerOp,
		// HTTP+batching overhead versus the raw library scorer.
		"http_overhead_x": warm.NsPerOp / batchLib.NsPerOp,
		// Quantised kernel versus the float64 reference on the batch path.
		"quant_speedup": batchLib.NsPerOp / batchQuant.NsPerOp,
	}
	return nil
}
