// Command leapme is the end-to-end CLI for the LEAPME property matcher:
//
//	leapme embed   -out store.bin [-dim 50] [-categories cameras,...]
//	leapme train   -data data/cameras -store store.bin -train source00,source01 -out model.leapme
//	leapme match   -data data/cameras -store store.bin -train source00,source01 [-top 20]
//	leapme eval    -data data/cameras -store store.bin [-frac 0.8] [-runs 5]
//	leapme cluster -data data/cameras -store store.bin -train source00,source01 [-scheme star]
//	leapme label   -data data/cameras -store store.bin -category cameras -train source00,source01
//	leapme index   -data data/cameras -store store.bin -out index.leapme
//
// embed trains domain GloVe embeddings (and prints an embedding quality
// report); train fits a matcher on the named sources and saves it as a
// model file for leapme-serve; match trains on the named sources and
// prints the matches it finds among the remaining sources; eval runs the
// paper's protocol and prints averaged P/R/F1; cluster derives property
// clusters from the similarity graph; label runs TAPON semantic labelling
// against a reference ontology; index builds an ANN snapshot for
// leapme-serve's -index flag.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"leapme/internal/cli"
	"leapme/internal/core"
	"leapme/internal/dataset"
	"leapme/internal/domain"
	"leapme/internal/embedding"
	"leapme/internal/eval"
	"leapme/internal/features"
	"leapme/internal/graph"
	"leapme/internal/index"
	"leapme/internal/mathx"
	"leapme/internal/tapon"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	// Ctrl-C / SIGTERM cancels the run cooperatively: long scenario loops
	// (eval's 25 splits, quadratic matching) notice within one work unit
	// and return context.Canceled instead of dying mid-write.
	ctx, stop := cli.SignalContext()
	defer stop()
	var err error
	switch os.Args[1] {
	case "embed":
		err = cmdEmbed(os.Args[2:])
	case "train":
		err = cmdTrain(ctx, os.Args[2:])
	case "match":
		err = cmdMatch(ctx, os.Args[2:])
	case "eval":
		err = cmdEval(ctx, os.Args[2:])
	case "cluster":
		err = cmdCluster(ctx, os.Args[2:])
	case "label":
		err = cmdLabel(ctx, os.Args[2:])
	case "index":
		err = cmdIndex(ctx, os.Args[2:])
	case "serve":
		fmt.Fprintln(os.Stderr, "leapme: serving lives in its own binary — run `leapme-serve -store store.bin -model model.leapme` (train a model first with `leapme train`)")
		os.Exit(2)
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "leapme: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	stop()
	cli.Exit("leapme", err)
}

// loadData loads a dataset directory, quarantining malformed records in
// lenient mode.
func loadData(dir string, lenient bool) (*dataset.Dataset, error) {
	return cli.LoadData("leapme", dir, lenient)
}

// reportUnitFailures surfaces per-unit failures (isolated panics during
// featurization or scoring) that did not abort the run.
func reportUnitFailures(m *core.Matcher) {
	if rep := m.LastReport(); rep != nil && rep.Failed() > 0 {
		fmt.Fprintf(os.Stderr, "leapme: warning: %s\n", rep)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  leapme embed   -out store.bin [-dim 50] [-epochs 30] [-categories cameras,headphones,phones,tvs] [-seed 1]
  leapme train   -data DIR -store store.bin -train src1,src2 -out model.leapme [-features both/all] [-threshold 0.5]
  leapme match   -data DIR -store store.bin -train src1,src2 [-features both/all] [-threshold 0.5] [-top 0]
  leapme eval    -data DIR -store store.bin [-frac 0.8] [-runs 5] [-features both/all] [-seed 1]
  leapme cluster -data DIR -store store.bin -train src1,src2 [-scheme components|star|correlation]
  leapme label   -data DIR -store store.bin -category cameras -train src1,src2 [-top 20]
  leapme index   -data DIR -store store.bin -out index.leapme [-backend lsh|hnsw] [-seed 1]

train/match/eval/cluster/label/index also accept:
  -lenient       quarantine malformed dataset records instead of failing the load
  -timeout DUR   abort the run after DUR (e.g. 90s); Ctrl-C cancels cooperatively
  -workers N     parallelism: 0 = legacy serial training, N ≥ 1 = deterministic
                 N-worker pipeline (bit-identical for every N), -1 = all CPUs

serve saved models over HTTP with the leapme-serve binary:
  leapme-serve -store store.bin -model model.leapme [-addr :8080]`)
}

func cmdEmbed(args []string) error {
	fs := flag.NewFlagSet("embed", flag.ExitOnError)
	out := fs.String("out", "store.bin", "output file for the embedding store")
	dim := fs.Int("dim", 50, "embedding dimension")
	epochs := fs.Int("epochs", 30, "GloVe epochs")
	cats := fs.String("categories", "cameras,headphones,phones,tvs", "categories for the corpus")
	sentences := fs.Int("sentences", 120, "corpus sentences per property")
	seed := fs.Int64("seed", 1, "seed")
	fs.Parse(args)

	all := domain.Categories()
	var selected []*domain.Category
	for _, name := range strings.Split(*cats, ",") {
		c, ok := all[strings.TrimSpace(name)]
		if !ok {
			return fmt.Errorf("unknown category %q", name)
		}
		selected = append(selected, c)
	}
	corpus := domain.Corpus(selected, domain.CorpusConfig{SentencesPerProp: *sentences, Seed: *seed})
	cfg := embedding.DefaultGloVeConfig()
	cfg.Dim = *dim
	cfg.Epochs = *epochs
	cfg.Seed = *seed
	store, err := embedding.TrainGloVe(corpus, cfg)
	if err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := store.WriteTo(f); err != nil {
		return err
	}
	fmt.Printf("trained %d vectors of dimension %d on %d sentences → %s\n",
		store.Size(), store.Dim(), len(corpus), *out)
	// Quality gate: synonym groups of the selected categories must embed
	// closer together than cross-property phrases.
	rep := store.MeasureQuality(domain.SynonymGroups(selected))
	fmt.Printf("quality: %v\n", rep)
	if rep.Separation < 0.2 {
		fmt.Fprintln(os.Stderr, "warning: low synonym separation; consider more epochs or corpus sentences")
	}
	return nil
}

func loadStore(path string) (*embedding.Store, error) {
	return cli.LoadStore(path)
}

func parseFeatures(s string) (features.Config, error) {
	return features.ParseConfig(s)
}

// cmdTrain fits a matcher on the named sources and saves it as a model
// file (descriptor + standardiser + network) for leapme-serve.
func cmdTrain(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("train", flag.ExitOnError)
	dataDir := fs.String("data", "", "dataset directory (from datagen)")
	storePath := fs.String("store", "", "embedding store file (from embed)")
	trainList := fs.String("train", "", "comma-separated training sources")
	out := fs.String("out", "model.leapme", "output model file")
	featStr := fs.String("features", "both/all", "feature config level/kind")
	threshold := fs.Float64("threshold", 0.5, "match threshold")
	seed := fs.Int64("seed", 1, "seed")
	workers := fs.Int("workers", 0, "parallelism: 0 = legacy serial training, N = deterministic flat-kernel path (bit-identical for any N), -1 = all CPUs")
	lenient := fs.Bool("lenient", false, "quarantine malformed dataset records instead of failing")
	timeout := fs.Duration("timeout", 0, "abort the run after this duration (0 = none)")
	fs.Parse(args)
	if *dataDir == "" || *storePath == "" || *trainList == "" {
		return fmt.Errorf("train needs -data, -store and -train")
	}
	ctx, cancel := cli.WithTimeout(ctx, *timeout)
	defer cancel()
	m, _, _, err := trainedMatcher(ctx, *dataDir, *storePath, *trainList, *featStr, *threshold, *seed, *workers, *lenient)
	if err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	if err := m.WriteModel(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	// Read the file back through the descriptor path: what we print is
	// what leapme-serve will see.
	info, err := core.LoadInfoFile(*out)
	if err != nil {
		return fmt.Errorf("verifying written model: %w", err)
	}
	fmt.Printf("saved model → %s\n%v\n", *out, info)
	fmt.Printf("serve it: leapme-serve -store %s -model %s\n", *storePath, *out)
	return nil
}

// trainedMatcher loads data+store, trains on the given sources and
// returns the matcher plus the held-out test properties.
func trainedMatcher(ctx context.Context, dataDir, storePath, trainList, featStr string, threshold float64, seed int64, workers int, lenient bool) (*core.Matcher, []dataset.Property, *dataset.Dataset, error) {
	store, err := loadStore(storePath)
	if err != nil {
		return nil, nil, nil, err
	}
	d, err := loadData(dataDir, lenient)
	if err != nil {
		return nil, nil, nil, err
	}
	fc, err := parseFeatures(featStr)
	if err != nil {
		return nil, nil, nil, err
	}
	trainSrc := cli.SourceSet(trainList)
	known := map[string]bool{}
	for _, s := range d.Sources {
		known[s] = true
	}
	testSrc := map[string]bool{}
	for _, s := range d.Sources {
		if !trainSrc[s] {
			testSrc[s] = true
		}
	}
	for s := range trainSrc {
		if !known[s] {
			return nil, nil, nil, fmt.Errorf("training source %q not in dataset (sources: %s)", s, strings.Join(d.Sources, ", "))
		}
	}
	if len(testSrc) == 0 {
		return nil, nil, nil, fmt.Errorf("no sources left for testing")
	}
	opts := core.DefaultOptions(seed)
	opts.Features = fc
	opts.Threshold = threshold
	opts.Workers = workers
	m, err := core.NewMatcher(store, opts)
	if err != nil {
		return nil, nil, nil, err
	}
	if err := m.ComputeFeatures(ctx, d); err != nil {
		return nil, nil, nil, err
	}
	reportUnitFailures(m)
	pairs := core.TrainingPairs(d.PropsOfSources(trainSrc), 2, mathx.NewRand(seed))
	if len(pairs) == 0 {
		return nil, nil, nil, fmt.Errorf("no training pairs among sources %s", trainList)
	}
	if _, err := m.Train(ctx, pairs); err != nil {
		return nil, nil, nil, err
	}
	return m, d.PropsOfSources(testSrc), d, nil
}

func cmdMatch(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("match", flag.ExitOnError)
	dataDir := fs.String("data", "", "dataset directory (from datagen)")
	storePath := fs.String("store", "", "embedding store file (from embed)")
	trainList := fs.String("train", "", "comma-separated training sources")
	featStr := fs.String("features", "both/all", "feature config level/kind")
	threshold := fs.Float64("threshold", 0.5, "match threshold")
	top := fs.Int("top", 0, "print only the top N matches by score (0 = all)")
	explain := fs.Bool("explain", false, "attribute each printed match to its feature groups")
	seed := fs.Int64("seed", 1, "seed")
	workers := fs.Int("workers", 0, "parallelism: 0 = legacy serial training, N = deterministic flat-kernel path (bit-identical for any N), -1 = all CPUs")
	lenient := fs.Bool("lenient", false, "quarantine malformed dataset records instead of failing")
	timeout := fs.Duration("timeout", 0, "abort the run after this duration (0 = none)")
	fs.Parse(args)
	if *dataDir == "" || *storePath == "" || *trainList == "" {
		return fmt.Errorf("match needs -data, -store and -train")
	}
	ctx, cancel := cli.WithTimeout(ctx, *timeout)
	defer cancel()
	m, testProps, _, err := trainedMatcher(ctx, *dataDir, *storePath, *trainList, *featStr, *threshold, *seed, *workers, *lenient)
	if err != nil {
		return err
	}
	matches, err := m.Matches(ctx, testProps)
	if err != nil {
		return err
	}
	reportUnitFailures(m)
	sort.Slice(matches, func(i, j int) bool { return matches[i].Score > matches[j].Score })
	if *top > 0 && len(matches) > *top {
		matches = matches[:*top]
	}
	for _, sp := range matches {
		if *explain {
			ex, err := m.Explain(sp.A, sp.B)
			if err != nil {
				return err
			}
			fmt.Println(ex)
		} else {
			fmt.Printf("%.3f  %-40s  %s\n", sp.Score, sp.A, sp.B)
		}
	}
	fmt.Fprintf(os.Stderr, "%d matches among %d test properties\n", len(matches), len(testProps))
	return nil
}

func cmdEval(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("eval", flag.ExitOnError)
	dataDir := fs.String("data", "", "dataset directory")
	storePath := fs.String("store", "", "embedding store file")
	frac := fs.Float64("frac", 0.8, "training source fraction")
	runs := fs.Int("runs", 5, "number of random splits")
	featStr := fs.String("features", "both/all", "feature config")
	seed := fs.Int64("seed", 1, "seed")
	workers := fs.Int("workers", 0, "parallelism: 0 = legacy serial training, N = deterministic flat-kernel path (bit-identical for any N), -1 = all CPUs")
	lenient := fs.Bool("lenient", false, "quarantine malformed dataset records instead of failing")
	timeout := fs.Duration("timeout", 0, "abort the run after this duration (0 = none)")
	fs.Parse(args)
	if *dataDir == "" || *storePath == "" {
		return fmt.Errorf("eval needs -data and -store")
	}
	ctx, cancel := cli.WithTimeout(ctx, *timeout)
	defer cancel()
	store, err := loadStore(*storePath)
	if err != nil {
		return err
	}
	d, err := loadData(*dataDir, *lenient)
	if err != nil {
		return err
	}
	fc, err := parseFeatures(*featStr)
	if err != nil {
		return err
	}
	h := eval.NewHarness(store, *seed)
	h.Runs = *runs
	h.Workers = *workers
	h.Options.Workers = *workers
	h.Ctx = ctx
	h.OnRun = func(run int, m eval.PRF) {
		fmt.Fprintf(os.Stderr, "run %d: %v\n", run, m)
	}
	m, err := h.EvalLEAPME(d, fc, *frac)
	if err != nil {
		return err
	}
	fmt.Printf("%s @ %.0f%% training (%d runs, features %s): %v\n", d.Name, *frac*100, *runs, fc, m)
	return nil
}

func cmdLabel(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("label", flag.ExitOnError)
	dataDir := fs.String("data", "", "dataset directory")
	storePath := fs.String("store", "", "embedding store file")
	category := fs.String("category", "", "reference ontology category (cameras|headphones|phones|tvs)")
	trainList := fs.String("train", "", "comma-separated training sources (ground truth used)")
	top := fs.Int("top", 20, "print only the N most confident labels (0 = all)")
	seed := fs.Int64("seed", 1, "seed")
	workers := fs.Int("workers", 0, "parallelism: 0 = legacy serial training, N = deterministic flat-kernel path (bit-identical for any N), -1 = all CPUs")
	lenient := fs.Bool("lenient", false, "quarantine malformed dataset records instead of failing")
	timeout := fs.Duration("timeout", 0, "abort the run after this duration (0 = none)")
	fs.Parse(args)
	if *dataDir == "" || *storePath == "" || *category == "" || *trainList == "" {
		return fmt.Errorf("label needs -data, -store, -category and -train")
	}
	ctx, cancel := cli.WithTimeout(ctx, *timeout)
	defer cancel()
	store, err := loadStore(*storePath)
	if err != nil {
		return err
	}
	d, err := loadData(*dataDir, *lenient)
	if err != nil {
		return err
	}
	cat, ok := domain.Categories()[*category]
	if !ok {
		return fmt.Errorf("unknown category %q", *category)
	}
	var classes []string
	for _, p := range cat.Props {
		classes = append(classes, p.Canonical)
	}
	trainSrc := cli.SourceSet(*trainList)
	trainData := &dataset.Dataset{Name: d.Name + "-train", Category: d.Category}
	testData := &dataset.Dataset{Name: d.Name + "-test", Category: d.Category}
	for _, s := range d.Sources {
		if trainSrc[s] {
			trainData.Sources = append(trainData.Sources, s)
		} else {
			testData.Sources = append(testData.Sources, s)
		}
	}
	for _, p := range d.Props {
		if trainSrc[p.Source] {
			trainData.Props = append(trainData.Props, p)
		} else {
			testData.Props = append(testData.Props, p)
		}
	}
	for _, in := range d.Instances {
		if trainSrc[in.Source] {
			trainData.Instances = append(trainData.Instances, in)
		} else {
			testData.Instances = append(testData.Instances, in)
		}
	}
	topts := tapon.DefaultOptions(*seed)
	topts.Workers = *workers
	l, err := tapon.New(store, classes, topts)
	if err != nil {
		return err
	}
	if err := l.Train(ctx, trainData); err != nil {
		return err
	}
	preds, err := l.Label(ctx, testData)
	if err != nil {
		return err
	}
	sort.Slice(preds, func(i, j int) bool { return preds[i].Confidence > preds[j].Confidence })
	show := preds
	if *top > 0 && len(show) > *top {
		show = show[:*top]
	}
	for _, pr := range show {
		fmt.Printf("%.3f  %-40s → %s\n", pr.Confidence, pr.Key, pr.Label)
	}
	a2, a1, n := tapon.Accuracy(preds, testData)
	fmt.Fprintf(os.Stderr, "accuracy over %d slots with ground truth: phase1=%.3f two-phase=%.3f\n", n, a1, a2)
	return nil
}

func cmdCluster(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("cluster", flag.ExitOnError)
	dataDir := fs.String("data", "", "dataset directory")
	storePath := fs.String("store", "", "embedding store file")
	trainList := fs.String("train", "", "comma-separated training sources")
	scheme := fs.String("scheme", "components", "clustering scheme: components|star|correlation")
	threshold := fs.Float64("threshold", 0.5, "match threshold")
	seed := fs.Int64("seed", 1, "seed")
	workers := fs.Int("workers", 0, "parallelism: 0 = legacy serial training, N = deterministic flat-kernel path (bit-identical for any N), -1 = all CPUs")
	lenient := fs.Bool("lenient", false, "quarantine malformed dataset records instead of failing")
	timeout := fs.Duration("timeout", 0, "abort the run after this duration (0 = none)")
	fs.Parse(args)
	if *dataDir == "" || *storePath == "" || *trainList == "" {
		return fmt.Errorf("cluster needs -data, -store and -train")
	}
	ctx, cancel := cli.WithTimeout(ctx, *timeout)
	defer cancel()
	m, testProps, _, err := trainedMatcher(ctx, *dataDir, *storePath, *trainList, "both/all", *threshold, *seed, *workers, *lenient)
	if err != nil {
		return err
	}
	g := graph.New()
	for _, p := range testProps {
		g.AddNode(p.Key())
	}
	if err := m.MatchAll(ctx, testProps, func(sp core.ScoredPair) {
		if sp.Match {
			g.AddEdge(sp.A, sp.B, sp.Score)
		}
	}); err != nil {
		return err
	}
	reportUnitFailures(m)
	var clusters graph.Clustering
	switch *scheme {
	case "components":
		clusters = g.ConnectedComponents()
	case "star":
		clusters = g.StarClustering()
	case "correlation":
		clusters = g.CorrelationClustering(0.7)
	default:
		return fmt.Errorf("unknown scheme %q", *scheme)
	}
	for i, c := range clusters {
		if len(c) < 2 {
			continue
		}
		fmt.Printf("cluster %d (%d properties):\n", i, len(c))
		for _, k := range c {
			fmt.Printf("  %s\n", k)
		}
	}
	truth := dataset.MatchingPairs(testProps)
	p, r, f1 := clusters.PairwiseQuality(truth)
	fmt.Fprintf(os.Stderr, "pairwise quality vs ground truth: P=%.3f R=%.3f F1=%.3f\n", p, r, f1)
	return nil
}

// cmdIndex builds an ANN index snapshot over a dataset's properties and
// saves it for leapme-serve's -index flag: /v1/match/all "ann" blocking
// then answers from the snapshot instead of building an index per
// request.
func cmdIndex(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("index", flag.ExitOnError)
	dataDir := fs.String("data", "", "dataset directory (from datagen)")
	storePath := fs.String("store", "", "embedding store file (from embed)")
	out := fs.String("out", "index.leapme", "output snapshot file")
	backend := fs.String("backend", index.BackendLSH, "index backend: lsh or hnsw")
	seed := fs.Int64("seed", 1, "seed")
	workers := fs.Int("workers", -1, "parallelism: N = deterministic N-worker build, -1 = all CPUs")
	lenient := fs.Bool("lenient", false, "quarantine malformed dataset records instead of failing")
	timeout := fs.Duration("timeout", 0, "abort the run after this duration (0 = none)")
	fs.Parse(args)
	if *dataDir == "" || *storePath == "" {
		return fmt.Errorf("index needs -data and -store")
	}
	ctx, cancel := cli.WithTimeout(ctx, *timeout)
	defer cancel()
	store, err := loadStore(*storePath)
	if err != nil {
		return err
	}
	d, err := loadData(*dataDir, *lenient)
	if err != nil {
		return err
	}
	snap, err := index.BuildSnapshot(ctx, store, d.Props, index.Options{
		Backend: *backend,
		Seed:    *seed,
		Workers: *workers,
	})
	if err != nil {
		return err
	}
	if err := snap.WriteFile(*out); err != nil {
		return err
	}
	fmt.Printf("indexed %d properties (%s backend, dim %d) → %s\n",
		snap.Len(), *backend, store.Dim(), *out)
	fmt.Printf("serve it: leapme-serve -store %s -model model.leapme -index %s\n", *storePath, *out)
	return nil
}
