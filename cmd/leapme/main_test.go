package main

import (
	"context"
	"path/filepath"
	"testing"

	"leapme/internal/dataset"
	"leapme/internal/domain"
)

func writeTestData(t *testing.T, dir string) string {
	t.Helper()
	d, err := dataset.Generate(dataset.GenConfig{
		Name:           "cli-test",
		Category:       domain.Headphones(),
		NumSources:     4,
		SharedPresence: 0.8,
		CanonicalBias:  0.5,
		NoiseProps:     4,
		MinEntities:    5,
		MaxEntities:    8,
		MissingRate:    0.3,
		Seed:           1,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, d.Name)
	if err := d.SaveDir(out); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestCLIEndToEnd drives embed → match → eval → cluster through the
// command implementations with a real temp workspace.
func TestCLIEndToEnd(t *testing.T) {
	dir := t.TempDir()
	dataDir := writeTestData(t, dir)
	storePath := filepath.Join(dir, "store.bin")

	if err := cmdEmbed([]string{
		"-out", storePath, "-dim", "16", "-epochs", "6",
		"-sentences", "25", "-categories", "headphones",
	}); err != nil {
		t.Fatalf("embed: %v", err)
	}

	if err := cmdMatch(context.Background(), []string{
		"-data", dataDir, "-store", storePath,
		"-train", "source00,source01,source02", "-top", "5",
	}); err != nil {
		t.Fatalf("match: %v", err)
	}

	if err := cmdMatch(context.Background(), []string{
		"-data", dataDir, "-store", storePath,
		"-train", "source00,source01,source02", "-top", "3", "-explain",
	}); err != nil {
		t.Fatalf("match -explain: %v", err)
	}

	if err := cmdEval(context.Background(), []string{
		"-data", dataDir, "-store", storePath, "-frac", "0.5", "-runs", "1",
	}); err != nil {
		t.Fatalf("eval: %v", err)
	}

	if err := cmdCluster(context.Background(), []string{
		"-data", dataDir, "-store", storePath,
		"-train", "source00,source01", "-scheme", "star",
	}); err != nil {
		t.Fatalf("cluster: %v", err)
	}
}

func TestCLILabel(t *testing.T) {
	dir := t.TempDir()
	dataDir := writeTestData(t, dir)
	storePath := filepath.Join(dir, "store.bin")
	if err := cmdEmbed([]string{
		"-out", storePath, "-dim", "16", "-epochs", "6",
		"-sentences", "25", "-categories", "headphones",
	}); err != nil {
		t.Fatal(err)
	}
	if err := cmdLabel(context.Background(), []string{
		"-data", dataDir, "-store", storePath, "-category", "headphones",
		"-train", "source00,source01,source02", "-top", "5",
	}); err != nil {
		t.Fatalf("label: %v", err)
	}
	if err := cmdLabel(context.Background(), []string{
		"-data", dataDir, "-store", storePath, "-category", "bicycles",
		"-train", "source00",
	}); err == nil {
		t.Error("unknown category accepted")
	}
	if err := cmdLabel(context.Background(), nil); err == nil {
		t.Error("label without flags accepted")
	}
}

func TestCLIMissingFlags(t *testing.T) {
	if err := cmdMatch(context.Background(), nil); err == nil {
		t.Error("match without flags accepted")
	}
	if err := cmdEval(context.Background(), nil); err == nil {
		t.Error("eval without flags accepted")
	}
	if err := cmdCluster(context.Background(), nil); err == nil {
		t.Error("cluster without flags accepted")
	}
}

func TestCLIBadInputs(t *testing.T) {
	dir := t.TempDir()
	dataDir := writeTestData(t, dir)
	storePath := filepath.Join(dir, "store.bin")
	if err := cmdEmbed([]string{
		"-out", storePath, "-dim", "8", "-epochs", "3",
		"-sentences", "15", "-categories", "headphones",
	}); err != nil {
		t.Fatal(err)
	}
	// Unknown training source.
	if err := cmdMatch(context.Background(), []string{
		"-data", dataDir, "-store", storePath, "-train", "nosuch",
	}); err == nil {
		t.Error("unknown training source accepted")
	}
	// All sources in training → nothing to test.
	if err := cmdMatch(context.Background(), []string{
		"-data", dataDir, "-store", storePath,
		"-train", "source00,source01,source02,source03",
	}); err == nil {
		t.Error("empty test set accepted")
	}
	// Bad feature string.
	if err := cmdEval(context.Background(), []string{
		"-data", dataDir, "-store", storePath, "-features", "bogus",
	}); err == nil {
		t.Error("bad feature config accepted")
	}
	// Unknown category in embed.
	if err := cmdEmbed([]string{"-out", storePath, "-categories", "bicycles"}); err == nil {
		t.Error("unknown category accepted")
	}
	// Unknown clustering scheme.
	if err := cmdCluster(context.Background(), []string{
		"-data", dataDir, "-store", storePath, "-train", "source00,source01",
		"-scheme", "magic",
	}); err == nil {
		t.Error("unknown scheme accepted")
	}
	// Missing store file.
	if err := cmdEval(context.Background(), []string{
		"-data", dataDir, "-store", filepath.Join(dir, "absent.bin"),
	}); err == nil {
		t.Error("missing store accepted")
	}
}
