// Command leapme-serve exposes trained LEAPME models over HTTP —
// matching as a service:
//
//	leapme embed -out store.bin
//	leapme train -data data/cameras -store store.bin -train source00,source01 -out model.leapme
//	leapme-serve -store store.bin -model model.leapme -addr :8080
//
// Endpoints:
//
//	POST /v1/match      score explicit property pairs
//	POST /v1/match/all  match every cross-source pair (optional blocking)
//	GET  /v1/models     list loaded models; POST {"activate":...}/{"reload":true}
//	GET  /healthz       liveness
//	GET  /readyz        readiness (flips off while draining)
//	GET  /metrics       Prometheus text exposition
//
// Multiple models are served side by side (-model "a=x.leapme,b=y.leapme");
// requests pick one with "model", others use the active one. -index
// attaches prebuilt ANN snapshots (from `leapme index`) so /v1/match/all
// "ann" blocking answers from the snapshot instead of building an index
// per request. SIGHUP (or POST {"reload":true}) re-reads every model file
// — and its snapshot — and hot-swaps without dropping in-flight requests.
// SIGINT/SIGTERM drains and exits 130.
//
// Overload and failure behavior: admitted-but-unanswered pairs are
// bounded by -max-queue — beyond it requests shed with a typed 429 and
// Retry-After, and /readyz degrades to 503 above -high-water of the
// bound. -max-pairs never exceeds -max-queue (serve.New raises the
// defaulted bound or clamps -max-pairs), so a valid request always fits
// an idle server and a 429 is genuinely transient. Every request runs
// under a deadline budget (-deadline, or the
// client's X-Leapme-Deadline-Ms header clamped to -max-deadline); an
// expired budget answers a typed 504 without stalling the scorer pool.
// See the README's "Overload & failure behavior" section for the full
// semantics and internal/client for a retrying client.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"leapme/internal/cli"
	"leapme/internal/guard"
	"leapme/internal/serve"
)

func main() {
	cli.Exit("leapme-serve", run(os.Args[1:]))
}

func run(args []string) error {
	fs := flag.NewFlagSet("leapme-serve", flag.ExitOnError)
	storePath := fs.String("store", "", "embedding store file (from `leapme embed`)")
	modelList := fs.String("model", "", "model files to serve: path, or name=path,name=path,...")
	indexList := fs.String("index", "", "ANN index snapshots (from `leapme index`): path, or name=path,... matching -model names")
	active := fs.String("active", "", "initially active model name (default: first loaded)")
	addr := fs.String("addr", ":8080", "listen address")
	workers := fs.Int("workers", 4, "batch-scoring workers (also sizes each model's scorer pool)")
	maxBatch := fs.Int("max-batch", 32, "max pairs per micro-batch")
	maxWait := fs.Duration("max-wait", 2*time.Millisecond, "micro-batch flush deadline")
	cacheSize := fs.Int("cache", 4096, "feature cache entries per model (-1 disables)")
	threshold := fs.Float64("threshold", 0, "override every model's match threshold (0 keeps each model's own)")
	maxValues := fs.Int("max-values", 0, "cap instance values per served property (0 = all)")
	maxPairs := fs.Int("max-pairs", 4096, "max pairs per request (clamped down to -max-queue when that is set lower)")
	maxQueue := fs.Int("max-queue", 0, "max admitted-but-unanswered pairs before shedding 429s (0 = 4×workers×max-batch, at least -max-pairs)")
	highWater := fs.Float64("high-water", 0.75, "fraction of -max-queue above which /readyz degrades to 503")
	retryAfter := fs.Duration("retry-after", time.Second, "Retry-After advice attached to shed (429) responses")
	deadline := fs.Duration("deadline", 10*time.Second, "default per-request scoring budget (-1 disables; clients override via X-Leapme-Deadline-Ms)")
	maxDeadline := fs.Duration("max-deadline", 60*time.Second, "upper clamp on client-requested scoring budgets")
	readTimeout := fs.Duration("read-timeout", 30*time.Second, "http.Server ReadTimeout (full request read)")
	writeTimeout := fs.Duration("write-timeout", 90*time.Second, "http.Server WriteTimeout (must exceed -max-deadline)")
	idleTimeout := fs.Duration("idle-timeout", 120*time.Second, "http.Server IdleTimeout (keep-alive connections)")
	drain := fs.Duration("drain", 10*time.Second, "graceful shutdown deadline")
	fs.Parse(args)
	if *storePath == "" || *modelList == "" {
		fs.Usage()
		return errors.New("need -store and -model")
	}
	models, err := serve.ParseModelList(*modelList)
	if err != nil {
		return err
	}
	if *indexList != "" {
		if err := serve.AttachIndexes(models, *indexList); err != nil {
			return err
		}
	}
	store, err := cli.LoadStore(*storePath)
	if err != nil {
		return err
	}
	s, err := serve.New(serve.Config{
		Store:           store,
		Models:          models,
		Active:          *active,
		Workers:         *workers,
		MaxBatch:        *maxBatch,
		MaxWait:         *maxWait,
		CacheSize:       *cacheSize,
		Threshold:       *threshold,
		MaxValues:       *maxValues,
		MaxPairs:        *maxPairs,
		MaxQueuedPairs:  *maxQueue,
		HighWaterFrac:   *highWater,
		RetryAfter:      *retryAfter,
		DefaultDeadline: *deadline,
		MaxDeadline:     *maxDeadline,
	})
	if err != nil {
		return err
	}
	for _, md := range s.Registry().List() {
		fmt.Fprintf(os.Stderr, "leapme-serve: loaded %s from %s (%v)\n", md.Name, md.Path, md.Info)
	}

	// Full server timeouts, not just the header read: a slow-loris body
	// or a client that never drains its response must not pin a
	// connection forever. WriteTimeout bounds the whole handler, so keep
	// it above -max-deadline or budgeted requests lose their typed 504.
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       *readTimeout,
		WriteTimeout:      *writeTimeout,
		IdleTimeout:       *idleTimeout,
	}

	// Background goroutines run under guard so a panic in either lands
	// in the report (logged at shutdown) instead of killing the server
	// with an unattributed stack.
	bg := guard.NewReport()
	var bgWG sync.WaitGroup

	// SIGHUP hot-reloads every model file; load failures keep the old
	// version serving.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	guard.Go(&bgWG, bg, "sighup-reload", func() error {
		for range hup {
			if err := s.Reload(); err != nil {
				fmt.Fprintf(os.Stderr, "leapme-serve: reload: %v\n", err)
			} else {
				fmt.Fprintln(os.Stderr, "leapme-serve: models reloaded")
			}
		}
		return nil
	})

	ctx, stop := cli.SignalContext()
	defer stop()
	errc := make(chan error, 1)
	guard.Go(&bgWG, bg, "http-listen", func() error {
		fmt.Fprintf(os.Stderr, "leapme-serve: listening on %s\n", *addr)
		if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
		return nil
	})

	select {
	case err := <-errc:
		s.Close()
		return err
	case <-ctx.Done():
	}
	stop() // second Ctrl-C kills immediately
	fmt.Fprintln(os.Stderr, "leapme-serve: draining...")
	shutCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		fmt.Fprintf(os.Stderr, "leapme-serve: forced shutdown: %v\n", err)
	}
	s.Close()
	if bg.Failed() > 0 {
		fmt.Fprintf(os.Stderr, "leapme-serve: background goroutines: %s\n", bg)
	}
	// cli.Exit maps context.Canceled to exit code 130, the conventional
	// "terminated by signal" status.
	return context.Canceled
}
