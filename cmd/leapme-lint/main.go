// Command leapme-lint is the repository's multichecker: it runs the
// domain-specific analyzers in internal/analysis over the given package
// patterns and exits non-zero when any invariant is violated.
//
//	leapme-lint ./...          # what `make lint` runs
//	leapme-lint -list          # show the analyzers and their invariants
//	leapme-lint -only determinism,guardgo ./internal/nn
//	leapme-lint -audit-allows ./...   # report stale //lint:allow directives
//
// Findings print as file:line:col: message (analyzer). A finding is
// suppressed by an inline annotation on the offending line (or the line
// above):
//
//	//lint:allow <analyzer> <reason>
//
// The reason is mandatory; malformed or unknown-analyzer annotations
// are themselves findings. See internal/analysis for the catalogue.
//
// When the hotalloc analyzer is selected, the run also performs its
// AllocsPerRun gate cross-check: every //lint:hotpath function must be
// named inside a testing.AllocsPerRun closure in its package's tests.
//
// -audit-allows inverts the suppression machinery: each analyzer is
// re-run with //lint:allow directives ignored, and every directive
// whose covered lines produce no raw diagnostic is reported as stale
// (exit 1). `make lint-audit` runs this so obsolete suppressions are
// deleted instead of silently masking future findings.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"leapme/internal/analysis"
	"leapme/internal/analysis/hotalloc"
	"leapme/internal/analysis/lintkit"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("leapme-lint", flag.ExitOnError)
	list := fs.Bool("list", false, "list analyzers and exit")
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	audit := fs.Bool("audit-allows", false, "re-run analyzers ignoring suppressions and report stale //lint:allow directives")
	fs.Parse(args)

	analyzers := analysis.All()
	// The full catalogue stays the vocabulary for //lint:allow validation
	// even when -only narrows the run: a directive naming a deselected
	// analyzer is a live suppression, not a typo.
	var catalogue []string
	for _, a := range analyzers {
		catalogue = append(catalogue, a.Name)
	}
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		sel := map[string]bool{}
		for _, name := range strings.Split(*only, ",") {
			sel[strings.TrimSpace(name)] = true
		}
		var kept []*lintkit.Analyzer
		for _, a := range analyzers {
			if sel[a.Name] {
				kept = append(kept, a)
				delete(sel, a.Name)
			}
		}
		for name := range sel {
			fmt.Fprintf(stderr, "leapme-lint: unknown analyzer %q (try -list)\n", name)
			return 2
		}
		analyzers = kept
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lintkit.Load(patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "leapme-lint: %v\n", err)
		return 2
	}
	hotallocSelected := false
	for _, a := range analyzers {
		if a.Name == hotalloc.Analyzer.Name {
			hotallocSelected = true
		}
	}
	wd, _ := os.Getwd()
	if *audit {
		var extra []lintkit.Finding
		if hotallocSelected {
			extra = hotalloc.CrossCheckUnsuppressed(pkgs)
		}
		stale, err := lintkit.AuditDirectives(pkgs, analyzers, extra)
		if err != nil {
			fmt.Fprintf(stderr, "leapme-lint: %v\n", err)
			return 2
		}
		for _, s := range stale {
			pos := s.Position
			pos.Filename = relPath(wd, pos.Filename)
			fmt.Fprintf(stdout, "%s: stale //lint:allow %s — suppresses nothing (reason was: %s)\n",
				pos, s.Analyzer, s.Reason)
		}
		if len(stale) > 0 {
			fmt.Fprintf(stderr, "leapme-lint: %d stale //lint:allow directive(s) — delete them\n", len(stale))
			return 1
		}
		fmt.Fprintf(stdout, "leapme-lint: every //lint:allow directive still suppresses a live finding\n")
		return 0
	}
	findings, err := lintkit.RunAnalyzers(pkgs, analyzers, catalogue...)
	if err != nil {
		fmt.Fprintf(stderr, "leapme-lint: %v\n", err)
		return 2
	}
	if hotallocSelected {
		findings = append(findings, hotalloc.CrossCheck(pkgs)...)
		findings = lintkit.DedupeFindings(findings)
		lintkit.SortFindings(findings)
	}
	for _, f := range findings {
		pos := f.Position
		pos.Filename = relPath(wd, pos.Filename)
		fmt.Fprintf(stdout, "%s: %s (%s)\n", pos, f.Message, f.Analyzer)
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "leapme-lint: %d finding(s) across %d package(s)\n", len(findings), len(pkgs))
		return 1
	}
	return 0
}

// relPath shortens filename relative to wd for display when it does not
// escape upward.
func relPath(wd, filename string) string {
	if wd == "" {
		return filename
	}
	if rel, err := filepath.Rel(wd, filename); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return filename
}
