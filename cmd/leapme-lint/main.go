// Command leapme-lint is the repository's multichecker: it runs the
// domain-specific analyzers in internal/analysis over the given package
// patterns and exits non-zero when any invariant is violated.
//
//	leapme-lint ./...          # what `make lint` runs
//	leapme-lint -list          # show the analyzers and their invariants
//	leapme-lint -only determinism,guardgo ./internal/nn
//
// Findings print as file:line:col: message (analyzer). A finding is
// suppressed by an inline annotation on the offending line (or the line
// above):
//
//	//lint:allow <analyzer> <reason>
//
// The reason is mandatory; malformed or unknown-analyzer annotations
// are themselves findings. See internal/analysis for the catalogue.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"leapme/internal/analysis"
	"leapme/internal/analysis/lintkit"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("leapme-lint", flag.ExitOnError)
	list := fs.Bool("list", false, "list analyzers and exit")
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	fs.Parse(args)

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		sel := map[string]bool{}
		for _, name := range strings.Split(*only, ",") {
			sel[strings.TrimSpace(name)] = true
		}
		var kept []*lintkit.Analyzer
		for _, a := range analyzers {
			if sel[a.Name] {
				kept = append(kept, a)
				delete(sel, a.Name)
			}
		}
		for name := range sel {
			fmt.Fprintf(stderr, "leapme-lint: unknown analyzer %q (try -list)\n", name)
			return 2
		}
		analyzers = kept
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lintkit.Load(patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "leapme-lint: %v\n", err)
		return 2
	}
	findings, err := lintkit.RunAnalyzers(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(stderr, "leapme-lint: %v\n", err)
		return 2
	}
	wd, _ := os.Getwd()
	for _, f := range findings {
		pos := f.Position
		if wd != "" {
			if rel, err := filepath.Rel(wd, pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
				pos.Filename = rel
			}
		}
		fmt.Fprintf(stdout, "%s: %s (%s)\n", pos, f.Message, f.Analyzer)
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "leapme-lint: %d finding(s) across %d package(s)\n", len(findings), len(pkgs))
		return 1
	}
	return 0
}
