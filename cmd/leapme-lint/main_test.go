package main

import (
	"strings"
	"testing"

	"leapme/internal/analysis/errvocab"
	"leapme/internal/analysis/locksafe"
)

// TestRepoIsClean is the smoke test the issue asks for: the multichecker
// over the whole module must exit 0 with no findings. Every invariant
// violation in the tree is either fixed or carries a reasoned
// //lint:allow annotation.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module from source; skipped in -short")
	}
	var stdout, stderr strings.Builder
	code := run([]string{"leapme/..."}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("leapme-lint leapme/... exited %d, want 0\nstdout:\n%s\nstderr:\n%s",
			code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("expected no findings, got:\n%s", stdout.String())
	}
}

// TestSeededViolationFails drives the full binary path (go list → load →
// analyze → exit code) over a fixture package that contains known
// violations: the gate must exit 1 and name the analyzer.
func TestSeededViolationFails(t *testing.T) {
	var stdout, stderr strings.Builder
	code := run([]string{"../../internal/analysis/guardgo/testdata/pos"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit = %d, want 1 on seeded violations\nstdout:\n%s\nstderr:\n%s",
			code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stdout.String(), "(guardgo)") {
		t.Errorf("findings should be attributed to guardgo, got:\n%s", stdout.String())
	}
}

func TestListNamesAllAnalyzers(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-list exited %d", code)
	}
	for _, name := range []string{"ctxflow", "determinism", "errvocab", "featdim", "floateq", "guardgo", "hotalloc", "locksafe"} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list output missing %s:\n%s", name, stdout.String())
		}
	}
}

// TestContractAnalyzersClean is the issue's smoke test for the three
// contract analyzers on their own: the whole tree must pass hotalloc
// (including the AllocsPerRun gate cross-check), locksafe and errvocab.
func TestContractAnalyzersClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module from source; skipped in -short")
	}
	var stdout, stderr strings.Builder
	code := run([]string{"-only", "hotalloc,locksafe,errvocab", "leapme/..."}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("-only hotalloc,locksafe,errvocab leapme/... exited %d, want 0\nstdout:\n%s\nstderr:\n%s",
			code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("expected no findings, got:\n%s", stdout.String())
	}
}

// TestSeededHotallocViolationFails proves the hotalloc gate fires
// through the full binary path: the positive fixture package is
// annotation-driven, so it violates at any import path, and it has no
// test file, so the AllocsPerRun cross-check fires too.
func TestSeededHotallocViolationFails(t *testing.T) {
	var stdout, stderr strings.Builder
	code := run([]string{"-only", "hotalloc", "../../internal/analysis/hotalloc/testdata/pos"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit = %d, want 1 on seeded hotalloc violations\nstdout:\n%s\nstderr:\n%s",
			code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stdout.String(), "(hotalloc)") {
		t.Errorf("findings should be attributed to hotalloc, got:\n%s", stdout.String())
	}
	if !strings.Contains(stdout.String(), "AllocsPerRun") {
		t.Errorf("gate cross-check should fire on the gateless fixture, got:\n%s", stdout.String())
	}
}

// TestSeededLocksafeViolationFails retargets locksafe's scope onto its
// own positive fixture package (scoped analyzers are silent outside
// their packages) and proves the binary exits 1 on the seeded
// held-lock violations.
func TestSeededLocksafeViolationFails(t *testing.T) {
	const fixturePath = "leapme/internal/analysis/locksafe/testdata/pos"
	locksafe.ScopePackages[fixturePath] = true
	defer delete(locksafe.ScopePackages, fixturePath)
	var stdout, stderr strings.Builder
	code := run([]string{"-only", "locksafe", "../../internal/analysis/locksafe/testdata/pos"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit = %d, want 1 on seeded locksafe violations\nstdout:\n%s\nstderr:\n%s",
			code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stdout.String(), "(locksafe)") {
		t.Errorf("findings should be attributed to locksafe, got:\n%s", stdout.String())
	}
}

// TestSeededErrvocabViolationFails does the same for errvocab: naked
// http.Error and WriteHeader(5xx) in a scoped package must fail the
// gate.
func TestSeededErrvocabViolationFails(t *testing.T) {
	const fixturePath = "leapme/internal/analysis/errvocab/testdata/pos"
	errvocab.ScopePackages[fixturePath] = true
	defer delete(errvocab.ScopePackages, fixturePath)
	var stdout, stderr strings.Builder
	code := run([]string{"-only", "errvocab", "../../internal/analysis/errvocab/testdata/pos"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit = %d, want 1 on seeded errvocab violations\nstdout:\n%s\nstderr:\n%s",
			code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stdout.String(), "(errvocab)") {
		t.Errorf("findings should be attributed to errvocab, got:\n%s", stdout.String())
	}
}

// TestOnlyAcceptsForeignAllows pins the -only/-catalogue interaction: a
// //lint:allow naming an analyzer outside the -only selection is a live
// suppression for the full run, not an "unknown analyzer" finding. The
// guardgo fixture carries guardgo allows; running only floateq over it
// must not flag them.
func TestOnlyAcceptsForeignAllows(t *testing.T) {
	var stdout, stderr strings.Builder
	code := run([]string{"-only", "floateq", "../../internal/analysis/guardgo/testdata/neg"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	if strings.Contains(stdout.String(), "unknown analyzer") {
		t.Errorf("allows for deselected analyzers flagged as unknown:\n%s", stdout.String())
	}
}

// TestOverlappingPatternsDeduped pins the duplicate-package fix: naming
// the same package twice (overlapping patterns do this through go list)
// must not repeat its findings or its directive diagnostics.
func TestOverlappingPatternsDeduped(t *testing.T) {
	dir := "../../internal/analysis/guardgo/testdata/pos"
	var once, twice strings.Builder
	var stderr strings.Builder
	if code := run([]string{dir}, &once, &stderr); code != 1 {
		t.Fatalf("single pattern exit = %d, want 1\n%s", code, stderr.String())
	}
	if code := run([]string{dir, dir}, &twice, &stderr); code != 1 {
		t.Fatalf("overlapping patterns exit = %d, want 1\n%s", code, stderr.String())
	}
	if once.String() != twice.String() {
		t.Errorf("overlapping patterns change the report:\nonce:\n%s\ntwice:\n%s", once.String(), twice.String())
	}
}

// TestAuditAllowsFlagsStale drives -audit-allows over the audit fixture:
// the stale directive must be reported (exit 1) and the live one must
// not.
func TestAuditAllowsFlagsStale(t *testing.T) {
	var stdout, stderr strings.Builder
	code := run([]string{"-audit-allows", "../../internal/analysis/lintkit/testdata/audit"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit = %d, want 1 on the stale directive\nstdout:\n%s\nstderr:\n%s",
			code, stdout.String(), stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "stale //lint:allow floateq") {
		t.Errorf("stale directive not reported:\n%s", out)
	}
	if got := strings.Count(out, "stale //lint:allow"); got != 1 {
		t.Errorf("want exactly 1 stale directive (the live one must survive), got %d:\n%s", got, out)
	}
}

func TestUnknownAnalyzerRejected(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-only", "nosuch"}, &stdout, &stderr); code != 2 {
		t.Fatalf("-only nosuch exited %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "unknown analyzer") {
		t.Errorf("stderr should explain the unknown analyzer, got: %s", stderr.String())
	}
}
