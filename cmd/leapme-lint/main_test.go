package main

import (
	"strings"
	"testing"
)

// TestRepoIsClean is the smoke test the issue asks for: the multichecker
// over the whole module must exit 0 with no findings. Every invariant
// violation in the tree is either fixed or carries a reasoned
// //lint:allow annotation.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module from source; skipped in -short")
	}
	var stdout, stderr strings.Builder
	code := run([]string{"leapme/..."}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("leapme-lint leapme/... exited %d, want 0\nstdout:\n%s\nstderr:\n%s",
			code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("expected no findings, got:\n%s", stdout.String())
	}
}

// TestSeededViolationFails drives the full binary path (go list → load →
// analyze → exit code) over a fixture package that contains known
// violations: the gate must exit 1 and name the analyzer.
func TestSeededViolationFails(t *testing.T) {
	var stdout, stderr strings.Builder
	code := run([]string{"../../internal/analysis/guardgo/testdata/pos"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit = %d, want 1 on seeded violations\nstdout:\n%s\nstderr:\n%s",
			code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stdout.String(), "(guardgo)") {
		t.Errorf("findings should be attributed to guardgo, got:\n%s", stdout.String())
	}
}

func TestListNamesAllAnalyzers(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-list exited %d", code)
	}
	for _, name := range []string{"ctxflow", "determinism", "featdim", "floateq", "guardgo"} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list output missing %s:\n%s", name, stdout.String())
		}
	}
}

func TestUnknownAnalyzerRejected(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-only", "nosuch"}, &stdout, &stderr); code != 2 {
		t.Fatalf("-only nosuch exited %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "unknown analyzer") {
		t.Errorf("stderr should explain the unknown analyzer, got: %s", stderr.String())
	}
}
