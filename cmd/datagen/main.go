// Command datagen writes the synthetic evaluation datasets to disk as
// dataset.json + instances.csv, one directory per dataset.
//
// Usage:
//
//	datagen [-out data] [-datasets cameras,headphones,phones,tvs] [-lite] [-seed 1]
//	datagen -preset large [-props 10000] [-sources 12] [-synonym-rate 0.35] [-category cameras]
//
// The large preset generates a single benchmark-scale corpus (10k–100k
// properties) for blocking and ANN-index experiments; -props sets the
// target property count, -synonym-rate the naming heterogeneity.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"leapme/internal/dataset"
	"leapme/internal/domain"
)

func main() {
	out := flag.String("out", "data", "output directory")
	names := flag.String("datasets", "cameras,headphones,phones,tvs", "comma-separated dataset names")
	lite := flag.Bool("lite", false, "generate the shrunk -lite variants")
	seed := flag.Int64("seed", 1, "generator seed")
	preset := flag.String("preset", "", "alternative preset: large (benchmark-scale corpus)")
	props := flag.Int("props", 10000, "large preset: target total property count")
	sources := flag.Int("sources", 12, "large preset: number of sources")
	synRate := flag.Float64("synonym-rate", 0.35, "large preset: probability a shared property is named by a synonym instead of its canonical name")
	category := flag.String("category", "cameras", "large preset: reference category")
	flag.Parse()

	var err error
	switch *preset {
	case "":
		err = run(*out, *names, *lite, *seed)
	case "large":
		err = runLarge(*out, *category, *props, *sources, *synRate, *seed)
	default:
		err = fmt.Errorf("unknown preset %q (want large)", *preset)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

func run(out, names string, lite bool, seed int64) error {
	configs := map[string]dataset.GenConfig{
		"cameras":    dataset.CamerasConfig(seed),
		"headphones": dataset.HeadphonesConfig(seed),
		"phones":     dataset.PhonesConfig(seed),
		"tvs":        dataset.TVsConfig(seed),
	}
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		cfg, ok := configs[name]
		if !ok {
			return fmt.Errorf("unknown dataset %q (want cameras, headphones, phones, tvs)", name)
		}
		if lite {
			cfg = dataset.Lite(cfg)
		}
		if err := generate(out, cfg); err != nil {
			return err
		}
	}
	return nil
}

func runLarge(out, category string, props, sources int, synRate float64, seed int64) error {
	cat, ok := domain.Categories()[category]
	if !ok {
		return fmt.Errorf("unknown category %q", category)
	}
	return generate(out, dataset.LargeConfig(cat, props, sources, synRate, seed))
}

func generate(out string, cfg dataset.GenConfig) error {
	d, err := dataset.Generate(cfg)
	if err != nil {
		return err
	}
	dir := filepath.Join(out, d.Name)
	if err := d.SaveDir(dir); err != nil {
		return err
	}
	s := d.Summary()
	fmt.Printf("%-16s → %s: %d sources, %d properties, %d entities, %d instances, %d matching pairs\n",
		d.Name, dir, s.Sources, s.Properties, s.Entities, s.Instances, s.MatchingPairs)
	return nil
}
