// Command datagen writes the synthetic evaluation datasets to disk as
// dataset.json + instances.csv, one directory per dataset.
//
// Usage:
//
//	datagen [-out data] [-datasets cameras,headphones,phones,tvs] [-lite] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"leapme/internal/dataset"
)

func main() {
	out := flag.String("out", "data", "output directory")
	names := flag.String("datasets", "cameras,headphones,phones,tvs", "comma-separated dataset names")
	lite := flag.Bool("lite", false, "generate the shrunk -lite variants")
	seed := flag.Int64("seed", 1, "generator seed")
	flag.Parse()

	if err := run(*out, *names, *lite, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

func run(out, names string, lite bool, seed int64) error {
	configs := map[string]dataset.GenConfig{
		"cameras":    dataset.CamerasConfig(seed),
		"headphones": dataset.HeadphonesConfig(seed),
		"phones":     dataset.PhonesConfig(seed),
		"tvs":        dataset.TVsConfig(seed),
	}
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		cfg, ok := configs[name]
		if !ok {
			return fmt.Errorf("unknown dataset %q (want cameras, headphones, phones, tvs)", name)
		}
		if lite {
			cfg = dataset.Lite(cfg)
		}
		d, err := dataset.Generate(cfg)
		if err != nil {
			return err
		}
		dir := filepath.Join(out, d.Name)
		if err := d.SaveDir(dir); err != nil {
			return err
		}
		s := d.Summary()
		fmt.Printf("%-16s → %s: %d sources, %d properties, %d entities, %d instances, %d matching pairs\n",
			d.Name, dir, s.Sources, s.Properties, s.Entities, s.Instances, s.MatchingPairs)
	}
	return nil
}
