package main

import (
	"os"
	"path/filepath"
	"testing"

	"leapme/internal/dataset"
)

func TestDatagenRun(t *testing.T) {
	dir := t.TempDir()
	if err := run(dir, "headphones", true, 1); err != nil {
		t.Fatal(err)
	}
	d, err := dataset.LoadDir(filepath.Join(dir, "headphones-lite"))
	if err != nil {
		t.Fatal(err)
	}
	if d.Name != "headphones-lite" || len(d.Props) == 0 {
		t.Errorf("loaded dataset = %s with %d props", d.Name, len(d.Props))
	}
	if _, err := os.Stat(filepath.Join(dir, "headphones-lite", "instances.csv")); err != nil {
		t.Error("instances.csv missing")
	}
}

func TestDatagenMultiple(t *testing.T) {
	dir := t.TempDir()
	if err := run(dir, "phones, tvs", true, 2); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"phones-lite", "tvs-lite"} {
		if _, err := dataset.LoadDir(filepath.Join(dir, name)); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestDatagenUnknownDataset(t *testing.T) {
	if err := run(t.TempDir(), "bicycles", false, 1); err == nil {
		t.Error("unknown dataset accepted")
	}
}
