// Package fusion implements the step after property matching in the
// paper's knowledge-graph vision (Section VI: a "comprehensive data
// integration approach ... as well as data fusion"): given a cluster of
// matched properties, reconcile their differently-formatted values into
// one canonical profile — the fused KG property.
//
// Sources render the same fact in different conventions ("450 g",
// "0.45 kg", "0,45 kilograms"); Parse canonicalises a single value
// (kind, number, unit normalised to a base unit), and FuseCluster
// aggregates a cluster's values into a profile with agreement statistics,
// so downstream curation can see both the fused representation and how
// much the sources actually concur.
package fusion

import (
	"sort"
	"strings"

	"leapme/internal/features"
	"leapme/internal/text"
)

// Kind classifies a parsed value.
type Kind int

// Value kinds, in order of parse priority.
const (
	KindNumber Kind = iota // bare number or number+unit
	KindBool               // yes/no style flags
	KindText               // anything else
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindNumber:
		return "number"
	case KindBool:
		return "bool"
	default:
		return "text"
	}
}

// unitEntry normalises one unit spelling to a base unit and scale.
type unitEntry struct {
	base  string
	scale float64
}

// unitTable maps unit spellings (lowercase) to a canonical base unit.
// Base units: mm (length), g (mass), s (time), h (duration), hz
// (frequency), b (bytes), px (pixels), in (inches), w (watts),
// mah (charge), l (volume), plus pass-through domain units.
var unitTable = map[string]unitEntry{
	// length
	"mm": {"mm", 1}, "millimeters": {"mm", 1}, "millimetres": {"mm", 1},
	"cm": {"mm", 10}, "centimeters": {"mm", 10},
	"m": {"mm", 1000}, "meters": {"mm", 1000}, "metres": {"mm", 1000},
	"in": {"in", 1}, "inch": {"in", 1}, "inches": {"in", 1}, "\"": {"in", 1},
	"ft": {"in", 12},
	// mass
	"g": {"g", 1}, "grams": {"g", 1}, "gr": {"g", 1}, "gram": {"g", 1},
	"kg": {"g", 1000}, "kilograms": {"g", 1000},
	"oz": {"g", 28.3495}, "lbs": {"g", 453.592}, "lb": {"g", 453.592},
	// time
	"s": {"s", 1}, "sec": {"s", 1}, "seconds": {"s", 1},
	"ms":  {"s", 0.001},
	"min": {"s", 60}, "minutes": {"s", 60},
	"h": {"h", 1}, "hours": {"h", 1}, "hrs": {"h", 1}, "hr": {"h", 1},
	// frequency
	"hz": {"hz", 1}, "hertz": {"hz", 1},
	"khz": {"hz", 1e3}, "mhz": {"hz", 1e6}, "ghz": {"hz", 1e9},
	// storage
	"b": {"b", 1}, "kb": {"b", 1e3}, "mb": {"b", 1e6},
	"gb": {"b", 1e9}, "gigabytes": {"b", 1e9}, "tb": {"b", 1e12},
	// imaging
	"mp": {"mp", 1}, "megapixels": {"mp", 1}, "megapixel": {"mp", 1}, "mpix": {"mp", 1},
	// power & electrical
	"w": {"w", 1}, "watts": {"w", 1}, "kw": {"w", 1000},
	"mah": {"mah", 1}, "v": {"v", 1}, "ohm": {"ohm", 1}, "ohms": {"ohm", 1}, "Ω": {"ohm", 1},
	// volume
	"l": {"l", 1}, "liters": {"l", 1}, "litres": {"l", 1}, "ml": {"l", 0.001},
	// currency (not interconverted; kept distinct)
	"$": {"usd", 1}, "usd": {"usd", 1}, "€": {"eur", 1}, "eur": {"eur", 1},
	// misc domain units kept as themselves
	"fps": {"fps", 1}, "db": {"db", 1}, "nits": {"nits", 1},
	"shots": {"shots", 1}, "images": {"shots", 1}, "frames": {"shots", 1},
	"x": {"x", 1}, "times": {"x", 1}, "p": {"p", 1}, "stars": {"stars", 1},
	"%": {"%", 1}, "years": {"years", 1}, "yr": {"years", 1}, "year": {"years", 1},
}

var boolWords = map[string]bool{
	"yes": true, "no": false, "true": true, "false": false,
	"✓": true, "–": false, "y": true, "n": false,
}

// Canonical is a parsed, normalised value.
type Canonical struct {
	Kind Kind
	// Num is the numeric value converted to the base unit (KindNumber).
	Num float64
	// Unit is the base unit, "" for bare numbers.
	Unit string
	// Bool is the flag value (KindBool).
	Bool bool
	// Text is the normalised text (KindText): lowercase, space-joined
	// tokens.
	Text string
}

// Parse canonicalises one raw value string.
func Parse(value string) Canonical {
	v := strings.TrimSpace(value)
	if v == "" {
		return Canonical{Kind: KindText, Text: ""}
	}
	// Currency prefix form: "$1,299.00", "€499".
	for _, cur := range []string{"$", "€"} {
		if strings.HasPrefix(v, cur) {
			if n := features.NumericValue(v[len(cur):]); n != -1 {
				return Canonical{Kind: KindNumber, Num: n, Unit: unitTable[cur].base}
			}
		}
	}
	// Bare number.
	if n := features.NumericValue(v); n != -1 {
		return Canonical{Kind: KindNumber, Num: n}
	}
	// Number + unit ("450 g", "0,45 kilograms", "24.2MP").
	if c, ok := parseNumberUnit(v); ok {
		return c
	}
	// Boolean, possibly elaborated ("Yes (optical stabilization)").
	lower := strings.ToLower(v)
	first := lower
	if i := strings.IndexAny(lower, " (,"); i > 0 {
		first = lower[:i]
	}
	if b, ok := boolWords[first]; ok {
		return Canonical{Kind: KindBool, Bool: b}
	}
	if b, ok := boolWords[lower]; ok {
		return Canonical{Kind: KindBool, Bool: b}
	}
	return Canonical{Kind: KindText, Text: strings.Join(text.Tokenize(v), " ")}
}

// parseNumberUnit matches "<number><sep?><unit>" forms, including comma
// decimals.
func parseNumberUnit(v string) (Canonical, bool) {
	// Split into leading numeric run and trailing unit.
	r := []rune(v)
	i := 0
	for i < len(r) && (r[i] >= '0' && r[i] <= '9' || r[i] == '.' || r[i] == ',' || r[i] == '-' && i == 0 || r[i] == '+' && i == 0) {
		i++
	}
	if i == 0 {
		return Canonical{}, false
	}
	numPart := strings.ReplaceAll(string(r[:i]), ",", ".")
	// A thousands-separated integer like 1,299 would have become 1.299;
	// fall back to the strict parser for the separated form.
	n := features.NumericValue(numPart)
	if n == -1 {
		n = features.NumericValue(string(r[:i]))
	}
	if n == -1 {
		return Canonical{}, false
	}
	unit := strings.TrimSpace(strings.ToLower(string(r[i:])))
	if unit == "" {
		return Canonical{Kind: KindNumber, Num: n}, true
	}
	if e, ok := unitTable[unit]; ok {
		return Canonical{Kind: KindNumber, Num: n * e.scale, Unit: e.base}, true
	}
	// Unknown unit word: still numeric, keep the raw unit.
	if len(strings.Fields(unit)) == 1 {
		return Canonical{Kind: KindNumber, Num: n, Unit: unit}, true
	}
	return Canonical{}, false
}

// Profile is the fused representation of a cluster's values.
type Profile struct {
	// Kind is the majority kind among parsed values.
	Kind Kind
	// Unit is the majority base unit among numeric values.
	Unit string
	// Median of the numeric values converted to Unit.
	Median float64
	// TrueFraction of boolean values (KindBool).
	TrueFraction float64
	// TopText lists the most frequent normalised text values, most
	// frequent first (up to 5).
	TopText []string
	// Agreement is the fraction of values conforming to the majority
	// kind (and unit, for numbers) — the fusion confidence.
	Agreement float64
	// Values is the number of values fused.
	Values int
}

// FuseCluster canonicalises and aggregates the values of one property
// cluster.
func FuseCluster(values []string) Profile {
	var p Profile
	p.Values = len(values)
	if len(values) == 0 {
		p.Kind = KindText
		return p
	}
	parsed := make([]Canonical, len(values))
	kindCount := map[Kind]int{}
	for i, v := range values {
		parsed[i] = Parse(v)
		kindCount[parsed[i].Kind]++
	}
	p.Kind = majorityKind(kindCount)

	switch p.Kind {
	case KindNumber:
		unitCount := map[string]int{}
		for _, c := range parsed {
			if c.Kind == KindNumber {
				unitCount[c.Unit]++
			}
		}
		p.Unit = majorityString(unitCount)
		var nums []float64
		conform := 0
		for _, c := range parsed {
			if c.Kind == KindNumber && c.Unit == p.Unit {
				nums = append(nums, c.Num)
				conform++
			}
		}
		sort.Float64s(nums)
		if len(nums) > 0 {
			if len(nums)%2 == 1 {
				p.Median = nums[len(nums)/2]
			} else {
				p.Median = (nums[len(nums)/2-1] + nums[len(nums)/2]) / 2
			}
		}
		p.Agreement = float64(conform) / float64(len(values))
	case KindBool:
		trues, conform := 0, 0
		for _, c := range parsed {
			if c.Kind == KindBool {
				conform++
				if c.Bool {
					trues++
				}
			}
		}
		if conform > 0 {
			p.TrueFraction = float64(trues) / float64(conform)
		}
		p.Agreement = float64(conform) / float64(len(values))
	default:
		textCount := map[string]int{}
		conform := 0
		for _, c := range parsed {
			if c.Kind == KindText {
				conform++
				textCount[c.Text]++
			}
		}
		type tc struct {
			t string
			c int
		}
		var tcs []tc
		for t, c := range textCount {
			tcs = append(tcs, tc{t, c})
		}
		sort.Slice(tcs, func(i, j int) bool {
			if tcs[i].c != tcs[j].c {
				return tcs[i].c > tcs[j].c
			}
			return tcs[i].t < tcs[j].t
		})
		for i, x := range tcs {
			if i >= 5 {
				break
			}
			p.TopText = append(p.TopText, x.t)
		}
		p.Agreement = float64(conform) / float64(len(values))
	}
	return p
}

func majorityKind(counts map[Kind]int) Kind {
	best, bestN := KindText, -1
	for _, k := range []Kind{KindNumber, KindBool, KindText} {
		if counts[k] > bestN {
			best, bestN = k, counts[k]
		}
	}
	return best
}

func majorityString(counts map[string]int) string {
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys) // deterministic tie-break
	best, bestN := "", -1
	for _, k := range keys {
		if counts[k] > bestN {
			best, bestN = k, counts[k]
		}
	}
	return best
}
