package fusion

import (
	"math"
	"testing"
)

func TestParseBareNumber(t *testing.T) {
	c := Parse("42.5")
	if c.Kind != KindNumber || c.Num != 42.5 || c.Unit != "" {
		t.Errorf("Parse(42.5) = %+v", c)
	}
}

func TestParseNumberUnit(t *testing.T) {
	cases := []struct {
		in   string
		num  float64
		unit string
	}{
		{"450 g", 450, "g"},
		{"0.45 kg", 450, "g"},
		{"0,45 kg", 450, "g"},
		{"1 lbs", 453.592, "g"},
		{"24.2MP", 24.2, "mp"},
		{"45 megapixels", 45, "mp"},
		{"12 cm", 120, "mm"},
		{"3 m", 3000, "mm"},
		{"2 h", 2, "h"},
		{"90 min", 5400, "s"},
		{"16 GB", 16e9, "b"},
		{"20 khz", 20000, "hz"},
		{"$1,299.00", 1299, "usd"},
		{"€499", 499, "eur"},
		{"499 USD", 499, "usd"},
		{"5 stars", 5, "stars"},
	}
	for _, tc := range cases {
		c := Parse(tc.in)
		if c.Kind != KindNumber {
			t.Errorf("Parse(%q).Kind = %v", tc.in, c.Kind)
			continue
		}
		if math.Abs(c.Num-tc.num) > 1e-9*(1+tc.num) || c.Unit != tc.unit {
			t.Errorf("Parse(%q) = %v %q, want %v %q", tc.in, c.Num, c.Unit, tc.num, tc.unit)
		}
	}
}

func TestParseUnknownUnitKept(t *testing.T) {
	c := Parse("12 widgets")
	if c.Kind != KindNumber || c.Num != 12 || c.Unit != "widgets" {
		t.Errorf("Parse(12 widgets) = %+v", c)
	}
}

func TestParseBool(t *testing.T) {
	cases := map[string]bool{
		"yes": true, "Yes": true, "TRUE": true, "✓": true,
		"no": false, "No": false, "false": false, "–": false,
		"Yes (optical stabilization)": true,
	}
	for in, want := range cases {
		c := Parse(in)
		if c.Kind != KindBool || c.Bool != want {
			t.Errorf("Parse(%q) = %+v, want bool %v", in, c, want)
		}
	}
}

func TestParseText(t *testing.T) {
	c := Parse("Full Frame CMOS")
	if c.Kind != KindText || c.Text != "full frame cmos" {
		t.Errorf("Parse text = %+v", c)
	}
	if Parse("").Kind != KindText {
		t.Error("empty should be text")
	}
}

func TestFuseNumericCluster(t *testing.T) {
	// The same underlying ~450g weight across sources in three formats.
	p := FuseCluster([]string{"450 g", "0.45 kg", "455 grams", "1 lbs", "0,46 kg"})
	if p.Kind != KindNumber || p.Unit != "g" {
		t.Fatalf("profile = %+v", p)
	}
	if p.Median < 440 || p.Median > 470 {
		t.Errorf("median = %v, want ≈455", p.Median)
	}
	if p.Agreement != 1 {
		t.Errorf("agreement = %v, want 1 (all convert to grams)", p.Agreement)
	}
}

func TestFuseMixedJunk(t *testing.T) {
	p := FuseCluster([]string{"450 g", "0.5 kg", "n/a", "contact seller"})
	if p.Kind != KindNumber {
		t.Fatalf("kind = %v", p.Kind)
	}
	if p.Agreement != 0.5 {
		t.Errorf("agreement = %v, want 0.5", p.Agreement)
	}
}

func TestFuseBoolCluster(t *testing.T) {
	p := FuseCluster([]string{"yes", "Yes (stabilization)", "no", "true"})
	if p.Kind != KindBool {
		t.Fatalf("kind = %v", p.Kind)
	}
	if math.Abs(p.TrueFraction-0.75) > 1e-12 {
		t.Errorf("TrueFraction = %v, want 0.75", p.TrueFraction)
	}
}

func TestFuseTextCluster(t *testing.T) {
	p := FuseCluster([]string{"CMOS", "cmos", "BSI-CMOS", "CCD", "CMOS"})
	if p.Kind != KindText {
		t.Fatalf("kind = %v", p.Kind)
	}
	if len(p.TopText) == 0 || p.TopText[0] != "cmos" {
		t.Errorf("TopText = %v, want cmos first", p.TopText)
	}
}

func TestFuseEmpty(t *testing.T) {
	p := FuseCluster(nil)
	if p.Values != 0 || p.Kind != KindText {
		t.Errorf("empty profile = %+v", p)
	}
}

func TestKindString(t *testing.T) {
	if KindNumber.String() != "number" || KindBool.String() != "bool" || KindText.String() != "text" {
		t.Error("Kind.String broken")
	}
}

func TestFuseCurrencyNotConverted(t *testing.T) {
	// USD and EUR stay distinct; majority unit wins, agreement reflects
	// the minority.
	p := FuseCluster([]string{"$100", "$120", "€110"})
	if p.Unit != "usd" {
		t.Errorf("unit = %q, want usd", p.Unit)
	}
	if math.Abs(p.Agreement-2.0/3) > 1e-12 {
		t.Errorf("agreement = %v, want 2/3", p.Agreement)
	}
}
