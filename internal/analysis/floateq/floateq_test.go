package floateq_test

import (
	"testing"

	"leapme/internal/analysis/floateq"
	"leapme/internal/analysis/lintkit/lintest"
)

func TestFixtures(t *testing.T) {
	lintest.Run(t, floateq.Analyzer, "testdata/pos", "leapme/internal/ml")
}
