// Package floateq flags == and != between floating-point expressions.
//
// Exact float equality is how divergence checks, threshold gates and
// golden comparisons silently rot: a refactor that changes summation
// order by one ULP flips the comparison while every test still passes.
// Deterministic code compares floats through an explicit tolerance
// (mathx.AlmostEqual), an exact-representation contract documented at
// the comparison site (//lint:allow floateq …), or math.IsNaN for the
// NaN probe.
//
// The analyzer stays quiet on:
//   - x != x / x == x — the classic NaN idiom (math.IsNaN reads better,
//     but the comparison is exact by construction);
//   - comparisons where both operands are compile-time constants;
//   - comparisons against an integral constant (x == 0, n != -1):
//     exact-zero guards and integer-valued sentinels are exact in IEEE
//     754 and idiomatic Go. A computed value compared to a fractional
//     constant (score == 0.7) is still flagged — that is the
//     threshold-drift bug this analyzer exists for.
package floateq

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"math"

	"leapme/internal/analysis/lintkit"
)

// Analyzer is the floateq check.
var Analyzer = &lintkit.Analyzer{
	Name: "floateq",
	Doc: "flag ==/!= on floating-point expressions; compare through mathx.AlmostEqual " +
		"or document exactness with //lint:allow floateq <reason>",
	Run: run,
}

func run(pass *lintkit.Pass) (any, error) {
	pass.Inspect(func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
			return true
		}
		lt := pass.TypesInfo.TypeOf(be.X)
		rt := pass.TypesInfo.TypeOf(be.Y)
		if !lintkit.IsFloat(lt) && !lintkit.IsFloat(rt) {
			return true
		}
		if bothConstant(pass, be) {
			return true
		}
		if isIntegralConst(pass, be.X) || isIntegralConst(pass, be.Y) {
			return true // exact-zero guard or integer sentinel
		}
		if types.ExprString(be.X) == types.ExprString(be.Y) {
			return true // x != x NaN probe
		}
		pass.Reportf(be.Pos(), "floating-point %s compares exact bits; use mathx.AlmostEqual(a, b, tol) "+
			"(or math.IsNaN), or annotate //lint:allow floateq <why exact equality is correct here>", be.Op)
		return true
	})
	return nil, nil
}

func bothConstant(pass *lintkit.Pass, be *ast.BinaryExpr) bool {
	xv, xok := pass.TypesInfo.Types[be.X]
	yv, yok := pass.TypesInfo.Types[be.Y]
	return xok && yok && xv.Value != nil && yv.Value != nil
}

// isIntegralConst reports whether e is a compile-time constant with an
// exact integer value (0, -1, 1e3, …), all of which are represented
// exactly in float64 well past any feature magnitude this repo handles.
func isIntegralConst(pass *lintkit.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	switch tv.Value.Kind() {
	case constant.Int:
		return true
	case constant.Float:
		f, exact := constant.Float64Val(tv.Value)
		//lint:allow floateq Trunc returns f's own bits when f is integral; equality is exact by construction
		return exact && f == math.Trunc(f)
	}
	return false
}
