// Positive floateq fixtures: exact float comparisons must be reported;
// the documented exemptions must stay silent.
package fixture

func compare(a, b float64, n int) bool {
	if a == b { // want `floating-point == compares exact bits`
		return true
	}
	matched := a != 0.7 // want `floating-point != compares exact bits`
	_ = matched

	// Exemptions. Integral constants are exact in IEEE 754:
	if a == 0 || b != -1 || a == 1e3 {
		return false
	}
	// The NaN probe compares a value with itself, exact by construction:
	if a != a {
		return false
	}
	// Both operands constant folds at compile time:
	const half = 0.5
	_ = half == 0.5
	// Integer comparisons are not floats at all:
	if n == 3 {
		return false
	}
	//lint:allow floateq fixture documenting an exact-representation contract
	return a == b*1
}
