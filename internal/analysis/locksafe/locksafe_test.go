package locksafe_test

import (
	"testing"

	"leapme/internal/analysis/lintkit/lintest"
	"leapme/internal/analysis/locksafe"
)

func TestPositiveFixtures(t *testing.T) {
	lintest.Run(t, locksafe.Analyzer, "testdata/pos", "leapme/internal/serve")
}

func TestNegativeFixtures(t *testing.T) {
	lintest.Run(t, locksafe.Analyzer, "testdata/neg", "leapme/internal/index")
}

func TestOutOfScopePackageIsSilent(t *testing.T) {
	lintest.Run(t, locksafe.Analyzer, "testdata/scope", "leapme/other")
}
