// Positive fixtures: every blocking-under-lock and imbalance class
// locksafe must flag inside the scoped packages.
package pos

import (
	"net/http"
	"sync"
	"time"
)

type q struct {
	mu sync.Mutex
	rw sync.RWMutex
	ch chan int
}

func (s *q) sendHeld() {
	s.mu.Lock()
	s.ch <- 1 // want `channel send in sendHeld while s.mu is held`
	s.mu.Unlock()
}

func (s *q) recvHeld() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return <-s.ch // want `channel receive in recvHeld`
}

func (s *q) selectHeld(done chan struct{}) {
	s.mu.Lock()
	defer s.mu.Unlock()
	select { // want `select with no default and no ctx.Done\(\) case in selectHeld`
	case s.ch <- 1:
	case <-done:
	}
}

func (s *q) sleepHeld() {
	s.rw.RLock()
	time.Sleep(time.Millisecond) // want `time.Sleep in sleepHeld while s.rw \(RLock\) is held`
	s.rw.RUnlock()
}

func (s *q) fetchHeld() {
	s.mu.Lock()
	defer s.mu.Unlock()
	http.Get("http://localhost/x") // want `network I/O`
}

func (s *q) waitHeld(wg *sync.WaitGroup) {
	s.mu.Lock()
	wg.Wait() // want `wg.Wait\(\) in waitHeld`
	s.mu.Unlock()
}

func (s *q) rangeHeld(in chan int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	total := 0
	for v := range in { // want `range over channel in rangeHeld`
		total += v
	}
	return total
}

func (s *q) leak(b bool) {
	s.mu.Lock()
	if b {
		return // want `leak can exit while s.mu is still locked`
	}
	s.mu.Unlock()
}

func (s *q) double() {
	s.mu.Lock()
	s.mu.Lock() // want `double acquires s.mu twice`
	s.mu.Unlock()
}

func (s *q) loopLeak(n int) {
	for i := 0; i < n; i++ { // want `loop in loopLeak changes the held-lock set`
		s.mu.Lock()
	}
} // want `loopLeak can exit while s.mu is still locked`
