// Scope fixture: the same violation locksafe flags in serve/index must
// stay silent in packages outside its scope.
package scope

import "sync"

type t struct {
	mu sync.Mutex
	ch chan int
}

func (x *t) sendHeld() {
	x.mu.Lock()
	x.ch <- 1
	x.mu.Unlock()
}
