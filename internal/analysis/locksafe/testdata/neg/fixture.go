// Negative fixtures: the locking idioms the serving and index layers
// are built on — short inline critical sections, defer-unlock with
// ctx-bounded selects, try-sends, and separate goroutine lock contexts.
// All must stay silent.
package neg

import (
	"context"
	"sync"
)

type reg struct {
	mu    sync.RWMutex
	items map[string]int
	queue chan int
}

func (r *reg) get(k string) (int, bool) {
	r.mu.RLock()
	v, ok := r.items[k]
	r.mu.RUnlock()
	return v, ok
}

func (r *reg) put(k string, v int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.items[k] = v
}

// The EnqueueSpan shape: a queue send under RLock, bounded by the
// caller's ctx — the select cannot park past cancellation.
func (r *reg) enqueue(ctx context.Context, v int) error {
	r.mu.RLock()
	defer r.mu.RUnlock()
	select {
	case r.queue <- v:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// A select with a default clause cannot block at all.
func (r *reg) tryEnqueue(v int) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	select {
	case r.queue <- v:
		return true
	default:
		return false
	}
}

// Blocking after release is fine.
func (r *reg) sendAfter(v int) {
	r.mu.Lock()
	r.items["n"] = v
	r.mu.Unlock()
	r.queue <- v
}

// Early unlock on each path balances.
func (r *reg) branchy(b bool) {
	r.mu.Lock()
	if b {
		r.mu.Unlock()
		return
	}
	r.mu.Unlock()
}

// A goroutine launched under lock runs in its own lock context; its
// body blocking is not blocking under our lock.
func (r *reg) spawn() {
	r.mu.Lock()
	defer r.mu.Unlock()
	go func() {
		r.queue <- 1
	}()
}

// An unlock inside a deferred closure still counts as the paired
// release.
func (r *reg) deferClosure() {
	r.mu.Lock()
	defer func() {
		r.mu.Unlock()
	}()
	r.items["x"] = 1
}

// Lock balanced within each loop iteration.
func (r *reg) perIter(n int) {
	for i := 0; i < n; i++ {
		r.mu.Lock()
		r.items["i"] = i
		r.mu.Unlock()
	}
}
