// Package locksafe implements the locksafe analyzer: in the serving and
// index packages, no goroutine may block while holding a sync.Mutex or
// sync.RWMutex, and every acquire must be released on every path.
//
// The serving layer's liveness story depends on its critical sections
// staying tiny: the registry hot-swap (SIGHUP reload under load), the
// feature cache and the batcher all take locks on the request path, and
// a blocking operation inside any of those sections — a channel send to
// a full queue, a select that can park forever, a network call — turns
// one slow consumer into a server-wide stall that the admission gate
// cannot shed its way out of. The index packages share the constraint
// because snapshot hot-swaps follow the same pattern.
//
// locksafe tracks lock state per function with lintkit's flow walker
// and reports: blocking operations (channel send/receive, select,
// time.Sleep, net/* calls, Wait()) reached while a lock is held;
// function exits that leak a lock with no deferred unlock; double
// acquisition of the same lock; and loop bodies whose lock set changes
// across an iteration. Two select forms are exempt because they are
// bounded by construction: a select with a default clause cannot block,
// and a select with a ctx.Done() receive case is bounded by caller
// cancellation — the batcher's EnqueueSpan admission uses exactly that
// shape under RLock, deliberately, so concurrent enqueues serialize
// against Close without wedging.
package locksafe

import (
	"go/ast"
	"go/token"
	"strings"

	"leapme/internal/analysis/lintkit"
)

// ScopePackages is the set of import paths the analyzer enforces. A var
// so the fixture tests can retarget it. Production scope is the serving
// layer and the ANN index — the packages whose locks sit on the request
// path.
var ScopePackages = map[string]bool{
	"leapme/internal/serve": true,
	"leapme/internal/index": true,
}

// Analyzer is the locksafe analyzer.
var Analyzer = &lintkit.Analyzer{
	Name: "locksafe",
	Doc: "in internal/serve and internal/index, no blocking operation (channel send/recv, select without " +
		"default or ctx.Done(), time.Sleep, net/* calls, Wait) while a sync.Mutex/RWMutex is held, and " +
		"lock/unlock must balance on every path",
	Run: run,
}

func run(pass *lintkit.Pass) (any, error) {
	if pass.Pkg == nil || !ScopePackages[pass.Pkg.Path()] {
		return nil, nil
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd.Name.Name, fd.Body)
			// Function literals are separate lock contexts (goroutine
			// bodies, deferred cleanups, callbacks): analyze each as its
			// own function.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					checkFunc(pass, fd.Name.Name+" (func literal)", lit.Body)
				}
				return true
			})
		}
	}
	return nil, nil
}

func checkFunc(pass *lintkit.Pass, name string, body *ast.BlockStmt) {
	lf := &lintkit.LockFlow{
		Pass: pass,
		OnBlocked: func(pos token.Pos, what string, held []lintkit.HeldLock) {
			pass.Reportf(pos, "%s in %s while %s is held: a blocked goroutine here stalls every path that needs the lock",
				what, name, heldList(held))
		},
		OnExit: func(pos token.Pos, held []lintkit.HeldLock) {
			pass.Reportf(pos, "%s can exit while %s is still locked (no unlock or deferred unlock on this path)",
				name, heldList(held))
		},
		OnDoubleLock: func(pos token.Pos, lock lintkit.HeldLock) {
			pass.Reportf(pos, "%s acquires %s twice on the same path: self-deadlock", name, lock.String())
		},
		OnLoopImbalance: func(pos token.Pos, before, after []lintkit.HeldLock) {
			pass.Reportf(pos, "loop in %s changes the held-lock set across an iteration (before: [%s], after: [%s]): the imbalance compounds per iteration",
				name, heldList(before), heldList(after))
		},
	}
	lf.Func(body)
}

func heldList(held []lintkit.HeldLock) string {
	if len(held) == 0 {
		return "<none>"
	}
	parts := make([]string, len(held))
	for i, h := range held {
		parts[i] = h.String()
	}
	return strings.Join(parts, ", ")
}
