// Package analysis is the catalogue of leapme's domain-specific static
// analyzers, run by cmd/leapme-lint (`make lint`, and the "Lint
// (leapme-lint)" CI step). Each analyzer turns one of the repository's
// documented runtime invariants into a compile-time check:
//
//	determinism  wall-clock reads, the global math/rand source and
//	             map-iteration-order accumulation are forbidden inside
//	             the packages behind the -workers reproducibility
//	             guarantee (nn, features, eval, tapon, core, parallel),
//	             the packages promising seeded, replayable schedules
//	             (chaos, client), and the ANN retrieval layer promising
//	             bit-identical indexes and candidate sets for any worker
//	             count (index, blocking). Seeded *rand.Rand values
//	             (mathx.NewRand, parallel.SeedStream) and the
//	             collect-keys-then-sort map pattern stay legal.
//	guardgo      goroutine launches must route through internal/guard
//	             (guard.Go / guard.ForEach) so panics land in a
//	             guard.Report instead of killing the process.
//	ctxflow      a named context.Context parameter must be consulted;
//	             unbounded or channel loops in ctx-holding functions
//	             must check ctx; context.Background()/TODO() must not
//	             be minted in loops or in exported functions that take
//	             no ctx.
//	floateq      == and != on floating-point expressions are flagged;
//	             compare through mathx.AlmostEqual, use math.IsNaN, or
//	             document exactness at the comparison site. Integral
//	             constants (x == 0, n != -1) and the x != x NaN probe
//	             are exempt.
//	featdim      the Table I feature layout: internal/features must
//	             declare MetaDim=29 and NumPairDistances=8, and the
//	             derived sizes 29/329/629/637 may not appear as naked
//	             literals in sizing positions anywhere else — use
//	             features.MetaDim and the Extractor/Pairer dimension
//	             methods.
//	hotalloc     functions annotated //lint:hotpath — plus the seeded
//	             kernel list (nn.Kernel / nn.QuantKernel forward paths,
//	             core.Scorer score paths, the batcher span loop) — must
//	             be statically allocation-free: no make/new, map/slice
//	             literals, growing append, closures, fmt,
//	             strings.Builder or interface boxing, with same-package
//	             callees checked one level deep. panic(...) arguments
//	             are exempt. Every annotated function must also be
//	             named inside a testing.AllocsPerRun closure in its
//	             package's tests (the gate cross-check, run by
//	             cmd/leapme-lint and CI) so the static and dynamic
//	             halves of the zero-alloc contract cannot drift apart.
//	locksafe     in internal/serve and internal/index, nothing may
//	             block while a sync.Mutex/RWMutex is held — channel
//	             send/receive, select (unless it has a default clause
//	             or a ctx.Done() case), time.Sleep, net/* calls,
//	             Wait() — and lock/unlock must balance on every path
//	             (no leaked locks at returns, no double acquire, no
//	             per-iteration imbalance in loops).
//	errvocab     every non-2xx response in internal/serve and
//	             cmd/leapme-serve must be written by the typed
//	             error-vocabulary helpers (fail/failCode/shed/
//	             failDeadline/enqueueFail, or probe for readiness
//	             statuses); naked http.Error and WriteHeader(4xx|5xx)
//	             break the client's code-dispatched retry contract and
//	             are reported.
//
// # Suppressing a finding
//
// A finding is suppressed by an annotation on the offending line, or on
// the line directly above it:
//
//	//lint:allow <analyzer> <reason>
//
// The reason is mandatory and should say why the invariant holds anyway
// (e.g. "sort tie-break must be an exact total order"). A missing
// reason, or a directive naming an unknown analyzer, is itself reported
// under the pseudo-analyzer "lintdirective" and fails the gate — stale
// suppressions cannot accumulate silently. Type-check errors are
// likewise surfaced as "typecheck" findings.
//
// Suppressions that stop suppressing are caught too: `make lint-audit`
// (leapme-lint -audit-allows, also a CI step) re-runs every analyzer
// with directives ignored and fails on any //lint:allow whose covered
// lines no longer produce a raw diagnostic. Delete the directive; an
// allow that guards nothing only masks the next real finding on that
// line.
//
// # Adding an analyzer
//
// 1. Create internal/analysis/<name>/<name>.go declaring a
// *lintkit.Analyzer with a Name (the //lint:allow token), a one-line
// Doc, and a Run func. Walk files with pass.Inspect/InspectStack and
// report with pass.Reportf. If the check is package-scoped, expose the
// scope as a package-level var so fixtures can retarget it.
//
// 2. Add fixtures under internal/analysis/<name>/testdata/ and a test
// calling lintest.Run. Lines that must trigger carry a trailing
// "// want `regexp`" comment; every other line must stay silent.
//
// 3. Register the analyzer in All() below, then run `make lint` on the
// whole tree and triage: fix real violations, annotate intentional ones
// with a reason, and only then merge — the gate must stay green.
//
// The framework (loader, suppressor, runner, fixture harness) lives in
// internal/analysis/lintkit. It is a deliberately small, stdlib-only
// mimic of golang.org/x/tools/go/analysis: the build is offline, so the
// x/tools module is unavailable; the analyzer surface (Pass, Reportf,
// Inspect) matches closely enough that a future migration is mechanical.
package analysis
