// Positive determinism fixtures: every want line must be reported when
// this package is analyzed under a deterministic import path.
package fixture

import (
	"math/rand"
	randv2 "math/rand/v2"
	"time"
)

func clocks() time.Time {
	t := time.Now()           // want `time\.Now reads the wall clock`
	_ = time.Since(t)         // want `time\.Since reads the wall clock`
	_ = time.After(time.Hour) // want `time\.After reads the wall clock`
	time.Sleep(0)             // Sleep delays but never changes a value: legal.
	return t
}

func globalRand() float64 {
	_ = rand.Intn(10)                  // want `global rand source`
	_ = randv2.IntN(10)                // want `global rand source`
	rand.Shuffle(3, func(i, j int) {}) // want `global rand source`

	// Seeded sources are the sanctioned pattern.
	rng := rand.New(rand.NewSource(42))
	_ = rng.Intn(10)
	pcg := randv2.New(randv2.NewPCG(1, 2))
	_ = pcg.IntN(10)

	//lint:allow determinism demonstration that suppression works in fixtures
	return rand.Float64()
}

func mapAccumulation(m map[string]float64) ([]string, float64) {
	var sum float64
	for _, v := range m {
		sum += v // want `float accumulation over map iteration order`
	}

	var vals []float64
	for _, v := range m {
		vals = append(vals, v) // want `append of a map \*value\*`
	}
	_ = vals

	// Collect-keys-then-sort is the sanctioned pattern and stays legal.
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}

	// Counting is order-insensitive: integer addition commutes exactly.
	n := 0
	for range m {
		n++
	}
	_ = n
	return keys, sum
}
