// Negative determinism fixtures: the same constructs are legal outside
// the deterministic packages (this directory is analyzed under a
// non-deterministic import path), so nothing here may be reported.
package fixture

import (
	"math/rand"
	"time"
)

func clocksElsewhere() time.Duration {
	start := time.Now() // serving code may read the clock freely
	_ = rand.Intn(10)
	return time.Since(start)
}

func mapSumElsewhere(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v
	}
	return sum
}
