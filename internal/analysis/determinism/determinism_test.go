package determinism_test

import (
	"testing"

	"leapme/internal/analysis/determinism"
	"leapme/internal/analysis/lintkit/lintest"
)

func TestPositiveFixtures(t *testing.T) {
	// Analyzed as if it were one of the deterministic packages.
	lintest.Run(t, determinism.Analyzer, "testdata/pos", "leapme/internal/nn")
}

func TestNegativeFixtures(t *testing.T) {
	// Identical constructs outside the deterministic set stay silent.
	lintest.Run(t, determinism.Analyzer, "testdata/neg", "leapme/internal/serve")
}

func TestPositiveFixturesSilentOutsideScope(t *testing.T) {
	// The pos fixtures carry want comments, so running them out of
	// scope must fail if anything is reported — but nothing should be,
	// and the unmatched wants would fail too. Use a throwaway subtest
	// to assert the analyzer's package gate directly instead.
	if got := len(determinism.Packages); got != 10 {
		t.Fatalf("deterministic package set has %d entries, want 10 (nn, features, eval, tapon, core, parallel, chaos, client, index, blocking)", got)
	}
}
