// Package determinism forbids the three classic sources of run-to-run
// drift inside the packages whose outputs must be bit-identical across
// repetitions and worker counts: wall-clock reads, the global math/rand
// source, and order-sensitive accumulation over map iteration.
//
// The parallel pipeline's reproducibility guarantee (workers=1 and
// workers=N produce byte-for-byte identical models and scores, see
// `make test-determinism`) holds only while every stochastic choice
// flows from an explicitly seeded *rand.Rand (mathx.NewRand /
// parallel.SeedStream) and every reduction runs in an input-derived
// order. This analyzer turns those review-time rules into compile-time
// errors.
package determinism

import (
	"go/ast"
	"go/token"
	"go/types"

	"leapme/internal/analysis/lintkit"
)

// Packages lists the import paths whose results feed the paper's
// 25-repetition evaluation protocol and the -workers reproducibility
// claim. The analyzer is silent everywhere else. Var, not const, so the
// fixture tests can retarget it.
var Packages = []string{
	"leapme/internal/nn",
	"leapme/internal/features",
	"leapme/internal/eval",
	"leapme/internal/tapon",
	"leapme/internal/core",
	"leapme/internal/parallel",
	// The fault-injection layer and the retrying client promise seeded,
	// replayable schedules — same rules, same analyzer.
	"leapme/internal/chaos",
	"leapme/internal/client",
	// The ANN retrieval layer promises bit-identical indexes and
	// candidate sets for any worker count — same rules again.
	"leapme/internal/index",
	"leapme/internal/blocking",
}

// clockFuncs are the time package functions that read the wall clock or
// schedule against it. time.Sleep stays legal: it delays work but never
// changes a computed value.
var clockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true,
	"After": true, "Tick": true, "NewTicker": true, "NewTimer": true, "AfterFunc": true,
}

// randConstructors are the package-level math/rand (and rand/v2)
// functions that build explicitly seeded generators — the only
// package-level names deterministic code may touch. Everything else at
// package level (rand.Int, rand.Float64, rand.Shuffle, …) draws from
// the shared global source, whose sequence depends on every other
// goroutine that ever touched it.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	// math/rand/v2 explicit-seed generators.
	"NewPCG": true, "NewChaCha8": true,
}

// Analyzer is the determinism check.
var Analyzer = &lintkit.Analyzer{
	Name: "determinism",
	Doc: "forbid wall-clock reads, global math/rand and map-order accumulation " +
		"inside the deterministic packages (nn, features, eval, tapon, core, parallel, chaos, client, index, blocking)",
	Run: run,
}

func run(pass *lintkit.Pass) (any, error) {
	if pass.Pkg == nil || !inScope(pass.Pkg.Path()) {
		return nil, nil
	}
	pass.Inspect(func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			checkSelector(pass, n)
		case *ast.RangeStmt:
			checkMapRange(pass, n)
		}
		return true
	})
	return nil, nil
}

func inScope(path string) bool {
	for _, p := range Packages {
		if p == path {
			return true
		}
	}
	return false
}

func checkSelector(pass *lintkit.Pass, sel *ast.SelectorExpr) {
	path, name, ok := pass.QualifiedCallee(sel)
	if !ok {
		return
	}
	switch path {
	case "time":
		if clockFuncs[name] {
			pass.Reportf(sel.Pos(), "time.%s reads the wall clock in a deterministic package; "+
				"thread timing through the caller or drop it from the result path", name)
		}
	case "math/rand", "math/rand/v2":
		if randConstructors[name] {
			return
		}
		// Only package-level *functions* are the global source; types
		// (rand.Rand, rand.Source) and constants are fine.
		if obj, isFunc := pass.TypesInfo.Uses[sel.Sel].(*types.Func); isFunc && obj != nil {
			pass.Reportf(sel.Pos(), "%s.%s draws from the global rand source; "+
				"use a seeded *rand.Rand (mathx.NewRand / parallel.SeedStream) instead", pathBase(path), name)
		}
	}
}

func pathBase(path string) string {
	if path == "math/rand/v2" {
		return "rand/v2"
	}
	return "rand"
}

// checkMapRange flags order-sensitive accumulation inside a range over a
// map. Collecting the *keys* for a later sort is the sanctioned pattern
// and stays legal:
//
//	for k := range m { keys = append(keys, k) }   // ok
//	for _, v := range m { sum += v.Weight }       // flagged
//	for k, v := range m { out = append(out, v) }  // flagged
func checkMapRange(pass *lintkit.Pass, rng *ast.RangeStmt) {
	tv, ok := pass.TypesInfo.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	keyObj := identObj(pass, rng.Key)
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // its own scope; closures are checked via their own statements when run
		case *ast.AssignStmt:
			checkMapRangeAssign(pass, rng, keyObj, n)
		case *ast.IncDecStmt:
			// counters (n++) are order-insensitive; integer addition
			// commutes exactly.
		}
		return true
	})
}

func checkMapRangeAssign(pass *lintkit.Pass, rng *ast.RangeStmt, keyObj types.Object, as *ast.AssignStmt) {
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		for _, lhs := range as.Lhs {
			if obj := rootObj(pass, lhs); obj != nil && declaredOutside(obj, rng) && lintkit.IsFloat(pass.TypesInfo.TypeOf(lhs)) {
				pass.Reportf(as.Pos(), "float accumulation over map iteration order is not reproducible; "+
					"collect keys, sort, then fold in sorted order")
			}
		}
	case token.ASSIGN, token.DEFINE:
		// look for x = append(x, expr) where expr is not the range key.
		for i, rhs := range as.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok || len(call.Args) < 2 {
				continue
			}
			if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "append" {
				continue
			}
			if i >= len(as.Lhs) {
				continue
			}
			obj := rootObj(pass, as.Lhs[i])
			if obj == nil || !declaredOutside(obj, rng) {
				continue
			}
			for _, arg := range call.Args[1:] {
				if keyObj != nil && identObj(pass, arg) == keyObj {
					continue // append(keys, k): collect-then-sort pattern
				}
				pass.Reportf(as.Pos(), "append of a map *value* while ranging over the map records map order; "+
					"collect keys, sort, then append in sorted order")
				break
			}
		}
	}
}

// identObj resolves e to its object when e is a plain identifier.
func identObj(pass *lintkit.Pass, e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := pass.TypesInfo.Defs[id]; obj != nil {
		return obj
	}
	return pass.TypesInfo.Uses[id]
}

// rootObj resolves the base identifier of an lvalue (x, x.f, x[i], …).
func rootObj(pass *lintkit.Pass, e ast.Expr) types.Object {
	for {
		switch v := ast.Unparen(e).(type) {
		case *ast.Ident:
			return identObj(pass, v)
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		default:
			return nil
		}
	}
}

func declaredOutside(obj types.Object, n ast.Node) bool {
	return obj.Pos() < n.Pos() || obj.Pos() >= n.End()
}
