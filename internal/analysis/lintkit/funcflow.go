package lintkit

// funcflow is lintkit's light per-function dataflow layer: a statement
// walker that threads lock state through branches, and a classifier for
// statically-detectable heap allocations. Both work directly on the
// typed AST — no go/ssa, no CFG construction — trading path precision
// for a dependency-free implementation that is exact on the straight-
// line lock/unlock and arena patterns this repository actually uses.
// The hotalloc and locksafe analyzers are built on it; future analyzers
// that need "what happens between acquire and release" or "does this
// body allocate" inherit it for free.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ExprString renders an expression as a canonical key: identifiers and
// selector chains print as written (b.mu, s.cache.mu), everything else
// falls back to a structural placeholder. Two syntactically identical
// references to the same lock render identically, which is all the lock
// tracker needs.
func ExprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return ExprString(e.X) + "." + e.Sel.Name
	case *ast.ParenExpr:
		return ExprString(e.X)
	case *ast.StarExpr:
		return ExprString(e.X)
	case *ast.IndexExpr:
		return ExprString(e.X) + "[" + ExprString(e.Index) + "]"
	case *ast.CallExpr:
		return ExprString(e.Fun) + "()"
	case *ast.BasicLit:
		return e.Value
	default:
		return fmt.Sprintf("<%T>", e)
	}
}

// --- lock-state tracking ---

// LockOp classifies a sync.Mutex / sync.RWMutex method call.
type LockOp int

const (
	LockAcquire  LockOp = iota // Lock()
	LockRelease                // Unlock()
	RLockAcquire               // RLock()
	RLockRelease               // RUnlock()
)

// MutexOp reports whether call is a Lock/Unlock/RLock/RUnlock method
// call on a sync.Mutex or sync.RWMutex (including ones promoted through
// embedding), returning the canonical receiver key and the operation.
func (p *Pass) MutexOp(call *ast.CallExpr) (key string, op LockOp, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", 0, false
	}
	s := p.TypesInfo.Selections[sel]
	if s == nil {
		return "", 0, false
	}
	fn, isFn := s.Obj().(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", 0, false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return "", 0, false
	}
	rt := recv.Type()
	if ptr, isPtr := rt.(*types.Pointer); isPtr {
		rt = ptr.Elem()
	}
	named, isNamed := rt.(*types.Named)
	if !isNamed {
		return "", 0, false
	}
	tn := named.Obj().Name()
	if tn != "Mutex" && tn != "RWMutex" {
		return "", 0, false
	}
	switch fn.Name() {
	case "Lock":
		op = LockAcquire
	case "Unlock":
		op = LockRelease
	case "RLock":
		op = RLockAcquire
	case "RUnlock":
		op = RLockRelease
	default:
		return "", 0, false
	}
	return ExprString(sel.X), op, true
}

// HeldLock is one lock the flow walker believes is held at a program
// point.
type HeldLock struct {
	Key      string    // canonical receiver expression, e.g. "b.mu"
	Op       LockOp    // LockAcquire or RLockAcquire
	Pos      token.Pos // where it was acquired
	Deferred bool      // a matching deferred unlock is registered
}

func (h HeldLock) String() string {
	if h.Op == RLockAcquire {
		return h.Key + " (RLock)"
	}
	return h.Key
}

// LockFlow walks one function body tracking which mutexes are held,
// invoking callbacks at the points the locksafe invariants care about.
// Branches (if/switch/select) are walked on copies of the state and
// merged as a union; loops are walked once and must leave the lock set
// unchanged. Function literals are separate lock contexts: the walker
// does not descend into them (analyze them as their own functions), and
// a `go` statement's call is likewise skipped.
type LockFlow struct {
	Pass *Pass
	// OnBlocked fires for a potentially-blocking operation reached while
	// at least one lock is held: channel send/receive, a select with no
	// default and no ctx.Done() case, time.Sleep, net/http calls, and
	// Wait() method calls.
	OnBlocked func(pos token.Pos, what string, held []HeldLock)
	// OnExit fires when a path leaves the function (return or falling off
	// the end) while a lock without a deferred unlock is still held.
	OnExit func(pos token.Pos, held []HeldLock)
	// OnDoubleLock fires when a lock is acquired while the walker already
	// believes the same key is held (self-deadlock for Mutex and for
	// RWMutex writers).
	OnDoubleLock func(pos token.Pos, lock HeldLock)
	// OnLoopImbalance fires when one loop iteration ends with a different
	// lock set than it started with — the leak that compounds per
	// iteration.
	OnLoopImbalance func(pos token.Pos, before, after []HeldLock)
}

type lockState struct {
	held []HeldLock
}

func (st *lockState) clone() *lockState {
	return &lockState{held: append([]HeldLock(nil), st.held...)}
}

func (st *lockState) find(key string) int {
	for i, h := range st.held {
		if h.Key == key {
			return i
		}
	}
	return -1
}

// merge unions the other state into st: a lock held on either path is
// conservatively treated as held after the join.
func (st *lockState) merge(other *lockState) {
	for _, h := range other.held {
		if st.find(h.Key) < 0 {
			st.held = append(st.held, h)
		}
	}
}

func (st *lockState) keys() string {
	var b []string
	for _, h := range st.held {
		b = append(b, h.String())
	}
	return strings.Join(b, ", ")
}

// undeferred returns the held locks that have no deferred unlock —
// the ones a function exit leaks.
func (st *lockState) undeferred() []HeldLock {
	var out []HeldLock
	for _, h := range st.held {
		if !h.Deferred {
			out = append(out, h)
		}
	}
	return out
}

// Func walks fd's body. It is the entry point for FuncDecls and
// FuncLits alike (pass the body).
func (lf *LockFlow) Func(body *ast.BlockStmt) {
	if body == nil {
		return
	}
	st := &lockState{}
	lf.stmts(st, body.List)
	if rem := st.undeferred(); len(rem) > 0 && lf.OnExit != nil {
		lf.OnExit(body.Rbrace, rem)
	}
}

func (lf *LockFlow) stmts(st *lockState, list []ast.Stmt) {
	for _, s := range list {
		lf.stmt(st, s)
	}
}

func (lf *LockFlow) stmt(st *lockState, s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		lf.stmts(st, s.List)
	case *ast.LabeledStmt:
		lf.stmt(st, s.Stmt)
	case *ast.ExprStmt:
		lf.expr(st, s.X)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			lf.expr(st, e)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						lf.expr(st, e)
					}
				}
			}
		}
	case *ast.SendStmt:
		lf.blocked(st, s.Pos(), "channel send")
	case *ast.IncDecStmt:
		// pure; nothing to do
	case *ast.DeferStmt:
		lf.deferStmt(st, s)
	case *ast.GoStmt:
		// The launched goroutine runs in its own lock context; launching
		// itself does not block.
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			lf.expr(st, e)
		}
		if rem := st.undeferred(); len(rem) > 0 && lf.OnExit != nil {
			lf.OnExit(s.Pos(), rem)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			lf.stmt(st, s.Init)
		}
		lf.expr(st, s.Cond)
		then := st.clone()
		lf.stmt(then, s.Body)
		other := st.clone()
		if s.Else != nil {
			lf.stmt(other, s.Else)
		}
		*st = *then
		st.merge(other)
	case *ast.SwitchStmt:
		if s.Init != nil {
			lf.stmt(st, s.Init)
		}
		if s.Tag != nil {
			lf.expr(st, s.Tag)
		}
		lf.caseBodies(st, s.Body)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			lf.stmt(st, s.Init)
		}
		lf.caseBodies(st, s.Body)
	case *ast.SelectStmt:
		lf.selectStmt(st, s)
	case *ast.ForStmt:
		if s.Init != nil {
			lf.stmt(st, s.Init)
		}
		if s.Cond != nil {
			lf.expr(st, s.Cond)
		}
		lf.loopBody(st, s.Pos(), s.Body, func(inner *lockState) {
			if s.Post != nil {
				lf.stmt(inner, s.Post)
			}
		})
	case *ast.RangeStmt:
		if t := lf.Pass.TypesInfo.TypeOf(s.X); t != nil {
			if _, isChan := t.Underlying().(*types.Chan); isChan {
				lf.blocked(st, s.Pos(), "range over channel")
			}
		}
		lf.loopBody(st, s.Pos(), s.Body, nil)
	}
}

func (lf *LockFlow) loopBody(st *lockState, pos token.Pos, body *ast.BlockStmt, post func(*lockState)) {
	inner := st.clone()
	lf.stmt(inner, body)
	if post != nil {
		post(inner)
	}
	if !sameKeys(st, inner) && lf.OnLoopImbalance != nil {
		lf.OnLoopImbalance(pos, st.held, inner.held)
	}
	st.merge(inner)
}

func sameKeys(a, b *lockState) bool {
	if len(a.held) != len(b.held) {
		return false
	}
	for _, h := range a.held {
		if b.find(h.Key) < 0 {
			return false
		}
	}
	return true
}

func (lf *LockFlow) caseBodies(st *lockState, body *ast.BlockStmt) {
	var merged *lockState
	sawDefault := false
	for _, c := range body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			sawDefault = true
		}
		branch := st.clone()
		lf.stmts(branch, cc.Body)
		if merged == nil {
			merged = branch
		} else {
			merged.merge(branch)
		}
	}
	// Without a default clause, falling past every case is a possible
	// outcome, so the incoming state joins the union. With one, exactly
	// one branch runs.
	if merged == nil {
		return
	}
	if !sawDefault {
		merged.merge(st)
	}
	*st = *merged
}

// selectStmt handles the one blocking construct with an exemption: a
// select with a default clause cannot block, and a select with a
// ctx.Done() receive case is bounded by caller cancellation — the
// pattern EnqueueSpan uses to send on the batch queue under RLock.
func (lf *LockFlow) selectStmt(st *lockState, s *ast.SelectStmt) {
	hasDefault, hasCtxDone := false, false
	for _, c := range s.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		if cc.Comm == nil {
			hasDefault = true
			continue
		}
		if lf.isCtxDoneRecv(cc.Comm) {
			hasCtxDone = true
		}
	}
	if !hasDefault && !hasCtxDone {
		lf.blocked(st, s.Pos(), "select with no default and no ctx.Done() case")
	}
	// The comm clauses themselves are the select's alternatives — covered
	// by the verdict above. Case bodies run after a branch commits, with
	// the lock still held, so they are walked normally. Exactly one
	// branch runs, so the outcome is the union of the branches alone.
	var merged *lockState
	for _, c := range s.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		branch := st.clone()
		lf.stmts(branch, cc.Body)
		if merged == nil {
			merged = branch
		} else {
			merged.merge(branch)
		}
	}
	if merged != nil {
		*st = *merged
	}
}

// isCtxDoneRecv reports whether a select comm statement receives from
// the Done() channel of a context.Context.
func (lf *LockFlow) isCtxDoneRecv(comm ast.Stmt) bool {
	var recv ast.Expr
	switch c := comm.(type) {
	case *ast.ExprStmt:
		recv = c.X
	case *ast.AssignStmt:
		if len(c.Rhs) == 1 {
			recv = c.Rhs[0]
		}
	}
	ue, ok := ast.Unparen(recv).(*ast.UnaryExpr)
	if !ok || ue.Op != token.ARROW {
		return false
	}
	call, ok := ast.Unparen(ue.X).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Done" {
		return false
	}
	t := lf.Pass.TypesInfo.TypeOf(sel.X)
	return t != nil && IsContextType(t)
}

func (lf *LockFlow) deferStmt(st *lockState, s *ast.DeferStmt) {
	// defer x.Unlock() — the canonical paired release.
	if key, op, ok := lf.Pass.MutexOp(s.Call); ok && (op == LockRelease || op == RLockRelease) {
		if i := st.find(key); i >= 0 {
			st.held[i].Deferred = true
		}
		return
	}
	// defer func() { ...; x.Unlock(); ... }() — scan the literal body for
	// releases and credit them too.
	if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if key, op, ok := lf.Pass.MutexOp(call); ok && (op == LockRelease || op == RLockRelease) {
				if i := st.find(key); i >= 0 {
					st.held[i].Deferred = true
				}
			}
			return true
		})
	}
}

// expr scans one expression for lock operations, blocking operations and
// nested receives. It does not descend into function literals.
func (lf *LockFlow) expr(st *lockState, e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				lf.blocked(st, n.Pos(), "channel receive")
			}
		case *ast.CallExpr:
			if key, op, ok := lf.Pass.MutexOp(n); ok {
				lf.applyLockOp(st, n.Pos(), key, op)
				return false
			}
			if what, isBlocking := lf.blockingCall(n); isBlocking {
				lf.blocked(st, n.Pos(), what)
			}
		}
		return true
	})
}

func (lf *LockFlow) applyLockOp(st *lockState, pos token.Pos, key string, op LockOp) {
	switch op {
	case LockAcquire, RLockAcquire:
		if i := st.find(key); i >= 0 {
			if lf.OnDoubleLock != nil {
				lf.OnDoubleLock(pos, st.held[i])
			}
			return
		}
		st.held = append(st.held, HeldLock{Key: key, Op: op, Pos: pos})
	case LockRelease, RLockRelease:
		if i := st.find(key); i >= 0 {
			st.held = append(st.held[:i], st.held[i+1:]...)
		}
	}
}

// blockingCall classifies calls that can park the goroutine: time.Sleep,
// anything in net or net/*, and Wait() methods (sync.WaitGroup,
// sync.Cond, exec.Cmd and friends all spell it the same way).
func (lf *LockFlow) blockingCall(call *ast.CallExpr) (string, bool) {
	if path, name, ok := lf.Pass.QualifiedCallee(call.Fun); ok {
		if path == "time" && name == "Sleep" {
			return "time.Sleep", true
		}
		if path == "net" || strings.HasPrefix(path, "net/") {
			return path + "." + name + " (network I/O)", true
		}
		return "", false
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Wait" && len(call.Args) == 0 {
		return ExprString(sel.X) + ".Wait()", true
	}
	return "", false
}

func (lf *LockFlow) blocked(st *lockState, pos token.Pos, what string) {
	if len(st.held) == 0 || lf.OnBlocked == nil {
		return
	}
	lf.OnBlocked(pos, what, append([]HeldLock(nil), st.held...))
}

// --- alloc-effect tracking ---

// AllocSite is one statically-detected heap allocation (or a construct
// that defeats static reasoning about allocation, like a closure).
type AllocSite struct {
	Pos  token.Pos
	What string
}

// AllocSites scans a function body for constructs that allocate on the
// hot path: make/new, map and slice literals, escaping composite
// literals, appends that may grow their backing array, closures, fmt
// calls, strings.Builder use, and implicit boxing into interface
// values. Arguments of panic(...) are exempt — a panicking hot path has
// already abandoned the zero-alloc contract, and the repository's
// kernels all use panic(fmt.Sprintf(...)) for shape violations.
//
// The classification is deliberately conservative in the other
// direction too: calls into other packages are not charged (their
// bodies are out of reach without export data), so a clean AllocSites
// answer is necessary, not sufficient — the AllocsPerRun gates remain
// the ground truth and the hotalloc cross-check ties the two together.
func AllocSites(pass *Pass, body ast.Node) []AllocSite {
	var sites []AllocSite
	add := func(pos token.Pos, what string) {
		sites = append(sites, AllocSite{Pos: pos, What: what})
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			add(n.Pos(), "closure: the func value and captured variables escape to the heap")
			return true // allocs inside the closure body run per invocation; keep scanning
		case *ast.Ident:
			// Variables only: the type name in `var b strings.Builder` is
			// itself an Ident of this type and must not double-report.
			obj := pass.TypesInfo.Defs[n]
			if obj == nil {
				obj = pass.TypesInfo.Uses[n]
			}
			if _, isVar := obj.(*types.Var); isVar && isStringsBuilder(obj.Type()) {
				add(n.Pos(), "strings.Builder allocates on Grow/WriteString")
			}
		case *ast.CompositeLit:
			t := pass.TypesInfo.TypeOf(n)
			if t == nil {
				return true
			}
			switch t.Underlying().(type) {
			case *types.Map:
				add(n.Pos(), "map literal allocates")
			case *types.Slice:
				add(n.Pos(), "slice literal allocates its backing array")
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, isLit := ast.Unparen(n.X).(*ast.CompositeLit); isLit {
					add(n.Pos(), "&composite literal escapes to the heap")
				}
			}
		case *ast.CallExpr:
			return allocCall(pass, n, add)
		}
		return true
	})
	return sites
}

// allocCall classifies one call expression, returning false to prune
// the walk below it (panic arguments are exempt wholesale).
func allocCall(pass *Pass, call *ast.CallExpr, add func(token.Pos, string)) bool {
	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "panic":
				// Cold by definition; don't charge its argument.
				return false
			case "make":
				add(call.Pos(), "make allocates")
			case "new":
				add(call.Pos(), "new allocates")
			case "append":
				// The blessed arena pattern re-slices an existing buffer:
				// append(buf[:0], ...). Anything else may grow.
				if len(call.Args) > 0 {
					if _, resliced := ast.Unparen(call.Args[0]).(*ast.SliceExpr); !resliced {
						add(call.Pos(), "append may grow its backing array; use the append(buf[:0], ...) arena pattern")
					}
				}
			}
			return true
		}
	}
	// fmt.* — every formatting call allocates.
	if path, name, ok := pass.QualifiedCallee(call.Fun); ok && path == "fmt" {
		add(call.Pos(), "fmt."+name+" allocates")
		return true
	}
	// Explicit conversion to an interface type.
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		if types.IsInterface(tv.Type.Underlying()) && len(call.Args) == 1 {
			if at := pass.TypesInfo.TypeOf(call.Args[0]); at != nil && !types.IsInterface(at.Underlying()) {
				add(call.Pos(), "conversion boxes a concrete value into an interface")
			}
		}
		return true
	}
	// Implicit boxing at call sites: a concrete argument passed for an
	// interface-typed parameter.
	sigT := pass.TypesInfo.TypeOf(call.Fun)
	if sigT == nil {
		return true
	}
	sig, ok := sigT.Underlying().(*types.Signature)
	if !ok {
		return true
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // forwarding an existing slice; no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil {
			continue
		}
		if _, isTypeParam := pt.(*types.TypeParam); isTypeParam {
			continue
		}
		if !types.IsInterface(pt.Underlying()) {
			continue
		}
		at := pass.TypesInfo.TypeOf(arg)
		if at == nil || types.IsInterface(at.Underlying()) {
			continue
		}
		if b, isBasic := at.Underlying().(*types.Basic); isBasic && b.Kind() == types.UntypedNil {
			continue
		}
		add(arg.Pos(), "argument boxes a concrete value into an interface parameter")
	}
	return true
}

func isStringsBuilder(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "strings" && obj.Name() == "Builder"
}
