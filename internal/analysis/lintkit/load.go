package lintkit

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os/exec"
	"path/filepath"
	"sort"
)

// Package is one loaded, parsed and type-checked package ready for
// analysis.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	Info       *types.Info
	// TypeErrors collects type-checker complaints. Analysis proceeds
	// best-effort on a partially checked package; the runner surfaces
	// these so a broken tree fails lint loudly instead of silently
	// skipping checks.
	TypeErrors []error
}

// listedPackage is the subset of `go list -json` output we consume.
type listedPackage struct {
	Dir        string
	ImportPath string
	Name       string
	GoFiles    []string
}

// Load resolves the given `go list` patterns (e.g. "./...") and returns
// each matched package parsed and type-checked from source.
//
// Only non-test Go files are analysed: the lint gate guards production
// code paths, while _test.go files are exercised by the test suites
// themselves (and routinely use time, rand and float equality in ways
// that are fine inside a test).
//
// Dependencies — including the standard library — are type-checked from
// source via go/importer, so Load needs no compiled export data and no
// network. Cgo is disabled for the importer: the repository is pure Go
// and source-importing net's cgo variant would require a C toolchain.
func Load(patterns ...string) ([]*Package, error) {
	listed, err := goList(patterns)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	build.Default.CgoEnabled = false
	imp := importer.ForCompiler(fset, "source", nil)

	var pkgs []*Package
	seen := make(map[string]bool, len(listed))
	for _, lp := range listed {
		if len(lp.GoFiles) == 0 {
			continue
		}
		// Overlapping patterns (e.g. "./internal/serve ./...") each expand
		// independently, so go list can report one package twice. Checking
		// it twice would double every diagnostic — including the
		// malformed-directive findings — under the multichecker.
		if seen[lp.ImportPath] {
			continue
		}
		seen[lp.ImportPath] = true
		files := make([]string, len(lp.GoFiles))
		for i, f := range lp.GoFiles {
			files[i] = filepath.Join(lp.Dir, f)
		}
		p, err := CheckFiles(fset, imp, lp.ImportPath, files)
		if err != nil {
			return nil, fmt.Errorf("lintkit: %s: %w", lp.ImportPath, err)
		}
		p.Dir = lp.Dir
		pkgs = append(pkgs, p)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].ImportPath < pkgs[j].ImportPath })
	return pkgs, nil
}

// CheckFiles parses and type-checks one package from an explicit file
// list under the given import path. The fixture runner uses it directly;
// Load uses it per listed package.
func CheckFiles(fset *token.FileSet, imp types.Importer, importPath string, filenames []string) (*Package, error) {
	var files []*ast.File
	for _, fn := range filenames {
		f, err := parser.ParseFile(fset, fn, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	pkg, _ := conf.Check(importPath, fset, files, info) // best-effort; errors collected above
	return &Package{
		ImportPath: importPath,
		Fset:       fset,
		Files:      files,
		Pkg:        pkg,
		Info:       info,
		TypeErrors: typeErrs,
	}, nil
}

// NewImporter returns a fresh source importer sharing fset. Exposed for
// the fixture runner.
func NewImporter(fset *token.FileSet) types.Importer {
	build.Default.CgoEnabled = false
	return importer.ForCompiler(fset, "source", nil)
}

func goList(patterns []string) ([]listedPackage, error) {
	args := append([]string{"list", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lintkit: go list %v: %v\n%s", patterns, err, errb.String())
	}
	dec := json.NewDecoder(&out)
	var pkgs []listedPackage
	for dec.More() {
		var lp listedPackage
		if err := dec.Decode(&lp); err != nil {
			return nil, fmt.Errorf("lintkit: decoding go list output: %v", err)
		}
		pkgs = append(pkgs, lp)
	}
	return pkgs, nil
}
