package lintkit

import (
	"go/ast"
	"go/token"
	"strings"
)

// Directive is one parsed //lint:allow comment.
type Directive struct {
	Pos token.Pos
	// Analyzer is the analyzer name being suppressed.
	Analyzer string
	// Reason is the mandatory human justification.
	Reason string
	// Malformed explains what is wrong with the directive ("" when ok).
	Malformed string
}

const directivePrefix = "//lint:allow"

// ParseDirectives extracts every //lint:allow directive from a file's
// comments. A directive must name an analyzer and give a reason:
//
//	//lint:allow guardgo worker panics are isolated per batch in runBatch
//
// It suppresses matching diagnostics reported on its own line (trailing
// comment) or on the line directly below (standalone comment above the
// offending statement).
func ParseDirectives(fset *token.FileSet, f *ast.File) []Directive {
	var out []Directive
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, directivePrefix) {
				continue
			}
			rest := strings.TrimPrefix(c.Text, directivePrefix)
			d := Directive{Pos: c.Pos()}
			if rest != "" && !strings.HasPrefix(rest, " ") && !strings.HasPrefix(rest, "\t") {
				// e.g. //lint:allowed — some other marker, not ours.
				continue
			}
			fields := strings.Fields(rest)
			switch {
			case len(fields) == 0:
				d.Malformed = "missing analyzer name and reason"
			case len(fields) == 1:
				d.Analyzer = fields[0]
				d.Malformed = "missing reason: write //lint:allow " + fields[0] + " <why this is safe>"
			default:
				d.Analyzer = fields[0]
				d.Reason = strings.Join(fields[1:], " ")
			}
			out = append(out, d)
		}
	}
	return out
}

// suppressor answers "is this diagnostic covered by an allow directive?"
// for one package.
type suppressor struct {
	fset *token.FileSet
	// byLine maps file -> line -> analyzer names allowed on that line.
	byLine map[string]map[int]map[string]bool
}

func newSuppressor(fset *token.FileSet, files []*ast.File) (*suppressor, []Directive) {
	s := &suppressor{fset: fset, byLine: make(map[string]map[int]map[string]bool)}
	var all []Directive
	for _, f := range files {
		for _, d := range ParseDirectives(fset, f) {
			all = append(all, d)
			if d.Malformed != "" {
				continue
			}
			pos := fset.Position(d.Pos)
			lines := s.byLine[pos.Filename]
			if lines == nil {
				lines = make(map[int]map[string]bool)
				s.byLine[pos.Filename] = lines
			}
			// A directive covers its own line (trailing form) and the
			// next line (standalone form above the statement).
			for _, ln := range []int{pos.Line, pos.Line + 1} {
				if lines[ln] == nil {
					lines[ln] = make(map[string]bool)
				}
				lines[ln][d.Analyzer] = true
			}
		}
	}
	return s, all
}

func (s *suppressor) allows(analyzer string, pos token.Pos) bool {
	p := s.fset.Position(pos)
	return s.byLine[p.Filename][p.Line][analyzer]
}
