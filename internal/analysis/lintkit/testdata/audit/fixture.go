// Audit fixture: one live //lint:allow directive (it suppresses a real
// floateq finding on the next line) and one stale directive (its two
// covered lines produce no raw diagnostic). leapme-lint -audit-allows
// over this package must flag exactly the stale one.
package fixture

func live(a, b float64) bool {
	//lint:allow floateq fixture's live directive: the comparison below is a real finding
	return a == b
}

//lint:allow floateq deliberately stale: nothing on this line or the next produces a floateq diagnostic
func stale(n int) int {
	return n + 1
}
