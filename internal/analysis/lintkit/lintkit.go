// Package lintkit is the minimal analysis framework behind leapme-lint.
//
// It deliberately mirrors the shape of golang.org/x/tools/go/analysis —
// an Analyzer owns a Run function over a Pass; a Pass exposes the
// package's syntax, type information and a Report sink — but is built
// entirely on the standard library (go/ast, go/types and the "source"
// importer) so the lint gate works in hermetic build environments with
// no module downloads. Porting an analyzer between the two frameworks
// is a mechanical rename.
//
// See the parent package leapme/internal/analysis for the catalogue of
// shipped analyzers and the //lint:allow suppression syntax.
package lintkit

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer is one named static check.
type Analyzer struct {
	// Name identifies the analyzer in findings and in //lint:allow
	// directives. Lowercase, no spaces.
	Name string
	// Doc is a one-paragraph description: the invariant enforced and why
	// it matters.
	Doc string
	// Run inspects one package and reports diagnostics through the pass.
	// The returned value is ignored by the runner (reserved for future
	// fact passing); return nil.
	Run func(*Pass) (any, error)
}

func (a *Analyzer) String() string { return a.Name }

// Diagnostic is one reported problem at a position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags []Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Inspect walks every file of the package in source order, calling fn
// for each node; fn returning false prunes the subtree (ast.Inspect
// semantics).
func (p *Pass) Inspect(fn func(ast.Node) bool) {
	for _, f := range p.Files {
		ast.Inspect(f, fn)
	}
}

// InspectStack walks every file keeping the ancestor stack: stack[0] is
// the *ast.File and stack[len(stack)-1] is n itself. fn returning false
// prunes the subtree.
func (p *Pass) InspectStack(fn func(n ast.Node, stack []ast.Node) bool) {
	for _, f := range p.Files {
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			return fn(n, stack)
		})
	}
}

// ImportedPkg returns the *types.PkgName object an identifier resolves
// to, or nil when the identifier is not a package name. Analyzers use it
// to recognise qualified references like rand.Int or time.Now without
// being fooled by import renames or local shadowing.
func (p *Pass) ImportedPkg(id *ast.Ident) *types.PkgName {
	if id == nil {
		return nil
	}
	if pn, ok := p.TypesInfo.Uses[id].(*types.PkgName); ok {
		return pn
	}
	return nil
}

// QualifiedCallee resolves a selector expression X.Sel where X names an
// imported package, returning the package path and selected name.
// ok is false for method calls, field accesses and locals.
func (p *Pass) QualifiedCallee(e ast.Expr) (path, name string, ok bool) {
	sel, isSel := ast.Unparen(e).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	id, isID := sel.X.(*ast.Ident)
	if !isID {
		return "", "", false
	}
	pn := p.ImportedPkg(id)
	if pn == nil {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}

// IsContextType reports whether t is context.Context.
func IsContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// IsFloat reports whether t's core type is a floating-point scalar.
func IsFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
