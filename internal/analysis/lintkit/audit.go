package lintkit

// The suppression audit answers the question RunAnalyzers cannot: which
// //lint:allow directives still earn their keep? A directive goes stale
// when the code it excused is refactored away — the comment lingers,
// documenting a violation that no longer exists and silently masking
// any future violation that lands on the same line. AuditDirectives
// re-runs every analyzer with suppression disabled and reports each
// well-formed directive whose (analyzer, file, covered-lines) window
// contains no raw diagnostic.

import (
	"fmt"
	"go/token"
	"sort"
)

// StaleDirective is one //lint:allow that suppresses nothing.
type StaleDirective struct {
	Position token.Position
	Analyzer string
	Reason   string
}

func (s StaleDirective) String() string {
	return fmt.Sprintf("%s: stale //lint:allow %s — no %s finding on this or the next line (reason was: %s)",
		s.Position, s.Analyzer, s.Analyzer, s.Reason)
}

// AuditDirectives runs the analyzers over pkgs ignoring suppression and
// returns the directives that no raw diagnostic lands on. extra carries
// findings produced outside the analyzer Run cycle (the hotalloc gate
// cross-check) so a directive excusing one of those is not falsely
// flagged.
//
// Malformed directives and ones naming unknown analyzers are skipped
// here — RunAnalyzers already reports those as findings in their own
// right.
func AuditDirectives(pkgs []*Package, analyzers []*Analyzer, extra []Finding) ([]StaleDirective, error) {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}

	// live maps file -> line -> analyzer names with a raw diagnostic there.
	live := make(map[string]map[int]map[string]bool)
	mark := func(analyzer, file string, line int) {
		lines := live[file]
		if lines == nil {
			lines = make(map[int]map[string]bool)
			live[file] = lines
		}
		if lines[line] == nil {
			lines[line] = make(map[string]bool)
		}
		lines[line][analyzer] = true
	}

	var stale []StaleDirective
	for _, p := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      p.Fset,
				Files:     p.Files,
				Pkg:       p.Pkg,
				TypesInfo: p.Info,
			}
			if _, err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("lintkit: audit: analyzer %s on %s: %w", a.Name, p.ImportPath, err)
			}
			for _, d := range pass.diags {
				pos := p.Fset.Position(d.Pos)
				mark(a.Name, pos.Filename, pos.Line)
			}
		}
	}
	for _, f := range extra {
		mark(f.Analyzer, f.Position.Filename, f.Position.Line)
	}

	seen := make(map[string]bool)
	for _, p := range pkgs {
		for _, f := range p.Files {
			for _, d := range ParseDirectives(p.Fset, f) {
				if d.Malformed != "" || !known[d.Analyzer] {
					continue
				}
				pos := p.Fset.Position(d.Pos)
				dk := fmt.Sprintf("%s:%d:%d:%s", pos.Filename, pos.Line, pos.Column, d.Analyzer)
				if seen[dk] {
					continue // duplicate package walk
				}
				seen[dk] = true
				// Mirror the suppressor's coverage window exactly: the
				// directive's own line and the line below.
				if live[pos.Filename][pos.Line][d.Analyzer] || live[pos.Filename][pos.Line+1][d.Analyzer] {
					continue
				}
				stale = append(stale, StaleDirective{Position: pos, Analyzer: d.Analyzer, Reason: d.Reason})
			}
		}
	}
	sort.Slice(stale, func(i, j int) bool {
		a, b := stale[i], stale[j]
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		return a.Position.Line < b.Position.Line
	})
	return stale, nil
}
