// Package lintest runs lintkit analyzers over fixture packages, in the
// style of golang.org/x/tools/go/analysis/analysistest.
//
// A fixture is a directory of .go files forming one package. Lines that
// must trigger a diagnostic carry a trailing want comment holding a
// regular expression the diagnostic message must match:
//
//	rand.Float64() // want `global math/rand`
//
// Several expectations on one line are written as several quoted
// regexps: // want `first` `second`. Lines without a want comment must
// stay silent; a fixture with no want comments asserts the analyzer is
// completely quiet on it. //lint:allow directives are honoured, so a
// fixture can also pin the suppression behaviour.
package lintest

import (
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"leapme/internal/analysis/lintkit"
)

var wantRE = regexp.MustCompile("//\\s*want\\s+(.*)$")
var wantArgRE = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

// Run type-checks the fixture package in dir under the given import
// path, applies the analyzer, and compares its findings against the
// fixture's want comments. importPath matters for package-scoped
// analyzers (e.g. determinism only fires inside the deterministic
// packages), so fixtures choose the path they pretend to live at.
func Run(t *testing.T, a *lintkit.Analyzer, dir, importPath string) {
	t.Helper()
	files, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil || len(files) == 0 {
		t.Fatalf("lintest: no fixture files in %s (%v)", dir, err)
	}
	sort.Strings(files)
	fset := token.NewFileSet()
	pkg, err := lintkit.CheckFiles(fset, lintkit.NewImporter(fset), importPath, files)
	if err != nil {
		t.Fatalf("lintest: parsing %s: %v", dir, err)
	}
	for _, te := range pkg.TypeErrors {
		t.Errorf("lintest: fixture %s does not type-check: %v", dir, te)
	}
	if t.Failed() {
		t.Fatalf("lintest: fix the fixture before checking expectations")
	}
	findings, err := lintkit.RunAnalyzers([]*lintkit.Package{pkg}, []*lintkit.Analyzer{a})
	if err != nil {
		t.Fatalf("lintest: running %s: %v", a.Name, err)
	}

	wants := collectWants(t, files)
	for _, f := range findings {
		key := lineKey{file: f.Position.Filename, line: f.Position.Line}
		if !wants.consume(key, f.Message) {
			t.Errorf("%s:%d: unexpected finding: %s", f.Position.Filename, f.Position.Line, f.Message)
		}
	}
	wants.reportUnmatched(t)
}

type lineKey struct {
	file string
	line int
}

type wantSet struct {
	// remaining maps a line to the regexps not yet matched by a finding.
	remaining map[lineKey][]*regexp.Regexp
}

func (w *wantSet) consume(key lineKey, msg string) bool {
	res := w.remaining[key]
	for i, re := range res {
		if re.MatchString(msg) {
			w.remaining[key] = append(res[:i:i], res[i+1:]...)
			return true
		}
	}
	return false
}

func (w *wantSet) reportUnmatched(t *testing.T) {
	t.Helper()
	var keys []lineKey
	for k, res := range w.remaining {
		if len(res) > 0 {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].file != keys[j].file {
			return keys[i].file < keys[j].file
		}
		return keys[i].line < keys[j].line
	})
	for _, k := range keys {
		for _, re := range w.remaining[k] {
			t.Errorf("%s:%d: expected a finding matching %q, got none", k.file, k.line, re)
		}
	}
}

// collectWants scans the fixture files line by line for want comments.
func collectWants(t *testing.T, files []string) *wantSet {
	t.Helper()
	ws := &wantSet{remaining: make(map[lineKey][]*regexp.Regexp)}
	for _, fn := range files {
		lines, err := readLines(fn)
		if err != nil {
			t.Fatalf("lintest: %v", err)
		}
		for i, line := range lines {
			m := wantRE.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			args := wantArgRE.FindAllStringSubmatch(m[1], -1)
			if len(args) == 0 {
				t.Fatalf("%s:%d: malformed want comment: %s", fn, i+1, line)
			}
			key := lineKey{file: fn, line: i + 1}
			for _, a := range args {
				pat := a[1]
				if !strings.HasPrefix(a[0], "`") {
					unq, err := strconv.Unquote(a[0])
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %s: %v", fn, i+1, a[0], err)
					}
					pat = unq
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", fn, i+1, pat, err)
				}
				ws.remaining[key] = append(ws.remaining[key], re)
			}
		}
	}
	return ws
}

func readLines(fn string) ([]string, error) {
	data, err := os.ReadFile(fn)
	if err != nil {
		return nil, fmt.Errorf("reading %s: %w", fn, err)
	}
	return strings.Split(string(data), "\n"), nil
}
