package lintkit

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func parseSrc(t *testing.T, src string) (*token.FileSet, *ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fixture.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return fset, f
}

func TestParseDirectives(t *testing.T) {
	src := `package p

//lint:allow guardgo panics are isolated in the batch runner
func a() {}

//lint:allow floateq
func b() {}

//lint:allow
func c() {}

//lint:allowed is some other tool's marker
func d() {}

func e() {} //lint:allow determinism trailing form with a reason
`
	fset, f := parseSrc(t, src)
	ds := ParseDirectives(fset, f)
	if len(ds) != 4 {
		t.Fatalf("got %d directives, want 4: %+v", len(ds), ds)
	}
	if ds[0].Analyzer != "guardgo" || ds[0].Reason == "" || ds[0].Malformed != "" {
		t.Errorf("directive 0 = %+v, want well-formed guardgo", ds[0])
	}
	if ds[1].Analyzer != "floateq" || !strings.Contains(ds[1].Malformed, "missing reason") {
		t.Errorf("directive 1 = %+v, want missing-reason malformed", ds[1])
	}
	if !strings.Contains(ds[2].Malformed, "missing analyzer name") {
		t.Errorf("directive 2 = %+v, want missing-name malformed", ds[2])
	}
	if ds[3].Analyzer != "determinism" || ds[3].Malformed != "" {
		t.Errorf("directive 3 = %+v, want trailing determinism", ds[3])
	}
}

// toyAnalyzer reports once on every function declaration name; enough to
// exercise suppression, directive validation and finding ordering
// end-to-end without touching real analyzers.
var toyAnalyzer = &Analyzer{
	Name: "toy",
	Doc:  "reports every function declaration",
	Run: func(pass *Pass) (any, error) {
		for _, f := range pass.Files {
			for _, d := range f.Decls {
				if fd, ok := d.(*ast.FuncDecl); ok {
					pass.Reportf(fd.Name.Pos(), "function %s", fd.Name.Name)
				}
			}
		}
		return nil, nil
	},
}

func TestRunAnalyzersSuppressionAndDirectiveValidation(t *testing.T) {
	src := `package p

func plain() {}

func trailing() {} //lint:allow toy covered by the trailing form

//lint:allow toy covered by the standalone form above the decl
func above() {}

//lint:allow nosuch this directive names an unknown analyzer
func unknown() {}

//lint:allow toy
func noreason() {}
`
	dir := t.TempDir()
	fn := filepath.Join(dir, "fixture.go")
	if err := os.WriteFile(fn, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	pkg, err := CheckFiles(fset, NewImporter(fset), "example/toy", []string{fn})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkg.TypeErrors) != 0 {
		t.Fatalf("fixture has type errors: %v", pkg.TypeErrors)
	}
	findings, err := RunAnalyzers([]*Package{pkg}, []*Analyzer{toyAnalyzer})
	if err != nil {
		t.Fatal(err)
	}

	var got []string
	for _, f := range findings {
		got = append(got, f.Analyzer+":"+f.Message)
	}
	want := map[string]bool{
		// plain is reported; trailing and above are suppressed.
		"toy:function plain": true,
		// the unknown-name directive does not suppress toy, and is itself
		// reported by the directive pseudo-check.
		"toy:function unknown": true,
		DirectiveCheckName + `://lint:allow names unknown analyzer "nosuch"`: true,
		// a reason-less directive is malformed AND does not suppress.
		"toy:function noreason": true,
	}
	for _, g := range got {
		if strings.Contains(g, "malformed //lint:allow") {
			delete(want, "malformed")
			continue
		}
		if !want[g] {
			t.Errorf("unexpected finding: %s", g)
		}
		delete(want, g)
	}
	for w := range want {
		if w != "malformed" {
			t.Errorf("missing finding: %s", w)
		}
	}
	// Findings must arrive sorted by position.
	for i := 1; i < len(findings); i++ {
		a, b := findings[i-1].Position, findings[i].Position
		if a.Filename == b.Filename && a.Line > b.Line {
			t.Errorf("findings out of order: %v before %v", a, b)
		}
	}
}

func TestRunAnalyzersSurfacesTypeErrors(t *testing.T) {
	src := "package p\n\nfunc broken() { return undefinedIdent }\n"
	dir := t.TempDir()
	fn := filepath.Join(dir, "fixture.go")
	if err := os.WriteFile(fn, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	pkg, err := CheckFiles(fset, NewImporter(fset), "example/broken", []string{fn})
	if err != nil {
		t.Fatal(err)
	}
	findings, err := RunAnalyzers([]*Package{pkg}, []*Analyzer{toyAnalyzer})
	if err != nil {
		t.Fatal(err)
	}
	sawTypecheck := false
	for _, f := range findings {
		if f.Analyzer == "typecheck" {
			sawTypecheck = true
		}
	}
	if !sawTypecheck {
		t.Errorf("type error not surfaced as a typecheck finding: %v", findings)
	}
}

func TestLoadRealPackage(t *testing.T) {
	pkgs, err := Load("leapme/internal/mathx")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	p := pkgs[0]
	if p.ImportPath != "leapme/internal/mathx" || p.Pkg == nil || len(p.Files) == 0 {
		t.Errorf("loaded package incomplete: %+v", p)
	}
	if len(p.TypeErrors) != 0 {
		t.Errorf("mathx should type-check cleanly, got %v", p.TypeErrors)
	}
}
