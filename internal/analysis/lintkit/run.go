package lintkit

import (
	"fmt"
	"go/token"
	"sort"
)

// Finding is one surviving (non-suppressed) diagnostic, positioned and
// attributed to its analyzer.
type Finding struct {
	Analyzer string
	Position token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s (%s)", f.Position, f.Message, f.Analyzer)
}

// DirectiveCheckName is the pseudo-analyzer name under which malformed
// or unknown //lint:allow directives are reported. It cannot itself be
// suppressed.
const DirectiveCheckName = "lintdirective"

// RunAnalyzers applies every analyzer to every package, filters
// diagnostics through //lint:allow directives, validates the directives
// themselves, and returns the surviving findings sorted by position.
//
// extraKnown names analyzers that exist in the catalogue but are not
// part of this run (a -only selection): directives naming them are
// legitimate suppressions for the full run, not "unknown analyzer"
// mistakes, so they pass directive validation here.
//
// Type-check errors in an analysed package are returned as findings too
// (under pseudo-analyzer "typecheck"): a tree that does not compile must
// fail the lint gate, not sneak past it.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer, extraKnown ...string) ([]Finding, error) {
	known := make(map[string]bool, len(analyzers)+len(extraKnown))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	for _, name := range extraKnown {
		known[name] = true
	}
	var findings []Finding
	for _, p := range pkgs {
		sup, directives := newSuppressor(p.Fset, p.Files)
		for _, d := range directives {
			switch {
			case d.Malformed != "":
				findings = append(findings, Finding{
					Analyzer: DirectiveCheckName,
					Position: p.Fset.Position(d.Pos),
					Message:  "malformed //lint:allow: " + d.Malformed,
				})
			case !known[d.Analyzer]:
				findings = append(findings, Finding{
					Analyzer: DirectiveCheckName,
					Position: p.Fset.Position(d.Pos),
					Message:  fmt.Sprintf("//lint:allow names unknown analyzer %q", d.Analyzer),
				})
			}
		}
		for _, te := range p.TypeErrors {
			findings = append(findings, Finding{
				Analyzer: "typecheck",
				Message:  te.Error(),
			})
		}
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      p.Fset,
				Files:     p.Files,
				Pkg:       p.Pkg,
				TypesInfo: p.Info,
			}
			if _, err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("lintkit: analyzer %s on %s: %w", a.Name, p.ImportPath, err)
			}
			for _, d := range pass.diags {
				if sup.allows(a.Name, d.Pos) {
					continue
				}
				findings = append(findings, Finding{
					Analyzer: a.Name,
					Position: p.Fset.Position(d.Pos),
					Message:  d.Message,
				})
			}
		}
	}
	findings = DedupeFindings(findings)
	SortFindings(findings)
	return findings, nil
}

// SortFindings orders findings by file, line, column, then analyzer —
// the stable presentation order the multichecker prints.
func SortFindings(findings []Finding) {
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		if a.Position.Line != b.Position.Line {
			return a.Position.Line < b.Position.Line
		}
		if a.Position.Column != b.Position.Column {
			return a.Position.Column < b.Position.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// DedupeFindings drops findings identical in (analyzer, position,
// message), preserving first-seen order. Duplicate packages — whether
// from overlapping go list patterns or callers passing the same
// *Package twice — would otherwise repeat every report, most visibly
// the malformed-directive finding which is emitted per package walk.
func DedupeFindings(findings []Finding) []Finding {
	type key struct {
		analyzer, file, message string
		line, col               int
	}
	seen := make(map[key]bool, len(findings))
	out := findings[:0]
	for _, f := range findings {
		k := key{f.Analyzer, f.Position.Filename, f.Message, f.Position.Line, f.Position.Column}
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, f)
	}
	return out
}

// Allows reports whether a //lint:allow directive in p covers a
// diagnostic of the named analyzer at pos. Checks that synthesise
// findings outside an analyzer Run (like hotalloc's gate cross-check)
// use it to honor the same suppression contract as everything else.
func (p *Package) Allows(analyzer string, pos token.Pos) bool {
	sup, _ := newSuppressor(p.Fset, p.Files)
	return sup.allows(analyzer, pos)
}
