package lintkit

import (
	"fmt"
	"go/token"
	"sort"
)

// Finding is one surviving (non-suppressed) diagnostic, positioned and
// attributed to its analyzer.
type Finding struct {
	Analyzer string
	Position token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s (%s)", f.Position, f.Message, f.Analyzer)
}

// DirectiveCheckName is the pseudo-analyzer name under which malformed
// or unknown //lint:allow directives are reported. It cannot itself be
// suppressed.
const DirectiveCheckName = "lintdirective"

// RunAnalyzers applies every analyzer to every package, filters
// diagnostics through //lint:allow directives, validates the directives
// themselves, and returns the surviving findings sorted by position.
//
// Type-check errors in an analysed package are returned as findings too
// (under pseudo-analyzer "typecheck"): a tree that does not compile must
// fail the lint gate, not sneak past it.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	var findings []Finding
	for _, p := range pkgs {
		sup, directives := newSuppressor(p.Fset, p.Files)
		for _, d := range directives {
			switch {
			case d.Malformed != "":
				findings = append(findings, Finding{
					Analyzer: DirectiveCheckName,
					Position: p.Fset.Position(d.Pos),
					Message:  "malformed //lint:allow: " + d.Malformed,
				})
			case !known[d.Analyzer]:
				findings = append(findings, Finding{
					Analyzer: DirectiveCheckName,
					Position: p.Fset.Position(d.Pos),
					Message:  fmt.Sprintf("//lint:allow names unknown analyzer %q", d.Analyzer),
				})
			}
		}
		for _, te := range p.TypeErrors {
			findings = append(findings, Finding{
				Analyzer: "typecheck",
				Message:  te.Error(),
			})
		}
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      p.Fset,
				Files:     p.Files,
				Pkg:       p.Pkg,
				TypesInfo: p.Info,
			}
			if _, err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("lintkit: analyzer %s on %s: %w", a.Name, p.ImportPath, err)
			}
			for _, d := range pass.diags {
				if sup.allows(a.Name, d.Pos) {
					continue
				}
				findings = append(findings, Finding{
					Analyzer: a.Name,
					Position: p.Fset.Position(d.Pos),
					Message:  d.Message,
				})
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		if a.Position.Line != b.Position.Line {
			return a.Position.Line < b.Position.Line
		}
		if a.Position.Column != b.Position.Column {
			return a.Position.Column < b.Position.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}
