package featdim_test

import (
	"testing"

	"leapme/internal/analysis/featdim"
	"leapme/internal/analysis/lintkit/lintest"
)

func TestMagicLiterals(t *testing.T) {
	lintest.Run(t, featdim.Analyzer, "testdata/pos", "leapme/internal/serve")
}

func TestSelfPathExempt(t *testing.T) {
	lintest.Run(t, featdim.Analyzer, "testdata/self", "leapme/internal/analysis/featdim/testdata")
}

func TestLayoutMismatchAndMissing(t *testing.T) {
	lintest.Run(t, featdim.Analyzer, "testdata/layoutpos", featdim.FeaturesPath)
}

func TestLayoutClean(t *testing.T) {
	lintest.Run(t, featdim.Analyzer, "testdata/layoutneg", featdim.FeaturesPath)
}
