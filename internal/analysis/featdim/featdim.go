// Package featdim pins the Table I feature layout so train and serve
// cannot silently disagree about vector shapes.
//
// The layout contract (internal/features/doc.go) is mirrored here as
// machine-readable numbers: 29 meta features per instance (18 character
// + 10 token + 1 numeric), 8 pair name distances, and the paper's
// D = 300 GloVe dimension giving the well-known derived sizes
// 329 = 29+300 (instance), 629 = 29+2·300 (property) and
// 637 = 29+2·300+8 (pair). Two checks follow:
//
//  1. Inside leapme/internal/features the declared constants (MetaDim,
//     NumPairDistances) must equal the mirror. Changing the layout then
//     requires touching doc.go, the constants AND this analyzer in one
//     reviewed commit — a conscious migration, never drift.
//
//  2. Everywhere else the derived sizes may not appear as naked integer
//     literals in sizing positions (make() arguments, array lengths,
//     len() comparisons, *Dim struct fields or consts): a hardcoded 329
//     keeps compiling when the layout moves and desyncs whatever wrote
//     it. Use features.MetaDim and the Extractor/Pairer dimension
//     methods, which a model file's descriptor is validated against at
//     load time.
package featdim

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"

	"leapme/internal/analysis/lintkit"
)

// Documented layout, mirrored from internal/features/doc.go (Table I of
// the paper).
const (
	docMetaFeatures   = 18 + 10 + 1 // char-class, token-class, numeric rows
	docPairDistances  = 8           // property-name string distances
	docPaperEmbedding = 300         // GloVe dimension used throughout the paper
)

// FeaturesPath is the package whose constants carry the layout. Var so
// fixture tests can retarget it.
var FeaturesPath = "leapme/internal/features"

// selfPathPrefix exempts the analysis tree itself: its layout mirror is
// the reference the rest of the repo is checked against.
const selfPathPrefix = "leapme/internal/analysis"

// magicSizes are the derived dimensions that must never be hardcoded.
var magicSizes = map[int64]string{
	docMetaFeatures:                                          "features.MetaDim",
	docMetaFeatures + docPaperEmbedding:                      "Extractor.InstanceDim()",
	docMetaFeatures + 2*docPaperEmbedding:                    "Extractor.PropertyDim()",
	docMetaFeatures + 2*docPaperEmbedding + docPairDistances: "Pairer.Dim()",
}

// layoutConsts are the constants the features package must declare,
// with their documented values.
var layoutConsts = map[string]int64{
	"MetaDim":          docMetaFeatures,
	"NumPairDistances": docPairDistances,
}

// Analyzer is the featdim check.
var Analyzer = &lintkit.Analyzer{
	Name: "featdim",
	Doc: "feature-vector sizes must come from the named layout constants/methods; " +
		"verifies internal/features constants against the documented Table I layout " +
		"and flags hardcoded derived dimensions (29/329/629/637) in sizing positions",
	Run: run,
}

func run(pass *lintkit.Pass) (any, error) {
	if pass.Pkg == nil {
		return nil, nil
	}
	path := pass.Pkg.Path()
	if strings.HasPrefix(path, selfPathPrefix) {
		return nil, nil
	}
	if path == FeaturesPath {
		checkLayoutConstants(pass)
	}
	checkMagicLiterals(pass)
	return nil, nil
}

// checkLayoutConstants verifies the features package still declares the
// documented layout.
func checkLayoutConstants(pass *lintkit.Pass) {
	found := make(map[string]bool)
	for id, obj := range pass.TypesInfo.Defs {
		c, ok := obj.(*types.Const)
		if !ok || c.Parent() != pass.Pkg.Scope() {
			continue
		}
		want, tracked := layoutConsts[id.Name]
		if !tracked {
			continue
		}
		found[id.Name] = true
		got, exact := constInt(c)
		if !exact || got != want {
			pass.Reportf(id.Pos(), "%s = %s disagrees with the documented Table I layout (%d); "+
				"update internal/features/doc.go and internal/analysis/featdim together if the layout really changed",
				id.Name, c.Val().String(), want)
		}
	}
	for name, want := range layoutConsts {
		if !found[name] {
			pass.Reportf(pass.Files[0].Pos(), "layout constant %s (= %d) is missing from %s; "+
				"the documented Table I layout requires it", name, want, FeaturesPath)
		}
	}
}

func constInt(c *types.Const) (int64, bool) {
	v := c.Val()
	if v == nil {
		return 0, false
	}
	n, err := strconv.ParseInt(v.String(), 10, 64)
	return n, err == nil
}

// checkMagicLiterals flags derived dimensions written as naked literals
// in sizing positions.
func checkMagicLiterals(pass *lintkit.Pass) {
	pass.InspectStack(func(n ast.Node, stack []ast.Node) bool {
		lit, ok := n.(*ast.BasicLit)
		if !ok || lit.Kind != token.INT {
			return true
		}
		v, err := strconv.ParseInt(lit.Value, 0, 64)
		if err != nil {
			return true
		}
		name, magic := magicSizes[v]
		if !magic {
			return true
		}
		if ctx := sizingContext(pass, lit, stack); ctx != "" {
			pass.Reportf(lit.Pos(), "hardcoded feature dimension %d in %s keeps compiling when the Table I layout moves; "+
				"use %s (layout contract: internal/features/doc.go)", v, ctx, name)
		}
		return true
	})
}

// sizingContext classifies whether the literal sits in a position that
// sizes or compares a feature vector. Returns "" for innocuous uses
// (loop bounds, ports, arbitrary arithmetic) to keep the check quiet
// outside its domain.
func sizingContext(pass *lintkit.Pass, lit *ast.BasicLit, stack []ast.Node) string {
	if len(stack) < 2 {
		return ""
	}
	parent := stack[len(stack)-2]
	switch p := parent.(type) {
	case *ast.CallExpr:
		if id, ok := ast.Unparen(p.Fun).(*ast.Ident); ok {
			if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin && id.Name == "make" {
				return "make()"
			}
		}
	case *ast.ArrayType:
		if p.Len == ast.Expr(lit) {
			return "an array length"
		}
	case *ast.BinaryExpr:
		if isComparison(p.Op) && (containsLenCall(pass, p.X) || containsLenCall(pass, p.Y)) {
			return "a len() comparison"
		}
	case *ast.KeyValueExpr:
		if id, ok := p.Key.(*ast.Ident); ok && strings.Contains(id.Name, "Dim") && p.Value == ast.Expr(lit) {
			return "field " + id.Name
		}
	case *ast.ValueSpec:
		for _, nm := range p.Names {
			if strings.Contains(nm.Name, "Dim") {
				return "declaration of " + nm.Name
			}
		}
	}
	return ""
}

func isComparison(op token.Token) bool {
	switch op {
	case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
		return true
	}
	return false
}

func containsLenCall(pass *lintkit.Pass, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "len" {
			if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
