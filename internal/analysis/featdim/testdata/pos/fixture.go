// Positive featdim fixtures: derived Table I dimensions hardcoded in
// sizing positions must be reported; innocuous uses stay silent.
package fixture

type descriptor struct {
	InstanceDim int
	Rows        int
}

func sized(dim int) {
	_ = make([]float64, 329) // want `hardcoded feature dimension 329 in make\(\)`

	var arr [29]float64 // want `hardcoded feature dimension 29 in an array length`
	_ = arr

	v := make([]float64, dim) // a named dimension: legal
	if len(v) != 637 {        // want `hardcoded feature dimension 637 in a len\(\) comparison`
		return
	}

	d := descriptor{InstanceDim: 329, Rows: 300} // want `hardcoded feature dimension 329 in field InstanceDim`
	_ = d

	const pairDim = 637 // want `hardcoded feature dimension 637 in declaration of pairDim`
	_ = pairDim

	// Innocuous positions stay silent: loop bounds, plain arithmetic,
	// and numbers that are not derived layout sizes.
	for i := 0; i < 329; i++ {
		_ = i
	}
	x := 29 + 300
	_ = x
	_ = make([]float64, 300)
}
