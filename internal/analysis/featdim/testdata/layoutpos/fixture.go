package fixture // want `layout constant NumPairDistances \(= 8\) is missing`

// Analyzed under the features package's import path: MetaDim disagrees
// with the documented Table I layout and NumPairDistances is absent.

const MetaDim = 30 // want `MetaDim = 30 disagrees with the documented Table I layout \(29\)`
