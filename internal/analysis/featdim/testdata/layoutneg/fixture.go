// Layout fixture matching the documented Table I contract exactly:
// analyzed under the features package's import path, must stay silent.
package fixture

const (
	MetaDim          = 18 + 10 + 1
	NumPairDistances = 8
)
