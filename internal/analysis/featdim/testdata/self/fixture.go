// Self-exemption fixture: under the analysis tree's own import path the
// mirror constants are the reference, so nothing here may be reported.
package fixture

func sized() {
	_ = make([]float64, 329)
	var arr [29]float64
	_ = arr
}
