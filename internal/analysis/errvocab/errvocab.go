// Package errvocab implements the errvocab analyzer: every non-2xx
// HTTP response produced by the serving layer must go through the typed
// error-vocabulary helpers.
//
// PR 5 gave the server a typed JSON error vocabulary — apiError{error,
// code, retry_after_ms} written by fail/failCode/shed/failDeadline/
// enqueueFail — and the retrying client dispatches on those codes
// (overloaded, draining, deadline_exceeded, ...) to decide whether and
// when to retry. A new endpoint answering a naked http.Error or bare
// WriteHeader(503) silently breaks that contract: the client sees an
// unparseable body, treats the failure as opaque, and the retry
// behaviour the chaos suite certifies no longer holds. errvocab makes
// the vocabulary load-bearing: inside the serving packages, calls to
// net/http.Error and to ResponseWriter.WriteHeader with an error status
// (>= 400, or a status the analyzer cannot prove harmless) are reported
// unless they occur inside one of the designated writer helpers.
//
// Success statuses stay unrestricted: WriteHeader(http.StatusCreated)
// and friends are not errors and carry no retry contract.
package errvocab

import (
	"go/ast"
	"go/constant"

	"leapme/internal/analysis/lintkit"
)

// ScopePackages is the set of import paths the analyzer enforces — the
// HTTP serving layer. A var so the fixture tests can retarget it.
var ScopePackages = map[string]bool{
	"leapme/internal/serve":   true,
	"leapme/cmd/leapme-serve": true,
}

// AllowedWriters names the functions that are the error vocabulary:
// the single WriteHeader each of them performs is the blessed exit
// point every error response funnels through. (fail, failDeadline and
// enqueueFail delegate to failCode, so they need no entry of their
// own.)
var AllowedWriters = map[string]bool{
	"failCode": true, // the generic typed-JSON error writer
	"shed":     true, // 429 with Retry-After from the admission gate
	"probe":    true, // readiness-probe statuses (non-counting)
}

// Analyzer is the errvocab analyzer.
var Analyzer = &lintkit.Analyzer{
	Name: "errvocab",
	Doc: "in internal/serve and cmd/leapme-serve, non-2xx responses must be produced by the typed " +
		"error-vocabulary helpers (fail/failCode/shed/failDeadline/enqueueFail), never naked http.Error " +
		"or WriteHeader(4xx|5xx)",
	Run: run,
}

func run(pass *lintkit.Pass) (any, error) {
	if pass.Pkg == nil || !ScopePackages[pass.Pkg.Path()] {
		return nil, nil
	}
	pass.InspectStack(func(n ast.Node, stack []ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if inAllowedWriter(stack) {
			return true
		}
		// http.Error(w, msg, status) — always an untyped text/plain body.
		if path, name, ok := pass.QualifiedCallee(call.Fun); ok && path == "net/http" && name == "Error" {
			pass.Reportf(call.Pos(), "naked http.Error bypasses the typed error vocabulary: clients get text/plain instead of apiError JSON — use fail/failCode (or probe for readiness statuses)")
			return true
		}
		// w.WriteHeader(status) — flag error statuses and anything the
		// analyzer cannot prove is a success status.
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "WriteHeader" {
			return true
		}
		s := pass.TypesInfo.Selections[sel]
		if s == nil {
			return true
		}
		obj := s.Obj()
		if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "net/http" {
			return true
		}
		if len(call.Args) != 1 {
			return true
		}
		if status, known := constStatus(pass, call.Args[0]); known {
			if status < 400 {
				return true
			}
			pass.Reportf(call.Pos(), "naked WriteHeader(%d) bypasses the typed error vocabulary: the client's retry contract needs an apiError code — use fail/failCode/shed/failDeadline", status)
			return true
		}
		pass.Reportf(call.Pos(), "WriteHeader with a non-constant status may write an error response outside the typed vocabulary — route error statuses through fail/failCode")
		return true
	})
	return nil, nil
}

// inAllowedWriter reports whether the innermost enclosing function
// declaration is one of the designated vocabulary writers. Function
// literals inherit their enclosing declaration's standing.
func inAllowedWriter(stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		if fd, ok := stack[i].(*ast.FuncDecl); ok {
			return AllowedWriters[fd.Name.Name]
		}
	}
	return false
}

// constStatus evaluates arg as a compile-time integer constant.
func constStatus(pass *lintkit.Pass, arg ast.Expr) (int64, bool) {
	tv, ok := pass.TypesInfo.Types[arg]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return 0, false
	}
	v, exact := constant.Int64Val(tv.Value)
	if !exact {
		return 0, false
	}
	return v, true
}
