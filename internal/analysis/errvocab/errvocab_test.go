package errvocab_test

import (
	"testing"

	"leapme/internal/analysis/errvocab"
	"leapme/internal/analysis/lintkit/lintest"
)

func TestPositiveFixtures(t *testing.T) {
	lintest.Run(t, errvocab.Analyzer, "testdata/pos", "leapme/internal/serve")
}

func TestOutOfScopePackageIsSilent(t *testing.T) {
	lintest.Run(t, errvocab.Analyzer, "testdata/neg", "leapme/other")
}
