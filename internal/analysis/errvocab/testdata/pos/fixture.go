// Positive fixtures: naked error responses errvocab must flag in the
// serving packages, alongside the patterns that must stay silent —
// success statuses and the designated vocabulary writers.
package pos

import "net/http"

func handler(w http.ResponseWriter) {
	http.Error(w, "boom", http.StatusInternalServerError) // want `naked http.Error`
}

func bad500(w http.ResponseWriter) {
	w.WriteHeader(http.StatusInternalServerError) // want `naked WriteHeader\(500\)`
}

func bad404(w http.ResponseWriter) {
	w.WriteHeader(404) // want `naked WriteHeader\(404\)`
}

func badVar(w http.ResponseWriter, status int) {
	w.WriteHeader(status) // want `non-constant status`
}

func inLit(w http.ResponseWriter) {
	f := func() {
		w.WriteHeader(http.StatusBadGateway) // want `naked WriteHeader\(502\)`
	}
	f()
}

// Success statuses carry no retry contract.
func okCreated(w http.ResponseWriter) {
	w.WriteHeader(http.StatusCreated)
}

// The designated writers ARE the vocabulary: their WriteHeader is the
// blessed exit point.
func failCode(w http.ResponseWriter, status int) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
}

func shed(w http.ResponseWriter) {
	w.WriteHeader(http.StatusTooManyRequests)
}

func probe(w http.ResponseWriter, ready bool) {
	if !ready {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
}
