// Scope fixture: outside the serving packages the vocabulary contract
// does not apply — a test helper or tool may answer however it likes.
package neg

import "net/http"

func handler(w http.ResponseWriter) {
	http.Error(w, "boom", http.StatusInternalServerError)
	w.WriteHeader(500)
}
