// Package hotalloc implements the hotalloc analyzer: functions marked
// //lint:hotpath must be statically allocation-free.
//
// PR 8 rebuilt inference on flat kernels and a span-protocol batcher
// whose contract is 0 marginal allocations per scored pair, enforced
// dynamically by testing.AllocsPerRun gates. Dynamic gates only fire
// when the right benchmark-shaped test runs; a single innocent
// fmt.Sprintf or escaping closure regresses the contract the moment it
// merges. hotalloc is the static half of that enforcement: every
// function carrying a //lint:hotpath annotation (plus a seeded list of
// the kernels the repo's throughput claims rest on) is scanned for
// constructs that allocate — make/new, map and slice literals, escaping
// composite literals, appends outside the append(buf[:0], ...) arena
// pattern, closures, fmt calls, strings.Builder, and interface boxing —
// and its same-package callees are checked one level deep so an alloc
// can't hide one call away. panic(...) arguments are exempt: a
// panicking hot path has already left the fast path.
//
// The annotation is also a contract with the dynamic gates: the
// cross-check in this package (run by cmd/leapme-lint and CI) requires
// every //lint:hotpath function to be named inside a
// testing.AllocsPerRun closure in its package's tests, so the static
// and dynamic enforcement can never drift apart.
package hotalloc

import (
	"go/ast"
	"strings"

	"leapme/internal/analysis/lintkit"
)

// Directive marks a function as hot-path; it must appear in the
// function's doc comment.
const Directive = "//lint:hotpath"

// SeededFunc names one function that must carry the //lint:hotpath
// annotation whether or not anyone remembered to write it: the scoring
// kernels the repository's performance claims are measured on.
type SeededFunc struct {
	Pkg  string // import path
	Recv string // receiver base type name, "" for plain functions
	Name string
}

// Seeded is the list of functions that must be annotated. A var so the
// fixture tests can retarget it; the production list covers the flat
// kernels, the quantised kernels, the Scorer score paths and the
// batcher span loop.
var Seeded = []SeededFunc{
	{Pkg: "leapme/internal/nn", Recv: "Kernel", Name: "Forward"},
	{Pkg: "leapme/internal/nn", Recv: "Kernel", Name: "PositiveScore"},
	{Pkg: "leapme/internal/nn", Recv: "Kernel", Name: "ForwardBatch"},
	{Pkg: "leapme/internal/nn", Recv: "QuantKernel", Name: "Forward"},
	{Pkg: "leapme/internal/nn", Recv: "QuantKernel", Name: "PositiveScore"},
	{Pkg: "leapme/internal/nn", Recv: "QuantKernel", Name: "ForwardBatch"},
	{Pkg: "leapme/internal/nn", Recv: "TrainKernel", Name: "runBatch"},
	{Pkg: "leapme/internal/nn", Recv: "TrainKernel", Name: "chunkGrads"},
	{Pkg: "leapme/internal/nn", Recv: "TrainKernel", Name: "accumLayerGrads"},
	{Pkg: "leapme/internal/nn", Recv: "TrainKernel", Name: "reduceGrads"},
	{Pkg: "leapme/internal/nn", Recv: "TrainKernel", Name: "optStep"},
	{Pkg: "leapme/internal/features", Recv: "Extractor", Name: "accumulateInstances"},
	{Pkg: "leapme/internal/core", Recv: "Scorer", Name: "Score"},
	{Pkg: "leapme/internal/core", Recv: "Scorer", Name: "ScoreBatch"},
	{Pkg: "leapme/internal/serve", Recv: "batcher", Name: "runBatch"},
}

// Analyzer is the hotalloc analyzer.
var Analyzer = &lintkit.Analyzer{
	Name: "hotalloc",
	Doc: "functions annotated //lint:hotpath (and the seeded kernel list) must be statically allocation-free: " +
		"no make/new/map/slice literals, no growing append, no closures, no fmt or strings.Builder, no interface boxing; " +
		"same-package callees are checked one level deep",
	Run: run,
}

func run(pass *lintkit.Pass) (any, error) {
	// Index this package's function declarations by (recv, name) so the
	// seeded check and the callee check can find bodies.
	decls := map[[2]string]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				decls[[2]string{recvName(fd), fd.Name.Name}] = fd
			}
		}
	}

	var hot []*ast.FuncDecl
	for _, fd := range decls {
		if IsHotpath(fd) {
			hot = append(hot, fd)
		}
	}

	// Seeded functions must exist and be annotated: deleting the comment
	// (or renaming the function) must not silently drop enforcement.
	pkgPath := ""
	if pass.Pkg != nil {
		pkgPath = pass.Pkg.Path()
	}
	for _, s := range Seeded {
		if s.Pkg != pkgPath {
			continue
		}
		fd, ok := decls[[2]string{s.Recv, s.Name}]
		if !ok {
			pos := pass.Files[0].Name.Pos()
			pass.Reportf(pos, "seeded hot-path function %s not found in %s: renamed or removed? update hotalloc.Seeded to match",
				s.display(), pkgPath)
			continue
		}
		if !IsHotpath(fd) {
			pass.Reportf(fd.Pos(), "%s is on the seeded hot-path list and must carry a %s annotation", s.display(), Directive)
		}
	}

	for _, fd := range hot {
		checkHot(pass, fd, decls)
	}
	return nil, nil
}

func (s SeededFunc) display() string {
	if s.Recv != "" {
		return s.Recv + "." + s.Name
	}
	return s.Name
}

// checkHot reports every alloc site in fd's body, then walks its calls
// and charges same-package callees' alloc sites to the call site —
// one level deep, which is as far as the repo's kernel helpers nest.
func checkHot(pass *lintkit.Pass, fd *ast.FuncDecl, decls map[[2]string]*ast.FuncDecl) {
	if fd.Body == nil {
		return
	}
	for _, site := range lintkit.AllocSites(pass, fd.Body) {
		pass.Reportf(site.Pos, "hot path %s allocates: %s", fd.Name.Name, site.What)
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := localCallee(pass, call, decls)
		if callee == nil || callee == fd || callee.Body == nil {
			return true
		}
		if IsHotpath(callee) {
			return true // checked in its own right
		}
		if sites := lintkit.AllocSites(pass, callee.Body); len(sites) > 0 {
			pass.Reportf(call.Pos(), "hot path %s calls %s, which allocates: %s",
				fd.Name.Name, callee.Name.Name, sites[0].What)
		}
		return true
	})
}

// localCallee resolves call to a FuncDecl in the same package, for both
// plain calls (helper(x)) and method calls on any receiver whose method
// is declared here (s.ensureBatch(n)).
func localCallee(pass *lintkit.Pass, call *ast.CallExpr, decls map[[2]string]*ast.FuncDecl) *ast.FuncDecl {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		// Plain call: the Uses object must be package-level here (not a
		// builtin, not a local func value).
		obj := pass.TypesInfo.Uses[fun]
		if obj == nil || obj.Pkg() == nil || pass.Pkg == nil || obj.Pkg().Path() != pass.Pkg.Path() {
			return nil
		}
		return decls[[2]string{"", fun.Name}]
	case *ast.SelectorExpr:
		sel := pass.TypesInfo.Selections[fun]
		if sel == nil {
			return nil // package-qualified or field
		}
		obj := sel.Obj()
		if obj == nil || obj.Pkg() == nil || pass.Pkg == nil || obj.Pkg().Path() != pass.Pkg.Path() {
			return nil
		}
		for key, fd := range decls {
			if key[1] == fun.Sel.Name && key[0] != "" && fd.Name.Name == obj.Name() {
				// Match on receiver type name too, so Kernel.Forward and
				// QuantKernel.Forward resolve distinctly.
				if recvTypeName(pass, fun) == key[0] {
					return fd
				}
			}
		}
		return nil
	}
	return nil
}

// recvTypeName returns the receiver base type name of a method selector.
func recvTypeName(pass *lintkit.Pass, sel *ast.SelectorExpr) string {
	s := pass.TypesInfo.Selections[sel]
	if s == nil {
		return ""
	}
	t := s.Recv()
	return baseTypeName(t.String())
}

func baseTypeName(s string) string {
	s = strings.TrimPrefix(s, "*")
	if i := strings.LastIndex(s, "."); i >= 0 {
		s = s[i+1:]
	}
	if i := strings.Index(s, "["); i >= 0 { // generic instantiation
		s = s[:i]
	}
	return s
}

// IsHotpath reports whether fd's doc comment carries the //lint:hotpath
// directive.
func IsHotpath(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if c.Text == Directive || strings.HasPrefix(c.Text, Directive+" ") || strings.HasPrefix(c.Text, Directive+"\t") {
			return true
		}
	}
	return false
}

// recvName returns the base type name of fd's receiver, "" for plain
// functions.
func recvName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.ParenExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver
			t = tt.X
		case *ast.Ident:
			return tt.Name
		default:
			return ""
		}
	}
}
