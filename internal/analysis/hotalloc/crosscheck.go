package hotalloc

// The gate cross-check binds static and dynamic enforcement together:
// every //lint:hotpath function must be invoked inside a
// testing.AllocsPerRun closure somewhere in its package's _test.go
// files. Without this, deleting a benchmark-shaped test silently drops
// the dynamic half of the zero-alloc contract while the annotation
// keeps claiming it holds; with it, CI fails the moment either side
// drifts.
//
// The test files are parsed (not type-checked — lintkit.Load
// deliberately loads only production files), so the match is name-based
// per package directory: the number of AllocsPerRun closures calling a
// name must cover the number of hotpath functions bearing that name.

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"

	"leapme/internal/analysis/lintkit"
)

// CrossCheck verifies AllocsPerRun gate coverage for every annotated
// function in pkgs, honoring //lint:allow hotalloc suppressions.
// Packages without a Dir (fixture packages built from explicit file
// lists) are skipped unless the fixture set Dir itself.
func CrossCheck(pkgs []*lintkit.Package) []lintkit.Finding {
	var out []lintkit.Finding
	for _, f := range crossCheckRaw(pkgs) {
		if f.pkg != nil && f.pkg.Allows(Analyzer.Name, f.pos) {
			continue
		}
		out = append(out, f.Finding)
	}
	return out
}

// CrossCheckUnsuppressed returns the cross-check findings without
// suppression filtering; the -audit-allows mode feeds these to
// lintkit.AuditDirectives so a directive excusing a missing gate is
// correctly counted as live.
func CrossCheckUnsuppressed(pkgs []*lintkit.Package) []lintkit.Finding {
	var out []lintkit.Finding
	for _, f := range crossCheckRaw(pkgs) {
		out = append(out, f.Finding)
	}
	return out
}

// rawFinding keeps the token.Pos and owning package alongside the
// printable Finding so CrossCheck can consult the suppressor.
type rawFinding struct {
	lintkit.Finding
	pkg *lintkit.Package
	pos token.Pos
}

func crossCheckRaw(pkgs []*lintkit.Package) []rawFinding {
	var out []rawFinding
	seen := map[string]bool{}
	for _, p := range pkgs {
		if p.Dir == "" || seen[p.Dir] {
			continue
		}
		seen[p.Dir] = true

		// Annotated hotpath functions in this package, grouped by name.
		type hotFunc struct {
			name string
			pos  token.Pos
		}
		var hotFuncs []hotFunc
		byName := map[string]int{}
		for _, f := range p.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || !IsHotpath(fd) {
					continue
				}
				hotFuncs = append(hotFuncs, hotFunc{name: fd.Name.Name, pos: fd.Pos()})
				byName[fd.Name.Name]++
			}
		}
		if len(hotFuncs) == 0 {
			continue
		}

		gates, err := gateCounts(p.Dir)
		if err != nil {
			out = append(out, rawFinding{
				Finding: lintkit.Finding{
					Analyzer: Analyzer.Name,
					Position: p.Fset.Position(hotFuncs[0].pos),
					Message:  fmt.Sprintf("cannot scan %s for AllocsPerRun gates: %v", p.Dir, err),
				},
				pkg: p, pos: hotFuncs[0].pos,
			})
			continue
		}

		for _, hf := range hotFuncs {
			if gates[hf.name] >= byName[hf.name] {
				continue
			}
			msg := fmt.Sprintf("//lint:hotpath function %s has no testing.AllocsPerRun gate in %s's tests",
				hf.name, filepath.Base(p.Dir))
			if gates[hf.name] > 0 {
				msg = fmt.Sprintf("%d //lint:hotpath functions named %s in %s but only %d AllocsPerRun gate(s) call that name",
					byName[hf.name], hf.name, filepath.Base(p.Dir), gates[hf.name])
			}
			msg += " — the static annotation needs a dynamic gate backing it (or drop the annotation)"
			out = append(out, rawFinding{
				Finding: lintkit.Finding{
					Analyzer: Analyzer.Name,
					Position: p.Fset.Position(hf.pos),
					Message:  msg,
				},
				pkg: p, pos: hf.pos,
			})
		}
	}
	return out
}

// gateCounts parses dir's _test.go files and counts, per callee name,
// how many testing.AllocsPerRun closures invoke that name.
func gateCounts(dir string) (map[string]int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	counts := map[string]int{}
	fset := token.NewFileSet()
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, 0)
		if err != nil {
			return nil, err
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "AllocsPerRun" {
				return true
			}
			if id, ok := sel.X.(*ast.Ident); !ok || id.Name != "testing" {
				return true
			}
			if len(call.Args) < 2 {
				return true
			}
			lit, ok := call.Args[1].(*ast.FuncLit)
			if !ok {
				return true
			}
			for name := range calledNames(lit.Body) {
				counts[name]++
			}
			return true
		})
	}
	return counts, nil
}

// calledNames collects the terminal names of every call inside body:
// f(x) yields f, recv.Method(x) yields Method. Calls nested in further
// closures count too — the gate measures whatever the closure runs.
func calledNames(body *ast.BlockStmt) map[string]bool {
	names := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			names[fun.Name] = true
		case *ast.SelectorExpr:
			names[fun.Sel.Name] = true
		}
		return true
	})
	return names
}
