package hotalloc_test

import (
	"go/token"
	"path/filepath"
	"strings"
	"testing"

	"leapme/internal/analysis/hotalloc"
	"leapme/internal/analysis/lintkit"
	"leapme/internal/analysis/lintkit/lintest"
)

func TestPositiveFixtures(t *testing.T) {
	lintest.Run(t, hotalloc.Analyzer, "testdata/pos", "leapme/fix/pos")
}

func TestNegativeFixtures(t *testing.T) {
	lintest.Run(t, hotalloc.Analyzer, "testdata/neg", "leapme/fix/neg")
}

// TestSeededList retargets the seeded function list at the fixture
// package: a seeded function missing its annotation and a seeded
// function that no longer exists must both be reported.
func TestSeededList(t *testing.T) {
	saved := hotalloc.Seeded
	hotalloc.Seeded = []hotalloc.SeededFunc{
		{Pkg: "leapme/fix/seed", Recv: "Kernel", Name: "Forward"},
		{Pkg: "leapme/fix/seed", Recv: "Kernel", Name: "Gone"},
	}
	defer func() { hotalloc.Seeded = saved }()
	lintest.Run(t, hotalloc.Analyzer, "testdata/seed", "leapme/fix/seed")
}

// TestCrossCheckGates exercises the AllocsPerRun coverage check on two
// otherwise-identical fixtures: one whose _test.go gates the annotated
// function, one whose _test.go merely calls it.
func TestCrossCheckGates(t *testing.T) {
	ok := loadDir(t, "testdata/gates/ok", "leapme/fix/gates")
	if fs := hotalloc.CrossCheck([]*lintkit.Package{ok}); len(fs) != 0 {
		t.Fatalf("gated fixture should pass the cross-check, got %v", fs)
	}
	missing := loadDir(t, "testdata/gates/missing", "leapme/fix/gates")
	fs := hotalloc.CrossCheck([]*lintkit.Package{missing})
	if len(fs) != 1 || !strings.Contains(fs[0].Message, "Fast") {
		t.Fatalf("ungated fixture should fail the cross-check on Fast, got %v", fs)
	}
}

func loadDir(t *testing.T, dir, importPath string) *lintkit.Package {
	t.Helper()
	fset := token.NewFileSet()
	p, err := lintkit.CheckFiles(fset, lintkit.NewImporter(fset), importPath,
		[]string{filepath.Join(dir, "fixture.go")})
	if err != nil {
		t.Fatal(err)
	}
	for _, te := range p.TypeErrors {
		t.Fatal(te)
	}
	p.Dir = dir
	return p
}
