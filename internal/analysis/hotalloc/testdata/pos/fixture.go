// Positive fixtures: every class of allocation hotalloc must flag
// inside a //lint:hotpath function.
package pos

import (
	"fmt"
	"strings"
)

//lint:hotpath
func formats(x int) string {
	return fmt.Sprintf("%d", x) // want `fmt.Sprintf allocates`
}

//lint:hotpath
func mapLit() map[string]int {
	return map[string]int{"a": 1} // want `map literal allocates`
}

//lint:hotpath
func sliceLit() []int {
	return []int{1, 2} // want `slice literal allocates`
}

//lint:hotpath
func mk(n int) []float64 {
	return make([]float64, n) // want `make allocates`
}

//lint:hotpath
func newInt() *int {
	return new(int) // want `new allocates`
}

type point struct{ x, y int }

//lint:hotpath
func ptrLit() *point {
	return &point{1, 2} // want `composite literal escapes`
}

//lint:hotpath
func closure(xs []int) func() int {
	return func() int { return len(xs) } // want `closure`
}

//lint:hotpath
func grow(dst []int, x int) []int {
	return append(dst, x) // want `append may grow`
}

func sink(v interface{}) { _ = v }

//lint:hotpath
func box(v int) {
	sink(v) // want `boxes a concrete value into an interface parameter`
}

//lint:hotpath
func conv(v int) any {
	return any(v) // want `conversion boxes a concrete value`
}

//lint:hotpath
func builder(s string) string {
	var b strings.Builder // want `strings.Builder`
	b.WriteString(s)      // want `strings.Builder`
	return b.String()     // want `strings.Builder`
}

//lint:hotpath
func viaHelper(n int) []float64 {
	return helper(n) // want `calls helper, which allocates`
}

func helper(n int) []float64 {
	return make([]float64, n)
}

type mker struct{}

//lint:hotpath
func (m *mker) fwd() []int {
	return m.alloc() // want `calls alloc, which allocates`
}

func (m *mker) alloc() []int { return make([]int, 4) }
