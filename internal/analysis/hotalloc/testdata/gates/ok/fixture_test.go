package gates

import "testing"

func TestFastAllocs(t *testing.T) {
	x := []float64{1, 2}
	if a := testing.AllocsPerRun(10, func() { Fast(x) }); a != 0 {
		t.Fatalf("Fast allocates: %v", a)
	}
}
