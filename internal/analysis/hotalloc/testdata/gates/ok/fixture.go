// Gate cross-check fixture: Fast is annotated AND named by an
// AllocsPerRun gate in fixture_test.go — the cross-check must pass.
package gates

//lint:hotpath
func Fast(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += v
	}
	return s
}
