package gates

import "testing"

// A plain call outside testing.AllocsPerRun does not count as a gate.
func TestFastRuns(t *testing.T) {
	if Fast([]float64{1}) != 1 {
		t.Fatal("bad sum")
	}
}
