// Gate cross-check fixture: Fast is annotated but no AllocsPerRun gate
// in fixture_test.go names it — the cross-check must report it.
package gates

//lint:hotpath
func Fast(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += v
	}
	return s
}
