// Seed fixtures: the test retargets hotalloc.Seeded at this package
// with entries for Kernel.Forward (present but unannotated — must be
// reported) and Kernel.Gone (absent — reported at the package clause).
package seed // want `seeded hot-path function Kernel.Gone not found`

type Kernel struct{}

func (k *Kernel) Forward() {} // want `seeded hot-path list and must carry`

//lint:hotpath
func (k *Kernel) Gated(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += v
	}
	return s
}
