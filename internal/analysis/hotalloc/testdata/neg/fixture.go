// Negative fixtures: hot-path-legal patterns that must stay silent —
// the arena idioms the real kernels are written in — plus proof that
// unannotated functions and suppressed lines are left alone.
package neg

import "fmt"

//lint:hotpath
func clean(dst, x []float64) {
	if len(dst) != len(x) {
		// Cold precondition failure: panic arguments are exempt.
		panic(fmt.Sprintf("dim mismatch %d vs %d", len(dst), len(x)))
	}
	for i := range x {
		dst[i] = x[i] * 2
	}
}

//lint:hotpath
func arena(buf []int, n int) []int {
	// The blessed re-slice append pattern: writes into preallocated cap.
	return append(buf[:0], n)
}

//lint:hotpath
func scratchSlices(scratch []float64, w int) float64 {
	buf0 := scratch[:w]
	buf1 := scratch[w : 2*w]
	return buf0[0] + buf1[0]
}

//lint:hotpath
func viaClean(x []float64) float64 {
	return sum(x)
}

func sum(x []float64) float64 {
	t := 0.0
	for _, v := range x {
		t += v
	}
	return t
}

type ker struct{ w []float64 }

//lint:hotpath
func (k *ker) fwd(x []float64) float64 {
	return k.dot(x)
}

func (k *ker) dot(x []float64) float64 {
	s := 0.0
	for i, v := range x {
		s += v * k.w[i]
	}
	return s
}

// coldAllocates carries no annotation: free to allocate.
func coldAllocates() []int {
	return make([]int, 8)
}

//lint:hotpath
func excused() []int {
	//lint:allow hotalloc cold fallback path, measured irrelevant to the gate
	return make([]int, 4)
}
