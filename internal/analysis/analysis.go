package analysis

import (
	"leapme/internal/analysis/ctxflow"
	"leapme/internal/analysis/determinism"
	"leapme/internal/analysis/errvocab"
	"leapme/internal/analysis/featdim"
	"leapme/internal/analysis/floateq"
	"leapme/internal/analysis/guardgo"
	"leapme/internal/analysis/hotalloc"
	"leapme/internal/analysis/lintkit"
	"leapme/internal/analysis/locksafe"
)

// All returns every analyzer leapme-lint runs, in report order.
func All() []*lintkit.Analyzer {
	return []*lintkit.Analyzer{
		ctxflow.Analyzer,
		determinism.Analyzer,
		errvocab.Analyzer,
		featdim.Analyzer,
		floateq.Analyzer,
		guardgo.Analyzer,
		hotalloc.Analyzer,
		locksafe.Analyzer,
	}
}
