package analysis

import (
	"leapme/internal/analysis/ctxflow"
	"leapme/internal/analysis/determinism"
	"leapme/internal/analysis/featdim"
	"leapme/internal/analysis/floateq"
	"leapme/internal/analysis/guardgo"
	"leapme/internal/analysis/lintkit"
)

// All returns every analyzer leapme-lint runs, in report order.
func All() []*lintkit.Analyzer {
	return []*lintkit.Analyzer{
		ctxflow.Analyzer,
		determinism.Analyzer,
		featdim.Analyzer,
		floateq.Analyzer,
		guardgo.Analyzer,
	}
}
