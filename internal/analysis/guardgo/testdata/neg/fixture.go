// Negative guardgo fixtures: this directory is analyzed under the guard
// package's own import path, where bare launches are the implementation.
package fixture

func launches(work func()) {
	go work()
	go func() { work() }()
}
