// Positive guardgo fixtures: bare goroutine launches outside the guard
// package must be reported; guard.Go and annotated launches stay legal.
package fixture

import (
	"sync"

	"leapme/internal/guard"
)

func launches(work func()) {
	go work()              // want `bare goroutine outside internal/guard`
	go func() { work() }() // want `bare go func literal outside internal/guard`

	var wg sync.WaitGroup
	rep := guard.NewReport()
	guard.Go(&wg, rep, "worker", func() error { work(); return nil })
	wg.Wait()

	//lint:allow guardgo fixture demonstrating a documented intentional bypass
	go work()
}
