package guardgo_test

import (
	"testing"

	"leapme/internal/analysis/guardgo"
	"leapme/internal/analysis/lintkit/lintest"
)

func TestPositiveFixtures(t *testing.T) {
	lintest.Run(t, guardgo.Analyzer, "testdata/pos", "leapme/internal/serve")
}

func TestNegativeFixturesExemptPackage(t *testing.T) {
	lintest.Run(t, guardgo.Analyzer, "testdata/neg", "leapme/internal/guard")
}
