// Package guardgo requires every goroutine launch to route through the
// internal/guard primitives (guard.Go, guard.ForEach, the serve worker
// pool built on them) so that a panic in any concurrent unit lands in a
// guard.Report — surfaced via Matcher.LastReport() and the serve
// metrics — instead of killing the whole process or, worse, vanishing.
//
// PR 1 made panic isolation a system property; a single bare `go`
// statement re-opens the hole. Launches that genuinely must bypass
// guard (a tight gradient worker pool whose panic should crash
// training, a service loop with its own isolation) document themselves
// with //lint:allow guardgo <reason>.
package guardgo

import (
	"go/ast"

	"leapme/internal/analysis/lintkit"
)

// ExemptPackages may use bare go statements: guard itself is where the
// primitives live. Var, not const, so fixture tests can retarget it.
var ExemptPackages = []string{
	"leapme/internal/guard",
}

// Analyzer is the guardgo check.
var Analyzer = &lintkit.Analyzer{
	Name: "guardgo",
	Doc: "require goroutine launches to go through internal/guard (guard.Go / guard.ForEach) " +
		"so panics are isolated into reports; annotate intentional bare launches with //lint:allow guardgo <reason>",
	Run: run,
}

func run(pass *lintkit.Pass) (any, error) {
	if pass.Pkg != nil {
		for _, p := range ExemptPackages {
			if pass.Pkg.Path() == p {
				return nil, nil
			}
		}
	}
	pass.Inspect(func(n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		what := "goroutine"
		if _, isLit := ast.Unparen(g.Call.Fun).(*ast.FuncLit); isLit {
			what = "go func literal"
		}
		pass.Reportf(g.Pos(), "bare %s outside internal/guard: panics escape LastReport(); "+
			"use guard.Go/guard.ForEach or annotate //lint:allow guardgo <why isolation is handled>", what)
		return true
	})
	return nil, nil
}
