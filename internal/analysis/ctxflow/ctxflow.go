// Package ctxflow enforces the cancellation discipline PR 1 threaded
// through the pipeline: long-running work must stay stoppable.
//
// Three rules:
//
//  1. A function that names a context.Context parameter must consult a
//     context somewhere in its body — ctx.Done()/ctx.Err(), a select
//     case, or forwarding ctx to a callee. A dead ctx parameter is how
//     cancellation support silently rots: callers believe the work is
//     stoppable, the function never looks. (Discarding ctx explicitly
//     with `_ context.Context` stays legal: the signature says so.)
//
//  2. Inside a ctx-holding function, a loop that can block or spin
//     forever — `for { … }` with no condition, a loop doing channel
//     sends/receives, or ranging over a channel — must consult a
//     context inside the loop. These are exactly the "select-less
//     loops" that turn Ctrl-C and HTTP client disconnects into hung
//     workers. Bounded data loops (validation, aggregation) are not
//     flagged: their cancellation point is the enclosing pipeline
//     stage.
//
//  3. context.Background()/context.TODO() must not be minted inside a
//     loop, nor anywhere in an exported function that does not take a
//     ctx itself: both detach the work from its caller's cancellation.
//     True roots (main, signal wiring) annotate //lint:allow ctxflow.
package ctxflow

import (
	"go/ast"
	"go/token"
	"go/types"

	"leapme/internal/analysis/lintkit"
)

// Analyzer is the ctxflow check.
var Analyzer = &lintkit.Analyzer{
	Name: "ctxflow",
	Doc: "named ctx parameters must be consulted; unbounded/channel loops in ctx functions " +
		"must check ctx; Background/TODO must not be minted in loops or exported non-ctx functions",
	Run: run,
}

func run(pass *lintkit.Pass) (any, error) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil, nil
}

func checkFunc(pass *lintkit.Pass, fd *ast.FuncDecl) {
	named, hasCtx := ctxParam(pass, fd)

	// Rule 1: a named ctx that the body never consults.
	if named && !consultsContext(pass, fd.Body) {
		pass.Reportf(fd.Name.Pos(), "%s takes a context.Context but never consults or forwards it; "+
			"cancellation silently stops here (use _ context.Context to discard deliberately)", fd.Name.Name)
	}

	// Rule 2: unbounded loops in ctx-holding functions. Loops inside
	// nested func literals belong to the literal's own lifecycle
	// (typically a guarded goroutine) and are skipped.
	if hasCtx {
		inspectOutsideFuncLits(fd.Body, func(n ast.Node) {
			switch n := n.(type) {
			case *ast.ForStmt:
				if (n.Cond == nil || loopHasChannelOp(pass, n.Body)) && !consultsContext(pass, n) {
					pass.Reportf(n.Pos(), "unbounded loop ignores the function's ctx: add a ctx.Done() "+
						"select case or a ctx.Err() check so cancellation can stop it")
				}
			case *ast.RangeStmt:
				if (rangesOverChannel(pass, n) || loopHasChannelOp(pass, n.Body)) && !consultsContext(pass, n) {
					pass.Reportf(n.Pos(), "channel loop ignores the function's ctx: add a ctx.Done() "+
						"select case so cancellation can stop it")
				}
			}
		})
	}

	// Rule 3: minted root contexts.
	exported := fd.Name.IsExported()
	var loops []ast.Node
	inspectOutsideFuncLits(fd.Body, func(n ast.Node) {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			loops = append(loops, n)
		}
	})
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		path, name, ok := pass.QualifiedCallee(call.Fun)
		if !ok || path != "context" || (name != "Background" && name != "TODO") {
			return true
		}
		inLoop := false
		for _, lp := range loops {
			if call.Pos() >= lp.Pos() && call.Pos() < lp.End() {
				inLoop = true
				break
			}
		}
		switch {
		case inLoop:
			pass.Reportf(call.Pos(), "context.%s() minted inside a loop detaches every iteration from caller "+
				"cancellation; hoist it or accept a ctx (annotate //lint:allow ctxflow <reason> for true roots)", name)
		case exported && !hasCtx:
			pass.Reportf(call.Pos(), "context.%s() in exported %s, which takes no ctx: callers cannot cancel "+
				"this work; accept a ctx and pass it through (annotate //lint:allow ctxflow <reason> for true roots)", name, fd.Name.Name)
		}
		return true
	})
}

// ctxParam reports whether fd has a context.Context parameter, and
// whether that parameter is named (bindable, hence consultable).
func ctxParam(pass *lintkit.Pass, fd *ast.FuncDecl) (named, has bool) {
	if fd.Type.Params == nil {
		return false, false
	}
	for _, field := range fd.Type.Params.List {
		if !lintkit.IsContextType(pass.TypesInfo.TypeOf(field.Type)) {
			continue
		}
		has = true
		for _, nm := range field.Names {
			if nm.Name != "_" {
				named = true
			}
		}
	}
	return named, has
}

// inspectOutsideFuncLits walks n depth-first but does not descend into
// function literals.
func inspectOutsideFuncLits(n ast.Node, fn func(ast.Node)) {
	ast.Inspect(n, func(m ast.Node) bool {
		if _, isLit := m.(*ast.FuncLit); isLit {
			return false
		}
		if m != nil {
			fn(m)
		}
		return true
	})
}

// consultsContext reports whether any identifier of type context.Context
// is used under n — covering ctx.Done()/ctx.Err() checks, select cases,
// and passing ctx to a callee (which owns cancellation from there).
func consultsContext(pass *lintkit.Pass, n ast.Node) bool {
	if n == nil {
		return false
	}
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		id, ok := m.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil {
			return true
		}
		if lintkit.IsContextType(obj.Type()) {
			found = true
			return false
		}
		return true
	})
	return found
}

// loopHasChannelOp reports whether the loop body performs a channel
// send or receive outside nested function literals.
func loopHasChannelOp(pass *lintkit.Pass, body ast.Node) bool {
	if body == nil {
		return false
	}
	found := false
	inspectOutsideFuncLits(body, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.SendStmt:
			found = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
			}
		}
	})
	return found
}

func rangesOverChannel(pass *lintkit.Pass, rng *ast.RangeStmt) bool {
	t := pass.TypesInfo.TypeOf(rng.X)
	if t == nil {
		return false
	}
	_, isChan := t.Underlying().(*types.Chan)
	return isChan
}
