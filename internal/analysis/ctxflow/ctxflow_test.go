package ctxflow_test

import (
	"testing"

	"leapme/internal/analysis/ctxflow"
	"leapme/internal/analysis/lintkit/lintest"
)

func TestPositiveFixtures(t *testing.T) {
	lintest.Run(t, ctxflow.Analyzer, "testdata/pos", "leapme/internal/core")
}

func TestNegativeFixtures(t *testing.T) {
	lintest.Run(t, ctxflow.Analyzer, "testdata/neg", "leapme/internal/core")
}
