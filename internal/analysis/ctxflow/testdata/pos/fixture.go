// Positive ctxflow fixtures. Each rule has a violating form (want) and
// a sanctioned form that must stay silent.
package fixture

import "context"

// Rule 1: a named ctx parameter the body never consults.
func deadParam(ctx context.Context, n int) int { // want `deadParam takes a context\.Context but never consults`
	return n * 2
}

// Discarding explicitly with _ says so in the signature: legal.
func discards(_ context.Context, n int) int { return n }

// Forwarding ctx to a callee counts as consulting it.
func forwards(ctx context.Context, n int) error {
	return work(ctx, n)
}

func work(ctx context.Context, n int) error {
	_ = n
	return ctx.Err()
}

// Rule 2: unbounded and channel loops in ctx-holding functions.
func spinner(ctx context.Context, ch chan int) {
	_ = ctx.Err() // rule 1 satisfied; the loop below still ignores ctx
	for {         // want `unbounded loop ignores the function's ctx`
		<-ch
	}
}

func drain(ctx context.Context, ch chan int) int {
	_ = ctx.Err()
	total := 0
	for v := range ch { // want `channel loop ignores the function's ctx`
		total += v
	}
	return total
}

// The sanctioned shape: select on ctx.Done inside the loop.
func polite(ctx context.Context, ch chan int) {
	for {
		select {
		case <-ctx.Done():
			return
		case v := <-ch:
			_ = v
		}
	}
}

// Bounded data loops are not flagged: cancellation lives at the
// enclosing pipeline stage.
func bounded(ctx context.Context, xs []int) (int, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	sum := 0
	for _, x := range xs {
		sum += x
	}
	return sum, nil
}

// Rule 3: minted root contexts.
func mintsInLoop(ids []int, f func(context.Context, int)) {
	for _, id := range ids {
		f(context.Background(), id) // want `context\.Background\(\) minted inside a loop`
	}
}

func Detached(n int) error { // exported, takes no ctx
	return work(context.Background(), n) // want `context\.Background\(\) in exported Detached`
}

// Unexported, outside a loop: a process-root idiom, legal.
func root(n int) error {
	return work(context.Background(), n)
}
