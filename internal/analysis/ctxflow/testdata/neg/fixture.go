// Negative ctxflow fixtures: cancellation-correct code that must stay
// silent.
package fixture

import "context"

func pump(ctx context.Context, in <-chan int, out chan<- int) error {
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case v, ok := <-in:
			if !ok {
				return nil
			}
			select {
			case out <- v:
			case <-ctx.Done():
				return ctx.Err()
			}
		}
	}
}

func aggregate(ctx context.Context, xs []float64) (float64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum, nil
}

// Exported and ctx-less, so rule 3 would fire — the annotation
// documents the root and suppresses it.
//
//lint:allow ctxflow fixture process root: the one place a context is minted
func AnnotatedRoot() context.Context { return context.Background() }
