package core

import (
	"bytes"
	"context"
	"encoding/binary"
	"hash/crc32"
	"math"
	"strings"
	"testing"

	"leapme/internal/features"
	"leapme/internal/mathx"
	"leapme/internal/nn"
)

// quantScoreTol is the documented serving tolerance for the int8 path
// on real trained models; the nn suite pins the same bound on random
// networks.
const quantScoreTol = 0.05

// quantize flips a trained matcher to the quantised serving path the
// way Options.Quantized would at train time.
func quantize(t *testing.T, m *Matcher) {
	t.Helper()
	if m.net == nil {
		t.Fatal("quantize on untrained matcher")
	}
	m.opts.Quantized = true
	m.qk = nn.NewQuantKernel(m.net)
}

func TestOptionsQuantizedBuildsKernel(t *testing.T) {
	d := smallDataset(t, 51)
	store := getStore(t)
	opts := DefaultOptions(51)
	opts.Quantized = true
	m, err := NewMatcher(store, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.ComputeFeatures(context.Background(), d); err != nil {
		t.Fatal(err)
	}
	pairs := TrainingPairs(d.Props, 2, mathx.NewRand(51))
	if _, err := m.Train(context.Background(), pairs); err != nil {
		t.Fatal(err)
	}
	if m.qk == nil {
		t.Fatal("Train with Options.Quantized did not build a quant kernel")
	}
	sc, err := m.NewScorer()
	if err != nil {
		t.Fatal(err)
	}
	if !sc.Quantized() {
		t.Error("scorer from quantised matcher is not quantised")
	}
}

// TestScorerQuantEquivalence compares the quantised scorer against the
// float64 reference scorer on a real trained model: every score within
// quantScoreTol, match decisions near-always identical, and the quant
// batch path bit-identical to the quant single path.
func TestScorerQuantEquivalence(t *testing.T) {
	m, pairs := trainedScorerMatcher(t, 52)
	ref, err := m.NewScorer()
	if err != nil {
		t.Fatal(err)
	}
	quantize(t, m)
	qs, err := m.NewScorer()
	if err != nil {
		t.Fatal(err)
	}
	if ref.Quantized() || !qs.Quantized() {
		t.Fatalf("quantized flags: ref=%v quant=%v", ref.Quantized(), qs.Quantized())
	}
	n := 16
	as := make([]*features.Prop, 0, n)
	bs := make([]*features.Prop, 0, n)
	for _, lp := range pairs[:n] {
		pa, _ := m.prop(lp.A)
		pb, _ := m.prop(lp.B)
		as, bs = append(as, pa), append(bs, pb)
	}
	want := make([]float64, n)
	got := make([]float64, n)
	if err := ref.ScoreBatch(want, as, bs); err != nil {
		t.Fatal(err)
	}
	if err := qs.ScoreBatch(got, as, bs); err != nil {
		t.Fatal(err)
	}
	if !mathx.VecAlmostEqual(got, want, quantScoreTol) {
		t.Fatalf("quant scores diverge beyond %v:\n%v\nvs\n%v", quantScoreTol, got, want)
	}
	for i := range as {
		single, err := qs.Score(as[i], bs[i])
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(single) != math.Float64bits(got[i]) {
			t.Fatalf("quant batch pair %d diverges from quant single: %v vs %v", i, got[i], single)
		}
	}
}

// TestScorerZeroAllocs pins the warm library scoring path at zero heap
// allocations per call, for both the float64 reference kernel and the
// quantised kernel — the core half of the tentpole's alloc gate (the
// serve package pins the batcher on top of this).
func TestScorerZeroAllocs(t *testing.T) {
	m, pairs := trainedScorerMatcher(t, 53)
	n := 32
	as := make([]*features.Prop, 0, n)
	bs := make([]*features.Prop, 0, n)
	for i := 0; i < n; i++ {
		lp := pairs[i%len(pairs)]
		pa, _ := m.prop(lp.A)
		pb, _ := m.prop(lp.B)
		as, bs = append(as, pa), append(bs, pb)
	}
	dst := make([]float64, n)
	check := func(name string, sc *Scorer) {
		t.Helper()
		// Warm: first calls grow the batch arenas and the edit scratch to
		// the longest names in the batch; after that the path must stay
		// off the heap entirely.
		if _, err := sc.Score(as[0], bs[0]); err != nil {
			t.Fatal(err)
		}
		if err := sc.ScoreBatch(dst, as, bs); err != nil {
			t.Fatal(err)
		}
		if allocs := testing.AllocsPerRun(50, func() {
			if _, err := sc.Score(as[0], bs[0]); err != nil {
				t.Error(err)
			}
		}); allocs != 0 {
			t.Errorf("%s: warm Score allocates %v times per call, want 0", name, allocs)
		}
		if allocs := testing.AllocsPerRun(50, func() {
			if err := sc.ScoreBatch(dst, as, bs); err != nil {
				t.Error(err)
			}
		}); allocs != 0 {
			t.Errorf("%s: warm ScoreBatch allocates %v times per %d-pair batch, want 0", name, allocs, n)
		}
	}
	sc, err := m.NewScorer()
	if err != nil {
		t.Fatal(err)
	}
	check("float64", sc)
	quantize(t, m)
	qsc, err := m.NewScorer()
	if err != nil {
		t.Fatal(err)
	}
	check("quant", qsc)
}

// TestQuantModelRoundTrip saves a quantised trained model and loads it
// into a fresh matcher: the file must self-describe as quantised, the
// reloaded scorer must run the int8 path, and its scores must be
// bit-identical to the pre-save quant scorer (quantisation happens once,
// at save time — never re-derived at load).
func TestQuantModelRoundTrip(t *testing.T) {
	m, pairs := trainedScorerMatcher(t, 54)
	quantize(t, m)
	var buf bytes.Buffer
	if err := m.WriteModel(&buf); err != nil {
		t.Fatal(err)
	}
	info, err := LoadInfo(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !info.Quantized {
		t.Fatal("LoadInfo does not report the quantised flag")
	}
	if !strings.Contains(info.String(), "quantized") {
		t.Errorf("info.String() %q does not mention quantisation", info.String())
	}

	m2, _ := NewMatcher(getStore(t), DefaultOptions(1))
	d := smallDataset(t, 54)
	if err := m2.ComputeFeatures(context.Background(), d); err != nil {
		t.Fatal(err)
	}
	if err := m2.ReadModel(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if m2.qk == nil || !m2.opts.Quantized {
		t.Fatal("reloaded matcher lost the quant kernel")
	}
	sc1, err := m.NewScorer()
	if err != nil {
		t.Fatal(err)
	}
	sc2, err := m2.NewScorer()
	if err != nil {
		t.Fatal(err)
	}
	for _, lp := range pairs[:8] {
		pa, _ := m.prop(lp.A)
		pb, _ := m.prop(lp.B)
		s1, err := sc1.Score(pa, pb)
		if err != nil {
			t.Fatal(err)
		}
		s2, err := sc2.Score(pa, pb)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(s1) != math.Float64bits(s2) {
			t.Fatalf("reloaded quant scorer diverges on %v × %v: %v vs %v", lp.A, lp.B, s1, s2)
		}
	}
	// Re-save must reproduce the file byte for byte.
	var buf2 bytes.Buffer
	if err := m2.WriteModel(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("quantised model load→save round trip changed the bytes")
	}
}

// modelPayload strips the envelope (magic, version, length) and trailing
// CRC from a serialised model, returning a mutable payload copy.
func modelPayload(t *testing.T, data []byte) []byte {
	t.Helper()
	head := len(matcherMagic) + 4 + 8
	if len(data) < head+4 {
		t.Fatalf("model file too short: %d bytes", len(data))
	}
	return append([]byte(nil), data[head:len(data)-4]...)
}

// rebuildEnvelope re-wraps a (possibly mutated) payload with a correct
// length and CRC, so corruption tests exercise the descriptor and block
// parsers rather than the checksum.
func rebuildEnvelope(payload []byte) []byte {
	var out bytes.Buffer
	out.WriteString(matcherMagic)
	buf := make([]byte, 8)
	binary.LittleEndian.PutUint32(buf[:4], modelVersion)
	out.Write(buf[:4])
	binary.LittleEndian.PutUint64(buf, uint64(len(payload)))
	out.Write(buf)
	out.Write(payload)
	binary.LittleEndian.PutUint32(buf[:4], crc32.ChecksumIEEE(payload))
	out.Write(buf[:4])
	return out.Bytes()
}

// TestQuantDescriptorFailsClosed: every way the quantisation descriptor
// can lie about the payload must be a load error — for ReadModel AND
// LoadInfo — never a model that silently scores through some other path.
func TestQuantDescriptorFailsClosed(t *testing.T) {
	m := goldenMatcher(t)
	quantize(t, m)
	var qbuf bytes.Buffer
	if err := m.WriteModel(&qbuf); err != nil {
		t.Fatal(err)
	}
	plain := goldenMatcher(t)
	var pbuf bytes.Buffer
	if err := plain.WriteModel(&pbuf); err != nil {
		t.Fatal(err)
	}
	dim := m.PairDim()
	// Payload offsets: 8-byte descriptor, 4-byte standardiser length,
	// dim×16 standardiser, then the 8-byte quant block length prefix.
	quantLenOff := 8 + 4 + dim*16
	quantBlockOff := quantLenOff + 8

	cases := []struct {
		name    string
		data    []byte
		wantSub string
	}{
		{
			name: "quant bit set without a block",
			data: func() []byte {
				p := modelPayload(t, pbuf.Bytes())
				p[0] |= featBitQuantized
				return rebuildEnvelope(p)
			}(),
			// The nn magic bytes get misread as a block length.
			wantSub: "quantised block",
		},
		{
			name: "unknown descriptor bit",
			data: func() []byte {
				p := modelPayload(t, qbuf.Bytes())
				p[0] |= 1 << 5
				return rebuildEnvelope(p)
			}(),
			wantSub: "unknown feature bits",
		},
		{
			name: "implausible quant block length",
			data: func() []byte {
				p := modelPayload(t, qbuf.Bytes())
				binary.LittleEndian.PutUint64(p[quantLenOff:], 1<<40)
				return rebuildEnvelope(p)
			}(),
			wantSub: "quantised block length",
		},
		{
			name: "corrupt quant kernel magic",
			data: func() []byte {
				p := modelPayload(t, qbuf.Bytes())
				p[quantBlockOff] ^= 0xff
				return rebuildEnvelope(p)
			}(),
			wantSub: "quant magic",
		},
		{
			name: "quant block truncating the kernel",
			data: func() []byte {
				p := modelPayload(t, qbuf.Bytes())
				blen := binary.LittleEndian.Uint64(p[quantLenOff:])
				binary.LittleEndian.PutUint64(p[quantLenOff:], blen-2)
				return rebuildEnvelope(p)
			}(),
			wantSub: "quant",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := LoadInfo(bytes.NewReader(tc.data)); err == nil {
				t.Error("LoadInfo accepted a corrupt quant descriptor")
			} else if !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("LoadInfo error %q does not contain %q", err, tc.wantSub)
			}
			fresh := goldenMatcher(t)
			fresh.net, fresh.qk, fresh.featMean, fresh.featInvStd = nil, nil, nil, nil
			if err := fresh.ReadModel(bytes.NewReader(tc.data)); err == nil {
				t.Error("ReadModel accepted a corrupt quant descriptor")
			}
			if fresh.net != nil || fresh.qk != nil {
				t.Error("matcher modified by a failed load")
			}
		})
	}
}
