package core

import (
	"bytes"
	"context"
	"math"
	"testing"

	"leapme/internal/dataset"
	"leapme/internal/mathx"
)

// trainAt trains a full matcher pipeline — features, pairs, network — on
// the shared small dataset with the given worker setting and returns the
// serialized model plus the scored test pairs.
func trainAt(t *testing.T, workers int) ([]byte, []ScoredPair) {
	t.Helper()
	d := smallDataset(t, 5)
	opts := DefaultOptions(42)
	opts.Hidden = []int{16, 8}
	opts.Workers = workers
	m, err := NewMatcher(getStore(t), opts)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := m.ComputeFeatures(ctx, d); err != nil {
		t.Fatal(err)
	}
	pairs := TrainingPairs(d.Props, 2, mathx.NewRand(42))
	if len(pairs) == 0 {
		t.Fatal("no training pairs")
	}
	if _, err := m.Train(ctx, pairs); err != nil {
		t.Fatalf("Train(workers=%d): %v", workers, err)
	}
	var buf bytes.Buffer
	if err := m.WriteModel(&buf); err != nil {
		t.Fatal(err)
	}
	var scored []ScoredPair
	if err := m.MatchAll(ctx, d.Props, func(sp ScoredPair) {
		scored = append(scored, sp)
	}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), scored
}

// TestPipelineDeterminismAcrossWorkerCounts is the acceptance gate of the
// parallel pipeline: with a fixed seed, -workers=1 and -workers=8 must
// produce bit-identical model weights AND bit-identical positive-class
// scores for every pair.
func TestPipelineDeterminismAcrossWorkerCounts(t *testing.T) {
	refModel, refScores := trainAt(t, 1)
	for _, w := range []int{8} {
		model, scores := trainAt(t, w)
		if !bytes.Equal(refModel, model) {
			t.Fatalf("workers=%d: serialized model differs from workers=1", w)
		}
		if len(scores) != len(refScores) {
			t.Fatalf("workers=%d: %d scored pairs, want %d", w, len(scores), len(refScores))
		}
		for i := range refScores {
			if scores[i].A != refScores[i].A || scores[i].B != refScores[i].B {
				t.Fatalf("workers=%d: pair order diverged at %d", w, i)
			}
			if math.Float64bits(scores[i].Score) != math.Float64bits(refScores[i].Score) {
				t.Fatalf("workers=%d: score for %s×%s = %x, want %x",
					w, scores[i].A, scores[i].B,
					scores[i].Score, refScores[i].Score)
			}
		}
	}
}

// TestComputeFeaturesDeterminismAcrossWorkerCounts: the feature vectors
// themselves must be worker-count independent (ordered merge).
func TestComputeFeaturesDeterminismAcrossWorkerCounts(t *testing.T) {
	d := smallDataset(t, 3)
	vecs := func(workers int) map[dataset.Key][]float64 {
		opts := DefaultOptions(1)
		opts.Workers = workers
		m, err := NewMatcher(getStore(t), opts)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.ComputeFeatures(context.Background(), d); err != nil {
			t.Fatal(err)
		}
		out := map[dataset.Key][]float64{}
		for k, p := range m.props {
			out[k] = p.Vec
		}
		return out
	}
	ref := vecs(1)
	for _, w := range []int{4, -1} {
		got := vecs(w)
		if len(got) != len(ref) {
			t.Fatalf("workers=%d: %d props, want %d", w, len(got), len(ref))
		}
		for k, rv := range ref {
			gv, ok := got[k]
			if !ok {
				t.Fatalf("workers=%d: property %s missing", w, k)
			}
			for i := range rv {
				if math.Float64bits(gv[i]) != math.Float64bits(rv[i]) {
					t.Fatalf("workers=%d: %s Vec[%d] bit mismatch", w, k, i)
				}
			}
		}
	}
}
