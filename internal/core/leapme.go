// Package core implements LEAPME itself (Algorithm 1 of the paper):
// LEArning-based Property Matching with Embeddings.
//
// The pipeline is exactly the paper's five steps:
//
//  1. initialise the feature stores;
//  2. compute instance features for every property instance (iFeatures);
//  3. aggregate them per property and add name features (pFeatures);
//  4. compute features for property pairs (ppFeatures);
//  5. train a dense neural network on the labeled pairs and classify the
//     unlabeled ones, emitting a similarity score per pair (the network's
//     positive-class probability), which forms a similarity graph.
//
// The Matcher retains the trained network, so it can score previously
// unseen property pairs and be transferred across datasets (the paper's
// transfer-learning experiment).
package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"

	"leapme/internal/dataset"
	"leapme/internal/embedding"
	"leapme/internal/features"
	"leapme/internal/guard"
	"math"

	"leapme/internal/nn"
)

// Options configures a Matcher.
type Options struct {
	// Features selects the feature configuration (default: all features).
	Features features.Config
	// Hidden are the hidden-layer widths (default: the paper's {128, 64}).
	Hidden []int
	// Schedule is the LR schedule (default: the paper's staged schedule).
	Schedule []nn.Phase
	// BatchSize for training (default 32, as in the paper).
	BatchSize int
	// MaxValues caps instance values aggregated per property (0 = all).
	MaxValues int
	// Threshold converts scores to match decisions (default 0.5).
	Threshold float64
	// WeightDecay applies AdamW-style decoupled weight decay during
	// training (0, the paper's configuration, disables it). Non-zero
	// values regularise the network's overconfidence on small training
	// sets; see the ablation bench.
	WeightDecay float64
	// Quantized additionally builds an int8 quantised kernel after
	// training and embeds it in saved models (the v3 descriptor flag).
	// Scorers taken from a quantised matcher run the int8/float32
	// forward pass; the float64 network is always retained as the
	// reference and the default for everything else (training, Matcher
	// scoring, explanations). Off by default.
	Quantized bool
	// NoStandardize disables z-score standardisation of pair features
	// (fitted on the training pairs, applied everywhere). Standardisation
	// is on by default: the meta-feature counts live on a ~30× larger
	// scale than embedding differences and would otherwise dominate the
	// early epochs of the paper's fixed LR schedule.
	NoStandardize bool
	// Seed drives weight init, shuffling, and negative sampling.
	Seed int64
	// Workers sets the parallelism of featurization and training. 0 (the
	// default) keeps the legacy behaviour: featurization fans out over
	// all CPUs (it is a pure map with an ordered merge, so the result is
	// worker-count independent), while nn.Fit stays on the serial path
	// that historical seeds reproduce. Any value ≥ 1 additionally
	// switches training to the deterministic chunked gradient path, which
	// is bit-identical across all worker counts (Workers=1 ≡ Workers=8).
	// Negative means one worker per CPU.
	Workers int
}

// DefaultOptions returns the paper's configuration.
func DefaultOptions(seed int64) Options {
	return Options{
		Features:  features.FullConfig(),
		Hidden:    []int{128, 64},
		Schedule:  nn.PaperSchedule(),
		BatchSize: 32,
		Threshold: 0.5,
		Seed:      seed,
	}
}

// LabeledPair is a training example: a property pair and whether it is a
// true match.
type LabeledPair struct {
	A, B  dataset.Key
	Match bool
}

// ScoredPair is a classified property pair: the similarity score is the
// network's positive-class probability; Match applies the threshold.
type ScoredPair struct {
	A, B  dataset.Key
	Score float64
	Match bool
}

// Matcher is a trained (or trainable) LEAPME property matcher.
type Matcher struct {
	opts   Options
	ex     *features.Extractor
	pairer *features.Pairer
	props  map[dataset.Key]*features.Prop
	net    *nn.Network
	// qk is the optional int8 serving kernel, built when opts.Quantized
	// is set (or loaded from a quantised model file). Never used by the
	// matcher's own scoring paths — only Scorer snapshots read it.
	qk *nn.QuantKernel

	// Standardisation parameters fitted on the training pairs.
	featMean, featInvStd []float64

	// lastReport records per-unit failures of the most recent
	// ComputeFeatures or Match* run (see LastReport).
	lastReport *guard.Report
}

// NewMatcher builds a matcher over the given embedding store.
func NewMatcher(store *embedding.Store, opts Options) (*Matcher, error) {
	if store == nil {
		return nil, errors.New("core: nil embedding store")
	}
	if !opts.Features.Valid() {
		opts.Features = features.FullConfig()
	}
	if len(opts.Hidden) == 0 {
		opts.Hidden = []int{128, 64}
	}
	if len(opts.Schedule) == 0 {
		opts.Schedule = nn.PaperSchedule()
	}
	if opts.BatchSize <= 0 {
		opts.BatchSize = 32
	}
	if opts.Threshold <= 0 || opts.Threshold >= 1 {
		opts.Threshold = 0.5
	}
	ex := features.NewExtractor(store)
	ex.MaxValues = opts.MaxValues
	ex.Workers = opts.Workers
	pairer, err := features.NewPairer(ex, opts.Features)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return &Matcher{
		opts:   opts,
		ex:     ex,
		pairer: pairer,
		props:  map[dataset.Key]*features.Prop{},
	}, nil
}

// Options returns the matcher's effective options.
func (m *Matcher) Options() Options { return m.opts }

// Quantize builds the opt-in int8 serving kernel from the trained
// network and marks the model quantised: subsequent WriteModel calls
// embed the kernel and NewScorer runs it. It is the post-hoc form of
// Options.Quantized for a model that was trained or loaded without the
// flag. Quantisation is deterministic, so quantising the same model
// twice yields identical kernels (and identical saved bytes).
func (m *Matcher) Quantize() error {
	if m.net == nil {
		return errors.New("core: Quantize on untrained matcher")
	}
	m.qk = nn.NewQuantKernel(m.net)
	m.opts.Quantized = true
	return nil
}

// PairDim returns the classifier input dimension under the configured
// features.
func (m *Matcher) PairDim() int { return m.pairer.Dim() }

// ComputeFeatures runs steps 1–3 of Algorithm 1 for every property of d:
// instance features, aggregated into property features. It may be called
// for several datasets; properties accumulate in the matcher.
//
// Properties are featurized in parallel (the extractor and embedding
// store are read-only) under panic isolation: a panic while featurizing
// one property is recorded in LastReport and that property simply gets no
// features — scoring it later fails loudly — while the rest of the
// dataset proceeds. The returned error is non-nil only for hard failures:
// a nil dataset or a done context (prompt ctx.Err() propagation).
func (m *Matcher) ComputeFeatures(ctx context.Context, d *dataset.Dataset) error {
	if d == nil {
		return errors.New("core: ComputeFeatures on nil dataset")
	}
	values := d.InstancesByProperty()
	items := make([]features.PropertyInput, len(d.Props))
	for i, p := range d.Props {
		items[i] = features.PropertyInput{
			Name:   p.Name,
			Values: values[p.Key()],
			Label:  "featurize " + p.Key().String(),
		}
	}
	mat, rep, err := m.ex.FeatureMatrix(ctx, m.opts.Workers, items)
	m.lastReport = rep
	for i, p := range mat.Props {
		if p != nil {
			m.props[d.Props[i].Key()] = p
		}
	}
	return err
}

// LastReport returns the per-unit failure report of the most recent
// ComputeFeatures or Match* call on this matcher (nil before the first).
// A run proceeds past failed units; callers decide whether the failure
// rate recorded here is acceptable.
func (m *Matcher) LastReport() *guard.Report { return m.lastReport }

// NumProperties returns how many properties have computed features.
func (m *Matcher) NumProperties() int { return len(m.props) }

// AdoptFeatures shares src's computed property features instead of
// recomputing them. Property feature vectors are config-independent (the
// Pairer selects blocks at pair time), so matchers with different feature
// configurations can share them as long as both use the same embedding
// dimension. The feature map is shared, not copied: ComputeFeatures on
// either matcher afterwards is visible to both.
func (m *Matcher) AdoptFeatures(src *Matcher) error {
	if src == nil {
		return errors.New("core: AdoptFeatures from nil matcher")
	}
	if m.ex.PropertyDim() != src.ex.PropertyDim() {
		return fmt.Errorf("core: AdoptFeatures dimension mismatch: %d vs %d",
			m.ex.PropertyDim(), src.ex.PropertyDim())
	}
	m.props = src.props
	return nil
}

// prop fetches a property's features, failing loudly on unknown keys —
// scoring a property whose features were never computed is a programming
// error at the call site.
func (m *Matcher) prop(k dataset.Key) (*features.Prop, error) {
	p, ok := m.props[k]
	if !ok {
		return nil, fmt.Errorf("core: no features computed for property %s (call ComputeFeatures first)", k)
	}
	return p, nil
}

// Train runs step 5a: it builds pair feature vectors for the labeled pairs
// and fits the network. It returns the final-epoch mean loss. Training is
// cancellable through ctx (checked between mini-batches) and recovers
// from loss divergence by checkpoint rollback with a backed-off learning
// rate (see nn.TrainConfig); a nil ctx behaves like context.Background().
func (m *Matcher) Train(ctx context.Context, pairs []LabeledPair) (float64, error) {
	if len(pairs) == 0 {
		return 0, errors.New("core: no training pairs")
	}
	// Pair vectors are emitted into one flat (n × dim) slab; xs holds row
	// views, so the standardizer and the legacy Fit path see the exact
	// slices they always did while the kernel path consumes the slab.
	dim := m.pairer.Dim()
	flat := make([]float64, len(pairs)*dim)
	xs := make([][]float64, 0, len(pairs))
	ys := make([]int, 0, len(pairs))
	for i, lp := range pairs {
		a, err := m.prop(lp.A)
		if err != nil {
			return 0, err
		}
		b, err := m.prop(lp.B)
		if err != nil {
			return 0, err
		}
		row := flat[i*dim : (i+1)*dim]
		m.pairer.PairVector(row, a, b)
		xs = append(xs, row)
		y := 0
		if lp.Match {
			y = 1
		}
		ys = append(ys, y)
	}
	m.fitStandardizer(xs)
	for _, x := range xs {
		m.standardize(x)
	}
	net, err := nn.New(nn.Config{
		InDim:      m.pairer.Dim(),
		Hidden:     m.opts.Hidden,
		Out:        2,
		Activation: nn.ActReLU,
		Seed:       m.opts.Seed,
	})
	if err != nil {
		return 0, fmt.Errorf("core: %w", err)
	}
	cfg := nn.TrainConfig{
		Schedule:    m.opts.Schedule,
		BatchSize:   m.opts.BatchSize,
		Optimizer:   nn.NewAdam(),
		WeightDecay: m.opts.WeightDecay,
		Seed:        m.opts.Seed,
		Workers:     m.opts.Workers,
	}
	var loss float64
	if m.opts.Workers == 0 {
		// Legacy serial gradient path, preserved bit-for-bit so
		// historical seeds keep reproducing.
		loss, err = net.Fit(ctx, xs, ys, cfg)
	} else {
		// Workers ≥ 1 selects the chunked path; the flat training kernel
		// is its drop-in replacement, bit-identical for every worker
		// count (pinned by the nn equivalence suite and the golden
		// determinism gate here).
		var k *nn.TrainKernel
		if k, err = nn.NewTrainKernel(net, cfg); err == nil {
			loss, err = k.Fit(ctx, flat, ys)
		}
	}
	if err != nil {
		return 0, fmt.Errorf("core: training: %w", err)
	}
	m.net = net
	m.qk = nil
	if m.opts.Quantized {
		m.qk = nn.NewQuantKernel(net)
	}
	return loss, nil
}

// Trained reports whether the matcher has a fitted network.
func (m *Matcher) Trained() bool { return m.net != nil }

// Score classifies a single property pair (step 5b for one pair).
func (m *Matcher) Score(a, b dataset.Key) (ScoredPair, error) {
	if m.net == nil {
		return ScoredPair{}, errors.New("core: matcher is not trained")
	}
	pa, err := m.prop(a)
	if err != nil {
		return ScoredPair{}, err
	}
	pb, err := m.prop(b)
	if err != nil {
		return ScoredPair{}, err
	}
	vec := make([]float64, m.pairer.Dim())
	m.pairer.PairVector(vec, pa, pb)
	m.standardize(vec)
	s, err := m.net.PositiveScore(vec)
	if err != nil {
		return ScoredPair{}, fmt.Errorf("core: %w", err)
	}
	return ScoredPair{A: a, B: b, Score: s, Match: s >= m.opts.Threshold}, nil
}

// MatchAll runs step 5b over every cross-source pair of props, streaming
// each scored pair to fn. Pair vectors are computed into a reused buffer,
// so memory stays constant regardless of the quadratic pair count.
func (m *Matcher) MatchAll(ctx context.Context, props []dataset.Property, fn func(ScoredPair)) error {
	return m.MatchWhere(ctx, props, nil, fn)
}

// scoreUnit scores one property pair into the reused vec buffer and
// streams the result to fn — the unit of failure for panic isolation.
func (m *Matcher) scoreUnit(vec []float64, a, b dataset.Key, pa, pb *features.Prop, fn func(ScoredPair)) error {
	m.pairer.PairVector(vec, pa, pb)
	m.standardize(vec)
	s, err := m.net.PositiveScore(vec)
	if err != nil {
		return err
	}
	fn(ScoredPair{A: a, B: b, Score: s, Match: s >= m.opts.Threshold})
	return nil
}

// MatchWhere is MatchAll restricted to cross-source pairs for which
// include returns true (nil includes everything). The evaluation protocol
// uses it to classify exactly the pairs not wholly inside the training
// sources, as the paper prescribes.
//
// The unit of failure is one pair: a panic while scoring a pair or inside
// the fn callback is contained, recorded in LastReport, and enumeration
// continues — the run degrades gracefully rather than aborting. Hard
// errors still abort: a missing property (features never computed) is a
// caller bug, and a done ctx stops the run within one pair with ctx.Err().
// A nil ctx behaves like context.Background().
func (m *Matcher) MatchWhere(ctx context.Context, props []dataset.Property, include func(a, b dataset.Property) bool, fn func(ScoredPair)) error {
	if m.net == nil {
		return errors.New("core: matcher is not trained")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	rep := guard.NewReport()
	m.lastReport = rep
	vec := make([]float64, m.pairer.Dim())
	var err error
	dataset.CrossSourcePairs(props, func(a, b dataset.Property) bool {
		if err = ctx.Err(); err != nil {
			return false
		}
		if include != nil && !include(a, b) {
			return true
		}
		var pa, pb *features.Prop
		if pa, err = m.prop(a.Key()); err != nil {
			return false
		}
		if pb, err = m.prop(b.Key()); err != nil {
			return false
		}
		ka, kb := a.Key(), b.Key()
		rep.Do(ka.String()+" × "+kb.String(), func() error {
			return m.scoreUnit(vec, ka, kb, pa, pb, fn)
		})
		return true
	})
	return err
}

// MatchCandidates scores exactly the given candidate pairs (e.g. from a
// blocker) instead of the full cross product, streaming each scored pair
// to fn. Features for both endpoints must have been computed. Failure
// semantics match MatchWhere: per-pair panics are isolated into
// LastReport, unknown properties and a done ctx abort.
func (m *Matcher) MatchCandidates(ctx context.Context, cands []dataset.Pair, fn func(ScoredPair)) error {
	if m.net == nil {
		return errors.New("core: matcher is not trained")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	rep := guard.NewReport()
	m.lastReport = rep
	vec := make([]float64, m.pairer.Dim())
	for _, c := range cands {
		if err := ctx.Err(); err != nil {
			return err
		}
		pa, err := m.prop(c.A)
		if err != nil {
			return err
		}
		pb, err := m.prop(c.B)
		if err != nil {
			return err
		}
		c := c
		rep.Do(c.A.String()+" × "+c.B.String(), func() error {
			return m.scoreUnit(vec, c.A, c.B, pa, pb, fn)
		})
	}
	return nil
}

// Matches collects the pairs MatchAll classifies as matches — the
// similarity graph Sim of Algorithm 1, keeping only positive edges.
func (m *Matcher) Matches(ctx context.Context, props []dataset.Property) ([]ScoredPair, error) {
	var out []ScoredPair
	err := m.MatchAll(ctx, props, func(sp ScoredPair) {
		if sp.Match {
			out = append(out, sp)
		}
	})
	return out, err
}

// fitStandardizer computes per-dimension mean and inverse standard
// deviation from the training pair vectors.
func (m *Matcher) fitStandardizer(xs [][]float64) {
	if m.opts.NoStandardize {
		m.featMean, m.featInvStd = nil, nil
		return
	}
	dim := m.pairer.Dim()
	mean := make([]float64, dim)
	for _, x := range xs {
		for i, v := range x {
			mean[i] += v
		}
	}
	n := float64(len(xs))
	for i := range mean {
		mean[i] /= n
	}
	invStd := make([]float64, dim)
	for _, x := range xs {
		for i, v := range x {
			d := v - mean[i]
			invStd[i] += d * d
		}
	}
	for i := range invStd {
		sd := math.Sqrt(invStd[i] / n)
		if sd < 1e-9 {
			invStd[i] = 0 // constant feature: standardises to 0
		} else {
			invStd[i] = 1 / sd
		}
	}
	m.featMean, m.featInvStd = mean, invStd
}

// standardize applies the fitted z-score transform in place (no-op when
// standardisation is disabled or not yet fitted).
func (m *Matcher) standardize(x []float64) {
	if m.featMean == nil {
		return
	}
	for i := range x {
		x[i] = (x[i] - m.featMean[i]) * m.featInvStd[i]
	}
}

// TrainingPairs builds a labeled training set from ground-truth properties
// in the paper's regime: every cross-source matching pair is a positive;
// negRatio random non-matching cross-source pairs are sampled per positive
// (the paper uses negRatio = 2).
func TrainingPairs(props []dataset.Property, negRatio int, rng *rand.Rand) []LabeledPair {
	if negRatio < 0 {
		negRatio = 2
	}
	var out []LabeledPair
	pos := dataset.MatchingPairs(props)
	for _, p := range pos {
		out = append(out, LabeledPair{A: p.A, B: p.B, Match: true})
	}
	want := len(pos) * negRatio
	seen := map[dataset.Pair]bool{}
	for _, p := range pos {
		seen[p] = true
	}
	// Rejection-sample negatives; bail out if the space is too small.
	maxAttempts := want*20 + 100
	for n, attempts := 0, 0; n < want && attempts < maxAttempts; attempts++ {
		i, j := rng.Intn(len(props)), rng.Intn(len(props))
		a, b := props[i], props[j]
		if i == j || a.Source == b.Source || dataset.Matching(a, b) {
			continue
		}
		pair := dataset.Pair{A: a.Key(), B: b.Key()}.Canonical()
		if seen[pair] {
			continue
		}
		seen[pair] = true
		out = append(out, LabeledPair{A: pair.A, B: pair.B, Match: false})
		n++
	}
	return out
}

// Shuffle randomises training pair order in place (deterministic in rng).
func Shuffle(pairs []LabeledPair, rng *rand.Rand) {
	rng.Shuffle(len(pairs), func(i, j int) { pairs[i], pairs[j] = pairs[j], pairs[i] })
}
