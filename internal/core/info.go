package core

import (
	"bytes"
	"fmt"
	"io"
	"os"

	"leapme/internal/features"
	"leapme/internal/nn"
)

// ModelInfo describes a model file without instantiating a matcher: the
// serving registry and the /v1/models endpoint use it to report what a
// file contains and to construct a matcher with the right feature
// configuration before loading the weights.
type ModelInfo struct {
	// FormatVersion is the on-disk format version (2 or 3).
	FormatVersion int
	// HasDescriptor reports whether the file self-describes its feature
	// configuration and embedding dimension (v3+). For v2 files Features
	// and EmbeddingDim are zero and the caller must know the training
	// configuration out of band.
	HasDescriptor bool
	// Features is the feature configuration the model was trained with
	// (v3+ only).
	Features features.Config
	// EmbeddingDim is the embedding store dimension the model was trained
	// against (v3+ only).
	EmbeddingDim int
	// Standardized reports whether the file carries fitted z-score
	// parameters for the pair features.
	Standardized bool
	// Quantized reports whether the file embeds an int8 quantised kernel
	// (v3+ descriptor flag); the float64 network is always present too.
	Quantized bool
	// InDim is the classifier input (pair-vector) dimension.
	InDim int
	// Hidden lists the hidden-layer widths.
	Hidden []int
	// OutDim is the number of output classes (2 for LEAPME).
	OutDim int
	// PayloadBytes is the checksummed payload size.
	PayloadBytes int
	// CRC is the payload's CRC-32 (IEEE) — a cheap content fingerprint
	// for cache keys and model listings.
	CRC uint32
}

// String renders a one-line summary for listings and logs.
func (i ModelInfo) String() string {
	feat := "unknown"
	if i.HasDescriptor {
		feat = i.Features.String()
	}
	quant := ""
	if i.Quantized {
		quant = " quantized"
	}
	return fmt.Sprintf("v%d features=%s embed=%d in=%d hidden=%v out=%d crc=%08x%s",
		i.FormatVersion, feat, i.EmbeddingDim, i.InDim, i.Hidden, i.OutDim, i.CRC, quant)
}

// LoadInfo reads a model file's metadata — format version, feature
// configuration, dimensions, checksum — without building a matcher or
// retaining the weights. The whole payload is read so the checksum is
// verified exactly as ReadModel would; corrupt files are rejected here
// rather than surfacing later at load time.
func LoadInfo(r io.Reader) (ModelInfo, error) {
	version, payload, crc, err := readEnvelope(r)
	if err != nil {
		return ModelInfo{}, err
	}
	info := ModelInfo{
		FormatVersion: version,
		PayloadBytes:  len(payload),
		CRC:           crc,
	}
	pr := bytes.NewReader(payload)
	if version >= 3 {
		fc, embedDim, quantized, err := readDescriptor(pr)
		if err != nil {
			return ModelInfo{}, err
		}
		info.HasDescriptor = true
		info.Features = fc
		info.EmbeddingDim = embedDim
		info.Quantized = quantized
	}
	mean, _, err := readStandardiser(pr, -1)
	if err != nil {
		return ModelInfo{}, err
	}
	info.Standardized = mean != nil
	if info.Quantized {
		// Parse (not just skip) the block so LoadInfo rejects a corrupt
		// quantised kernel exactly as ReadModel would.
		if _, err := readQuantBlock(pr); err != nil {
			return ModelInfo{}, err
		}
	}
	net, err := nn.Read(pr)
	if err != nil {
		return ModelInfo{}, fmt.Errorf("core: reading network: %w", err)
	}
	info.InDim = net.InDim()
	info.Hidden = net.Hidden()
	info.OutDim = net.OutDim()
	return info, nil
}

// LoadInfoFile is LoadInfo over a file path.
func LoadInfoFile(path string) (ModelInfo, error) {
	f, err := os.Open(path)
	if err != nil {
		return ModelInfo{}, err
	}
	defer f.Close()
	return LoadInfo(f)
}
