package core

import (
	"context"
	"strings"
	"testing"

	"leapme/internal/dataset"
	"leapme/internal/mathx"
)

func trainedMatcherFor(t *testing.T, seed int64) (*Matcher, *dataset.Dataset) {
	t.Helper()
	d := smallDataset(t, seed)
	m, err := NewMatcher(getStore(t), DefaultOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	m.ComputeFeatures(context.Background(), d)
	pairs := TrainingPairs(d.Props, 2, mathx.NewRand(1))
	if _, err := m.Train(context.Background(), pairs); err != nil {
		t.Fatal(err)
	}
	return m, d
}

func TestExplain(t *testing.T) {
	m, d := trainedMatcherFor(t, 8)

	// Pick a ground-truth matching pair and a non-matching pair.
	var match, nonMatch dataset.Pair
	dataset.CrossSourcePairs(d.Props, func(a, b dataset.Property) bool {
		if dataset.Matching(a, b) && match.A.Source == "" {
			match = dataset.Pair{A: a.Key(), B: b.Key()}
		}
		if !dataset.Matching(a, b) && a.Ref == "" && b.Ref == "" && nonMatch.A.Source == "" {
			nonMatch = dataset.Pair{A: a.Key(), B: b.Key()}
		}
		return match.A.Source == "" || nonMatch.A.Source == ""
	})

	ex, err := m.Explain(match.A, match.B)
	if err != nil {
		t.Fatal(err)
	}
	// Four feature groups under the full config.
	if len(ex.Contributions) != 4 {
		t.Fatalf("contributions = %d, want 4", len(ex.Contributions))
	}
	names := map[string]bool{}
	for _, c := range ex.Contributions {
		names[c.Block] = true
	}
	for _, want := range []string{"instance-meta", "instance-embedding", "name-embedding", "name-distances"} {
		if !names[want] {
			t.Errorf("missing block %q", want)
		}
	}
	// Contributions sorted by descending magnitude.
	for i := 1; i < len(ex.Contributions); i++ {
		a, b := ex.Contributions[i-1].Delta, ex.Contributions[i].Delta
		if abs(a) < abs(b) {
			t.Errorf("contributions not sorted: %v before %v", a, b)
		}
	}
	if s := ex.String(); !strings.Contains(s, "name-embedding") || !strings.Contains(s, "score") {
		t.Errorf("String = %q", s)
	}

	// The explanation score equals the Score API.
	sp, err := m.Score(match.A, match.B)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Score != ex.Score {
		t.Errorf("Explain score %v != Score %v", ex.Score, sp.Score)
	}
}

func TestExplainRequiresTraining(t *testing.T) {
	d := smallDataset(t, 9)
	m, _ := NewMatcher(getStore(t), DefaultOptions(1))
	m.ComputeFeatures(context.Background(), d)
	if _, err := m.Explain(d.Props[0].Key(), d.Props[1].Key()); err == nil {
		t.Error("untrained Explain accepted")
	}
}

func TestExplainUnknownProperty(t *testing.T) {
	m, d := trainedMatcherFor(t, 10)
	if _, err := m.Explain(dataset.Key{Source: "x", Name: "y"}, d.Props[0].Key()); err == nil {
		t.Error("unknown property accepted")
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
