package core

import (
	"context"
	"errors"
	"strings"
	"testing"

	"leapme/internal/dataset"
	"leapme/internal/guard"
	"leapme/internal/mathx"
)

// trainedTestMatcher builds a trained matcher over the given dataset.
func trainedTestMatcher(t *testing.T, d *dataset.Dataset) *Matcher {
	t.Helper()
	m, err := NewMatcher(getStore(t), DefaultOptions(4))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.ComputeFeatures(context.Background(), d); err != nil {
		t.Fatal(err)
	}
	pairs := TrainingPairs(d.Props, 2, mathx.NewRand(4))
	if _, err := m.Train(context.Background(), pairs); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestComputeFeaturesNilDataset(t *testing.T) {
	m, err := NewMatcher(getStore(t), DefaultOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.ComputeFeatures(context.Background(), nil); err == nil {
		t.Error("nil dataset accepted")
	}
}

func TestComputeFeaturesCancelled(t *testing.T) {
	d := smallDataset(t, 5)
	m, err := NewMatcher(getStore(t), DefaultOptions(5))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err = m.ComputeFeatures(ctx, d)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The report still accounts for whatever ran before cancellation.
	if m.LastReport() == nil {
		t.Error("no report recorded for the cancelled run")
	}
}

// TestMatchAllCancelsMidRun cancels from inside the streaming callback:
// the enumeration must stop within one work unit (no further callbacks)
// and surface context.Canceled.
func TestMatchAllCancelsMidRun(t *testing.T) {
	d := smallDataset(t, 4)
	m := trainedTestMatcher(t, d)

	ctx, cancel := context.WithCancel(context.Background())
	const stopAfter = 3
	calls := 0
	err := m.MatchAll(ctx, d.Props, func(ScoredPair) {
		calls++
		if calls == stopAfter {
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if calls != stopAfter {
		t.Errorf("callback ran %d times after cancellation at call %d", calls, stopAfter)
	}
}

// TestMatchAllPanicIsolated injects a panic into the scoring callback for
// one pair: the run must complete, score the remaining pairs, and record
// exactly that unit's failure (with the panic surfaced) in LastReport.
func TestMatchAllPanicIsolated(t *testing.T) {
	d := smallDataset(t, 4)
	m := trainedTestMatcher(t, d)

	// Baseline run to know the total pair count.
	total := 0
	if err := m.MatchAll(context.Background(), d.Props, func(ScoredPair) { total++ }); err != nil {
		t.Fatal(err)
	}
	if total < 10 {
		t.Fatalf("dataset too small for the isolation test: %d pairs", total)
	}

	calls := 0
	err := m.MatchAll(context.Background(), d.Props, func(ScoredPair) {
		calls++
		if calls == 5 {
			panic("injected scoring failure")
		}
	})
	if err != nil {
		t.Fatalf("isolated panic aborted the run: %v", err)
	}
	if calls != total {
		t.Errorf("scored %d pairs, want all %d despite one panicking unit", calls, total)
	}
	rep := m.LastReport()
	if rep == nil {
		t.Fatal("no report after run with injected panic")
	}
	if rep.Failed() != 1 {
		t.Fatalf("report counts %d failed units, want 1 (%s)", rep.Failed(), rep)
	}
	recorded := rep.Errors()
	if len(recorded) != 1 {
		t.Fatalf("report errors = %v, want exactly one", recorded)
	}
	var pe *guard.PanicError
	if !errors.As(recorded[0].Err, &pe) {
		t.Fatalf("recorded error %v is not a PanicError", recorded[0].Err)
	}
	if !strings.Contains(pe.Error(), "injected scoring failure") {
		t.Errorf("panic value lost: %v", pe)
	}
	if rep.Err() == nil {
		t.Error("Report.Err() = nil despite a failed unit")
	}
}

// TestMatchCandidatesCancelled mirrors the cancellation contract on the
// blocker path.
func TestMatchCandidatesCancelled(t *testing.T) {
	d := smallDataset(t, 4)
	m := trainedTestMatcher(t, d)
	cands := dataset.MatchingPairs(d.Props)
	if len(cands) == 0 {
		t.Fatal("no candidate pairs")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := m.MatchCandidates(ctx, cands, func(ScoredPair) {
		t.Error("callback ran under a cancelled context")
	}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestNilContextDefaults: a nil ctx must behave like context.Background()
// across the pipeline entry points.
func TestNilContextDefaults(t *testing.T) {
	d := smallDataset(t, 4)
	m, err := NewMatcher(getStore(t), DefaultOptions(4))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.ComputeFeatures(nil, d); err != nil {
		t.Fatalf("ComputeFeatures(nil ctx): %v", err)
	}
	pairs := TrainingPairs(d.Props, 2, mathx.NewRand(4))
	if _, err := m.Train(nil, pairs); err != nil {
		t.Fatalf("Train(nil ctx): %v", err)
	}
	if err := m.MatchAll(nil, d.Props, func(ScoredPair) {}); err != nil {
		t.Fatalf("MatchAll(nil ctx): %v", err)
	}
}
