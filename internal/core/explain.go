package core

import (
	"fmt"
	"sort"

	"leapme/internal/dataset"
)

// BlockContribution is one feature group's influence on a match decision.
type BlockContribution struct {
	// Block names the feature group ("name-embedding", ...).
	Block string
	// Delta is score(full) − score(with this block neutralised): positive
	// means the block's evidence pushed the pair *toward* matching.
	Delta float64
}

// Explanation attributes a pair's similarity score to feature groups.
type Explanation struct {
	A, B  dataset.Key
	Score float64
	// Contributions, sorted by descending |Delta|.
	Contributions []BlockContribution
}

// String renders the explanation for CLI output.
func (e Explanation) String() string {
	s := fmt.Sprintf("%s ~ %s: score %.3f", e.A, e.B, e.Score)
	for _, c := range e.Contributions {
		s += fmt.Sprintf("\n  %-20s %+.3f", c.Block, c.Delta)
	}
	return s
}

// Explain scores the pair and attributes the decision to feature groups
// by ablation: each block in turn is neutralised (set to the training
// mean, i.e. zero in standardised space) and the score delta recorded.
// Blocks whose evidence argues for the match have positive deltas.
func (m *Matcher) Explain(a, b dataset.Key) (Explanation, error) {
	if m.net == nil {
		return Explanation{}, fmt.Errorf("core: matcher is not trained")
	}
	pa, err := m.prop(a)
	if err != nil {
		return Explanation{}, err
	}
	pb, err := m.prop(b)
	if err != nil {
		return Explanation{}, err
	}
	full := make([]float64, m.pairer.Dim())
	m.pairer.PairVector(full, pa, pb)
	m.standardize(full)
	score, err := m.net.PositiveScore(full)
	if err != nil {
		return Explanation{}, err
	}
	out := Explanation{A: a, B: b, Score: score}
	probe := make([]float64, len(full))
	for _, blk := range m.pairer.Blocks() {
		copy(probe, full)
		for i := blk.Lo; i < blk.Hi; i++ {
			probe[i] = 0 // standardised space: 0 = training mean
		}
		s, err := m.net.PositiveScore(probe)
		if err != nil {
			return Explanation{}, err
		}
		out.Contributions = append(out.Contributions, BlockContribution{
			Block: blk.Name,
			Delta: score - s,
		})
	}
	sort.Slice(out.Contributions, func(i, j int) bool {
		di, dj := out.Contributions[i].Delta, out.Contributions[j].Delta
		if di < 0 {
			di = -di
		}
		if dj < 0 {
			dj = -dj
		}
		return di > dj
	})
	return out, nil
}
