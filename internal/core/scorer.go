package core

import (
	"errors"
	"fmt"

	"leapme/internal/features"
	"leapme/internal/nn"
	"leapme/internal/text"
)

// Scorer is a self-contained scoring snapshot of a trained Matcher: the
// network weights, the fitted standardiser and the pair featurizer, with
// no reference to the matcher's mutable property map. It is what the
// serving layer holds per model version — a later Train or ReadModel on
// the source matcher does not affect snapshots already taken, which is
// what makes hot-swapping a model under live traffic safe.
//
// The weights live in a flat, immutable inference kernel shared by every
// clone; each Scorer owns only its scratch arenas (pair-vector buffer,
// batch-major feature arena, activation scratch, string-distance
// scratch), so a warm Score or ScoreBatch performs zero heap allocations
// per pair. For models carrying the quantised descriptor flag the scorer
// runs the int8/float32 kernel instead; the float64 kernel remains the
// reference path and the default.
//
// Featurize is safe for concurrent use (the extractor and embedding
// store are read-only). Score and ScoreBatch are NOT: they reuse the
// scorer's arenas. Concurrent scoring takes one Clone per worker —
// clones share the kernels and cost only their scratch.
type Scorer struct {
	ex         *features.Extractor
	pairer     *features.Pairer
	kern       *nn.Kernel      // shared float64 inference kernel
	qkern      *nn.QuantKernel // shared int8 kernel; nil unless the model is quantised
	featMean   []float64
	featInvStd []float64
	threshold  float64
	fc         features.Config

	// Per-scorer scratch arenas. Never shared between clones.
	edit     text.EditScratch
	vec      []float64 // one pair vector (Score)
	xs       []float64 // batch-major pair vectors (ScoreBatch), grows to the largest batch seen
	probs    []float64 // batch softmax outputs
	scratch  []float64 // float64 kernel activations
	qscratch []float32 // quantised kernel activations
}

// NewScorer snapshots the matcher's trained state. The weights are
// copied into an immutable flat kernel; the featurizer and standardiser
// are shared (both read-only).
func (m *Matcher) NewScorer() (*Scorer, error) {
	if m.net == nil {
		return nil, errors.New("core: NewScorer on untrained matcher")
	}
	kern := nn.NewKernel(m.net)
	if kern.InDim() != m.pairer.Dim() {
		return nil, fmt.Errorf("core: network input dim %d does not match pair dim %d", kern.InDim(), m.pairer.Dim())
	}
	if kern.OutDim() < 2 {
		return nil, errors.New("core: scoring requires at least 2 output classes")
	}
	s := &Scorer{
		ex:         m.ex,
		pairer:     m.pairer,
		kern:       kern,
		qkern:      m.qk,
		featMean:   m.featMean,
		featInvStd: m.featInvStd,
		threshold:  m.opts.Threshold,
		fc:         m.opts.Features,
	}
	s.initScratch()
	return s, nil
}

// initScratch allocates the single-pair arenas up front so even the
// first Score on a fresh scorer stays off the heap.
func (s *Scorer) initScratch() {
	s.vec = make([]float64, s.pairer.Dim())
	s.scratch = make([]float64, s.kern.ScratchLen())
	if s.qkern != nil {
		s.qscratch = make([]float32, s.qkern.ScratchLen())
	}
}

// Clone returns an independent copy sharing the (read-only) kernels,
// featurizer and standardiser but owning fresh scratch arenas, so clones
// can score concurrently with each other and the original.
func (s *Scorer) Clone() *Scorer {
	c := *s
	c.edit = text.EditScratch{}
	c.xs, c.probs = nil, nil
	c.initScratch()
	return &c
}

// PairDim returns the classifier input dimension.
func (s *Scorer) PairDim() int { return s.pairer.Dim() }

// Threshold returns the score threshold the snapshot was taken with.
func (s *Scorer) Threshold() float64 { return s.threshold }

// Features returns the feature configuration the model was trained with.
func (s *Scorer) Features() features.Config { return s.fc }

// Quantized reports whether this scorer runs the int8 kernel.
func (s *Scorer) Quantized() bool { return s.qkern != nil }

// Featurize computes the property feature vector for a property given by
// name and instance values — the serving-path equivalent of
// ComputeFeatures for one property. Safe for concurrent use; the result
// is immutable and cacheable across requests.
func (s *Scorer) Featurize(name string, values []string) *features.Prop {
	return s.ex.PropertyFeatures(name, values)
}

// standardizeInto applies the fitted z-score transform to v in place.
func (s *Scorer) standardizeInto(v []float64) {
	if s.featMean == nil {
		return
	}
	for i := range v {
		v[i] = (v[i] - s.featMean[i]) * s.featInvStd[i]
	}
}

// Score classifies one featurized property pair, returning the network's
// positive-class probability. Warm calls allocate nothing.
//
//lint:hotpath gated by TestScorerZeroAllocs
func (s *Scorer) Score(a, b *features.Prop) (float64, error) {
	if a == nil || b == nil {
		return 0, errors.New("core: Score on nil property features")
	}
	s.pairer.PairVectorScratch(s.vec, a, b, &s.edit)
	s.standardizeInto(s.vec)
	if s.qkern != nil {
		return s.qkern.PositiveScore(s.vec, s.qscratch), nil
	}
	return s.kern.PositiveScore(s.vec, s.scratch), nil
}

// Match applies the snapshot threshold to a score.
func (s *Scorer) Match(score float64) bool { return score >= s.threshold }

// ensureBatch grows the batch arenas to hold n pairs. Growth only ever
// happens when n exceeds the largest batch this scorer has seen, so the
// steady-state batch path allocates nothing.
func (s *Scorer) ensureBatch(n int) {
	if need := n * s.pairer.Dim(); cap(s.xs) < need {
		s.xs = make([]float64, need)
	}
	if need := n * s.kern.OutDim(); cap(s.probs) < need {
		s.probs = make([]float64, need)
	}
	if s.qkern != nil {
		if need := s.qkern.BatchScratchLen(n); cap(s.qscratch) < need {
			s.qscratch = make([]float32, need)
		}
	} else if need := s.kern.BatchScratchLen(n); cap(s.scratch) < need {
		s.scratch = make([]float64, need)
	}
}

// ScoreBatch scores len(as) pairs (as[i], bs[i]) into dst — the batched
// forward pass the serving micro-batcher coalesces concurrent requests
// into. Pair vectors are gathered back-to-back into the scorer's
// batch-major arena and the whole batch runs through the kernel in one
// batch-major pass (each weight row streams once per layer across all
// pairs). Scores are bit-identical to len(as) separate Score calls.
//
//lint:hotpath gated by TestScorerZeroAllocs
func (s *Scorer) ScoreBatch(dst []float64, as, bs []*features.Prop) error {
	if len(as) != len(bs) || len(dst) != len(as) {
		//lint:allow hotalloc cold validation failure: the request is malformed and never reaches the kernel
		return fmt.Errorf("core: ScoreBatch length mismatch: dst=%d as=%d bs=%d", len(dst), len(as), len(bs))
	}
	n := len(as)
	if n == 0 {
		return nil
	}
	dim := s.pairer.Dim()
	//lint:allow hotalloc ensureBatch grows the arenas only when n exceeds every batch seen before; steady state allocates nothing (pinned by TestScorerZeroAllocs)
	s.ensureBatch(n)
	xs := s.xs[:n*dim]
	for i := range as {
		if as[i] == nil || bs[i] == nil {
			//lint:allow hotalloc cold validation failure: nil pair, request rejected before scoring
			return fmt.Errorf("core: batch pair %d: core: Score on nil property features", i)
		}
		v := xs[i*dim : (i+1)*dim]
		s.pairer.PairVectorScratch(v, as[i], bs[i], &s.edit)
		s.standardizeInto(v)
	}
	outDim := s.kern.OutDim()
	probs := s.probs[:n*outDim]
	if s.qkern != nil {
		s.qkern.ForwardBatch(probs, xs, n, s.qscratch[:s.qkern.BatchScratchLen(n)])
	} else {
		s.kern.ForwardBatch(probs, xs, n, s.scratch[:s.kern.BatchScratchLen(n)])
	}
	for i := 0; i < n; i++ {
		dst[i] = probs[i*outDim+1]
	}
	return nil
}
