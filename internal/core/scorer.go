package core

import (
	"errors"
	"fmt"

	"leapme/internal/features"
	"leapme/internal/nn"
)

// Scorer is a self-contained scoring snapshot of a trained Matcher: the
// network weights, the fitted standardiser and the pair featurizer, with
// no reference to the matcher's mutable property map. It is what the
// serving layer holds per model version — a later Train or ReadModel on
// the source matcher does not affect snapshots already taken, which is
// what makes hot-swapping a model under live traffic safe.
//
// Featurize is safe for concurrent use (the extractor and embedding store
// are read-only). Score and ScoreBatch are NOT: they reuse the scorer's
// pair-vector buffer and the network's forward scratch. Concurrent
// scoring takes one Clone per worker.
type Scorer struct {
	ex        *features.Extractor
	pairer    *features.Pairer
	net       *nn.Network
	featMean  []float64
	featInvStd []float64
	threshold float64
	fc        features.Config

	vec []float64 // reused pair-vector buffer
}

// NewScorer snapshots the matcher's trained state. The network is deep
// copied; the featurizer and standardiser are shared (both read-only).
func (m *Matcher) NewScorer() (*Scorer, error) {
	if m.net == nil {
		return nil, errors.New("core: NewScorer on untrained matcher")
	}
	return &Scorer{
		ex:         m.ex,
		pairer:     m.pairer,
		net:        m.net.Clone(),
		featMean:   m.featMean,
		featInvStd: m.featInvStd,
		threshold:  m.opts.Threshold,
		fc:         m.opts.Features,
	}, nil
}

// Clone returns an independent copy sharing the (read-only) featurizer
// and standardiser but owning its network scratch, so clones can score
// concurrently with each other and the original.
func (s *Scorer) Clone() *Scorer {
	c := *s
	c.net = s.net.Clone()
	c.vec = nil
	return &c
}

// PairDim returns the classifier input dimension.
func (s *Scorer) PairDim() int { return s.pairer.Dim() }

// Threshold returns the score threshold the snapshot was taken with.
func (s *Scorer) Threshold() float64 { return s.threshold }

// Features returns the feature configuration the model was trained with.
func (s *Scorer) Features() features.Config { return s.fc }

// Featurize computes the property feature vector for a property given by
// name and instance values — the serving-path equivalent of
// ComputeFeatures for one property. Safe for concurrent use; the result
// is immutable and cacheable across requests.
func (s *Scorer) Featurize(name string, values []string) *features.Prop {
	return s.ex.PropertyFeatures(name, values)
}

// Score classifies one featurized property pair, returning the network's
// positive-class probability.
func (s *Scorer) Score(a, b *features.Prop) (float64, error) {
	if a == nil || b == nil {
		return 0, errors.New("core: Score on nil property features")
	}
	if s.vec == nil {
		s.vec = make([]float64, s.pairer.Dim())
	}
	s.pairer.PairVector(s.vec, a, b)
	if s.featMean != nil {
		for i := range s.vec {
			s.vec[i] = (s.vec[i] - s.featMean[i]) * s.featInvStd[i]
		}
	}
	p, err := s.net.PositiveScore(s.vec)
	if err != nil {
		return 0, fmt.Errorf("core: %w", err)
	}
	return p, nil
}

// Match applies the snapshot threshold to a score.
func (s *Scorer) Match(score float64) bool { return score >= s.threshold }

// ScoreBatch scores len(as) pairs (as[i], bs[i]) into dst — the batched
// forward pass the serving micro-batcher coalesces concurrent requests
// into. One pair vector buffer and one network are reused across the
// whole batch, so per-pair overhead is a single gather + forward pass.
func (s *Scorer) ScoreBatch(dst []float64, as, bs []*features.Prop) error {
	if len(as) != len(bs) || len(dst) != len(as) {
		return fmt.Errorf("core: ScoreBatch length mismatch: dst=%d as=%d bs=%d", len(dst), len(as), len(bs))
	}
	for i := range as {
		p, err := s.Score(as[i], bs[i])
		if err != nil {
			return fmt.Errorf("core: batch pair %d: %w", i, err)
		}
		dst[i] = p
	}
	return nil
}
