package core

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"leapme/internal/nn"
)

// Model persistence: the trained network plus the fitted feature
// standardiser, so a matcher can be trained once and reused (including
// across datasets — the transfer-learning deployment). Format: magic,
// standardiser flag + vectors, then the nn serialisation.

const matcherMagic = "LEAPMEMD"

// WriteModel serialises the trained network and standardiser. Property
// features are not serialised — recompute them with ComputeFeatures on
// whatever dataset the model is applied to.
func (m *Matcher) WriteModel(w io.Writer) error {
	if m.net == nil {
		return errors.New("core: WriteModel on untrained matcher")
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(matcherMagic); err != nil {
		return err
	}
	buf := make([]byte, 8)
	writeF64 := func(x float64) error {
		binary.LittleEndian.PutUint64(buf, math.Float64bits(x))
		_, err := bw.Write(buf)
		return err
	}
	n := 0
	if m.featMean != nil {
		n = len(m.featMean)
	}
	binary.LittleEndian.PutUint32(buf[:4], uint32(n))
	if _, err := bw.Write(buf[:4]); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		if err := writeF64(m.featMean[i]); err != nil {
			return err
		}
		if err := writeF64(m.featInvStd[i]); err != nil {
			return err
		}
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	if _, err := m.net.WriteTo(w); err != nil {
		return err
	}
	return nil
}

// ReadModel loads a model saved by WriteModel into the matcher. The
// matcher must have been constructed with the same embedding store
// dimension and feature configuration as the saved model; the network
// input dimension is checked against the matcher's pair dimension.
func (m *Matcher) ReadModel(r io.Reader) error {
	br := bufio.NewReader(r)
	magic := make([]byte, len(matcherMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return fmt.Errorf("core: reading model magic: %w", err)
	}
	if string(magic) != matcherMagic {
		return fmt.Errorf("core: bad model magic %q", magic)
	}
	buf := make([]byte, 8)
	if _, err := io.ReadFull(br, buf[:4]); err != nil {
		return fmt.Errorf("core: reading standardiser length: %w", err)
	}
	n := int(binary.LittleEndian.Uint32(buf[:4]))
	if n < 0 || n > 1<<24 {
		return fmt.Errorf("core: implausible standardiser length %d", n)
	}
	readF64 := func() (float64, error) {
		if _, err := io.ReadFull(br, buf); err != nil {
			return 0, err
		}
		return math.Float64frombits(binary.LittleEndian.Uint64(buf)), nil
	}
	var mean, invStd []float64
	if n > 0 {
		if n != m.pairer.Dim() {
			return fmt.Errorf("core: model standardiser dim %d does not match pair dim %d", n, m.pairer.Dim())
		}
		mean = make([]float64, n)
		invStd = make([]float64, n)
		for i := 0; i < n; i++ {
			var err error
			if mean[i], err = readF64(); err != nil {
				return fmt.Errorf("core: reading standardiser: %w", err)
			}
			if invStd[i], err = readF64(); err != nil {
				return fmt.Errorf("core: reading standardiser: %w", err)
			}
		}
	}
	net, err := nn.Read(br)
	if err != nil {
		return fmt.Errorf("core: reading network: %w", err)
	}
	if net.InDim() != m.pairer.Dim() {
		return fmt.Errorf("core: model input dim %d does not match pair dim %d", net.InDim(), m.pairer.Dim())
	}
	m.featMean, m.featInvStd = mean, invStd
	m.net = net
	return nil
}
