package core

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"leapme/internal/features"
	"leapme/internal/nn"
)

// Model persistence: the trained network plus the fitted feature
// standardiser, so a matcher can be trained once and reused (including
// across datasets — the transfer-learning deployment).
//
// On-disk layout (little-endian):
//
//	magic "LEAPMEMD" | uint32 version | uint64 payloadLen |
//	payload | uint32 CRC-32 (IEEE) of payload
//
// v3 payload = uint32 feature bits | uint32 embedding dim |
// uint32 standardiser length n | n × (mean f64, invStd f64) |
// [uint64 quant block length | quantised kernel] | the nn serialisation.
// The quantised-kernel block is present exactly when the feature-bits
// word carries featBitQuantized; the float64 network always follows it,
// so the reference path survives in every file. The v2 payload is the
// same without the leading descriptor (feature bits, embedding dim) or
// quant block; v2 files remain readable but cannot be described by
// LoadInfo beyond their network shape. The length prefix and trailing
// checksum let ReadModel reject truncated or bit-flipped files with a
// descriptive error instead of loading garbage weights.

const (
	matcherMagic = "LEAPMEMD"
	// modelVersion is the current format version, written by WriteModel.
	// v3 added the feature-config + embedding-dim descriptor so a model
	// file is self-describing (LoadInfo, the serving model registry).
	// v2 (standardiser + network only) is still readable. v1 (the
	// unversioned seed format) is not; retrain and re-save.
	modelVersion    = 3
	minModelVersion = 2
	// maxModelPayload bounds payload allocation when reading untrusted
	// files: 1 GiB is orders of magnitude beyond any real model here.
	maxModelPayload = 1 << 30
)

// Feature-config descriptor bits (v3+).
const (
	featBitInstances = 1 << iota
	featBitNames
	featBitEmbeddings
	featBitNonEmbeddings
	// featBitQuantized marks a payload that embeds an int8 quantised
	// kernel block between the standardiser and the float64 network.
	featBitQuantized
)

// knownFeatBits masks every descriptor bit this build understands. A
// set bit outside the mask means the file was written by a newer format
// this build cannot interpret — readers reject it (fail closed) rather
// than silently dropping whatever the bit gated.
const knownFeatBits = featBitInstances | featBitNames | featBitEmbeddings |
	featBitNonEmbeddings | featBitQuantized

func featBits(c features.Config) uint32 {
	var b uint32
	if c.Instances {
		b |= featBitInstances
	}
	if c.Names {
		b |= featBitNames
	}
	if c.Embeddings {
		b |= featBitEmbeddings
	}
	if c.NonEmbeddings {
		b |= featBitNonEmbeddings
	}
	return b
}

func featConfig(b uint32) features.Config {
	return features.Config{
		Instances:     b&featBitInstances != 0,
		Names:         b&featBitNames != 0,
		Embeddings:    b&featBitEmbeddings != 0,
		NonEmbeddings: b&featBitNonEmbeddings != 0,
	}
}

// WriteModel serialises the trained network and standardiser. Property
// features are not serialised — recompute them with ComputeFeatures on
// whatever dataset the model is applied to.
func (m *Matcher) WriteModel(w io.Writer) error {
	if m.net == nil {
		return errors.New("core: WriteModel on untrained matcher")
	}
	// The payload is serialised into memory first so its exact length and
	// checksum are known before anything hits w.
	var payload bytes.Buffer
	buf := make([]byte, 8)
	bits := featBits(m.opts.Features)
	if m.qk != nil {
		bits |= featBitQuantized
	}
	binary.LittleEndian.PutUint32(buf[:4], bits)
	payload.Write(buf[:4])
	binary.LittleEndian.PutUint32(buf[:4], uint32(m.ex.EmbeddingDim()))
	payload.Write(buf[:4])
	n := 0
	if m.featMean != nil {
		n = len(m.featMean)
	}
	binary.LittleEndian.PutUint32(buf[:4], uint32(n))
	payload.Write(buf[:4])
	for i := 0; i < n; i++ {
		binary.LittleEndian.PutUint64(buf, math.Float64bits(m.featMean[i]))
		payload.Write(buf)
		binary.LittleEndian.PutUint64(buf, math.Float64bits(m.featInvStd[i]))
		payload.Write(buf)
	}
	if m.qk != nil {
		var qbuf bytes.Buffer
		if _, err := m.qk.WriteTo(&qbuf); err != nil {
			return err
		}
		binary.LittleEndian.PutUint64(buf, uint64(qbuf.Len()))
		payload.Write(buf)
		payload.Write(qbuf.Bytes())
	}
	if _, err := m.net.WriteTo(&payload); err != nil {
		return err
	}

	if _, err := io.WriteString(w, matcherMagic); err != nil {
		return err
	}
	binary.LittleEndian.PutUint32(buf[:4], modelVersion)
	if _, err := w.Write(buf[:4]); err != nil {
		return err
	}
	binary.LittleEndian.PutUint64(buf, uint64(payload.Len()))
	if _, err := w.Write(buf); err != nil {
		return err
	}
	sum := crc32.ChecksumIEEE(payload.Bytes())
	if _, err := w.Write(payload.Bytes()); err != nil {
		return err
	}
	binary.LittleEndian.PutUint32(buf[:4], sum)
	_, err := w.Write(buf[:4])
	return err
}

// readEnvelope reads and verifies the model-file envelope: magic, version,
// length-prefixed payload, CRC-32. It returns the format version and the
// checksum-verified payload bytes.
func readEnvelope(r io.Reader) (version int, payload []byte, crc uint32, err error) {
	buf := make([]byte, 8)
	magic := make([]byte, len(matcherMagic))
	if _, err := io.ReadFull(r, magic); err != nil {
		return 0, nil, 0, fmt.Errorf("core: reading model magic: %w", err)
	}
	if string(magic) != matcherMagic {
		return 0, nil, 0, fmt.Errorf("core: bad model magic %q (not a LEAPME model file)", magic)
	}
	if _, err := io.ReadFull(r, buf[:4]); err != nil {
		return 0, nil, 0, fmt.Errorf("core: reading model version: %w", err)
	}
	v := int(binary.LittleEndian.Uint32(buf[:4]))
	if v < minModelVersion || v > modelVersion {
		return 0, nil, 0, fmt.Errorf("core: unsupported model format version %d (this build reads v%d–v%d; retrain and re-save)",
			v, minModelVersion, modelVersion)
	}
	if _, err := io.ReadFull(r, buf); err != nil {
		return 0, nil, 0, fmt.Errorf("core: reading model payload length: %w", err)
	}
	plen := binary.LittleEndian.Uint64(buf)
	if plen > maxModelPayload {
		return 0, nil, 0, fmt.Errorf("core: implausible model payload length %d", plen)
	}
	payload = make([]byte, plen)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, 0, fmt.Errorf("core: model payload truncated: %w", err)
	}
	if _, err := io.ReadFull(r, buf[:4]); err != nil {
		return 0, nil, 0, fmt.Errorf("core: reading model checksum: %w", err)
	}
	want := binary.LittleEndian.Uint32(buf[:4])
	if got := crc32.ChecksumIEEE(payload); got != want {
		return 0, nil, 0, fmt.Errorf("core: model payload corrupt: CRC-32 %08x, want %08x", got, want)
	}
	return v, payload, want, nil
}

// readDescriptor parses the v3 payload descriptor off the front of pr.
// Unknown descriptor bits are a hard error: they gate payload content
// this build cannot parse, and guessing would corrupt everything after.
func readDescriptor(pr *bytes.Reader) (fc features.Config, embedDim int, quantized bool, err error) {
	buf := make([]byte, 4)
	if _, err := io.ReadFull(pr, buf); err != nil {
		return fc, 0, false, fmt.Errorf("core: reading model feature config: %w", err)
	}
	bits := binary.LittleEndian.Uint32(buf)
	if unknown := bits &^ knownFeatBits; unknown != 0 {
		return fc, 0, false, fmt.Errorf("core: model descriptor has unknown feature bits %#x (written by a newer format?)", unknown)
	}
	fc = featConfig(bits)
	quantized = bits&featBitQuantized != 0
	if _, err := io.ReadFull(pr, buf); err != nil {
		return fc, 0, false, fmt.Errorf("core: reading model embedding dim: %w", err)
	}
	embedDim = int(binary.LittleEndian.Uint32(buf))
	if embedDim < 0 || embedDim > 1<<20 {
		return fc, 0, false, fmt.Errorf("core: implausible model embedding dim %d", embedDim)
	}
	return fc, embedDim, quantized, nil
}

// readQuantBlock parses the length-prefixed quantised-kernel block off
// the front of pr. The block is parsed in isolation so a malformed or
// trailing-garbage kernel is rejected exactly at its boundary.
func readQuantBlock(pr *bytes.Reader) (*nn.QuantKernel, error) {
	buf := make([]byte, 8)
	if _, err := io.ReadFull(pr, buf); err != nil {
		return nil, fmt.Errorf("core: reading quantised block length: %w", err)
	}
	blen := binary.LittleEndian.Uint64(buf)
	if blen > maxModelPayload || int(blen) > pr.Len() {
		return nil, fmt.Errorf("core: implausible quantised block length %d", blen)
	}
	block := make([]byte, blen)
	if _, err := io.ReadFull(pr, block); err != nil {
		return nil, fmt.Errorf("core: quantised block truncated: %w", err)
	}
	br := bytes.NewReader(block)
	qk, err := nn.ReadQuantKernel(br)
	if err != nil {
		return nil, fmt.Errorf("core: reading quantised kernel: %w", err)
	}
	if br.Len() != 0 {
		return nil, fmt.Errorf("core: %d trailing bytes after quantised kernel", br.Len())
	}
	return qk, nil
}

// readStandardiser parses the standardiser block off the front of pr.
// wantDim < 0 skips the dimension check (LoadInfo has no matcher to
// compare against).
func readStandardiser(pr *bytes.Reader, wantDim int) (mean, invStd []float64, err error) {
	buf := make([]byte, 8)
	if _, err := io.ReadFull(pr, buf[:4]); err != nil {
		return nil, nil, fmt.Errorf("core: reading standardiser length: %w", err)
	}
	n := int(binary.LittleEndian.Uint32(buf[:4]))
	if n < 0 || n > 1<<24 {
		return nil, nil, fmt.Errorf("core: implausible standardiser length %d", n)
	}
	if n == 0 {
		return nil, nil, nil
	}
	if wantDim >= 0 && n != wantDim {
		return nil, nil, fmt.Errorf("core: model standardiser dim %d does not match pair dim %d", n, wantDim)
	}
	mean = make([]float64, n)
	invStd = make([]float64, n)
	for i := 0; i < n; i++ {
		if _, err := io.ReadFull(pr, buf); err != nil {
			return nil, nil, fmt.Errorf("core: reading standardiser: %w", err)
		}
		mean[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf))
		if _, err := io.ReadFull(pr, buf); err != nil {
			return nil, nil, fmt.Errorf("core: reading standardiser: %w", err)
		}
		invStd[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf))
	}
	return mean, invStd, nil
}

// ReadModel loads a model saved by WriteModel into the matcher. The
// matcher must have been constructed with the same embedding store
// dimension and feature configuration as the saved model; self-describing
// (v3) files verify both explicitly, and the network input dimension is
// always checked against the matcher's pair dimension. Unknown format
// versions and truncated or corrupt payloads (checksum mismatch) are
// rejected with a descriptive error; the matcher is left unmodified on
// any failure.
func (m *Matcher) ReadModel(r io.Reader) error {
	version, payload, _, err := readEnvelope(r)
	if err != nil {
		return err
	}
	pr := bytes.NewReader(payload)
	quantized := false
	if version >= 3 {
		fc, embedDim, q, err := readDescriptor(pr)
		if err != nil {
			return err
		}
		if fc != m.opts.Features {
			return fmt.Errorf("core: model was trained with features %s, matcher configured for %s",
				fc, m.opts.Features)
		}
		if embedDim != m.ex.EmbeddingDim() {
			return fmt.Errorf("core: model embedding dim %d does not match store dim %d",
				embedDim, m.ex.EmbeddingDim())
		}
		quantized = q
	}
	mean, invStd, err := readStandardiser(pr, m.pairer.Dim())
	if err != nil {
		return err
	}
	var qk *nn.QuantKernel
	if quantized {
		if qk, err = readQuantBlock(pr); err != nil {
			return err
		}
	}
	net, err := nn.Read(pr)
	if err != nil {
		return fmt.Errorf("core: reading network: %w", err)
	}
	if net.InDim() != m.pairer.Dim() {
		return fmt.Errorf("core: model input dim %d does not match pair dim %d", net.InDim(), m.pairer.Dim())
	}
	if qk != nil {
		if qk.InDim() != net.InDim() || qk.OutDim() != net.OutDim() {
			return fmt.Errorf("core: quantised kernel shape %d→%d does not match network %d→%d",
				qk.InDim(), qk.OutDim(), net.InDim(), net.OutDim())
		}
	}
	m.featMean, m.featInvStd = mean, invStd
	m.net = net
	m.qk = qk
	m.opts.Quantized = qk != nil
	return nil
}
