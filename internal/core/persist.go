package core

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"leapme/internal/nn"
)

// Model persistence: the trained network plus the fitted feature
// standardiser, so a matcher can be trained once and reused (including
// across datasets — the transfer-learning deployment).
//
// On-disk layout (v2, little-endian):
//
//	magic "LEAPMEMD" | uint32 version | uint64 payloadLen |
//	payload | uint32 CRC-32 (IEEE) of payload
//
// payload = uint32 standardiser length n | n × (mean f64, invStd f64) |
// the nn serialisation. The length prefix and trailing checksum let
// ReadModel reject truncated or bit-flipped files with a descriptive
// error instead of loading garbage weights.

const (
	matcherMagic = "LEAPMEMD"
	// modelVersion is the current format version. v1 (the unversioned
	// seed format: magic followed directly by the standardiser) is no
	// longer readable; retrain and re-save.
	modelVersion = 2
	// maxModelPayload bounds payload allocation when reading untrusted
	// files: 1 GiB is orders of magnitude beyond any real model here.
	maxModelPayload = 1 << 30
)

// WriteModel serialises the trained network and standardiser. Property
// features are not serialised — recompute them with ComputeFeatures on
// whatever dataset the model is applied to.
func (m *Matcher) WriteModel(w io.Writer) error {
	if m.net == nil {
		return errors.New("core: WriteModel on untrained matcher")
	}
	// The payload is serialised into memory first so its exact length and
	// checksum are known before anything hits w.
	var payload bytes.Buffer
	buf := make([]byte, 8)
	n := 0
	if m.featMean != nil {
		n = len(m.featMean)
	}
	binary.LittleEndian.PutUint32(buf[:4], uint32(n))
	payload.Write(buf[:4])
	for i := 0; i < n; i++ {
		binary.LittleEndian.PutUint64(buf, math.Float64bits(m.featMean[i]))
		payload.Write(buf)
		binary.LittleEndian.PutUint64(buf, math.Float64bits(m.featInvStd[i]))
		payload.Write(buf)
	}
	if _, err := m.net.WriteTo(&payload); err != nil {
		return err
	}

	if _, err := io.WriteString(w, matcherMagic); err != nil {
		return err
	}
	binary.LittleEndian.PutUint32(buf[:4], modelVersion)
	if _, err := w.Write(buf[:4]); err != nil {
		return err
	}
	binary.LittleEndian.PutUint64(buf, uint64(payload.Len()))
	if _, err := w.Write(buf); err != nil {
		return err
	}
	sum := crc32.ChecksumIEEE(payload.Bytes())
	if _, err := w.Write(payload.Bytes()); err != nil {
		return err
	}
	binary.LittleEndian.PutUint32(buf[:4], sum)
	_, err := w.Write(buf[:4])
	return err
}

// ReadModel loads a model saved by WriteModel into the matcher. The
// matcher must have been constructed with the same embedding store
// dimension and feature configuration as the saved model; the network
// input dimension is checked against the matcher's pair dimension.
// Unknown format versions and truncated or corrupt payloads (checksum
// mismatch) are rejected with a descriptive error; the matcher is left
// unmodified on any failure.
func (m *Matcher) ReadModel(r io.Reader) error {
	buf := make([]byte, 8)
	magic := make([]byte, len(matcherMagic))
	if _, err := io.ReadFull(r, magic); err != nil {
		return fmt.Errorf("core: reading model magic: %w", err)
	}
	if string(magic) != matcherMagic {
		return fmt.Errorf("core: bad model magic %q (not a LEAPME model file)", magic)
	}
	if _, err := io.ReadFull(r, buf[:4]); err != nil {
		return fmt.Errorf("core: reading model version: %w", err)
	}
	if v := binary.LittleEndian.Uint32(buf[:4]); v != modelVersion {
		return fmt.Errorf("core: unsupported model format version %d (this build reads v%d; retrain and re-save)",
			v, modelVersion)
	}
	if _, err := io.ReadFull(r, buf); err != nil {
		return fmt.Errorf("core: reading model payload length: %w", err)
	}
	plen := binary.LittleEndian.Uint64(buf)
	if plen > maxModelPayload {
		return fmt.Errorf("core: implausible model payload length %d", plen)
	}
	payload := make([]byte, plen)
	if _, err := io.ReadFull(r, payload); err != nil {
		return fmt.Errorf("core: model payload truncated: %w", err)
	}
	if _, err := io.ReadFull(r, buf[:4]); err != nil {
		return fmt.Errorf("core: reading model checksum: %w", err)
	}
	want := binary.LittleEndian.Uint32(buf[:4])
	if got := crc32.ChecksumIEEE(payload); got != want {
		return fmt.Errorf("core: model payload corrupt: CRC-32 %08x, want %08x", got, want)
	}

	pr := bytes.NewReader(payload)
	if _, err := io.ReadFull(pr, buf[:4]); err != nil {
		return fmt.Errorf("core: reading standardiser length: %w", err)
	}
	n := int(binary.LittleEndian.Uint32(buf[:4]))
	if n < 0 || n > 1<<24 {
		return fmt.Errorf("core: implausible standardiser length %d", n)
	}
	var mean, invStd []float64
	if n > 0 {
		if n != m.pairer.Dim() {
			return fmt.Errorf("core: model standardiser dim %d does not match pair dim %d", n, m.pairer.Dim())
		}
		mean = make([]float64, n)
		invStd = make([]float64, n)
		for i := 0; i < n; i++ {
			if _, err := io.ReadFull(pr, buf); err != nil {
				return fmt.Errorf("core: reading standardiser: %w", err)
			}
			mean[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf))
			if _, err := io.ReadFull(pr, buf); err != nil {
				return fmt.Errorf("core: reading standardiser: %w", err)
			}
			invStd[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf))
		}
	}
	net, err := nn.Read(pr)
	if err != nil {
		return fmt.Errorf("core: reading network: %w", err)
	}
	if net.InDim() != m.pairer.Dim() {
		return fmt.Errorf("core: model input dim %d does not match pair dim %d", net.InDim(), m.pairer.Dim())
	}
	m.featMean, m.featInvStd = mean, invStd
	m.net = net
	return nil
}
