package core

import (
	"bytes"
	"context"
	"encoding/binary"
	"hash/crc32"
	"math"
	"sync"
	"testing"

	"leapme/internal/features"
	"leapme/internal/mathx"
)

// trainedTestMatcher returns a trained matcher over the shared store plus
// the labeled pairs it was trained on.
func trainedScorerMatcher(t *testing.T, seed int64) (*Matcher, []LabeledPair) {
	t.Helper()
	d := smallDataset(t, seed)
	store := getStore(t)
	m, err := NewMatcher(store, DefaultOptions(seed))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.ComputeFeatures(context.Background(), d); err != nil {
		t.Fatal(err)
	}
	pairs := TrainingPairs(d.Props, 2, mathx.NewRand(seed))
	if _, err := m.Train(context.Background(), pairs); err != nil {
		t.Fatal(err)
	}
	return m, pairs
}

func TestScorerBitIdentical(t *testing.T) {
	m, pairs := trainedScorerMatcher(t, 31)
	sc, err := m.NewScorer()
	if err != nil {
		t.Fatal(err)
	}
	for _, lp := range pairs[:10] {
		want, err := m.Score(lp.A, lp.B)
		if err != nil {
			t.Fatal(err)
		}
		pa, _ := m.prop(lp.A)
		pb, _ := m.prop(lp.B)
		got, err := sc.Score(pa, pb)
		if err != nil {
			t.Fatal(err)
		}
		if got != want.Score {
			t.Fatalf("scorer diverges from matcher on %v × %v: %v vs %v", lp.A, lp.B, got, want.Score)
		}
		if sc.Match(got) != want.Match {
			t.Fatalf("match decision diverges on %v × %v", lp.A, lp.B)
		}
	}
}

func TestScorerFeaturizeMatchesComputeFeatures(t *testing.T) {
	d := smallDataset(t, 32)
	store := getStore(t)
	m, err := NewMatcher(store, DefaultOptions(32))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.ComputeFeatures(context.Background(), d); err != nil {
		t.Fatal(err)
	}
	pairs := TrainingPairs(d.Props, 2, mathx.NewRand(32))
	if _, err := m.Train(context.Background(), pairs); err != nil {
		t.Fatal(err)
	}
	sc, err := m.NewScorer()
	if err != nil {
		t.Fatal(err)
	}
	values := d.InstancesByProperty()
	for _, p := range d.Props[:5] {
		want, _ := m.prop(p.Key())
		got := sc.Featurize(p.Name, values[p.Key()])
		if len(got.Vec) != len(want.Vec) {
			t.Fatalf("featurize dim %d vs %d", len(got.Vec), len(want.Vec))
		}
		for i := range got.Vec {
			if got.Vec[i] != want.Vec[i] {
				t.Fatalf("featurize diverges at %d for %s", i, p.Key())
			}
		}
	}
}

func TestScorerBatchAndClone(t *testing.T) {
	m, pairs := trainedScorerMatcher(t, 33)
	sc, err := m.NewScorer()
	if err != nil {
		t.Fatal(err)
	}
	n := 8
	as := make([]*features.Prop, 0, n)
	bs := make([]*features.Prop, 0, n)
	want := make([]float64, 0, n)
	for _, lp := range pairs[:n] {
		pa, _ := m.prop(lp.A)
		pb, _ := m.prop(lp.B)
		as, bs = append(as, pa), append(bs, pb)
		sp, err := m.Score(lp.A, lp.B)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, sp.Score)
	}
	dst := make([]float64, n)
	if err := sc.ScoreBatch(dst, as, bs); err != nil {
		t.Fatal(err)
	}
	for i := range dst {
		if dst[i] != want[i] {
			t.Fatalf("batch score %d: %v vs %v", i, dst[i], want[i])
		}
	}

	// Clones score concurrently and agree bit-for-bit (run under -race).
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		c := sc.Clone()
		wg.Add(1)
		go func() {
			defer wg.Done()
			got := make([]float64, n)
			for rep := 0; rep < 20; rep++ {
				if err := c.ScoreBatch(got, as, bs); err != nil {
					t.Error(err)
					return
				}
				for i := range got {
					if got[i] != want[i] {
						t.Errorf("clone diverges at %d: %v vs %v", i, got[i], want[i])
						return
					}
				}
			}
		}()
	}
	wg.Wait()

	if err := sc.ScoreBatch(dst[:2], as, bs); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestScorerSurvivesSourceRetrain(t *testing.T) {
	m, pairs := trainedScorerMatcher(t, 34)
	pa, _ := m.prop(pairs[0].A)
	pb, _ := m.prop(pairs[0].B)
	sc, err := m.NewScorer()
	if err != nil {
		t.Fatal(err)
	}
	before, err := sc.Score(pa, pb)
	if err != nil {
		t.Fatal(err)
	}
	// Retrain the source matcher with a different seed: the snapshot must
	// keep returning the old model's scores (hot-swap safety).
	m.opts.Seed = 999
	if _, err := m.Train(context.Background(), pairs); err != nil {
		t.Fatal(err)
	}
	after, err := sc.Score(pa, pb)
	if err != nil {
		t.Fatal(err)
	}
	if before != after {
		t.Fatalf("snapshot changed under retrain: %v vs %v", before, after)
	}
}

func TestNewScorerUntrained(t *testing.T) {
	m, _ := NewMatcher(getStore(t), DefaultOptions(1))
	if _, err := m.NewScorer(); err == nil {
		t.Error("NewScorer on untrained matcher accepted")
	}
}

func TestLoadInfoRoundTrip(t *testing.T) {
	m, _ := trainedScorerMatcher(t, 35)
	var buf bytes.Buffer
	if err := m.WriteModel(&buf); err != nil {
		t.Fatal(err)
	}
	info, err := LoadInfo(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if info.FormatVersion != modelVersion {
		t.Errorf("format version %d, want %d", info.FormatVersion, modelVersion)
	}
	if !info.HasDescriptor || info.Features != m.opts.Features {
		t.Errorf("descriptor %v/%v, want %v", info.HasDescriptor, info.Features, m.opts.Features)
	}
	if info.EmbeddingDim != m.ex.EmbeddingDim() {
		t.Errorf("embedding dim %d, want %d", info.EmbeddingDim, m.ex.EmbeddingDim())
	}
	if info.InDim != m.PairDim() {
		t.Errorf("in dim %d, want %d", info.InDim, m.PairDim())
	}
	if len(info.Hidden) != 2 || info.Hidden[0] != 128 || info.Hidden[1] != 64 {
		t.Errorf("hidden %v, want [128 64]", info.Hidden)
	}
	if info.OutDim != 2 || !info.Standardized {
		t.Errorf("out=%d standardized=%v", info.OutDim, info.Standardized)
	}
	if info.CRC == 0 || info.PayloadBytes == 0 {
		t.Errorf("missing fingerprint: %+v", info)
	}
	if info.String() == "" {
		t.Error("empty String()")
	}
}

func TestLoadInfoGarbage(t *testing.T) {
	if _, err := LoadInfo(bytes.NewReader([]byte("junk"))); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := LoadInfoFile("/nonexistent/model.bin"); err == nil {
		t.Error("missing file accepted")
	}
}

// writeModelV2 re-serialises a current model in the legacy v2 layout
// (no descriptor) so the back-compat path stays covered without fixture
// files.
func writeModelV2(m *Matcher) []byte {
	var payload bytes.Buffer
	buf := make([]byte, 8)
	n := len(m.featMean)
	binary.LittleEndian.PutUint32(buf[:4], uint32(n))
	payload.Write(buf[:4])
	for i := 0; i < n; i++ {
		binary.LittleEndian.PutUint64(buf, math.Float64bits(m.featMean[i]))
		payload.Write(buf)
		binary.LittleEndian.PutUint64(buf, math.Float64bits(m.featInvStd[i]))
		payload.Write(buf)
	}
	m.net.WriteTo(&payload)

	var out bytes.Buffer
	out.WriteString(matcherMagic)
	binary.LittleEndian.PutUint32(buf[:4], 2)
	out.Write(buf[:4])
	binary.LittleEndian.PutUint64(buf, uint64(payload.Len()))
	out.Write(buf)
	out.Write(payload.Bytes())
	binary.LittleEndian.PutUint32(buf[:4], crc32.ChecksumIEEE(payload.Bytes()))
	out.Write(buf[:4])
	return out.Bytes()
}

func TestReadModelV2Compat(t *testing.T) {
	m, pairs := trainedScorerMatcher(t, 36)
	v2 := writeModelV2(m)

	info, err := LoadInfo(bytes.NewReader(v2))
	if err != nil {
		t.Fatal(err)
	}
	if info.FormatVersion != 2 || info.HasDescriptor {
		t.Errorf("v2 info misread: %+v", info)
	}
	if info.InDim != m.PairDim() {
		t.Errorf("v2 in dim %d, want %d", info.InDim, m.PairDim())
	}

	m2, _ := NewMatcher(getStore(t), DefaultOptions(1))
	d := smallDataset(t, 36)
	if err := m2.ComputeFeatures(context.Background(), d); err != nil {
		t.Fatal(err)
	}
	if err := m2.ReadModel(bytes.NewReader(v2)); err != nil {
		t.Fatalf("v2 model rejected: %v", err)
	}
	s1, err := m.Score(pairs[0].A, pairs[0].B)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := m2.Score(pairs[0].A, pairs[0].B)
	if err != nil {
		t.Fatal(err)
	}
	if s1.Score != s2.Score {
		t.Errorf("v2 round trip diverges: %v vs %v", s1.Score, s2.Score)
	}
}

func TestReadModelFeatureMismatch(t *testing.T) {
	m, _ := trainedScorerMatcher(t, 37)
	var buf bytes.Buffer
	if err := m.WriteModel(&buf); err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions(1)
	opts.Features.Instances = false
	m2, _ := NewMatcher(getStore(t), opts)
	err := m2.ReadModel(bytes.NewReader(buf.Bytes()))
	if err == nil {
		t.Fatal("feature-config mismatch accepted")
	}
	if !bytes.Contains([]byte(err.Error()), []byte("features")) {
		t.Errorf("error %q does not mention features", err)
	}
}
