package core

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"leapme/internal/mathx"
)

func TestModelRoundTrip(t *testing.T) {
	d := smallDataset(t, 21)
	store := getStore(t)
	m, err := NewMatcher(store, DefaultOptions(3))
	if err != nil {
		t.Fatal(err)
	}
	m.ComputeFeatures(context.Background(), d)
	pairs := TrainingPairs(d.Props, 2, mathx.NewRand(3))
	if _, err := m.Train(context.Background(), pairs); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := m.WriteModel(&buf); err != nil {
		t.Fatal(err)
	}

	// Fresh matcher, same geometry, loaded model.
	m2, err := NewMatcher(store, DefaultOptions(99))
	if err != nil {
		t.Fatal(err)
	}
	m2.ComputeFeatures(context.Background(), d)
	if err := m2.ReadModel(&buf); err != nil {
		t.Fatal(err)
	}
	if !m2.Trained() {
		t.Fatal("loaded matcher not trained")
	}

	// Identical scores on every pair we probe.
	a, b := d.Props[0].Key(), d.Props[len(d.Props)-1].Key()
	s1, err := m.Score(a, b)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := m2.Score(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if s1.Score != s2.Score {
		t.Errorf("scores differ after round trip: %v vs %v", s1.Score, s2.Score)
	}
}

func TestWriteModelUntrained(t *testing.T) {
	m, _ := NewMatcher(getStore(t), DefaultOptions(1))
	var buf bytes.Buffer
	if err := m.WriteModel(&buf); err == nil {
		t.Error("untrained WriteModel accepted")
	}
}

func TestReadModelGarbage(t *testing.T) {
	m, _ := NewMatcher(getStore(t), DefaultOptions(1))
	if err := m.ReadModel(bytes.NewReader([]byte("junk"))); err == nil {
		t.Error("garbage model accepted")
	}
}

// TestReadModelCorruption drives ReadModel through every rejection path
// of the v2 format: wrong magic, unknown version, truncation at each
// section boundary, and a bit flip caught by the checksum. A failed read
// must never leave the matcher partially loaded.
func TestReadModelCorruption(t *testing.T) {
	d := smallDataset(t, 23)
	store := getStore(t)
	m, _ := NewMatcher(store, DefaultOptions(1))
	if err := m.ComputeFeatures(context.Background(), d); err != nil {
		t.Fatal(err)
	}
	pairs := TrainingPairs(d.Props, 2, mathx.NewRand(1))
	if _, err := m.Train(context.Background(), pairs); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.WriteModel(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	corrupt := func(mutate func([]byte) []byte) []byte {
		c := append([]byte(nil), good...)
		return mutate(c)
	}
	cases := []struct {
		name    string
		data    []byte
		wantSub string
	}{
		{"empty", nil, "magic"},
		{"bad magic", corrupt(func(b []byte) []byte {
			copy(b, "NOTAMODL")
			return b
		}), "not a LEAPME model file"},
		{"future version", corrupt(func(b []byte) []byte {
			b[8] = 99 // version field follows the 8-byte magic
			return b
		}), "unsupported model format version"},
		{"truncated header", good[:10], ""},
		{"truncated payload", good[:len(good)-40], "truncated"},
		{"missing checksum", good[:len(good)-2], "checksum"},
		{"bit flip in payload", corrupt(func(b []byte) []byte {
			b[len(b)/2] ^= 0x40 // middle of the payload, not the header
			return b
		}), "corrupt"},
		{"implausible length", corrupt(func(b []byte) []byte {
			// payloadLen is the 8 bytes after magic+version.
			for i := 12; i < 20; i++ {
				b[i] = 0xff
			}
			return b
		}), "implausible"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m2, _ := NewMatcher(store, DefaultOptions(1))
			err := m2.ReadModel(bytes.NewReader(tc.data))
			if err == nil {
				t.Fatal("corrupt model accepted")
			}
			if tc.wantSub != "" && !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("error %q does not mention %q", err, tc.wantSub)
			}
			if m2.Trained() {
				t.Error("matcher trained after failed read")
			}
		})
	}

	// And the pristine bytes still load, proving the cases above failed
	// because of the corruption, not the harness.
	m3, _ := NewMatcher(store, DefaultOptions(1))
	if err := m3.ReadModel(bytes.NewReader(good)); err != nil {
		t.Fatalf("pristine model rejected: %v", err)
	}
	if !m3.Trained() {
		t.Error("pristine model loaded but matcher not trained")
	}
}

func TestReadModelDimMismatch(t *testing.T) {
	d := smallDataset(t, 22)
	store := getStore(t)
	m, _ := NewMatcher(store, DefaultOptions(1))
	m.ComputeFeatures(context.Background(), d)
	pairs := TrainingPairs(d.Props, 2, mathx.NewRand(1))
	if _, err := m.Train(context.Background(), pairs); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.WriteModel(&buf); err != nil {
		t.Fatal(err)
	}
	// Matcher with a different feature configuration → different pair dim.
	opts := DefaultOptions(1)
	opts.Features.Instances = false
	m2, _ := NewMatcher(store, opts)
	if err := m2.ReadModel(&buf); err == nil {
		t.Error("dim mismatch accepted")
	}
}
