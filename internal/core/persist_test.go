package core

import (
	"bytes"
	"testing"

	"leapme/internal/mathx"
)

func TestModelRoundTrip(t *testing.T) {
	d := smallDataset(t, 21)
	store := getStore(t)
	m, err := NewMatcher(store, DefaultOptions(3))
	if err != nil {
		t.Fatal(err)
	}
	m.ComputeFeatures(d)
	pairs := TrainingPairs(d.Props, 2, mathx.NewRand(3))
	if _, err := m.Train(pairs); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := m.WriteModel(&buf); err != nil {
		t.Fatal(err)
	}

	// Fresh matcher, same geometry, loaded model.
	m2, err := NewMatcher(store, DefaultOptions(99))
	if err != nil {
		t.Fatal(err)
	}
	m2.ComputeFeatures(d)
	if err := m2.ReadModel(&buf); err != nil {
		t.Fatal(err)
	}
	if !m2.Trained() {
		t.Fatal("loaded matcher not trained")
	}

	// Identical scores on every pair we probe.
	a, b := d.Props[0].Key(), d.Props[len(d.Props)-1].Key()
	s1, err := m.Score(a, b)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := m2.Score(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if s1.Score != s2.Score {
		t.Errorf("scores differ after round trip: %v vs %v", s1.Score, s2.Score)
	}
}

func TestWriteModelUntrained(t *testing.T) {
	m, _ := NewMatcher(getStore(t), DefaultOptions(1))
	var buf bytes.Buffer
	if err := m.WriteModel(&buf); err == nil {
		t.Error("untrained WriteModel accepted")
	}
}

func TestReadModelGarbage(t *testing.T) {
	m, _ := NewMatcher(getStore(t), DefaultOptions(1))
	if err := m.ReadModel(bytes.NewReader([]byte("junk"))); err == nil {
		t.Error("garbage model accepted")
	}
}

func TestReadModelDimMismatch(t *testing.T) {
	d := smallDataset(t, 22)
	store := getStore(t)
	m, _ := NewMatcher(store, DefaultOptions(1))
	m.ComputeFeatures(d)
	pairs := TrainingPairs(d.Props, 2, mathx.NewRand(1))
	if _, err := m.Train(pairs); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.WriteModel(&buf); err != nil {
		t.Fatal(err)
	}
	// Matcher with a different feature configuration → different pair dim.
	opts := DefaultOptions(1)
	opts.Features.Instances = false
	m2, _ := NewMatcher(store, opts)
	if err := m2.ReadModel(&buf); err == nil {
		t.Error("dim mismatch accepted")
	}
}
