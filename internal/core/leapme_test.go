package core

import (
	"context"
	"testing"

	"leapme/internal/dataset"
	"leapme/internal/domain"
	"leapme/internal/embedding"
	"leapme/internal/features"
	"leapme/internal/mathx"
	"leapme/internal/nn"
)

// testStore trains a tiny GloVe store on the cameras domain corpus, shared
// across tests (training takes ~100ms).
var sharedStore *embedding.Store

func getStore(t *testing.T) *embedding.Store {
	t.Helper()
	if sharedStore != nil {
		return sharedStore
	}
	corpus := domain.Corpus([]*domain.Category{domain.Cameras()},
		domain.CorpusConfig{SentencesPerProp: 60, Seed: 1})
	cfg := embedding.DefaultGloVeConfig()
	cfg.Dim = 32
	cfg.Epochs = 25
	s, err := embedding.TrainGloVe(corpus, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sharedStore = s
	return s
}

func smallDataset(t *testing.T, seed int64) *dataset.Dataset {
	t.Helper()
	d, err := dataset.Generate(dataset.GenConfig{
		Name:           "cam-test",
		Category:       domain.Cameras(),
		NumSources:     6,
		SharedPresence: 0.8,
		CanonicalBias:  0.55,
		SplitProb:      0.05,
		NoiseProps:     8,
		MinEntities:    10,
		MaxEntities:    15,
		MissingRate:    0.3,
		Seed:           seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestNewMatcherDefaults(t *testing.T) {
	m, err := NewMatcher(getStore(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	o := m.Options()
	if !o.Features.Valid() || o.BatchSize != 32 || o.Threshold != 0.5 {
		t.Errorf("defaults not applied: %+v", o)
	}
	if len(o.Hidden) != 2 || o.Hidden[0] != 128 || o.Hidden[1] != 64 {
		t.Errorf("hidden defaults = %v", o.Hidden)
	}
}

func TestNewMatcherNilStore(t *testing.T) {
	if _, err := NewMatcher(nil, Options{}); err == nil {
		t.Error("nil store accepted")
	}
}

func TestComputeFeatures(t *testing.T) {
	d := smallDataset(t, 1)
	m, _ := NewMatcher(getStore(t), DefaultOptions(1))
	m.ComputeFeatures(context.Background(), d)
	if m.NumProperties() != len(d.Props) {
		t.Errorf("computed %d property features, want %d", m.NumProperties(), len(d.Props))
	}
}

func TestTrainRequiresFeatures(t *testing.T) {
	m, _ := NewMatcher(getStore(t), DefaultOptions(1))
	pairs := []LabeledPair{{
		A:     dataset.Key{Source: "s", Name: "x"},
		B:     dataset.Key{Source: "t", Name: "y"},
		Match: true,
	}}
	if _, err := m.Train(context.Background(), pairs); err == nil {
		t.Error("training without computed features accepted")
	}
	if _, err := m.Train(context.Background(), nil); err == nil {
		t.Error("empty training set accepted")
	}
}

func TestScoreRequiresTraining(t *testing.T) {
	d := smallDataset(t, 1)
	m, _ := NewMatcher(getStore(t), DefaultOptions(1))
	m.ComputeFeatures(context.Background(), d)
	if _, err := m.Score(d.Props[0].Key(), d.Props[1].Key()); err == nil {
		t.Error("scoring before training accepted")
	}
	if err := m.MatchAll(context.Background(), d.Props, func(ScoredPair) {}); err == nil {
		t.Error("MatchAll before training accepted")
	}
}

func TestTrainingPairsRegime(t *testing.T) {
	d := smallDataset(t, 2)
	rng := mathx.NewRand(1)
	pairs := TrainingPairs(d.Props, 2, rng)
	var pos, neg int
	for _, p := range pairs {
		if p.Match {
			pos++
		} else {
			neg++
		}
	}
	if pos == 0 {
		t.Fatal("no positive pairs")
	}
	if neg != 2*pos {
		t.Errorf("neg = %d, want 2×pos = %d", neg, 2*pos)
	}
	// No same-source pairs, no duplicate pairs.
	seen := map[dataset.Pair]bool{}
	for _, p := range pairs {
		if p.A.Source == p.B.Source {
			t.Errorf("same-source pair %v", p)
		}
		cp := dataset.Pair{A: p.A, B: p.B}.Canonical()
		if seen[cp] {
			t.Errorf("duplicate pair %v", cp)
		}
		seen[cp] = true
	}
}

func TestTrainingPairsDefaultRatio(t *testing.T) {
	d := smallDataset(t, 3)
	pairs := TrainingPairs(d.Props, -1, mathx.NewRand(2))
	var pos, neg int
	for _, p := range pairs {
		if p.Match {
			pos++
		} else {
			neg++
		}
	}
	if neg != 2*pos {
		t.Errorf("default ratio: neg=%d pos=%d", neg, pos)
	}
}

// TestEndToEndMatching is the package's core check: LEAPME trained on
// three sources must find the cross-source matches of the remaining two
// sources far better than chance.
func TestEndToEndMatching(t *testing.T) {
	d := smallDataset(t, 4)
	store := getStore(t)

	opts := DefaultOptions(7)
	m, err := NewMatcher(store, opts)
	if err != nil {
		t.Fatal(err)
	}
	m.ComputeFeatures(context.Background(), d)

	trainSources := map[string]bool{"source00": true, "source01": true, "source02": true, "source03": true}
	testSources := map[string]bool{"source04": true, "source05": true}
	trainProps := d.PropsOfSources(trainSources)
	testProps := d.PropsOfSources(testSources)

	pairs := TrainingPairs(trainProps, 2, mathx.NewRand(7))
	if len(pairs) < 30 {
		t.Fatalf("too few training pairs: %d", len(pairs))
	}
	loss, err := m.Train(context.Background(), pairs)
	if err != nil {
		t.Fatal(err)
	}
	if loss > 0.5 {
		t.Errorf("training loss %v suspiciously high", loss)
	}
	if !m.Trained() {
		t.Fatal("Trained() false after Train")
	}

	// Evaluate on the held-out sources.
	truth := map[dataset.Pair]bool{}
	for _, p := range dataset.MatchingPairs(testProps) {
		truth[p] = true
	}
	var tp, fp, fn int
	predicted := map[dataset.Pair]bool{}
	err = m.MatchAll(context.Background(), testProps, func(sp ScoredPair) {
		if sp.Score < 0 || sp.Score > 1 {
			t.Fatalf("score %v outside [0,1]", sp.Score)
		}
		if sp.Match {
			predicted[dataset.Pair{A: sp.A, B: sp.B}.Canonical()] = true
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for p := range predicted {
		if truth[p] {
			tp++
		} else {
			fp++
		}
	}
	for p := range truth {
		if !predicted[p] {
			fn++
		}
	}
	if tp == 0 {
		t.Fatal("no true positives at all")
	}
	prec := float64(tp) / float64(tp+fp)
	rec := float64(tp) / float64(tp+fn)
	f1 := 2 * prec * rec / (prec + rec)
	t.Logf("held-out P=%.3f R=%.3f F1=%.3f (tp=%d fp=%d fn=%d)", prec, rec, f1, tp, fp, fn)
	if f1 < 0.5 {
		t.Errorf("end-to-end F1 = %.3f, want ≥ 0.5", f1)
	}
}

func TestMatchesFiltersByThreshold(t *testing.T) {
	d := smallDataset(t, 5)
	opts := DefaultOptions(1)
	opts.Schedule = []nn.Phase{{Epochs: 5, LR: 1e-3}}
	m, _ := NewMatcher(getStore(t), opts)
	m.ComputeFeatures(context.Background(), d)
	pairs := TrainingPairs(d.Props, 2, mathx.NewRand(1))
	if _, err := m.Train(context.Background(), pairs); err != nil {
		t.Fatal(err)
	}
	matches, err := m.Matches(context.Background(), d.Props)
	if err != nil {
		t.Fatal(err)
	}
	for _, sp := range matches {
		if !sp.Match || sp.Score < 0.5 {
			t.Errorf("non-match in Matches output: %+v", sp)
		}
	}
}

func TestAdoptFeatures(t *testing.T) {
	d := smallDataset(t, 6)
	store := getStore(t)
	a, _ := NewMatcher(store, DefaultOptions(1))
	a.ComputeFeatures(context.Background(), d)
	b, _ := NewMatcher(store, DefaultOptions(2))
	if err := b.AdoptFeatures(a); err != nil {
		t.Fatal(err)
	}
	if b.NumProperties() != a.NumProperties() {
		t.Errorf("adopted %d of %d properties", b.NumProperties(), a.NumProperties())
	}
	if err := b.AdoptFeatures(nil); err == nil {
		t.Error("nil source accepted")
	}
}

func TestMatchCandidates(t *testing.T) {
	d := smallDataset(t, 7)
	m, _ := NewMatcher(getStore(t), DefaultOptions(1))
	m.ComputeFeatures(context.Background(), d)
	cand := []dataset.Pair{{A: d.Props[0].Key(), B: d.Props[40].Key()}}
	if err := m.MatchCandidates(context.Background(), cand, func(ScoredPair) {}); err == nil {
		t.Error("untrained MatchCandidates accepted")
	}
	pairs := TrainingPairs(d.Props, 2, mathx.NewRand(1))
	if _, err := m.Train(context.Background(), pairs); err != nil {
		t.Fatal(err)
	}
	var got []ScoredPair
	if err := m.MatchCandidates(context.Background(), cand, func(sp ScoredPair) { got = append(got, sp) }); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("scored %d candidates", len(got))
	}
	// Same score as the single-pair Score API.
	sp, err := m.Score(cand[0].A, cand[0].B)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Score != got[0].Score {
		t.Errorf("MatchCandidates %v != Score %v", got[0].Score, sp.Score)
	}
	// Unknown property errors.
	bad := []dataset.Pair{{A: dataset.Key{Source: "x", Name: "y"}, B: d.Props[0].Key()}}
	if err := m.MatchCandidates(context.Background(), bad, func(ScoredPair) {}); err == nil {
		t.Error("unknown candidate accepted")
	}
}

func TestShuffleDeterministic(t *testing.T) {
	mk := func() []LabeledPair {
		return []LabeledPair{
			{A: dataset.Key{Source: "a", Name: "1"}},
			{A: dataset.Key{Source: "b", Name: "2"}},
			{A: dataset.Key{Source: "c", Name: "3"}},
			{A: dataset.Key{Source: "d", Name: "4"}},
		}
	}
	p1, p2 := mk(), mk()
	Shuffle(p1, mathx.NewRand(5))
	Shuffle(p2, mathx.NewRand(5))
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatal("Shuffle not deterministic under same seed")
		}
	}
	set := map[string]bool{}
	for _, p := range p1 {
		set[p.A.Source] = true
	}
	if len(set) != 4 {
		t.Error("Shuffle lost elements")
	}
}

func TestFeatureConfigsProduceDifferentDims(t *testing.T) {
	store := getStore(t)
	dims := map[int]bool{}
	for _, cfg := range features.AllConfigs() {
		opts := DefaultOptions(1)
		opts.Features = cfg
		m, err := NewMatcher(store, opts)
		if err != nil {
			t.Fatalf("%v: %v", cfg, err)
		}
		dims[m.PairDim()] = true
	}
	if len(dims) < 4 {
		t.Errorf("only %d distinct pair dims across 9 configs", len(dims))
	}
}
