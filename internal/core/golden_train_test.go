package core

import (
	"bytes"
	"context"
	"hash/crc32"
	"os"
	"testing"

	"leapme/internal/dataset"
	"leapme/internal/mathx"
	"leapme/internal/nn"
)

// goldenTrainCRC pins the serialized v3 model produced by the full
// cameras-lite training pipeline (seed 1, {16, 8} hidden) — the
// old-vs-new equivalence gate of the flat training kernel. The chunked
// Network.Fit path and TrainKernel must both reproduce exactly these
// bytes at every worker count; a drift means the training arithmetic
// changed, which is a model-format change, not an optimisation.
//
// Regenerate (only after a deliberate change to training arithmetic):
// LEAPME_WRITE_GOLDEN=1 go test ./internal/core -run TrainGolden -v
const goldenTrainCRC = 0x9c29ed4e

// goldenTrainModel trains the cameras-lite pipeline and serializes the
// model. kernel selects the TrainKernel path (the only path core.Train
// dispatches to for Workers ≥ 1); otherwise the legacy chunked
// Network.Fit path is replayed through the matcher's own internals, so
// both arms share features, standardisation, and configuration exactly.
func goldenTrainModel(t *testing.T, workers int, kernel bool) []byte {
	t.Helper()
	d, err := dataset.Generate(dataset.Lite(dataset.CamerasConfig(1)))
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions(1)
	opts.Hidden = []int{16, 8}
	opts.Workers = workers
	m, err := NewMatcher(getStore(t), opts)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := m.ComputeFeatures(ctx, d); err != nil {
		t.Fatal(err)
	}
	pairs := TrainingPairs(d.Props, 2, mathx.NewRand(1))
	if len(pairs) == 0 {
		t.Fatal("no training pairs")
	}
	if kernel {
		if _, err := m.Train(ctx, pairs); err != nil {
			t.Fatal(err)
		}
	} else {
		// The legacy arm: chunked Network.Fit over per-pair row slices,
		// exactly what core.Train ran before the kernel existed.
		dim := m.pairer.Dim()
		xs := make([][]float64, 0, len(pairs))
		ys := make([]int, 0, len(pairs))
		for _, lp := range pairs {
			a, err := m.prop(lp.A)
			if err != nil {
				t.Fatal(err)
			}
			b, err := m.prop(lp.B)
			if err != nil {
				t.Fatal(err)
			}
			row := make([]float64, dim)
			m.pairer.PairVector(row, a, b)
			xs = append(xs, row)
			y := 0
			if lp.Match {
				y = 1
			}
			ys = append(ys, y)
		}
		m.fitStandardizer(xs)
		for _, x := range xs {
			m.standardize(x)
		}
		net, err := nn.New(nn.Config{
			InDim: dim, Hidden: opts.Hidden, Out: 2, Activation: nn.ActReLU, Seed: opts.Seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := net.Fit(ctx, xs, ys, nn.TrainConfig{
			Schedule:  opts.Schedule,
			BatchSize: opts.BatchSize,
			Optimizer: nn.NewAdam(),
			Seed:      opts.Seed,
			Workers:   workers,
		}); err != nil {
			t.Fatal(err)
		}
		m.net = net
	}
	var buf bytes.Buffer
	if err := m.WriteModel(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestTrainGoldenDeterminismKernelVsFit is the old-vs-new golden gate:
// the legacy chunked Fit and the flat TrainKernel, each at workers 1 and
// 8, all serialize the cameras-lite model to the same bytes, and those
// bytes carry the committed CRC.
func TestTrainGoldenDeterminismKernelVsFit(t *testing.T) {
	if testing.Short() {
		t.Skip("full training pipeline ×4")
	}
	ref := goldenTrainModel(t, 1, false)
	arms := []struct {
		name    string
		workers int
		kernel  bool
	}{
		{"fit-w8", 8, false},
		{"kernel-w1", 1, true},
		{"kernel-w8", 8, true},
	}
	for _, a := range arms {
		if got := goldenTrainModel(t, a.workers, a.kernel); !bytes.Equal(got, ref) {
			t.Fatalf("%s: model bytes differ from chunked Fit at workers=1", a.name)
		}
	}
	crc := crc32.ChecksumIEEE(ref)
	if os.Getenv("LEAPME_WRITE_GOLDEN") == "1" {
		t.Logf("golden train CRC: %#08x (update goldenTrainCRC)", crc)
		return
	}
	if crc != goldenTrainCRC {
		t.Errorf("model CRC = %08x, want %08x — training arithmetic drifted", crc, goldenTrainCRC)
	}
}
