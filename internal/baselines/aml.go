package baselines

import (
	"leapme/internal/dataset"
	"leapme/internal/text"
)

// AML reimplements the lexical matching core of AgreementMakerLight
// (Faria et al.): several string matchers vote on each candidate pair and
// the ensemble similarity must clear a conservative threshold. The
// original further applies a selection step that keeps, per property, only
// matches within a margin of its best match — reproduced here — which is
// why AML's profile is very high precision at moderate recall.
type AML struct {
	// Threshold is the ensemble acceptance threshold. AML's published
	// configuration leans on high thresholds for its string matchers;
	// 0.9 reproduces its very-high-precision / moderate-recall profile.
	Threshold float64
	// SelectionMargin keeps matches within this margin of a property's
	// best match (default 0.05). Negative disables selection.
	SelectionMargin float64
}

// NewAML returns AML with its default thresholds.
func NewAML() *AML { return &AML{Threshold: 0.9, SelectionMargin: 0.05} }

// Name implements Matcher.
func (a *AML) Name() string { return "AML" }

// Match implements Matcher.
func (a *AML) Match(in Input) ([]Match, error) {
	th := a.Threshold
	if th <= 0 {
		th = 0.6
	}
	type cand struct {
		pair  dataset.Pair
		score float64
	}
	var cands []cand
	best := map[dataset.Key]float64{}
	norm := make(map[dataset.Key]string, len(in.Props))
	toks := make(map[dataset.Key][]string, len(in.Props))
	for _, p := range in.Props {
		norm[p.Key()] = text.NormalizeName(p.Name)
		toks[p.Key()] = text.Tokenize(p.Name)
	}
	dataset.CrossSourcePairs(in.Props, func(p, q dataset.Property) bool {
		s := amlSimilarity(norm[p.Key()], norm[q.Key()], toks[p.Key()], toks[q.Key()])
		if s < th {
			return true
		}
		pair := dataset.Pair{A: p.Key(), B: q.Key()}.Canonical()
		cands = append(cands, cand{pair: pair, score: s})
		if s > best[pair.A] {
			best[pair.A] = s
		}
		if s > best[pair.B] {
			best[pair.B] = s
		}
		return true
	})
	var out []Match
	for _, c := range cands {
		if a.SelectionMargin >= 0 {
			if c.score < best[c.pair.A]-a.SelectionMargin && c.score < best[c.pair.B]-a.SelectionMargin {
				continue // dominated on both sides: AML's selector drops it
			}
		}
		out = append(out, Match{Pair: c.pair, Score: c.score})
	}
	return out, nil
}

// amlSimilarity is the ensemble: the maximum of the word-overlap (token
// Jaccard), Jaro–Winkler, normalised longest-common-subsequence and
// Monge–Elkan similarities, mirroring AML's combination of its String and
// Word matchers under a "max" aggregation.
func amlSimilarity(na, nb string, ta, tb []string) float64 {
	jac := tokenJaccard(ta, tb)
	jw := text.JaroWinkler(na, nb)
	lcs := lcsSimilarity(na, nb)
	me := text.MongeElkanSym(ta, tb, text.JaroWinkler)
	s := jac
	if jw > s {
		s = jw
	}
	if lcs > s {
		s = lcs
	}
	if me > s {
		s = me
	}
	return s
}

func tokenJaccard(a, b []string) float64 {
	sa := map[string]bool{}
	for _, t := range a {
		sa[t] = true
	}
	sb := map[string]bool{}
	for _, t := range b {
		sb[t] = true
	}
	if len(sa) == 0 && len(sb) == 0 {
		return 0
	}
	inter := 0
	for t := range sa {
		if sb[t] {
			inter++
		}
	}
	union := len(sa) + len(sb) - inter
	return float64(inter) / float64(union)
}

func lcsSimilarity(a, b string) float64 {
	la, lb := len([]rune(a)), len([]rune(b))
	if la == 0 || lb == 0 {
		return 0
	}
	l := text.LongestCommonSubsequence(a, b)
	m := la
	if lb > m {
		m = lb
	}
	return float64(l) / float64(m)
}
