// Package baselines reimplements the five comparison systems of the
// paper's evaluation (Section V-A):
//
//   - AML: the lexical matching core of AgreementMakerLight — an ensemble
//     of string similarity matchers over property names with a high
//     acceptance threshold (unsupervised, name-based).
//   - FCA-Map: formal concept analysis over name tokens — properties are
//     objects, tokens are attributes; matches are extracted from the
//     concept lattice (unsupervised, name-based).
//   - Nezhadi et al.: supervised machine learning over classic string
//     similarity features only (no embeddings, no instances), using the
//     classifiers from package ml.
//   - SemProp (Fernandez et al.): syntactic matcher SynM plus semantic
//     matchers SeMa over word embeddings, with the thresholds the paper
//     uses: 0.2 for SynM, 0.2 for SeMa(−), 0.4 for SeMa(+).
//   - LSH (Duan et al.): instance-based matching with MinHash signatures
//     over value token sets and banding with band size 1.
//
// Every matcher implements the Matcher interface; the supervised one
// additionally implements Trainable. The profiles the paper reports —
// unsupervised matchers with very high precision but limited recall,
// LSH with dataset-dependent trade-offs — emerge from these
// implementations on the synthetic datasets.
package baselines

import (
	"leapme/internal/dataset"
)

// Match is one predicted correspondence with its similarity score.
type Match struct {
	Pair  dataset.Pair
	Score float64
}

// Input bundles what a matcher may look at: the properties to match and
// their instance values.
type Input struct {
	Props []dataset.Property
	// Values maps each property to its instance values. Name-based
	// matchers ignore it.
	Values map[dataset.Key][]string
}

// Matcher finds cross-source property correspondences.
type Matcher interface {
	// Name identifies the matcher in result tables.
	Name() string
	// Match returns predicted correspondences among in.Props.
	Match(in Input) ([]Match, error)
}

// Trainable is implemented by supervised matchers (Nezhadi). Train must be
// called before Match.
type Trainable interface {
	Matcher
	// Train fits the matcher on ground-truth-labeled properties.
	Train(in Input, positives []dataset.Pair, negatives []dataset.Pair) error
}

// pairSet canonicalises a pair list into a set.
func pairSet(pairs []dataset.Pair) map[dataset.Pair]bool {
	m := make(map[dataset.Pair]bool, len(pairs))
	for _, p := range pairs {
		m[p.Canonical()] = true
	}
	return m
}
