package baselines

import (
	"sort"

	"leapme/internal/dataset"
	"leapme/internal/text"
)

// FCAMap reimplements the lexical core of FCA-Map (Chang et al.): a formal
// context is built with properties as objects and their name tokens as
// attributes; the concept lattice is computed with the NextClosure
// algorithm; and matches are read off concepts whose intent (shared token
// set) covers enough of both properties' names. Token-set containment is a
// strict criterion, giving FCA-Map its near-perfect precision and limited
// recall.
type FCAMap struct {
	// MinCover is the fraction of each property's tokens that the shared
	// concept intent must cover (default 1: identical token sets, the
	// strictest and highest-precision setting).
	MinCover float64
	// MaxConcepts bounds lattice size as a safety valve (default 100000).
	MaxConcepts int
}

// NewFCAMap returns FCA-Map with default settings.
func NewFCAMap() *FCAMap { return &FCAMap{MinCover: 1, MaxConcepts: 100000} }

// Name implements Matcher.
func (f *FCAMap) Name() string { return "FCA-Map" }

// Match implements Matcher.
func (f *FCAMap) Match(in Input) ([]Match, error) {
	minCover := f.MinCover
	if minCover <= 0 {
		minCover = 1
	}
	maxConcepts := f.MaxConcepts
	if maxConcepts <= 0 {
		maxConcepts = 100000
	}

	// Formal context: object = property index, attribute = token id.
	tokenIDs := map[string]int{}
	var objects [][]int // sorted token ids per property
	tokensOf := make([]map[int]bool, len(in.Props))
	for i, p := range in.Props {
		set := map[int]bool{}
		for _, tok := range text.Tokenize(p.Name) {
			id, ok := tokenIDs[tok]
			if !ok {
				id = len(tokenIDs)
				tokenIDs[tok] = id
			}
			set[id] = true
		}
		tokensOf[i] = set
		ids := make([]int, 0, len(set))
		for id := range set {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		objects = append(objects, ids)
	}

	// Attribute → objects inverted index.
	attrObjs := make([][]int, len(tokenIDs))
	for oi, ids := range objects {
		for _, id := range ids {
			attrObjs[id] = append(attrObjs[id], oi)
		}
	}

	concepts := f.lattice(objects, attrObjs, maxConcepts)

	// Extract matches: two properties of different sources in one concept
	// extent whose intent covers ≥ minCover of each property's tokens.
	seen := map[dataset.Pair]float64{}
	for _, c := range concepts {
		if len(c.intent) == 0 || len(c.extent) < 2 {
			continue
		}
		for i := 0; i < len(c.extent); i++ {
			for j := i + 1; j < len(c.extent); j++ {
				pa, pb := in.Props[c.extent[i]], in.Props[c.extent[j]]
				if pa.Source == pb.Source {
					continue
				}
				ca := cover(c.intent, tokensOf[c.extent[i]])
				cb := cover(c.intent, tokensOf[c.extent[j]])
				score := ca
				if cb < score {
					score = cb
				}
				if score < minCover {
					continue
				}
				pair := dataset.Pair{A: pa.Key(), B: pb.Key()}.Canonical()
				if score > seen[pair] {
					seen[pair] = score
				}
			}
		}
	}
	out := make([]Match, 0, len(seen))
	for pair, score := range seen {
		out = append(out, Match{Pair: pair, Score: score})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pair, out[j].Pair
		if a.A != b.A {
			return a.A.Source < b.A.Source || (a.A.Source == b.A.Source && a.A.Name < b.A.Name)
		}
		return a.B.Source < b.B.Source || (a.B.Source == b.B.Source && a.B.Name < b.B.Name)
	})
	return out, nil
}

type concept struct {
	extent []int // object indices
	intent []int // attribute ids
}

// lattice computes formal concepts object-wise: it starts from per-object
// closures and intersects until a fixpoint — a standard bounded variant of
// concept enumeration that yields every concept reachable from object
// intents, which covers all concepts with non-empty extent.
func (f *FCAMap) lattice(objects [][]int, attrObjs [][]int, maxConcepts int) []concept {
	seen := map[string]bool{}
	var out []concept
	// Worklist of intents (as sorted id slices).
	var work [][]int
	push := func(intent []int) {
		k := intKey(intent)
		if !seen[k] {
			seen[k] = true
			work = append(work, intent)
		}
	}
	for _, ids := range objects {
		push(ids)
	}
	for len(work) > 0 && len(out) < maxConcepts {
		intent := work[len(work)-1]
		work = work[:len(work)-1]
		extent := objectsWithAll(intent, attrObjs, len(objects))
		if len(extent) == 0 {
			continue
		}
		closed := commonAttrs(extent, objects)
		k := intKey(closed)
		if !seen[k] {
			seen[k] = true
		}
		out = append(out, concept{extent: extent, intent: closed})
		// Generate successors by intersecting with further object intents.
		for _, ids := range objects {
			inter := intersect(closed, ids)
			if len(inter) > 0 && len(inter) < len(closed) {
				push(inter)
			}
		}
	}
	return out
}

func objectsWithAll(intent []int, attrObjs [][]int, numObjects int) []int {
	if len(intent) == 0 {
		return nil
	}
	counts := map[int]int{}
	for _, a := range intent {
		for _, o := range attrObjs[a] {
			counts[o]++
		}
	}
	var out []int
	for o, c := range counts {
		if c == len(intent) {
			out = append(out, o)
		}
	}
	sort.Ints(out)
	return out
}

func commonAttrs(extent []int, objects [][]int) []int {
	if len(extent) == 0 {
		return nil
	}
	common := objects[extent[0]]
	for _, o := range extent[1:] {
		common = intersect(common, objects[o])
		if len(common) == 0 {
			break
		}
	}
	return common
}

// intersect merges two sorted int slices.
func intersect(a, b []int) []int {
	var out []int
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			out = append(out, a[i])
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return out
}

func intKey(ids []int) string {
	b := make([]byte, 0, len(ids)*3)
	for _, id := range ids {
		b = append(b, byte(id), byte(id>>8), byte(id>>16))
	}
	return string(b)
}

func cover(intent []int, tokens map[int]bool) float64 {
	if len(tokens) == 0 {
		return 0
	}
	n := 0
	for _, a := range intent {
		if tokens[a] {
			n++
		}
	}
	return float64(n) / float64(len(tokens))
}
