package baselines

import (
	"hash/fnv"
	"sort"

	"leapme/internal/dataset"
	"leapme/internal/text"
)

// LSH reimplements the instance-based matcher of Duan et al. ("Instance-
// based matching of large ontologies using locality-sensitive hashing"):
// each property is represented by the token set of its instance values,
// summarised as a MinHash signature; banding groups properties whose
// bands collide into candidate pairs; candidates are accepted when their
// estimated Jaccard similarity clears a threshold. The paper runs it
// "using minhash with a band size of 1" — every single signature row is
// its own band, the most recall-friendly banding.
type LSH struct {
	// Hashes is the MinHash signature length (default 64).
	Hashes int
	// BandSize is the number of rows per band (the paper uses 1).
	BandSize int
	// Threshold on the estimated Jaccard similarity (default 0.5).
	Threshold float64
	// MaxTokens caps the value-token set per property (0 = unlimited).
	MaxTokens int
	// Seed salts the hash family.
	Seed uint64
}

// NewLSH returns LSH configured as in the paper's evaluation.
func NewLSH() *LSH {
	return &LSH{Hashes: 64, BandSize: 1, Threshold: 0.5, MaxTokens: 4096, Seed: 1}
}

// Name implements Matcher.
func (l *LSH) Name() string { return "LSH" }

// Match implements Matcher.
func (l *LSH) Match(in Input) ([]Match, error) {
	h := l.Hashes
	if h <= 0 {
		h = 64
	}
	band := l.BandSize
	if band <= 0 {
		band = 1
	}
	th := l.Threshold
	if th <= 0 {
		th = 0.5
	}

	// MinHash signatures over instance-value token sets.
	sigs := make([][]uint64, len(in.Props))
	empty := make([]bool, len(in.Props))
	for i, p := range in.Props {
		tokens := valueTokens(in.Values[p.Key()], l.MaxTokens)
		if len(tokens) == 0 {
			empty[i] = true
			continue
		}
		sigs[i] = minhash(tokens, h, l.Seed)
	}

	// Banding: group properties by each band's hashed rows.
	candidates := map[[2]int]bool{}
	numBands := h / band
	for bi := 0; bi < numBands; bi++ {
		buckets := map[uint64][]int{}
		for i := range in.Props {
			if empty[i] {
				continue
			}
			key := bandKey(sigs[i][bi*band : (bi+1)*band])
			buckets[key] = append(buckets[key], i)
		}
		for _, members := range buckets {
			if len(members) < 2 {
				continue
			}
			for x := 0; x < len(members); x++ {
				for y := x + 1; y < len(members); y++ {
					i, j := members[x], members[y]
					if in.Props[i].Source == in.Props[j].Source {
						continue
					}
					if i > j {
						i, j = j, i
					}
					candidates[[2]int{i, j}] = true
				}
			}
		}
	}

	// Verify candidates by estimated Jaccard (signature agreement rate).
	var out []Match
	for c := range candidates {
		i, j := c[0], c[1]
		agree := 0
		for k := 0; k < h; k++ {
			if sigs[i][k] == sigs[j][k] {
				agree++
			}
		}
		est := float64(agree) / float64(h)
		if est >= th {
			out = append(out, Match{
				Pair:  dataset.Pair{A: in.Props[i].Key(), B: in.Props[j].Key()}.Canonical(),
				Score: est,
			})
		}
	}
	sort.Slice(out, func(a, b int) bool {
		pa, pb := out[a].Pair, out[b].Pair
		if pa.A != pb.A {
			if pa.A.Source != pb.A.Source {
				return pa.A.Source < pb.A.Source
			}
			return pa.A.Name < pb.A.Name
		}
		if pa.B.Source != pb.B.Source {
			return pa.B.Source < pb.B.Source
		}
		return pa.B.Name < pb.B.Name
	})
	return out, nil
}

// valueTokens builds the token set of a property's values.
func valueTokens(values []string, cap int) map[string]bool {
	set := map[string]bool{}
	for _, v := range values {
		for _, tok := range text.Tokenize(v) {
			set[tok] = true
			if cap > 0 && len(set) >= cap {
				return set
			}
		}
	}
	return set
}

// minhash computes an h-row MinHash signature using salted FNV hashes.
func minhash(tokens map[string]bool, h int, seed uint64) []uint64 {
	sig := make([]uint64, h)
	for i := range sig {
		sig[i] = ^uint64(0)
	}
	// Sorted iteration for determinism.
	sorted := make([]string, 0, len(tokens))
	for t := range tokens {
		sorted = append(sorted, t)
	}
	sort.Strings(sorted)
	for _, t := range sorted {
		base := fnvHash(t)
		for i := 0; i < h; i++ {
			// A cheap but well-mixed hash family: multiply-shift over the
			// base hash with per-row odd constants.
			a := 2*uint64(i)*0x9E3779B97F4A7C15 + 1 + seed
			v := (base ^ a) * 0xBF58476D1CE4E5B9
			v ^= v >> 31
			if v < sig[i] {
				sig[i] = v
			}
		}
	}
	return sig
}

func fnvHash(s string) uint64 {
	f := fnv.New64a()
	f.Write([]byte(s))
	return f.Sum64()
}

func bandKey(rows []uint64) uint64 {
	var k uint64 = 1469598103934665603
	for _, r := range rows {
		k ^= r
		k *= 1099511628211
	}
	return k
}
