package baselines

import (
	"errors"
	"fmt"

	"leapme/internal/dataset"
	"leapme/internal/ml"
	"leapme/internal/text"
)

// Nezhadi reimplements the machine-learning ontology-alignment baseline of
// Nezhadi, Shadgar & Osareh: a classic classifier over multiple string
// similarity measures between element names. As in the original (and as
// the paper stresses), it uses neither instance data nor embeddings —
// its feature vector is exactly the string-distance block LEAPME shares
// (Table I rows 8–15) plus token-level overlap similarities.
type Nezhadi struct {
	// Classifier is the underlying model (default AdaBoost with 60
	// rounds; the original evaluated several classic learners and found
	// boosted ensembles strongest).
	Classifier ml.Classifier
	// Threshold converts probabilities to decisions (default 0.5).
	Threshold float64

	trained bool
}

// NewNezhadi returns the baseline with its default classifier.
func NewNezhadi() *Nezhadi {
	return &Nezhadi{Classifier: &ml.AdaBoost{Rounds: 60}, Threshold: 0.5}
}

// Name implements Matcher.
func (n *Nezhadi) Name() string { return "Nezhadi" }

// featureVector computes the 10 string-similarity features of a pair.
func nezhadiFeatures(a, b dataset.Property) []float64 {
	na, nb := text.NormalizeName(a.Name), text.NormalizeName(b.Name)
	ta, tb := text.Tokenize(a.Name), text.Tokenize(b.Name)
	f := make([]float64, 0, 10)
	f = append(f,
		text.NormalizedOSA(na, nb),
		text.NormalizedLevenshtein(na, nb),
		text.NormalizedDamerauLevenshtein(na, nb),
		text.NormalizedLCSubstring(na, nb),
		text.TriGramDistance(na, nb),
		text.TriGramCosineDistance(na, nb),
		text.TriGramJaccardDistance(na, nb),
		text.JaroWinklerDistance(na, nb),
		1-tokenJaccard(ta, tb),
		1-lcsSimilarity(na, nb),
	)
	return f
}

// Train implements Trainable.
func (n *Nezhadi) Train(in Input, positives, negatives []dataset.Pair) error {
	if len(positives) == 0 || len(negatives) == 0 {
		return errors.New("baselines: Nezhadi needs both positive and negative examples")
	}
	if n.Classifier == nil {
		n.Classifier = &ml.AdaBoost{Rounds: 60}
	}
	props := map[dataset.Key]dataset.Property{}
	for _, p := range in.Props {
		props[p.Key()] = p
	}
	var xs [][]float64
	var ys []int
	add := func(pairs []dataset.Pair, label int) error {
		for _, pr := range pairs {
			a, okA := props[pr.A]
			b, okB := props[pr.B]
			if !okA || !okB {
				return fmt.Errorf("baselines: training pair references unknown property %v/%v", pr.A, pr.B)
			}
			xs = append(xs, nezhadiFeatures(a, b))
			ys = append(ys, label)
		}
		return nil
	}
	if err := add(positives, 1); err != nil {
		return err
	}
	if err := add(negatives, 0); err != nil {
		return err
	}
	if err := n.Classifier.Fit(xs, ys); err != nil {
		return fmt.Errorf("baselines: Nezhadi training: %w", err)
	}
	n.trained = true
	return nil
}

// Match implements Matcher.
func (n *Nezhadi) Match(in Input) ([]Match, error) {
	if !n.trained {
		return nil, errors.New("baselines: Nezhadi.Match before Train")
	}
	th := n.Threshold
	if th <= 0 {
		th = 0.5
	}
	var out []Match
	dataset.CrossSourcePairs(in.Props, func(a, b dataset.Property) bool {
		p := n.Classifier.PredictProba(nezhadiFeatures(a, b))
		if p >= th {
			out = append(out, Match{
				Pair:  dataset.Pair{A: a.Key(), B: b.Key()}.Canonical(),
				Score: p,
			})
		}
		return true
	})
	return out, nil
}
