package baselines

import (
	"testing"

	"leapme/internal/dataset"
	"leapme/internal/domain"
	"leapme/internal/embedding"
	"leapme/internal/mathx"
)

var cachedStore *embedding.Store

func getStore(t *testing.T) *embedding.Store {
	t.Helper()
	if cachedStore == nil {
		corpus := domain.Corpus([]*domain.Category{domain.Cameras()},
			domain.CorpusConfig{SentencesPerProp: 40, Seed: 1})
		cfg := embedding.DefaultGloVeConfig()
		cfg.Dim = 24
		cfg.Epochs = 15
		s, err := embedding.TrainGloVe(corpus, cfg)
		if err != nil {
			t.Fatal(err)
		}
		cachedStore = s
	}
	return cachedStore
}

// genInput produces a small generated camera dataset as matcher input plus
// its ground truth.
func genInput(t *testing.T, seed int64) (Input, map[dataset.Pair]bool) {
	t.Helper()
	d, err := dataset.Generate(dataset.GenConfig{
		Name:           "bl-test",
		Category:       domain.Cameras(),
		NumSources:     4,
		SharedPresence: 0.8,
		CanonicalBias:  0.55,
		SplitProb:      0.05,
		NoiseProps:     6,
		MinEntities:    8,
		MaxEntities:    12,
		MissingRate:    0.3,
		Seed:           seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	truth := map[dataset.Pair]bool{}
	for _, p := range dataset.MatchingPairs(d.Props) {
		truth[p] = true
	}
	return Input{Props: d.Props, Values: d.InstancesByProperty()}, truth
}

func quality(t *testing.T, name string, matches []Match, truth map[dataset.Pair]bool) (p, r, f1 float64) {
	t.Helper()
	tp := 0
	for _, m := range matches {
		if truth[m.Pair.Canonical()] {
			tp++
		}
	}
	if len(matches) > 0 {
		p = float64(tp) / float64(len(matches))
	}
	if len(truth) > 0 {
		r = float64(tp) / float64(len(truth))
	}
	if p+r > 0 {
		f1 = 2 * p * r / (p + r)
	}
	t.Logf("%s: P=%.3f R=%.3f F1=%.3f (%d predicted, %d truth)", name, p, r, f1, len(matches), len(truth))
	return p, r, f1
}

func TestAMLProfile(t *testing.T) {
	in, truth := genInput(t, 1)
	matches, err := NewAML().Match(in)
	if err != nil {
		t.Fatal(err)
	}
	p, r, _ := quality(t, "AML", matches, truth)
	// The paper's AML profile: very high precision, moderate recall.
	if p < 0.7 {
		t.Errorf("AML precision = %.3f, want ≥ 0.7", p)
	}
	if r < 0.2 {
		t.Errorf("AML recall = %.3f, want ≥ 0.2", r)
	}
	if r > 0.95 {
		t.Errorf("AML recall = %.3f; suspiciously high for an unsupervised name matcher", r)
	}
}

func TestAMLScoresWithinBounds(t *testing.T) {
	in, _ := genInput(t, 2)
	matches, _ := NewAML().Match(in)
	for _, m := range matches {
		if m.Score < 0 || m.Score > 1 {
			t.Fatalf("score %v outside [0,1]", m.Score)
		}
		if m.Pair.A.Source == m.Pair.B.Source {
			t.Fatal("same-source match")
		}
	}
}

func TestFCAMapProfile(t *testing.T) {
	in, truth := genInput(t, 3)
	matches, err := NewFCAMap().Match(in)
	if err != nil {
		t.Fatal(err)
	}
	p, r, _ := quality(t, "FCA-Map", matches, truth)
	// Near-perfect precision, limited recall (paper: P≈0.99, R≈0.34–0.38).
	if p < 0.8 {
		t.Errorf("FCA-Map precision = %.3f, want ≥ 0.8", p)
	}
	if r == 0 {
		t.Error("FCA-Map found nothing")
	}
	if r > 0.9 {
		t.Errorf("FCA-Map recall = %.3f; too high for exact token matching", r)
	}
}

func TestFCAMapIdenticalTokenSets(t *testing.T) {
	in := Input{Props: []dataset.Property{
		{Source: "s1", Name: "Camera Resolution", Ref: "r"},
		{Source: "s2", Name: "camera_resolution", Ref: "r"},
		{Source: "s3", Name: "shutter speed", Ref: "s"},
	}}
	matches, err := NewFCAMap().Match(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 1 {
		t.Fatalf("matches = %v", matches)
	}
	want := dataset.Pair{
		A: dataset.Key{Source: "s1", Name: "Camera Resolution"},
		B: dataset.Key{Source: "s2", Name: "camera_resolution"},
	}.Canonical()
	if matches[0].Pair != want {
		t.Errorf("match = %v", matches[0].Pair)
	}
}

func TestNezhadiTrainsAndMatches(t *testing.T) {
	in, truth := genInput(t, 4)
	// Split sources: train on source00/01, test on source02/03.
	var trainProps, testProps []dataset.Property
	for _, p := range in.Props {
		if p.Source == "source00" || p.Source == "source01" {
			trainProps = append(trainProps, p)
		} else {
			testProps = append(testProps, p)
		}
	}
	pos := dataset.MatchingPairs(trainProps)
	neg := sampleNegatives(trainProps, len(pos)*2, 1)
	nz := NewNezhadi()
	if err := nz.Train(Input{Props: trainProps}, pos, neg); err != nil {
		t.Fatal(err)
	}
	matches, err := nz.Match(Input{Props: testProps})
	if err != nil {
		t.Fatal(err)
	}
	testTruth := map[dataset.Pair]bool{}
	for pr := range truth {
		if pr.A.Source != "source00" && pr.A.Source != "source01" &&
			pr.B.Source != "source00" && pr.B.Source != "source01" {
			testTruth[pr] = true
		}
	}
	_, _, f1 := quality(t, "Nezhadi", matches, testTruth)
	if f1 < 0.3 {
		t.Errorf("Nezhadi F1 = %.3f, want ≥ 0.3", f1)
	}
}

func TestNezhadiErrors(t *testing.T) {
	nz := NewNezhadi()
	if _, err := nz.Match(Input{}); err == nil {
		t.Error("Match before Train accepted")
	}
	if err := nz.Train(Input{}, nil, nil); err == nil {
		t.Error("empty training accepted")
	}
	// Pair referencing unknown property.
	err := nz.Train(Input{},
		[]dataset.Pair{{A: dataset.Key{Source: "x", Name: "y"}, B: dataset.Key{Source: "z", Name: "w"}}},
		[]dataset.Pair{{A: dataset.Key{Source: "x", Name: "y"}, B: dataset.Key{Source: "z", Name: "w"}}})
	if err == nil {
		t.Error("unknown property in training pair accepted")
	}
}

func TestSemPropProfile(t *testing.T) {
	in, truth := genInput(t, 5)
	sp := NewSemProp(getStore(t))
	matches, err := sp.Match(in)
	if err != nil {
		t.Fatal(err)
	}
	p, r, _ := quality(t, "SemProp", matches, truth)
	// SemProp: balanced moderate precision and recall (paper: P 0.62–0.82,
	// R 0.48–0.75).
	if r < 0.4 {
		t.Errorf("SemProp recall = %.3f, want ≥ 0.4", r)
	}
	if p < 0.1 {
		t.Errorf("SemProp precision = %.3f, too low", p)
	}
}

func TestSemPropNeedsStore(t *testing.T) {
	sp := &SemProp{}
	if _, err := sp.Match(Input{}); err == nil {
		t.Error("nil store accepted")
	}
}

func TestLSHProfile(t *testing.T) {
	in, truth := genInput(t, 6)
	matches, err := NewLSH().Match(in)
	if err != nil {
		t.Fatal(err)
	}
	p, r, _ := quality(t, "LSH", matches, truth)
	if p == 0 && r == 0 {
		t.Error("LSH found nothing at all")
	}
	// Instance-only matching cannot reach high precision on properties
	// with overlapping value domains; it should still find a fair share.
	if r < 0.15 {
		t.Errorf("LSH recall = %.3f, want ≥ 0.15", r)
	}
}

func TestLSHEmptyValues(t *testing.T) {
	in := Input{
		Props: []dataset.Property{
			{Source: "s1", Name: "a"},
			{Source: "s2", Name: "b"},
		},
		Values: map[dataset.Key][]string{},
	}
	matches, err := NewLSH().Match(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 0 {
		t.Errorf("matches on empty values: %v", matches)
	}
}

func TestMinhashJaccardEstimate(t *testing.T) {
	a := map[string]bool{}
	b := map[string]bool{}
	for _, w := range []string{"one", "two", "three", "four", "five", "six", "seven", "eight"} {
		a[w] = true
		b[w] = true
	}
	b["nine"] = true
	delete(b, "one")
	// True Jaccard = 7/9 ≈ 0.78.
	sa := minhash(a, 256, 1)
	sb := minhash(b, 256, 1)
	agree := 0
	for i := range sa {
		if sa[i] == sb[i] {
			agree++
		}
	}
	est := float64(agree) / 256
	if est < 0.6 || est > 0.95 {
		t.Errorf("minhash estimate = %.3f, want ≈0.78", est)
	}
}

func TestTokenJaccard(t *testing.T) {
	if got := tokenJaccard([]string{"a", "b"}, []string{"b", "c"}); got != 1.0/3 {
		t.Errorf("tokenJaccard = %v", got)
	}
	if got := tokenJaccard(nil, nil); got != 0 {
		t.Errorf("empty tokenJaccard = %v", got)
	}
	if got := tokenJaccard([]string{"a", "a", "b"}, []string{"a", "b"}); got != 1 {
		t.Errorf("duplicate-token jaccard = %v", got)
	}
}

func TestAllNamesNonEmpty(t *testing.T) {
	store := getStore(t)
	ms := []Matcher{NewAML(), NewFCAMap(), NewNezhadi(), NewSemProp(store), NewLSH()}
	seen := map[string]bool{}
	for _, m := range ms {
		if m.Name() == "" || seen[m.Name()] {
			t.Errorf("bad matcher name %q", m.Name())
		}
		seen[m.Name()] = true
	}
}

// sampleNegatives draws n random non-matching cross-source pairs.
func sampleNegatives(props []dataset.Property, n int, seed int64) []dataset.Pair {
	rng := mathx.NewRand(seed)
	seen := map[dataset.Pair]bool{}
	var out []dataset.Pair
	for attempts := 0; len(out) < n && attempts < n*50; attempts++ {
		i, j := rng.Intn(len(props)), rng.Intn(len(props))
		a, b := props[i], props[j]
		if i == j || a.Source == b.Source || dataset.Matching(a, b) {
			continue
		}
		pr := dataset.Pair{A: a.Key(), B: b.Key()}.Canonical()
		if seen[pr] {
			continue
		}
		seen[pr] = true
		out = append(out, pr)
	}
	return out
}
