package baselines

import (
	"errors"

	"leapme/internal/dataset"
	"leapme/internal/embedding"
	"leapme/internal/mathx"
	"leapme/internal/text"
)

// SemProp reimplements the matching logic of "Seeping Semantics"
// (Fernandez et al., ICDE 2018) as used in the paper: a syntactic matcher
// SynM over attribute names plus semantic matchers over word embeddings,
// where SeMa(+) accepts semantically close names and SeMa(−) vetoes
// candidates whose semantic coherence is too low. The paper's thresholds
// are 0.2 for SynM, 0.2 for SeMa(−) and 0.4 for SeMa(+).
type SemProp struct {
	// Store provides the word embeddings for the semantic matchers.
	Store *embedding.Store
	// SynMThreshold accepts name pairs whose syntactic similarity clears
	// it (default 0.2).
	SynMThreshold float64
	// SeMaNegThreshold vetoes syntactic candidates whose embedding
	// similarity falls below it (default 0.2).
	SeMaNegThreshold float64
	// SeMaPosThreshold accepts pairs on embedding similarity alone
	// (default 0.4).
	SeMaPosThreshold float64
}

// NewSemProp returns SemProp with thresholds calibrated to this
// repository's embedding substrate. The paper configures SemProp with
// 0.2 / 0.2 / 0.4 against pre-trained Common Crawl GloVe, whose cosine
// distribution is much cooler (unrelated terms ≈ 0.1–0.3) than vectors
// trained on a compact domain corpus (unrelated ≈ 0.3–0.5, synonyms
// ≈ 0.9). The defaults below occupy the same *quantiles* of our cosine
// distribution that the paper's thresholds occupy in GloVe's, preserving
// SemProp's accept/veto behaviour; set the fields explicitly to use the
// raw paper values.
func NewSemProp(store *embedding.Store) *SemProp {
	return &SemProp{
		Store:            store,
		SynMThreshold:    0.6,
		SeMaNegThreshold: 0.6,
		SeMaPosThreshold: 0.85,
	}
}

// Name implements Matcher.
func (s *SemProp) Name() string { return "SemProp" }

// Match implements Matcher.
func (s *SemProp) Match(in Input) ([]Match, error) {
	if s.Store == nil {
		return nil, errors.New("baselines: SemProp needs an embedding store")
	}
	emb := make(map[dataset.Key][]float64, len(in.Props))
	norm := make(map[dataset.Key]string, len(in.Props))
	toks := make(map[dataset.Key][]string, len(in.Props))
	for _, p := range in.Props {
		k := p.Key()
		emb[k] = s.Store.EncodePhrase(p.Name)
		norm[k] = text.NormalizeName(p.Name)
		toks[k] = text.Tokenize(p.Name)
	}
	var out []Match
	dataset.CrossSourcePairs(in.Props, func(a, b dataset.Property) bool {
		ka, kb := a.Key(), b.Key()
		syn := synM(norm[ka], norm[kb], toks[ka], toks[kb])
		sem := mathx.CosineSimilarity(emb[ka], emb[kb])
		accept := false
		switch {
		case sem >= s.SeMaPosThreshold:
			// SeMa(+): semantically coherent on its own.
			accept = true
		case syn >= s.SynMThreshold && sem >= s.SeMaNegThreshold:
			// SynM candidate that SeMa(−) does not veto.
			accept = true
		}
		if accept {
			score := sem
			if syn > score {
				score = syn
			}
			out = append(out, Match{
				Pair:  dataset.Pair{A: ka, B: kb}.Canonical(),
				Score: score,
			})
		}
		return true
	})
	return out, nil
}

// synM is SemProp's syntactic matcher: the maximum of normalised-name
// Jaro–Winkler and token overlap.
func synM(na, nb string, ta, tb []string) float64 {
	jw := text.JaroWinkler(na, nb)
	jac := tokenJaccard(ta, tb)
	if jac > jw {
		return jac
	}
	return jw
}
