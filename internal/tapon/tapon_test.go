package tapon

import (
	"context"
	"testing"

	"leapme/internal/dataset"
	"leapme/internal/domain"
	"leapme/internal/embedding"
)

var cachedStore *embedding.Store

func getStore(t *testing.T) *embedding.Store {
	t.Helper()
	if cachedStore == nil {
		corpus := domain.Corpus([]*domain.Category{domain.Cameras()},
			domain.CorpusConfig{SentencesPerProp: 50, Seed: 1})
		cfg := embedding.DefaultGloVeConfig()
		cfg.Dim = 24
		cfg.Epochs = 20
		s, err := embedding.TrainGloVe(corpus, cfg)
		if err != nil {
			t.Fatal(err)
		}
		cachedStore = s
	}
	return cachedStore
}

func cameraClasses() []string {
	var out []string
	for _, p := range domain.Cameras().Props {
		out = append(out, p.Canonical)
	}
	return out
}

func genData(t *testing.T, seed int64, sources int) *dataset.Dataset {
	t.Helper()
	d, err := dataset.Generate(dataset.GenConfig{
		Name:           "tapon-test",
		Category:       domain.Cameras(),
		NumSources:     sources,
		SharedPresence: 0.85,
		CanonicalBias:  0.5,
		NoiseProps:     4,
		MinEntities:    25,
		MaxEntities:    35,
		MissingRate:    0.25,
		Seed:           seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, cameraClasses(), DefaultOptions(1)); err == nil {
		t.Error("nil store accepted")
	}
	if _, err := New(getStore(t), []string{"one"}, DefaultOptions(1)); err == nil {
		t.Error("single class accepted")
	}
}

func TestLabelBeforeTrain(t *testing.T) {
	l, err := New(getStore(t), cameraClasses(), DefaultOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Label(nil, genData(t, 1, 3)); err == nil {
		t.Error("Label before Train accepted")
	}
}

func TestTrainNeedsLabeledSlots(t *testing.T) {
	l, _ := New(getStore(t), cameraClasses(), DefaultOptions(1))
	empty := &dataset.Dataset{Name: "empty", Sources: []string{"s"}, Props: nil}
	if err := l.Train(context.Background(), empty); err == nil {
		t.Error("empty dataset accepted")
	}
}

// TestSemanticLabelling is the package's core check: trained on some
// sources' instance values, TAPON must label a held-out source's
// properties far better than chance — *without looking at names*.
func TestSemanticLabelling(t *testing.T) {
	store := getStore(t)
	train := genData(t, 2, 5)
	test := genData(t, 99, 3) // different seed: new sources, names, values

	l, err := New(store, cameraClasses(), DefaultOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Train(context.Background(), train); err != nil {
		t.Fatal(err)
	}
	preds, err := l.Label(context.Background(), test)
	if err != nil {
		t.Fatal(err)
	}
	if len(preds) == 0 {
		t.Fatal("no predictions")
	}
	acc2, acc1, n := Accuracy(preds, test)
	t.Logf("TAPON accuracy: phase2=%.3f phase1=%.3f over %d labeled slots", acc2, acc1, n)
	if n < 20 {
		t.Fatalf("too few labeled slots: %d", n)
	}
	chance := 1.0 / float64(len(cameraClasses()))
	if acc2 < 5*chance {
		t.Errorf("phase-2 accuracy %.3f not above chance %.3f", acc2, chance)
	}
	if acc2 < 0.4 {
		t.Errorf("phase-2 accuracy %.3f too low for value-based labelling", acc2)
	}
	// The second phase must not be substantially worse than the first.
	if acc2 < acc1-0.05 {
		t.Errorf("phase 2 (%.3f) degraded phase 1 (%.3f)", acc2, acc1)
	}
}

func TestPredictionsHaveConfidence(t *testing.T) {
	store := getStore(t)
	d := genData(t, 3, 4)
	l, _ := New(store, cameraClasses(), DefaultOptions(1))
	if err := l.Train(context.Background(), d); err != nil {
		t.Fatal(err)
	}
	preds, err := l.Label(context.Background(), d)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range preds {
		if p.Confidence <= 0 || p.Confidence > 1 {
			t.Fatalf("confidence %v outside (0,1]", p.Confidence)
		}
		if p.Label == "" || p.Phase1Label == "" {
			t.Fatal("empty label")
		}
	}
}

func TestClassesSorted(t *testing.T) {
	l, _ := New(getStore(t), []string{"b", "a", "c"}, DefaultOptions(1))
	cs := l.Classes()
	if cs[0] != "a" || cs[1] != "b" || cs[2] != "c" {
		t.Errorf("classes = %v", cs)
	}
}

func TestAccuracyIgnoresNoise(t *testing.T) {
	d := &dataset.Dataset{
		Name:    "x",
		Sources: []string{"s"},
		Props: []dataset.Property{
			{Source: "s", Name: "p1", Ref: "weight"},
			{Source: "s", Name: "p2", Ref: ""},
		},
	}
	preds := []Prediction{
		{Key: dataset.Key{Source: "s", Name: "p1"}, Label: "weight", Phase1Label: "price"},
		{Key: dataset.Key{Source: "s", Name: "p2"}, Label: "weight", Phase1Label: "weight"},
	}
	a2, a1, n := Accuracy(preds, d)
	if n != 1 || a2 != 1 || a1 != 0 {
		t.Errorf("Accuracy = %v %v %v", a2, a1, n)
	}
}
