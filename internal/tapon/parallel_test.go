package tapon

import (
	"context"
	"math"
	"testing"
)

// TestLabelerDeterminismAcrossWorkerCounts: train + label with Workers=1
// and Workers=8 must agree bit for bit — labels, confidences, and
// phase-1 opinions.
func TestLabelerDeterminismAcrossWorkerCounts(t *testing.T) {
	store := getStore(t)
	train := genData(t, 6, 4)
	test := genData(t, 61, 2)
	at := func(workers int) []Prediction {
		opts := DefaultOptions(17)
		opts.Workers = workers
		l, err := New(store, cameraClasses(), opts)
		if err != nil {
			t.Fatal(err)
		}
		ctx := context.Background()
		if err := l.Train(ctx, train); err != nil {
			t.Fatalf("Train(workers=%d): %v", workers, err)
		}
		preds, err := l.Label(ctx, test)
		if err != nil {
			t.Fatalf("Label(workers=%d): %v", workers, err)
		}
		return preds
	}
	ref := at(1)
	if len(ref) == 0 {
		t.Fatal("no predictions")
	}
	for _, w := range []int{8} {
		got := at(w)
		if len(got) != len(ref) {
			t.Fatalf("workers=%d: %d predictions, want %d", w, len(got), len(ref))
		}
		for i := range ref {
			if got[i].Key != ref[i].Key || got[i].Label != ref[i].Label ||
				got[i].Phase1Label != ref[i].Phase1Label {
				t.Fatalf("workers=%d: prediction %d = %+v, want %+v", w, i, got[i], ref[i])
			}
			if math.Float64bits(got[i].Confidence) != math.Float64bits(ref[i].Confidence) {
				t.Fatalf("workers=%d: confidence for %s = %x, want %x",
					w, got[i].Key, got[i].Confidence, ref[i].Confidence)
			}
		}
	}
}
