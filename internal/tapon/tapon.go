// Package tapon implements a compact version of TAPON (Ayala et al.,
// "TAPON: a two-phase machine learning approach for semantic labelling",
// Knowledge-Based Systems 2019) — the system the paper's instance
// features come from ("Instance features are computed with TAPON, which
// includes several format-related features to which we added the
// embedding ones", Section IV-D).
//
// TAPON assigns *semantic labels* (reference-ontology classes) to slots —
// here: source properties — from their instance values alone:
//
//	phase 1: classify each property from its aggregated instance
//	         features (the same Table I rows 1–4 LEAPME uses);
//	phase 2: re-classify with *hint features* appended — information
//	         about the phase-1 labels of the property's siblings in the
//	         same source and the confidence profile of phase 1 — letting
//	         structure correct locally-ambiguous slots.
//
// Besides grounding the feature pipeline's provenance, the labeler is
// useful on its own: it maps a brand-new source onto the reference
// ontology without any pairwise matching.
package tapon

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"leapme/internal/dataset"
	"leapme/internal/embedding"
	"leapme/internal/features"
	"leapme/internal/nn"
	"leapme/internal/parallel"
)

// Options configures the labeler.
type Options struct {
	// Hidden layers of the per-phase networks (default {64, 32}).
	Hidden []int
	// Schedule is the LR schedule (default: the paper's staged schedule).
	Schedule []nn.Phase
	// BatchSize (default 32).
	BatchSize int
	// MaxValues caps aggregated instance values per property (0 = all).
	MaxValues int
	// Seed drives initialisation and shuffling.
	Seed int64
	// Workers parallelises featurization, training and labeling. The
	// semantics follow core.Options.Workers: 0 keeps the legacy serial
	// training path, ≥ 1 uses the deterministic chunked path (results
	// bit-identical across worker counts), negative means one per CPU.
	Workers int
}

// DefaultOptions returns sensible defaults.
func DefaultOptions(seed int64) Options {
	return Options{Hidden: []int{64, 32}, Schedule: nn.PaperSchedule(), BatchSize: 32, Seed: seed}
}

// Labeler is a trained two-phase semantic labeler.
type Labeler struct {
	opts    Options
	ex      *features.Extractor
	classes []string       // label index → reference property name
	classID map[string]int // reference property name → label index
	phase1  *nn.Network
	phase2  *nn.Network

	// z-score standardisation of the base features, fitted on training
	// slots (the meta-feature counts dwarf embedding components
	// otherwise, as in package core).
	featMean, featInvStd []float64
}

// New builds an untrained labeler over the given embedding store and
// label set (the reference ontology's property names).
func New(store *embedding.Store, classes []string, opts Options) (*Labeler, error) {
	if store == nil {
		return nil, errors.New("tapon: nil embedding store")
	}
	if len(classes) < 2 {
		return nil, fmt.Errorf("tapon: need at least 2 classes, got %d", len(classes))
	}
	if len(opts.Hidden) == 0 {
		opts.Hidden = []int{64, 32}
	}
	if len(opts.Schedule) == 0 {
		opts.Schedule = nn.PaperSchedule()
	}
	if opts.BatchSize <= 0 {
		opts.BatchSize = 32
	}
	ex := features.NewExtractor(store)
	ex.MaxValues = opts.MaxValues
	ex.Workers = opts.Workers
	l := &Labeler{
		opts:    opts,
		ex:      ex,
		classes: append([]string(nil), classes...),
		classID: map[string]int{},
	}
	sort.Strings(l.classes)
	for i, c := range l.classes {
		l.classID[c] = i
	}
	return l, nil
}

// Classes returns the label set in index order.
func (l *Labeler) Classes() []string { return l.classes }

// slot is one property with its base features, grouped by source.
type slot struct {
	source string
	base   []float64 // aggregated instance features (29 + D)
	label  int       // ground truth (training) or -1
}

// baseFeatures computes aggregated instance features for every property
// of d that has at least one instance value. Property *names* are
// deliberately not used: TAPON labels slots whose names are unreliable or
// machine-generated (the scenario the paper cites it for).
//
// Candidate properties are featurized on a worker pool (Options.Workers)
// with results merged in property order, so the slot list is identical
// for every worker count.
func (l *Labeler) baseFeatures(ctx context.Context, d *dataset.Dataset, labeled bool) ([]slot, []dataset.Key, error) {
	values := d.InstancesByProperty()
	// Select candidates first so the parallel stage is a pure map over a
	// fixed index set.
	var cand []int
	var labels []int
	for i, p := range d.Props {
		if len(values[p.Key()]) == 0 {
			continue
		}
		lbl := -1
		if labeled {
			id, ok := l.classID[p.Ref]
			if !ok {
				continue // not a reference property (noise): not a training slot
			}
			lbl = id
		}
		cand = append(cand, i)
		labels = append(labels, lbl)
	}
	bases, rep, err := parallel.Map(ctx, parallel.Resolve(l.opts.Workers), len(cand),
		func(i int) string { return "featurize " + d.Props[cand[i]].Key().String() },
		func(i int) ([]float64, error) {
			p := d.Props[cand[i]]
			prop := l.ex.PropertyFeatures(p.Name, values[p.Key()])
			// Use only the instance block (rows 1–4 aggregated); the name
			// embedding block is dropped.
			return append([]float64(nil), prop.Vec[:l.ex.InstanceDim()]...), nil
		})
	if err != nil {
		return nil, nil, err
	}
	if rep.Failed() > 0 {
		return nil, nil, rep.Err()
	}
	slots := make([]slot, len(cand))
	keys := make([]dataset.Key, len(cand))
	for i, pi := range cand {
		p := d.Props[pi]
		slots[i] = slot{source: p.Source, base: bases[i], label: labels[i]}
		keys[i] = p.Key()
	}
	return slots, keys, nil
}

// hintDim is the width of the phase-2 hint block: the slot's own phase-1
// probability vector plus the mean phase-1 probability vector of its
// same-source siblings.
func (l *Labeler) hintDim() int { return 2 * len(l.classes) }

// hints computes phase-2 hint features for each slot from phase-1
// probability vectors.
func (l *Labeler) hints(slots []slot, probs [][]float64) [][]float64 {
	// Sibling mean per source.
	sums := map[string][]float64{}
	counts := map[string]int{}
	for i, s := range slots {
		if sums[s.source] == nil {
			sums[s.source] = make([]float64, len(l.classes))
		}
		for j, p := range probs[i] {
			sums[s.source][j] += p
		}
		counts[s.source]++
	}
	out := make([][]float64, len(slots))
	for i, s := range slots {
		h := make([]float64, l.hintDim())
		copy(h, probs[i])
		n := counts[s.source]
		for j := range l.classes {
			sib := sums[s.source][j] - probs[i][j]
			if n > 1 {
				sib /= float64(n - 1)
			}
			h[len(l.classes)+j] = sib
		}
		out[i] = h
	}
	return out
}

// Train fits both phases on the labeled properties of d (those whose Ref
// is one of the labeler's classes and that carry instance values). ctx
// cancels training between mini-batches; nil means context.Background().
func (l *Labeler) Train(ctx context.Context, d *dataset.Dataset) error {
	slots, _, err := l.baseFeatures(ctx, d, true)
	if err != nil {
		return err
	}
	if len(slots) == 0 {
		return errors.New("tapon: no labeled training slots with instance values")
	}
	l.fitStandardizer(slots)
	for i := range slots {
		l.standardize(slots[i].base)
	}
	xs1 := make([][]float64, len(slots))
	ys := make([]int, len(slots))
	for i, s := range slots {
		xs1[i] = s.base
		ys[i] = s.label
	}
	net1, err := nn.New(nn.Config{
		InDim: l.ex.InstanceDim(), Hidden: l.opts.Hidden, Out: len(l.classes),
		Activation: nn.ActReLU, Seed: l.opts.Seed,
	})
	if err != nil {
		return fmt.Errorf("tapon: %w", err)
	}
	cfg := nn.TrainConfig{
		Schedule: l.opts.Schedule, BatchSize: l.opts.BatchSize,
		Optimizer: nn.NewAdam(), Seed: l.opts.Seed, Workers: l.opts.Workers,
	}
	if _, err := net1.Fit(ctx, xs1, ys, cfg); err != nil {
		return fmt.Errorf("tapon: phase 1: %w", err)
	}
	l.phase1 = net1

	// Phase-1 probabilities on the training slots feed phase-2 hints.
	probs, err := l.forwardAll(ctx, net1, slots, nil)
	if err != nil {
		return err
	}
	hints := l.hints(slots, probs)
	xs2 := make([][]float64, len(slots))
	for i, s := range slots {
		xs2[i] = append(append([]float64(nil), s.base...), hints[i]...)
	}
	net2, err := nn.New(nn.Config{
		InDim: l.ex.InstanceDim() + l.hintDim(), Hidden: l.opts.Hidden, Out: len(l.classes),
		Activation: nn.ActReLU, Seed: l.opts.Seed + 1,
	})
	if err != nil {
		return fmt.Errorf("tapon: %w", err)
	}
	cfg.Seed = l.opts.Seed + 1
	cfg.Optimizer = nn.NewAdam() // optimizer state is per-network
	if _, err := net2.Fit(ctx, xs2, ys, cfg); err != nil {
		return fmt.Errorf("tapon: phase 2: %w", err)
	}
	l.phase2 = net2
	return nil
}

// Trained reports whether both phases are fitted.
func (l *Labeler) Trained() bool { return l.phase1 != nil && l.phase2 != nil }

// Prediction is one labeled property.
type Prediction struct {
	Key dataset.Key
	// Label is the predicted reference property.
	Label string
	// Confidence is the phase-2 probability of the predicted label.
	Confidence float64
	// Phase1Label records what phase 1 alone would have said.
	Phase1Label string
}

// forwardChunkSize is how many slots one worker scores per network clone
// during parallel forward passes.
const forwardChunkSize = 64

// forwardAll runs net on every slot input (xs[i] when xs is non-nil,
// otherwise slots[i].base) and returns the probability vectors in slot
// order. With Workers > 1, chunks of slots are scored concurrently, each
// chunk against its own clone of the network (forward scratch is
// per-network); Forward is a pure function of the weights, so the output
// is bit-identical to the serial loop for every worker count.
func (l *Labeler) forwardAll(ctx context.Context, net *nn.Network, slots []slot, xs [][]float64) ([][]float64, error) {
	input := func(i int) []float64 {
		if xs != nil {
			return xs[i]
		}
		return slots[i].base
	}
	probs := make([][]float64, len(slots))
	workers := parallel.Resolve(l.opts.Workers)
	if workers <= 1 {
		for i := range probs {
			p, err := net.Forward(input(i))
			if err != nil {
				return nil, err
			}
			probs[i] = p
		}
		return probs, nil
	}
	chunks := parallel.Chunks(len(probs), forwardChunkSize)
	rep, err := parallel.ForEach(ctx, workers, len(chunks), nil, func(ci int) error {
		clone := net.Clone()
		for i := chunks[ci].Lo; i < chunks[ci].Hi; i++ {
			p, err := clone.Forward(input(i))
			if err != nil {
				return err
			}
			probs[i] = p
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if rep.Failed() > 0 {
		return nil, rep.Err()
	}
	return probs, nil
}

// Label classifies every property of d that has instance values. ctx
// cancels featurization and scoring; nil means context.Background().
func (l *Labeler) Label(ctx context.Context, d *dataset.Dataset) ([]Prediction, error) {
	if !l.Trained() {
		return nil, errors.New("tapon: labeler is not trained")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	slots, keys, err := l.baseFeatures(ctx, d, false)
	if err != nil {
		return nil, err
	}
	for i := range slots {
		l.standardize(slots[i].base)
	}
	probs, err := l.forwardAll(ctx, l.phase1, slots, nil)
	if err != nil {
		return nil, err
	}
	hints := l.hints(slots, probs)
	xs2 := make([][]float64, len(slots))
	for i, s := range slots {
		xs2[i] = append(append([]float64(nil), s.base...), hints[i]...)
	}
	p2s, err := l.forwardAll(ctx, l.phase2, slots, xs2)
	if err != nil {
		return nil, err
	}
	out := make([]Prediction, len(slots))
	for i := range slots {
		best, conf := argmax(p2s[i])
		p1best, _ := argmax(probs[i])
		out[i] = Prediction{
			Key:         keys[i],
			Label:       l.classes[best],
			Confidence:  conf,
			Phase1Label: l.classes[p1best],
		}
	}
	return out, nil
}

// Accuracy scores predictions against ground truth Refs, ignoring
// properties whose Ref is not one of the labeler's classes. It returns
// phase-2 and phase-1 accuracy, so callers can see the two-phase gain.
func Accuracy(preds []Prediction, d *dataset.Dataset) (phase2, phase1 float64, n int) {
	refs := map[dataset.Key]string{}
	for _, p := range d.Props {
		refs[p.Key()] = p.Ref
	}
	var ok2, ok1 int
	for _, pr := range preds {
		want := refs[pr.Key]
		if want == "" {
			continue
		}
		n++
		if pr.Label == want {
			ok2++
		}
		if pr.Phase1Label == want {
			ok1++
		}
	}
	if n == 0 {
		return 0, 0, 0
	}
	return float64(ok2) / float64(n), float64(ok1) / float64(n), n
}

func (l *Labeler) fitStandardizer(slots []slot) {
	dim := l.ex.InstanceDim()
	mean := make([]float64, dim)
	for _, s := range slots {
		for i, v := range s.base {
			mean[i] += v
		}
	}
	n := float64(len(slots))
	for i := range mean {
		mean[i] /= n
	}
	invStd := make([]float64, dim)
	for _, s := range slots {
		for i, v := range s.base {
			d := v - mean[i]
			invStd[i] += d * d
		}
	}
	for i := range invStd {
		sd := invStd[i] / n
		if sd < 1e-18 {
			invStd[i] = 0
		} else {
			invStd[i] = 1 / math.Sqrt(sd)
		}
	}
	l.featMean, l.featInvStd = mean, invStd
}

func (l *Labeler) standardize(x []float64) {
	if l.featMean == nil {
		return
	}
	for i := range x {
		x[i] = (x[i] - l.featMean[i]) * l.featInvStd[i]
	}
}

func argmax(xs []float64) (int, float64) {
	best, arg := xs[0], 0
	for i, x := range xs[1:] {
		if x > best {
			best, arg = x, i+1
		}
	}
	return arg, best
}
