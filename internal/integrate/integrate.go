// Package integrate maintains a growing multi-source integration: new
// sources are matched incrementally against the properties already known,
// their matches accumulate in a similarity graph, and property clusters
// are derived on demand. This is the workflow the paper's introduction
// motivates — "integrating new data sources and their entities into a
// knowledge graph requires matching the properties of entities" — without
// re-running the full quadratic match when a source arrives.
//
// Cost: adding a source with m properties against n existing ones scores
// m·n pairs (or the blocker's candidate subset), not (n+m)².
package integrate

import (
	"context"
	"errors"
	"fmt"

	"leapme/internal/blocking"
	"leapme/internal/core"
	"leapme/internal/dataset"
	"leapme/internal/graph"
)

// Integrator accumulates sources and their property matches.
type Integrator struct {
	// Matcher is a *trained* LEAPME matcher; features for added sources
	// are computed through it.
	Matcher *core.Matcher
	// Blocker, if non-nil, restricts scoring to its candidates. The
	// candidate set is measured over (existing ∪ new) properties and
	// filtered to pairs that touch the new source.
	Blocker blocking.Blocker

	props   []dataset.Property
	sources map[string]bool
	g       *graph.SimilarityGraph
}

// New returns an empty integrator around a trained matcher.
func New(m *core.Matcher) (*Integrator, error) {
	if m == nil {
		return nil, errors.New("integrate: nil matcher")
	}
	if !m.Trained() {
		return nil, errors.New("integrate: matcher must be trained first")
	}
	return &Integrator{
		Matcher: m,
		sources: map[string]bool{},
		g:       graph.New(),
	}, nil
}

// Sources returns the names of integrated sources in integration order.
func (ig *Integrator) Sources() []string {
	out := make([]string, 0, len(ig.sources))
	seen := map[string]bool{}
	for _, p := range ig.props {
		if !seen[p.Source] {
			seen[p.Source] = true
			out = append(out, p.Source)
		}
	}
	return out
}

// NumProperties returns the number of integrated properties.
func (ig *Integrator) NumProperties() int { return len(ig.props) }

// Graph returns the accumulated similarity graph. The caller must not
// mutate it.
func (ig *Integrator) Graph() *graph.SimilarityGraph { return ig.g }

// AddSource integrates the properties of one source from d: computes
// their features, scores them against every already-integrated property
// (or the blocker's candidates), records matches as graph edges, and
// returns the new matches. The first source added just seeds the graph.
// ctx cancels the work between units; on cancellation the integrator is
// left without the new source (no partial integration is recorded).
func (ig *Integrator) AddSource(ctx context.Context, d *dataset.Dataset, source string) ([]core.ScoredPair, error) {
	if ig.sources[source] {
		return nil, fmt.Errorf("integrate: source %q already integrated", source)
	}
	var newProps []dataset.Property
	for _, p := range d.Props {
		if p.Source == source {
			newProps = append(newProps, p)
		}
	}
	if len(newProps) == 0 {
		return nil, fmt.Errorf("integrate: dataset has no properties for source %q", source)
	}
	// Feature computation for the new source's properties (ComputeFeatures
	// is idempotent per property and accumulates in the matcher).
	sub := &dataset.Dataset{
		Name:     d.Name + "+" + source,
		Category: d.Category,
		Sources:  []string{source},
		Props:    newProps,
	}
	for _, in := range d.Instances {
		if in.Source == source {
			sub.Instances = append(sub.Instances, in)
		}
	}
	if err := ig.Matcher.ComputeFeatures(ctx, sub); err != nil {
		return nil, err
	}

	for _, p := range newProps {
		ig.g.AddNode(p.Key())
	}

	var matches []core.ScoredPair
	record := func(sp core.ScoredPair) {
		if sp.Match {
			ig.g.AddEdge(sp.A, sp.B, sp.Score)
			matches = append(matches, sp)
		}
	}

	if len(ig.props) > 0 {
		if ig.Blocker != nil {
			all := append(append([]dataset.Property(nil), ig.props...), newProps...)
			var cands []dataset.Pair
			for _, c := range ig.Blocker.Candidates(all) {
				if (c.A.Source == source) != (c.B.Source == source) {
					cands = append(cands, c)
				}
			}
			if err := ig.Matcher.MatchCandidates(ctx, cands, record); err != nil {
				return nil, err
			}
		} else {
			all := append(append([]dataset.Property(nil), ig.props...), newProps...)
			err := ig.Matcher.MatchWhere(ctx, all, func(a, b dataset.Property) bool {
				return (a.Source == source) != (b.Source == source)
			}, record)
			if err != nil {
				return nil, err
			}
		}
	}

	ig.props = append(ig.props, newProps...)
	ig.sources[source] = true
	return matches, nil
}

// Clusters derives property clusters from the accumulated graph with
// greedy correlation clustering at the given edge-weight threshold.
func (ig *Integrator) Clusters(minWeight float64) graph.Clustering {
	return ig.g.CorrelationClustering(minWeight)
}
