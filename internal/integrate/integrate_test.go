package integrate

import (
	"context"
	"testing"

	"leapme/internal/blocking"
	"leapme/internal/core"
	"leapme/internal/dataset"
	"leapme/internal/domain"
	"leapme/internal/embedding"
	"leapme/internal/mathx"
)

var cachedStore *embedding.Store

func getStore(t *testing.T) *embedding.Store {
	t.Helper()
	if cachedStore == nil {
		corpus := domain.Corpus([]*domain.Category{domain.Cameras()},
			domain.CorpusConfig{SentencesPerProp: 50, Seed: 1})
		cfg := embedding.DefaultGloVeConfig()
		cfg.Dim = 24
		cfg.Epochs = 20
		s, err := embedding.TrainGloVe(corpus, cfg)
		if err != nil {
			t.Fatal(err)
		}
		cachedStore = s
	}
	return cachedStore
}

// setup returns a trained matcher (trained on the first 3 sources) and a
// 6-source dataset whose remaining sources can be integrated.
func setup(t *testing.T) (*core.Matcher, *dataset.Dataset) {
	t.Helper()
	d, err := dataset.Generate(dataset.GenConfig{
		Name:           "int-test",
		Category:       domain.Cameras(),
		NumSources:     6,
		SharedPresence: 0.8,
		CanonicalBias:  0.55,
		NoiseProps:     6,
		MinEntities:    10,
		MaxEntities:    15,
		MissingRate:    0.3,
		Seed:           11,
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.NewMatcher(getStore(t), core.DefaultOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	m.ComputeFeatures(context.Background(), d)
	trainSrc := map[string]bool{"source00": true, "source01": true, "source02": true}
	pairs := core.TrainingPairs(d.PropsOfSources(trainSrc), 2, mathx.NewRand(1))
	if _, err := m.Train(context.Background(), pairs); err != nil {
		t.Fatal(err)
	}
	return m, d
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Error("nil matcher accepted")
	}
	m, err := core.NewMatcher(getStore(t), core.DefaultOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(m); err == nil {
		t.Error("untrained matcher accepted")
	}
}

func TestIncrementalIntegration(t *testing.T) {
	m, d := setup(t)
	ig, err := New(m)
	if err != nil {
		t.Fatal(err)
	}

	// First source seeds the graph: no matches possible.
	first, err := ig.AddSource(context.Background(), d, "source03")
	if err != nil {
		t.Fatal(err)
	}
	if len(first) != 0 {
		t.Errorf("first source produced %d matches", len(first))
	}
	if ig.NumProperties() == 0 {
		t.Fatal("no properties integrated")
	}

	// Second source must match against the first.
	second, err := ig.AddSource(context.Background(), d, "source04")
	if err != nil {
		t.Fatal(err)
	}
	if len(second) == 0 {
		t.Fatal("second source found no matches")
	}
	for _, sp := range second {
		if (sp.A.Source == "source04") == (sp.B.Source == "source04") {
			t.Fatalf("match does not touch the new source: %v", sp)
		}
	}

	third, err := ig.AddSource(context.Background(), d, "source05")
	if err != nil {
		t.Fatal(err)
	}
	if len(third) == 0 {
		t.Fatal("third source found no matches")
	}

	if got := ig.Sources(); len(got) != 3 {
		t.Errorf("sources = %v", got)
	}

	// Accumulated matches must be reasonably correct.
	truth := map[dataset.Pair]bool{}
	for _, p := range dataset.MatchingPairs(d.Props) {
		truth[p] = true
	}
	edges := ig.Graph().Edges()
	tp := 0
	for _, e := range edges {
		if truth[dataset.Pair{A: e.A, B: e.B}.Canonical()] {
			tp++
		}
	}
	prec := float64(tp) / float64(len(edges))
	t.Logf("incremental integration: %d edges, precision %.3f", len(edges), prec)
	if prec < 0.3 {
		t.Errorf("edge precision %.3f too low", prec)
	}

	// Clusters must be derivable and non-trivial.
	clusters := ig.Clusters(0.7)
	multi := 0
	for _, c := range clusters {
		if len(c) > 1 {
			multi++
		}
	}
	if multi == 0 {
		t.Error("no multi-property clusters")
	}
}

func TestAddSourceTwice(t *testing.T) {
	m, d := setup(t)
	ig, _ := New(m)
	if _, err := ig.AddSource(context.Background(), d, "source03"); err != nil {
		t.Fatal(err)
	}
	if _, err := ig.AddSource(context.Background(), d, "source03"); err == nil {
		t.Error("duplicate source accepted")
	}
	if _, err := ig.AddSource(context.Background(), d, "ghost"); err == nil {
		t.Error("unknown source accepted")
	}
}

func TestIntegrationWithBlocker(t *testing.T) {
	m, d := setup(t)
	store := getStore(t)

	full, _ := New(m)
	if _, err := full.AddSource(context.Background(), d, "source03"); err != nil {
		t.Fatal(err)
	}
	fullMatches, err := full.AddSource(context.Background(), d, "source04")
	if err != nil {
		t.Fatal(err)
	}

	blocked, _ := New(m)
	blocked.Blocker = blocking.Union{
		blocking.NewTokenBlocker(),
		blocking.NewEmbeddingBlocker(store),
	}
	if _, err := blocked.AddSource(context.Background(), d, "source03"); err != nil {
		t.Fatal(err)
	}
	blockedMatches, err := blocked.AddSource(context.Background(), d, "source04")
	if err != nil {
		t.Fatal(err)
	}

	// The blocker may only lose candidates, never invent matches.
	fullSet := map[dataset.Pair]bool{}
	for _, sp := range fullMatches {
		fullSet[dataset.Pair{A: sp.A, B: sp.B}.Canonical()] = true
	}
	for _, sp := range blockedMatches {
		if !fullSet[dataset.Pair{A: sp.A, B: sp.B}.Canonical()] {
			t.Fatalf("blocked integration invented match %v", sp)
		}
	}
	if len(blockedMatches) < len(fullMatches)/2 {
		t.Errorf("blocker lost too many matches: %d vs %d", len(blockedMatches), len(fullMatches))
	}
	t.Logf("full=%d blocked=%d matches", len(fullMatches), len(blockedMatches))
}
