package dataset

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"unicode/utf8"
)

// Dropped describes one record removed by Quarantine: which section it
// came from, its index there, and why it was dropped.
type Dropped struct {
	Section string // "source", "property", or "instance"
	Index   int
	Reason  string
}

// String renders the record for error reports.
func (q Dropped) String() string {
	return fmt.Sprintf("%s %d: %s", q.Section, q.Index, q.Reason)
}

// Quarantine salvages the valid part of a possibly-malformed dataset:
// records that strict Validate would reject (empty keys, duplicates,
// non-UTF-8 text, dangling references) are dropped and reported, and the
// remainder is returned as a new dataset that passes Validate. Dropping
// cascades: instances of a quarantined property are quarantined too. The
// receiver is not modified.
func (d *Dataset) Quarantine() (*Dataset, []Dropped) {
	clean := &Dataset{Name: d.Name, Category: d.Category}
	if clean.Name == "" {
		clean.Name = "unnamed"
	}
	var dropped []Dropped

	srcs := map[string]bool{}
	for i, s := range d.Sources {
		switch {
		case s == "":
			dropped = append(dropped, Dropped{"source", i, "empty source name"})
		case !utf8.ValidString(s):
			dropped = append(dropped, Dropped{"source", i, "source name is not valid UTF-8"})
		case srcs[s]:
			dropped = append(dropped, Dropped{"source", i, fmt.Sprintf("duplicate source %q", s)})
		default:
			srcs[s] = true
			clean.Sources = append(clean.Sources, s)
		}
	}
	props := map[Key]bool{}
	for i, p := range d.Props {
		switch {
		case p.Name == "":
			dropped = append(dropped, Dropped{"property", i, fmt.Sprintf("empty property name in source %q", p.Source)})
		case !utf8.ValidString(p.Name):
			dropped = append(dropped, Dropped{"property", i, "property name is not valid UTF-8"})
		case !srcs[p.Source]:
			dropped = append(dropped, Dropped{"property", i, fmt.Sprintf("unknown or quarantined source %q", p.Source)})
		case props[p.Key()]:
			dropped = append(dropped, Dropped{"property", i, fmt.Sprintf("duplicate property %s", p.Key())})
		default:
			props[p.Key()] = true
			clean.Props = append(clean.Props, p)
		}
	}
	for i, in := range d.Instances {
		switch {
		case in.Entity == "":
			dropped = append(dropped, Dropped{"instance", i, "empty entity"})
		case !utf8.ValidString(in.Value):
			dropped = append(dropped, Dropped{"instance", i, "value is not valid UTF-8"})
		case !props[Key{Source: in.Source, Name: in.Property}]:
			dropped = append(dropped, Dropped{"instance", i,
				fmt.Sprintf("unknown or quarantined property %s/%s", in.Source, in.Property)})
		default:
			clean.Instances = append(clean.Instances, in)
		}
	}
	return clean, dropped
}

// ReadJSONQuarantine is ReadJSON in lenient mode: instead of rejecting
// the dataset on the first malformed record it quarantines bad records
// and returns the valid remainder plus the drop list. Only decode errors
// (malformed JSON) fail.
func ReadJSONQuarantine(r io.Reader) (*Dataset, []Dropped, error) {
	d, err := decodeJSON(r)
	if err != nil {
		return nil, nil, err
	}
	clean, dropped := d.Quarantine()
	return clean, dropped, nil
}

// LoadDirQuarantine reads a dataset saved with SaveDir in lenient mode
// (see ReadJSONQuarantine).
func LoadDirQuarantine(dir string) (*Dataset, []Dropped, error) {
	f, err := os.Open(filepath.Join(dir, "dataset.json"))
	if err != nil {
		return nil, nil, fmt.Errorf("dataset: %w", err)
	}
	defer f.Close()
	return ReadJSONQuarantine(f)
}
