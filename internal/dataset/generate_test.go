package dataset

import (
	"bytes"
	"strings"
	"testing"

	"leapme/internal/domain"
)

func smallConfig(seed int64) GenConfig {
	return GenConfig{
		Name:           "test",
		Category:       domain.Headphones(),
		NumSources:     4,
		SharedPresence: 0.8,
		SplitProb:      0.1,
		NoiseProps:     6,
		MinEntities:    5,
		MaxEntities:    10,
		MissingRate:    0.3,
		Seed:           seed,
	}
}

func TestGenerateValid(t *testing.T) {
	d, err := Generate(smallConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	s := d.Summary()
	if s.Sources != 4 {
		t.Errorf("sources = %d", s.Sources)
	}
	if s.Properties < 4*10 {
		t.Errorf("suspiciously few properties: %d", s.Properties)
	}
	if s.MatchingPairs == 0 {
		t.Error("no matching pairs generated")
	}
	if s.Instances == 0 {
		t.Error("no instances generated")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(smallConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(smallConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Props) != len(b.Props) || len(a.Instances) != len(b.Instances) {
		t.Fatal("same seed produced different shapes")
	}
	for i := range a.Props {
		if a.Props[i] != b.Props[i] {
			t.Fatalf("prop %d differs: %v vs %v", i, a.Props[i], b.Props[i])
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	a, _ := Generate(smallConfig(1))
	b, _ := Generate(smallConfig(2))
	same := len(a.Props) == len(b.Props)
	if same {
		identical := true
		for i := range a.Props {
			if a.Props[i] != b.Props[i] {
				identical = false
				break
			}
		}
		if identical {
			t.Error("different seeds produced identical datasets")
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	cfg := smallConfig(1)
	cfg.Category = nil
	if _, err := Generate(cfg); err == nil {
		t.Error("nil category accepted")
	}
	cfg = smallConfig(1)
	cfg.NumSources = 1
	if _, err := Generate(cfg); err == nil {
		t.Error("single source accepted")
	}
	cfg = smallConfig(1)
	cfg.MinEntities = 0
	if _, err := Generate(cfg); err == nil {
		t.Error("zero entities accepted")
	}
	cfg = smallConfig(1)
	cfg.SharedPresence = 0
	if _, err := Generate(cfg); err == nil {
		t.Error("zero presence accepted")
	}
}

func TestGenerateHeterogeneousNames(t *testing.T) {
	d, err := Generate(smallConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	// Group matchable properties by ref; at least one group must contain
	// two different surface names (otherwise matching is trivial).
	byRef := map[string]map[string]bool{}
	for _, p := range d.Props {
		if p.Ref == "" {
			continue
		}
		if byRef[p.Ref] == nil {
			byRef[p.Ref] = map[string]bool{}
		}
		byRef[p.Ref][strings.ToLower(p.Name)] = true
	}
	heterogeneous := 0
	for _, names := range byRef {
		if len(names) > 1 {
			heterogeneous++
		}
	}
	if heterogeneous < len(byRef)/2 {
		t.Errorf("only %d/%d reference properties have heterogeneous names", heterogeneous, len(byRef))
	}
}

func TestPresetShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("full camera preset generation in -short mode")
	}
	d, err := Generate(CamerasConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	s := d.Summary()
	if s.Sources != 24 {
		t.Errorf("cameras sources = %d, want 24", s.Sources)
	}
	// Paper: >3200 properties, ~9200 matching pairs, 100 entities/source.
	if s.Properties < 2800 || s.Properties > 4000 {
		t.Errorf("cameras properties = %d, want ≈3200", s.Properties)
	}
	if s.MatchingPairs < 7500 || s.MatchingPairs > 11500 {
		t.Errorf("cameras matching pairs = %d, want ≈9200", s.MatchingPairs)
	}
	if s.Entities != 2400 {
		t.Errorf("cameras entities = %d, want 2400 (100×24 balanced)", s.Entities)
	}
}

func TestWDCPresetsImbalanced(t *testing.T) {
	for _, cfg := range []GenConfig{HeadphonesConfig(1), PhonesConfig(1), TVsConfig(1)} {
		d, err := Generate(cfg)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		// Per-source entity counts should differ (imbalanced setting).
		perSrc := map[string]map[string]bool{}
		for _, in := range d.Instances {
			if perSrc[in.Source] == nil {
				perSrc[in.Source] = map[string]bool{}
			}
			perSrc[in.Source][in.Entity] = true
		}
		counts := map[int]bool{}
		for _, ents := range perSrc {
			counts[len(ents)] = true
		}
		if len(counts) < 2 {
			t.Errorf("%s: all sources have identical entity counts; want imbalance", cfg.Name)
		}
	}
}

func TestLite(t *testing.T) {
	lite := Lite(CamerasConfig(1))
	if lite.NumSources != 8 || lite.NoiseProps != 24 {
		t.Errorf("Lite cameras = %+v", lite)
	}
	if !strings.HasSuffix(lite.Name, "-lite") {
		t.Errorf("Lite name = %q", lite.Name)
	}
	d, err := Generate(lite)
	if err != nil {
		t.Fatal(err)
	}
	if d.Summary().Properties > 800 {
		t.Errorf("lite cameras too large: %d properties", d.Summary().Properties)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	d, _ := Generate(smallConfig(5))
	var buf bytes.Buffer
	if err := d.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != d.Name || len(got.Props) != len(d.Props) || len(got.Instances) != len(d.Instances) {
		t.Error("JSON round trip changed dataset shape")
	}
	for i := range d.Props {
		if got.Props[i] != d.Props[i] {
			t.Fatalf("prop %d changed in round trip", i)
		}
	}
}

func TestReadJSONInvalid(t *testing.T) {
	if _, err := ReadJSON(bytes.NewReader([]byte("not json"))); err == nil {
		t.Error("invalid JSON accepted")
	}
	if _, err := ReadJSON(bytes.NewReader([]byte(`{"name":""}`))); err == nil {
		t.Error("invalid dataset accepted")
	}
}

func TestInstancesCSVRoundTrip(t *testing.T) {
	d, _ := Generate(smallConfig(6))
	var buf bytes.Buffer
	if err := d.WriteInstancesCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadInstancesCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(d.Instances) {
		t.Fatalf("CSV round trip: %d instances, want %d", len(got), len(d.Instances))
	}
	for i := range got {
		if got[i] != d.Instances[i] {
			t.Fatalf("instance %d changed: %v vs %v", i, got[i], d.Instances[i])
		}
	}
}

func TestFromInstances(t *testing.T) {
	ins := []Instance{
		{Source: "a", Entity: "e1", Property: "p1", Value: "v1"},
		{Source: "a", Entity: "e1", Property: "p2", Value: "v2"},
		{Source: "b", Entity: "e2", Property: "p1", Value: "v3"},
	}
	d, err := FromInstances("user", "misc", ins)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Sources) != 2 || len(d.Props) != 3 {
		t.Errorf("FromInstances shape: %d sources, %d props", len(d.Sources), len(d.Props))
	}
	for _, p := range d.Props {
		if p.Ref != "" {
			t.Error("FromInstances should produce unlabeled properties")
		}
	}
}

func TestSaveLoadDir(t *testing.T) {
	d, _ := Generate(smallConfig(8))
	dir := t.TempDir()
	if err := d.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	got, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != d.Name || len(got.Instances) != len(d.Instances) {
		t.Error("SaveDir/LoadDir round trip failed")
	}
}
