package dataset

import (
	"fmt"
	"math/rand"

	"leapme/internal/domain"
)

// GenConfig parameterises the synthetic multi-source generator.
type GenConfig struct {
	Name     string
	Category *domain.Category

	NumSources int
	// SharedPresence is the probability that a given reference property is
	// represented in a given source. Lower presence → fewer matching pairs
	// relative to property count.
	SharedPresence float64
	// SplitProb is the probability that a source represents a present
	// reference property with *two* differently-named properties, yielding
	// the 1:n correspondences the paper highlights ("shutter speed").
	SplitProb float64
	// CanonicalBias is the probability that a source names a property by
	// its canonical reference name rather than a random synonym. Real
	// multi-source data (DI2KG) contains many exact-name matches across
	// sources; 0 means every source draws a uniform synonym (maximum
	// heterogeneity). Default 0.5 when unset (exactly 0 is respected only
	// through UniformNames).
	CanonicalBias float64
	// UniformNames forces CanonicalBias = 0.
	UniformNames bool
	// NoiseProps is the number of unmatched source-specific properties per
	// source.
	NoiseProps int

	// MinEntities/MaxEntities bound the per-source entity count, drawn
	// uniformly. Equal values give the balanced setting of the camera
	// dataset; spread values give the imbalanced "low-quality" setting of
	// the WDC datasets.
	MinEntities, MaxEntities int
	// UniverseEntities is the size of the shared product universe the
	// sources draw their entities from. The DI2KG/WDC datasets describe
	// overlapping product catalogs, so the same underlying value appears
	// (differently formatted) in several sources — the signal
	// instance-based matching feeds on. Default: 2 × MaxEntities.
	UniverseEntities int

	// MissingRate is the probability an entity lacks a value for a
	// property of its source.
	MissingRate float64

	Seed int64
}

// Generate samples a dataset according to cfg.
func Generate(cfg GenConfig) (*Dataset, error) {
	if cfg.Category == nil {
		return nil, fmt.Errorf("dataset: nil category in config %q", cfg.Name)
	}
	if cfg.NumSources < 2 {
		return nil, fmt.Errorf("dataset %q: need at least 2 sources, got %d", cfg.Name, cfg.NumSources)
	}
	if cfg.MinEntities <= 0 || cfg.MaxEntities < cfg.MinEntities {
		return nil, fmt.Errorf("dataset %q: bad entity bounds [%d, %d]", cfg.Name, cfg.MinEntities, cfg.MaxEntities)
	}
	if cfg.SharedPresence <= 0 || cfg.SharedPresence > 1 {
		return nil, fmt.Errorf("dataset %q: SharedPresence %v outside (0, 1]", cfg.Name, cfg.SharedPresence)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	if cfg.UniformNames {
		cfg.CanonicalBias = 0
	} else if cfg.CanonicalBias <= 0 {
		cfg.CanonicalBias = 0.5
	}

	d := &Dataset{Name: cfg.Name, Category: cfg.Category.Name}

	type srcProp struct {
		prop   Property
		spec   *domain.PropertySpec
		refIdx int // index into Category.Props, -1 for noise
	}

	// Noise properties are dealt from one globally-deduplicated pool so
	// two sources never carry the *identical* unmatched property — such
	// pairs would be semantic matches mislabeled as negatives, which caps
	// achievable precision for reasons no matcher can see. Sources still
	// share individual words ("box weight" vs "box width"), keeping the
	// realistic near-miss noise.
	noisePool, err := domain.GenerateNoiseProperties(cfg.NoiseProps*cfg.NumSources, rng)
	if err != nil {
		return nil, fmt.Errorf("dataset %q: %w", cfg.Name, err)
	}

	// Each reference property uses a small *active pool* of synonyms for
	// the whole dataset rather than every synonym it could have: in the
	// real DI2KG data a reference property surfaces under only a handful
	// of distinct labels across all 24 sources. Index 0 stays the
	// canonical name; CanonicalBias draws favour it.
	activeSyns := make([][]int, len(cfg.Category.Props))
	for pi := range cfg.Category.Props {
		n := len(cfg.Category.Props[pi].Synonyms)
		poolSize := 2 + rng.Intn(2) // 2–3 active synonyms
		if poolSize > n {
			poolSize = n
		}
		pool := []int{0}
		perm := rng.Perm(n - 1)
		for _, p := range perm {
			if len(pool) == poolSize {
				break
			}
			pool = append(pool, p+1)
		}
		activeSyns[pi] = pool
	}

	// The shared product universe: each universe entity has one
	// underlying value per reference property. Sources sample entities
	// from the universe and render the shared values in their own style.
	universeSize := cfg.UniverseEntities
	if universeSize <= 0 {
		universeSize = 2 * cfg.MaxEntities
	}
	universe := make([][]domain.Value, universeSize)
	for e := range universe {
		universe[e] = make([]domain.Value, len(cfg.Category.Props))
		for pi := range cfg.Category.Props {
			v, err := cfg.Category.Props[pi].Sample(rng)
			if err != nil {
				return nil, fmt.Errorf("dataset %q: %w", cfg.Name, err)
			}
			universe[e][pi] = v
		}
	}

	for s := 0; s < cfg.NumSources; s++ {
		srcName := fmt.Sprintf("source%02d", s)
		d.Sources = append(d.Sources, srcName)
		style := domain.RandomStyle(rng)
		// Naming conventions are a source-level trait with occasional
		// per-property deviation, like real sites.
		srcConvention := rng.Intn(domain.NumNamingConventions)

		var props []srcProp
		usedNames := map[string]bool{}
		addProp := func(name, ref string, spec *domain.PropertySpec, refIdx int) {
			if usedNames[name] {
				return // identical surface name collision within source; skip
			}
			usedNames[name] = true
			props = append(props, srcProp{
				prop:   Property{Source: srcName, Name: name, Ref: ref},
				spec:   spec,
				refIdx: refIdx,
			})
		}

		// Shared (matchable) properties.
		for pi := range cfg.Category.Props {
			spec := &cfg.Category.Props[pi]
			if rng.Float64() >= cfg.SharedPresence {
				continue
			}
			pool := activeSyns[pi]
			variant := pool[rng.Intn(len(pool))]
			if rng.Float64() < cfg.CanonicalBias {
				variant = 0 // synonym lists lead with the canonical name
			}
			convention := srcConvention
			if rng.Float64() < 0.15 {
				convention = rng.Intn(domain.NumNamingConventions)
			}
			addProp(spec.SurfaceName(variant, convention), spec.Canonical, spec, pi)
			if rng.Float64() < cfg.SplitProb && len(pool) > 1 {
				// Second differently-named representation of the same
				// reference property within this source.
				v2 := pool[rng.Intn(len(pool))]
				if v2 != variant {
					addProp(spec.SurfaceName(v2, convention), spec.Canonical, spec, pi)
				}
			}
		}

		// Noise properties: this source's share of the global pool.
		noise := noisePool[s*cfg.NoiseProps : (s+1)*cfg.NoiseProps]
		for i := range noise {
			spec := noise[i].Spec
			name := domainSurface(noise[i].Name, srcConvention)
			addProp(name, "", &spec, -1)
		}

		// Entities: a random subset of the shared universe; instance
		// values of matchable properties render the entity's shared
		// underlying value in this source's style, while noise properties
		// draw independent values.
		nEnt := cfg.MinEntities
		if cfg.MaxEntities > cfg.MinEntities {
			nEnt += rng.Intn(cfg.MaxEntities - cfg.MinEntities + 1)
		}
		if nEnt > universeSize {
			nEnt = universeSize
		}
		for _, sp := range props {
			d.Props = append(d.Props, sp.prop)
		}
		entityIdx := rng.Perm(universeSize)[:nEnt]
		for _, ei := range entityIdx {
			entity := fmt.Sprintf("%s-p%04d", srcName, ei)
			for _, sp := range props {
				if rng.Float64() < cfg.MissingRate {
					continue
				}
				var value string
				var err error
				if sp.refIdx >= 0 {
					value, err = sp.spec.Render(universe[ei][sp.refIdx], style, rng)
				} else {
					value, err = sp.spec.Value(rng, style)
				}
				if err != nil {
					return nil, fmt.Errorf("dataset %q: property %q: %w", cfg.Name, sp.prop.Name, err)
				}
				d.Instances = append(d.Instances, Instance{
					Source:   srcName,
					Entity:   entity,
					Property: sp.prop.Name,
					Value:    value,
				})
			}
		}
	}

	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("dataset %q: generator produced invalid data: %w", cfg.Name, err)
	}
	return d, nil
}

// domainSurface applies a naming convention to a noise-property name.
func domainSurface(name string, convention int) string {
	// Reuse the synonym decoration through a one-synonym spec.
	p := domain.PropertySpec{Canonical: name, Synonyms: []string{name}}
	return p.SurfaceName(0, convention)
}
