package dataset

import (
	"fmt"

	"leapme/internal/domain"
)

// The presets reproduce the statistics the paper reports for its four
// evaluation datasets.
//
// Cameras (DI2KG challenge): 24 sources, >3200 properties, ~9200 matching
// pairs, 100 entities per source (the paper caps entities at 100/source to
// balance the dataset). With 40 reference properties at presence 0.92 each
// source carries ~37 shared properties; with C(22,2)≈231 matched source
// pairs per reference property plus splits this lands near 9200 pairs, and
// ~96 noise properties per source push the property count past 3200.
//
// The WDC datasets (headphones, phones, TVs) are far smaller and
// imbalanced — the paper calls them the "low-quality" datasets — so their
// presets use fewer sources, lower presence, and wide entity ranges.

// CamerasConfig is the full-scale DI2KG-shaped camera preset.
func CamerasConfig(seed int64) GenConfig {
	return GenConfig{
		Name:           "cameras",
		Category:       domain.Cameras(),
		NumSources:     24,
		SharedPresence: 0.92,
		CanonicalBias:  0.55,
		SplitProb:      0.06,
		NoiseProps:     96,
		MinEntities:    100,
		MaxEntities:    100,
		MissingRate:    0.25,
		Seed:           seed,
	}
}

// HeadphonesConfig is the WDC-shaped headphones preset.
func HeadphonesConfig(seed int64) GenConfig {
	return GenConfig{
		Name:           "headphones",
		Category:       domain.Headphones(),
		NumSources:     6,
		SharedPresence: 0.78,
		CanonicalBias:  0.4,
		SplitProb:      0.08,
		NoiseProps:     14,
		MinEntities:    8,
		MaxEntities:    120,
		MissingRate:    0.35,
		Seed:           seed,
	}
}

// PhonesConfig is the WDC-shaped phones preset.
func PhonesConfig(seed int64) GenConfig {
	return GenConfig{
		Name:           "phones",
		Category:       domain.Phones(),
		NumSources:     9,
		SharedPresence: 0.72,
		CanonicalBias:  0.4,
		SplitProb:      0.08,
		NoiseProps:     16,
		MinEntities:    6,
		MaxEntities:    100,
		MissingRate:    0.35,
		Seed:           seed,
	}
}

// TVsConfig is the WDC-shaped TVs preset.
func TVsConfig(seed int64) GenConfig {
	return GenConfig{
		Name:           "tvs",
		Category:       domain.TVs(),
		NumSources:     7,
		SharedPresence: 0.75,
		CanonicalBias:  0.4,
		SplitProb:      0.08,
		NoiseProps:     15,
		MinEntities:    8,
		MaxEntities:    110,
		MissingRate:    0.35,
		Seed:           seed,
	}
}

// Lite shrinks a preset for fast experiments: fewer sources, fewer noise
// properties and entities, same heterogeneity mechanisms. The quadratic
// pair count drops by roughly the square of the source reduction, which
// keeps full 25-run sweeps tractable while preserving the result *shape*
// (who wins and by how much), as documented in EXPERIMENTS.md.
func Lite(cfg GenConfig) GenConfig {
	if cfg.NumSources > 8 {
		cfg.NumSources = 8
	}
	if cfg.NoiseProps > 24 {
		cfg.NoiseProps = 24
	}
	if cfg.MinEntities > 25 {
		cfg.MinEntities = 25
	}
	if cfg.MaxEntities > 40 {
		cfg.MaxEntities = 40
	}
	cfg.Name += "-lite"
	return cfg
}

// LargeConfig sizes a preset for blocking and ANN-index benchmarks:
// roughly props properties spread over sources, far beyond the paper's
// datasets. synonymRate in [0, 1] controls naming heterogeneity — the
// probability that a source labels a shared property with a synonym
// instead of its canonical name (0 = all canonical, 1 = never canonical).
// Entities are kept small: the large presets stress candidate generation
// over property *names*, not instance volume.
//
// The property total is met by topping up each source with noise
// properties once its shared (matched) properties are counted, so the
// matched-pair structure stays category-shaped while the corpus grows.
// The global noise-name budget (domain.GenerateNoiseProperties) bounds
// props at roughly 100k; Generate reports an error beyond it.
func LargeConfig(category *domain.Category, props, sources int, synonymRate float64, seed int64) GenConfig {
	if sources < 2 {
		sources = 2
	}
	if synonymRate < 0 {
		synonymRate = 0
	}
	if synonymRate > 1 {
		synonymRate = 1
	}
	const presence = 0.85
	const split = 0.05
	// Expected shared properties per source: present references plus the
	// extra property each split contributes.
	shared := int(float64(len(category.Props)) * presence * (1 + split))
	noise := props/sources - shared
	if noise < 0 {
		noise = 0
	}
	cfg := GenConfig{
		Name:           fmt.Sprintf("%s-large-%dk", category.Name, (props+500)/1000),
		Category:       category,
		NumSources:     sources,
		SharedPresence: presence,
		CanonicalBias:  1 - synonymRate,
		SplitProb:      split,
		NoiseProps:     noise,
		MinEntities:    4,
		MaxEntities:    8,
		MissingRate:    0.3,
		Seed:           seed,
	}
	// CanonicalBias 0 would silently default to 0.5; UniformNames is the
	// explicit "never canonical" switch.
	if synonymRate >= 1 {
		cfg.UniformNames = true
	}
	return cfg
}

// AllConfigs returns the four full presets in the paper's order.
func AllConfigs(seed int64) []GenConfig {
	return []GenConfig{
		CamerasConfig(seed),
		HeadphonesConfig(seed),
		PhonesConfig(seed),
		TVsConfig(seed),
	}
}
