package dataset

import (
	"testing"
)

func toy() *Dataset {
	return &Dataset{
		Name:     "toy",
		Category: "cameras",
		Sources:  []string{"s1", "s2", "s3"},
		Props: []Property{
			{Source: "s1", Name: "resolution", Ref: "resolution"},
			{Source: "s1", Name: "weight", Ref: "weight"},
			{Source: "s2", Name: "megapixels", Ref: "resolution"},
			{Source: "s2", Name: "mass", Ref: "weight"},
			{Source: "s3", Name: "mp", Ref: "resolution"},
			{Source: "s3", Name: "sku", Ref: ""},
		},
		Instances: []Instance{
			{Source: "s1", Entity: "e1", Property: "resolution", Value: "24 MP"},
			{Source: "s1", Entity: "e1", Property: "weight", Value: "500 g"},
			{Source: "s2", Entity: "e2", Property: "megapixels", Value: "45.7"},
			{Source: "s3", Entity: "e3", Property: "mp", Value: "20 megapixels"},
			{Source: "s3", Entity: "e3", Property: "sku", Value: "B0012345"},
		},
	}
}

func TestValidateOK(t *testing.T) {
	if err := toy().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	d := toy()
	d.Name = ""
	if d.Validate() == nil {
		t.Error("empty name accepted")
	}

	d = toy()
	d.Sources = append(d.Sources, "s1")
	if d.Validate() == nil {
		t.Error("duplicate source accepted")
	}

	d = toy()
	d.Props = append(d.Props, Property{Source: "s1", Name: "resolution"})
	if d.Validate() == nil {
		t.Error("duplicate property accepted")
	}

	d = toy()
	d.Props = append(d.Props, Property{Source: "ghost", Name: "x"})
	if d.Validate() == nil {
		t.Error("property with unknown source accepted")
	}

	d = toy()
	d.Instances = append(d.Instances, Instance{Source: "s1", Entity: "e9", Property: "ghost", Value: "v"})
	if d.Validate() == nil {
		t.Error("instance with unknown property accepted")
	}
}

func TestMatching(t *testing.T) {
	a := Property{Source: "s1", Name: "resolution", Ref: "resolution"}
	b := Property{Source: "s2", Name: "megapixels", Ref: "resolution"}
	c := Property{Source: "s2", Name: "mass", Ref: "weight"}
	n := Property{Source: "s2", Name: "sku", Ref: ""}
	sameSrc := Property{Source: "s1", Name: "mp", Ref: "resolution"}
	if !Matching(a, b) {
		t.Error("same ref, different source should match")
	}
	if Matching(a, c) {
		t.Error("different refs should not match")
	}
	if Matching(n, n) || Matching(a, n) {
		t.Error("empty ref should never match")
	}
	if Matching(a, sameSrc) {
		t.Error("same-source properties should not match")
	}
}

func TestMatchingPairs(t *testing.T) {
	pairs := MatchingPairs(toy().Props)
	// resolution: s1-s2, s1-s3, s2-s3 = 3; weight: s1-s2 = 1.
	if len(pairs) != 4 {
		t.Fatalf("got %d pairs, want 4: %v", len(pairs), pairs)
	}
	// Canonical ordering inside each pair.
	for _, p := range pairs {
		if p.B.Source < p.A.Source {
			t.Errorf("pair %v not canonical", p)
		}
	}
}

func TestPairCanonical(t *testing.T) {
	p := Pair{A: Key{"s2", "x"}, B: Key{"s1", "y"}}
	c := p.Canonical()
	if c.A.Source != "s1" || c.B.Source != "s2" {
		t.Errorf("Canonical = %v", c)
	}
	if c != (Pair{A: Key{"s1", "y"}, B: Key{"s2", "x"}}).Canonical() {
		t.Error("canonical forms of {a,b} and {b,a} must be equal")
	}
}

func TestCrossSourcePairs(t *testing.T) {
	var n int
	CrossSourcePairs(toy().Props, func(a, b Property) bool {
		if a.Source == b.Source {
			t.Fatal("same-source pair emitted")
		}
		n++
		return true
	})
	// 6 props: C(6,2)=15 total, minus same-source pairs: s1 has 2 (1 pair),
	// s2 has 2 (1 pair), s3 has 2 (1 pair) → 12.
	if n != 12 {
		t.Errorf("enumerated %d pairs, want 12", n)
	}
	// Early stop.
	n = 0
	CrossSourcePairs(toy().Props, func(a, b Property) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Errorf("early stop failed, saw %d", n)
	}
}

func TestInstancesByProperty(t *testing.T) {
	m := toy().InstancesByProperty()
	vals := m[Key{Source: "s1", Name: "resolution"}]
	if len(vals) != 1 || vals[0] != "24 MP" {
		t.Errorf("values = %v", vals)
	}
}

func TestSummary(t *testing.T) {
	s := toy().Summary()
	if s.Sources != 3 || s.Properties != 6 || s.Instances != 5 || s.MatchingPairs != 4 {
		t.Errorf("Summary = %+v", s)
	}
	if s.Entities != 3 {
		t.Errorf("Entities = %d, want 3", s.Entities)
	}
}

func TestPropsOfSources(t *testing.T) {
	got := toy().PropsOfSources(map[string]bool{"s1": true, "s3": true})
	if len(got) != 4 {
		t.Errorf("got %d props, want 4", len(got))
	}
	for _, p := range got {
		if p.Source == "s2" {
			t.Error("s2 property included")
		}
	}
}
