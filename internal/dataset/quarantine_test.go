package dataset

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestQuarantineCleanDataset: a valid dataset passes through untouched.
func TestQuarantineCleanDataset(t *testing.T) {
	d := toy()
	clean, dropped := d.Quarantine()
	if len(dropped) != 0 {
		t.Fatalf("dropped %v from a clean dataset", dropped)
	}
	if err := clean.Validate(); err != nil {
		t.Fatal(err)
	}
	s := clean.Summary()
	if s.Sources != 3 || s.Properties != 6 || s.Instances != 5 {
		t.Errorf("clean copy lost records: %+v", s)
	}
}

// TestQuarantineCascade: dropping a source must cascade to its properties
// and their instances, and the salvaged remainder must pass strict
// Validate.
func TestQuarantineCascade(t *testing.T) {
	d := toy()
	// Make s3 a duplicate so it gets quarantined; its two properties and
	// two instances must cascade out with it.
	d.Sources = []string{"s1", "s2", "s3", "s3"}

	clean, dropped := d.Quarantine()
	if err := clean.Validate(); err != nil {
		t.Fatalf("salvaged dataset invalid: %v", err)
	}
	if len(clean.Sources) != 3 {
		t.Errorf("sources = %v, want first s3 kept, duplicate dropped", clean.Sources)
	}
	if len(dropped) != 1 {
		t.Fatalf("dropped = %v, want exactly the duplicate source", dropped)
	}
	if dropped[0].Section != "source" || !strings.Contains(dropped[0].Reason, "duplicate") {
		t.Errorf("unexpected drop record %v", dropped[0])
	}

	// Now actually sever s3: only s1 and s2 survive, so the two s3
	// properties and both s3 instances cascade.
	d = toy()
	d.Sources = []string{"s1", "s2", ""} // s3 replaced by an empty name
	clean, dropped = d.Quarantine()
	if err := clean.Validate(); err != nil {
		t.Fatalf("salvaged dataset invalid: %v", err)
	}
	var bySection = map[string]int{}
	for _, q := range dropped {
		bySection[q.Section]++
	}
	// empty source, 2 dangling s3 properties, 2 cascading s3 instances.
	if bySection["source"] != 1 || bySection["property"] != 2 || bySection["instance"] != 2 {
		t.Errorf("drop cascade = %v, want 1 source / 2 properties / 2 instances", dropped)
	}
	for _, in := range clean.Instances {
		if in.Source == "s3" {
			t.Errorf("instance of quarantined source survived: %v", in)
		}
	}
}

// TestQuarantineBadRecords covers the per-record rejection reasons.
func TestQuarantineBadRecords(t *testing.T) {
	d := toy()
	d.Props = append(d.Props, Property{Source: "s1", Name: "\xff\xfe"})
	d.Instances = append(d.Instances,
		Instance{Source: "s1", Entity: "", Property: "weight", Value: "x"},
		Instance{Source: "s1", Entity: "e5", Property: "weight", Value: "\xff"},
	)
	clean, dropped := d.Quarantine()
	if err := clean.Validate(); err != nil {
		t.Fatalf("salvaged dataset invalid: %v", err)
	}
	if len(dropped) != 3 {
		t.Fatalf("dropped = %v, want 3 records", dropped)
	}
	reasons := make([]string, len(dropped))
	for i, q := range dropped {
		reasons[i] = q.String()
	}
	joined := strings.Join(reasons, "; ")
	for _, want := range []string{"not valid UTF-8", "empty entity"} {
		if !strings.Contains(joined, want) {
			t.Errorf("drop reasons %q missing %q", joined, want)
		}
	}
	// Original dataset untouched.
	if len(d.Instances) != 7 {
		t.Errorf("Quarantine mutated its receiver: %d instances", len(d.Instances))
	}
}

// TestQuarantineUnnamed: a dataset without a name gets a placeholder so
// the salvaged result still passes Validate.
func TestQuarantineUnnamed(t *testing.T) {
	d := toy()
	d.Name = ""
	clean, _ := d.Quarantine()
	if clean.Name == "" {
		t.Fatal("quarantined dataset still unnamed")
	}
	if err := clean.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestLoadDirQuarantine: round-trip through SaveDir with a malformed
// record injected into the JSON — strict LoadDir rejects it, the lenient
// loader salvages the rest.
func TestLoadDirQuarantine(t *testing.T) {
	d := toy()
	d.Instances = append(d.Instances, Instance{Source: "s1", Entity: "e9", Property: "ghost", Value: "v"})
	dir := t.TempDir()
	// SaveDir validates, so write the raw JSON ourselves.
	f, err := os.Create(filepath.Join(dir, "dataset.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := d.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	if _, err := LoadDir(dir); err == nil {
		t.Fatal("strict LoadDir accepted a dangling instance")
	}
	clean, dropped, err := LoadDirQuarantine(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(dropped) != 1 || dropped[0].Section != "instance" {
		t.Fatalf("dropped = %v, want the one dangling instance", dropped)
	}
	if err := clean.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(clean.Instances) != 5 {
		t.Errorf("salvaged %d instances, want 5", len(clean.Instances))
	}
}
