package dataset

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// WriteJSON serialises the dataset as indented JSON.
func (d *Dataset) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(d); err != nil {
		return fmt.Errorf("dataset: encoding %s: %w", d.Name, err)
	}
	return nil
}

// decodeJSON decodes a dataset without validating it.
func decodeJSON(r io.Reader) (*Dataset, error) {
	var d Dataset
	if err := json.NewDecoder(r).Decode(&d); err != nil {
		return nil, fmt.Errorf("dataset: decoding: %w", err)
	}
	return &d, nil
}

// ReadJSON deserialises and strictly validates a dataset written by
// WriteJSON; the first malformed record rejects the whole dataset. Use
// ReadJSONQuarantine to salvage the valid remainder instead.
func ReadJSON(r io.Reader) (*Dataset, error) {
	d, err := decodeJSON(r)
	if err != nil {
		return nil, err
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}

// SaveDir writes the dataset to dir as dataset.json plus an instances.csv
// for inspection with standard tools.
func (d *Dataset) SaveDir(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("dataset: creating %s: %w", dir, err)
	}
	jf, err := os.Create(filepath.Join(dir, "dataset.json"))
	if err != nil {
		return fmt.Errorf("dataset: %w", err)
	}
	defer jf.Close()
	if err := d.WriteJSON(jf); err != nil {
		return err
	}
	cf, err := os.Create(filepath.Join(dir, "instances.csv"))
	if err != nil {
		return fmt.Errorf("dataset: %w", err)
	}
	defer cf.Close()
	return d.WriteInstancesCSV(cf)
}

// LoadDir reads a dataset saved with SaveDir.
func LoadDir(dir string) (*Dataset, error) {
	f, err := os.Open(filepath.Join(dir, "dataset.json"))
	if err != nil {
		return nil, fmt.Errorf("dataset: %w", err)
	}
	defer f.Close()
	return ReadJSON(f)
}

// WriteInstancesCSV writes the (source, entity, property, value) tuples as
// CSV with a header row.
func (d *Dataset) WriteInstancesCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"source", "entity", "property", "value"}); err != nil {
		return fmt.Errorf("dataset: writing CSV header: %w", err)
	}
	for _, in := range d.Instances {
		if err := cw.Write([]string{in.Source, in.Entity, in.Property, in.Value}); err != nil {
			return fmt.Errorf("dataset: writing CSV row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadInstancesCSV parses instance tuples from CSV (as written by
// WriteInstancesCSV). It returns tuples only; callers construct a Dataset
// by declaring sources/properties, e.g. via FromInstances.
func ReadInstancesCSV(r io.Reader) ([]Instance, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading CSV: %w", err)
	}
	if len(rows) == 0 {
		return nil, nil
	}
	start := 0
	if len(rows[0]) > 0 && rows[0][0] == "source" {
		start = 1 // skip header
	}
	out := make([]Instance, 0, len(rows)-start)
	for i, row := range rows[start:] {
		if len(row) != 4 {
			return nil, fmt.Errorf("dataset: CSV row %d has %d columns, want 4", i+start, len(row))
		}
		out = append(out, Instance{Source: row[0], Entity: row[1], Property: row[2], Value: row[3]})
	}
	return out, nil
}

// FromInstances builds an unlabeled dataset (no ground-truth Refs) from raw
// instance tuples — the entry point for matching user-supplied data where
// no reference alignment exists.
func FromInstances(name, category string, instances []Instance) (*Dataset, error) {
	d := &Dataset{Name: name, Category: category, Instances: instances}
	srcSeen := map[string]bool{}
	propSeen := map[Key]bool{}
	for _, in := range instances {
		if !srcSeen[in.Source] {
			srcSeen[in.Source] = true
			d.Sources = append(d.Sources, in.Source)
		}
		k := Key{Source: in.Source, Name: in.Property}
		if !propSeen[k] {
			propSeen[k] = true
			d.Props = append(d.Props, Property{Source: in.Source, Name: in.Property})
		}
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}
