// Package dataset defines the multi-source property-matching data model of
// the paper (sources, entities, property instances as (p, e, v) tuples, and
// reference-ontology ground truth) plus synthetic generators that reproduce
// the statistics of the paper's four evaluation datasets: the large,
// balanced DI2KG camera dataset (24 sources, >3200 properties, ~9200
// matching pairs) and the three smaller, imbalanced WDC datasets
// (headphones, phones, TVs).
package dataset

import (
	"errors"
	"fmt"
	"sort"
	"unicode/utf8"
)

// Property is one source-specific property. Two properties from different
// sources match iff they share a non-empty Ref (both align to the same
// reference-ontology property), mirroring how the paper derives ground
// truth from the datasets' alignment to a reference ontology.
type Property struct {
	Source string `json:"source"`
	Name   string `json:"name"`
	// Ref is the canonical reference property this property aligns to, or
	// "" for properties with no match anywhere (noise).
	Ref string `json:"ref,omitempty"`
}

// Key identifies a property uniquely within a dataset.
type Key struct {
	Source string
	Name   string
}

// Key returns the property's identity.
func (p Property) Key() Key { return Key{Source: p.Source, Name: p.Name} }

// String renders the key as "source/name".
func (k Key) String() string { return k.Source + "/" + k.Name }

// Instance is one (property, entity, value) observation, the paper's
// i = (p, e, v) tuple, qualified by source.
type Instance struct {
	Source   string `json:"source"`
	Entity   string `json:"entity"`
	Property string `json:"property"`
	Value    string `json:"value"`
}

// Pair is an unordered cross-source property pair.
type Pair struct {
	A, B Key
}

// Canonical returns the pair with its two keys in a deterministic order so
// that {a,b} and {b,a} compare equal.
func (p Pair) Canonical() Pair {
	if p.B.Source < p.A.Source || (p.B.Source == p.A.Source && p.B.Name < p.A.Name) {
		return Pair{A: p.B, B: p.A}
	}
	return p
}

// Dataset is a multi-source property-matching task instance.
type Dataset struct {
	Name      string     `json:"name"`
	Category  string     `json:"category"`
	Sources   []string   `json:"sources"`
	Props     []Property `json:"properties"`
	Instances []Instance `json:"instances"`
}

// Validate checks the dataset strictly: referential integrity (every
// instance must reference a declared source and property, properties must
// be unique per source) plus record well-formedness — empty keys (source,
// property name, instance entity) and non-UTF-8 text are rejected, so
// malformed records never reach the text/feature layers. Use Quarantine
// to salvage the valid remainder of a dataset instead of rejecting it.
func (d *Dataset) Validate() error {
	if d.Name == "" {
		return errors.New("dataset: empty name")
	}
	srcs := map[string]bool{}
	for _, s := range d.Sources {
		if s == "" {
			return fmt.Errorf("dataset %s: empty source name", d.Name)
		}
		if !utf8.ValidString(s) {
			return fmt.Errorf("dataset %s: source name %q is not valid UTF-8", d.Name, s)
		}
		if srcs[s] {
			return fmt.Errorf("dataset %s: duplicate source %q", d.Name, s)
		}
		srcs[s] = true
	}
	props := map[Key]bool{}
	for _, p := range d.Props {
		if p.Name == "" {
			return fmt.Errorf("dataset %s: property of source %q has empty name", d.Name, p.Source)
		}
		if !utf8.ValidString(p.Name) {
			return fmt.Errorf("dataset %s: property name %q is not valid UTF-8", d.Name, p.Name)
		}
		if !srcs[p.Source] {
			return fmt.Errorf("dataset %s: property %s references unknown source", d.Name, p.Key())
		}
		if props[p.Key()] {
			return fmt.Errorf("dataset %s: duplicate property %s", d.Name, p.Key())
		}
		props[p.Key()] = true
	}
	for i, in := range d.Instances {
		if in.Entity == "" {
			return fmt.Errorf("dataset %s: instance %d has empty entity", d.Name, i)
		}
		if !utf8.ValidString(in.Value) {
			return fmt.Errorf("dataset %s: instance %d value is not valid UTF-8", d.Name, i)
		}
		if !props[Key{Source: in.Source, Name: in.Property}] {
			return fmt.Errorf("dataset %s: instance %d references unknown property %s/%s",
				d.Name, i, in.Source, in.Property)
		}
	}
	return nil
}

// PropertyMap returns properties indexed by key.
func (d *Dataset) PropertyMap() map[Key]Property {
	m := make(map[Key]Property, len(d.Props))
	for _, p := range d.Props {
		m[p.Key()] = p
	}
	return m
}

// PropsOfSources returns the properties belonging to any of the given
// sources, in dataset order.
func (d *Dataset) PropsOfSources(sources map[string]bool) []Property {
	var out []Property
	for _, p := range d.Props {
		if sources[p.Source] {
			out = append(out, p)
		}
	}
	return out
}

// InstancesByProperty groups instance values by property key. Values keep
// dataset order.
func (d *Dataset) InstancesByProperty() map[Key][]string {
	m := map[Key][]string{}
	for _, in := range d.Instances {
		k := Key{Source: in.Source, Name: in.Property}
		m[k] = append(m[k], in.Value)
	}
	return m
}

// Matching reports whether two properties are a true match: different
// sources, both aligned to the same reference property.
func Matching(a, b Property) bool {
	return a.Source != b.Source && a.Ref != "" && a.Ref == b.Ref
}

// MatchingPairs returns all ground-truth matching pairs among the given
// properties (cross-source, same non-empty Ref), canonicalised and sorted.
func MatchingPairs(props []Property) []Pair {
	byRef := map[string][]Property{}
	for _, p := range props {
		if p.Ref != "" {
			byRef[p.Ref] = append(byRef[p.Ref], p)
		}
	}
	var out []Pair
	for _, group := range byRef {
		for i := 0; i < len(group); i++ {
			for j := i + 1; j < len(group); j++ {
				if group[i].Source == group[j].Source {
					continue
				}
				out = append(out, Pair{A: group[i].Key(), B: group[j].Key()}.Canonical())
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return lessPair(out[i], out[j]) })
	return out
}

// CrossSourcePairs enumerates every unordered pair of properties from
// different sources, calling fn for each. Enumeration order is
// deterministic (dataset order). If fn returns false, enumeration stops.
// The pair count grows quadratically; callers stream rather than collect.
func CrossSourcePairs(props []Property, fn func(a, b Property) bool) {
	for i := 0; i < len(props); i++ {
		for j := i + 1; j < len(props); j++ {
			if props[i].Source == props[j].Source {
				continue
			}
			if !fn(props[i], props[j]) {
				return
			}
		}
	}
}

// NumMatchingPairs counts ground-truth matching pairs among props.
func NumMatchingPairs(props []Property) int {
	return len(MatchingPairs(props))
}

func lessPair(a, b Pair) bool {
	if a.A.Source != b.A.Source {
		return a.A.Source < b.A.Source
	}
	if a.A.Name != b.A.Name {
		return a.A.Name < b.A.Name
	}
	if a.B.Source != b.B.Source {
		return a.B.Source < b.B.Source
	}
	return a.B.Name < b.B.Name
}

// Stats summarises a dataset the way the paper reports its datasets.
type Stats struct {
	Sources       int
	Properties    int
	Instances     int
	Entities      int
	MatchingPairs int
}

// Summary computes dataset statistics.
func (d *Dataset) Summary() Stats {
	ents := map[string]bool{}
	for _, in := range d.Instances {
		ents[in.Source+"\x00"+in.Entity] = true
	}
	return Stats{
		Sources:       len(d.Sources),
		Properties:    len(d.Props),
		Instances:     len(d.Instances),
		Entities:      len(ents),
		MatchingPairs: NumMatchingPairs(d.Props),
	}
}
