package dataset

import (
	"strings"
	"testing"

	"leapme/internal/domain"
)

func TestLargeConfigHitsTargetSize(t *testing.T) {
	const target = 8000
	cfg := LargeConfig(domain.Cameras(), target, 12, 0.35, 1)
	d, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got := len(d.Props)
	// Presence/split/dedup jitter the exact count; a ±15% band proves the
	// noise top-up sizing is right without pinning generator internals.
	if got < target*85/100 || got > target*115/100 {
		t.Errorf("generated %d properties, want ~%d", got, target)
	}
	srcs := map[string]bool{}
	for _, p := range d.Props {
		srcs[p.Source] = true
	}
	if len(srcs) != 12 {
		t.Errorf("got %d sources, want 12", len(srcs))
	}
	if len(MatchingPairs(d.Props)) == 0 {
		t.Error("large corpus has no ground-truth matching pairs")
	}
	if !strings.Contains(d.Name, "large") {
		t.Errorf("Name = %q, want a -large- marker", d.Name)
	}
}

func TestLargeConfigSynonymRateMapping(t *testing.T) {
	if cfg := LargeConfig(domain.Cameras(), 1000, 4, 0, 1); cfg.CanonicalBias != 1 || cfg.UniformNames {
		t.Errorf("rate 0: bias=%v uniform=%v, want 1/false", cfg.CanonicalBias, cfg.UniformNames)
	}
	// rate 1 means bias 0, which Generate would silently default to 0.5 —
	// UniformNames is the explicit switch.
	if cfg := LargeConfig(domain.Cameras(), 1000, 4, 1, 1); !cfg.UniformNames {
		t.Error("rate 1: UniformNames not set")
	}
	if cfg := LargeConfig(domain.Cameras(), 1000, 1, 2, 1); cfg.NumSources != 2 || cfg.UniformNames != true {
		t.Errorf("clamps: sources=%d uniform=%v", cfg.NumSources, cfg.UniformNames)
	}
}
