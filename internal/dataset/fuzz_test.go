package dataset

import (
	"bytes"
	"strings"
	"testing"
)

// validJSONSeed serialises a well-formed dataset as a fuzz seed.
func validJSONSeed() []byte {
	d := &Dataset{
		Name:    "seed",
		Sources: []string{"s1", "s2"},
		Props: []Property{
			{Source: "s1", Name: "weight", Ref: "weight"},
			{Source: "s2", Name: "mass", Ref: "weight"},
		},
		Instances: []Instance{
			{Source: "s1", Entity: "e1", Property: "weight", Value: "1.2 kg"},
			{Source: "s2", Entity: "e9", Property: "mass", Value: "1200 g"},
		},
	}
	var buf bytes.Buffer
	if err := d.WriteJSON(&buf); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// FuzzReadJSON: the strict loader must never panic, and anything it
// accepts must pass strict validation.
func FuzzReadJSON(f *testing.F) {
	f.Add(validJSONSeed())
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"name":"x","sources":["a","a"]}`))
	f.Add([]byte(`{"name":"x","sources":[""],"properties":[{"source":"","name":""}]}`))
	f.Add([]byte(`{"name":"x","instances":[{"source":"ghost","entity":"e","property":"p","value":"v"}]}`))
	f.Add([]byte("{\"name\":\"\xff\xfe\"}"))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(``))
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := ReadJSON(bytes.NewReader(data))
		if err != nil {
			return
		}
		if d == nil {
			t.Fatal("nil dataset with nil error")
		}
		if verr := d.Validate(); verr != nil {
			t.Fatalf("ReadJSON accepted a dataset its own Validate rejects: %v", verr)
		}
	})
}

// FuzzReadJSONQuarantine: the lenient loader must never panic, and its
// salvaged output must always pass strict validation — that is the whole
// point of quarantining.
func FuzzReadJSONQuarantine(f *testing.F) {
	f.Add(validJSONSeed())
	f.Add([]byte(`{"name":"x","sources":["a","a",""],"properties":[{"source":"a","name":"p"},{"source":"a","name":"p"}]}`))
	f.Add([]byte("{\"name\":\"x\",\"sources\":[\"ok\",\"\xff\"]}"))
	f.Add([]byte(`{"sources":["a"],"instances":[{"source":"a","entity":"","property":"p","value":"v"}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		clean, dropped, err := ReadJSONQuarantine(bytes.NewReader(data))
		if err != nil {
			return // malformed JSON is the only hard failure
		}
		if clean == nil {
			t.Fatal("nil dataset with nil error")
		}
		if verr := clean.Validate(); verr != nil {
			t.Fatalf("quarantined dataset still invalid: %v (dropped %d)", verr, len(dropped))
		}
	})
}

// FuzzReadInstancesCSV: the CSV loader must never panic and must either
// error or return instances for every row it consumed.
func FuzzReadInstancesCSV(f *testing.F) {
	f.Add([]byte("source,entity,property,value\ns1,e1,p1,v1\n"))
	f.Add([]byte("s1,e1,p1,v1\ns2,e2,p2,v2\n"))
	f.Add([]byte("just,three,columns\n"))
	f.Add([]byte("a,b,c,d,e\n"))
	f.Add([]byte("\"unterminated quote\n"))
	f.Add([]byte(""))
	f.Add([]byte("source\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		ins, err := ReadInstancesCSV(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Loader output feeds FromInstances; grouping it must not panic
		// regardless of what the rows contained.
		_, _ = FromInstances("fuzz", "misc", ins)
	})
}

// TestFuzzSeedsAreMeaningful pins the seed corpus behaviour so the fuzz
// targets keep exercising both accept and reject paths.
func TestFuzzSeedsAreMeaningful(t *testing.T) {
	if _, err := ReadJSON(bytes.NewReader(validJSONSeed())); err != nil {
		t.Fatalf("valid seed rejected: %v", err)
	}
	if _, err := ReadJSON(strings.NewReader(`{"name":"x","sources":["a","a"]}`)); err == nil {
		t.Fatal("duplicate-source seed accepted by strict loader")
	}
	if _, _, err := ReadJSONQuarantine(strings.NewReader(`{"name":"x","sources":["a","a"]}`)); err != nil {
		t.Fatalf("lenient loader failed on quarantinable input: %v", err)
	}
}
