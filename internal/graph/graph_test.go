package graph

import (
	"testing"
	"testing/quick"

	"leapme/internal/dataset"
)

func k(s, n string) dataset.Key { return dataset.Key{Source: s, Name: n} }

func triangle() *SimilarityGraph {
	g := New()
	g.AddEdge(k("s1", "a"), k("s2", "b"), 0.9)
	g.AddEdge(k("s2", "b"), k("s3", "c"), 0.8)
	g.AddEdge(k("s1", "a"), k("s3", "c"), 0.7)
	g.AddEdge(k("s1", "x"), k("s2", "y"), 0.6)
	return g
}

func TestGraphBasics(t *testing.T) {
	g := triangle()
	if g.NumNodes() != 5 {
		t.Errorf("nodes = %d", g.NumNodes())
	}
	if g.NumEdges() != 4 {
		t.Errorf("edges = %d", g.NumEdges())
	}
	w, ok := g.Weight(k("s1", "a"), k("s2", "b"))
	if !ok || w != 0.9 {
		t.Errorf("weight = %v, %v", w, ok)
	}
	// Symmetric access.
	w2, _ := g.Weight(k("s2", "b"), k("s1", "a"))
	if w2 != w {
		t.Error("weights not symmetric")
	}
	if _, ok := g.Weight(k("s1", "a"), k("zz", "zz")); ok {
		t.Error("phantom edge")
	}
}

func TestSelfEdgeIgnored(t *testing.T) {
	g := New()
	g.AddEdge(k("s", "a"), k("s", "a"), 1)
	if g.NumEdges() != 0 {
		t.Error("self edge inserted")
	}
}

func TestEdgesDeterministic(t *testing.T) {
	a := triangle().Edges()
	b := triangle().Edges()
	if len(a) != 4 {
		t.Fatalf("edges = %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("edge order not deterministic")
		}
	}
}

func TestPrune(t *testing.T) {
	g := triangle().Prune(0.75)
	if g.NumEdges() != 2 {
		t.Errorf("pruned edges = %d, want 2 (0.9 and 0.8)", g.NumEdges())
	}
	if g.NumNodes() != 5 {
		t.Error("prune should keep all nodes")
	}
}

func TestConnectedComponents(t *testing.T) {
	c := triangle().ConnectedComponents()
	if len(c) != 2 {
		t.Fatalf("components = %d, want 2", len(c))
	}
	if len(c[0]) != 3 || len(c[1]) != 2 {
		t.Errorf("component sizes = %d, %d", len(c[0]), len(c[1]))
	}
}

func TestConnectedComponentsChains(t *testing.T) {
	// A path a—b—c—d forms one component even without direct a—d edge.
	g := New()
	g.AddEdge(k("s1", "a"), k("s2", "b"), 1)
	g.AddEdge(k("s2", "b"), k("s3", "c"), 1)
	g.AddEdge(k("s3", "c"), k("s4", "d"), 1)
	c := g.ConnectedComponents()
	if len(c) != 1 || len(c[0]) != 4 {
		t.Errorf("clustering = %v", c)
	}
}

func TestStarClustering(t *testing.T) {
	c := triangle().StarClustering()
	// The triangle nodes form one star; x—y another.
	if len(c) != 2 {
		t.Fatalf("stars = %d: %v", len(c), c)
	}
}

func TestStarClusteringHub(t *testing.T) {
	// A hub with 3 satellites: hub has the highest degree, so one star.
	g := New()
	hub := k("s0", "hub")
	for i, s := range []string{"s1", "s2", "s3"} {
		g.AddEdge(hub, k(s, "sat"), 0.5+float64(i)*0.1)
	}
	c := g.StarClustering()
	if len(c) != 1 || len(c[0]) != 4 {
		t.Errorf("clustering = %v", c)
	}
}

func TestCorrelationClustering(t *testing.T) {
	// Chain with a weak middle link: correlation clustering with a high
	// threshold should split where components would merge.
	g := New()
	g.AddEdge(k("s1", "a"), k("s2", "b"), 0.95)
	g.AddEdge(k("s2", "b"), k("s3", "c"), 0.2) // weak
	g.AddEdge(k("s3", "c"), k("s4", "d"), 0.9)
	cc := g.ConnectedComponents()
	if len(cc) != 1 {
		t.Fatalf("components = %d", len(cc))
	}
	corr := g.CorrelationClustering(0.5)
	if len(corr) != 2 {
		t.Fatalf("correlation clusters = %d: %v", len(corr), corr)
	}
}

func TestClusteringPairs(t *testing.T) {
	c := Clustering{{k("s1", "a"), k("s2", "b"), k("s3", "c")}}
	pairs := c.Pairs()
	if len(pairs) != 3 {
		t.Errorf("pairs = %d, want 3", len(pairs))
	}
	// Same-source members yield no pair.
	c = Clustering{{k("s1", "a"), k("s1", "b")}}
	if len(c.Pairs()) != 0 {
		t.Error("same-source pair emitted")
	}
}

func TestPairwiseQuality(t *testing.T) {
	truth := []dataset.Pair{
		{A: k("s1", "a"), B: k("s2", "b")},
		{A: k("s1", "a"), B: k("s3", "c")},
		{A: k("s2", "b"), B: k("s3", "c")},
	}
	perfect := Clustering{{k("s1", "a"), k("s2", "b"), k("s3", "c")}}
	p, r, f1 := perfect.PairwiseQuality(truth)
	if p != 1 || r != 1 || f1 != 1 {
		t.Errorf("perfect clustering: P=%v R=%v F1=%v", p, r, f1)
	}

	partial := Clustering{{k("s1", "a"), k("s2", "b")}, {k("s3", "c")}}
	p, r, _ = partial.PairwiseQuality(truth)
	if p != 1 {
		t.Errorf("partial precision = %v", p)
	}
	if r < 0.3 || r > 0.34 {
		t.Errorf("partial recall = %v, want 1/3", r)
	}

	empty := Clustering{}
	p, r, f1 = empty.PairwiseQuality(truth)
	if p != 0 || r != 0 || f1 != 0 {
		t.Errorf("empty clustering quality = %v %v %v", p, r, f1)
	}
	p, r, f1 = empty.PairwiseQuality(nil)
	if p != 1 || r != 1 || f1 != 1 {
		t.Errorf("empty-vs-empty quality = %v %v %v", p, r, f1)
	}
}

// TestClusteringsArePartitions: every clustering scheme must assign every
// node to exactly one cluster — no losses, no duplicates — on randomly
// shaped graphs.
func TestClusteringsArePartitions(t *testing.T) {
	f := func(edges [][3]uint8) bool {
		g := New()
		// Always include some isolated nodes.
		g.AddNode(k("iso", "a"))
		g.AddNode(k("iso", "b"))
		for _, e := range edges {
			a := k("s"+string(rune('0'+e[0]%5)), "p"+string(rune('a'+e[1]%10)))
			b := k("s"+string(rune('0'+e[1]%5)), "p"+string(rune('a'+e[2]%10)))
			g.AddEdge(a, b, float64(e[2]%100)/100)
		}
		for _, clusters := range []Clustering{
			g.ConnectedComponents(),
			g.StarClustering(),
			g.CorrelationClustering(0.5),
		} {
			seen := map[dataset.Key]int{}
			for _, c := range clusters {
				for _, key := range c {
					seen[key]++
				}
			}
			if len(seen) != g.NumNodes() {
				return false
			}
			for _, n := range seen {
				if n != 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestClusteringDeterminism(t *testing.T) {
	for i := 0; i < 3; i++ {
		a := triangle().CorrelationClustering(0.5)
		b := triangle().CorrelationClustering(0.5)
		if len(a) != len(b) {
			t.Fatal("non-deterministic clustering")
		}
		for ci := range a {
			if len(a[ci]) != len(b[ci]) {
				t.Fatal("non-deterministic cluster sizes")
			}
			for ki := range a[ci] {
				if a[ci][ki] != b[ci][ki] {
					t.Fatal("non-deterministic cluster membership")
				}
			}
		}
	}
}
