// Package graph implements the similarity graph LEAPME emits and the
// property-clustering post-processing step the paper names as future work
// ("we plan to evaluate different methods for deriving clusters of
// equivalent properties from the match results"): connected components,
// star clustering, and greedy correlation clustering, plus pairwise
// cluster-quality metrics.
package graph

import (
	"fmt"
	"sort"

	"leapme/internal/dataset"
)

// Edge is a weighted undirected edge between two properties.
type Edge struct {
	A, B   dataset.Key
	Weight float64
}

// SimilarityGraph is an undirected weighted graph over property keys.
// The zero value is not usable; call New.
type SimilarityGraph struct {
	nodes map[dataset.Key]int // key → dense index
	keys  []dataset.Key
	adj   []map[int]float64
}

// New returns an empty similarity graph.
func New() *SimilarityGraph {
	return &SimilarityGraph{nodes: map[dataset.Key]int{}}
}

// AddNode ensures k is present and returns its dense index.
func (g *SimilarityGraph) AddNode(k dataset.Key) int {
	if i, ok := g.nodes[k]; ok {
		return i
	}
	i := len(g.keys)
	g.nodes[k] = i
	g.keys = append(g.keys, k)
	g.adj = append(g.adj, map[int]float64{})
	return i
}

// AddEdge inserts (or overwrites) the undirected edge a—b with the given
// weight. Self-edges are ignored.
func (g *SimilarityGraph) AddEdge(a, b dataset.Key, weight float64) {
	if a == b {
		return
	}
	ia, ib := g.AddNode(a), g.AddNode(b)
	g.adj[ia][ib] = weight
	g.adj[ib][ia] = weight
}

// NumNodes returns the node count.
func (g *SimilarityGraph) NumNodes() int { return len(g.keys) }

// NumEdges returns the undirected edge count.
func (g *SimilarityGraph) NumEdges() int {
	total := 0
	for _, m := range g.adj {
		total += len(m)
	}
	return total / 2
}

// Weight returns the edge weight and whether the edge exists.
func (g *SimilarityGraph) Weight(a, b dataset.Key) (float64, bool) {
	ia, ok := g.nodes[a]
	if !ok {
		return 0, false
	}
	ib, ok := g.nodes[b]
	if !ok {
		return 0, false
	}
	w, ok := g.adj[ia][ib]
	return w, ok
}

// Edges returns all edges sorted deterministically (by key order).
func (g *SimilarityGraph) Edges() []Edge {
	var out []Edge
	for ia, m := range g.adj {
		for ib, w := range m {
			if ia < ib {
				out = append(out, Edge{A: g.keys[ia], B: g.keys[ib], Weight: w})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return lessKey(out[i].A, out[j].A)
		}
		return lessKey(out[i].B, out[j].B)
	})
	return out
}

// Prune returns a copy with only edges of weight ≥ minWeight.
func (g *SimilarityGraph) Prune(minWeight float64) *SimilarityGraph {
	out := New()
	for _, k := range g.keys {
		out.AddNode(k)
	}
	for ia, m := range g.adj {
		for ib, w := range m {
			if ia < ib && w >= minWeight {
				out.AddEdge(g.keys[ia], g.keys[ib], w)
			}
		}
	}
	return out
}

// Keys returns all node keys in insertion order. The slice must not be
// modified.
func (g *SimilarityGraph) Keys() []dataset.Key { return g.keys }

func lessKey(a, b dataset.Key) bool {
	if a.Source != b.Source {
		return a.Source < b.Source
	}
	return a.Name < b.Name
}

// String summarises the graph.
func (g *SimilarityGraph) String() string {
	return fmt.Sprintf("SimilarityGraph(%d nodes, %d edges)", g.NumNodes(), g.NumEdges())
}
