package graph

import (
	"sort"

	"leapme/internal/dataset"
)

// Cluster is a set of property keys believed to denote the same reference
// property.
type Cluster []dataset.Key

// Clustering is a partition of (a subset of) the graph's nodes.
type Clustering []Cluster

// ConnectedComponents clusters nodes by connectivity: any path of edges
// puts two properties in the same cluster. It is the cheapest scheme and
// the most recall-oriented: one spurious edge merges two clusters.
func (g *SimilarityGraph) ConnectedComponents() Clustering {
	parent := make([]int, len(g.keys))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	for ia, m := range g.adj {
		for ib := range m {
			union(ia, ib)
		}
	}
	groups := map[int][]dataset.Key{}
	for i, k := range g.keys {
		r := find(i)
		groups[r] = append(groups[r], k)
	}
	return collect(groups)
}

// StarClustering repeatedly picks the unassigned node with the highest
// weighted degree as a star centre and assigns its unassigned neighbours
// to it. It is precision-oriented: clusters never span more than one hop
// from the centre.
func (g *SimilarityGraph) StarClustering() Clustering {
	type cand struct {
		idx    int
		degree float64
	}
	cands := make([]cand, len(g.keys))
	for i := range g.keys {
		var deg float64
		for _, w := range g.adj[i] {
			deg += w
		}
		cands[i] = cand{idx: i, degree: deg}
	}
	sort.Slice(cands, func(a, b int) bool {
		//lint:allow floateq sort tie-break must be an exact total order; a tolerance comparator is not a strict weak ordering
		if cands[a].degree != cands[b].degree {
			return cands[a].degree > cands[b].degree
		}
		return cands[a].idx < cands[b].idx
	})
	assigned := make([]bool, len(g.keys))
	var out Clustering
	for _, c := range cands {
		if assigned[c.idx] {
			continue
		}
		cluster := Cluster{g.keys[c.idx]}
		assigned[c.idx] = true
		// Deterministic neighbour order.
		nbrs := make([]int, 0, len(g.adj[c.idx]))
		for nb := range g.adj[c.idx] {
			nbrs = append(nbrs, nb)
		}
		sort.Ints(nbrs)
		for _, nb := range nbrs {
			if !assigned[nb] {
				assigned[nb] = true
				cluster = append(cluster, g.keys[nb])
			}
		}
		out = append(out, cluster)
	}
	return sortClustering(out)
}

// CorrelationClustering runs the classic greedy pivot algorithm
// (Ailon et al.): process nodes in a deterministic high-degree-first
// order; each unassigned pivot absorbs unassigned neighbours whose edge
// weight is at least minWeight. Unlike connected components it does not
// chain through transitive edges, and unlike star clustering the pivot's
// neighbourhood is filtered by weight.
func (g *SimilarityGraph) CorrelationClustering(minWeight float64) Clustering {
	order := make([]int, len(g.keys))
	for i := range order {
		order[i] = i
	}
	degree := make([]float64, len(g.keys))
	for i := range g.keys {
		for _, w := range g.adj[i] {
			degree[i] += w
		}
	}
	sort.Slice(order, func(a, b int) bool {
		//lint:allow floateq sort tie-break must be an exact total order; a tolerance comparator is not a strict weak ordering
		if degree[order[a]] != degree[order[b]] {
			return degree[order[a]] > degree[order[b]]
		}
		return order[a] < order[b]
	})
	assigned := make([]bool, len(g.keys))
	var out Clustering
	for _, pivot := range order {
		if assigned[pivot] {
			continue
		}
		assigned[pivot] = true
		cluster := Cluster{g.keys[pivot]}
		nbrs := make([]int, 0, len(g.adj[pivot]))
		for nb := range g.adj[pivot] {
			nbrs = append(nbrs, nb)
		}
		sort.Ints(nbrs)
		for _, nb := range nbrs {
			if !assigned[nb] && g.adj[pivot][nb] >= minWeight {
				assigned[nb] = true
				cluster = append(cluster, g.keys[nb])
			}
		}
		out = append(out, cluster)
	}
	return sortClustering(out)
}

// Pairs expands a clustering into the set of cross-source property pairs
// it implies (all pairs inside each cluster, canonicalised).
func (c Clustering) Pairs() []dataset.Pair {
	var out []dataset.Pair
	for _, cluster := range c {
		for i := 0; i < len(cluster); i++ {
			for j := i + 1; j < len(cluster); j++ {
				if cluster[i].Source == cluster[j].Source {
					continue
				}
				out = append(out, dataset.Pair{A: cluster[i], B: cluster[j]}.Canonical())
			}
		}
	}
	return out
}

// PairwiseQuality computes the pairwise precision/recall/F1 of a
// clustering against ground-truth matching pairs.
func (c Clustering) PairwiseQuality(truth []dataset.Pair) (precision, recall, f1 float64) {
	truthSet := map[dataset.Pair]bool{}
	for _, p := range truth {
		truthSet[p.Canonical()] = true
	}
	pred := c.Pairs()
	if len(pred) == 0 {
		if len(truthSet) == 0 {
			return 1, 1, 1
		}
		return 0, 0, 0
	}
	tp := 0
	for _, p := range pred {
		if truthSet[p] {
			tp++
		}
	}
	precision = float64(tp) / float64(len(pred))
	if len(truthSet) > 0 {
		recall = float64(tp) / float64(len(truthSet))
	}
	if precision+recall > 0 {
		f1 = 2 * precision * recall / (precision + recall)
	}
	return precision, recall, f1
}

func collect(groups map[int][]dataset.Key) Clustering {
	out := make(Clustering, 0, len(groups))
	for _, ks := range groups {
		sort.Slice(ks, func(i, j int) bool { return lessKey(ks[i], ks[j]) })
		out = append(out, ks)
	}
	return sortClustering(out)
}

func sortClustering(c Clustering) Clustering {
	for _, cl := range c {
		sort.Slice(cl, func(i, j int) bool { return lessKey(cl[i], cl[j]) })
	}
	sort.Slice(c, func(i, j int) bool {
		if len(c[i]) == 0 || len(c[j]) == 0 {
			return len(c[i]) > len(c[j])
		}
		return lessKey(c[i][0], c[j][0])
	})
	return c
}
