// Package client is the deadline-aware HTTP client for leapme-serve: it
// speaks the /v1 JSON API, propagates per-request deadline budgets via
// the X-Leapme-Deadline-Ms header, and retries transient failures —
// 429 (honoring Retry-After), 503 and 504 plus transport errors — with
// exponential backoff and seeded jitter. Permanent failures (4xx other
// than 429, and 500: a poisoned request stays poisoned) surface
// immediately as a typed *APIError.
//
// The jitter source is an explicitly seeded *rand.Rand (mathx.NewRand),
// so a fleet of clients built with distinct seeds desynchronises its
// retries, while a chaos test with a fixed seed replays the exact same
// backoff schedule. The package sits in the determinism analyzer's
// scope; the one timer it owns (the backoff sleep) is annotated, because
// wait time never feeds a computed result.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"leapme/internal/mathx"
)

// DeadlineHeader carries the per-request scoring budget in integer
// milliseconds. The server clamps it to its own -max-deadline.
const DeadlineHeader = "X-Leapme-Deadline-Ms"

// PropSpec is a property on the wire: its name and instance values.
type PropSpec struct {
	Name   string   `json:"name"`
	Values []string `json:"values,omitempty"`
}

// Pair is one property pair to score.
type Pair struct {
	A PropSpec `json:"a"`
	B PropSpec `json:"b"`
}

// MatchRequest is the /v1/match request body.
type MatchRequest struct {
	Model     string   `json:"model,omitempty"`
	Threshold *float64 `json:"threshold,omitempty"`
	Pairs     []Pair   `json:"pairs"`
}

// PairResult is one scored pair.
type PairResult struct {
	Score float64 `json:"score"`
	Match bool    `json:"match"`
	Error string  `json:"error,omitempty"`
}

// MatchResponse is the /v1/match response body.
type MatchResponse struct {
	Model   string       `json:"model"`
	CRC     string       `json:"model_crc"`
	Results []PairResult `json:"results"`
}

// APIError is a non-2xx answer from the server, decoded from its typed
// JSON error body.
type APIError struct {
	Status     int           // HTTP status code
	Code       string        // machine-readable error code ("overloaded", "deadline_exceeded", ...)
	Message    string        // human-readable message
	RetryAfter time.Duration // the server's Retry-After advice (0 if absent)
}

func (e *APIError) Error() string {
	if e.Code != "" {
		return fmt.Sprintf("server: %d %s: %s", e.Status, e.Code, e.Message)
	}
	return fmt.Sprintf("server: %d: %s", e.Status, e.Message)
}

// Retryable reports whether the failure is worth retrying: the server
// shed load (429), is draining or briefly unavailable (503), or a
// deadline fired on a stalled batch (504). Anything else is permanent
// for this request.
func (e *APIError) Retryable() bool {
	switch e.Status {
	case http.StatusTooManyRequests, http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// Config configures a Client.
type Config struct {
	// BaseURL is the server root, e.g. "http://localhost:8080".
	BaseURL string
	// HTTPClient overrides the transport (default http.DefaultClient —
	// tests pass the httptest server's client).
	HTTPClient *http.Client
	// MaxAttempts bounds tries per call, first attempt included
	// (default 4).
	MaxAttempts int
	// BaseBackoff seeds the exponential backoff (default 25ms); the
	// wait before retry n is BaseBackoff·2ⁿ, jittered to [½x, 1½x) and
	// capped at MaxBackoff (default 2s). A larger server Retry-After
	// wins over the computed backoff.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// Seed seeds the jitter source. Give fleet members distinct seeds.
	Seed int64
	// Deadline, when positive, is sent as X-Leapme-Deadline-Ms on every
	// attempt — each retry gets a fresh budget.
	Deadline time.Duration
}

// Stats are cumulative client counters, readable at any time.
type Stats struct {
	Attempts  int64 // HTTP attempts issued
	Retries   int64 // attempts beyond the first, per call
	Throttled int64 // 429 responses seen
	Deadlined int64 // 504 responses seen
}

// Client calls a leapme-serve instance with retries. Safe for
// concurrent use.
type Client struct {
	cfg  Config
	http *http.Client

	mu  sync.Mutex // guards rng
	rng *rand.Rand

	attempts  atomic.Int64
	retries   atomic.Int64
	throttled atomic.Int64
	deadlined atomic.Int64
}

// New validates cfg and returns a Client.
func New(cfg Config) (*Client, error) {
	if cfg.BaseURL == "" {
		return nil, errors.New("client: empty BaseURL")
	}
	cfg.BaseURL = strings.TrimRight(cfg.BaseURL, "/")
	if cfg.HTTPClient == nil {
		cfg.HTTPClient = http.DefaultClient
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 4
	}
	if cfg.BaseBackoff <= 0 {
		cfg.BaseBackoff = 25 * time.Millisecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 2 * time.Second
	}
	return &Client{cfg: cfg, http: cfg.HTTPClient, rng: mathx.NewRand(cfg.Seed)}, nil
}

// Stats returns a snapshot of the client's counters.
func (c *Client) Stats() Stats {
	return Stats{
		Attempts:  c.attempts.Load(),
		Retries:   c.retries.Load(),
		Throttled: c.throttled.Load(),
		Deadlined: c.deadlined.Load(),
	}
}

// Match scores pairs via POST /v1/match, retrying transient failures
// until ctx ends or MaxAttempts is exhausted.
func (c *Client) Match(ctx context.Context, req *MatchRequest) (*MatchResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("client: encoding request: %w", err)
	}
	var out MatchResponse
	if err := c.do(ctx, http.MethodPost, "/v1/match", body, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Ready probes GET /readyz once (no retries — readiness is a poll).
func (c *Client) Ready(ctx context.Context) error {
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.cfg.BaseURL+"/readyz", nil)
	if err != nil {
		return err
	}
	resp, err := c.http.Do(httpReq)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return &APIError{Status: resp.StatusCode, Message: strings.TrimSpace(string(msg))}
	}
	return nil
}

// do runs the retry loop around one endpoint call.
func (c *Client) do(ctx context.Context, method, path string, body []byte, out any) error {
	var lastErr error
	for attempt := 0; attempt < c.cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			wait := c.backoff(attempt - 1)
			var apiErr *APIError
			if errors.As(lastErr, &apiErr) && apiErr.RetryAfter > wait {
				wait = apiErr.RetryAfter
			}
			c.retries.Add(1)
			if err := sleepCtx(ctx, wait); err != nil {
				return err
			}
		}
		err := c.attempt(ctx, method, path, body, out)
		if err == nil {
			return nil
		}
		lastErr = err
		if ctx.Err() != nil {
			return ctx.Err()
		}
		var apiErr *APIError
		if errors.As(err, &apiErr) && !apiErr.Retryable() {
			return err
		}
		// Transport errors (server killed mid-stream, connection reset)
		// and retryable statuses loop around.
	}
	return fmt.Errorf("client: giving up after %d attempts: %w", c.cfg.MaxAttempts, lastErr)
}

// attempt issues one HTTP request and decodes the answer.
func (c *Client) attempt(ctx context.Context, method, path string, body []byte, out any) error {
	httpReq, err := http.NewRequestWithContext(ctx, method, c.cfg.BaseURL+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	httpReq.Header.Set("Content-Type", "application/json")
	if c.cfg.Deadline > 0 {
		httpReq.Header.Set(DeadlineHeader, strconv.FormatInt(c.cfg.Deadline.Milliseconds(), 10))
	}
	c.attempts.Add(1)
	resp, err := c.http.Do(httpReq)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusTooManyRequests:
		c.throttled.Add(1)
	case http.StatusGatewayTimeout:
		c.deadlined.Add(1)
	}
	if resp.StatusCode != http.StatusOK {
		return decodeError(resp)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("client: decoding response: %w", err)
	}
	return nil
}

// decodeError turns a non-200 response into an *APIError, reading the
// server's typed JSON body and Retry-After header when present.
func decodeError(resp *http.Response) error {
	apiErr := &APIError{Status: resp.StatusCode}
	var body struct {
		Error        string `json:"error"`
		Code         string `json:"code"`
		RetryAfterMs int64  `json:"retry_after_ms"`
	}
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	if json.Unmarshal(raw, &body) == nil && body.Error != "" {
		apiErr.Message = body.Error
		apiErr.Code = body.Code
		apiErr.RetryAfter = time.Duration(body.RetryAfterMs) * time.Millisecond
	} else {
		apiErr.Message = strings.TrimSpace(string(raw))
	}
	// Header form wins when longer. RFC 9110 allows both delta-seconds
	// (what leapme-serve sends) and an HTTP-date (what proxies and load
	// balancers in front of it may rewrite it to).
	if s := resp.Header.Get("Retry-After"); s != "" {
		var d time.Duration
		if secs, err := strconv.Atoi(s); err == nil {
			d = time.Duration(secs) * time.Second
		} else if at, err := http.ParseTime(s); err == nil {
			//lint:allow determinism an absolute Retry-After date only converts to a wait via the wall clock; wait time never feeds a computed result
			d = time.Until(at)
		}
		if d > apiErr.RetryAfter {
			apiErr.RetryAfter = d
		}
	}
	return apiErr
}

// backoff computes the jittered exponential wait before retry n (0-based).
func (c *Client) backoff(n int) time.Duration {
	d := c.cfg.BaseBackoff << uint(n)
	if d <= 0 || d > c.cfg.MaxBackoff {
		d = c.cfg.MaxBackoff
	}
	c.mu.Lock()
	f := 0.5 + c.rng.Float64() // jitter factor in [0.5, 1.5)
	c.mu.Unlock()
	return time.Duration(float64(d) * f)
}

// sleepCtx waits d or until ctx ends, whichever is first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	//lint:allow determinism backoff wait time delays retries but never feeds a computed result
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
