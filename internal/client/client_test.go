package client

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func matchOK(w http.ResponseWriter, score float64) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(MatchResponse{
		Model:   "default",
		CRC:     "deadbeef",
		Results: []PairResult{{Score: score, Match: score >= 0.5}},
	})
}

func typedError(w http.ResponseWriter, status int, code, msg string, retryAfterMs int64) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]any{
		"error": msg, "code": code, "retry_after_ms": retryAfterMs,
	})
}

func newClient(t *testing.T, ts *httptest.Server, mut func(*Config)) *Client {
	t.Helper()
	cfg := Config{
		BaseURL:     ts.URL,
		HTTPClient:  ts.Client(),
		MaxAttempts: 4,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  5 * time.Millisecond,
		Seed:        1,
	}
	if mut != nil {
		mut(&cfg)
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

var oneReq = &MatchRequest{Pairs: []Pair{{A: PropSpec{Name: "a"}, B: PropSpec{Name: "b"}}}}

func TestMatchSuccess(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/match" || r.Method != http.MethodPost {
			t.Errorf("unexpected %s %s", r.Method, r.URL.Path)
		}
		var req MatchRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil || len(req.Pairs) != 1 {
			t.Errorf("bad request body: %v %+v", err, req)
		}
		matchOK(w, 0.9)
	}))
	defer ts.Close()
	c := newClient(t, ts, nil)
	resp, err := c.Match(context.Background(), oneReq)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 1 || resp.Results[0].Score != 0.9 || !resp.Results[0].Match {
		t.Fatalf("response = %+v", resp)
	}
	if s := c.Stats(); s.Attempts != 1 || s.Retries != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestRetriesOn429HonoringRetryAfter(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "0")
			typedError(w, http.StatusTooManyRequests, "overloaded", "queue full", 10)
			return
		}
		matchOK(w, 0.7)
	}))
	defer ts.Close()
	c := newClient(t, ts, nil)
	start := time.Now()
	if _, err := c.Match(context.Background(), oneReq); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 3 {
		t.Fatalf("server saw %d calls, want 3", calls.Load())
	}
	s := c.Stats()
	if s.Throttled != 2 || s.Retries != 2 {
		t.Fatalf("stats = %+v, want 2 throttled / 2 retries", s)
	}
	// Two waits, each at least the 10ms retry_after_ms advice.
	if elapsed := time.Since(start); elapsed < 20*time.Millisecond {
		t.Fatalf("finished in %v; Retry-After advice ignored", elapsed)
	}
}

// TestRetryAfterHTTPDate pins the RFC 9110 HTTP-date form of Retry-After
// (what proxies and load balancers in front of the server may rewrite
// the delta-seconds form to): the client converts it to a wait instead
// of silently ignoring it and retrying sooner than advised.
func TestRetryAfterHTTPDate(t *testing.T) {
	errResp := func(retryAfter, body string) *http.Response {
		return &http.Response{
			StatusCode: http.StatusTooManyRequests,
			Header:     http.Header{"Retry-After": []string{retryAfter}},
			Body:       io.NopCloser(strings.NewReader(body)),
		}
	}
	future := time.Now().Add(3 * time.Second).UTC().Format(http.TimeFormat)
	var apiErr *APIError
	if !errors.As(decodeError(errResp(future, `{"error":"queue full","code":"overloaded"}`)), &apiErr) {
		t.Fatal("decodeError did not return an *APIError")
	}
	// http.TimeFormat has second granularity, so the parsed wait is the
	// 3s advice minus sub-second truncation and test overhead.
	if apiErr.RetryAfter < time.Second || apiErr.RetryAfter > 3*time.Second {
		t.Fatalf("RetryAfter = %v, want ~3s from the HTTP-date header", apiErr.RetryAfter)
	}
	// A date in the past must not outrank the body's positive advice.
	past := time.Now().Add(-time.Minute).UTC().Format(http.TimeFormat)
	if !errors.As(decodeError(errResp(past, `{"error":"queue full","code":"overloaded","retry_after_ms":50}`)), &apiErr) {
		t.Fatal("decodeError did not return an *APIError")
	}
	if apiErr.RetryAfter != 50*time.Millisecond {
		t.Fatalf("RetryAfter = %v, want the body's 50ms (past date must lose)", apiErr.RetryAfter)
	}
}

func TestRetriesOn503And504(t *testing.T) {
	for _, tc := range []struct {
		status int
		code   string
	}{
		{http.StatusServiceUnavailable, "draining"},
		{http.StatusGatewayTimeout, "deadline_exceeded"},
	} {
		var calls atomic.Int64
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if calls.Add(1) == 1 {
				typedError(w, tc.status, tc.code, "transient", 0)
				return
			}
			matchOK(w, 0.6)
		}))
		c := newClient(t, ts, nil)
		if _, err := c.Match(context.Background(), oneReq); err != nil {
			t.Errorf("status %d: %v", tc.status, err)
		}
		if calls.Load() != 2 {
			t.Errorf("status %d: %d calls, want 2", tc.status, calls.Load())
		}
		ts.Close()
	}
}

func TestPermanentErrorsDontRetry(t *testing.T) {
	for _, status := range []int{http.StatusBadRequest, http.StatusNotFound, http.StatusInternalServerError} {
		var calls atomic.Int64
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			calls.Add(1)
			typedError(w, status, "some_code", "permanent", 0)
		}))
		c := newClient(t, ts, nil)
		_, err := c.Match(context.Background(), oneReq)
		var apiErr *APIError
		if !errors.As(err, &apiErr) || apiErr.Status != status || apiErr.Code != "some_code" {
			t.Errorf("status %d: error = %v", status, err)
		}
		if apiErr != nil && apiErr.Retryable() {
			t.Errorf("status %d claims retryable", status)
		}
		if calls.Load() != 1 {
			t.Errorf("status %d retried: %d calls", status, calls.Load())
		}
		ts.Close()
	}
}

func TestGivesUpAfterMaxAttempts(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		typedError(w, http.StatusServiceUnavailable, "draining", "always down", 0)
	}))
	defer ts.Close()
	c := newClient(t, ts, func(c *Config) { c.MaxAttempts = 3 })
	_, err := c.Match(context.Background(), oneReq)
	if err == nil || calls.Load() != 3 {
		t.Fatalf("err=%v calls=%d, want failure after exactly 3", err, calls.Load())
	}
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusServiceUnavailable {
		t.Fatalf("final error does not carry the last APIError: %v", err)
	}
}

func TestContextCancelDuringBackoff(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		typedError(w, http.StatusServiceUnavailable, "draining", "down", 60_000)
	}))
	defer ts.Close()
	c := newClient(t, ts, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Match(ctx, oneReq)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("cancellation did not interrupt the 60s Retry-After wait")
	}
}

func TestDeadlineHeaderSent(t *testing.T) {
	var got atomic.Value
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		got.Store(r.Header.Get(DeadlineHeader))
		matchOK(w, 0.5)
	}))
	defer ts.Close()
	c := newClient(t, ts, func(c *Config) { c.Deadline = 1500 * time.Millisecond })
	if _, err := c.Match(context.Background(), oneReq); err != nil {
		t.Fatal(err)
	}
	if got.Load() != "1500" {
		t.Fatalf("deadline header = %q, want 1500", got.Load())
	}
}

func TestBackoffSeededJitterDeterministic(t *testing.T) {
	seq := func(seed int64) []time.Duration {
		c, err := New(Config{BaseURL: "http://x", Seed: seed, BaseBackoff: 10 * time.Millisecond, MaxBackoff: time.Second})
		if err != nil {
			t.Fatal(err)
		}
		var out []time.Duration
		for n := 0; n < 6; n++ {
			out = append(out, c.backoff(n))
		}
		return out
	}
	a, b := seq(7), seq(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at retry %d: %v != %v", i, a[i], b[i])
		}
		base := 10 * time.Millisecond << uint(i)
		if base > time.Second {
			base = time.Second
		}
		if a[i] < base/2 || a[i] >= base+base/2 {
			t.Fatalf("retry %d backoff %v outside jitter window [%v, %v)", i, a[i], base/2, base+base/2)
		}
	}
	if c := seq(8); c[0] == a[0] && c[1] == a[1] && c[2] == a[2] {
		t.Fatal("different seeds produced identical jitter")
	}
}
