package text

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNGramsBasic(t *testing.T) {
	p, err := NGrams("ab", 2)
	if err != nil {
		t.Fatal(err)
	}
	// padded " ab " → " a", "ab", "b "
	want := map[string]int{" a": 1, "ab": 1, "b ": 1}
	if len(p) != len(want) {
		t.Fatalf("profile = %v", p)
	}
	for g, c := range want {
		if p[g] != c {
			t.Errorf("gram %q count = %d, want %d", g, p[g], c)
		}
	}
}

func TestNGramsEmpty(t *testing.T) {
	if p, err := NGrams("", 3); err != nil || len(p) != 0 {
		t.Errorf("empty string profile = %v (err %v)", p, err)
	}
}

func TestNGramsCounts(t *testing.T) {
	p, err := NGrams("aaaa", 2)
	if err != nil {
		t.Fatal(err)
	}
	if p["aa"] != 3 {
		t.Errorf(`count of "aa" in "aaaa" = %d, want 3`, p["aa"])
	}
}

func TestNGramsRejectsBadQ(t *testing.T) {
	for _, q := range []int{0, -1, -100} {
		if _, err := NGrams("abc", q); err == nil {
			t.Errorf("q=%d accepted", q)
		}
	}
}

func TestQGramDistance(t *testing.T) {
	a := TriGrams("night")
	b := TriGrams("nacht")
	if d := QGramDistance(a, b); d <= 0 {
		t.Errorf("distance = %d, want positive", d)
	}
	if d := QGramDistance(a, a); d != 0 {
		t.Errorf("self distance = %d", d)
	}
}

func TestTriGramDistances(t *testing.T) {
	if d := TriGramDistance("same", "same"); d != 0 {
		t.Errorf("identical 3-gram distance = %v", d)
	}
	if d := TriGramCosineDistance("same", "same"); math.Abs(d) > 1e-12 {
		t.Errorf("identical cosine distance = %v", d)
	}
	if d := TriGramJaccardDistance("same", "same"); d != 0 {
		t.Errorf("identical jaccard distance = %v", d)
	}
	if d := TriGramDistance("", ""); d != 0 {
		t.Errorf("empty trigram distance = %v", d)
	}
	if d := TriGramCosineDistance("abc", ""); d != 1 {
		t.Errorf("nonempty-vs-empty cosine distance = %v, want 1", d)
	}
}

func TestProfileDistanceProperties(t *testing.T) {
	f := func(a, b string) bool {
		a, b = trimLong(a), trimLong(b)
		pa, pb := TriGrams(a), TriGrams(b)
		cos := pa.CosineDistance(pb)
		jac := pa.JaccardDistance(pb)
		qd := NormalizedQGramDistance(pa, pb)
		// bounds
		if cos < -1e-12 || cos > 1+1e-12 || jac < 0 || jac > 1 || qd < 0 || qd > 1 {
			return false
		}
		// symmetry
		if math.Abs(cos-pb.CosineDistance(pa)) > 1e-12 {
			return false
		}
		if math.Abs(jac-pb.JaccardDistance(pa)) > 1e-12 {
			return false
		}
		return true
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestSimilarStringsCloserThanDissimilar(t *testing.T) {
	near := TriGramDistance("megapixels", "megapixel")
	far := TriGramDistance("megapixels", "shutter speed")
	if near >= far {
		t.Errorf("3-gram distance should rank near pair first: near=%v far=%v", near, far)
	}
}
