package text

import (
	"fmt"
	"math"
)

// NGramProfile is a multiset of the character q-grams of a string, as used
// by the 3-gram features of Table I (rows 12–14). Strings are padded with
// q−1 leading and trailing sentinel runes so that short strings still
// produce grams, following the convention of the original q-gram distance
// (Ukkonen 1992).
type NGramProfile map[string]int

const padRune = '\x20' // space; padding grams mark word edges

// NGrams returns the padded q-gram profile of s. A non-positive q is an
// input error, not a panic: q often arrives from user configuration.
func NGrams(s string, q int) (NGramProfile, error) {
	if q <= 0 {
		return nil, fmt.Errorf("text: NGrams with non-positive q %d", q)
	}
	return ngrams(s, q), nil
}

// ngrams computes the profile for a q already known to be positive.
func ngrams(s string, q int) NGramProfile {
	runes := []rune(s)
	if len(runes) == 0 {
		return NGramProfile{}
	}
	padded := make([]rune, 0, len(runes)+2*(q-1))
	for i := 0; i < q-1; i++ {
		padded = append(padded, padRune)
	}
	padded = append(padded, runes...)
	for i := 0; i < q-1; i++ {
		padded = append(padded, padRune)
	}
	p := make(NGramProfile, len(padded))
	for i := 0; i+q <= len(padded); i++ {
		p[string(padded[i:i+q])]++
	}
	return p
}

// TriGrams returns the padded 3-gram profile of s.
func TriGrams(s string) NGramProfile { return ngrams(s, 3) }

// QGramDistance returns the L1 distance between two q-gram profiles: the
// total count of grams present in one profile but not the other.
func QGramDistance(a, b NGramProfile) int {
	d := 0
	for g, ca := range a {
		cb := b[g]
		if ca > cb {
			d += ca - cb
		} else {
			d += cb - ca
		}
	}
	for g, cb := range b {
		if _, ok := a[g]; !ok {
			d += cb
		}
	}
	return d
}

// NormalizedQGramDistance returns QGramDistance scaled by the total gram
// count of both profiles, giving a value in [0, 1]. Two empty profiles have
// distance 0.
func NormalizedQGramDistance(a, b NGramProfile) float64 {
	total := 0
	for _, c := range a {
		total += c
	}
	for _, c := range b {
		total += c
	}
	if total == 0 {
		return 0
	}
	return float64(QGramDistance(a, b)) / float64(total)
}

// CosineDistance returns 1 − cosine similarity between the profiles viewed
// as sparse count vectors. Two empty profiles have distance 0; one empty
// profile against a non-empty one has distance 1.
func (a NGramProfile) CosineDistance(b NGramProfile) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 0
	}
	var dot, na, nb float64
	for g, ca := range a {
		fa := float64(ca)
		na += fa * fa
		if cb, ok := b[g]; ok {
			dot += fa * float64(cb)
		}
	}
	for _, cb := range b {
		fb := float64(cb)
		nb += fb * fb
	}
	if na == 0 || nb == 0 {
		return 1
	}
	d := 1 - dot/(math.Sqrt(na)*math.Sqrt(nb))
	if d < 0 {
		return 0 // clamp float residue; a distance is never negative
	}
	return d
}

// JaccardDistance returns 1 − |A∩B| / |A∪B| over the gram *sets* (counts
// ignored). Two empty profiles have distance 0.
func (a NGramProfile) JaccardDistance(b NGramProfile) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 0
	}
	inter := 0
	for g := range a {
		if _, ok := b[g]; ok {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	if union == 0 {
		return 0
	}
	return 1 - float64(inter)/float64(union)
}

// TriGramDistance is the normalised 3-gram distance between two strings
// (Table I row 12).
func TriGramDistance(a, b string) float64 {
	return NormalizedQGramDistance(TriGrams(a), TriGrams(b))
}

// TriGramCosineDistance is the cosine distance between the 3-gram profiles
// of two strings (Table I row 13).
func TriGramCosineDistance(a, b string) float64 {
	return TriGrams(a).CosineDistance(TriGrams(b))
}

// TriGramJaccardDistance is the Jaccard distance between the 3-gram
// profiles of two strings (Table I row 14).
func TriGramJaccardDistance(a, b string) float64 {
	return TriGrams(a).JaccardDistance(TriGrams(b))
}
