package text

import (
	"strings"
	"unicode"
)

// Tokenize splits s into lowercase word tokens. A token is a maximal run
// of letters or of digits; everything else separates tokens, letter/digit
// boundaries split ("24MP" → ["24", "mp"]), and camelCase boundaries split
// ("shutterSpeed" → ["shutter", "speed"], "HDMIPort" → ["hdmi", "port"]).
// This mirrors the preprocessing used to look words up in the embedding
// vocabulary: property names arrive in arbitrary site conventions and must
// map onto the same vocabulary entries.
func Tokenize(s string) []string {
	var toks []string
	var cur []rune
	var curKind rune // 'l' letters, 'd' digits, 0 none
	flush := func() {
		if len(cur) > 0 {
			toks = append(toks, strings.ToLower(string(cur)))
			cur = cur[:0]
		}
		curKind = 0
	}
	prevUpper := false
	for _, r := range s {
		var kind rune
		switch {
		case unicode.IsLetter(r):
			kind = 'l'
		case unicode.IsDigit(r):
			kind = 'd'
		default:
			flush()
			prevUpper = false
			continue
		}
		switch {
		case curKind != 0 && kind != curKind:
			flush()
		case kind == 'l' && unicode.IsUpper(r) && !prevUpper && len(cur) > 0:
			// lower→Upper boundary: camelCase.
			flush()
		case kind == 'l' && !unicode.IsUpper(r) && prevUpper && len(cur) > 1:
			// UPPERRun followed by lowercase: the last upper rune starts
			// the next word ("HDMIPort" → "HDMI" | "Port").
			last := cur[len(cur)-1]
			cur = cur[:len(cur)-1]
			flush()
			cur = append(cur, last)
		}
		cur = append(cur, r)
		curKind = kind
		prevUpper = kind == 'l' && unicode.IsUpper(r)
	}
	flush()
	return toks
}

// Words splits s on Unicode whitespace without lowercasing or splitting on
// punctuation. It is the raw token stream the TAPON token-type features
// (Table I row 2) are computed over, where capitalisation matters.
func Words(s string) []string {
	return strings.FieldsFunc(s, unicode.IsSpace)
}

// NormalizeName canonicalises a property name for comparison: it joins the
// Tokenize tokens with single spaces, so "Camera-Resolution",
// "camera_resolution" and "cameraResolution" all normalise to
// "camera resolution" and string distances measure real name differences
// rather than site naming conventions.
func NormalizeName(s string) string {
	return strings.Join(Tokenize(s), " ")
}
