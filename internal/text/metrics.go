package text

// This file implements the edit-distance family of string metrics used as
// property-pair features (Table I rows 8–11 and 15). All functions operate
// on runes, not bytes, so multi-byte property names compare correctly.

// Levenshtein returns the classic edit distance between a and b
// (insertions, deletions, substitutions, unit cost).
func Levenshtein(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	la, lb := len(ra), len(rb)
	if la == 0 {
		return lb
	}
	if lb == 0 {
		return la
	}
	prev := make([]int, lb+1)
	cur := make([]int, lb+1)
	for j := 0; j <= lb; j++ {
		prev[j] = j
	}
	for i := 1; i <= la; i++ {
		cur[0] = i
		for j := 1; j <= lb; j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[lb]
}

// OSA returns the optimal string alignment distance (also called the
// restricted Damerau–Levenshtein distance): Levenshtein plus transposition
// of two adjacent characters, with the restriction that no substring is
// edited more than once. Unlike the full Damerau–Levenshtein distance it
// does not satisfy the triangle inequality (e.g. "ca" → "abc").
func OSA(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	la, lb := len(ra), len(rb)
	if la == 0 {
		return lb
	}
	if lb == 0 {
		return la
	}
	// Three rolling rows: i-2, i-1, i.
	prev2 := make([]int, lb+1)
	prev := make([]int, lb+1)
	cur := make([]int, lb+1)
	for j := 0; j <= lb; j++ {
		prev[j] = j
	}
	for i := 1; i <= la; i++ {
		cur[0] = i
		for j := 1; j <= lb; j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			d := min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
			if i > 1 && j > 1 && ra[i-1] == rb[j-2] && ra[i-2] == rb[j-1] {
				if t := prev2[j-2] + 1; t < d {
					d = t
				}
			}
			cur[j] = d
		}
		prev2, prev, cur = prev, cur, prev2
	}
	return prev[lb]
}

// DamerauLevenshtein returns the full (unrestricted) Damerau–Levenshtein
// distance, which allows transposed characters to be edited again and is a
// true metric. This is the O(|a|·|b|) alphabet-indexed algorithm of
// Lowrance & Wagner.
func DamerauLevenshtein(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	la, lb := len(ra), len(rb)
	if la == 0 {
		return lb
	}
	if lb == 0 {
		return la
	}
	inf := la + lb + 1
	// d is (la+2)×(lb+2) with a sentinel row/column of `inf`.
	w := lb + 2
	d := make([]int, (la+2)*w)
	at := func(i, j int) int { return d[i*w+j] }
	set := func(i, j, v int) { d[i*w+j] = v }
	set(0, 0, inf)
	for i := 0; i <= la; i++ {
		set(i+1, 0, inf)
		set(i+1, 1, i)
	}
	for j := 0; j <= lb; j++ {
		set(0, j+1, inf)
		set(1, j+1, j)
	}
	lastRow := map[rune]int{} // last row where each rune occurred in a
	for i := 1; i <= la; i++ {
		lastCol := 0 // last column in this row where ra[i-1] == rb[j-1]
		for j := 1; j <= lb; j++ {
			i1 := lastRow[rb[j-1]]
			j1 := lastCol
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
				lastCol = j
			}
			sub := at(i, j) + cost
			ins := at(i+1, j) + 1
			del := at(i, j+1) + 1
			trans := inf
			if i1 > 0 && j1 > 0 {
				trans = at(i1, j1) + (i - i1 - 1) + 1 + (j - j1 - 1)
			}
			set(i+1, j+1, min4(sub, ins, del, trans))
		}
		lastRow[ra[i-1]] = i
	}
	return at(la+1, lb+1)
}

// LongestCommonSubstring returns the length of the longest contiguous
// substring shared by a and b.
func LongestCommonSubstring(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	if len(ra) == 0 || len(rb) == 0 {
		return 0
	}
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	best := 0
	for i := 1; i <= len(ra); i++ {
		for j := 1; j <= len(rb); j++ {
			if ra[i-1] == rb[j-1] {
				cur[j] = prev[j-1] + 1
				if cur[j] > best {
					best = cur[j]
				}
			} else {
				cur[j] = 0
			}
		}
		prev, cur = cur, prev
	}
	return best
}

// LCSubstringDistance is the longest-common-substring distance used by the
// paper: max(|a|,|b|) − LCSubstring(a,b), normalised later per feature.
func LCSubstringDistance(a, b string) int {
	la, lb := len([]rune(a)), len([]rune(b))
	m := la
	if lb > m {
		m = lb
	}
	return m - LongestCommonSubstring(a, b)
}

// LongestCommonSubsequence returns the length of the longest (not
// necessarily contiguous) common subsequence. Used by the AML baseline's
// similarity ensemble.
func LongestCommonSubsequence(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	if len(ra) == 0 || len(rb) == 0 {
		return 0
	}
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	for i := 1; i <= len(ra); i++ {
		for j := 1; j <= len(rb); j++ {
			if ra[i-1] == rb[j-1] {
				cur[j] = prev[j-1] + 1
			} else if prev[j] >= cur[j-1] {
				cur[j] = prev[j]
			} else {
				cur[j] = cur[j-1]
			}
		}
		prev, cur = cur, prev
	}
	return prev[len(rb)]
}

// Jaro returns the Jaro similarity in [0, 1].
func Jaro(a, b string) float64 {
	ra, rb := []rune(a), []rune(b)
	la, lb := len(ra), len(rb)
	if la == 0 && lb == 0 {
		return 1
	}
	if la == 0 || lb == 0 {
		return 0
	}
	window := max2(la, lb)/2 - 1
	if window < 0 {
		window = 0
	}
	matchA := make([]bool, la)
	matchB := make([]bool, lb)
	matches := 0
	for i := 0; i < la; i++ {
		lo := max2(0, i-window)
		hi := min2(lb-1, i+window)
		for j := lo; j <= hi; j++ {
			if !matchB[j] && ra[i] == rb[j] {
				matchA[i] = true
				matchB[j] = true
				matches++
				break
			}
		}
	}
	if matches == 0 {
		return 0
	}
	// Count transpositions among matched characters.
	trans := 0
	j := 0
	for i := 0; i < la; i++ {
		if !matchA[i] {
			continue
		}
		for !matchB[j] {
			j++
		}
		if ra[i] != rb[j] {
			trans++
		}
		j++
	}
	m := float64(matches)
	return (m/float64(la) + m/float64(lb) + (m-float64(trans)/2)/m) / 3
}

// JaroWinkler returns the Jaro–Winkler similarity in [0, 1] with the
// standard prefix scale p = 0.1 and prefix length capped at 4.
func JaroWinkler(a, b string) float64 {
	j := Jaro(a, b)
	ra, rb := []rune(a), []rune(b)
	prefix := 0
	for prefix < len(ra) && prefix < len(rb) && prefix < 4 && ra[prefix] == rb[prefix] {
		prefix++
	}
	return j + float64(prefix)*0.1*(1-j)
}

// JaroWinklerDistance returns 1 − JaroWinkler(a, b), the form used as a
// property-pair feature (Table I row 15).
func JaroWinklerDistance(a, b string) float64 { return 1 - JaroWinkler(a, b) }

// NormalizedLevenshtein returns Levenshtein(a,b) / max(|a|,|b|) in [0, 1],
// with distance 0 for two empty strings.
func NormalizedLevenshtein(a, b string) float64 {
	return normalizeByMaxLen(Levenshtein(a, b), a, b)
}

// NormalizedOSA returns OSA(a,b) / max(|a|,|b|) in [0, 1].
func NormalizedOSA(a, b string) float64 {
	return normalizeByMaxLen(OSA(a, b), a, b)
}

// NormalizedDamerauLevenshtein returns DamerauLevenshtein(a,b) / max(|a|,|b|).
func NormalizedDamerauLevenshtein(a, b string) float64 {
	return normalizeByMaxLen(DamerauLevenshtein(a, b), a, b)
}

// NormalizedLCSubstring returns LCSubstringDistance(a,b) / max(|a|,|b|).
func NormalizedLCSubstring(a, b string) float64 {
	return normalizeByMaxLen(LCSubstringDistance(a, b), a, b)
}

func normalizeByMaxLen(d int, a, b string) float64 {
	la, lb := len([]rune(a)), len([]rune(b))
	m := max2(la, lb)
	if m == 0 {
		return 0
	}
	return float64(d) / float64(m)
}

func min2(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max2(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min3(a, b, c int) int { return min2(min2(a, b), c) }

func min4(a, b, c, d int) int { return min2(min3(a, b, c), d) }
