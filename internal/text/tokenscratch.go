package text

import (
	"unicode"
	"unicode/utf8"
)

// TokenScratch is the reusable arena behind ScanTokens: the lowercased
// token bytes of one string packed back-to-back in a single buffer plus
// the offsets that delimit them. Like EditScratch, the zero value is
// ready to use, buffers grow on demand and are retained across calls,
// so a warm scratch tokenises without heap allocations.
//
// Equivalence contract: after ScanTokens(s, ts), ts holds exactly the
// tokens Tokenize(s) returns, in order, with identical bytes. The text
// tests cross-check the two paths over the full tokenizer corpus; any
// boundary-rule change must land in both.
type TokenScratch struct {
	buf  []byte // lowercased token bytes, back-to-back
	offs []int  // token i spans buf[offs[i]:offs[i+1]]
	cur  []rune // the token being accumulated
}

// Count returns the number of tokens produced by the last ScanTokens.
func (ts *TokenScratch) Count() int {
	if len(ts.offs) == 0 {
		return 0
	}
	return len(ts.offs) - 1
}

// Token returns the i-th token's lowercased bytes. The slice aliases the
// scratch buffer and is invalidated by the next ScanTokens call; look it
// up or copy it before rescanning.
func (ts *TokenScratch) Token(i int) []byte {
	return ts.buf[ts.offs[i]:ts.offs[i+1]]
}

// flush lowercases the accumulated runes into the byte arena and records
// the token boundary, mirroring Tokenize's strings.ToLower(string(cur))
// rune for rune (strings.ToLower is strings.Map(unicode.ToLower, ·), a
// 1:1 rune mapping, so per-rune unicode.ToLower + AppendRune produces
// identical bytes).
func (ts *TokenScratch) flush() {
	if len(ts.cur) == 0 {
		return
	}
	for _, r := range ts.cur {
		ts.buf = utf8.AppendRune(ts.buf, unicode.ToLower(r))
	}
	ts.offs = append(ts.offs, len(ts.buf))
	ts.cur = ts.cur[:0]
}

// ScanTokens tokenises s into ts with the exact boundary rules of
// Tokenize: maximal letter or digit runs, letter/digit splits, camelCase
// splits, and the UPPERRun+lower rule ("HDMIPort" → "hdmi" | "port").
// A warm scratch performs no heap allocations; bytes are bit-identical
// to Tokenize's output.
func ScanTokens(s string, ts *TokenScratch) {
	ts.buf = ts.buf[:0]
	ts.cur = ts.cur[:0]
	ts.offs = append(ts.offs[:0], 0)
	var curKind rune // 'l' letters, 'd' digits, 0 none
	prevUpper := false
	for _, r := range s {
		var kind rune
		switch {
		case unicode.IsLetter(r):
			kind = 'l'
		case unicode.IsDigit(r):
			kind = 'd'
		default:
			ts.flush()
			curKind = 0
			prevUpper = false
			continue
		}
		switch {
		case curKind != 0 && kind != curKind:
			ts.flush()
		case kind == 'l' && unicode.IsUpper(r) && !prevUpper && len(ts.cur) > 0:
			// lower→Upper boundary: camelCase.
			ts.flush()
		case kind == 'l' && !unicode.IsUpper(r) && prevUpper && len(ts.cur) > 1:
			// UPPERRun followed by lowercase: the last upper rune starts
			// the next word.
			last := ts.cur[len(ts.cur)-1]
			ts.cur = ts.cur[:len(ts.cur)-1]
			ts.flush()
			ts.cur = append(ts.cur, last)
		}
		ts.cur = append(ts.cur, r)
		curKind = kind
		prevUpper = kind == 'l' && unicode.IsUpper(r)
	}
	ts.flush()
}
