package text

import (
	"math"
	"testing"
)

func TestMongeElkanExactTokens(t *testing.T) {
	a := []string{"camera", "resolution"}
	if got := MongeElkan(a, a, JaroWinkler); math.Abs(got-1) > 1e-12 {
		t.Errorf("self similarity = %v", got)
	}
}

func TestMongeElkanPartial(t *testing.T) {
	a := []string{"camera", "resolution"}
	b := []string{"camera", "resolutions"}
	got := MongeElkanSym(a, b, JaroWinkler)
	if got < 0.9 {
		t.Errorf("near-identical token lists = %v, want > 0.9", got)
	}
	c := []string{"shutter", "speed"}
	far := MongeElkanSym(a, c, JaroWinkler)
	if far >= got {
		t.Errorf("unrelated (%v) should score below related (%v)", far, got)
	}
}

func TestMongeElkanEmpty(t *testing.T) {
	if MongeElkan(nil, []string{"x"}, JaroWinkler) != 0 {
		t.Error("empty a should be 0")
	}
	if MongeElkan([]string{"x"}, nil, JaroWinkler) != 0 {
		t.Error("empty b should be 0")
	}
}

func TestMongeElkanAsymmetry(t *testing.T) {
	// a ⊂ b: forward direction is perfect, backward is not.
	a := []string{"camera"}
	b := []string{"camera", "resolution"}
	fwd := MongeElkan(a, b, JaroWinkler)
	back := MongeElkan(b, a, JaroWinkler)
	if fwd != 1 {
		t.Errorf("subset forward = %v, want 1", fwd)
	}
	if back >= 1 {
		t.Errorf("superset backward = %v, want < 1", back)
	}
	sym := MongeElkanSym(a, b, JaroWinkler)
	if math.Abs(sym-(fwd+back)/2) > 1e-12 {
		t.Error("Sym is not the mean of both directions")
	}
}

func TestTokenIDF(t *testing.T) {
	docs := [][]string{
		{"camera", "resolution"},
		{"camera", "weight"},
		{"camera", "price"},
	}
	idf := TokenIDF(docs)
	// "camera" is in every doc → lowest idf.
	if idf["camera"] >= idf["weight"] {
		t.Errorf("idf(camera)=%v should be below idf(weight)=%v", idf["camera"], idf["weight"])
	}
	// Duplicate tokens in one doc count once.
	idf2 := TokenIDF([][]string{{"x", "x"}, {"y"}})
	if idf2["x"] != idf2["y"] {
		t.Errorf("df should be document frequency: %v vs %v", idf2["x"], idf2["y"])
	}
}

func TestSoftTFIDF(t *testing.T) {
	docs := [][]string{
		{"camera", "resolution"},
		{"camera", "weight"},
		{"sensor", "type"},
		{"shutter", "speed"},
	}
	idf := TokenIDF(docs)
	selfSim := SoftTFIDF([]string{"camera", "resolution"}, []string{"camera", "resolution"}, idf, JaroWinkler, 0.9)
	if math.Abs(selfSim-1) > 1e-9 {
		t.Errorf("self soft-tfidf = %v", selfSim)
	}
	// Rare-token agreement outweighs common-token agreement.
	rare := SoftTFIDF([]string{"camera", "resolution"}, []string{"sensor", "resolution"}, idf, JaroWinkler, 0.9)
	common := SoftTFIDF([]string{"camera", "resolution"}, []string{"camera", "speed"}, idf, JaroWinkler, 0.9)
	if rare <= common {
		t.Errorf("rare-token match (%v) should beat common-token match (%v)", rare, common)
	}
	if got := SoftTFIDF(nil, []string{"x"}, idf, JaroWinkler, 0.9); got != 0 {
		t.Errorf("empty soft-tfidf = %v", got)
	}
	// Soft matching: morphological variant still matches.
	soft := SoftTFIDF([]string{"resolutions"}, []string{"resolution"}, idf, JaroWinkler, 0.9)
	if soft <= 0 {
		t.Error("soft matching failed on near-identical tokens")
	}
}

func TestSoftTFIDFBounds(t *testing.T) {
	idf := TokenIDF([][]string{{"a"}, {"b"}, {"c"}})
	for _, pair := range [][2][]string{
		{{"a", "b"}, {"b", "c"}},
		{{"a"}, {"a", "b", "c"}},
		{{"zz", "qq"}, {"zz"}},
	} {
		got := SoftTFIDF(pair[0], pair[1], idf, JaroWinkler, 0.9)
		if got < 0 || got > 1 {
			t.Errorf("SoftTFIDF(%v, %v) = %v outside [0,1]", pair[0], pair[1], got)
		}
	}
}
