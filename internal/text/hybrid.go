package text

import "math"

// Hybrid (token-level × character-level) similarities, used by matcher
// ensembles such as AML's word matchers. They compare token multisets but
// score token pairs with a character-level inner similarity, so
// "camera resolution" ~ "camera resolutions" scores high even though the
// token sets differ.

// MongeElkan returns the Monge–Elkan similarity of a against b under the
// given inner token similarity: the average, over tokens of a, of the
// best inner similarity against any token of b. It is asymmetric; use
// MongeElkanSym for the symmetrised version.
func MongeElkan(a, b []string, inner func(x, y string) float64) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	var sum float64
	for _, ta := range a {
		best := 0.0
		for _, tb := range b {
			if s := inner(ta, tb); s > best {
				best = s
			}
		}
		sum += best
	}
	return sum / float64(len(a))
}

// MongeElkanSym is the symmetrised Monge–Elkan similarity:
// the mean of both directions.
func MongeElkanSym(a, b []string, inner func(x, y string) float64) float64 {
	return (MongeElkan(a, b, inner) + MongeElkan(b, a, inner)) / 2
}

// TokenIDF computes inverse document frequencies over a corpus of token
// lists: idf(t) = log(1 + N / df(t)). It feeds SoftTFIDF.
func TokenIDF(docs [][]string) map[string]float64 {
	df := map[string]int{}
	for _, doc := range docs {
		seen := map[string]bool{}
		for _, t := range doc {
			if !seen[t] {
				seen[t] = true
				df[t]++
			}
		}
	}
	n := float64(len(docs))
	idf := make(map[string]float64, len(df))
	for t, d := range df {
		idf[t] = math.Log(1 + n/float64(d))
	}
	return idf
}

// SoftTFIDF returns the soft TF-IDF similarity of two token lists
// (Cohen et al. 2003): a TF-IDF cosine where tokens match softly through
// the inner similarity above the given threshold. Unknown tokens get the
// maximum IDF observed (they are maximally surprising).
func SoftTFIDF(a, b []string, idf map[string]float64, inner func(x, y string) float64, threshold float64) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	maxIDF := 1.0
	for _, v := range idf {
		if v > maxIDF {
			maxIDF = v
		}
	}
	weight := func(t string) float64 {
		if w, ok := idf[t]; ok {
			return w
		}
		return maxIDF
	}
	norm := func(ts []string) float64 {
		var s float64
		for _, t := range ts {
			w := weight(t)
			s += w * w
		}
		return math.Sqrt(s)
	}
	var sum float64
	for _, ta := range a {
		best, bestSim := "", 0.0
		for _, tb := range b {
			if s := inner(ta, tb); s >= threshold && s > bestSim {
				best, bestSim = tb, s
			}
		}
		if best != "" {
			sum += weight(ta) * weight(best) * bestSim
		}
	}
	na, nb := norm(a), norm(b)
	if na == 0 || nb == 0 {
		return 0
	}
	sim := sum / (na * nb)
	if sim > 1 {
		sim = 1 // soft matching can slightly overshoot the cosine bound
	}
	return sim
}
