package text

// This file is the allocation-free face of the edit-distance family.
// The original string-based functions each convert both arguments to
// []rune and allocate fresh DP rows per call — fine for training, but
// the serving hot path computes ~16 distances per property pair and the
// conversions dominated its allocation profile. The *Runes variants
// below take pre-converted rune slices and an EditScratch that owns
// every buffer the algorithms need, so a warm scorer computes all pair
// distances with zero heap allocations.
//
// Equivalence contract: for any inputs, FRunes(ra, rb, s) returns
// exactly the same value as F(string(ra), string(rb)) — same algorithm,
// same arithmetic, only the buffer lifetimes differ. The features
// package's distance tests cross-check the two families.

// EditScratch owns the working buffers for the rune-based metric
// variants. The zero value is ready to use; buffers grow on demand and
// are retained for reuse. An EditScratch is not safe for concurrent
// use — each scoring worker owns one.
type EditScratch struct {
	r0, r1, r2 []int        // rolling DP rows
	d          []int        // Damerau–Levenshtein full table
	lastRow    map[rune]int // Damerau–Levenshtein alphabet index
	ma, mb     []bool       // Jaro match flags
}

// rows3 returns three DP rows of length n, growing the retained buffers
// as needed. Contents are unspecified; callers initialise what they read.
func (s *EditScratch) rows3(n int) (r0, r1, r2 []int) {
	if cap(s.r0) < n {
		s.r0 = make([]int, n)
		s.r1 = make([]int, n)
		s.r2 = make([]int, n)
	}
	return s.r0[:n], s.r1[:n], s.r2[:n]
}

// table returns a DP table of length n with unspecified contents.
func (s *EditScratch) table(n int) []int {
	if cap(s.d) < n {
		s.d = make([]int, n)
	}
	return s.d[:n]
}

// flags returns two zeroed bool rows of lengths na and nb.
func (s *EditScratch) flags(na, nb int) (ma, mb []bool) {
	if cap(s.ma) < na {
		s.ma = make([]bool, na)
	}
	if cap(s.mb) < nb {
		s.mb = make([]bool, nb)
	}
	ma, mb = s.ma[:na], s.mb[:nb]
	for i := range ma {
		ma[i] = false
	}
	for i := range mb {
		mb[i] = false
	}
	return ma, mb
}

// alphabet returns the cleared last-occurrence map.
func (s *EditScratch) alphabet() map[rune]int {
	if s.lastRow == nil {
		s.lastRow = make(map[rune]int, 32)
	}
	clear(s.lastRow)
	return s.lastRow
}

// LevenshteinRunes is Levenshtein over pre-converted rune slices.
func LevenshteinRunes(ra, rb []rune, s *EditScratch) int {
	la, lb := len(ra), len(rb)
	if la == 0 {
		return lb
	}
	if lb == 0 {
		return la
	}
	prev, cur, _ := s.rows3(lb + 1)
	for j := 0; j <= lb; j++ {
		prev[j] = j
	}
	for i := 1; i <= la; i++ {
		cur[0] = i
		for j := 1; j <= lb; j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[lb]
}

// OSARunes is OSA over pre-converted rune slices.
func OSARunes(ra, rb []rune, s *EditScratch) int {
	la, lb := len(ra), len(rb)
	if la == 0 {
		return lb
	}
	if lb == 0 {
		return la
	}
	prev2, prev, cur := s.rows3(lb + 1)
	for j := 0; j <= lb; j++ {
		prev[j] = j
	}
	for i := 1; i <= la; i++ {
		cur[0] = i
		for j := 1; j <= lb; j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			d := min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
			if i > 1 && j > 1 && ra[i-1] == rb[j-2] && ra[i-2] == rb[j-1] {
				if t := prev2[j-2] + 1; t < d {
					d = t
				}
			}
			cur[j] = d
		}
		prev2, prev, cur = prev, cur, prev2
	}
	return prev[lb]
}

// DamerauLevenshteinRunes is DamerauLevenshtein over pre-converted rune
// slices.
func DamerauLevenshteinRunes(ra, rb []rune, s *EditScratch) int {
	la, lb := len(ra), len(rb)
	if la == 0 {
		return lb
	}
	if lb == 0 {
		return la
	}
	inf := la + lb + 1
	w := lb + 2
	d := s.table((la + 2) * w)
	at := func(i, j int) int { return d[i*w+j] }
	set := func(i, j, v int) { d[i*w+j] = v }
	set(0, 0, inf)
	for i := 0; i <= la; i++ {
		set(i+1, 0, inf)
		set(i+1, 1, i)
	}
	for j := 0; j <= lb; j++ {
		set(0, j+1, inf)
		set(1, j+1, j)
	}
	lastRow := s.alphabet()
	for i := 1; i <= la; i++ {
		lastCol := 0
		for j := 1; j <= lb; j++ {
			i1 := lastRow[rb[j-1]]
			j1 := lastCol
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
				lastCol = j
			}
			sub := at(i, j) + cost
			ins := at(i+1, j) + 1
			del := at(i, j+1) + 1
			trans := inf
			if i1 > 0 && j1 > 0 {
				trans = at(i1, j1) + (i - i1 - 1) + 1 + (j - j1 - 1)
			}
			set(i+1, j+1, min4(sub, ins, del, trans))
		}
		lastRow[ra[i-1]] = i
	}
	return at(la+1, lb+1)
}

// LongestCommonSubstringRunes is LongestCommonSubstring over
// pre-converted rune slices.
func LongestCommonSubstringRunes(ra, rb []rune, s *EditScratch) int {
	if len(ra) == 0 || len(rb) == 0 {
		return 0
	}
	prev, cur, _ := s.rows3(len(rb) + 1)
	// Both rows start zeroed in the allocating original; after the first
	// swap the old cur becomes prev, so its column 0 (never written by
	// the loop) must be 0 too.
	for j := range prev {
		prev[j] = 0
	}
	cur[0] = 0
	best := 0
	for i := 1; i <= len(ra); i++ {
		for j := 1; j <= len(rb); j++ {
			if ra[i-1] == rb[j-1] {
				cur[j] = prev[j-1] + 1
				if cur[j] > best {
					best = cur[j]
				}
			} else {
				cur[j] = 0
			}
		}
		prev, cur = cur, prev
	}
	return best
}

// LCSubstringDistanceRunes is LCSubstringDistance over pre-converted
// rune slices.
func LCSubstringDistanceRunes(ra, rb []rune, s *EditScratch) int {
	m := len(ra)
	if len(rb) > m {
		m = len(rb)
	}
	return m - LongestCommonSubstringRunes(ra, rb, s)
}

// JaroRunes is Jaro over pre-converted rune slices.
func JaroRunes(ra, rb []rune, s *EditScratch) float64 {
	la, lb := len(ra), len(rb)
	if la == 0 && lb == 0 {
		return 1
	}
	if la == 0 || lb == 0 {
		return 0
	}
	window := max2(la, lb)/2 - 1
	if window < 0 {
		window = 0
	}
	matchA, matchB := s.flags(la, lb)
	matches := 0
	for i := 0; i < la; i++ {
		lo := max2(0, i-window)
		hi := min2(lb-1, i+window)
		for j := lo; j <= hi; j++ {
			if !matchB[j] && ra[i] == rb[j] {
				matchA[i] = true
				matchB[j] = true
				matches++
				break
			}
		}
	}
	if matches == 0 {
		return 0
	}
	trans := 0
	j := 0
	for i := 0; i < la; i++ {
		if !matchA[i] {
			continue
		}
		for !matchB[j] {
			j++
		}
		if ra[i] != rb[j] {
			trans++
		}
		j++
	}
	m := float64(matches)
	return (m/float64(la) + m/float64(lb) + (m-float64(trans)/2)/m) / 3
}

// JaroWinklerRunes is JaroWinkler over pre-converted rune slices.
func JaroWinklerRunes(ra, rb []rune, s *EditScratch) float64 {
	j := JaroRunes(ra, rb, s)
	prefix := 0
	for prefix < len(ra) && prefix < len(rb) && prefix < 4 && ra[prefix] == rb[prefix] {
		prefix++
	}
	return j + float64(prefix)*0.1*(1-j)
}

// JaroWinklerDistanceRunes is JaroWinklerDistance over pre-converted
// rune slices.
func JaroWinklerDistanceRunes(ra, rb []rune, s *EditScratch) float64 {
	return 1 - JaroWinklerRunes(ra, rb, s)
}

// NormalizedLevenshteinRunes is NormalizedLevenshtein over rune slices.
func NormalizedLevenshteinRunes(ra, rb []rune, s *EditScratch) float64 {
	return normalizeByMaxLenRunes(LevenshteinRunes(ra, rb, s), ra, rb)
}

// NormalizedOSARunes is NormalizedOSA over rune slices.
func NormalizedOSARunes(ra, rb []rune, s *EditScratch) float64 {
	return normalizeByMaxLenRunes(OSARunes(ra, rb, s), ra, rb)
}

// NormalizedDamerauLevenshteinRunes is NormalizedDamerauLevenshtein over
// rune slices.
func NormalizedDamerauLevenshteinRunes(ra, rb []rune, s *EditScratch) float64 {
	return normalizeByMaxLenRunes(DamerauLevenshteinRunes(ra, rb, s), ra, rb)
}

// NormalizedLCSubstringRunes is NormalizedLCSubstring over rune slices.
func NormalizedLCSubstringRunes(ra, rb []rune, s *EditScratch) float64 {
	return normalizeByMaxLenRunes(LCSubstringDistanceRunes(ra, rb, s), ra, rb)
}

func normalizeByMaxLenRunes(d int, ra, rb []rune) float64 {
	m := max2(len(ra), len(rb))
	if m == 0 {
		return 0
	}
	return float64(d) / float64(m)
}
