package text

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestLevenshtein(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"", "abc", 3},
		{"abc", "", 3},
		{"abc", "abc", 0},
		{"kitten", "sitting", 3},
		{"flaw", "lawn", 2},
		{"gumbo", "gambol", 2},
		{"ca", "abc", 3},
		{"résumé", "resume", 2},
		{"megapixels", "megapixel", 1},
	}
	for _, c := range cases {
		if got := Levenshtein(c.a, c.b); got != c.want {
			t.Errorf("Levenshtein(%q, %q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestOSA(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"ab", "ba", 1},  // single transposition
		{"ca", "abc", 3}, // OSA restriction: cannot reuse transposed block
		{"a cat", "an act", 2},
		{"fee", "deed", 2},
		{"abcdef", "abcdef", 0},
	}
	for _, c := range cases {
		if got := OSA(c.a, c.b); got != c.want {
			t.Errorf("OSA(%q, %q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestDamerauLevenshtein(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"ab", "ba", 1},
		{"ca", "abc", 2}, // the canonical case where full DL < OSA
		{"a cat", "an act", 2},
		{"specification", "specificaiton", 1},
		{"abcd", "dcba", 3},
	}
	for _, c := range cases {
		if got := DamerauLevenshtein(c.a, c.b); got != c.want {
			t.Errorf("DamerauLevenshtein(%q, %q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestOSAUpperBoundsFullDL(t *testing.T) {
	// Full Damerau–Levenshtein is never larger than OSA, and both are
	// bounded by Levenshtein.
	f := func(a, b string) bool {
		a, b = trimLong(a), trimLong(b)
		lev := Levenshtein(a, b)
		osa := OSA(a, b)
		dl := DamerauLevenshtein(a, b)
		return dl <= osa && osa <= lev
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestLevenshteinMetricAxioms(t *testing.T) {
	f := func(a, b, c string) bool {
		a, b, c = trimLong(a), trimLong(b), trimLong(c)
		ab := Levenshtein(a, b)
		ba := Levenshtein(b, a)
		if ab != ba {
			return false // symmetry
		}
		if (ab == 0) != (a == b) {
			return false // identity of indiscernibles
		}
		ac := Levenshtein(a, c)
		cb := Levenshtein(c, b)
		return ab <= ac+cb // triangle inequality
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestDamerauLevenshteinTriangle(t *testing.T) {
	// Unlike OSA, the full DL distance is a true metric.
	f := func(a, b, c string) bool {
		a, b, c = trimLong(a), trimLong(b), trimLong(c)
		return DamerauLevenshtein(a, b) <= DamerauLevenshtein(a, c)+DamerauLevenshtein(c, b)
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestLongestCommonSubstring(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "", 0},
		{"abcdef", "zabcy", 3},
		{"megapixel", "effective pixels", 5}, // "pixel"
		{"aaa", "aa", 2},
		{"xyz", "abc", 0},
	}
	for _, c := range cases {
		if got := LongestCommonSubstring(c.a, c.b); got != c.want {
			t.Errorf("LCSubstring(%q, %q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestLCSubstringDistance(t *testing.T) {
	if got := LCSubstringDistance("abcdef", "abc"); got != 3 {
		t.Errorf("LCSubstringDistance = %d, want 3", got)
	}
	if got := LCSubstringDistance("same", "same"); got != 0 {
		t.Errorf("identical strings distance = %d, want 0", got)
	}
}

func TestLongestCommonSubsequence(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"ABCBDAB", "BDCABA", 4},
		{"", "x", 0},
		{"abc", "abc", 3},
		{"abc", "acb", 2},
	}
	for _, c := range cases {
		if got := LongestCommonSubsequence(c.a, c.b); got != c.want {
			t.Errorf("LCSubsequence(%q, %q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestJaro(t *testing.T) {
	cases := []struct {
		a, b string
		want float64
	}{
		{"MARTHA", "MARHTA", 0.9444444444},
		{"DIXON", "DICKSONX", 0.7666666667},
		{"JELLYFISH", "SMELLYFISH", 0.8962962963},
		{"", "", 1},
		{"a", "", 0},
		{"abc", "xyz", 0},
	}
	for _, c := range cases {
		if got := Jaro(c.a, c.b); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Jaro(%q, %q) = %.10f, want %.10f", c.a, c.b, got, c.want)
		}
	}
}

func TestJaroWinkler(t *testing.T) {
	cases := []struct {
		a, b string
		want float64
	}{
		{"MARTHA", "MARHTA", 0.9611111111},
		{"DWAYNE", "DUANE", 0.84},
		{"TRATE", "TRACE", 0.9066666667},
	}
	for _, c := range cases {
		if got := JaroWinkler(c.a, c.b); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("JaroWinkler(%q, %q) = %.10f, want %.10f", c.a, c.b, got, c.want)
		}
	}
}

func TestJaroWinklerBounds(t *testing.T) {
	f := func(a, b string) bool {
		a, b = trimLong(a), trimLong(b)
		jw := JaroWinkler(a, b)
		return jw >= 0 && jw <= 1 && math.Abs(JaroWinkler(b, a)-jw) < 1e-12
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestNormalizedDistancesBounds(t *testing.T) {
	fns := map[string]func(a, b string) float64{
		"lev":  NormalizedLevenshtein,
		"osa":  NormalizedOSA,
		"dl":   NormalizedDamerauLevenshtein,
		"lcsd": NormalizedLCSubstring,
	}
	for name, fn := range fns {
		f := func(a, b string) bool {
			a, b = trimLong(a), trimLong(b)
			d := fn(a, b)
			if d < 0 || d > 1 {
				return false
			}
			if a == b && d != 0 {
				return false
			}
			return true
		}
		if err := quick.Check(f, quickCfg()); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestNormalizedEmptyStrings(t *testing.T) {
	if NormalizedLevenshtein("", "") != 0 {
		t.Error("two empty strings should have distance 0")
	}
	if NormalizedLevenshtein("", "abc") != 1 {
		t.Error("empty vs non-empty should have distance 1")
	}
}

func trimLong(s string) string {
	r := []rune(s)
	if len(r) > 24 {
		r = r[:24]
	}
	return string(r)
}

func quickCfg() *quick.Config {
	return &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}
}

func TestTokenize(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"Camera Resolution", []string{"camera", "resolution"}},
		{"24MP", []string{"24", "mp"}},
		{"f/2.8-4.0", []string{"f", "2", "8", "4", "0"}},
		{"", nil},
		{"  spaced   out  ", []string{"spaced", "out"}},
		{"shutter_speed", []string{"shutter", "speed"}},
	}
	for _, c := range cases {
		if got := Tokenize(c.in); !reflect.DeepEqual(got, c.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestNormalizeName(t *testing.T) {
	cases := []struct{ in, want string }{
		{"Camera-Resolution", "camera resolution"},
		{"  MegaPixels!!", "mega pixels"}, // camelCase splits
		{"cameraResolution", "camera resolution"},
		{"HDMIPort", "hdmi port"},
		{"a__b", "a b"},
		{"", ""},
	}
	for _, c := range cases {
		if got := NormalizeName(c.in); got != c.want {
			t.Errorf("NormalizeName(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}
