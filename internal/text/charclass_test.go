package text

import (
	"testing"
	"testing/quick"
)

func TestClassifyRune(t *testing.T) {
	cases := []struct {
		r    rune
		want CharClass
	}{
		{'A', CharUpper},
		{'z', CharLower},
		{'中', CharOtherLet},
		{'5', CharNumber},
		{'.', CharPunct},
		{'+', CharSymbol},
		{'$', CharSymbol},
		{' ', CharSeparator},
		{'\t', CharSeparator},
		{'́', CharMark}, // combining acute accent
		{'\x00', CharOther},
	}
	for _, c := range cases {
		if got := ClassifyRune(c.r); got != c.want {
			t.Errorf("ClassifyRune(%q) = %v, want %v", c.r, got, c.want)
		}
	}
}

func TestCharClassCounts(t *testing.T) {
	counts, total := CharClassCounts("Ab 12.")
	if total != 6 {
		t.Fatalf("total = %d", total)
	}
	if counts[CharUpper] != 1 || counts[CharLower] != 1 || counts[CharNumber] != 2 ||
		counts[CharPunct] != 1 || counts[CharSeparator] != 1 {
		t.Errorf("counts = %v", counts)
	}
}

func TestCharClassCountsSumToTotal(t *testing.T) {
	f := func(s string) bool {
		counts, total := CharClassCounts(s)
		sum := 0
		for _, c := range counts {
			sum += c
		}
		return sum == total
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestClassifyToken(t *testing.T) {
	in := ClassifyToken("Nikon")
	if !in[TokWord] || !in[TokCapital] || in[TokLowerInit] || in[TokUpper] || in[TokNumeric] {
		t.Errorf("Nikon classes = %v", in)
	}
	in = ClassifyToken("USB")
	if !in[TokWord] || !in[TokUpper] {
		t.Errorf("USB classes = %v", in)
	}
	in = ClassifyToken("24.5")
	if in[TokWord] || !in[TokNumeric] {
		t.Errorf("24.5 classes = %v", in)
	}
	in = ClassifyToken("1,920")
	if !in[TokNumeric] {
		t.Errorf("1,920 should be numeric: %v", in)
	}
	in = ClassifyToken("-3")
	if !in[TokNumeric] {
		t.Errorf("-3 should be numeric: %v", in)
	}
	in = ClassifyToken("f2.8")
	if !in[TokWord] || in[TokNumeric] || !in[TokLowerInit] {
		t.Errorf("f2.8 classes = %v", in)
	}
	in = ClassifyToken("")
	for c, ok := range in {
		if ok {
			t.Errorf("empty token in class %d", c)
		}
	}
}

func TestTokenClassCounts(t *testing.T) {
	counts, total := TokenClassCounts("Nikon D850 has 45.7 MP")
	if total != 5 {
		t.Fatalf("total tokens = %d", total)
	}
	if counts[TokNumeric] != 1 {
		t.Errorf("numeric count = %d, want 1 (45.7)", counts[TokNumeric])
	}
	if counts[TokUpper] != 1 { // only MP is all-uppercase letters (D850 contains digits)
		t.Errorf("upper count = %d, want 1", counts[TokUpper])
	}
	if counts[TokCapital] != 3 { // Nikon, D850, MP
		t.Errorf("capitalized count = %d, want 3", counts[TokCapital])
	}
	if counts[TokWord] != 4 { // Nikon, D850, has, MP
		t.Errorf("word count = %d, want 4", counts[TokWord])
	}
	if counts[TokLowerInit] != 1 { // has
		t.Errorf("lowerInit count = %d, want 1", counts[TokLowerInit])
	}
}

func TestCharClassString(t *testing.T) {
	if CharUpper.String() != "upper" || CharClass(99).String() != "invalid" {
		t.Error("CharClass.String broken")
	}
	if TokWord.String() != "word" || TokenClass(99).String() != "invalid" {
		t.Error("TokenClass.String broken")
	}
}
