package text

import "unicode"

// CharClass enumerates the character categories counted by the TAPON-style
// instance meta-features (Table I row 1 of the paper).
type CharClass int

// The character classes, in feature-vector order.
const (
	CharUpper     CharClass = iota // uppercase letters
	CharLower                      // lowercase letters
	CharOtherLet                   // letters that are neither upper nor lower (e.g. CJK)
	CharMark                       // combining marks (Unicode category M)
	CharNumber                     // numeric characters (category N)
	CharPunct                      // punctuation (category P)
	CharSymbol                     // symbols (category S)
	CharSeparator                  // separators, including spaces (category Z)
	CharOther                      // everything else (controls, unassigned)

	NumCharClasses
)

var charClassNames = [...]string{
	"upper", "lower", "otherLetter", "mark", "number",
	"punct", "symbol", "separator", "other",
}

// String returns a short identifier for the class.
func (c CharClass) String() string {
	if c < 0 || int(c) >= len(charClassNames) {
		return "invalid"
	}
	return charClassNames[c]
}

// ClassifyRune maps a rune to its CharClass.
func ClassifyRune(r rune) CharClass {
	switch {
	case unicode.IsUpper(r):
		return CharUpper
	case unicode.IsLower(r):
		return CharLower
	case unicode.IsLetter(r):
		return CharOtherLet
	case unicode.IsMark(r):
		return CharMark
	case unicode.IsNumber(r):
		return CharNumber
	case unicode.IsPunct(r):
		return CharPunct
	case unicode.IsSymbol(r):
		return CharSymbol
	case unicode.IsSpace(r) || unicode.In(r, unicode.Z):
		return CharSeparator
	default:
		return CharOther
	}
}

// CharClassCounts returns the number of runes of each class in s and the
// total rune count.
func CharClassCounts(s string) (counts [NumCharClasses]int, total int) {
	for _, r := range s {
		counts[ClassifyRune(r)]++
		total++
	}
	return counts, total
}

// TokenClass enumerates the token categories of the TAPON token-type
// features (Table I row 2 of the paper).
type TokenClass int

// The token classes, in feature-vector order.
const (
	TokWord      TokenClass = iota // any token containing at least one letter
	TokLowerInit                   // words starting with a lowercase letter
	TokCapital                     // uppercase first letter followed by a non-separator
	TokUpper                       // tokens consisting entirely of uppercase letters
	TokNumeric                     // tokens parseable as numeric strings

	NumTokenClasses
)

var tokenClassNames = [...]string{"word", "lowerInit", "capitalized", "upper", "numeric"}

// String returns a short identifier for the class.
func (c TokenClass) String() string {
	if c < 0 || int(c) >= len(tokenClassNames) {
		return "invalid"
	}
	return tokenClassNames[c]
}

// ClassifyToken reports which token classes tok belongs to. The classes are
// not mutually exclusive: "Nikon" is both a word and capitalized.
func ClassifyToken(tok string) (in [NumTokenClasses]bool) {
	if tok == "" {
		return in
	}
	runes := []rune(tok)
	hasLetter := false
	allUpper := true
	for _, r := range runes {
		if unicode.IsLetter(r) {
			hasLetter = true
			if !unicode.IsUpper(r) {
				allUpper = false
			}
		} else {
			allUpper = false
		}
	}
	in[TokWord] = hasLetter
	in[TokLowerInit] = unicode.IsLower(runes[0])
	in[TokCapital] = unicode.IsUpper(runes[0]) && len(runes) > 1 && !unicode.IsSpace(runes[1])
	in[TokUpper] = hasLetter && allUpper
	in[TokNumeric] = isNumericString(tok)
	return in
}

// TokenClassCounts counts, over the whitespace tokens of s, how many tokens
// fall in each token class, plus the total token count. It scans the
// whitespace fields in place — the same maximal non-space runs Words
// returns — and classifies each without materialising a []rune, so it
// performs no heap allocations; the charclass tests cross-check it
// against the Words + ClassifyToken reference.
func TokenClassCounts(s string) (counts [NumTokenClasses]int, total int) {
	start := -1
	for i, r := range s {
		if unicode.IsSpace(r) {
			if start >= 0 {
				countTokenClasses(s[start:i], &counts)
				total++
				start = -1
			}
			continue
		}
		if start < 0 {
			start = i
		}
	}
	if start >= 0 {
		countTokenClasses(s[start:], &counts)
		total++
	}
	return counts, total
}

// countTokenClasses increments the class counters tok belongs to,
// mirroring ClassifyToken rune for rune over the decoded string instead
// of an allocated rune slice.
func countTokenClasses(tok string, counts *[NumTokenClasses]int) {
	hasLetter := false
	allUpper := true
	var first, second rune
	n := 0
	for _, r := range tok {
		switch n {
		case 0:
			first = r
		case 1:
			second = r
		}
		n++
		if unicode.IsLetter(r) {
			hasLetter = true
			if !unicode.IsUpper(r) {
				allUpper = false
			}
		} else {
			allUpper = false
		}
	}
	if n == 0 {
		return
	}
	if hasLetter {
		counts[TokWord]++
	}
	if unicode.IsLower(first) {
		counts[TokLowerInit]++
	}
	if unicode.IsUpper(first) && n > 1 && !unicode.IsSpace(second) {
		counts[TokCapital]++
	}
	if hasLetter && allUpper {
		counts[TokUpper]++
	}
	if isNumericString(tok) {
		counts[TokNumeric]++
	}
}

func isNumericString(tok string) bool {
	if tok == "" {
		return false
	}
	seenDigit := false
	seenDot := false
	for i, r := range tok {
		switch {
		case unicode.IsDigit(r):
			seenDigit = true
		case (r == '-' || r == '+') && i == 0:
		case r == '.' && !seenDot:
			seenDot = true
		case r == ',':
			// Thousands separators are common in product specs ("1,920").
		default:
			return false
		}
	}
	return seenDigit
}
