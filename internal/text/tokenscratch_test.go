package text

import (
	"math/rand"
	"testing"
)

// tokenCorpus is the shared boundary-rule corpus: every shape the
// tokenizer distinguishes, plus whitespace and Unicode edge cases.
var tokenCorpus = []string{
	"",
	" ",
	"   \t\n ",
	"camera",
	"Camera Resolution",
	"camera_resolution",
	"cameraResolution",
	"HDMIPort",
	"24MP",
	"mp24",
	"USB3Port",
	"shutterSpeed1_4000s",
	"ISO", "iso100", "100iso",
	"f/2.8 MAX aperture",
	"Größe", "GRÖSSE", "straße STRASSE",
	"ÇaVaBien", "ŐrültJó",
	"日本語トークン", "日本語 トークン2",
	"a", "A", "aA", "Aa", "AA", "AAb", "aAB", "ABc", "-", "--a--B--",
	"x1y2Z3", "MixedUPPERlower", "ENDS",
	"weight (kg)", "price, in $USD",
	"� repl�acement",
	"ümlautÜber", "ÜBERmensch",
}

func TestScanTokensMatchesTokenize(t *testing.T) {
	var ts TokenScratch
	check := func(s string) {
		t.Helper()
		want := Tokenize(s)
		ScanTokens(s, &ts)
		if ts.Count() != len(want) {
			t.Fatalf("ScanTokens(%q): %d tokens, Tokenize returned %d", s, ts.Count(), len(want))
		}
		for i, w := range want {
			if got := string(ts.Token(i)); got != w {
				t.Fatalf("ScanTokens(%q) token %d = %q, Tokenize = %q", s, i, got, w)
			}
		}
	}
	for _, s := range tokenCorpus {
		check(s)
	}
	// Randomised cross-check: strings over an alphabet that exercises
	// every boundary rule, including invalid UTF-8 replacement.
	rng := rand.New(rand.NewSource(7))
	alphabet := []rune("abAB12 _ßÖ日�.,-")
	for i := 0; i < 2000; i++ {
		n := rng.Intn(24)
		runes := make([]rune, n)
		for j := range runes {
			runes[j] = alphabet[rng.Intn(len(alphabet))]
		}
		check(string(runes))
	}
}

func TestScanTokensReuseDoesNotLeakPriorTokens(t *testing.T) {
	var ts TokenScratch
	ScanTokens("one two three four", &ts)
	ScanTokens("x", &ts)
	if ts.Count() != 1 || string(ts.Token(0)) != "x" {
		t.Fatalf("after rescan got %d tokens, first %q; want 1 token \"x\"", ts.Count(), ts.Token(0))
	}
	ScanTokens("", &ts)
	if ts.Count() != 0 {
		t.Fatalf("empty rescan left %d tokens", ts.Count())
	}
}

func TestScanTokensWarmAllocs(t *testing.T) {
	var ts TokenScratch
	// Warm the arena past every corpus entry, then require zero
	// steady-state allocations.
	for _, s := range tokenCorpus {
		ScanTokens(s, &ts)
	}
	allocs := testing.AllocsPerRun(100, func() {
		for _, s := range tokenCorpus {
			ScanTokens(s, &ts)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm ScanTokens allocated %.1f times per corpus pass, want 0", allocs)
	}
}

// TestTokenClassCountsMatchesClassifyToken pins the in-place field scan
// to the Words + ClassifyToken reference it replaced.
func TestTokenClassCountsMatchesClassifyToken(t *testing.T) {
	ref := func(s string) (counts [NumTokenClasses]int, total int) {
		for _, tok := range Words(s) {
			in := ClassifyToken(tok)
			for c := TokenClass(0); c < NumTokenClasses; c++ {
				if in[c] {
					counts[c]++
				}
			}
			total++
		}
		return counts, total
	}
	for _, s := range tokenCorpus {
		wantC, wantN := ref(s)
		gotC, gotN := TokenClassCounts(s)
		if gotC != wantC || gotN != wantN {
			t.Fatalf("TokenClassCounts(%q) = %v/%d, reference = %v/%d", s, gotC, gotN, wantC, wantN)
		}
	}
	rng := rand.New(rand.NewSource(11))
	alphabet := []rune("abAB12 \t_ßÖ日.,-+")
	for i := 0; i < 2000; i++ {
		n := rng.Intn(24)
		runes := make([]rune, n)
		for j := range runes {
			runes[j] = alphabet[rng.Intn(len(alphabet))]
		}
		s := string(runes)
		wantC, wantN := ref(s)
		gotC, gotN := TokenClassCounts(s)
		if gotC != wantC || gotN != wantN {
			t.Fatalf("TokenClassCounts(%q) = %v/%d, reference = %v/%d", s, gotC, gotN, wantC, wantN)
		}
	}
}

func TestTokenClassCountsZeroAllocs(t *testing.T) {
	allocs := testing.AllocsPerRun(100, func() {
		TokenClassCounts("Nikon D850 45.7MP full-frame BODY only")
	})
	if allocs != 0 {
		t.Fatalf("TokenClassCounts allocated %.1f times per run, want 0", allocs)
	}
}
