// Package text implements the lexical machinery LEAPME's features are built
// on: a tokenizer shared by the feature extractor and the embedding corpus
// reader, Unicode character classification matching the TAPON meta-features
// (Table I rows 1–2 of the paper), q-gram profiles, and the eight string
// distances used as property-pair features (Table I rows 8–15):
//
//   - optimal string alignment distance (restricted Damerau–Levenshtein)
//   - Levenshtein distance
//   - full (unrestricted) Damerau–Levenshtein distance
//   - longest common substring distance
//   - q-gram (3-gram) distance
//   - cosine distance between 3-gram profiles
//   - Jaccard distance between 3-gram profiles
//   - Jaro–Winkler distance
//
// All pairwise distances are exposed both raw and normalised to [0, 1] so
// classifiers see comparable scales regardless of string length.
package text
