// Package chaos is a deterministic, seeded fault injector for the
// serving layer. A *chaos.Injector is armed with a set of Fault specs —
// scorer panics, batch latency, stalled workers, injected errors,
// corrupted model bytes — and wired into production code through
// build-tag-free runtime hooks: the hooked code calls Inject (or wraps a
// reader with Reader) unconditionally, and a nil injector is completely
// inert, so the hooks cost one nil check when chaos is off.
//
// Determinism is the point: every stochastic firing decision draws from
// one seeded *rand.Rand (mathx.NewRand) under a mutex, and the
// Skip/Count windows are plain counters, so a fixed seed plus a fixed
// visit sequence reproduces the exact same fault schedule. The chaos
// test suite (`make test-chaos`) leans on this to assert precise
// outcomes — "the first batch stalls, the second does not" — instead of
// flaky probabilistic ones.
//
// The package is in the determinism analyzer's scope (see
// internal/analysis/determinism): no wall-clock reads, no global rand.
// Injected delays use time.Sleep, which the analyzer permits because a
// sleep delays work without changing any computed value; the one timer
// (the Stall safety cap) is annotated for the same reason. A Stall is
// always bounded — Disarm wakes it immediately, and Fault.Delay (or
// defaultStallCap when unset) caps it otherwise.
package chaos

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"time"

	"leapme/internal/mathx"
)

// Point names a hook site. The serving layer's sites are declared here
// so injector configs and hooked code agree on the vocabulary; tests may
// mint their own.
type Point string

const (
	// PointScore fires inside the batcher's per-pair guard unit, just
	// before the scorer runs: a Panic here must be isolated to the one
	// pair (the guard invariant), an Error fails just that pair.
	PointScore Point = "score"
	// PointBatch fires at the start of each micro-batch execution, on
	// the worker goroutine: Delay/Stall here simulate a slow or hung
	// worker holding a scorer clone.
	PointBatch Point = "batch"
	// PointReload fires while the registry reads model bytes during
	// Load/Reload: a Corrupt fault flips bits so the CRC check rejects
	// the file — the old snapshot must keep serving.
	PointReload Point = "reload"
)

// Mode is what a fault does when it fires.
type Mode int

const (
	// Panic panics with a *PanicValue. Only inject at points that run
	// under guard isolation (PointScore); elsewhere it crashes on
	// purpose.
	Panic Mode = iota
	// Delay sleeps for Fault.Delay, then lets the visit proceed.
	Delay
	// Stall blocks until the injector is disarmed or Fault.Delay has
	// elapsed. A zero Delay is capped at defaultStallCap so a
	// misconfigured fault that never sees Disarm cannot hang a worker
	// forever.
	Stall
	// Error makes Inject return an error wrapping ErrInjected.
	Error
	// Corrupt makes Reader wrap its argument in a bit-flipping reader.
	// Inject ignores Corrupt faults; Reader ignores every other mode.
	Corrupt
)

func (m Mode) String() string {
	switch m {
	case Panic:
		return "panic"
	case Delay:
		return "delay"
	case Stall:
		return "stall"
	case Error:
		return "error"
	case Corrupt:
		return "corrupt"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// Fault is one armed failure: where it fires, what it does, and a
// deterministic window of visits it applies to.
type Fault struct {
	Point Point
	Mode  Mode
	// Prob is the per-visit firing probability. Outside (0,1) the fault
	// fires on every visit in its window — the fully deterministic
	// setting the chaos tests prefer.
	Prob float64
	// Delay is the sleep for Delay mode and the cap for Stall mode
	// (defaultStallCap when zero — a stall is always bounded).
	Delay time.Duration
	// Skip lets the first Skip visits to the point pass unharmed (e.g.
	// skip the startup Load so only the Reload is corrupted).
	Skip int
	// Count caps how many times the fault fires (0 = unlimited).
	Count int
}

// ErrInjected is the sentinel wrapped by every Error-mode injection.
var ErrInjected = errors.New("chaos: injected error")

// PanicValue is what Panic-mode faults panic with, so guard reports
// attribute the failure to injection rather than a real scorer bug.
type PanicValue struct{ Point Point }

func (p *PanicValue) String() string { return fmt.Sprintf("chaos: injected panic at %s", p.Point) }

// Injector holds armed faults and the seeded decision source. The zero
// value is not useful; build with New. All methods are safe for
// concurrent use and safe on a nil receiver (inert).
type Injector struct {
	mu       sync.Mutex
	rng      *rand.Rand
	faults   []*armedFault
	disarmed bool
	// disarm is closed by Disarm (and replaced by Rearm) so stalled
	// visits wake immediately instead of polling.
	disarm chan struct{}
	visits map[Point]int
	fired  map[Point]int
}

type armedFault struct {
	Fault
	seen  int // visits to the point observed by this fault
	count int // times this fault fired
}

// New arms the faults over one generator seeded with seed.
func New(seed int64, faults ...Fault) *Injector {
	in := &Injector{
		rng:    mathx.NewRand(seed),
		disarm: make(chan struct{}),
		visits: map[Point]int{},
		fired:  map[Point]int{},
	}
	for _, f := range faults {
		in.faults = append(in.faults, &armedFault{Fault: f})
	}
	return in
}

// decide records one visit to p and returns the first armed fault whose
// window and coin admit it, restricted to the given modes.
func (in *Injector) decide(p Point, modes ...Mode) *armedFault {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.visits[p]++
	if in.disarmed {
		return nil
	}
	for _, f := range in.faults {
		if f.Point != p || !modeIn(f.Mode, modes) {
			continue
		}
		f.seen++
		if f.seen <= f.Skip {
			continue
		}
		if f.Count > 0 && f.count >= f.Count {
			continue
		}
		if 0 < f.Prob && f.Prob < 1 && in.rng.Float64() >= f.Prob {
			continue
		}
		f.count++
		in.fired[p]++
		return f
	}
	return nil
}

func modeIn(m Mode, modes []Mode) bool {
	for _, x := range modes {
		if x == m {
			return true
		}
	}
	return false
}

// Inject visits point p and executes whatever fault fires there: Panic
// panics with a *PanicValue, Delay sleeps, Stall sleeps until Disarm (or
// the fault's Delay cap), Error returns a wrapped ErrInjected. Corrupt
// faults are Reader's business and never fire here. Inert on nil.
func (in *Injector) Inject(p Point) error {
	if in == nil {
		return nil
	}
	f := in.decide(p, Panic, Delay, Stall, Error)
	if f == nil {
		return nil
	}
	switch f.Mode {
	case Panic:
		panic(&PanicValue{Point: p})
	case Delay:
		time.Sleep(f.Delay)
	case Stall:
		bound := f.Delay
		if bound <= 0 {
			bound = defaultStallCap
		}
		//lint:allow determinism the stall cap timer bounds injected downtime and never feeds a computed value
		t := time.NewTimer(bound)
		select {
		case <-in.disarmSignal():
		case <-t.C:
		}
		t.Stop()
	case Error:
		return fmt.Errorf("%w at %s", ErrInjected, p)
	}
	return nil
}

// Reader visits point p and, when a Corrupt fault fires, wraps r so that
// the bytes read through it are deterministically bit-flipped (every
// corruptStride-th byte, starting past the header prefix, has its low
// bit inverted — enough to fail any CRC). Otherwise r is returned
// untouched. Inert on nil.
func (in *Injector) Reader(p Point, r io.Reader) io.Reader {
	if in == nil {
		return r
	}
	if f := in.decide(p, Corrupt); f != nil {
		return &corruptingReader{r: r}
	}
	return r
}

const (
	// corruptSkip leaves the leading bytes (magic + version header)
	// intact so corruption is caught by the checksum, the interesting
	// path, rather than the magic check.
	corruptSkip = 16
	// corruptStride spaces the flipped bytes.
	corruptStride = 97
)

type corruptingReader struct {
	r   io.Reader
	off int
}

func (c *corruptingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	for i := 0; i < n; i++ {
		pos := c.off + i
		if pos >= corruptSkip && (pos-corruptSkip)%corruptStride == 0 {
			p[i] ^= 0x01
		}
	}
	c.off += n
	return n, err
}

// defaultStallCap bounds Stall faults whose Delay is unset: injected
// downtime must always end, even when nothing ever calls Disarm. A var
// so the package tests can shrink it.
var defaultStallCap = 5 * time.Second

// Disarm stops all future injection: armed faults stop firing, stalled
// visits return immediately. The convergence tests flip this to prove
// recovery.
func (in *Injector) Disarm() {
	if in == nil {
		return
	}
	in.mu.Lock()
	if !in.disarmed {
		in.disarmed = true
		close(in.disarm)
	}
	in.mu.Unlock()
}

// Rearm re-enables injection after a Disarm (fault windows keep their
// prior counters).
func (in *Injector) Rearm() {
	if in == nil {
		return
	}
	in.mu.Lock()
	if in.disarmed {
		in.disarmed = false
		in.disarm = make(chan struct{})
	}
	in.mu.Unlock()
}

// disarmSignal returns the channel closed by the next Disarm.
func (in *Injector) disarmSignal() <-chan struct{} {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.disarm
}

// Fired returns how many faults have fired at p.
func (in *Injector) Fired(p Point) int {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.fired[p]
}

// Visits returns how many times p has been visited (fired or not).
func (in *Injector) Visits(p Point) int {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.visits[p]
}
