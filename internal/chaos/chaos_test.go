package chaos

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
	"time"

	"leapme/internal/guard"
)

func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	if err := in.Inject(PointScore); err != nil {
		t.Fatalf("nil Inject = %v", err)
	}
	r := strings.NewReader("abc")
	if got := in.Reader(PointReload, r); got != io.Reader(r) {
		t.Fatal("nil Reader did not pass the reader through")
	}
	in.Disarm()
	in.Rearm()
	if in.Fired(PointScore) != 0 || in.Visits(PointScore) != 0 {
		t.Fatal("nil counters non-zero")
	}
}

func TestErrorModeAndWindows(t *testing.T) {
	in := New(1, Fault{Point: PointScore, Mode: Error, Skip: 2, Count: 3})
	var errs int
	for i := 0; i < 10; i++ {
		if err := in.Inject(PointScore); err != nil {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("visit %d: error %v does not wrap ErrInjected", i, err)
			}
			errs++
			// The window is visits 3,4,5 — deterministic, not probabilistic.
			if i < 2 || i > 4 {
				t.Errorf("fault fired on visit %d, outside the Skip/Count window", i)
			}
		}
	}
	if errs != 3 {
		t.Fatalf("fired %d times, want 3", errs)
	}
	if in.Fired(PointScore) != 3 || in.Visits(PointScore) != 10 {
		t.Fatalf("Fired/Visits = %d/%d, want 3/10", in.Fired(PointScore), in.Visits(PointScore))
	}
}

func TestSeededDecisionsReproduce(t *testing.T) {
	pattern := func(seed int64) string {
		in := New(seed, Fault{Point: PointScore, Mode: Error, Prob: 0.5})
		var b strings.Builder
		for i := 0; i < 64; i++ {
			if in.Inject(PointScore) != nil {
				b.WriteByte('x')
			} else {
				b.WriteByte('.')
			}
		}
		return b.String()
	}
	a, b := pattern(42), pattern(42)
	if a != b {
		t.Fatalf("same seed, different fault schedules:\n%s\n%s", a, b)
	}
	if !strings.Contains(a, "x") || !strings.Contains(a, ".") {
		t.Fatalf("schedule %q is degenerate; Prob=0.5 should mix", a)
	}
	if pattern(43) == a {
		t.Fatal("different seeds produced the identical schedule")
	}
}

func TestPanicModeIsGuardIsolatable(t *testing.T) {
	in := New(1, Fault{Point: PointScore, Mode: Panic, Count: 1})
	err := guard.Run(func() error { return in.Inject(PointScore) })
	var pe *guard.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("guard.Run returned %v, want *guard.PanicError", err)
	}
	pv, ok := pe.Value.(*PanicValue)
	if !ok || pv.Point != PointScore {
		t.Fatalf("panic value = %#v, want *PanicValue{score}", pe.Value)
	}
	// Count=1 exhausted: the next visit passes.
	if err := in.Inject(PointScore); err != nil {
		t.Fatalf("second visit after Count=1: %v", err)
	}
}

func TestDelayMode(t *testing.T) {
	const d = 30 * time.Millisecond
	in := New(1, Fault{Point: PointBatch, Mode: Delay, Delay: d, Count: 1})
	start := time.Now()
	if err := in.Inject(PointBatch); err != nil {
		t.Fatal(err)
	}
	if got := time.Since(start); got < d {
		t.Fatalf("Delay slept %v, want >= %v", got, d)
	}
}

func TestStallUntilDisarm(t *testing.T) {
	in := New(1, Fault{Point: PointBatch, Mode: Stall, Delay: 5 * time.Second})
	done := make(chan time.Duration, 1)
	start := time.Now()
	go func() {
		in.Inject(PointBatch)
		done <- time.Since(start)
	}()
	time.Sleep(50 * time.Millisecond)
	select {
	case d := <-done:
		t.Fatalf("stall returned after %v before Disarm", d)
	default:
	}
	in.Disarm()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("stall did not return after Disarm")
	}
	// Disarmed: nothing fires any more.
	if err := in.Inject(PointBatch); err != nil {
		t.Fatal(err)
	}
	if got := in.Fired(PointBatch); got != 1 {
		t.Fatalf("Fired = %d, want 1", got)
	}
}

func TestStallDelayCap(t *testing.T) {
	in := New(1, Fault{Point: PointBatch, Mode: Stall, Delay: 20 * time.Millisecond})
	start := time.Now()
	in.Inject(PointBatch) // never disarmed: the cap must release it
	if got := time.Since(start); got < 20*time.Millisecond || got > 2*time.Second {
		t.Fatalf("capped stall lasted %v", got)
	}
}

// TestStallDefaultCap pins the safety bound: a Stall fault with Delay
// unset and no Disarm ever arriving — the misconfigured case — must
// still return once defaultStallCap elapses, not hang a worker forever.
func TestStallDefaultCap(t *testing.T) {
	old := defaultStallCap
	defaultStallCap = 30 * time.Millisecond
	defer func() { defaultStallCap = old }()
	in := New(1, Fault{Point: PointBatch, Mode: Stall})
	start := time.Now()
	if err := in.Inject(PointBatch); err != nil {
		t.Fatal(err)
	}
	if got := time.Since(start); got < 30*time.Millisecond || got > 2*time.Second {
		t.Fatalf("uncapped stall lasted %v, want ~the 30ms default cap", got)
	}
}

// TestRearmRestoresStall proves the disarm signal is per-arming: after
// Disarm releases a stall, Rearm re-arms both the firing decision and a
// fresh stall window.
func TestRearmRestoresStall(t *testing.T) {
	in := New(1, Fault{Point: PointScore, Mode: Error})
	in.Disarm()
	if err := in.Inject(PointScore); err != nil {
		t.Fatalf("disarmed injector fired: %v", err)
	}
	in.Rearm()
	if err := in.Inject(PointScore); err == nil {
		t.Fatal("rearmed fault did not fire")
	}

	st := New(1, Fault{Point: PointBatch, Mode: Stall, Delay: 5 * time.Second})
	st.Disarm()
	st.Rearm()
	done := make(chan struct{})
	go func() {
		st.Inject(PointBatch)
		close(done)
	}()
	time.Sleep(20 * time.Millisecond)
	select {
	case <-done:
		t.Fatal("stall after Rearm returned without Disarm (stale disarm channel)")
	default:
	}
	st.Disarm()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("stall did not return after the post-Rearm Disarm")
	}
}

func TestCorruptReader(t *testing.T) {
	orig := bytes.Repeat([]byte{0xAA}, 4096)
	in := New(1, Fault{Point: PointReload, Mode: Corrupt, Count: 1})
	r := in.Reader(PointReload, bytes.NewReader(orig))
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(orig) {
		t.Fatalf("length changed: %d != %d", len(got), len(orig))
	}
	if bytes.Equal(got, orig) {
		t.Fatal("corrupting reader changed nothing")
	}
	if !bytes.Equal(got[:corruptSkip], orig[:corruptSkip]) {
		t.Fatal("header prefix was corrupted; CRC, not magic, should catch this")
	}
	diffs := 0
	for i := range got {
		if got[i] != orig[i] {
			diffs++
			if got[i]^orig[i] != 0x01 {
				t.Fatalf("byte %d: flip is not the low bit", i)
			}
		}
	}
	if want := 1 + (len(orig)-1-corruptSkip)/corruptStride; diffs != want {
		t.Fatalf("%d bytes flipped, want %d", diffs, want)
	}

	// Count exhausted: the second wrap is a pass-through.
	r2 := in.Reader(PointReload, bytes.NewReader(orig))
	got2, _ := io.ReadAll(r2)
	if !bytes.Equal(got2, orig) {
		t.Fatal("second Reader corrupted despite Count=1")
	}
	// Inject never fires Corrupt faults.
	in2 := New(1, Fault{Point: PointScore, Mode: Corrupt})
	if err := in2.Inject(PointScore); err != nil {
		t.Fatalf("Inject fired a Corrupt fault: %v", err)
	}
}
