package features

import (
	"math"
	"testing"
	"testing/quick"

	"leapme/internal/embedding"
)

func testStore(t *testing.T) *embedding.Store {
	t.Helper()
	words := []string{"camera", "resolution", "megapixels", "mp", "weight", "grams", "24", "500"}
	vecs := [][]float64{
		{1, 0, 0, 0},
		{0.9, 0.1, 0, 0},
		{0.8, 0.2, 0, 0},
		{0.85, 0.15, 0, 0},
		{0, 0, 1, 0},
		{0, 0, 0.9, 0.1},
		{0, 1, 0, 0},
		{0, 0, 0, 1},
	}
	s, err := embedding.NewStore(words, vecs)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestDims(t *testing.T) {
	e := NewExtractor(testStore(t))
	if e.EmbeddingDim() != 4 {
		t.Errorf("EmbeddingDim = %d", e.EmbeddingDim())
	}
	if e.InstanceDim() != MetaDim+4 {
		t.Errorf("InstanceDim = %d", e.InstanceDim())
	}
	if e.PropertyDim() != MetaDim+8 {
		t.Errorf("PropertyDim = %d", e.PropertyDim())
	}
	if MetaDim != 29 {
		t.Errorf("MetaDim = %d, want 29 (paper: 329 − 300)", MetaDim)
	}
}

func TestInstanceFeaturesCharBlock(t *testing.T) {
	e := NewExtractor(testStore(t))
	f := e.InstanceFeatures("Ab 1.")
	// 5 runes: 1 upper, 1 lower, 2 letters total, 1 number, 1 punct, 1 sep.
	wantFrac := map[int]float64{
		0: 0.2, // upper fraction
		2: 0.2, // lower fraction
		4: 0.4, // letters-both fraction
	}
	wantCount := map[int]float64{
		1: 1, // upper count
		3: 1, // lower count
		5: 2, // letters-both count
	}
	for i, w := range wantFrac {
		if math.Abs(f[i]-w) > 1e-12 {
			t.Errorf("feature %d = %v, want %v", i, f[i], w)
		}
	}
	for i, w := range wantCount {
		if f[i] != w {
			t.Errorf("feature %d = %v, want %v", i, f[i], w)
		}
	}
}

func TestInstanceFeaturesNumericValue(t *testing.T) {
	e := NewExtractor(testStore(t))
	numIdx := 18 + 10 // after char and token blocks
	if f := e.InstanceFeatures("42.5"); f[numIdx] != 42.5 {
		t.Errorf("numeric value = %v, want 42.5", f[numIdx])
	}
	if f := e.InstanceFeatures("24 MP"); f[numIdx] != -1 {
		t.Errorf("non-numeric value = %v, want -1", f[numIdx])
	}
}

func TestNumericValue(t *testing.T) {
	cases := []struct {
		in   string
		want float64
	}{
		{"42", 42},
		{"42.5", 42.5},
		{"-3.25", -3.25},
		{"+7", 7},
		{"1,920", 1920},
		{" 15 ", 15},
		{"", -1},
		{"abc", -1},
		{"24 MP", -1},
		{"4.2.1", -1},
		{"-", -1},
		{"$5", -1},
	}
	for _, c := range cases {
		if got := NumericValue(c.in); got != c.want {
			t.Errorf("NumericValue(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestInstanceFeaturesEmbeddingBlock(t *testing.T) {
	e := NewExtractor(testStore(t))
	f := e.InstanceFeatures("camera 24")
	embBlock := f[MetaDim:]
	// average of camera {1,0,0,0} and 24 {0,1,0,0} = {0.5, 0.5, 0, 0}
	want := []float64{0.5, 0.5, 0, 0}
	for i := range want {
		if math.Abs(embBlock[i]-want[i]) > 1e-12 {
			t.Errorf("embedding block = %v, want %v", embBlock, want)
			break
		}
	}
}

func TestInstanceFeaturesEmptyValue(t *testing.T) {
	e := NewExtractor(testStore(t))
	f := e.InstanceFeatures("")
	for i, v := range f {
		if i == 28 { // numeric value slot: -1 for non-number
			if v != -1 {
				t.Errorf("numeric slot = %v", v)
			}
			continue
		}
		if v != 0 {
			t.Errorf("feature %d = %v for empty value", i, v)
		}
	}
}

func TestPropertyFeaturesAggregation(t *testing.T) {
	e := NewExtractor(testStore(t))
	p := e.PropertyFeatures("resolution", []string{"24", "500"})
	instEmb := p.Vec[MetaDim : MetaDim+4]
	// avg of 24 {0,1,0,0} and 500 {0,0,0,1} → {0, .5, 0, .5}
	want := []float64{0, 0.5, 0, 0.5}
	for i := range want {
		if math.Abs(instEmb[i]-want[i]) > 1e-12 {
			t.Errorf("instance emb avg = %v, want %v", instEmb, want)
			break
		}
	}
	nameEmb := p.Vec[MetaDim+4:]
	if math.Abs(nameEmb[0]-0.9) > 1e-12 || math.Abs(nameEmb[1]-0.1) > 1e-12 {
		t.Errorf("name emb = %v", nameEmb)
	}
	// Numeric-value average of two numbers.
	if p.Vec[28] != 262 {
		t.Errorf("avg numeric value = %v, want 262", p.Vec[28])
	}
}

func TestPropertyFeaturesNoValues(t *testing.T) {
	e := NewExtractor(testStore(t))
	p := e.PropertyFeatures("weight", nil)
	for i := 0; i < e.InstanceDim(); i++ {
		if p.Vec[i] != 0 {
			t.Errorf("instance block should be zero with no values, idx %d = %v", i, p.Vec[i])
		}
	}
	if p.Vec[MetaDim+4] != 0 { // name emb of "weight" = {0,0,1,0}
		t.Errorf("name emb wrong: %v", p.Vec[MetaDim+4:])
	}
	if p.Vec[MetaDim+4+2] != 1 {
		t.Errorf("name emb wrong: %v", p.Vec[MetaDim+4:])
	}
}

func TestMaxValuesCap(t *testing.T) {
	e := NewExtractor(testStore(t))
	e.MaxValues = 1
	p := e.PropertyFeatures("x", []string{"24", "500"})
	// Only "24" aggregated → numeric slot = 24.
	if p.Vec[28] != 24 {
		t.Errorf("capped aggregation numeric = %v, want 24", p.Vec[28])
	}
}

func TestPairDistancesIdenticalNames(t *testing.T) {
	e := NewExtractor(testStore(t))
	a := e.PropertyFeatures("Camera Resolution", []string{"24"})
	b := e.PropertyFeatures("camera_resolution", []string{"500"})
	dst := make([]float64, NumPairDistances)
	PairDistances(dst, a, b)
	// Names normalise identically → all distances 0.
	for i, d := range dst {
		if math.Abs(d) > 1e-12 {
			t.Errorf("distance %d = %v for identical normalised names", i, d)
		}
	}
}

func TestPairDistancesBounds(t *testing.T) {
	e := NewExtractor(testStore(t))
	f := func(na, nb string) bool {
		if len(na) > 30 {
			na = na[:30]
		}
		if len(nb) > 30 {
			nb = nb[:30]
		}
		a := e.PropertyFeatures(na, nil)
		b := e.PropertyFeatures(nb, nil)
		dst := make([]float64, NumPairDistances)
		PairDistances(dst, a, b)
		for _, d := range dst {
			if d < -1e-12 || d > 1+1e-12 || math.IsNaN(d) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
