package features

import (
	"strconv"
	"strings"
	"testing"
	"testing/quick"
)

// TestNumericValueAgreesWithStrconv cross-checks the hand-rolled parser
// against the standard library on plain decimal inputs.
func TestNumericValueAgreesWithStrconv(t *testing.T) {
	f := func(neg bool, intPart uint16, fracPart uint16) bool {
		s := strconv.Itoa(int(intPart)) + "." + strconv.Itoa(int(fracPart))
		if neg {
			s = "-" + s
		}
		want, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return true
		}
		got := NumericValue(s)
		diff := got - want
		if diff < 0 {
			diff = -diff
		}
		return diff < 1e-9*(1+abs(want))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// TestNumericValueNeverPanics fuzzes arbitrary strings.
func TestNumericValueNeverPanics(t *testing.T) {
	f := func(s string) bool {
		v := NumericValue(s)
		// Any non-numeric string must map to exactly -1.
		if v != -1 {
			// If it parsed, stripping separators must parse with strconv too.
			clean := strings.ReplaceAll(strings.TrimSpace(s), ",", "")
			if _, err := strconv.ParseFloat(clean, 64); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestNumericValueThousands(t *testing.T) {
	if got := NumericValue("1,920,000"); got != 1920000 {
		t.Errorf("NumericValue(1,920,000) = %v", got)
	}
	// A trailing comma is tolerated as a (degenerate) separator; the
	// digits still parse.
	if got := NumericValue("5,"); got != 5 {
		t.Errorf("NumericValue(5,) = %v", got)
	}
}
