package features

import (
	"fmt"
	"math"
	"testing"

	"leapme/internal/embedding"
)

func parStore(t *testing.T) *embedding.Store {
	t.Helper()
	words := []string{"alpha", "beta", "gamma", "price", "name", "model"}
	var vecs [][]float64
	for i := range words {
		vecs = append(vecs, []float64{float64(i) * 0.25, 1 - float64(i)*0.1, 0.5, -float64(i)})
	}
	s, err := embedding.NewStore(words, vecs)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestPropertyFeaturesDeterminismAcrossWorkerCounts: the parallel
// aggregation must be bit-identical to the serial loop for any worker
// count — the ordered-merge guarantee of the package doc.
func TestPropertyFeaturesDeterminismAcrossWorkerCounts(t *testing.T) {
	store := parStore(t)
	// Enough values to clear parValuesThreshold and span several windows.
	var values []string
	for i := 0; i < 3*featureWindow+17; i++ {
		values = append(values, fmt.Sprintf("alpha beta %d gamma-%d price", i, i*31%97))
	}
	serial := NewExtractor(store)
	ref := serial.PropertyFeatures("model name", values)
	for _, w := range []int{2, 4, 8, -1} {
		par := NewExtractor(store)
		par.Workers = w
		got := par.PropertyFeatures("model name", values)
		if len(got.Vec) != len(ref.Vec) {
			t.Fatalf("workers=%d: dim %d, want %d", w, len(got.Vec), len(ref.Vec))
		}
		for i := range ref.Vec {
			if math.Float64bits(got.Vec[i]) != math.Float64bits(ref.Vec[i]) {
				t.Fatalf("workers=%d: Vec[%d] = %x, want %x (bit mismatch)",
					w, i, got.Vec[i], ref.Vec[i])
			}
		}
	}
}

// TestPropertyFeaturesSmallInputStaysSerial: below the threshold the
// worker pool must not engage (behaviour identical, and no goroutine
// overhead for tiny properties).
func TestPropertyFeaturesSmallInputStaysSerial(t *testing.T) {
	store := parStore(t)
	values := []string{"alpha", "beta 12", "gamma"}
	serial := NewExtractor(store)
	par := NewExtractor(store)
	par.Workers = 8
	a := serial.PropertyFeatures("price", values)
	b := par.PropertyFeatures("price", values)
	for i := range a.Vec {
		if math.Float64bits(a.Vec[i]) != math.Float64bits(b.Vec[i]) {
			t.Fatalf("Vec[%d] differs on small input", i)
		}
	}
}
