package features

import (
	"fmt"
	"strings"

	"leapme/internal/text"
)

// Config selects which Table I feature groups enter the pair vector.
// The paper's evaluation sweeps two dimensions — the feature *level*
// (instance features only, name features only, or both) and the feature
// *kind* (embedding features only, non-embedding features only, or both) —
// for 9 configurations in total.
type Config struct {
	// Instances enables instance-derived features (rows 1–5 aggregated).
	Instances bool
	// Names enables name-derived features (rows 6, 8–15).
	Names bool
	// Embeddings enables the embedding blocks (rows 4 and 6).
	Embeddings bool
	// NonEmbeddings enables the meta-features and string distances
	// (rows 1–3, 8–15).
	NonEmbeddings bool
}

// FullConfig enables every feature, the headline LEAPME configuration.
func FullConfig() Config {
	return Config{Instances: true, Names: true, Embeddings: true, NonEmbeddings: true}
}

// EmbOnly restricts cfg to embedding features (the paper's LEAPME(emb)).
func (c Config) EmbOnly() Config {
	c.Embeddings, c.NonEmbeddings = true, false
	return c
}

// NonEmbOnly restricts cfg to non-embedding features (LEAPME(−emb)).
func (c Config) NonEmbOnly() Config {
	c.Embeddings, c.NonEmbeddings = false, true
	return c
}

// Valid reports whether the config selects at least one feature block.
func (c Config) Valid() bool {
	return (c.Instances || c.Names) && (c.Embeddings || c.NonEmbeddings)
}

// String renders the config the way the paper's tables label it.
func (c Config) String() string {
	level := "both"
	switch {
	case c.Instances && !c.Names:
		level = "instances"
	case c.Names && !c.Instances:
		level = "names"
	}
	kind := "all"
	switch {
	case c.Embeddings && !c.NonEmbeddings:
		kind = "emb"
	case c.NonEmbeddings && !c.Embeddings:
		kind = "-emb"
	}
	return fmt.Sprintf("%s/%s", level, kind)
}

// ParseConfig parses the "level/kind" notation used by String and the
// command-line tools: level ∈ {instances, names, both}, kind ∈
// {emb, -emb, all}.
func ParseConfig(s string) (Config, error) {
	parts := strings.SplitN(s, "/", 2)
	if len(parts) != 2 {
		return Config{}, fmt.Errorf("features: bad config %q (want level/kind, e.g. both/all)", s)
	}
	var c Config
	switch parts[0] {
	case "instances":
		c.Instances = true
	case "names":
		c.Names = true
	case "both":
		c.Instances, c.Names = true, true
	default:
		return c, fmt.Errorf("features: bad level %q (instances|names|both)", parts[0])
	}
	switch parts[1] {
	case "emb":
		c.Embeddings = true
	case "-emb":
		c.NonEmbeddings = true
	case "all":
		c.Embeddings, c.NonEmbeddings = true, true
	default:
		return c, fmt.Errorf("features: bad kind %q (emb|-emb|all)", parts[1])
	}
	return c, nil
}

// AllConfigs enumerates the paper's 9 feature configurations in table
// order: {instances, names, both} × {all, emb, -emb}.
func AllConfigs() []Config {
	var out []Config
	for _, level := range []struct{ inst, names bool }{
		{true, false}, {false, true}, {true, true},
	} {
		for _, kind := range []struct{ emb, non bool }{
			{true, true}, {true, false}, {false, true},
		} {
			out = append(out, Config{
				Instances:     level.inst,
				Names:         level.names,
				Embeddings:    kind.emb,
				NonEmbeddings: kind.non,
			})
		}
	}
	return out
}

// Block describes one contiguous feature group inside a pair vector —
// the granularity at which match decisions can be explained.
type Block struct {
	// Name identifies the group: "instance-meta", "instance-embedding",
	// "name-embedding" or "name-distances".
	Name string
	// Lo and Hi bound the block's indices in the pair vector: [Lo, Hi).
	Lo, Hi int
}

// Pairer computes pair vectors under a fixed Config against a fixed
// Extractor geometry. It precomputes the index layout once so the hot
// pair loop is a straight gather.
type Pairer struct {
	cfg Config
	// diffIdx are the indices of the property-vector difference block
	// (row 7) that the config keeps.
	diffIdx []int
	// distances reports whether the string-distance block (rows 8–15) is
	// included.
	distances bool
	dim       int
	blocks    []Block
}

// NewPairer builds a Pairer for the extractor's geometry under cfg.
func NewPairer(e *Extractor, cfg Config) (*Pairer, error) {
	if !cfg.Valid() {
		return nil, fmt.Errorf("features: config %v selects no features", cfg)
	}
	d := e.EmbeddingDim()
	p := &Pairer{cfg: cfg}
	// Property vector layout: [0,29) instance meta (non-emb, instance),
	// [29, 29+D) instance embedding (emb, instance),
	// [29+D, 29+2D) name embedding (emb, name).
	if cfg.Instances && cfg.NonEmbeddings {
		lo := len(p.diffIdx)
		for i := 0; i < MetaDim; i++ {
			p.diffIdx = append(p.diffIdx, i)
		}
		p.blocks = append(p.blocks, Block{Name: "instance-meta", Lo: lo, Hi: len(p.diffIdx)})
	}
	if cfg.Instances && cfg.Embeddings {
		lo := len(p.diffIdx)
		for i := MetaDim; i < MetaDim+d; i++ {
			p.diffIdx = append(p.diffIdx, i)
		}
		p.blocks = append(p.blocks, Block{Name: "instance-embedding", Lo: lo, Hi: len(p.diffIdx)})
	}
	if cfg.Names && cfg.Embeddings {
		lo := len(p.diffIdx)
		for i := MetaDim + d; i < MetaDim+2*d; i++ {
			p.diffIdx = append(p.diffIdx, i)
		}
		p.blocks = append(p.blocks, Block{Name: "name-embedding", Lo: lo, Hi: len(p.diffIdx)})
	}
	p.distances = cfg.Names && cfg.NonEmbeddings
	p.dim = len(p.diffIdx)
	if p.distances {
		p.blocks = append(p.blocks, Block{Name: "name-distances", Lo: p.dim, Hi: p.dim + NumPairDistances})
		p.dim += NumPairDistances
	}
	if p.dim == 0 {
		return nil, fmt.Errorf("features: config %v yields empty pair vector", cfg)
	}
	return p, nil
}

// Blocks returns the pair vector's feature groups in layout order. The
// slice must not be modified.
func (p *Pairer) Blocks() []Block { return p.blocks }

// Dim returns the pair-vector dimension under this config.
func (p *Pairer) Dim() int { return p.dim }

// Config returns the configuration the Pairer was built with.
func (p *Pairer) Config() Config { return p.cfg }

// PairVector writes the pair features of (a, b) into dst (length Dim) —
// the paper's ppFeatures. The difference block uses the absolute
// element-wise difference so the vector is symmetric in (a, b).
func (p *Pairer) PairVector(dst []float64, a, b *Prop) {
	for k, i := range p.diffIdx {
		d := a.Vec[i] - b.Vec[i]
		if d < 0 {
			d = -d
		}
		dst[k] = d
	}
	if p.distances {
		PairDistances(dst[len(p.diffIdx):], a, b)
	}
}

// PairVectorScratch is PairVector with an EditScratch threaded through
// the string-distance block, the serving hot path's allocation-free
// variant. Results are bit-identical to PairVector.
func (p *Pairer) PairVectorScratch(dst []float64, a, b *Prop, es *text.EditScratch) {
	for k, i := range p.diffIdx {
		d := a.Vec[i] - b.Vec[i]
		if d < 0 {
			d = -d
		}
		dst[k] = d
	}
	if p.distances {
		PairDistancesScratch(dst[len(p.diffIdx):], a, b, es)
	}
}

// NewPairVector allocates and fills a pair vector.
func (p *Pairer) NewPairVector(a, b *Prop) []float64 {
	dst := make([]float64, p.dim)
	p.PairVector(dst, a, b)
	return dst
}
