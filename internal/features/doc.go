// Package features implements Table I of the paper: the instance,
// property and property-pair features LEAPME feeds its classifier.
//
// Instance features (per property value, rows 1–4):
//
//	row 1: fraction and count of 9 character types (uppercase letters,
//	       lowercase letters, letters of either case, marks, numbers,
//	       punctuation, symbols, separators, other)        → 18 features
//	row 2: fraction and count of 5 token types (words, lowercase-initial
//	       words, capitalized words, uppercase words, numeric strings)
//	                                                        → 10 features
//	row 3: the numeric value of the instance, −1 if not a number → 1
//	row 4: the average embedding vector of the instance's words → D
//
// yielding 29 + D per instance (29 + 300 = 329 with the paper's GloVe
// dimension, matching the paper's count).
//
// Property features (rows 5–6): the element-wise average of the property's
// instance features (29 + D) plus the average embedding of the property
// *name*'s words (D), for 29 + 2D per property.
//
// Property-pair features (rows 7–15): the absolute element-wise difference
// of the two property vectors (29 + 2D) followed by eight string distances
// between the property names (optimal string alignment, Levenshtein, full
// Damerau–Levenshtein, longest common substring, 3-gram, cosine over
// 3-gram profiles, Jaccard over 3-gram profiles, Jaro–Winkler). The edit
// distances are normalised by max string length so all features share the
// [0, 1] scale regardless of name length.
//
// # Parallelism and determinism
//
// Setting Extractor.Workers > 1 fans the per-value instance featurisation
// of PropertyFeatures across a worker pool. The aggregation stays
// bit-identical to the serial loop for every worker count because it is a
// parallel map with an ordered merge: workers only *compute* the
// per-value vectors (a pure function of the value), while the
// floating-point summation folds those vectors left-to-right in value
// order on the calling goroutine — exactly the serial order of additions.
// The same discipline (index-ordered merge via internal/parallel) governs
// the per-property fan-out in internal/core, which is why `-workers=N`
// reproduces the single-threaded feature matrices bit for bit (see
// `make test-determinism`).
package features
