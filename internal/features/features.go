package features

import (
	"context"
	"fmt"
	"sync"

	"leapme/internal/embedding"
	"leapme/internal/mathx"
	"leapme/internal/parallel"
	"leapme/internal/text"
)

// MetaDim is the number of non-embedding instance features (rows 1–3).
const MetaDim = 18 + 10 + 1

// NumPairDistances is the number of name string distances (rows 8–15).
const NumPairDistances = 8

// Extractor computes Table I feature vectors against an embedding store.
type Extractor struct {
	store *embedding.Store
	// MaxValues caps how many instance values are aggregated per property
	// (0 = no cap). The paper computes features for every instance; the
	// cap exists for very large sources and is off by default.
	MaxValues int
	// Workers fans the per-value featurisation of PropertyFeatures across
	// a worker pool when > 1 (negative = one per CPU, 0/1 = serial). The
	// result is bit-identical for every setting — see the package doc.
	Workers int

	// scPool recycles *Scratch arenas across properties and workers so
	// the steady-state featurisation path allocates nothing per value.
	scPool sync.Pool
	// winPool recycles the featureWindow-sized buffer of the parallel
	// aggregation path (hoisted per-window scratch).
	winPool sync.Pool
}

// NewExtractor returns an Extractor over the given embedding store.
func NewExtractor(store *embedding.Store) *Extractor {
	return &Extractor{store: store}
}

// EmbeddingDim returns D, the dimension of the embedding blocks.
func (e *Extractor) EmbeddingDim() int { return e.store.Dim() }

// InstanceDim returns the per-instance feature dimension (29 + D).
func (e *Extractor) InstanceDim() int { return MetaDim + e.store.Dim() }

// PropertyDim returns the per-property feature dimension (29 + 2D).
func (e *Extractor) PropertyDim() int { return MetaDim + 2*e.store.Dim() }

// InstanceFeatures computes the feature vector of a single property value
// (Table I rows 1–4), the paper's iFeatures.
func (e *Extractor) InstanceFeatures(value string) []float64 {
	out := make([]float64, e.InstanceDim())
	var ts text.TokenScratch
	e.instanceFeaturesInto(out, value, &ts)
	return out
}

func (e *Extractor) instanceFeaturesInto(dst []float64, value string, ts *text.TokenScratch) {
	// Row 1: character classes. The paper's 9 types are upper, lower,
	// letters of both cases, marks, numbers, punctuation, symbols,
	// separators, other; "both cases" is the total letter count.
	counts, total := text.CharClassCounts(value)
	letters := counts[text.CharUpper] + counts[text.CharLower] + counts[text.CharOtherLet]
	charCounts := [9]int{
		counts[text.CharUpper], counts[text.CharLower], letters,
		counts[text.CharMark], counts[text.CharNumber], counts[text.CharPunct],
		counts[text.CharSymbol], counts[text.CharSeparator], counts[text.CharOther],
	}
	i := 0
	for _, c := range charCounts {
		frac := 0.0
		if total > 0 {
			frac = float64(c) / float64(total)
		}
		dst[i] = frac
		dst[i+1] = float64(c)
		i += 2
	}

	// Row 2: token classes.
	tokCounts, tokTotal := text.TokenClassCounts(value)
	for _, c := range tokCounts {
		frac := 0.0
		if tokTotal > 0 {
			frac = float64(c) / float64(tokTotal)
		}
		dst[i] = frac
		dst[i+1] = float64(c)
		i += 2
	}

	// Row 3: numeric value, −1 if not a number.
	dst[i] = NumericValue(value)
	i++

	// Row 4: average embedding of the value's words, computed straight
	// into the destination row (bit-identical to copying EncodePhrase).
	e.store.EncodePhraseInto(dst[i:], value, ts)
}

// NumericValue parses value as a number, returning −1 when it is not one.
// Thousands separators and a trailing/leading currency or unit word do not
// count: the value must be a bare number (the paper's TAPON convention).
func NumericValue(value string) float64 {
	s := trimSpace(value)
	if s == "" {
		return -1
	}
	var intPart, fracPart float64
	var fracScale float64 = 1
	seenDigit, seenDot, neg := false, false, false
	for i, r := range s {
		switch {
		case r == '-' && i == 0:
			neg = true
		case r == '+' && i == 0:
		case r >= '0' && r <= '9':
			seenDigit = true
			if seenDot {
				fracScale /= 10
				fracPart += float64(r-'0') * fracScale
			} else {
				intPart = intPart*10 + float64(r-'0')
			}
		case r == '.' && !seenDot:
			seenDot = true
		case r == ',':
			// thousands separator, ignored
		default:
			return -1
		}
	}
	if !seenDigit {
		return -1
	}
	v := intPart + fracPart
	if neg {
		v = -v
	}
	return v
}

func trimSpace(s string) string {
	start, end := 0, len(s)
	for start < end && (s[start] == ' ' || s[start] == '\t') {
		start++
	}
	for end > start && (s[end-1] == ' ' || s[end-1] == '\t') {
		end--
	}
	return s[start:end]
}

// Prop bundles everything pair featurisation needs about one property:
// its aggregated feature vector and cached name artefacts.
type Prop struct {
	Name string
	// Vec is the property feature vector (rows 5–6): mean instance
	// features followed by the name embedding. Length 29 + 2D.
	Vec []float64

	norm  string            // normalised name for string distances
	runes []rune            // norm as runes, converted once at featurise time
	tri   text.NGramProfile // cached 3-gram profile of the normalised name
}

// PropertyFeatures computes the property-level vector (rows 5–6), the
// paper's pFeatures: the mean of the instance feature vectors of values,
// concatenated with the average embedding of the property name's words.
func (e *Extractor) PropertyFeatures(name string, values []string) *Prop {
	vec := make([]float64, e.PropertyDim())
	sc := e.getScratch()
	p := e.PropertyFeaturesInto(vec, name, values, sc)
	e.putScratch(sc)
	return p
}

// PropertyFeaturesInto is PropertyFeatures writing the feature vector
// into dst (length PropertyDim), which becomes the returned Prop's Vec.
// The accumulation order — serial value loop or windowed parallel sum,
// then one scale, then the name embedding — is exactly PropertyFeatures',
// so the bits are identical for every worker count; only the vector's
// backing storage is caller-chosen. dst need not be zeroed.
func (e *Extractor) PropertyFeaturesInto(dst []float64, name string, values []string, sc *Scratch) *Prop {
	if len(dst) != e.PropertyDim() {
		panic(fmt.Sprintf("features: PropertyFeaturesInto dst has len %d, want %d", len(dst), e.PropertyDim()))
	}
	if e.MaxValues > 0 && len(values) > e.MaxValues {
		values = values[:e.MaxValues]
	}
	instPart := dst[:e.InstanceDim()]
	mathx.Zero(instPart)
	if len(values) > 0 {
		if w := parallel.Resolve(e.Workers); w > 1 && len(values) >= parValuesThreshold {
			e.sumInstanceFeatures(instPart, values, w)
		} else {
			e.accumulateInstances(instPart, values, sc)
		}
		mathx.ScaleTo(instPart, instPart, 1/float64(len(values)))
	}
	e.store.EncodePhraseInto(dst[e.InstanceDim():], name, &sc.toks)
	norm := text.NormalizeName(name)
	return &Prop{Name: name, Vec: dst, norm: norm, runes: []rune(norm), tri: text.TriGrams(norm)}
}

// accumulateInstances sums the instance-feature vector of every value
// into dst through the scratch arena — the serial inner loop of property
// featurisation. With a warm scratch it performs no heap allocations.
//
//lint:hotpath gated by TestFeatureMatrixAllocs
func (e *Extractor) accumulateInstances(dst []float64, values []string, sc *Scratch) {
	for _, v := range values {
		e.instanceFeaturesInto(sc.inst, v, &sc.toks)
		mathx.AddTo(dst, dst, sc.inst)
	}
}

// parValuesThreshold is the minimum number of values before
// PropertyFeatures bothers spinning up the worker pool; below it the
// pool overhead dwarfs the work.
const parValuesThreshold = 64

// featureWindow bounds the scratch the parallel aggregation holds at
// once: values are featurised in windows of this many vectors.
const featureWindow = 256

// sumInstanceFeatures adds every value's instance-feature vector into dst
// using workers goroutines. Workers only compute vectors — a pure
// per-value map; the summation folds them in value order on this
// goroutine, so the bits match the serial loop exactly regardless of
// worker count (the ordered merge of the package doc).
func (e *Extractor) sumInstanceFeatures(dst []float64, values []string, workers int) {
	dim := e.InstanceDim()
	// The window buffer and per-worker token scratches are hoisted into
	// pools: a steady-state caller featurising many properties reuses
	// them instead of re-allocating per property (and per value).
	buf := e.getWindow()
	defer e.putWindow(buf)
	// Each window is bounded (featureWindow values) so cancellation
	// between windows is the per-property ctx check in internal/core;
	// the fan-out itself never blocks long enough to need its own.
	ctx := context.Background()
	for lo := 0; lo < len(values); lo += featureWindow {
		hi := lo + featureWindow
		if hi > len(values) {
			hi = len(values)
		}
		n := hi - lo
		parallel.ForEach(ctx, workers, n, nil, func(i int) error {
			sc := e.getScratch()
			e.instanceFeaturesInto(buf[i*dim:(i+1)*dim], values[lo+i], &sc.toks)
			e.putScratch(sc)
			return nil
		})
		for i := 0; i < n; i++ {
			mathx.AddTo(dst, dst, buf[i*dim:(i+1)*dim])
		}
	}
}

// PairDistances computes the eight name string distances (rows 8–15) into
// dst, which must have length NumPairDistances. Order: OSA, Levenshtein,
// full Damerau–Levenshtein, longest common substring, 3-gram, 3-gram
// cosine, 3-gram Jaccard, Jaro–Winkler; the first four are normalised.
func PairDistances(dst []float64, a, b *Prop) {
	dst[0] = text.NormalizedOSA(a.norm, b.norm)
	dst[1] = text.NormalizedLevenshtein(a.norm, b.norm)
	dst[2] = text.NormalizedDamerauLevenshtein(a.norm, b.norm)
	dst[3] = text.NormalizedLCSubstring(a.norm, b.norm)
	dst[4] = text.NormalizedQGramDistance(a.tri, b.tri)
	dst[5] = a.tri.CosineDistance(b.tri)
	dst[6] = a.tri.JaccardDistance(b.tri)
	dst[7] = text.JaroWinklerDistance(a.norm, b.norm)
}

// PairDistancesScratch is PairDistances over the properties' cached rune
// slices, threading an EditScratch through the edit-distance family so a
// warm caller computes all eight distances with zero heap allocations.
// Values are bit-identical to PairDistances; the features tests
// cross-check the two paths.
//
// The rune cache is filled by PropertyFeatures alongside norm, so the
// two are always consistent (norm is unexported and set nowhere else).
func PairDistancesScratch(dst []float64, a, b *Prop, es *text.EditScratch) {
	dst[0] = text.NormalizedOSARunes(a.runes, b.runes, es)
	dst[1] = text.NormalizedLevenshteinRunes(a.runes, b.runes, es)
	dst[2] = text.NormalizedDamerauLevenshteinRunes(a.runes, b.runes, es)
	dst[3] = text.NormalizedLCSubstringRunes(a.runes, b.runes, es)
	dst[4] = text.NormalizedQGramDistance(a.tri, b.tri)
	dst[5] = a.tri.CosineDistance(b.tri)
	dst[6] = a.tri.JaccardDistance(b.tri)
	dst[7] = text.JaroWinklerDistanceRunes(a.runes, b.runes, es)
}
