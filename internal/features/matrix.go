package features

import (
	"context"

	"leapme/internal/guard"
	"leapme/internal/parallel"
	"leapme/internal/text"
)

// Scratch is the per-worker arena of the featurisation hot path: one
// instance-feature buffer plus the token scratch threaded through
// tokenisation and phrase encoding. Obtain one with NewScratch (or let
// the Extractor pool them); a Scratch must not be shared between
// concurrent calls.
type Scratch struct {
	inst []float64
	toks text.TokenScratch
}

// NewScratch returns a scratch sized for e.
func (e *Extractor) NewScratch() *Scratch {
	return &Scratch{inst: make([]float64, e.InstanceDim())}
}

// getScratch takes a pooled scratch, allocating only when the pool is
// empty.
func (e *Extractor) getScratch() *Scratch {
	if sc, ok := e.scPool.Get().(*Scratch); ok {
		return sc
	}
	return e.NewScratch()
}

func (e *Extractor) putScratch(sc *Scratch) { e.scPool.Put(sc) }

// getWindow takes the pooled parallel-aggregation window buffer.
func (e *Extractor) getWindow() []float64 {
	if b, ok := e.winPool.Get().(*[]float64); ok {
		return *b
	}
	return make([]float64, featureWindow*e.InstanceDim())
}

func (e *Extractor) putWindow(buf []float64) { e.winPool.Put(&buf) }

// PropertyInput names one property to featurise: its name, its instance
// values, and an optional failure-report label (defaults to
// "featurize <name>").
type PropertyInput struct {
	Name   string
	Values []string
	Label  string
}

// Matrix is the flat-emission result of FeatureMatrix: every property
// feature vector packed row-major into one backing slab, with Props[i]
// holding the usual *Prop whose Vec is a view of row i. Row i spans
// Data[i*Dim : (i+1)*Dim].
type Matrix struct {
	Dim   int
	Data  []float64
	Props []*Prop
}

// Row returns the i-th property's feature vector as a view into the
// backing slab (identical to Props[i].Vec).
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Dim : (i+1)*m.Dim] }

// FeatureMatrix featurises every input into a single (n × PropertyDim)
// row-major slab, fanning the per-property work across workers with
// per-unit panic isolation (a property that panics leaves a nil
// Props[i] and is recorded in the report; the rest proceed). Each row is
// bit-identical to PropertyFeatures for the same input and worker
// setting — the slab only changes where the bytes live, not what they
// are — and the rows are independent, so the result is worker-count
// independent whenever the per-property path is (see Extractor.Workers).
// Scratch arenas are pooled across properties, which is what removes the
// per-value allocations of the legacy row-per-property path.
func (e *Extractor) FeatureMatrix(ctx context.Context, workers int, items []PropertyInput) (*Matrix, *guard.Report, error) {
	dim := e.PropertyDim()
	m := &Matrix{
		Dim:   dim,
		Data:  make([]float64, len(items)*dim),
		Props: make([]*Prop, len(items)),
	}
	label := func(i int) string {
		if items[i].Label != "" {
			return items[i].Label
		}
		return "featurize " + items[i].Name
	}
	rep, err := parallel.ForEach(ctx, workers, len(items), label, func(i int) error {
		sc := e.getScratch()
		m.Props[i] = e.PropertyFeaturesInto(m.Data[i*dim:(i+1)*dim], items[i].Name, items[i].Values, sc)
		e.putScratch(sc)
		return nil
	})
	return m, rep, err
}
