package features

import (
	"testing"
)

func TestAllConfigsCount(t *testing.T) {
	cfgs := AllConfigs()
	if len(cfgs) != 9 {
		t.Fatalf("AllConfigs = %d, want 9", len(cfgs))
	}
	seen := map[string]bool{}
	for _, c := range cfgs {
		if !c.Valid() {
			t.Errorf("config %v invalid", c)
		}
		if seen[c.String()] {
			t.Errorf("duplicate config %v", c)
		}
		seen[c.String()] = true
	}
}

func TestConfigString(t *testing.T) {
	if s := FullConfig().String(); s != "both/all" {
		t.Errorf("FullConfig.String = %q", s)
	}
	c := Config{Instances: true, Embeddings: true}
	if s := c.String(); s != "instances/emb" {
		t.Errorf("String = %q", s)
	}
	c = Config{Names: true, NonEmbeddings: true}
	if s := c.String(); s != "names/-emb" {
		t.Errorf("String = %q", s)
	}
}

func TestConfigDerivations(t *testing.T) {
	full := FullConfig()
	emb := full.EmbOnly()
	if !emb.Embeddings || emb.NonEmbeddings {
		t.Errorf("EmbOnly = %+v", emb)
	}
	non := full.NonEmbOnly()
	if non.Embeddings || !non.NonEmbeddings {
		t.Errorf("NonEmbOnly = %+v", non)
	}
}

func TestConfigValid(t *testing.T) {
	if (Config{}).Valid() {
		t.Error("zero config should be invalid")
	}
	if (Config{Instances: true}).Valid() {
		t.Error("config with no kind should be invalid")
	}
	if (Config{Embeddings: true}).Valid() {
		t.Error("config with no level should be invalid")
	}
}

func TestParseConfig(t *testing.T) {
	// Round trip: every canonical config parses back from its String.
	for _, c := range AllConfigs() {
		s := c.String()
		got, err := ParseConfig(s)
		if err != nil {
			t.Fatalf("ParseConfig(%q): %v", s, err)
		}
		if got != c {
			t.Errorf("ParseConfig(%q) = %+v, want %+v", s, got, c)
		}
	}
	for _, bad := range []string{"", "both", "both/", "/all", "x/all", "both/x", "both/all/extra"} {
		if _, err := ParseConfig(bad); err == nil {
			t.Errorf("ParseConfig(%q) accepted", bad)
		}
	}
}

func TestPairerDims(t *testing.T) {
	e := NewExtractor(testStore(t)) // D = 4
	cases := []struct {
		cfg  Config
		want int
	}{
		{FullConfig(), MetaDim + 2*4 + NumPairDistances},                         // 29+8+8 = 45
		{Config{Instances: true, Embeddings: true}, 4},                           // instance emb diff
		{Config{Instances: true, NonEmbeddings: true}, MetaDim},                  // meta diff
		{Config{Names: true, Embeddings: true}, 4},                               // name emb diff
		{Config{Names: true, NonEmbeddings: true}, NumPairDistances},             // distances only
		{Config{Names: true, Embeddings: true, NonEmbeddings: true}, 4 + 8},      // name emb + distances
		{Config{Instances: true, Names: true, Embeddings: true}, 8},              // both emb blocks
		{Config{Instances: true, Names: true, NonEmbeddings: true}, MetaDim + 8}, // meta + distances
	}
	for _, c := range cases {
		p, err := NewPairer(e, c.cfg)
		if err != nil {
			t.Fatalf("%v: %v", c.cfg, err)
		}
		if p.Dim() != c.want {
			t.Errorf("config %v: dim = %d, want %d", c.cfg, p.Dim(), c.want)
		}
	}
}

func TestPairerRejectsInvalid(t *testing.T) {
	e := NewExtractor(testStore(t))
	if _, err := NewPairer(e, Config{}); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestPairVectorSymmetry(t *testing.T) {
	e := NewExtractor(testStore(t))
	p, err := NewPairer(e, FullConfig())
	if err != nil {
		t.Fatal(err)
	}
	a := e.PropertyFeatures("camera resolution", []string{"24 megapixels"})
	b := e.PropertyFeatures("weight", []string{"500 grams"})
	ab := p.NewPairVector(a, b)
	ba := p.NewPairVector(b, a)
	for i := range ab {
		if ab[i] != ba[i] {
			t.Fatalf("pair vector not symmetric at %d: %v vs %v", i, ab[i], ba[i])
		}
	}
}

func TestPairVectorSelfIsZero(t *testing.T) {
	e := NewExtractor(testStore(t))
	p, _ := NewPairer(e, FullConfig())
	a := e.PropertyFeatures("resolution", []string{"24"})
	v := p.NewPairVector(a, a)
	for i, x := range v {
		if x != 0 {
			t.Fatalf("self pair vector nonzero at %d: %v", i, x)
		}
	}
}

func TestPairVectorDiscriminates(t *testing.T) {
	// A matching-ish pair (synonym names, similar values) should produce a
	// smaller feature mass than a non-matching pair.
	e := NewExtractor(testStore(t))
	p, _ := NewPairer(e, FullConfig())
	res1 := e.PropertyFeatures("resolution", []string{"24"})
	res2 := e.PropertyFeatures("megapixels", []string{"24"})
	wgt := e.PropertyFeatures("weight", []string{"500"})
	near := p.NewPairVector(res1, res2)
	far := p.NewPairVector(res1, wgt)
	var nearSum, farSum float64
	for i := range near {
		nearSum += near[i]
		farSum += far[i]
	}
	if nearSum >= farSum {
		t.Errorf("matching pair mass %v >= non-matching %v", nearSum, farSum)
	}
}
