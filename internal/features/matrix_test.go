package features

import (
	"context"
	"fmt"
	"math"
	"testing"
)

func matrixInputs(n int) []PropertyInput {
	items := make([]PropertyInput, n)
	for i := range items {
		var values []string
		for j := 0; j < 5+i%7; j++ {
			values = append(values, fmt.Sprintf("alpha %d beta-%d GammaPrice %d.5", j, i*13+j, j*7))
		}
		items[i] = PropertyInput{Name: fmt.Sprintf("modelName%d price", i), Values: values}
	}
	return items
}

// TestFeatureMatrixMatchesPropertyFeatures pins every matrix row to the
// legacy row-per-property path bit for bit.
func TestFeatureMatrixMatchesPropertyFeatures(t *testing.T) {
	store := parStore(t)
	items := matrixInputs(23)
	ex := NewExtractor(store)
	m, rep, err := ex.FeatureMatrix(context.Background(), 0, items)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() != 0 {
		t.Fatalf("report: %v", rep)
	}
	ref := NewExtractor(store)
	for i, it := range items {
		want := ref.PropertyFeatures(it.Name, it.Values)
		got := m.Props[i]
		if got == nil || got.Name != want.Name {
			t.Fatalf("row %d: prop %+v, want name %q", i, got, want.Name)
		}
		if &got.Vec[0] != &m.Data[i*m.Dim] {
			t.Fatalf("row %d: Vec is not a view into the slab", i)
		}
		for j := range want.Vec {
			if math.Float64bits(got.Vec[j]) != math.Float64bits(want.Vec[j]) {
				t.Fatalf("row %d dim %d: %x, want %x (bit mismatch)", i, j,
					math.Float64bits(got.Vec[j]), math.Float64bits(want.Vec[j]))
			}
		}
		// Cached name artefacts must survive the Into path identically.
		var d1, d2 [NumPairDistances]float64
		PairDistances(d1[:], got, m.Props[(i+1)%len(items)])
		PairDistances(d2[:], want, ref.PropertyFeatures(items[(i+1)%len(items)].Name, items[(i+1)%len(items)].Values))
		if d1 != d2 {
			t.Fatalf("row %d: pair distances diverge: %v vs %v", i, d1, d2)
		}
	}
}

// TestFeatureMatrixDeterminismAcrossWorkerCounts: the slab emission must
// be worker-count independent, like every parallel path in this package.
func TestFeatureMatrixDeterminismAcrossWorkerCounts(t *testing.T) {
	store := parStore(t)
	items := matrixInputs(31)
	ref, _, err := NewExtractor(store).FeatureMatrix(context.Background(), 1, items)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 4, 8, -1} {
		got, _, err := NewExtractor(store).FeatureMatrix(context.Background(), w, items)
		if err != nil {
			t.Fatal(err)
		}
		for i := range ref.Data {
			if math.Float64bits(got.Data[i]) != math.Float64bits(ref.Data[i]) {
				t.Fatalf("workers=%d: Data[%d] = %x, want %x (bit mismatch)",
					w, i, math.Float64bits(got.Data[i]), math.Float64bits(ref.Data[i]))
			}
		}
	}
}

// TestFeatureMatrixAllocs is the dynamic half of the hotalloc gate on
// accumulateInstances: the warm per-value featurisation loop must not
// allocate.
func TestFeatureMatrixAllocs(t *testing.T) {
	store := parStore(t)
	ex := NewExtractor(store)
	values := []string{"alpha 12 beta", "GammaPrice 3.5", "model-name ALPHA", "beta beta 99"}
	sc := ex.NewScratch()
	dst := make([]float64, ex.InstanceDim())
	ex.accumulateInstances(dst, values, sc)
	allocs := testing.AllocsPerRun(100, func() {
		ex.accumulateInstances(dst, values, sc)
	})
	if allocs != 0 {
		t.Fatalf("warm accumulateInstances allocated %.1f times per run, want 0", allocs)
	}
}
