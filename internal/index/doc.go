// Package index provides deterministic approximate-nearest-neighbour
// retrieval over property embedding vectors — the sub-linear candidate
// generation layer between internal/blocking and the scorer. A brute-force
// cosine kNN touches every vector per query; at the ROADMAP's
// "millions of properties" scale that is the difference between a request
// and a coffee break. An Index answers "which vectors are near q?" by
// probing a precomputed structure instead, trading a bounded amount of
// recall for orders of magnitude fewer distance evaluations.
//
// Two interchangeable backends implement the Index interface:
//
//   - LSH (Options.Backend "lsh"): seeded random-hyperplane signatures.
//     Each of Tables hash tables assigns every vector a Bits-bit signature
//     (one bit per hyperplane: the sign of the projection). Vectors
//     sharing a signature land in one bucket; a query probes its own
//     bucket per table plus Probes query-directed multiprobe buckets
//     (flipping the bits with the smallest projection margin). Collected
//     candidates are ranked by exact cosine.
//
//   - HNSW (Options.Backend "hnsw"): a hierarchical navigable-small-world
//     graph, built as fixed-size shards (Options.ShardSize) so the build
//     parallelises. Each shard is an independent HNSW over a contiguous
//     id range: seeded geometric level assignment, greedy descent from the
//     entry point, beam search (EfBuild/EfSearch) at each level. A query
//     searches every shard and merges, which keeps per-query work
//     O(shards · ef · M) — sub-linear in n for any fixed shard count
//     budget, and embarrassingly parallel if ever needed.
//
// # Determinism
//
// Index construction and querying are bit-deterministic for a fixed
// (vectors, Options.Seed) input, for any Options.Workers value — the same
// guarantee `make test-determinism` enforces for training. The
// determinism analyzer (internal/analysis) covers this package; the
// specific constraints are:
//
//   - All randomness is seeded: LSH hyperplanes draw from
//     mathx.NewRand(parallel.SeedStream(seed, plane)), one decorrelated
//     stream per hyperplane, so plane p's coefficients never depend on
//     who generated plane p-1. HNSW node levels come from a SplitMix64
//     hash of (seed, id), not from an RNG consumed in insertion order.
//   - Insertion order is fixed: HNSW shards insert ids ascending;
//     LSH buckets append ids ascending. Worker count only changes who
//     computes a value, never where it lands (parallel.Map's ordered
//     merge).
//   - Ties break on id: every neighbour ranking orders by
//     (similarity desc, id asc). Float comparison for the tie-break is
//     exact on purpose — a tolerance comparator is not a strict weak
//     ordering and would make sort results schedule-dependent.
//   - No map iteration feeds an ordered result: candidate sets are
//     gathered into slices in probe order, deduplicated with a visited
//     array, and fully sorted before truncation.
//
// Serialized indexes (see Write/Read and Snapshot) carry the same
// versioned magic + length + CRC-32 envelope as model files, so a serve
// replica can load a prebuilt index and reject truncated or bit-flipped
// files instead of probing garbage.
package index
