package index

import (
	"bytes"
	"context"
	"fmt"
	"testing"
)

// TestDeterminismBuildWorkers is the index half of the repo's bit-identity
// gate (`make test-determinism` runs it under GOMAXPROCS 1 and 4): the
// serialized index and every query answer must be byte-for-byte identical
// whether the build used 1 worker or 8.
func TestDeterminismBuildWorkers(t *testing.T) {
	vecs := clusteredVecs(23, 120, 6, 20, 0.2)
	for _, base := range backends() {
		base := base
		t.Run(base.Backend, func(t *testing.T) {
			var blobs [][]byte
			var indexes []Index
			for _, workers := range []int{1, 8} {
				opts := base
				opts.Workers = workers
				ix, err := Build(context.Background(), vecs, opts)
				if err != nil {
					t.Fatalf("Build(workers=%d): %v", workers, err)
				}
				var buf bytes.Buffer
				if err := Write(&buf, ix); err != nil {
					t.Fatalf("Write(workers=%d): %v", workers, err)
				}
				blobs = append(blobs, buf.Bytes())
				indexes = append(indexes, ix)
			}
			if !bytes.Equal(blobs[0], blobs[1]) {
				t.Fatalf("%s index bytes differ between workers=1 and workers=8 (%d vs %d bytes)",
					base.Backend, len(blobs[0]), len(blobs[1]))
			}
			for qi := 0; qi < 50; qi++ {
				q := vecs[qi*13%len(vecs)]
				a := fmt.Sprint(indexes[0].Query(q, 10))
				b := fmt.Sprint(indexes[1].Query(q, 10))
				if a != b {
					t.Fatalf("%s query %d differs between workers=1 and workers=8:\n  %s\n  %s",
						base.Backend, qi, a, b)
				}
			}
		})
	}
}

// TestDeterminismRepeatedBuild guards against hidden global state: two
// builds in the same process must serialise identically.
func TestDeterminismRepeatedBuild(t *testing.T) {
	vecs := clusteredVecs(31, 60, 5, 16, 0.25)
	for _, opts := range backends() {
		opts := opts
		t.Run(opts.Backend, func(t *testing.T) {
			var prev []byte
			for run := 0; run < 2; run++ {
				ix, err := Build(context.Background(), vecs, opts)
				if err != nil {
					t.Fatalf("Build run %d: %v", run, err)
				}
				var buf bytes.Buffer
				if err := Write(&buf, ix); err != nil {
					t.Fatalf("Write run %d: %v", run, err)
				}
				if prev != nil && !bytes.Equal(prev, buf.Bytes()) {
					t.Fatalf("%s build is not repeatable: bytes differ between runs", opts.Backend)
				}
				prev = buf.Bytes()
			}
		})
	}
}

// TestDeterminismSeedSensitivity checks the seed actually reaches the
// stochastic choices: different seeds must produce different index bytes
// (hyperplanes for LSH, level assignments for HNSW).
func TestDeterminismSeedSensitivity(t *testing.T) {
	vecs := clusteredVecs(5, 50, 4, 12, 0.2)
	for _, opts := range backends() {
		opts := opts
		t.Run(opts.Backend, func(t *testing.T) {
			var blobs [][]byte
			for _, seed := range []int64{1, 2} {
				o := opts
				o.Seed = seed
				ix, err := Build(context.Background(), vecs, o)
				if err != nil {
					t.Fatalf("Build(seed=%d): %v", seed, err)
				}
				var buf bytes.Buffer
				if err := Write(&buf, ix); err != nil {
					t.Fatalf("Write(seed=%d): %v", seed, err)
				}
				blobs = append(blobs, buf.Bytes())
			}
			if bytes.Equal(blobs[0], blobs[1]) {
				t.Fatalf("%s index bytes identical across different seeds — seed is not wired through", opts.Backend)
			}
		})
	}
}
