package index

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
)

// Index and snapshot files carry the same envelope as model files
// (internal/core): magic | uint32 version | uint64 payloadLen | payload |
// uint32 CRC-32 (IEEE) of payload, all little-endian. The length prefix
// and trailing checksum let readers reject truncated or bit-flipped files
// with a descriptive error instead of probing garbage buckets.
//
// Index v1 payload = uint32 backend code | int64 seed | uint32 dim |
// uint64 n | n×dim float64 vectors | backend section. The LSH section is
// tables/bits/probes + hyperplanes + per-table signatures (buckets are
// rebuilt on load — they are a pure function of the signatures). The HNSW
// section is M/efBuild/efSearch/shardSize + per-shard entry point, level
// assignments, and adjacency lists.
//
// Because every serialized field is bit-deterministic for a fixed
// (vectors, seed) — see doc.go — two builds of the same input produce
// byte-identical files regardless of worker count, which is exactly what
// the determinism gate diffs.

const (
	indexMagic    = "LEAPMEIX"
	snapshotMagic = "LEAPMESX"
	indexVersion  = 1
	// maxIndexPayload bounds payload allocation when reading untrusted
	// files: 1 GiB is orders of magnitude beyond any real index here.
	maxIndexPayload = 1 << 30

	backendCodeLSH  = 1
	backendCodeHNSW = 2
)

// binWriter accumulates the little-endian payload.
type binWriter struct {
	buf bytes.Buffer
	tmp [8]byte
}

func (w *binWriter) u32(v uint32) {
	binary.LittleEndian.PutUint32(w.tmp[:4], v)
	w.buf.Write(w.tmp[:4])
}

func (w *binWriter) u64(v uint64) {
	binary.LittleEndian.PutUint64(w.tmp[:], v)
	w.buf.Write(w.tmp[:])
}

func (w *binWriter) f64(v float64) { w.u64(math.Float64bits(v)) }

func (w *binWriter) str(s string) {
	w.u32(uint32(len(s)))
	w.buf.WriteString(s)
}

func (w *binWriter) vecs(vs [][]float64) {
	for _, v := range vs {
		for _, x := range v {
			w.f64(x)
		}
	}
}

// binReader consumes a checksum-verified payload.
type binReader struct {
	r   *bytes.Reader
	tmp [8]byte
}

func (r *binReader) u32() (uint32, error) {
	if _, err := io.ReadFull(r.r, r.tmp[:4]); err != nil {
		return 0, fmt.Errorf("index: payload truncated: %w", err)
	}
	return binary.LittleEndian.Uint32(r.tmp[:4]), nil
}

func (r *binReader) u64() (uint64, error) {
	if _, err := io.ReadFull(r.r, r.tmp[:]); err != nil {
		return 0, fmt.Errorf("index: payload truncated: %w", err)
	}
	return binary.LittleEndian.Uint64(r.tmp[:]), nil
}

func (r *binReader) f64() (float64, error) {
	v, err := r.u64()
	return math.Float64frombits(v), err
}

func (r *binReader) str() (string, error) {
	n, err := r.u32()
	if err != nil {
		return "", err
	}
	if int64(n) > int64(r.r.Len()) {
		return "", fmt.Errorf("index: implausible string length %d", n)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r.r, b); err != nil {
		return "", fmt.Errorf("index: payload truncated: %w", err)
	}
	return string(b), nil
}

// count reads a u32 element count and validates it against what the
// remaining payload could possibly hold (elemSize bytes per element).
func (r *binReader) count(elemSize int, what string) (int, error) {
	n, err := r.u32()
	if err != nil {
		return 0, err
	}
	if int64(n)*int64(elemSize) > int64(r.r.Len()) {
		return 0, fmt.Errorf("index: implausible %s count %d", what, n)
	}
	return int(n), nil
}

// vecs reads n×dim float64 rows into one contiguous backing array — the
// same layout Build produces, so loaded indexes keep its query-time
// memory locality.
func (r *binReader) vecs(n, dim int) ([][]float64, error) {
	flat := make([]float64, n*dim)
	for i := range flat {
		v, err := r.f64()
		if err != nil {
			return nil, err
		}
		flat[i] = v
	}
	out := make([][]float64, n)
	for i := range out {
		out[i] = flat[i*dim : (i+1)*dim : (i+1)*dim]
	}
	return out, nil
}

// writeEnvelope frames payload with magic/version/length/CRC and writes
// the whole file to w.
func writeEnvelope(w io.Writer, magic string, payload []byte) error {
	var tmp [8]byte
	if _, err := io.WriteString(w, magic); err != nil {
		return err
	}
	binary.LittleEndian.PutUint32(tmp[:4], indexVersion)
	if _, err := w.Write(tmp[:4]); err != nil {
		return err
	}
	binary.LittleEndian.PutUint64(tmp[:], uint64(len(payload)))
	if _, err := w.Write(tmp[:]); err != nil {
		return err
	}
	if _, err := w.Write(payload); err != nil {
		return err
	}
	binary.LittleEndian.PutUint32(tmp[:4], crc32.ChecksumIEEE(payload))
	_, err := w.Write(tmp[:4])
	return err
}

// readIndexEnvelope reads and verifies magic, version, length-prefixed
// payload, and CRC-32, returning the verified payload bytes.
func readIndexEnvelope(r io.Reader, magic string) ([]byte, error) {
	var tmp [8]byte
	got := make([]byte, len(magic))
	if _, err := io.ReadFull(r, got); err != nil {
		return nil, fmt.Errorf("index: reading magic: %w", err)
	}
	if string(got) != magic {
		return nil, fmt.Errorf("index: bad magic %q (want %q)", got, magic)
	}
	if _, err := io.ReadFull(r, tmp[:4]); err != nil {
		return nil, fmt.Errorf("index: reading version: %w", err)
	}
	if v := binary.LittleEndian.Uint32(tmp[:4]); v != indexVersion {
		return nil, fmt.Errorf("index: unsupported format version %d (this build reads v%d; rebuild the index)", v, indexVersion)
	}
	if _, err := io.ReadFull(r, tmp[:]); err != nil {
		return nil, fmt.Errorf("index: reading payload length: %w", err)
	}
	plen := binary.LittleEndian.Uint64(tmp[:])
	if plen > maxIndexPayload {
		return nil, fmt.Errorf("index: implausible payload length %d", plen)
	}
	payload := make([]byte, plen)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("index: payload truncated: %w", err)
	}
	if _, err := io.ReadFull(r, tmp[:4]); err != nil {
		return nil, fmt.Errorf("index: reading checksum: %w", err)
	}
	want := binary.LittleEndian.Uint32(tmp[:4])
	if sum := crc32.ChecksumIEEE(payload); sum != want {
		return nil, fmt.Errorf("index: payload corrupt: CRC-32 %08x, want %08x", sum, want)
	}
	return payload, nil
}

// Write serialises ix in the versioned index format.
func Write(w io.Writer, ix Index) error {
	payload, err := indexPayload(ix)
	if err != nil {
		return err
	}
	return writeEnvelope(w, indexMagic, payload)
}

func indexPayload(ix Index) ([]byte, error) {
	bw := &binWriter{}
	switch t := ix.(type) {
	case *lshIndex:
		bw.u32(backendCodeLSH)
		bw.u64(uint64(t.opts.Seed))
		bw.u32(uint32(t.dim))
		bw.u64(uint64(len(t.vecs)))
		bw.vecs(t.vecs)
		bw.u32(uint32(t.opts.Tables))
		bw.u32(uint32(t.opts.Bits))
		bw.u32(uint32(t.opts.Probes))
		for _, x := range t.center {
			bw.f64(x)
		}
		bw.vecs(t.planes)
		for t2 := 0; t2 < t.opts.Tables; t2++ {
			for _, s := range t.sigs[t2] {
				bw.u32(s)
			}
		}
	case *hnswIndex:
		bw.u32(backendCodeHNSW)
		bw.u64(uint64(t.opts.Seed))
		bw.u32(uint32(t.dim))
		bw.u64(uint64(len(t.vecs)))
		bw.vecs(t.vecs)
		bw.u32(uint32(t.opts.M))
		bw.u32(uint32(t.opts.EfBuild))
		bw.u32(uint32(t.opts.EfSearch))
		bw.u32(uint32(t.opts.ShardSize))
		bw.u32(uint32(len(t.shards)))
		for _, sh := range t.shards {
			bw.u64(uint64(int64(sh.entry)))
			bw.u32(uint32(sh.maxLevel))
			for _, l := range sh.levels {
				bw.u32(uint32(l))
			}
			bw.u32(uint32(len(sh.links)))
			for _, level := range sh.links {
				for _, nbrs := range level {
					bw.u32(uint32(len(nbrs)))
					for _, nb := range nbrs {
						bw.u32(uint32(nb))
					}
				}
			}
		}
	default:
		return nil, fmt.Errorf("index: cannot serialise backend %q", ix.Name())
	}
	return bw.buf.Bytes(), nil
}

// Read loads an index written by Write. The loaded index answers queries
// identically to the one serialised.
func Read(r io.Reader) (Index, error) {
	payload, err := readIndexEnvelope(r, indexMagic)
	if err != nil {
		return nil, err
	}
	return indexFromPayload(&binReader{r: bytes.NewReader(payload)})
}

func indexFromPayload(br *binReader) (Index, error) {
	code, err := br.u32()
	if err != nil {
		return nil, err
	}
	seed, err := br.u64()
	if err != nil {
		return nil, err
	}
	dim32, err := br.u32()
	if err != nil {
		return nil, err
	}
	dim := int(dim32)
	if dim <= 0 || dim > 1<<20 {
		return nil, fmt.Errorf("index: implausible dim %d", dim)
	}
	n64, err := br.u64()
	if err != nil {
		return nil, err
	}
	if n64*uint64(dim)*8 > uint64(br.r.Len()) {
		return nil, fmt.Errorf("index: implausible vector count %d", n64)
	}
	n := int(n64)
	vecs, err := br.vecs(n, dim)
	if err != nil {
		return nil, err
	}
	switch code {
	case backendCodeLSH:
		return readLSH(br, vecs, dim, int64(seed))
	case backendCodeHNSW:
		return readHNSW(br, vecs, dim, int64(seed))
	default:
		return nil, fmt.Errorf("index: unknown backend code %d", code)
	}
}

func readLSH(br *binReader, vecs [][]float64, dim int, seed int64) (Index, error) {
	tables, err := br.count(1, "table")
	if err != nil {
		return nil, err
	}
	bits, err := br.u32()
	if err != nil {
		return nil, err
	}
	probes, err := br.u32()
	if err != nil {
		return nil, err
	}
	if tables <= 0 || bits == 0 || bits > 32 {
		return nil, fmt.Errorf("index: implausible lsh geometry tables=%d bits=%d", tables, bits)
	}
	// The loaded Options never pass through withDefaults again — Query
	// reads them verbatim — so a stored Probes of 0 stays "no multiprobe".
	opts := Options{Backend: BackendLSH, Seed: seed, Tables: tables, Bits: int(bits), Probes: int(probes)}
	ix := &lshIndex{dim: dim, opts: opts, vecs: vecs}
	ix.center = make([]float64, dim)
	for i := range ix.center {
		v, err := br.f64()
		if err != nil {
			return nil, err
		}
		ix.center[i] = v
	}
	ix.planes = make([][]float64, tables*int(bits))
	for p := range ix.planes {
		v, err := br.vecs(1, dim)
		if err != nil {
			return nil, err
		}
		ix.planes[p] = v[0]
	}
	ix.sigs = make([][]uint32, tables)
	ix.buckets = make([]map[uint32][]int, tables)
	for t := 0; t < tables; t++ {
		ix.sigs[t] = make([]uint32, len(vecs))
		ix.buckets[t] = make(map[uint32][]int)
		for i := range vecs {
			s, err := br.u32()
			if err != nil {
				return nil, err
			}
			ix.sigs[t][i] = s
			ix.buckets[t][s] = append(ix.buckets[t][s], i)
		}
	}
	ix.initDerived()
	return ix, nil
}

func readHNSW(br *binReader, vecs [][]float64, dim int, seed int64) (Index, error) {
	m, err := br.u32()
	if err != nil {
		return nil, err
	}
	efBuild, err := br.u32()
	if err != nil {
		return nil, err
	}
	efSearch, err := br.u32()
	if err != nil {
		return nil, err
	}
	shardSize, err := br.u32()
	if err != nil {
		return nil, err
	}
	numShards, err := br.count(8, "shard")
	if err != nil {
		return nil, err
	}
	if m == 0 || shardSize == 0 {
		return nil, fmt.Errorf("index: implausible hnsw geometry m=%d shardSize=%d", m, shardSize)
	}
	ix := &hnswIndex{
		dim: dim,
		opts: Options{Backend: BackendHNSW, Seed: seed, M: int(m),
			EfBuild: int(efBuild), EfSearch: int(efSearch), ShardSize: int(shardSize)},
		vecs: vecs,
	}
	lo := 0
	for s := 0; s < numShards; s++ {
		hi := lo + int(shardSize)
		if hi > len(vecs) {
			hi = len(vecs)
		}
		if lo >= hi {
			return nil, fmt.Errorf("index: shard %d is empty (%d vectors, shard size %d)", s, len(vecs), shardSize)
		}
		sh := &hnswShard{lo: lo, hi: hi}
		entry, err := br.u64()
		if err != nil {
			return nil, err
		}
		sh.entry = int(int64(entry))
		if sh.entry >= 0 && (sh.entry < lo || sh.entry >= hi) {
			return nil, fmt.Errorf("index: shard %d entry %d outside [%d,%d)", s, sh.entry, lo, hi)
		}
		maxLevel, err := br.u32()
		if err != nil {
			return nil, err
		}
		sh.maxLevel = int(maxLevel)
		sh.levels = make([]int, hi-lo)
		for i := range sh.levels {
			l, err := br.u32()
			if err != nil {
				return nil, err
			}
			sh.levels[i] = int(l)
		}
		numLevels, err := br.count(1, "level")
		if err != nil {
			return nil, err
		}
		sh.links = make([][][]int32, numLevels)
		for l := range sh.links {
			sh.links[l] = make([][]int32, hi-lo)
			for i := range sh.links[l] {
				deg, err := br.count(4, "neighbour")
				if err != nil {
					return nil, err
				}
				if deg == 0 {
					continue
				}
				nbrs := make([]int32, deg)
				for d := range nbrs {
					nb, err := br.u32()
					if err != nil {
						return nil, err
					}
					if int(nb) < lo || int(nb) >= hi {
						return nil, fmt.Errorf("index: shard %d neighbour %d outside [%d,%d)", s, nb, lo, hi)
					}
					nbrs[d] = int32(nb)
				}
				sh.links[l][i] = nbrs
			}
		}
		ix.shards = append(ix.shards, sh)
		lo = hi
	}
	if lo != len(vecs) {
		return nil, fmt.Errorf("index: shards cover %d of %d vectors", lo, len(vecs))
	}
	return ix, nil
}

// WriteFile writes ix to path via Write, creating or truncating the file.
func WriteFile(path string, ix Index) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, ix); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFile loads an index file written by WriteFile.
func ReadFile(path string) (Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	ix, err := Read(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return ix, nil
}
