package index

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"os"

	"leapme/internal/dataset"
	"leapme/internal/embedding"
	"leapme/internal/parallel"
)

// Snapshot binds an index to the property identities behind its vector
// ids: Keys[id] is the (source, name) whose embedded name vector sits at
// slot id. A serve replica loads one snapshot per model and answers
// "neighbours of property X" without re-embedding or re-building — the
// index analogue of a trained model file.
//
// Snapshot v1 payload = uint32 nKeys | nKeys × (source string, name
// string) | the index payload, framed in the same magic/version/CRC
// envelope as bare index files (magic "LEAPMESX").
type Snapshot struct {
	// Keys holds the property identity for every vector id, in id order.
	Keys []dataset.Key

	idx   Index
	byKey map[dataset.Key]int
}

// BuildSnapshot embeds every property name with store.EncodePhrase and
// builds an index over the vectors, in property order. Properties are
// deduplicated by Key (first occurrence wins), mirroring dataset
// semantics where (source, name) is an identity.
func BuildSnapshot(ctx context.Context, store *embedding.Store, props []dataset.Property, opts Options) (*Snapshot, error) {
	if len(props) == 0 {
		return nil, errors.New("index: snapshot needs at least one property")
	}
	s := &Snapshot{byKey: make(map[dataset.Key]int, len(props))}
	for _, p := range props {
		k := p.Key()
		if _, dup := s.byKey[k]; dup {
			continue
		}
		s.byKey[k] = len(s.Keys)
		s.Keys = append(s.Keys, k)
	}
	spans := parallel.Chunks(len(s.Keys), buildChunk)
	chunks, rep, err := parallel.Map(ctx, opts.Workers, len(spans),
		func(i int) string { return fmt.Sprintf("embed span %d", i) },
		func(i int) ([][]float64, error) {
			sp := spans[i]
			out := make([][]float64, 0, sp.Hi-sp.Lo)
			for j := sp.Lo; j < sp.Hi; j++ {
				out = append(out, store.EncodePhrase(s.Keys[j].Name))
			}
			return out, nil
		})
	if err != nil {
		return nil, err
	}
	if rep != nil && rep.Failed() > 0 {
		return nil, fmt.Errorf("index: embedding properties failed: %s", rep)
	}
	vecs := make([][]float64, 0, len(s.Keys))
	for _, c := range chunks {
		vecs = append(vecs, c...)
	}
	ix, err := Build(ctx, vecs, opts)
	if err != nil {
		return nil, err
	}
	s.idx = ix
	return s, nil
}

// Index returns the underlying vector index.
func (s *Snapshot) Index() Index { return s.idx }

// Len returns the number of snapshot properties.
func (s *Snapshot) Len() int { return len(s.Keys) }

// Lookup returns the vector id for a property key, if indexed.
func (s *Snapshot) Lookup(k dataset.Key) (int, bool) {
	id, ok := s.byKey[k]
	return id, ok
}

// Neighbors returns up to k nearest candidates for the property at id,
// excluding id itself.
func (s *Snapshot) Neighbors(id, k int) []Candidate {
	if id < 0 || id >= s.idx.Len() {
		return nil
	}
	// Over-fetch by one: the query vector's own slot is its best match.
	cands := s.idx.Query(s.idx.Vector(id), k+1)
	out := cands[:0]
	for _, c := range cands {
		if c.ID != id {
			out = append(out, c)
		}
	}
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// Write serialises the snapshot. (Named Write, not WriteTo: the
// io.WriterTo contract returns a byte count this envelope writer does
// not track.)
func (s *Snapshot) Write(w io.Writer) error {
	ixPayload, err := indexPayload(s.idx)
	if err != nil {
		return err
	}
	bw := &binWriter{}
	bw.u32(uint32(len(s.Keys)))
	for _, k := range s.Keys {
		bw.str(k.Source)
		bw.str(k.Name)
	}
	bw.buf.Write(ixPayload)
	return writeEnvelope(w, snapshotMagic, bw.buf.Bytes())
}

// ReadSnapshot loads a snapshot written by Write.
func ReadSnapshot(r io.Reader) (*Snapshot, error) {
	payload, err := readIndexEnvelope(r, snapshotMagic)
	if err != nil {
		return nil, err
	}
	br := &binReader{r: bytes.NewReader(payload)}
	n, err := br.count(8, "snapshot key")
	if err != nil {
		return nil, err
	}
	s := &Snapshot{Keys: make([]dataset.Key, n), byKey: make(map[dataset.Key]int, n)}
	for i := range s.Keys {
		src, err := br.str()
		if err != nil {
			return nil, err
		}
		name, err := br.str()
		if err != nil {
			return nil, err
		}
		s.Keys[i] = dataset.Key{Source: src, Name: name}
		s.byKey[s.Keys[i]] = i
	}
	ix, err := indexFromPayload(br)
	if err != nil {
		return nil, err
	}
	if ix.Len() != len(s.Keys) {
		return nil, fmt.Errorf("index: snapshot has %d keys but %d vectors", len(s.Keys), ix.Len())
	}
	s.idx = ix
	return s, nil
}

// WriteFile writes the snapshot to path, creating or truncating the file.
func (s *Snapshot) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := s.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadSnapshotFile loads a snapshot file written by WriteFile.
func ReadSnapshotFile(path string) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	s, err := ReadSnapshot(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}
