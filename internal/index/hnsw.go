package index

import (
	"context"
	"fmt"
	"math"

	"leapme/internal/mathx"
	"leapme/internal/parallel"
)

// hnswIndex is the hierarchical navigable-small-world backend, built as
// fixed-size shards over contiguous id ranges. Each shard is a complete,
// independently-constructed HNSW graph: node levels come from a seeded
// hash of the *global* id, insertion runs in ascending id order, and
// every neighbour selection breaks ties on id — so a shard's bytes are a
// pure function of (its vectors, seed), and shards build in parallel
// without any cross-talk. A query beam-searches every shard and merges.
//
// The shard decomposition is what makes the build both parallel and
// bit-deterministic: classic single-graph HNSW insertion is inherently
// order- and timing-sensitive when parallelised. The query-side price is
// a factor of numShards on beam work, still orders of magnitude below a
// linear scan for large n.
type hnswIndex struct {
	dim    int
	opts   Options
	vecs   [][]float64 // unit-normalized, id order
	shards []*hnswShard
}

// hnswShard is one HNSW graph over global ids [lo, hi).
type hnswShard struct {
	lo, hi   int
	entry    int   // global id of the top-level entry point (-1 when empty)
	maxLevel int   // highest level present
	levels   []int // levels[local] = top level of node lo+local
	// links[l][local] lists the neighbours (global ids) of node lo+local
	// at level l; nil above the node's level.
	links [][][]int32
}

func buildHNSW(ctx context.Context, vecs [][]float64, dim int, opts Options) (*hnswIndex, error) {
	ix := &hnswIndex{dim: dim, opts: opts, vecs: vecs}
	spans := parallel.Chunks(len(vecs), opts.ShardSize)
	shards, rep, err := parallel.Map(ctx, opts.Workers, len(spans),
		func(i int) string { return fmt.Sprintf("hnsw shard %d", i) },
		func(i int) (*hnswShard, error) {
			return ix.buildShard(spans[i].Lo, spans[i].Hi), nil
		})
	if err != nil {
		return nil, err
	}
	if rep != nil && rep.Failed() > 0 {
		return nil, fmt.Errorf("index: hnsw shard build failed: %s", rep)
	}
	ix.shards = shards
	return ix, nil
}

// levelOf derives a node's level from (seed, global id) with the
// SplitMix64 stream hash: a geometric distribution with mean 1/ln(M),
// independent of insertion schedule or worker count.
func levelOf(seed int64, id, m int) int {
	// Map the hashed id to (0, 1]; the +1 keeps u off exact zero.
	u := (float64(uint64(parallel.SeedStream(seed, id))>>11) + 1) / float64(1<<53)
	l := int(-math.Log(u) / math.Log(float64(m)))
	if l > 30 {
		l = 30
	}
	return l
}

// buildShard constructs the HNSW graph over global ids [lo, hi) by
// sequential insertion in ascending id order.
func (ix *hnswIndex) buildShard(lo, hi int) *hnswShard {
	sh := &hnswShard{lo: lo, hi: hi, entry: -1}
	n := hi - lo
	sh.levels = make([]int, n)
	for local := 0; local < n; local++ {
		sh.levels[local] = levelOf(ix.opts.Seed, lo+local, ix.opts.M)
	}
	scratch := make([]bool, n)
	for local := 0; local < n; local++ {
		ix.insert(sh, lo+local, scratch)
	}
	return sh
}

// ensureLevels grows sh.links to cover level l.
func (sh *hnswShard) ensureLevels(l int) {
	for len(sh.links) <= l {
		sh.links = append(sh.links, make([][]int32, len(sh.levels)))
	}
}

// insert adds global id to the shard graph. scratch is a reusable
// visited array of the shard's size.
func (ix *hnswIndex) insert(sh *hnswShard, id int, scratch []bool) {
	level := sh.levels[id-sh.lo]
	sh.ensureLevels(level)
	if sh.entry < 0 {
		sh.entry = id
		sh.maxLevel = level
		return
	}
	q := ix.vecs[id]
	ep := sh.entry
	// Greedy descent through the levels above the new node's level.
	for l := sh.maxLevel; l > level; l-- {
		ep = ix.greedy(sh, q, ep, l)
	}
	// Beam-search each level from min(level, maxLevel) down, linking the
	// best M neighbours bidirectionally.
	top := level
	if top > sh.maxLevel {
		top = sh.maxLevel
	}
	maxL0 := 2 * ix.opts.M
	for l := top; l >= 0; l-- {
		found := ix.searchLayer(sh, q, []int{ep}, ix.opts.EfBuild, l, scratch)
		m := ix.opts.M
		if m > len(found) {
			m = len(found)
		}
		nbrs := found[:m]
		local := id - sh.lo
		for _, nb := range nbrs {
			sh.links[l][local] = append(sh.links[l][local], int32(nb.ID))
		}
		maxDeg := ix.opts.M
		if l == 0 {
			maxDeg = maxL0
		}
		for _, nb := range nbrs {
			nl := nb.ID - sh.lo
			sh.links[l][nl] = append(sh.links[l][nl], int32(id))
			if len(sh.links[l][nl]) > maxDeg {
				sh.links[l][nl] = ix.shrink(nb.ID, sh.links[l][nl], maxDeg)
			}
		}
		if len(found) > 0 {
			ep = found[0].ID
		}
	}
	if level > sh.maxLevel {
		sh.maxLevel = level
		sh.entry = id
	}
}

// shrink keeps the maxDeg neighbours of node most similar to it, ties on
// ascending id — the deterministic analogue of HNSW's neighbour pruning.
func (ix *hnswIndex) shrink(node int, nbrs []int32, maxDeg int) []int32 {
	ids := make([]int, len(nbrs))
	for i, nb := range nbrs {
		ids[i] = int(nb)
	}
	ranked := rank(ix.vecs, ix.vecs[node], ids, maxDeg)
	out := make([]int32, len(ranked))
	for i, c := range ranked {
		out[i] = int32(c.ID)
	}
	return out
}

// greedy walks level l from ep to a local similarity maximum for q.
// Strictly-better moves only, first-listed neighbour wins equal scores —
// both choices are deterministic given the adjacency order.
func (ix *hnswIndex) greedy(sh *hnswShard, q []float64, ep, l int) int {
	best := ep
	bestSim := mathx.Dot(q, ix.vecs[ep])
	improved := true
	for improved {
		improved = false
		for _, nb := range sh.links[l][best-sh.lo] {
			sim := mathx.Dot(q, ix.vecs[nb])
			if sim > bestSim {
				bestSim = sim
				best = int(nb)
				improved = true
			}
		}
	}
	return best
}

// searchLayer is the beam search at one level: expand the best
// unexpanded candidate, keep the ef best seen, stop when the frontier
// cannot improve the beam. Returns candidates best-first (sim desc, id
// asc). visited must be a zeroed scratch array of the shard's size; it is
// re-zeroed before return.
func (ix *hnswIndex) searchLayer(sh *hnswShard, q []float64, eps []int, ef, l int, visited []bool) []Candidate {
	var touched []int
	visit := func(id int) (Candidate, bool) {
		local := id - sh.lo
		if visited[local] {
			return Candidate{}, false
		}
		visited[local] = true
		touched = append(touched, local)
		return Candidate{ID: id, Sim: mathx.Dot(q, ix.vecs[id])}, true
	}

	var frontier, beam candHeap // frontier: best-first; beam: worst-first
	for _, ep := range eps {
		if c, ok := visit(ep); ok {
			frontier.push(c, false)
			beam.push(c, true)
		}
	}
	for frontier.len() > 0 {
		cur := frontier.pop(false)
		if beam.len() >= ef && worse(cur, beam.peek()) {
			break
		}
		for _, nb := range sh.links[l][cur.ID-sh.lo] {
			c, ok := visit(int(nb))
			if !ok {
				continue
			}
			if beam.len() < ef || !worse(c, beam.peek()) {
				frontier.push(c, false)
				beam.push(c, true)
				if beam.len() > ef {
					beam.pop(true)
				}
			}
		}
	}
	for _, local := range touched {
		visited[local] = false
	}
	out := make([]Candidate, beam.len())
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = beam.pop(true)
	}
	return out
}

// Query implements Index.
func (ix *hnswIndex) Query(q []float64, k int) []Candidate {
	if k <= 0 || len(q) != ix.dim {
		return nil
	}
	nq := mathx.Normalized(q)
	var ids []int
	for _, sh := range ix.shards {
		if sh.entry < 0 {
			continue
		}
		ep := sh.entry
		for l := sh.maxLevel; l > 0; l-- {
			ep = ix.greedy(sh, nq, ep, l)
		}
		visited := make([]bool, sh.hi-sh.lo)
		for _, c := range ix.searchLayer(sh, nq, []int{ep}, ix.opts.EfSearch, 0, visited) {
			ids = append(ids, c.ID)
		}
	}
	return rank(ix.vecs, nq, ids, k)
}

// Len implements Index.
func (ix *hnswIndex) Len() int { return len(ix.vecs) }

// Dim implements Index.
func (ix *hnswIndex) Dim() int { return ix.dim }

// Vector implements Index.
func (ix *hnswIndex) Vector(id int) []float64 { return ix.vecs[id] }

// Name implements Index.
func (ix *hnswIndex) Name() string { return BackendHNSW }

// worse reports whether a ranks strictly after b in (sim desc, id asc)
// order — the one total order every structure here shares.
func worse(a, b Candidate) bool {
	//lint:allow floateq heap ordering must be an exact total order; a tolerance comparator breaks the heap invariant
	if a.Sim != b.Sim {
		return a.Sim < b.Sim
	}
	return a.ID > b.ID
}

// candHeap is a binary heap of Candidates. min=false orders best-first
// (a frontier popping the most promising next), min=true orders
// worst-first (a bounded beam evicting its weakest). The comparator is
// the exact (sim, id) total order, so heap shape is deterministic.
type candHeap struct{ s []Candidate }

func (h *candHeap) len() int        { return len(h.s) }
func (h *candHeap) peek() Candidate { return h.s[0] }

func (h *candHeap) before(a, b Candidate, min bool) bool {
	if min {
		return worse(a, b)
	}
	return worse(b, a)
}

func (h *candHeap) push(c Candidate, min bool) {
	h.s = append(h.s, c)
	i := len(h.s) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !h.before(h.s[i], h.s[p], min) {
			break
		}
		h.s[i], h.s[p] = h.s[p], h.s[i]
		i = p
	}
}

func (h *candHeap) pop(min bool) Candidate {
	top := h.s[0]
	last := len(h.s) - 1
	h.s[0] = h.s[last]
	h.s = h.s[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < last && h.before(h.s[l], h.s[best], min) {
			best = l
		}
		if r < last && h.before(h.s[r], h.s[best], min) {
			best = r
		}
		if best == i {
			break
		}
		h.s[i], h.s[best] = h.s[best], h.s[i]
		i = best
	}
	return top
}
