package index

import (
	"context"
	"fmt"
	"math"
	"sync"

	"leapme/internal/mathx"
	"leapme/internal/parallel"
)

// lshIndex is the random-hyperplane LSH backend. Each table hashes a
// vector to a Bits-bit signature — bit b is the sign of the projection
// onto hyperplane (table, b) — and buckets vectors by signature. Cosine-
// similar vectors agree on most projections, so they collide with high
// probability in at least one table; a query probes its own bucket per
// table plus the lowest-margin single-bit flips (multiprobe), then ranks
// the gathered candidates by exact cosine.
type lshIndex struct {
	dim  int
	opts Options
	vecs [][]float64 // unit-normalized, id order
	// center is the mean of the normalized vectors. Signatures hash
	// *centered* vectors: embedding spaces are anisotropic (two unrelated
	// phrases still share a sizeable cosine with the corpus mean), so
	// hashing raw vectors packs everything into a few buckets. Centering
	// spreads signatures while near-duplicates — which sit close to each
	// other regardless of where the mean is — still collide.
	center []float64
	// planes holds tables*bits hyperplanes; plane (t, b) is
	// planes[t*bits+b]. Seeded per plane, never per build schedule.
	planes [][]float64
	// offsets[p] = dot(center, planes[p]), so the centered projection is
	// dot(v, plane) − offset — one dot per plane instead of materialising
	// v − center per hash. Recomputed from center on load.
	offsets []float64
	// sigs[t][i] is vector i's signature in table t.
	sigs [][]uint32
	// buckets[t] maps a signature to the ids carrying it, ascending.
	buckets []map[uint32][]int

	// scratch pools the per-query visited array and candidate buffer:
	// queries are hot (one per property in blocking) and a fresh
	// len(vecs) allocation each would be mostly GC traffic. Pooled state
	// never leaks into results — visited is re-zeroed via the touched
	// list, ids is truncated — so pooling cannot perturb determinism.
	scratch sync.Pool
}

// lshScratch is the reusable per-query state.
type lshScratch struct {
	seen []bool
	ids  []int
	marg []float64
	flip []int
}

func buildLSH(ctx context.Context, vecs [][]float64, dim int, opts Options) (*lshIndex, error) {
	ix := &lshIndex{dim: dim, opts: opts, vecs: vecs}
	ix.center = mathx.MeanVectors(vecs)
	ix.planes = makePlanes(dim, opts)
	ix.initDerived()

	// Signatures in parallel (chunked) with an ordered merge: sigs[i]
	// depends only on (vecs[i], center, planes), so neither the worker
	// count nor the chunking can change a bit.
	spans := parallel.Chunks(len(vecs), buildChunk)
	chunks, rep, err := parallel.Map(ctx, opts.Workers, len(spans),
		func(i int) string { return fmt.Sprintf("lsh signatures span %d", i) },
		func(i int) ([][]uint32, error) {
			sp := spans[i]
			out := make([][]uint32, 0, sp.Hi-sp.Lo)
			for j := sp.Lo; j < sp.Hi; j++ {
				out = append(out, ix.signatures(vecs[j], nil))
			}
			return out, nil
		})
	if err != nil {
		return nil, err
	}
	if rep != nil && rep.Failed() > 0 {
		return nil, fmt.Errorf("index: lsh signatures failed: %s", rep)
	}
	perItem := make([][]uint32, 0, len(vecs))
	for _, c := range chunks {
		perItem = append(perItem, c...)
	}

	// Transpose to per-table and fill buckets in ascending id order.
	ix.sigs = make([][]uint32, opts.Tables)
	ix.buckets = make([]map[uint32][]int, opts.Tables)
	for t := 0; t < opts.Tables; t++ {
		ix.sigs[t] = make([]uint32, len(vecs))
		ix.buckets[t] = make(map[uint32][]int)
	}
	for i, sig := range perItem {
		for t, s := range sig {
			ix.sigs[t][i] = s
			ix.buckets[t][s] = append(ix.buckets[t][s], i)
		}
	}
	return ix, nil
}

// initDerived computes the state derived from (center, planes) — the
// projection offsets and the scratch pool. Called by both buildLSH and
// the deserializer.
func (ix *lshIndex) initDerived() {
	ix.offsets = make([]float64, len(ix.planes))
	for p, plane := range ix.planes {
		ix.offsets[p] = mathx.Dot(ix.center, plane)
	}
	ix.scratch.New = func() any {
		return &lshScratch{
			seen: make([]bool, len(ix.vecs)),
			marg: make([]float64, ix.opts.Tables*ix.opts.Bits),
			flip: make([]int, ix.opts.Bits),
		}
	}
}

// makePlanes draws every hyperplane from its own SeedStream-derived RNG,
// so plane p is a pure function of (seed, p) — not of how many planes
// some worker generated before it.
func makePlanes(dim int, opts Options) [][]float64 {
	planes := make([][]float64, opts.Tables*opts.Bits)
	for p := range planes {
		planes[p] = make([]float64, dim)
		mathx.FillNormal(planes[p], 0, 1, mathx.NewRand(parallel.SeedStream(opts.Seed, p)))
	}
	return planes
}

// signatures computes the signature of a normalized vector for every
// table; the centering is folded into the precomputed offsets. When
// margins is non-nil it must have length tables*bits and receives
// |projection| per plane — the multiprobe flip priorities.
func (ix *lshIndex) signatures(q []float64, margins []float64) []uint32 {
	sigs := make([]uint32, ix.opts.Tables)
	for t := 0; t < ix.opts.Tables; t++ {
		var sig uint32
		for b := 0; b < ix.opts.Bits; b++ {
			p := t*ix.opts.Bits + b
			proj := mathx.Dot(q, ix.planes[p]) - ix.offsets[p]
			if proj >= 0 {
				sig |= 1 << uint(b)
			}
			if margins != nil {
				margins[p] = math.Abs(proj)
			}
		}
		sigs[t] = sig
	}
	return sigs
}

// Query implements Index.
func (ix *lshIndex) Query(q []float64, k int) []Candidate {
	if k <= 0 || len(q) != ix.dim {
		return nil
	}
	nq := mathx.Normalized(q)
	sc := ix.scratch.Get().(*lshScratch)
	sigs := ix.signatures(nq, sc.marg)

	ids := sc.ids[:0]
	gather := func(t int, sig uint32) {
		for _, id := range ix.buckets[t][sig] {
			if !sc.seen[id] {
				sc.seen[id] = true
				ids = append(ids, id)
			}
		}
	}
	probes := ix.opts.Probes
	if probes > ix.opts.Bits {
		probes = ix.opts.Bits
	}
	for t := 0; t < ix.opts.Tables; t++ {
		gather(t, sigs[t])
		if probes == 0 {
			continue
		}
		// Query-directed multiprobe: flip the bits whose projections were
		// closest to the hyperplane — the likeliest to differ for a true
		// neighbour. A manual partial selection (probes ≪ bits) with the
		// bit position as tie-break keeps this deterministic and off the
		// reflection-based sort path.
		m := sc.marg[t*ix.opts.Bits : (t+1)*ix.opts.Bits]
		flip := sc.flip
		for b := range flip {
			flip[b] = b
		}
		for sel := 0; sel < probes; sel++ {
			best := sel
			for j := sel + 1; j < len(flip); j++ {
				//lint:allow floateq selection tie-break must be an exact total order; a tolerance comparator is not an order at all
				if m[flip[j]] < m[flip[best]] || (m[flip[j]] == m[flip[best]] && flip[j] < flip[best]) {
					best = j
				}
			}
			flip[sel], flip[best] = flip[best], flip[sel]
			gather(t, sigs[t]^(1<<uint(flip[sel])))
		}
	}
	out := rank(ix.vecs, nq, ids, k)
	for _, id := range ids {
		sc.seen[id] = false
	}
	sc.ids = ids[:0]
	ix.scratch.Put(sc)
	return out
}

// Len implements Index.
func (ix *lshIndex) Len() int { return len(ix.vecs) }

// Dim implements Index.
func (ix *lshIndex) Dim() int { return ix.dim }

// Vector implements Index.
func (ix *lshIndex) Vector(id int) []float64 { return ix.vecs[id] }

// Name implements Index.
func (ix *lshIndex) Name() string { return BackendLSH }
