package index

import (
	"context"
	"errors"
	"fmt"

	"leapme/internal/mathx"
	"leapme/internal/parallel"
)

// Candidate is one approximate-nearest-neighbour query result. Sim is the
// exact cosine similarity between the query and the candidate (candidates
// are re-ranked exactly after retrieval; only the *set* is approximate).
type Candidate struct {
	ID  int
	Sim float64
}

// Index answers approximate nearest-neighbour queries over a fixed set of
// vectors. Implementations are immutable after Build and safe for
// concurrent readers.
type Index interface {
	// Query returns up to k candidates nearest q by cosine similarity,
	// best-first with ties broken by ascending id. q need not be
	// normalized.
	Query(q []float64, k int) []Candidate
	// Len returns the number of indexed vectors.
	Len() int
	// Dim returns the vector dimensionality.
	Dim() int
	// Vector returns the stored (unit-normalized) vector for id. The
	// returned slice must not be modified.
	Vector(id int) []float64
	// Name identifies the backend ("lsh" or "hnsw").
	Name() string
}

// Backend names.
const (
	BackendLSH  = "lsh"
	BackendHNSW = "hnsw"
)

// Options configures Build. The zero value selects the LSH backend with
// the defaults below.
type Options struct {
	// Backend selects the index structure: BackendLSH (default) or
	// BackendHNSW.
	Backend string
	// Seed drives every stochastic choice (hyperplanes, level
	// assignment). Same seed + same vectors → bit-identical index.
	Seed int64
	// Workers parallelises the build (≤0 = GOMAXPROCS). The result is
	// bit-identical for every value.
	Workers int

	// Tables is the number of LSH hash tables (default 12).
	Tables int
	// Bits is the signature width per table (max 32). When unset, Build
	// scales it to the corpus: roughly log2(n/4), clamped to [6, 14], so
	// bucket occupancy stays in the low single digits at any size.
	Bits int
	// Probes is the number of extra multiprobe buckets per table: the
	// query's signature with its lowest-margin bits flipped one at a
	// time (default 4).
	Probes int

	// M is the HNSW out-degree target per node per level (default 12).
	M int
	// EfBuild is the construction beam width (default 80).
	EfBuild int
	// EfSearch is the query beam width (default 48).
	EfSearch int
	// ShardSize is the number of vectors per independently-built HNSW
	// shard (default 4096). Smaller shards build with more parallelism;
	// larger shards query faster.
	ShardSize int
}

func (o Options) withDefaults() Options {
	if o.Backend == "" {
		o.Backend = BackendLSH
	}
	if o.Tables <= 0 {
		o.Tables = 12
	}
	if o.Bits > 32 {
		o.Bits = 32
	}
	if o.Probes < 0 {
		o.Probes = 0
	} else if o.Probes == 0 {
		o.Probes = 4
	}
	if o.M <= 0 {
		o.M = 12
	}
	if o.EfBuild <= 0 {
		o.EfBuild = 80
	}
	if o.EfSearch <= 0 {
		o.EfSearch = 48
	}
	if o.ShardSize <= 0 {
		o.ShardSize = 4096
	}
	return o
}

// Build constructs an index over vecs. All vectors must share one
// non-zero dimension; they are copied and unit-normalized internally, so
// the caller's slices are never retained or modified. Building is
// parallel across Options.Workers but bit-deterministic for any worker
// count.
func Build(ctx context.Context, vecs [][]float64, opts Options) (Index, error) {
	opts = opts.withDefaults()
	if opts.Bits <= 0 {
		opts.Bits = adaptiveBits(len(vecs))
	}
	if len(vecs) == 0 {
		return nil, errors.New("index: no vectors")
	}
	dim := len(vecs[0])
	if dim == 0 {
		return nil, errors.New("index: zero-dimensional vectors")
	}
	for i, v := range vecs {
		if len(v) != dim {
			return nil, fmt.Errorf("index: vector %d has dim %d, want %d", i, len(v), dim)
		}
	}
	normed, err := normalizeAll(ctx, opts.Workers, vecs)
	if err != nil {
		return nil, err
	}
	switch opts.Backend {
	case BackendLSH:
		return buildLSH(ctx, normed, dim, opts)
	case BackendHNSW:
		return buildHNSW(ctx, normed, dim, opts)
	default:
		return nil, fmt.Errorf("index: unknown backend %q (want %s or %s)", opts.Backend, BackendLSH, BackendHNSW)
	}
}

// adaptiveBits picks an LSH signature width for a corpus of n vectors so
// expected bucket occupancy (n / 2^bits) lands around 4: wide enough
// that similar vectors keep colliding, narrow enough that buckets stay
// sub-linear as the corpus grows.
func adaptiveBits(n int) int {
	bits := 6
	for n > 4<<bits && bits < 14 {
		bits++
	}
	return bits
}

// buildChunk is the span size parallel build stages hand to one worker
// unit at a time. Per-unit dispatch (a channel round-trip plus a label)
// costs far more than normalizing or hashing one vector, so units are
// spans, not items; the chunk structure depends only on n, never on the
// worker count, keeping the ordered merge bit-deterministic.
const buildChunk = 512

// normalizeAll unit-normalizes copies of vecs in parallel with an ordered
// merge, so the result is independent of the worker count. The copies
// share one contiguous backing array: rank() dots the query against
// hundreds of gathered vectors per query, and id-indexed rows of a flat
// array cost one cache line walk instead of a pointer chase per row.
func normalizeAll(ctx context.Context, workers int, vecs [][]float64) ([][]float64, error) {
	if len(vecs) == 0 {
		return nil, nil
	}
	dim := len(vecs[0])
	flat := make([]float64, len(vecs)*dim)
	out := make([][]float64, len(vecs))
	for i := range out {
		out[i] = flat[i*dim : (i+1)*dim : (i+1)*dim]
	}
	spans := parallel.Chunks(len(vecs), buildChunk)
	_, rep, err := parallel.Map(ctx, workers, len(spans),
		func(i int) string { return fmt.Sprintf("normalize span %d", i) },
		func(i int) (struct{}, error) {
			sp := spans[i]
			// Disjoint spans write disjoint rows of flat — no worker ever
			// touches another's slots, and row j's value depends only on
			// vecs[j], so the merge order cannot matter.
			for j := sp.Lo; j < sp.Hi; j++ {
				copy(out[j], vecs[j])
				mathx.NormalizeInPlace(out[j])
			}
			return struct{}{}, nil
		})
	if err != nil {
		return nil, err
	}
	if rep != nil && rep.Failed() > 0 {
		return nil, fmt.Errorf("index: normalization failed: %s", rep)
	}
	return out, nil
}

// rank computes exact cosine similarities of the (deduplicated) candidate
// ids against the normalized query, orders them best-first with the
// id tie-break, and truncates to k (k < 0 keeps everything). It selects
// through a bounded worst-first heap — O(n log k), no reflection — because
// it sits on every query's hot path.
func rank(vecs [][]float64, q []float64, ids []int, k int) []Candidate {
	if k < 0 || k > len(ids) {
		k = len(ids)
	}
	if k == 0 {
		return nil
	}
	var beam candHeap
	for _, id := range ids {
		c := Candidate{ID: id, Sim: mathx.Dot(q, vecs[id])}
		if beam.len() < k {
			beam.push(c, true)
		} else if worse(beam.peek(), c) {
			beam.pop(true)
			beam.push(c, true)
		}
	}
	out := make([]Candidate, beam.len())
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = beam.pop(true)
	}
	return out
}
