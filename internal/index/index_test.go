package index

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"testing"

	"leapme/internal/dataset"
	"leapme/internal/embedding"
	"leapme/internal/mathx"
)

// clusteredVecs generates groups of near-duplicate vectors: `groups`
// cluster centres, `per` noisy copies each. Near-duplicate retrieval is
// the regime property blocking lives in (synonymous names embed close),
// so recall is measured on planted neighbours, not on the weak neighbour
// structure of pure Gaussian noise.
func clusteredVecs(seed int64, groups, per, dim int, noise float64) [][]float64 {
	rng := mathx.NewRand(seed)
	out := make([][]float64, 0, groups*per)
	centre := make([]float64, dim)
	for g := 0; g < groups; g++ {
		mathx.FillNormal(centre, 0, 1, rng)
		for p := 0; p < per; p++ {
			v := make([]float64, dim)
			mathx.FillNormal(v, 0, noise, rng)
			mathx.AddTo(v, v, centre)
			out = append(out, v)
		}
	}
	return out
}

// bruteTopK is the exact-oracle ranking the index approximates.
func bruteTopK(vecs [][]float64, q []float64, k int) []Candidate {
	nq := mathx.Normalized(q)
	normed := make([][]float64, len(vecs))
	for i, v := range vecs {
		normed[i] = mathx.Normalized(v)
	}
	ids := make([]int, len(vecs))
	for i := range ids {
		ids[i] = i
	}
	return rank(normed, nq, ids, k)
}

func overlap(a, b []Candidate) float64 {
	if len(b) == 0 {
		return 1
	}
	in := make(map[int]bool, len(a))
	for _, c := range a {
		in[c.ID] = true
	}
	hit := 0
	for _, c := range b {
		if in[c.ID] {
			hit++
		}
	}
	return float64(hit) / float64(len(b))
}

func backends() []Options {
	return []Options{
		{Backend: BackendLSH, Seed: 42},
		{Backend: BackendHNSW, Seed: 42, ShardSize: 512},
	}
}

func TestQueryRecallOnClusters(t *testing.T) {
	vecs := clusteredVecs(7, 150, 8, 24, 0.15)
	for _, opts := range backends() {
		opts := opts
		t.Run(opts.Backend, func(t *testing.T) {
			ix, err := Build(context.Background(), vecs, opts)
			if err != nil {
				t.Fatalf("Build: %v", err)
			}
			if ix.Len() != len(vecs) || ix.Dim() != 24 {
				t.Fatalf("Len/Dim = %d/%d, want %d/24", ix.Len(), ix.Dim(), len(vecs))
			}
			const k = 8
			var total float64
			queries := 100
			for qi := 0; qi < queries; qi++ {
				q := vecs[qi*11%len(vecs)]
				got := ix.Query(q, k)
				want := bruteTopK(vecs, q, k)
				total += overlap(got, want)
				for i := 1; i < len(got); i++ {
					if got[i].Sim > got[i-1].Sim {
						t.Fatalf("query %d results not sorted: %v", qi, got)
					}
				}
			}
			recall := total / float64(queries)
			if recall < 0.85 {
				t.Fatalf("%s recall@%d = %.3f, want >= 0.85", opts.Backend, k, recall)
			}
			t.Logf("%s recall@%d = %.3f", opts.Backend, k, recall)
		})
	}
}

func TestBuildRejectsBadInput(t *testing.T) {
	ctx := context.Background()
	if _, err := Build(ctx, nil, Options{}); err == nil {
		t.Fatal("Build accepted empty input")
	}
	if _, err := Build(ctx, [][]float64{{}}, Options{}); err == nil {
		t.Fatal("Build accepted zero-dimensional vectors")
	}
	if _, err := Build(ctx, [][]float64{{1, 2}, {1, 2, 3}}, Options{}); err == nil {
		t.Fatal("Build accepted mismatched dims")
	}
	if _, err := Build(ctx, [][]float64{{1, 2}}, Options{Backend: "voronoi"}); err == nil {
		t.Fatal("Build accepted unknown backend")
	}
}

func TestQueryEdgeCases(t *testing.T) {
	vecs := clusteredVecs(3, 4, 3, 8, 0.1)
	vecs = append(vecs, make([]float64, 8)) // a fully-OOV zero vector
	for _, opts := range backends() {
		opts := opts
		t.Run(opts.Backend, func(t *testing.T) {
			ix, err := Build(context.Background(), vecs, opts)
			if err != nil {
				t.Fatalf("Build: %v", err)
			}
			if got := ix.Query(vecs[0], 0); got != nil {
				t.Fatalf("k=0 returned %v", got)
			}
			if got := ix.Query(vecs[0][:3], 5); got != nil {
				t.Fatalf("dim-mismatched query returned %v", got)
			}
			if got := ix.Query(vecs[0], 10*len(vecs)); len(got) > len(vecs) {
				t.Fatalf("k>n returned %d > %d candidates", len(got), len(vecs))
			}
			// A zero-vector query must not panic or produce NaN sims.
			for _, c := range ix.Query(make([]float64, 8), 5) {
				if c.Sim != c.Sim {
					t.Fatalf("zero query produced NaN sim for id %d", c.ID)
				}
			}
		})
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	vecs := clusteredVecs(11, 40, 5, 16, 0.2)
	for _, opts := range backends() {
		opts := opts
		t.Run(opts.Backend, func(t *testing.T) {
			ix, err := Build(context.Background(), vecs, opts)
			if err != nil {
				t.Fatalf("Build: %v", err)
			}
			var buf bytes.Buffer
			if err := Write(&buf, ix); err != nil {
				t.Fatalf("Write: %v", err)
			}
			first := append([]byte(nil), buf.Bytes()...)

			loaded, err := Read(bytes.NewReader(first))
			if err != nil {
				t.Fatalf("Read: %v", err)
			}
			if loaded.Name() != ix.Name() || loaded.Len() != ix.Len() || loaded.Dim() != ix.Dim() {
				t.Fatalf("loaded index differs: %s/%d/%d vs %s/%d/%d",
					loaded.Name(), loaded.Len(), loaded.Dim(), ix.Name(), ix.Len(), ix.Dim())
			}
			for qi := 0; qi < 20; qi++ {
				q := vecs[qi*7%len(vecs)]
				a, b := ix.Query(q, 6), loaded.Query(q, 6)
				if fmt.Sprint(a) != fmt.Sprint(b) {
					t.Fatalf("query %d differs after round trip:\n  built:  %v\n  loaded: %v", qi, a, b)
				}
			}

			// Re-serialising the loaded index must reproduce the bytes.
			var again bytes.Buffer
			if err := Write(&again, loaded); err != nil {
				t.Fatalf("re-Write: %v", err)
			}
			if !bytes.Equal(first, again.Bytes()) {
				t.Fatal("serialisation is not a fixed point: bytes differ after load+save")
			}
		})
	}
}

func TestReadRejectsCorruption(t *testing.T) {
	vecs := clusteredVecs(3, 10, 4, 8, 0.2)
	ix, err := Build(context.Background(), vecs, Options{Seed: 1})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, ix); err != nil {
		t.Fatalf("Write: %v", err)
	}
	raw := buf.Bytes()

	flipped := append([]byte(nil), raw...)
	flipped[len(flipped)/2] ^= 0x40
	if _, err := Read(bytes.NewReader(flipped)); err == nil {
		t.Fatal("Read accepted a bit-flipped payload")
	} else if !strings.Contains(err.Error(), "CRC") {
		t.Fatalf("corruption error does not mention the checksum: %v", err)
	}

	if _, err := Read(bytes.NewReader(raw[:len(raw)-9])); err == nil {
		t.Fatal("Read accepted a truncated file")
	}
	if _, err := Read(bytes.NewReader([]byte("LEAPMEMD garbage"))); err == nil {
		t.Fatal("Read accepted a model-file magic")
	}
}

func testStore(t *testing.T, dim int) *embedding.Store {
	t.Helper()
	words := []string{
		"camera", "resolution", "zoom", "weight", "battery", "price",
		"sensor", "lens", "flash", "screen", "video", "audio",
	}
	rng := mathx.NewRand(99)
	vecs := make([][]float64, len(words))
	for i := range vecs {
		vecs[i] = make([]float64, dim)
		mathx.FillNormal(vecs[i], 0, 1, rng)
	}
	st, err := embedding.NewStore(words, vecs)
	if err != nil {
		t.Fatalf("NewStore: %v", err)
	}
	return st
}

func TestSnapshotRoundTrip(t *testing.T) {
	st := testStore(t, 12)
	var props []dataset.Property
	names := []string{
		"camera resolution", "sensor resolution", "optical zoom", "zoom",
		"battery weight", "weight", "price", "screen resolution",
		"video audio", "flash", "lens", "battery",
	}
	for si, src := range []string{"s1", "s2", "s3"} {
		for ni, n := range names {
			if (si+ni)%2 == 0 {
				props = append(props, dataset.Property{Source: src, Name: n})
			}
		}
	}
	// A duplicate key must collapse to its first occurrence.
	props = append(props, props[0])

	snap, err := BuildSnapshot(context.Background(), st, props, Options{Seed: 5})
	if err != nil {
		t.Fatalf("BuildSnapshot: %v", err)
	}
	if snap.Len() != len(props)-1 {
		t.Fatalf("snapshot has %d keys, want %d (dup collapsed)", snap.Len(), len(props)-1)
	}
	id, ok := snap.Lookup(props[0].Key())
	if !ok || id != 0 {
		t.Fatalf("Lookup(first prop) = %d, %v", id, ok)
	}
	if _, ok := snap.Lookup(dataset.Key{Source: "nope", Name: "nothing"}); ok {
		t.Fatal("Lookup found an unindexed key")
	}
	nbrs := snap.Neighbors(0, 5)
	if len(nbrs) == 0 {
		t.Fatal("Neighbors returned nothing")
	}
	for _, c := range nbrs {
		if c.ID == 0 {
			t.Fatal("Neighbors returned the query property itself")
		}
	}

	var buf bytes.Buffer
	if err := snap.Write(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	loaded, err := ReadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadSnapshot: %v", err)
	}
	if loaded.Len() != snap.Len() {
		t.Fatalf("loaded snapshot has %d keys, want %d", loaded.Len(), snap.Len())
	}
	for i, k := range snap.Keys {
		if loaded.Keys[i] != k {
			t.Fatalf("key %d differs after round trip: %v vs %v", i, loaded.Keys[i], k)
		}
	}
	if fmt.Sprint(loaded.Neighbors(0, 5)) != fmt.Sprint(nbrs) {
		t.Fatal("Neighbors differ after round trip")
	}

	if _, err := BuildSnapshot(context.Background(), st, nil, Options{}); err == nil {
		t.Fatal("BuildSnapshot accepted zero properties")
	}
}
