// Package cli holds the flag/IO helpers shared by the leapme binaries
// (cmd/leapme, cmd/leapme-serve, cmd/benchtab) so conventions — exit
// codes, -timeout, -lenient quarantine loading, list flags — stay
// identical across them.
package cli

import (
	"context"
	"errors"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"leapme/internal/dataset"
	"leapme/internal/embedding"
)

// SignalContext returns a context cancelled by SIGINT/SIGTERM, for
// cooperative shutdown of long runs.
func SignalContext() (context.Context, context.CancelFunc) {
	//lint:allow ctxflow this is the process root: the one place a command mints its context
	return signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
}

// WithTimeout derives a command context from a -timeout flag value
// (0 = no deadline).
func WithTimeout(ctx context.Context, d time.Duration) (context.Context, context.CancelFunc) {
	if d <= 0 {
		return context.WithCancel(ctx)
	}
	return context.WithTimeout(ctx, d)
}

// Exit prints err in the binary's standard format and terminates with the
// conventional code: 0 for nil, 130 for interruption (so shells see the
// run as signal-terminated), 1 otherwise.
func Exit(prog string, err error) {
	os.Exit(Code(prog, err))
}

// Code returns Exit's code for err, printing the message for non-nil
// errors without terminating (tests and servers use it directly).
func Code(prog string, err error) int {
	if err == nil {
		return 0
	}
	if errors.Is(err, context.Canceled) {
		fmt.Fprintf(os.Stderr, "%s: interrupted\n", prog)
		return 130
	}
	fmt.Fprintf(os.Stderr, "%s: %v\n", prog, err)
	return 1
}

// LoadStore reads an embedding store file written by `leapme embed`.
func LoadStore(path string) (*embedding.Store, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return embedding.ReadStore(f)
}

// LoadData loads a dataset directory. In lenient mode malformed records
// are quarantined (reported on stderr as prog) instead of failing the
// load.
func LoadData(prog, dir string, lenient bool) (*dataset.Dataset, error) {
	if !lenient {
		return dataset.LoadDir(dir)
	}
	d, dropped, err := dataset.LoadDirQuarantine(dir)
	if err != nil {
		return nil, err
	}
	for _, dr := range dropped {
		fmt.Fprintf(os.Stderr, "%s: quarantined %s\n", prog, dr)
	}
	if len(dropped) > 0 {
		fmt.Fprintf(os.Stderr, "%s: %d malformed records quarantined from %s\n", prog, len(dropped), dir)
	}
	return d, nil
}

// SplitList splits a comma-separated flag value, trimming blanks and
// dropping empty entries.
func SplitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// SourceSet turns a comma-separated source list into a membership set.
func SourceSet(s string) map[string]bool {
	set := map[string]bool{}
	for _, p := range SplitList(s) {
		set[p] = true
	}
	return set
}
