package cli

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestSplitListAndSourceSet(t *testing.T) {
	got := SplitList(" a, b ,,c,")
	want := []string{"a", "b", "c"}
	if len(got) != len(want) {
		t.Fatalf("SplitList = %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("SplitList = %v, want %v", got, want)
		}
	}
	if SplitList("") != nil {
		t.Error("SplitList(\"\") != nil")
	}
	set := SourceSet("s1, s2")
	if !set["s1"] || !set["s2"] || set["s3"] || len(set) != 2 {
		t.Errorf("SourceSet = %v", set)
	}
}

func TestWithTimeout(t *testing.T) {
	ctx, cancel := WithTimeout(context.Background(), 0)
	if _, ok := ctx.Deadline(); ok {
		t.Error("zero timeout set a deadline")
	}
	cancel()
	ctx, cancel = WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if _, ok := ctx.Deadline(); !ok {
		t.Error("timeout did not set a deadline")
	}
}

func TestCode(t *testing.T) {
	if c := Code("t", nil); c != 0 {
		t.Errorf("Code(nil) = %d", c)
	}
	if c := Code("t", context.Canceled); c != 130 {
		t.Errorf("Code(Canceled) = %d, want 130", c)
	}
	if c := Code("t", fmt.Errorf("wrapped: %w", context.Canceled)); c != 130 {
		t.Errorf("Code(wrapped Canceled) = %d, want 130", c)
	}
	if c := Code("t", errors.New("boom")); c != 1 {
		t.Errorf("Code(err) = %d, want 1", c)
	}
}
