package blocking

import (
	"context"
	"fmt"
	"testing"

	"leapme/internal/dataset"
	"leapme/internal/index"
)

// pairOverlap returns |got ∩ want| / |want|.
func pairOverlap(got, want []dataset.Pair) float64 {
	if len(want) == 0 {
		return 1
	}
	in := make(map[dataset.Pair]bool, len(got))
	for _, p := range got {
		in[p] = true
	}
	hit := 0
	for _, p := range want {
		if in[p] {
			hit++
		}
	}
	return float64(hit) / float64(len(want))
}

func annBackends() []index.Options {
	return []index.Options{
		{Backend: index.BackendLSH, Seed: 17},
		{Backend: index.BackendHNSW, Seed: 17, ShardSize: 256},
	}
}

func TestANNBlockerMatchesExactOracle(t *testing.T) {
	_, props := genProps(t, 6)
	store := getStore(t)
	exact := NewEmbeddingBlocker(store).Candidates(props)
	for _, opts := range annBackends() {
		opts := opts
		t.Run(opts.Backend, func(t *testing.T) {
			b := NewANNBlocker(store, opts)
			cands := b.Candidates(props)
			for _, c := range cands {
				if c.A.Source == c.B.Source {
					t.Fatal("same-source candidate")
				}
				if c.Canonical() != c {
					t.Fatalf("non-canonical pair %v", c)
				}
			}
			rec := pairOverlap(cands, exact)
			t.Logf("%s: %d candidates vs %d exact, recall_vs_exact=%.3f", b.Name(), len(cands), len(exact), rec)
			if rec < 0.9 {
				t.Errorf("recall vs exact oracle = %.3f, want ≥ 0.9", rec)
			}
			q := Measure(cands, props)
			if q.PairCompleteness < 0.6 {
				t.Errorf("pair completeness = %.3f, want ≥ 0.6", q.PairCompleteness)
			}
		})
	}
}

func TestANNBlockerName(t *testing.T) {
	store := getStore(t)
	if got := NewANNBlocker(store, index.Options{}).Name(); got != "ann-lsh" {
		t.Errorf("default name = %q, want ann-lsh", got)
	}
	if got := NewANNBlocker(store, index.Options{Backend: index.BackendHNSW}).Name(); got != "ann-hnsw" {
		t.Errorf("hnsw name = %q, want ann-hnsw", got)
	}
}

func TestANNBlockerEmptyAndCancelled(t *testing.T) {
	store := getStore(t)
	b := NewANNBlocker(store, index.Options{Seed: 1})
	if got := b.Candidates(nil); got != nil {
		t.Errorf("empty props produced %d candidates", len(got))
	}
	_, props := genProps(t, 7)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := b.CandidatesCtx(ctx, props); err == nil {
		t.Error("cancelled context did not abort CandidatesCtx")
	}
}

func TestANNBlockerSnapshotPath(t *testing.T) {
	_, props := genProps(t, 8)
	store := getStore(t)
	opts := index.Options{Backend: index.BackendLSH, Seed: 3}

	snap, err := index.BuildSnapshot(context.Background(), store, props, opts)
	if err != nil {
		t.Fatal(err)
	}
	fresh := NewANNBlocker(store, opts)
	snapped := NewANNBlocker(store, opts)
	snapped.Snapshot = snap

	a, b := fresh.Candidates(props), snapped.Candidates(props)
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("snapshot-served candidates differ from fresh build: %d vs %d pairs", len(a), len(b))
	}

	// A property outside the snapshot must trigger the ephemeral-build
	// fallback, not silently lose the property.
	extra := append(append([]dataset.Property{}, props...),
		dataset.Property{Source: "s-new", Name: "totally new property"})
	c, err := snapped.CandidatesCtx(context.Background(), extra)
	if err != nil {
		t.Fatal(err)
	}
	want, err := fresh.CandidatesCtx(context.Background(), extra)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(c) != fmt.Sprint(want) {
		t.Fatal("stale-snapshot fallback differs from a fresh build")
	}
}

func TestANNBlockerUnionWithToken(t *testing.T) {
	_, props := genProps(t, 9)
	store := getStore(t)
	ann := NewANNBlocker(store, index.Options{Seed: 4})
	u := Union{NewTokenBlocker(), ann}
	if u.Name() != "union(token+ann-lsh)" {
		t.Errorf("union name = %q", u.Name())
	}
	qa := Measure(ann.Candidates(props), props)
	qu := Measure(u.Candidates(props), props)
	if qu.PairCompleteness < qa.PairCompleteness {
		t.Error("union completeness below the ANN member's")
	}
	if qu.PairCompleteness < 0.9 {
		t.Errorf("union completeness = %.3f, want ≥ 0.9", qu.PairCompleteness)
	}
}

// TestDeterminismANNBlocker runs under the repo-wide determinism gate:
// the proposed pair list must be identical for any worker count.
func TestDeterminismANNBlocker(t *testing.T) {
	_, props := genProps(t, 10)
	store := getStore(t)
	for _, base := range annBackends() {
		base := base
		t.Run(base.Backend, func(t *testing.T) {
			var prev []dataset.Pair
			for _, workers := range []int{1, 8} {
				opts := base
				opts.Workers = workers
				b := NewANNBlocker(store, opts)
				cands := b.Candidates(props)
				if prev != nil && fmt.Sprint(prev) != fmt.Sprint(cands) {
					t.Fatalf("%s candidates differ between workers=1 and workers=8 (%d vs %d pairs)",
						b.Name(), len(prev), len(cands))
				}
				prev = cands
			}
		})
	}
}
