package blocking

import (
	"context"
	"fmt"

	"leapme/internal/dataset"
	"leapme/internal/embedding"
	"leapme/internal/index"
	"leapme/internal/parallel"
)

// ANNBlocker proposes, for each property, its K nearest other-source
// properties by name-embedding cosine — the same proposal rule as
// EmbeddingBlocker, but answered from an approximate-nearest-neighbour
// index instead of a full pairwise scan. EmbeddingBlocker touches every
// cross-source pair per call (quadratic); ANNBlocker builds the index
// once (near-linear) and probes it per property (sub-linear), keeping
// the exact blocker available as a recall oracle for benchmarks.
type ANNBlocker struct {
	Store *embedding.Store
	// K nearest neighbours per property (default 10).
	K int
	// MinSim drops neighbours below this cosine similarity (default 0.3).
	MinSim float64
	// Opts configures the underlying index (backend, seed, workers,
	// backend geometry). The zero value selects LSH with defaults.
	Opts index.Options
	// Snapshot, when non-nil, serves queries from a prebuilt index
	// instead of building one per call. Candidates falls back to an
	// ephemeral build for any property not present in the snapshot, so a
	// stale snapshot degrades to a fresh build, never to wrong answers.
	Snapshot *index.Snapshot
}

// NewANNBlocker returns an ANNBlocker matching NewEmbeddingBlocker's
// proposal parameters, with the default (LSH) index backend.
func NewANNBlocker(store *embedding.Store, opts index.Options) *ANNBlocker {
	return &ANNBlocker{Store: store, K: 10, MinSim: 0.3, Opts: opts}
}

// Name implements Blocker.
func (b *ANNBlocker) Name() string {
	o := b.Opts
	if o.Backend == "" {
		o.Backend = index.BackendLSH
	}
	return "ann-" + o.Backend
}

// Candidates implements Blocker.
func (b *ANNBlocker) Candidates(props []dataset.Property) []dataset.Pair {
	// The Blocker interface is context-free; index building honours
	// cancellation, so the context-aware variant is the real
	// implementation and this adapter supplies the neutral context.
	//lint:allow ctxflow Blocker.Candidates has no ctx parameter; CandidatesCtx is the context-aware entry point
	pairs, err := b.CandidatesCtx(context.Background(), props)
	if err != nil {
		// Build errors here mean empty or malformed inputs (no
		// properties, zero-dim store); propose nothing rather than panic.
		return nil
	}
	return pairs
}

// CandidatesCtx is Candidates with cancellation: ctx aborts both the
// index build and the per-property queries.
func (b *ANNBlocker) CandidatesCtx(ctx context.Context, props []dataset.Property) ([]dataset.Pair, error) {
	if len(props) == 0 {
		return nil, nil
	}
	k := b.K
	if k <= 0 {
		k = 10
	}

	snap := b.Snapshot
	if snap == nil || !SnapshotCovers(snap, props) {
		var err error
		snap, err = index.BuildSnapshot(ctx, b.Store, props, b.Opts)
		if err != nil {
			return nil, err
		}
	}

	// Queries run in parallel over property *spans*, not single
	// properties: per-unit dispatch costs more than one index probe, so
	// chunking is what lets the sub-linear query path actually beat the
	// exact scan. Each query over-fetches: the K nearest overall may be
	// dominated by same-source properties (which blocking must not pair),
	// so ask for enough to survive the source filter before truncating to
	// K other-source hits.
	fetch := 2*k + 4
	spans := parallel.Chunks(len(props), 256)
	perSpan, rep, err := parallel.Map(ctx, b.Opts.Workers, len(spans),
		func(i int) string { return fmt.Sprintf("ann query span %d", i) },
		func(i int) ([]dataset.Pair, error) {
			var pairs []dataset.Pair
			for _, p := range props[spans[i].Lo:spans[i].Hi] {
				id, ok := snap.Lookup(p.Key())
				if !ok {
					continue
				}
				kept := 0
				for _, c := range snap.Neighbors(id, fetch) {
					if kept >= k || c.Sim < b.MinSim {
						break // Neighbors is sorted best-first
					}
					nk := snap.Keys[c.ID]
					if nk.Source == p.Source {
						continue
					}
					pairs = append(pairs, dataset.Pair{A: p.Key(), B: nk}.Canonical())
					kept++
				}
			}
			return pairs, nil
		})
	if err != nil {
		return nil, err
	}
	if rep != nil && rep.Failed() > 0 {
		return nil, fmt.Errorf("blocking: ann queries failed: %s", rep)
	}

	pairSet := map[dataset.Pair]bool{}
	for _, pairs := range perSpan {
		for _, p := range pairs {
			pairSet[p] = true
		}
	}
	return sortedPairs(pairSet), nil
}

// SnapshotCovers reports whether every property is indexed in snap —
// i.e. whether an ANNBlocker with this Snapshot will serve from it
// rather than fall back to an ephemeral build. Exported so the serving
// layer can count snapshot hits versus per-request builds.
func SnapshotCovers(snap *index.Snapshot, props []dataset.Property) bool {
	for _, p := range props {
		if _, ok := snap.Lookup(p.Key()); !ok {
			return false
		}
	}
	return true
}
