package blocking

import (
	"context"
	"testing"

	"leapme/internal/core"
	"leapme/internal/dataset"
	"leapme/internal/domain"
	"leapme/internal/embedding"
	"leapme/internal/mathx"
)

var cachedStore *embedding.Store

func getStore(t testing.TB) *embedding.Store {
	t.Helper()
	if cachedStore == nil {
		corpus := domain.Corpus([]*domain.Category{domain.Cameras()},
			domain.CorpusConfig{SentencesPerProp: 50, Seed: 1})
		cfg := embedding.DefaultGloVeConfig()
		cfg.Dim = 24
		cfg.Epochs = 20
		s, err := embedding.TrainGloVe(corpus, cfg)
		if err != nil {
			t.Fatal(err)
		}
		cachedStore = s
	}
	return cachedStore
}

func genProps(t *testing.T, seed int64) (*dataset.Dataset, []dataset.Property) {
	t.Helper()
	d, err := dataset.Generate(dataset.GenConfig{
		Name:           "blk-test",
		Category:       domain.Cameras(),
		NumSources:     5,
		SharedPresence: 0.8,
		CanonicalBias:  0.5,
		NoiseProps:     10,
		MinEntities:    5,
		MaxEntities:    8,
		MissingRate:    0.3,
		Seed:           seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d, d.Props
}

func TestTokenBlocker(t *testing.T) {
	_, props := genProps(t, 1)
	cands := NewTokenBlocker().Candidates(props)
	q := Measure(cands, props)
	t.Logf("token blocker: %+v", q)
	if q.PairCompleteness < 0.5 {
		t.Errorf("token pair completeness = %.3f, want ≥ 0.5", q.PairCompleteness)
	}
	if q.ReductionRatio < 0.5 {
		t.Errorf("token reduction ratio = %.3f, want ≥ 0.5", q.ReductionRatio)
	}
	for _, c := range cands {
		if c.A.Source == c.B.Source {
			t.Fatal("same-source candidate")
		}
	}
}

func TestEmbeddingBlocker(t *testing.T) {
	_, props := genProps(t, 2)
	b := NewEmbeddingBlocker(getStore(t))
	cands := b.Candidates(props)
	q := Measure(cands, props)
	t.Logf("embedding blocker: %+v", q)
	if q.PairCompleteness < 0.6 {
		t.Errorf("embedding pair completeness = %.3f, want ≥ 0.6", q.PairCompleteness)
	}
	if q.ReductionRatio < 0.5 {
		t.Errorf("embedding reduction ratio = %.3f, want ≥ 0.5", q.ReductionRatio)
	}
}

func TestUnionDominatesMembers(t *testing.T) {
	_, props := genProps(t, 3)
	tok := NewTokenBlocker()
	emb := NewEmbeddingBlocker(getStore(t))
	u := Union{tok, emb}
	qt := Measure(tok.Candidates(props), props)
	qe := Measure(emb.Candidates(props), props)
	qu := Measure(u.Candidates(props), props)
	t.Logf("token=%.3f embedding=%.3f union=%.3f completeness", qt.PairCompleteness, qe.PairCompleteness, qu.PairCompleteness)
	if qu.PairCompleteness < qt.PairCompleteness || qu.PairCompleteness < qe.PairCompleteness {
		t.Error("union completeness below a member's")
	}
	if qu.PairCompleteness < 0.9 {
		t.Errorf("union completeness = %.3f, want ≥ 0.9", qu.PairCompleteness)
	}
	if qu.ReductionRatio < 0.3 {
		t.Errorf("union reduction = %.3f, want ≥ 0.3", qu.ReductionRatio)
	}
	if u.Name() != "union(token+embedding)" {
		t.Errorf("union name = %q", u.Name())
	}
}

func TestTokenBlockerStopTokens(t *testing.T) {
	// All names share "item": with the stop-token limit the shared token
	// must not create the full cross product.
	props := []dataset.Property{}
	for i := 0; i < 30; i++ {
		src := "s0"
		if i%2 == 1 {
			src = "s1"
		}
		props = append(props, dataset.Property{Source: src, Name: "item " + string(rune('a'+i))})
	}
	cands := NewTokenBlocker().Candidates(props)
	if len(cands) != 0 {
		t.Errorf("stop-token produced %d candidates, want 0", len(cands))
	}
}

func TestMeasureEmpty(t *testing.T) {
	q := Measure(nil, nil)
	if q.PairCompleteness != 0 || q.ReductionRatio != 0 {
		t.Errorf("empty measure = %+v", q)
	}
}

// TestTokenBlockerTinyCorpus is the regression test for the frequency
// limit flooring to 0 or 1 on tiny corpora: int(0.1·4) = 0 would mark
// every token a stop-token and propose nothing at all.
func TestTokenBlockerTinyCorpus(t *testing.T) {
	props := []dataset.Property{
		{Source: "s0", Name: "zoom"},
		{Source: "s1", Name: "zoom factor"},
		{Source: "s0", Name: "weight"},
		{Source: "s1", Name: "net weight"},
	}
	cands := NewTokenBlocker().Candidates(props)
	if len(cands) != 2 {
		t.Fatalf("tiny corpus produced %d candidates, want 2 (zoom pair + weight pair): %v", len(cands), cands)
	}
}

// TestTokenBlockerMaxBlockSize is the regression test for the other end:
// on a large corpus the relative frequency limit alone admits huge
// blocks — a token carried by 5%% of 4000 properties is under the 10%%
// stop-token threshold yet yields a ~10⁴-pair block. The absolute cap
// must drop it while leaving genuinely rare tokens paired.
func TestTokenBlockerMaxBlockSize(t *testing.T) {
	var props []dataset.Property
	for i := 0; i < 200; i++ { // 5% of 4000 share "sensor"
		props = append(props, dataset.Property{
			Source: "s" + string(rune('0'+i%4)),
			Name:   "sensor " + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26)),
		})
	}
	for i := 0; i < 3800; i++ { // filler with per-property unique tokens
		props = append(props, dataset.Property{
			Source: "s" + string(rune('0'+i%4)),
			Name:   "f" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26)) + string(rune('a'+(i/676)%26)),
		})
	}
	props = append(props,
		dataset.Property{Source: "s0", Name: "rare aperture"},
		dataset.Property{Source: "s1", Name: "rare opening"})

	cands := NewTokenBlocker().Candidates(props)
	for _, c := range cands {
		if c.A.Name != "rare aperture" && c.B.Name != "rare aperture" {
			t.Fatalf("oversized 'sensor' block leaked pair %v", c)
		}
	}
	if len(cands) != 1 {
		t.Fatalf("got %d candidates, want exactly the rare-token pair: %v", len(cands), cands)
	}

	// Raising the cap above the block size must re-admit the block.
	big := &TokenBlocker{MaxTokenFreq: 0.1, MaxBlockSize: 500}
	if got := len(big.Candidates(props)); got <= 1 {
		t.Fatalf("cap=500 still suppressed the sensor block (%d candidates)", got)
	}
}

// TestMeasureAsymmetricSources pins Measure's arithmetic on a hand-built
// three-source corpus with unbalanced source sizes and one source
// contributing no ground truth.
func TestMeasureAsymmetricSources(t *testing.T) {
	props := []dataset.Property{
		{Source: "s0", Name: "width", Ref: "r1"},
		{Source: "s0", Name: "height", Ref: "r2"},
		{Source: "s0", Name: "depth", Ref: ""},
		{Source: "s1", Name: "breadth", Ref: "r1"},
		{Source: "s1", Name: "tallness", Ref: "r2"},
		{Source: "s2", Name: "broadness", Ref: "r1"},
		// s3 exists but matches nothing anywhere (all-noise source).
		{Source: "s3", Name: "serial", Ref: ""},
	}
	// Ground truth: r1 → (s0,s1), (s0,s2), (s1,s2); r2 → (s0,s1). Total 4.
	truth := dataset.MatchingPairs(props)
	if len(truth) != 4 {
		t.Fatalf("fixture ground truth = %d pairs, want 4", len(truth))
	}
	// Candidates: 2 of the 4 true pairs + 1 false pair, one duplicated in
	// swapped order — Measure must count it once via canonicalisation.
	cands := []dataset.Pair{
		{A: dataset.Key{Source: "s0", Name: "width"}, B: dataset.Key{Source: "s1", Name: "breadth"}},
		{A: dataset.Key{Source: "s2", Name: "broadness"}, B: dataset.Key{Source: "s1", Name: "breadth"}},
		{A: dataset.Key{Source: "s3", Name: "serial"}, B: dataset.Key{Source: "s0", Name: "depth"}},
	}
	q := Measure(cands, props)
	if q.PairCompleteness != 0.5 {
		t.Errorf("pair completeness = %v, want 0.5", q.PairCompleteness)
	}
	// Cross-source pairs: 7 props, C(7,2)=21 minus 3 same-source (s0×s0)
	// minus 1 (s1×s1) = 17.
	if q.TotalPairs != 17 {
		t.Errorf("total pairs = %d, want 17", q.TotalPairs)
	}
	if q.Candidates != 3 {
		t.Errorf("candidates = %d, want 3", q.Candidates)
	}
	want := 1 - 3.0/17.0
	if diff := q.ReductionRatio - want; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("reduction ratio = %v, want %v", q.ReductionRatio, want)
	}
}

// trivialBlocker returns a fixed pair list, possibly non-canonical — for
// exercising Union's dedup.
type trivialBlocker struct {
	name  string
	pairs []dataset.Pair
}

func (b trivialBlocker) Name() string                                   { return b.name }
func (b trivialBlocker) Candidates(_ []dataset.Property) []dataset.Pair { return b.pairs }

// TestUnionDedupAndEmptyMembers covers Union over 3+ members with
// overlapping proposals, an empty member (the all-stop-token corpus
// case), and verifies output stays sorted and unique.
func TestUnionDedupAndEmptyMembers(t *testing.T) {
	p1 := dataset.Pair{A: dataset.Key{Source: "s0", Name: "width"}, B: dataset.Key{Source: "s1", Name: "breadth"}}.Canonical()
	p2 := dataset.Pair{A: dataset.Key{Source: "s1", Name: "tallness"}, B: dataset.Key{Source: "s2", Name: "height"}}.Canonical()
	u := Union{
		trivialBlocker{name: "a", pairs: []dataset.Pair{p1, p2}},
		trivialBlocker{name: "b", pairs: []dataset.Pair{p2, p1}},
		trivialBlocker{name: "c", pairs: nil}, // proposes nothing
	}
	if u.Name() != "union(a+b+c)" {
		t.Errorf("union name = %q", u.Name())
	}
	got := u.Candidates(nil)
	if len(got) != 2 {
		t.Fatalf("union produced %d pairs, want 2 (deduplicated): %v", len(got), got)
	}
	if got[0] != p1 || got[1] != p2 {
		t.Fatalf("union output not sorted/canonical: %v", got)
	}

	// An all-stop-token corpus: every member proposes nothing; the union
	// must return an empty set, not nil-panic or invent pairs.
	var stopProps []dataset.Property
	for i := 0; i < 40; i++ {
		src := "s0"
		if i%2 == 1 {
			src = "s1"
		}
		stopProps = append(stopProps, dataset.Property{Source: src, Name: "item"})
	}
	all := Union{NewTokenBlocker()}
	if cands := all.Candidates(stopProps); len(cands) != 0 {
		t.Errorf("all-stop-token corpus produced %d candidates, want 0", len(cands))
	}
}

// TestMatchCandidatesAgreesWithMatchWhere verifies that scoring blocked
// candidates gives identical scores to the full enumeration, restricted
// to the candidate set.
func TestMatchCandidatesAgreesWithMatchWhere(t *testing.T) {
	d, props := genProps(t, 4)
	store := getStore(t)
	m, err := core.NewMatcher(store, core.DefaultOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	m.ComputeFeatures(context.Background(), d)
	pairs := core.TrainingPairs(props, 2, mathx.NewRand(1))
	if _, err := m.Train(context.Background(), pairs); err != nil {
		t.Fatal(err)
	}
	cands := Union{NewTokenBlocker(), NewEmbeddingBlocker(store)}.Candidates(props)

	blocked := map[dataset.Pair]float64{}
	if err := m.MatchCandidates(context.Background(), cands, func(sp core.ScoredPair) {
		blocked[dataset.Pair{A: sp.A, B: sp.B}.Canonical()] = sp.Score
	}); err != nil {
		t.Fatal(err)
	}
	if len(blocked) != len(cands) {
		t.Fatalf("scored %d of %d candidates", len(blocked), len(cands))
	}
	checked := 0
	if err := m.MatchAll(context.Background(), props, func(sp core.ScoredPair) {
		p := dataset.Pair{A: sp.A, B: sp.B}.Canonical()
		if s, ok := blocked[p]; ok {
			if s != sp.Score {
				t.Fatalf("score mismatch on %v: %v vs %v", p, s, sp.Score)
			}
			checked++
		}
	}); err != nil {
		t.Fatal(err)
	}
	if checked != len(cands) {
		t.Fatalf("cross-checked %d of %d candidates", checked, len(cands))
	}
}
