package blocking

import (
	"context"
	"testing"

	"leapme/internal/core"
	"leapme/internal/dataset"
	"leapme/internal/domain"
	"leapme/internal/embedding"
	"leapme/internal/mathx"
)

var cachedStore *embedding.Store

func getStore(t *testing.T) *embedding.Store {
	t.Helper()
	if cachedStore == nil {
		corpus := domain.Corpus([]*domain.Category{domain.Cameras()},
			domain.CorpusConfig{SentencesPerProp: 50, Seed: 1})
		cfg := embedding.DefaultGloVeConfig()
		cfg.Dim = 24
		cfg.Epochs = 20
		s, err := embedding.TrainGloVe(corpus, cfg)
		if err != nil {
			t.Fatal(err)
		}
		cachedStore = s
	}
	return cachedStore
}

func genProps(t *testing.T, seed int64) (*dataset.Dataset, []dataset.Property) {
	t.Helper()
	d, err := dataset.Generate(dataset.GenConfig{
		Name:           "blk-test",
		Category:       domain.Cameras(),
		NumSources:     5,
		SharedPresence: 0.8,
		CanonicalBias:  0.5,
		NoiseProps:     10,
		MinEntities:    5,
		MaxEntities:    8,
		MissingRate:    0.3,
		Seed:           seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d, d.Props
}

func TestTokenBlocker(t *testing.T) {
	_, props := genProps(t, 1)
	cands := NewTokenBlocker().Candidates(props)
	q := Measure(cands, props)
	t.Logf("token blocker: %+v", q)
	if q.PairCompleteness < 0.5 {
		t.Errorf("token pair completeness = %.3f, want ≥ 0.5", q.PairCompleteness)
	}
	if q.ReductionRatio < 0.5 {
		t.Errorf("token reduction ratio = %.3f, want ≥ 0.5", q.ReductionRatio)
	}
	for _, c := range cands {
		if c.A.Source == c.B.Source {
			t.Fatal("same-source candidate")
		}
	}
}

func TestEmbeddingBlocker(t *testing.T) {
	_, props := genProps(t, 2)
	b := NewEmbeddingBlocker(getStore(t))
	cands := b.Candidates(props)
	q := Measure(cands, props)
	t.Logf("embedding blocker: %+v", q)
	if q.PairCompleteness < 0.6 {
		t.Errorf("embedding pair completeness = %.3f, want ≥ 0.6", q.PairCompleteness)
	}
	if q.ReductionRatio < 0.5 {
		t.Errorf("embedding reduction ratio = %.3f, want ≥ 0.5", q.ReductionRatio)
	}
}

func TestUnionDominatesMembers(t *testing.T) {
	_, props := genProps(t, 3)
	tok := NewTokenBlocker()
	emb := NewEmbeddingBlocker(getStore(t))
	u := Union{tok, emb}
	qt := Measure(tok.Candidates(props), props)
	qe := Measure(emb.Candidates(props), props)
	qu := Measure(u.Candidates(props), props)
	t.Logf("token=%.3f embedding=%.3f union=%.3f completeness", qt.PairCompleteness, qe.PairCompleteness, qu.PairCompleteness)
	if qu.PairCompleteness < qt.PairCompleteness || qu.PairCompleteness < qe.PairCompleteness {
		t.Error("union completeness below a member's")
	}
	if qu.PairCompleteness < 0.9 {
		t.Errorf("union completeness = %.3f, want ≥ 0.9", qu.PairCompleteness)
	}
	if qu.ReductionRatio < 0.3 {
		t.Errorf("union reduction = %.3f, want ≥ 0.3", qu.ReductionRatio)
	}
	if u.Name() != "union(token+embedding)" {
		t.Errorf("union name = %q", u.Name())
	}
}

func TestTokenBlockerStopTokens(t *testing.T) {
	// All names share "item": with the stop-token limit the shared token
	// must not create the full cross product.
	props := []dataset.Property{}
	for i := 0; i < 30; i++ {
		src := "s0"
		if i%2 == 1 {
			src = "s1"
		}
		props = append(props, dataset.Property{Source: src, Name: "item " + string(rune('a'+i))})
	}
	cands := NewTokenBlocker().Candidates(props)
	if len(cands) != 0 {
		t.Errorf("stop-token produced %d candidates, want 0", len(cands))
	}
}

func TestMeasureEmpty(t *testing.T) {
	q := Measure(nil, nil)
	if q.PairCompleteness != 0 || q.ReductionRatio != 0 {
		t.Errorf("empty measure = %+v", q)
	}
}

// TestMatchCandidatesAgreesWithMatchWhere verifies that scoring blocked
// candidates gives identical scores to the full enumeration, restricted
// to the candidate set.
func TestMatchCandidatesAgreesWithMatchWhere(t *testing.T) {
	d, props := genProps(t, 4)
	store := getStore(t)
	m, err := core.NewMatcher(store, core.DefaultOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	m.ComputeFeatures(context.Background(), d)
	pairs := core.TrainingPairs(props, 2, mathx.NewRand(1))
	if _, err := m.Train(context.Background(), pairs); err != nil {
		t.Fatal(err)
	}
	cands := Union{NewTokenBlocker(), NewEmbeddingBlocker(store)}.Candidates(props)

	blocked := map[dataset.Pair]float64{}
	if err := m.MatchCandidates(context.Background(), cands, func(sp core.ScoredPair) {
		blocked[dataset.Pair{A: sp.A, B: sp.B}.Canonical()] = sp.Score
	}); err != nil {
		t.Fatal(err)
	}
	if len(blocked) != len(cands) {
		t.Fatalf("scored %d of %d candidates", len(blocked), len(cands))
	}
	checked := 0
	if err := m.MatchAll(context.Background(), props, func(sp core.ScoredPair) {
		p := dataset.Pair{A: sp.A, B: sp.B}.Canonical()
		if s, ok := blocked[p]; ok {
			if s != sp.Score {
				t.Fatalf("score mismatch on %v: %v vs %v", p, s, sp.Score)
			}
			checked++
		}
	}); err != nil {
		t.Fatal(err)
	}
	if checked != len(cands) {
		t.Fatalf("cross-checked %d of %d candidates", checked, len(cands))
	}
}
