// Package blocking provides candidate generation for property matching at
// scale. Classifying every cross-source pair is quadratic in the property
// count — acceptable for the paper's datasets, prohibitive beyond them. A
// Blocker proposes a candidate subset that (ideally) contains all true
// matches; the matcher then scores only candidates.
//
// Three complementary blockers are provided, mirroring standard entity-
// resolution practice:
//
//   - TokenBlocker: candidates share at least one name token, with very
//     frequent tokens (stop-tokens) ignored so "the"-like tokens do not
//     make everything a candidate of everything;
//   - EmbeddingBlocker: for each property, the k nearest properties of
//     other sources by name-embedding cosine — catching synonym matches
//     that share no token, exactly the pairs LEAPME's embeddings exist
//     for. Exact (scans every pair), so it doubles as the recall oracle;
//   - ANNBlocker: the same k-nearest-by-cosine proposal served from an
//     internal/index structure instead of a full scan — sub-linear per
//     query, deterministic, and the one to use beyond paper-scale
//     corpora.
//
// Union token and embedding (or ANN) blocking for high pair-completeness
// at a large reduction ratio; Quality quantifies both.
package blocking

import (
	"sort"

	"leapme/internal/dataset"
	"leapme/internal/embedding"
	"leapme/internal/mathx"
	"leapme/internal/text"
)

// Blocker proposes candidate cross-source pairs.
type Blocker interface {
	// Candidates returns the proposed pairs (canonicalised, unique).
	Candidates(props []dataset.Property) []dataset.Pair
	// Name identifies the blocker.
	Name() string
}

// TokenBlocker proposes pairs sharing at least one informative name token.
type TokenBlocker struct {
	// MaxTokenFreq drops tokens carried by more than this fraction of
	// properties (default 0.1): such tokens are schema stop-words
	// ("product", "item") whose blocks would be quadratic anyway.
	MaxTokenFreq float64
	// MaxBlockSize is an absolute cap on block membership (default 64).
	// The frequency limit alone scales with the corpus — at 100k
	// properties a 0.1 fraction still admits 10k-member blocks, i.e.
	// ~50M pairs from a single token — so an absolute ceiling is what
	// actually bounds the blocker's output. Blocks above the cap are
	// dropped as stop-tokens.
	MaxBlockSize int
}

// NewTokenBlocker returns a TokenBlocker with default settings.
func NewTokenBlocker() *TokenBlocker { return &TokenBlocker{MaxTokenFreq: 0.1, MaxBlockSize: 64} }

// Name implements Blocker.
func (b *TokenBlocker) Name() string { return "token" }

// Candidates implements Blocker.
func (b *TokenBlocker) Candidates(props []dataset.Property) []dataset.Pair {
	maxFreq := b.MaxTokenFreq
	if maxFreq <= 0 {
		maxFreq = 0.1
	}
	// The frequency limit floors at 2 so tiny corpora (where
	// maxFreq·n rounds to 0 or 1) still form pairs at all, and is
	// capped by MaxBlockSize so no single token can contribute a
	// quadratic block on large corpora.
	limit := int(maxFreq * float64(len(props)))
	if limit < 2 {
		limit = 2
	}
	maxBlock := b.MaxBlockSize
	if maxBlock <= 0 {
		maxBlock = 64
	}
	if limit > maxBlock {
		limit = maxBlock
	}
	blocks := map[string][]int{}
	for i, p := range props {
		seen := map[string]bool{}
		for _, tok := range text.Tokenize(p.Name) {
			if !seen[tok] {
				seen[tok] = true
				blocks[tok] = append(blocks[tok], i)
			}
		}
	}
	pairSet := map[dataset.Pair]bool{}
	for _, members := range blocks {
		if len(members) > limit {
			continue // stop-token
		}
		for x := 0; x < len(members); x++ {
			for y := x + 1; y < len(members); y++ {
				a, b := props[members[x]], props[members[y]]
				if a.Source == b.Source {
					continue
				}
				pairSet[dataset.Pair{A: a.Key(), B: b.Key()}.Canonical()] = true
			}
		}
	}
	return sortedPairs(pairSet)
}

// EmbeddingBlocker proposes, for each property, its K nearest
// other-source properties by name-embedding cosine similarity.
type EmbeddingBlocker struct {
	Store *embedding.Store
	// K nearest neighbours per property (default 10).
	K int
	// MinSim drops neighbours below this cosine similarity (default 0.3).
	MinSim float64
}

// NewEmbeddingBlocker returns an EmbeddingBlocker with default settings.
func NewEmbeddingBlocker(store *embedding.Store) *EmbeddingBlocker {
	return &EmbeddingBlocker{Store: store, K: 10, MinSim: 0.3}
}

// Name implements Blocker.
func (b *EmbeddingBlocker) Name() string { return "embedding" }

// Candidates implements Blocker.
func (b *EmbeddingBlocker) Candidates(props []dataset.Property) []dataset.Pair {
	k := b.K
	if k <= 0 {
		k = 10
	}
	// Encode and unit-normalize once per property, not once per pair:
	// with normalized vectors cosine is a plain dot product, which turns
	// the O(n²) scan's per-pair cost from two norms + a dot into a dot.
	vecs := make([][]float64, len(props))
	for i, p := range props {
		vecs[i] = mathx.Normalized(b.Store.EncodePhrase(p.Name))
	}
	type cand struct {
		idx int
		sim float64
	}
	pairSet := map[dataset.Pair]bool{}
	for i := range props {
		cands := make([]cand, 0, len(props))
		for j := range props {
			if i == j || props[i].Source == props[j].Source {
				continue
			}
			sim := mathx.Dot(vecs[i], vecs[j])
			if sim >= b.MinSim {
				cands = append(cands, cand{idx: j, sim: sim})
			}
		}
		sort.Slice(cands, func(x, y int) bool {
			//lint:allow floateq sort tie-break must be an exact total order; a tolerance comparator is not a strict weak ordering
			if cands[x].sim != cands[y].sim {
				return cands[x].sim > cands[y].sim
			}
			return cands[x].idx < cands[y].idx
		})
		if len(cands) > k {
			cands = cands[:k]
		}
		for _, c := range cands {
			pairSet[dataset.Pair{A: props[i].Key(), B: props[c.idx].Key()}.Canonical()] = true
		}
	}
	return sortedPairs(pairSet)
}

// Union combines blockers; a pair is a candidate if any blocker proposes
// it.
type Union []Blocker

// Name implements Blocker.
func (u Union) Name() string {
	n := "union("
	for i, b := range u {
		if i > 0 {
			n += "+"
		}
		n += b.Name()
	}
	return n + ")"
}

// Candidates implements Blocker.
func (u Union) Candidates(props []dataset.Property) []dataset.Pair {
	pairSet := map[dataset.Pair]bool{}
	for _, b := range u {
		for _, p := range b.Candidates(props) {
			pairSet[p] = true
		}
	}
	return sortedPairs(pairSet)
}

// MergePairs unions candidate lists into one deduplicated, sorted list —
// what Union does, for callers that already hold the per-blocker results
// (e.g. because one list came from a context-aware ANN query).
func MergePairs(lists ...[]dataset.Pair) []dataset.Pair {
	pairSet := map[dataset.Pair]bool{}
	for _, list := range lists {
		for _, p := range list {
			pairSet[p.Canonical()] = true
		}
	}
	return sortedPairs(pairSet)
}

// Quality measures a candidate set: pair completeness (the recall of
// ground-truth matches among candidates — the blocker's ceiling on any
// downstream matcher's recall) and reduction ratio (the fraction of
// cross-source pairs pruned).
type Quality struct {
	PairCompleteness float64
	ReductionRatio   float64
	Candidates       int
	TotalPairs       int
}

// Measure computes blocking quality against the ground truth of props.
func Measure(cands []dataset.Pair, props []dataset.Property) Quality {
	truth := dataset.MatchingPairs(props)
	truthSet := map[dataset.Pair]bool{}
	for _, p := range truth {
		truthSet[p] = true
	}
	found := 0
	for _, c := range cands {
		if truthSet[c.Canonical()] {
			found++
		}
	}
	total := 0
	dataset.CrossSourcePairs(props, func(a, b dataset.Property) bool {
		total++
		return true
	})
	q := Quality{Candidates: len(cands), TotalPairs: total}
	if len(truth) > 0 {
		q.PairCompleteness = float64(found) / float64(len(truth))
	}
	if total > 0 {
		q.ReductionRatio = 1 - float64(len(cands))/float64(total)
	}
	return q
}

func sortedPairs(set map[dataset.Pair]bool) []dataset.Pair {
	out := make([]dataset.Pair, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.A.Source != b.A.Source {
			return a.A.Source < b.A.Source
		}
		if a.A.Name != b.A.Name {
			return a.A.Name < b.A.Name
		}
		if a.B.Source != b.B.Source {
			return a.B.Source < b.B.Source
		}
		return a.B.Name < b.B.Name
	})
	return out
}
