package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// Fuzzers for the HTTP JSON decoding paths. The server must never panic
// on hostile bodies, must answer every request with a well-formed status
// (2xx or 4xx — a 5xx here would mean malformed input reached the model
// layer), and must keep error responses as JSON.
//
// The corpus seeds cover the interesting decode branches: valid
// requests, unknown fields, wrong JSON types, truncated documents,
// oversized pair lists, and non-UTF-8 noise.

// fuzzServer builds one shared server for a fuzz run. Fuzz targets must
// not call f.Fatal from inside the worker, so construction happens on
// the *testing.F before the first f.Fuzz call.
func fuzzServer(f *testing.F) *httptest.Server {
	f.Helper()
	s, _ := newTestServer(f, nil)
	ts := httptest.NewServer(s.Handler())
	f.Cleanup(ts.Close)
	return ts
}

// postFuzz sends body to path and applies the shared invariants.
func postFuzz(t *testing.T, ts *httptest.Server, path string, body []byte) {
	resp, err := ts.Client().Post(ts.URL+path, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("%s: transport error: %v", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 500 {
		t.Fatalf("%s: status %d on body %q — server-side failure from client input",
			path, resp.StatusCode, truncate(body))
	}
	ct := resp.Header.Get("Content-Type")
	if !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("%s: content type %q, want application/json", path, ct)
	}
	var sink any
	if err := json.NewDecoder(resp.Body).Decode(&sink); err != nil {
		t.Fatalf("%s: status %d with non-JSON body: %v", path, resp.StatusCode, err)
	}
	if resp.StatusCode != http.StatusOK {
		// Error envelope: {"error": "..."} with a non-empty message.
		m, ok := sink.(map[string]any)
		if !ok {
			t.Fatalf("%s: status %d error body is not an object: %v", path, resp.StatusCode, sink)
		}
		if msg, _ := m["error"].(string); msg == "" {
			t.Fatalf("%s: status %d without an error message: %v", path, resp.StatusCode, m)
		}
	}
}

func truncate(b []byte) []byte {
	if len(b) > 200 {
		return b[:200]
	}
	return b
}

func FuzzMatchRequest(f *testing.F) {
	ts := fuzzServer(f)
	f.Add([]byte(`{"pairs":[{"a":{"name":"zoom","values":["4x"]},"b":{"name":"optical zoom"}}]}`))
	f.Add([]byte(`{"model":"default","threshold":0.5,"pairs":[]}`))
	f.Add([]byte(`{"pairs":[{"a":{"name":""},"b":{"name":""}}]}`))
	f.Add([]byte(`{"unknown_field":1}`))
	f.Add([]byte(`{"pairs":"not-an-array"}`))
	f.Add([]byte(`{"threshold":"high"}`))
	f.Add([]byte(`{"pairs":[{"a":{"name":"x"`)) // truncated
	f.Add([]byte(`null`))
	f.Add([]byte(``))
	f.Add([]byte("\x00\xff\xfe{"))
	f.Add([]byte(`{"model":"no-such-model","pairs":[{"a":{"name":"a"},"b":{"name":"b"}}]}`))
	f.Fuzz(func(t *testing.T, body []byte) {
		postFuzz(t, ts, "/v1/match", body)
	})
}

func FuzzMatchAllRequest(f *testing.F) {
	ts := fuzzServer(f)
	f.Add([]byte(`{"sources":{"s1":[{"name":"zoom","values":["4x"]}],"s2":[{"name":"optical zoom"}]}}`))
	f.Add([]byte(`{"sources":{},"top":3}`))
	f.Add([]byte(`{"sources":{"s1":[]},"blocking":true}`))
	f.Add([]byte(`{"sources":null}`))
	f.Add([]byte(`{"sources":{"s1":"oops"}}`))
	f.Add([]byte(`{"top":-1,"sources":{"a":[{"name":"n"}],"b":[{"name":"n"}]}}`))
	f.Add([]byte(`{"sources":{"a":[{"name":"n","values"`)) // truncated
	f.Add([]byte(`[]`))
	f.Add([]byte(``))
	f.Add([]byte("\xef\xbb\xbf{}"))
	f.Fuzz(func(t *testing.T, body []byte) {
		postFuzz(t, ts, "/v1/match/all", body)
	})
}
