package serve

import (
	"fmt"
	"testing"

	"leapme/internal/features"
)

func TestPropDigestFraming(t *testing.T) {
	base := propDigest("ab", []string{"c"})
	cases := []struct {
		name   string
		values []string
	}{
		{"a", []string{"bc"}},            // boundary shifted between name and value
		{"ab", []string{"c", ""}},        // trailing empty value
		{"ab", nil},                      // no values
		{"abc", nil},                     // values folded into name
		{"ab", []string{"cx"}},           // different content
	}
	for _, c := range cases {
		if propDigest(c.name, c.values) == base {
			t.Errorf("digest(%q, %q) collides with digest(\"ab\", [\"c\"])", c.name, c.values)
		}
	}
	if propDigest("ab", []string{"c"}) != base {
		t.Error("digest is not deterministic")
	}
	if propDigest("a", []string{"b", "c"}) == propDigest("a", []string{"bc"}) {
		t.Error("value boundaries not framed")
	}
}

func TestFeatureCacheLRU(t *testing.T) {
	c := newFeatureCache(2)
	p := func(i int) *features.Prop { return &features.Prop{Name: fmt.Sprintf("p%d", i)} }
	k := func(i int) [32]byte { return propDigest(fmt.Sprintf("k%d", i), nil) }

	if _, ok := c.Get(k(1)); ok {
		t.Fatal("empty cache hit")
	}
	c.Put(k(1), p(1))
	c.Put(k(2), p(2))
	if got, ok := c.Get(k(1)); !ok || got.Name != "p1" {
		t.Fatal("k1 should be cached")
	}
	// k1 is now most recent; inserting k3 must evict k2.
	c.Put(k(3), p(3))
	if _, ok := c.Get(k(2)); ok {
		t.Error("k2 should have been evicted (LRU)")
	}
	if _, ok := c.Get(k(1)); !ok {
		t.Error("k1 should survive (recently used)")
	}
	if _, ok := c.Get(k(3)); !ok {
		t.Error("k3 should be cached")
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d, want 2", c.Len())
	}
	if c.Hits() != 3 || c.Misses() != 2 {
		t.Errorf("hits/misses = %d/%d, want 3/2", c.Hits(), c.Misses())
	}

	// Re-inserting an existing key replaces the value without growing.
	c.Put(k(3), p(33))
	if got, _ := c.Get(k(3)); got.Name != "p33" {
		t.Error("re-insert did not replace value")
	}
	if c.Len() != 2 {
		t.Errorf("Len after re-insert = %d, want 2", c.Len())
	}
}

func TestFeatureCacheDisabled(t *testing.T) {
	c := newFeatureCache(-1)
	c.Put(propDigest("x", nil), &features.Prop{Name: "x"})
	if _, ok := c.Get(propDigest("x", nil)); ok {
		t.Error("disabled cache returned a hit")
	}
	if c.Len() != 0 {
		t.Error("disabled cache stored an entry")
	}
}
