package serve

// Satellite to the chaos suite: the SIGHUP hot-reload path raced against
// live traffic when the file on disk is bad. TestHotSwapUnderLoad covers
// the happy path (every reload succeeds); this test covers the unhappy
// one — reloads keep failing while /v1/match is hammered, and the old
// snapshot must keep serving without a single dropped request. Run under
// -race (make test-race / test-chaos) this also proves the registry swap
// is data-race free.

import (
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestReloadFailureUnderLoad(t *testing.T) {
	s, path := newTestServer(t, func(c *Config) { c.Workers = 4 })
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	pairs := somePairs(t, 4)
	_, raw := postJSON(t, ts, "/v1/match", matchRequest{Pairs: pairs})
	wantCRC := decodeMatch(t, raw).CRC

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var requests, failures atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				resp, raw := postJSON(t, ts, "/v1/match", matchRequest{Pairs: pairs})
				requests.Add(1)
				if resp.StatusCode != http.StatusOK {
					failures.Add(1)
					t.Errorf("request failed during bad reload: %d %s", resp.StatusCode, raw)
					return
				}
				mr := decodeMatch(t, raw)
				if mr.CRC != wantCRC {
					failures.Add(1)
					t.Errorf("model CRC drifted to %s while reloads were failing", mr.CRC)
					return
				}
				for i, r := range mr.Results {
					if r.Error != "" {
						failures.Add(1)
						t.Errorf("pair %d failed during bad reload: %s", i, r.Error)
					}
				}
			}
		}()
	}

	// Cycle the on-disk file through broken shapes — truncated (bad CRC),
	// garbage (bad magic), empty — reloading concurrently with the load
	// generators. Every Reload must fail; none may disturb serving.
	fixture(t)
	broken := [][]byte{
		fixModelA[:len(fixModelA)/2],
		[]byte("not a leapme model at all"),
		{},
	}
	for i := 0; i < 6; i++ {
		time.Sleep(15 * time.Millisecond)
		if err := os.WriteFile(path, broken[i%len(broken)], 0o644); err != nil {
			t.Fatal(err)
		}
		if err := s.Reload(); err == nil {
			t.Fatalf("reload %d of a broken model file succeeded", i)
		}
	}
	cancel()
	wg.Wait()
	if requests.Load() == 0 {
		t.Fatal("load generator made no requests")
	}
	if failures.Load() != 0 {
		t.Fatalf("%d of %d requests failed across failing reloads", failures.Load(), requests.Load())
	}

	// A final good write proves the path recovers once the file is fixed
	// (after the generators stop: the swap changes the served CRC).
	if err := os.WriteFile(path, fixModelB, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := s.Reload(); err != nil {
		t.Fatalf("reload of the repaired file failed: %v", err)
	}
	resp, raw := postJSON(t, ts, "/v1/match", matchRequest{Pairs: pairs})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("request after recovery reload: %d %s", resp.StatusCode, raw)
	}
	if got := decodeMatch(t, raw).CRC; got == wantCRC {
		t.Error("recovery reload did not swap in the new model version")
	}
}
