// Package serve turns a trained LEAPME matcher into a long-lived
// matching service: an HTTP JSON API backed by a hot-swappable model
// registry, a micro-batching scorer and a per-model feature cache. It is
// the deployment shape the paper's downstream consumers (schema and
// entity integration pipelines) assume — a match oracle that stays warm
// instead of re-loading the model and re-featurizing every property on
// each invocation.
//
// # Endpoints
//
//	POST /v1/match      score explicit property pairs
//	POST /v1/match/all  cross-source matching with optional blocking
//	GET  /v1/models     list loaded models (core.ModelInfo per model)
//	POST /v1/models     {"activate": name} or {"reload": true}
//	GET  /healthz       liveness (always 200 while the process runs)
//	GET  /readyz        readiness (200 once a model is active; 503 when
//	                    draining or when the admission queue is above its
//	                    high-water mark — "degraded")
//	GET  /metrics       Prometheus text exposition
//
// # Model registry
//
// The Registry maps names to immutable *Model values. A Model bundles a
// core.Scorer snapshot (weights deep-copied out of the matcher), a pool
// of per-worker scorer clones, the file's core.ModelInfo and a feature
// cache. Handlers resolve their Model pointer once at request arrival;
// Load and Activate replace map entries and swing an atomic active
// pointer, so a hot swap never mutates a model an in-flight request is
// holding — old versions serve until their last request finishes, then
// fall to the garbage collector. Reload re-reads every model's file from
// disk (the SIGHUP path); a model that fails to re-load keeps serving its
// previous version and the error is reported, never a gap in service.
//
// # Micro-batching scorer
//
// Concurrent pair-scoring requests are coalesced by a dispatcher into
// batches of at most MaxBatch pairs, flushed early after MaxWait (the
// classic size-or-deadline micro-batch policy, default 32 pairs / 2 ms).
// A pool of workers executes batches; each worker checks a scorer clone
// out of the request's model, so batched pairs share one pair-vector
// buffer and one network forward scratch — the batched forward pass —
// while distinct workers score in parallel on independent clones. Every
// pair runs as one guard unit: a panic while scoring (a poisoned input)
// is recovered by internal/guard, fails only that request with a 500,
// and is counted in the metrics; the server and the rest of the batch
// keep going.
//
// # Feature cache
//
// Featurizing a property is the expensive half of serving (hundreds of
// dimensions aggregated over instance values plus name embeddings), and
// real workloads repeat properties across requests. Each Model owns an
// LRU cache of *features.Prop keyed by the SHA-256 digest of the
// property's content (name and values, length-framed). Keying the cache
// per model version — a fresh cache per load — keeps cached vectors
// trivially consistent with the active featurizer; cached and uncached
// scoring are bit-identical because the cache stores the immutable Prop
// itself, not a recomputation.
//
// # Admission control and deadlines
//
// In front of the batcher sits a bounded admission gate counting pairs
// (the batcher's unit of work) across all in-flight requests. A request
// is admitted all-or-nothing: if its pairs would push the count past
// Config.MaxQueuedPairs it sheds immediately with a typed 429 —
// {"error", "code": "overloaded", "retry_after_ms"} plus a Retry-After
// header — so the queue is bounded by construction, never by OOM. Above
// HighWaterFrac of the bound /readyz degrades to 503 while scoring
// continues, steering load balancers away before shedding starts; the
// gauges leapme_queue_depth and leapme_degraded expose the same state.
//
// Every request also runs under a deadline budget: Config.DefaultDeadline
// unless the client sends X-Leapme-Deadline-Ms (clamped to MaxDeadline).
// The budget context threads through Enqueue and Await, so the waiters of
// a slow or stalled batch answer a typed 504 ("deadline_exceeded") while
// the worker finishes into buffered response channels — an abandoned
// waiter can never wedge the pool. All error answers share the typed JSON
// vocabulary; internal/client consumes it for retry decisions.
//
// # Fault injection
//
// Config.Chaos accepts an *chaos.Injector (nil in production — the hooks
// cost one nil check). The serving layer exposes three points: PointScore
// inside each pair's guard unit (panic isolation), PointBatch before each
// batch (latency/stall), and PointReload around model-file reads (corrupt
// bytes failing the CRC). The chaos test suite (`make test-chaos`) drives
// these under -race to prove the admission, deadline, reload and drain
// invariants end-to-end; injections are seeded and replay deterministically.
//
// # Shutdown
//
// Close flips readiness off, stops admitting scoring work, drains queued
// batches and waits for workers — the counterpart to http.Server's
// connection drain. Scoring work submitted after Close answers a typed
// 503 ("draining"); already-admitted pairs still get their answers.
// cmd/leapme-serve wires both to SIGINT/SIGTERM with a drain deadline and
// exits 130 on signal, matching the CLI convention established in
// cmd/leapme.
package serve
