package serve

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"leapme/internal/core"
	"leapme/internal/dataset"
	"leapme/internal/domain"
	"leapme/internal/embedding"
	"leapme/internal/mathx"
)

// The fixture trains one GloVe store and two model versions once and
// shares them across the package's tests (training dominates test time).
var (
	fixOnce  sync.Once
	fixErr   error
	fixStore *embedding.Store
	fixData  *dataset.Dataset
	// fixModelA and fixModelB are two serialised trained models (different
	// seeds) over fixStore — B stands in for "a newer version" in hot-swap
	// tests.
	fixModelA, fixModelB []byte
)

func trainModelBytes(store *embedding.Store, d *dataset.Dataset, seed int64) ([]byte, error) {
	m, err := core.NewMatcher(store, core.DefaultOptions(seed))
	if err != nil {
		return nil, err
	}
	if err := m.ComputeFeatures(context.Background(), d); err != nil {
		return nil, err
	}
	pairs := core.TrainingPairs(d.Props, 2, mathx.NewRand(seed))
	if _, err := m.Train(context.Background(), pairs); err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := m.WriteModel(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func fixture(t testing.TB) {
	t.Helper()
	fixOnce.Do(func() {
		corpus := domain.Corpus([]*domain.Category{domain.Cameras()},
			domain.CorpusConfig{SentencesPerProp: 60, Seed: 1})
		cfg := embedding.DefaultGloVeConfig()
		cfg.Dim = 32
		cfg.Epochs = 25
		fixStore, fixErr = embedding.TrainGloVe(corpus, cfg)
		if fixErr != nil {
			return
		}
		fixData, fixErr = dataset.Generate(dataset.GenConfig{
			Name:           "serve-test",
			Category:       domain.Cameras(),
			NumSources:     4,
			SharedPresence: 0.8,
			CanonicalBias:  0.55,
			SplitProb:      0.05,
			NoiseProps:     6,
			MinEntities:    10,
			MaxEntities:    14,
			MissingRate:    0.3,
			Seed:           7,
		})
		if fixErr != nil {
			return
		}
		if fixModelA, fixErr = trainModelBytes(fixStore, fixData, 41); fixErr != nil {
			return
		}
		fixModelB, fixErr = trainModelBytes(fixStore, fixData, 42)
	})
	if fixErr != nil {
		t.Fatalf("fixture: %v", fixErr)
	}
}

// writeModelFile writes model bytes into dir and returns the path.
func writeModelFile(t testing.TB, dir, name string, data []byte) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// newTestServer builds a Server over a fresh temp copy of model A (named
// "default") and registers cleanup. Returns the server and the model path
// (so tests can overwrite it to simulate a new version landing on disk).
func newTestServer(t testing.TB, mut func(*Config)) (*Server, string) {
	t.Helper()
	fixture(t)
	path := writeModelFile(t, t.TempDir(), "model.leapme", fixModelA)
	cfg := Config{
		Store:  fixStore,
		Models: []ModelSource{{Name: "default", Path: path}},
	}
	if mut != nil {
		mut(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s, path
}

// somePairs returns up to n cross-source (name, values) pairs from the
// fixture dataset, as wire-level pairSpecs.
func somePairs(t testing.TB, n int) []pairSpec {
	t.Helper()
	fixture(t)
	values := fixData.InstancesByProperty()
	var out []pairSpec
	dataset.CrossSourcePairs(fixData.Props, func(a, b dataset.Property) bool {
		out = append(out, pairSpec{
			A: propSpec{Name: a.Name, Values: values[a.Key()]},
			B: propSpec{Name: b.Name, Values: values[b.Key()]},
		})
		return len(out) < n
	})
	if len(out) == 0 {
		t.Fatal("fixture dataset produced no cross-source pairs")
	}
	return out
}
