package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"leapme/internal/chaos"
	"leapme/internal/features"
	"leapme/internal/guard"
)

// ErrDraining is returned for scoring work submitted after Close began.
var ErrDraining = errors.New("serve: server is draining")

// span is one request's worth of pairs enqueued as a unit. Results land
// in the span's own slices, indexed by pair; the resp channel carries
// one pair index per completed pair and is buffered for the whole span,
// so a worker never blocks on a caller that gave up — the zombie-drain
// contract the admission gate depends on.
//
// A span replaces the old per-pair handle: where a 512-pair request
// used to allocate 512 pending structs and 512 response channels, it
// now costs one span, two result slices and one channel — the fixed
// per-request allocation profile the serve alloc-regression test pins.
type span struct {
	model  *Model
	as, bs []*features.Prop
	// unit names the i-th pair in error messages. It is only invoked on
	// the failure path, so handlers pass a closure and the steady state
	// never formats a string. nil falls back to "pair %d".
	unit   func(i int) string
	scores []float64
	errs   []error
	resp   chan int // buffered len(as)
}

func (sp *span) n() int { return len(sp.as) }

func (sp *span) unitName(i int) string {
	if sp.unit != nil {
		return sp.unit(i)
	}
	return fmt.Sprintf("pair %d", i)
}

// next blocks until one more pair of the span completes, returning its
// index, or until ctx ends (ok=false). Results arrive in completion
// order, not submission order.
func (sp *span) next(ctx context.Context) (idx int, ok bool) {
	select {
	case idx = <-sp.resp:
		return idx, true
	case <-ctx.Done():
		return 0, false
	}
}

// pending is the single-pair compatibility handle: a one-pair span.
type pending struct {
	sp *span
}

// pairRef locates one pair of a span inside a dispatch batch. Batches
// are value slices drawn from a freelist, so batching a pair costs no
// heap allocation.
type pairRef struct {
	sp  *span
	idx int
}

// batcher coalesces concurrent pair-scoring requests into micro-batches:
// a dispatcher collects up to maxBatch pairs — splitting large spans and
// packing small ones — flushing early after maxWait, and a worker pool
// executes batches on per-model scorer clones. Each pair is one guard
// unit — a panic poisons only that pair's slot in its span.
type batcher struct {
	maxBatch int
	maxWait  time.Duration
	met      *Metrics
	chaos    *chaos.Injector // nil in production: inert hooks

	mu     sync.RWMutex // guards closed vs. queue sends
	closed bool
	queue  chan *span
	work   chan []pairRef
	bufs   chan []pairRef // batch-buffer freelist
	wg     sync.WaitGroup // dispatcher + workers
}

// newBatcher starts the dispatcher and workers worker goroutines. inj
// arms the chaos hooks (PointBatch before each batch, PointScore inside
// each pair's guard unit); nil leaves them inert.
func newBatcher(workers, maxBatch int, maxWait time.Duration, met *Metrics, inj *chaos.Injector) *batcher {
	if workers <= 0 {
		workers = 4
	}
	if maxBatch <= 0 {
		maxBatch = 32
	}
	if maxWait <= 0 {
		maxWait = 2 * time.Millisecond
	}
	b := &batcher{
		maxBatch: maxBatch,
		maxWait:  maxWait,
		met:      met,
		chaos:    inj,
		queue:    make(chan *span, workers*maxBatch),
		work:     make(chan []pairRef, workers),
		bufs:     make(chan []pairRef, workers+2),
	}
	b.wg.Add(1)
	//lint:allow guardgo scoring panics are guard.Run-isolated per pair in runBatch; a panic in the pool skeleton itself must crash rather than hang Close on a dead dispatcher
	go b.dispatch()
	for i := 0; i < workers; i++ {
		b.wg.Add(1)
		//lint:allow guardgo same contract as the dispatcher: per-pair isolation lives in runBatch
		go b.worker()
	}
	return b
}

// EnqueueSpan submits len(as) pairs for scoring as one span. Admission
// is all-or-nothing: the span is either fully queued or not at all. The
// model pointer pins the version every pair will be scored with; unit
// (optional) names pairs in error messages and runs only on failures.
func (b *batcher) EnqueueSpan(ctx context.Context, md *Model, as, bs []*features.Prop, unit func(i int) string) (*span, error) {
	if len(as) != len(bs) || len(as) == 0 {
		return nil, fmt.Errorf("serve: bad span shape: %d × %d pairs", len(as), len(bs))
	}
	sp := &span{
		model:  md,
		as:     as,
		bs:     bs,
		unit:   unit,
		scores: make([]float64, len(as)),
		errs:   make([]error, len(as)),
		resp:   make(chan int, len(as)),
	}
	b.mu.RLock()
	defer b.mu.RUnlock()
	if b.closed {
		return nil, ErrDraining
	}
	select {
	case b.queue <- sp:
		return sp, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Enqueue submits one pair for scoring and returns a handle to await —
// the single-pair face of EnqueueSpan.
func (b *batcher) Enqueue(ctx context.Context, md *Model, pa, pb *features.Prop, unit string) (*pending, error) {
	sp, err := b.EnqueueSpan(ctx, md, []*features.Prop{pa}, []*features.Prop{pb},
		func(int) string { return unit })
	if err != nil {
		return nil, err
	}
	return &pending{sp: sp}, nil
}

// Await blocks until the pair is scored or ctx ends.
func (b *batcher) Await(ctx context.Context, p *pending) (float64, error) {
	score, err, _ := b.AwaitDelivered(ctx, p)
	return score, err
}

// AwaitDelivered is Await plus provenance: delivered reports whether the
// worker's result actually landed. false means the wait was abandoned by
// ctx — the pair still occupies the pipeline and its (buffered) result
// will land later, which is what lets an abandoning caller hand the
// handle to a background drain instead of leaking accounting.
func (b *batcher) AwaitDelivered(ctx context.Context, p *pending) (score float64, err error, delivered bool) {
	idx, ok := p.sp.next(ctx)
	if !ok {
		return 0, ctx.Err(), false
	}
	return p.sp.scores[idx], p.sp.errs[idx], true
}

// Score is Enqueue+Await for a single pair.
func (b *batcher) Score(ctx context.Context, md *Model, pa, pb *features.Prop, unit string) (float64, error) {
	p, err := b.Enqueue(ctx, md, pa, pb, unit)
	if err != nil {
		return 0, err
	}
	return b.Await(ctx, p)
}

// getBuf takes a batch buffer off the freelist, or grows the pool.
func (b *batcher) getBuf() []pairRef {
	select {
	case buf := <-b.bufs:
		return buf[:0]
	default:
		return make([]pairRef, 0, b.maxBatch)
	}
}

// putBuf returns a batch buffer to the freelist (dropping it when the
// freelist is full, which only happens transiently during shutdown).
func (b *batcher) putBuf(buf []pairRef) {
	select {
	case b.bufs <- buf:
	default:
	}
}

// dispatch implements the size-or-deadline batching policy over spans:
// the current batch fills pair by pair, splitting a span larger than
// maxBatch across batches and packing small spans together, and flushes
// when full or maxWait after its first pair arrived. One timer is reused
// across batches.
func (b *batcher) dispatch() {
	defer b.wg.Done()
	defer close(b.work)
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	defer timer.Stop()
	var cur *span // partially dispatched span
	var off int
	for {
		if cur == nil {
			sp, ok := <-b.queue
			if !ok {
				return
			}
			cur, off = sp, 0
		}
		batch := b.getBuf()
		timer.Reset(b.maxWait)
		fired := false
	fill:
		for {
			for cur != nil && len(batch) < b.maxBatch {
				batch = append(batch, pairRef{sp: cur, idx: off})
				off++
				if off == cur.n() {
					cur = nil
				}
			}
			if len(batch) == b.maxBatch {
				break fill
			}
			select {
			case sp, ok := <-b.queue:
				if !ok {
					break fill
				}
				cur, off = sp, 0
			case <-timer.C:
				fired = true
				break fill
			}
		}
		if !fired && !timer.Stop() {
			<-timer.C
		}
		b.work <- batch
	}
}

// worker executes batches: contiguous same-model runs share one checked-
// out scorer clone, so a coalesced batch is a true batched pass through
// one network. Finished batch buffers go back to the freelist.
func (b *batcher) worker() {
	defer b.wg.Done()
	for batch := range b.work {
		b.runBatch(batch)
		b.putBuf(batch)
	}
}

// runBatch scores one coalesced batch: contiguous same-model runs share
// one checked-out scorer clone so the kernel sees true batches. This is
// the span protocol's hot loop — 0 marginal allocations per pair.
//
//lint:hotpath gated by TestRunBatchFixedAllocs
func (b *batcher) runBatch(batch []pairRef) {
	if b.met != nil {
		b.met.Batches.Add(1)
		b.met.BatchPairs.Add(int64(len(batch)))
	}
	// Chaos hook: Delay/Stall here holds this worker (and its waiters'
	// deadlines start firing) while the rest of the pool keeps serving.
	b.chaos.Inject(chaos.PointBatch)
	for i := 0; i < len(batch); {
		j := i
		for j < len(batch) && batch[j].sp.model == batch[i].sp.model {
			j++
		}
		sc := batch[i].sp.model.acquire()
		// One closure per model run, with the pair threaded through the
		// captured variables — the hot loop itself allocates nothing.
		var (
			pa, pb *features.Prop
			s      float64
		)
		//lint:allow hotalloc one closure per model RUN, not per pair: TestRunBatchFixedAllocs pins that the per-pair marginal cost stays zero
		scoreOne := func() error {
			// Chaos hook inside the guard unit: an injected panic must be
			// isolated to this one pair, like any scorer bug.
			if e := b.chaos.Inject(chaos.PointScore); e != nil {
				return e
			}
			var e error
			s, e = sc.Score(pa, pb)
			return e
		}
		for _, ref := range batch[i:j] {
			pa, pb, s = ref.sp.as[ref.idx], ref.sp.bs[ref.idx], 0
			err := guard.Run(scoreOne)
			if err != nil {
				//lint:allow hotalloc failure path only: a pair that errored already left the zero-alloc contract, and naming it is worth the format call
				err = fmt.Errorf("serve: scoring %s: %w", ref.sp.unitName(ref.idx), err)
				if b.met != nil {
					b.met.ScoreFailures.Add(1)
				}
			} else if b.met != nil {
				b.met.PairsScored.Add(1)
			}
			ref.sp.scores[ref.idx] = s
			ref.sp.errs[ref.idx] = err
			// The channel send publishes the slice writes above to the
			// receiver (happens-before), and the buffer is sized for the
			// whole span, so this never blocks.
			ref.sp.resp <- ref.idx
		}
		batch[i].sp.model.release(sc)
		i = j
	}
}

// Close stops admitting work, drains queued spans through the workers
// and waits for them — every already-enqueued pair still gets its
// answer.
func (b *batcher) Close() {
	b.mu.Lock()
	if !b.closed {
		b.closed = true
		close(b.queue)
	}
	b.mu.Unlock()
	b.wg.Wait()
}
