package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"leapme/internal/chaos"
	"leapme/internal/features"
	"leapme/internal/guard"
)

// ErrDraining is returned for scoring work submitted after Close began.
var ErrDraining = errors.New("serve: server is draining")

// scoreResult is the outcome of one pair.
type scoreResult struct {
	score float64
	err   error
}

// pending is one enqueued pair awaiting its score. The response channel
// is buffered so a worker never blocks on a caller that gave up.
type pending struct {
	model *Model
	a, b  *features.Prop
	unit  string
	resp  chan scoreResult
}

// batcher coalesces concurrent pair-scoring requests into micro-batches:
// a dispatcher collects up to maxBatch pairs, flushing early after
// maxWait, and a worker pool executes batches on per-model scorer clones.
// Each pair is one guard unit — a panic poisons only that pair's request.
type batcher struct {
	maxBatch int
	maxWait  time.Duration
	met      *Metrics
	chaos    *chaos.Injector // nil in production: inert hooks

	mu     sync.RWMutex // guards closed vs. queue sends
	closed bool
	queue  chan *pending
	work   chan []*pending
	wg     sync.WaitGroup // dispatcher + workers
}

// newBatcher starts the dispatcher and workers worker goroutines. inj
// arms the chaos hooks (PointBatch before each batch, PointScore inside
// each pair's guard unit); nil leaves them inert.
func newBatcher(workers, maxBatch int, maxWait time.Duration, met *Metrics, inj *chaos.Injector) *batcher {
	if workers <= 0 {
		workers = 4
	}
	if maxBatch <= 0 {
		maxBatch = 32
	}
	if maxWait <= 0 {
		maxWait = 2 * time.Millisecond
	}
	b := &batcher{
		maxBatch: maxBatch,
		maxWait:  maxWait,
		met:      met,
		chaos:    inj,
		queue:    make(chan *pending, workers*maxBatch),
		work:     make(chan []*pending, workers),
	}
	b.wg.Add(1)
	//lint:allow guardgo scoring panics are guard.Run-isolated per pair in runBatch; a panic in the pool skeleton itself must crash rather than hang Close on a dead dispatcher
	go b.dispatch()
	for i := 0; i < workers; i++ {
		b.wg.Add(1)
		//lint:allow guardgo same contract as the dispatcher: per-pair isolation lives in runBatch
		go b.worker()
	}
	return b
}

// Enqueue submits one pair for scoring and returns a handle to await.
// The model pointer pins the version the pair will be scored with.
func (b *batcher) Enqueue(ctx context.Context, md *Model, pa, pb *features.Prop, unit string) (*pending, error) {
	p := &pending{model: md, a: pa, b: pb, unit: unit, resp: make(chan scoreResult, 1)}
	b.mu.RLock()
	defer b.mu.RUnlock()
	if b.closed {
		return nil, ErrDraining
	}
	select {
	case b.queue <- p:
		return p, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Await blocks until the pair is scored or ctx ends.
func (b *batcher) Await(ctx context.Context, p *pending) (float64, error) {
	score, err, _ := b.AwaitDelivered(ctx, p)
	return score, err
}

// AwaitDelivered is Await plus provenance: delivered reports whether the
// worker's result actually landed. false means the wait was abandoned by
// ctx — the pair still occupies the pipeline and its (buffered) result
// will land later, which is what lets an abandoning caller hand the
// handle to a background drain instead of leaking accounting.
func (b *batcher) AwaitDelivered(ctx context.Context, p *pending) (score float64, err error, delivered bool) {
	select {
	case r := <-p.resp:
		return r.score, r.err, true
	case <-ctx.Done():
		return 0, ctx.Err(), false
	}
}

// Score is Enqueue+Await for a single pair.
func (b *batcher) Score(ctx context.Context, md *Model, pa, pb *features.Prop, unit string) (float64, error) {
	p, err := b.Enqueue(ctx, md, pa, pb, unit)
	if err != nil {
		return 0, err
	}
	return b.Await(ctx, p)
}

// dispatch implements the size-or-deadline batching policy.
func (b *batcher) dispatch() {
	defer b.wg.Done()
	defer close(b.work)
	for {
		first, ok := <-b.queue
		if !ok {
			return
		}
		batch := []*pending{first}
		timer := time.NewTimer(b.maxWait)
	fill:
		for len(batch) < b.maxBatch {
			select {
			case p, ok := <-b.queue:
				if !ok {
					break fill
				}
				batch = append(batch, p)
			case <-timer.C:
				break fill
			}
		}
		timer.Stop()
		b.work <- batch
	}
}

// worker executes batches: contiguous same-model runs share one checked-
// out scorer clone, so a coalesced batch is a true batched pass through
// one network.
func (b *batcher) worker() {
	defer b.wg.Done()
	for batch := range b.work {
		b.runBatch(batch)
	}
}

func (b *batcher) runBatch(batch []*pending) {
	if b.met != nil {
		b.met.Batches.Add(1)
		b.met.BatchPairs.Add(int64(len(batch)))
	}
	// Chaos hook: Delay/Stall here holds this worker (and its waiters'
	// deadlines start firing) while the rest of the pool keeps serving.
	b.chaos.Inject(chaos.PointBatch)
	for i := 0; i < len(batch); {
		j := i
		for j < len(batch) && batch[j].model == batch[i].model {
			j++
		}
		sc := batch[i].model.acquire()
		for _, p := range batch[i:j] {
			var s float64
			err := guard.Run(func() error {
				// Chaos hook inside the guard unit: an injected panic
				// must be isolated to this one pair, like any scorer bug.
				if e := b.chaos.Inject(chaos.PointScore); e != nil {
					return e
				}
				var e error
				s, e = sc.Score(p.a, p.b)
				return e
			})
			if err != nil {
				err = fmt.Errorf("serve: scoring %s: %w", p.unit, err)
				if b.met != nil {
					b.met.ScoreFailures.Add(1)
				}
			} else if b.met != nil {
				b.met.PairsScored.Add(1)
			}
			p.resp <- scoreResult{score: s, err: err}
		}
		batch[i].model.release(sc)
		i = j
	}
}

// Close stops admitting work, drains queued pairs through the workers and
// waits for them — every already-enqueued pair still gets its answer.
func (b *batcher) Close() {
	b.mu.Lock()
	if !b.closed {
		b.closed = true
		close(b.queue)
	}
	b.mu.Unlock()
	b.wg.Wait()
}
