package serve

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"sync"
	"sync/atomic"

	"leapme/internal/features"
)

// propDigest fingerprints a property's content: SHA-256 over the name and
// every value, each length-framed so ("ab", ["c"]) and ("a", ["bc"])
// cannot collide. Two properties with equal digests featurize identically,
// which is what makes cached and uncached scores bit-identical.
func propDigest(name string, values []string) [sha256.Size]byte {
	h := sha256.New()
	var frame [8]byte
	writePart := func(s string) {
		binary.LittleEndian.PutUint64(frame[:], uint64(len(s)))
		h.Write(frame[:])
		h.Write([]byte(s))
	}
	writePart(name)
	for _, v := range values {
		writePart(v)
	}
	var out [sha256.Size]byte
	h.Sum(out[:0])
	return out
}

// featureCache is a bounded LRU of featurized properties. It is safe for
// concurrent use. Entries are immutable *features.Prop values, so hits
// hand out shared pointers without copying.
type featureCache struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recently used
	items map[[sha256.Size]byte]*list.Element

	hits   atomic.Int64
	misses atomic.Int64
}

type cacheEntry struct {
	key  [sha256.Size]byte
	prop *features.Prop
}

// newFeatureCache returns an LRU holding at most capacity properties;
// capacity <= 0 disables caching (every Get misses).
func newFeatureCache(capacity int) *featureCache {
	return &featureCache{
		cap:   capacity,
		order: list.New(),
		items: make(map[[sha256.Size]byte]*list.Element),
	}
}

// Get returns the cached features for key, marking them recently used.
func (c *featureCache) Get(key [sha256.Size]byte) (*features.Prop, bool) {
	if c.cap <= 0 {
		c.misses.Add(1)
		return nil, false
	}
	c.mu.Lock()
	el, ok := c.items[key]
	if ok {
		c.order.MoveToFront(el)
	}
	c.mu.Unlock()
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	c.hits.Add(1)
	return el.Value.(*cacheEntry).prop, true
}

// Put inserts features under key, evicting the least recently used entry
// when full. Re-inserting an existing key refreshes its recency.
func (c *featureCache) Put(key [sha256.Size]byte, p *features.Prop) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).prop = p
		c.order.MoveToFront(el)
		return
	}
	for c.order.Len() >= c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
	}
	c.items[key] = c.order.PushFront(&cacheEntry{key: key, prop: p})
}

// Len returns the current entry count.
func (c *featureCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Hits returns the cumulative hit count.
func (c *featureCache) Hits() int64 { return c.hits.Load() }

// Misses returns the cumulative miss count.
func (c *featureCache) Misses() int64 { return c.misses.Load() }
