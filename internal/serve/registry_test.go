package serve

import (
	"os"
	"testing"
)

func TestParseModelList(t *testing.T) {
	cases := []struct {
		in   string
		want []ModelSource
		err  bool
	}{
		{in: "m.leapme", want: []ModelSource{{Name: "default", Path: "m.leapme"}}},
		{in: "a=x.leapme, b=y.leapme", want: []ModelSource{{Name: "a", Path: "x.leapme"}, {Name: "b", Path: "y.leapme"}}},
		{in: "a=x.leapme,,", want: []ModelSource{{Name: "a", Path: "x.leapme"}}},
		{in: "x.leapme,y.leapme", err: true}, // two bare paths: ambiguous names
		{in: "a=x.leapme,y.leapme", err: true},
		{in: "=x.leapme", err: true},
		{in: "a=", err: true},
		{in: "", err: true},
	}
	for _, c := range cases {
		got, err := ParseModelList(c.in)
		if c.err {
			if err == nil {
				t.Errorf("ParseModelList(%q): expected error, got %v", c.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseModelList(%q): %v", c.in, err)
			continue
		}
		if len(got) != len(c.want) {
			t.Errorf("ParseModelList(%q) = %v, want %v", c.in, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("ParseModelList(%q)[%d] = %v, want %v", c.in, i, got[i], c.want[i])
			}
		}
	}
}

func TestRegistryLoadActivateGet(t *testing.T) {
	fixture(t)
	dir := t.TempDir()
	pa := writeModelFile(t, dir, "a.leapme", fixModelA)
	pb := writeModelFile(t, dir, "b.leapme", fixModelB)
	reg, err := NewRegistry(fixStore, RegistryOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Get(""); err == nil {
		t.Error("empty registry resolved an active model")
	}
	ma, err := reg.Load("a", pa)
	if err != nil {
		t.Fatal(err)
	}
	if reg.Active() != ma {
		t.Error("first load is not active")
	}
	mb, err := reg.Load("b", pb)
	if err != nil {
		t.Fatal(err)
	}
	if reg.Active() != ma {
		t.Error("second load stole the active slot")
	}
	if err := reg.Activate("b"); err != nil {
		t.Fatal(err)
	}
	if reg.Active() != mb {
		t.Error("Activate did not swing the active pointer")
	}
	if err := reg.Activate("nope"); err == nil {
		t.Error("activated unknown model")
	}
	if got, _ := reg.Get(""); got != mb {
		t.Error(`Get("") != active`)
	}
	if got, _ := reg.Get("a"); got != ma {
		t.Error(`Get("a") wrong`)
	}
	if _, err := reg.Get("nope"); err == nil {
		t.Error("Get of unknown model succeeded")
	}
	ls := reg.List()
	if len(ls) != 2 || ls[0].Name != "a" || ls[1].Name != "b" {
		t.Errorf("List = %v", ls)
	}
	if ls[0].Info.FormatVersion < 3 || !ls[0].Info.HasDescriptor {
		t.Errorf("loaded model missing v3 descriptor: %+v", ls[0].Info)
	}
}

func TestRegistryHotSwapKeepsOldPointer(t *testing.T) {
	fixture(t)
	path := writeModelFile(t, t.TempDir(), "m.leapme", fixModelA)
	reg, err := NewRegistry(fixStore, RegistryOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	old, err := reg.Load("m", path)
	if err != nil {
		t.Fatal(err)
	}
	// A new version lands on disk; reload publishes it.
	if err := os.WriteFile(path, fixModelB, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := reg.Reload(); err != nil {
		t.Fatal(err)
	}
	now := reg.Active()
	if now == old {
		t.Fatal("reload did not swap the active model")
	}
	if now.Info.CRC == old.Info.CRC {
		t.Fatal("swapped model has identical CRC — fixture models not distinct")
	}
	// The pinned old version still scores: in-flight requests are safe.
	p := somePairs(t, 1)[0]
	sc := old.acquire()
	defer old.release(sc)
	if _, err := sc.Score(
		old.Featurize(p.A.Name, p.A.Values),
		old.Featurize(p.B.Name, p.B.Values)); err != nil {
		t.Fatalf("old model broken after swap: %v", err)
	}
}

func TestRegistryLoadErrors(t *testing.T) {
	fixture(t)
	reg, err := NewRegistry(fixStore, RegistryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Load("m", "/nonexistent/model.leapme"); err == nil {
		t.Error("loaded nonexistent file")
	}
	bad := writeModelFile(t, t.TempDir(), "bad.leapme", []byte("not a model"))
	if _, err := reg.Load("m", bad); err == nil {
		t.Error("loaded garbage file")
	}
	if _, err := reg.Load("", bad); err == nil {
		t.Error("loaded empty-named model")
	}
	if reg.Active() != nil {
		t.Error("failed loads published a model")
	}
	if _, err := NewRegistry(nil, RegistryOptions{}); err == nil {
		t.Error("NewRegistry accepted nil store")
	}
}
