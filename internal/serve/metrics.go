package serve

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"
)

// Metrics holds the server's cumulative counters, exposed in Prometheus
// text format on /metrics. All fields are atomics; the struct is shared
// freely between handlers, the batcher and the registry.
type Metrics struct {
	start time.Time

	MatchRequests    atomic.Int64 // /v1/match requests admitted
	MatchAllRequests atomic.Int64 // /v1/match/all requests admitted
	RequestErrors    atomic.Int64 // requests answered 4xx/5xx
	RequestsShed     atomic.Int64 // requests shed with 429 at admission
	DeadlineExpired  atomic.Int64 // requests answered 504 on an expired budget
	PairsScored      atomic.Int64 // pairs scored successfully
	ScoreFailures    atomic.Int64 // pairs failed (isolated panics/errors)
	Batches          atomic.Int64 // micro-batches executed
	BatchPairs       atomic.Int64 // pairs across all batches
	ModelSwaps       atomic.Int64 // activate/load/reload swaps

	IndexQueries      atomic.Int64 // per-property ANN probes served
	IndexCandidates   atomic.Int64 // candidate pairs proposed by ANN blocking
	IndexBuilds       atomic.Int64 // ephemeral per-request index builds
	IndexSnapshotHits atomic.Int64 // requests fully served from a preloaded snapshot
}

func newMetrics() *Metrics { return &Metrics{start: time.Now()} }

// WriteTo renders the exposition; reg contributes per-model cache and
// identity series, queueDepth/degraded the admission gate's state.
func (m *Metrics) WriteTo(w io.Writer, reg *Registry, ready bool, queueDepth int64, degraded bool) {
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("leapme_match_requests_total", "Admitted /v1/match requests.", m.MatchRequests.Load())
	counter("leapme_match_all_requests_total", "Admitted /v1/match/all requests.", m.MatchAllRequests.Load())
	counter("leapme_request_errors_total", "Requests answered with an error status.", m.RequestErrors.Load())
	counter("leapme_requests_shed_total", "Requests shed with 429 at admission.", m.RequestsShed.Load())
	counter("leapme_deadline_expired_total", "Requests answered 504 on an expired scoring budget.", m.DeadlineExpired.Load())
	counter("leapme_pairs_scored_total", "Property pairs scored.", m.PairsScored.Load())
	counter("leapme_score_failures_total", "Pairs whose scoring failed (isolated).", m.ScoreFailures.Load())
	counter("leapme_batches_total", "Micro-batches executed.", m.Batches.Load())
	counter("leapme_batch_pairs_total", "Pairs coalesced into micro-batches.", m.BatchPairs.Load())
	counter("leapme_model_swaps_total", "Model load/activate/reload swaps.", m.ModelSwaps.Load())
	counter("leapme_index_queries_total", "Per-property ANN index probes served by /v1/match/all.", m.IndexQueries.Load())
	counter("leapme_index_candidates_total", "Candidate pairs proposed by ANN blocking.", m.IndexCandidates.Load())
	counter("leapme_index_builds_total", "Ephemeral per-request ANN index builds (no covering snapshot).", m.IndexBuilds.Load())
	counter("leapme_index_snapshot_hits_total", "Requests fully served from a preloaded index snapshot.", m.IndexSnapshotHits.Load())

	fmt.Fprintf(w, "# HELP leapme_queue_depth Pairs admitted into the scoring pipeline, not yet answered.\n# TYPE leapme_queue_depth gauge\nleapme_queue_depth %d\n", queueDepth)
	degradedV := 0
	if degraded {
		degradedV = 1
	}
	fmt.Fprintf(w, "# HELP leapme_degraded Whether the admission queue is above the high-water mark.\n# TYPE leapme_degraded gauge\nleapme_degraded %d\n", degradedV)

	readyV := 0
	if ready {
		readyV = 1
	}
	fmt.Fprintf(w, "# HELP leapme_ready Whether the server is accepting scoring work.\n# TYPE leapme_ready gauge\nleapme_ready %d\n", readyV)
	fmt.Fprintf(w, "# HELP leapme_uptime_seconds Seconds since server start.\n# TYPE leapme_uptime_seconds gauge\nleapme_uptime_seconds %.0f\n", time.Since(m.start).Seconds())

	if reg == nil {
		return
	}
	active := reg.Active()
	fmt.Fprint(w, "# HELP leapme_feature_cache_hits_total Feature cache hits per model.\n# TYPE leapme_feature_cache_hits_total counter\n")
	for _, md := range reg.List() {
		fmt.Fprintf(w, "leapme_feature_cache_hits_total{model=%q} %d\n", md.Name, md.cache.Hits())
	}
	fmt.Fprint(w, "# HELP leapme_feature_cache_misses_total Feature cache misses per model.\n# TYPE leapme_feature_cache_misses_total counter\n")
	for _, md := range reg.List() {
		fmt.Fprintf(w, "leapme_feature_cache_misses_total{model=%q} %d\n", md.Name, md.cache.Misses())
	}
	fmt.Fprint(w, "# HELP leapme_feature_cache_entries Feature cache occupancy per model.\n# TYPE leapme_feature_cache_entries gauge\n")
	for _, md := range reg.List() {
		fmt.Fprintf(w, "leapme_feature_cache_entries{model=%q} %d\n", md.Name, md.cache.Len())
	}
	fmt.Fprint(w, "# HELP leapme_model_info Loaded models (value 1; active model labelled).\n# TYPE leapme_model_info gauge\n")
	for _, md := range reg.List() {
		isActive := 0
		if md == active {
			isActive = 1
		}
		fmt.Fprintf(w, "leapme_model_info{model=%q,crc=\"%08x\",features=%q,active=\"%d\"} 1\n",
			md.Name, md.Info.CRC, featuresLabel(md), isActive)
	}
}

func featuresLabel(md *Model) string {
	if !md.Info.HasDescriptor {
		return "unknown"
	}
	return md.Info.Features.String()
}
