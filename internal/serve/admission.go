package serve

import (
	"sync/atomic"
	"time"
)

// admission is the bounded gate in front of the batcher: it tracks how
// many pairs have been admitted into the scoring pipeline but not yet
// answered, sheds whole requests once the bound is hit (the handler
// answers a typed 429 with Retry-After instead of queueing), and flips
// /readyz into a degraded 503 above the high-water mark so load
// balancers steer traffic away before the hard cap starts shedding.
//
// Counting *pairs* rather than requests makes the bound meaningful: one
// /v1/match/all with 4096 candidates weighs 4096× a single-pair probe,
// which is exactly the ratio of batcher work they enqueue.
type admission struct {
	max        int64 // hard cap on in-flight admitted pairs
	highWater  int64 // degraded-readiness threshold
	retryAfter time.Duration

	depth atomic.Int64
}

func newAdmission(maxPairs int, highWaterFrac float64, retryAfter time.Duration) *admission {
	if highWaterFrac <= 0 || highWaterFrac > 1 {
		highWaterFrac = 0.75
	}
	if retryAfter <= 0 {
		retryAfter = time.Second
	}
	a := &admission{
		max:        int64(maxPairs),
		retryAfter: retryAfter,
	}
	a.highWater = int64(float64(maxPairs) * highWaterFrac)
	if a.highWater < 1 {
		a.highWater = 1
	}
	return a
}

// tryAcquire admits n pairs if they fit under the cap. Admission is
// all-or-nothing per request: a request that does not fit sheds in
// full rather than scoring a prefix.
func (a *admission) tryAcquire(n int) bool {
	for {
		cur := a.depth.Load()
		next := cur + int64(n)
		if next > a.max {
			return false
		}
		if a.depth.CompareAndSwap(cur, next) {
			return true
		}
	}
}

// release returns n admitted pairs. Handlers release per pair as each
// result lands; pairs abandoned by an expired budget keep their slots
// until the worker's result arrives (Server.drainAbandoned), so depth
// counts everything still occupying the pipeline, and pairs that never
// reached the batcher (failed Enqueue) release immediately.
func (a *admission) release(n int) { a.depth.Add(-int64(n)) }

// Depth is the current number of admitted, unanswered pairs.
func (a *admission) Depth() int64 { return a.depth.Load() }

// degraded reports whether the queue is above the high-water mark.
func (a *admission) degraded() bool { return a.depth.Load() >= a.highWater }
