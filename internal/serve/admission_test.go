package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestAdmissionTryAcquire(t *testing.T) {
	a := newAdmission(10, 0.5, time.Second)
	if !a.tryAcquire(6) {
		t.Fatal("6 of 10 refused")
	}
	if a.tryAcquire(5) {
		t.Fatal("6+5 of 10 admitted")
	}
	if !a.tryAcquire(4) {
		t.Fatal("6+4 of 10 refused")
	}
	if a.tryAcquire(1) {
		t.Fatal("admitted past a full queue")
	}
	if got := a.Depth(); got != 10 {
		t.Fatalf("Depth = %d, want 10", got)
	}
	if !a.degraded() {
		t.Fatal("full queue not degraded (high water 5)")
	}
	a.release(6)
	if a.degraded() {
		t.Fatalf("depth 4 still degraded below high water 5")
	}
	a.release(4)
	if got := a.Depth(); got != 0 {
		t.Fatalf("Depth after full release = %d", got)
	}
}

// TestAdmissionCapAdmitsMaxPairs pins the invariant behind every 429:
// MaxPairs never exceeds MaxQueuedPairs after New, so a request that
// passes validation is always admissible on an idle server and a shed is
// genuinely transient. The defaulted queue bound is raised to MaxPairs;
// an explicit bound below MaxPairs clamps MaxPairs down instead, turning
// the impossible request into a permanent 400.
func TestAdmissionCapAdmitsMaxPairs(t *testing.T) {
	// Defaulted queue bound: 4×1×4 = 16 would be below MaxPairs=64, so it
	// must be raised — a MaxPairs-sized request on an idle server scores.
	s, _ := newTestServer(t, func(c *Config) {
		c.Workers = 1
		c.MaxBatch = 4
		c.MaxPairs = 64
	})
	if s.cfg.MaxQueuedPairs != 64 {
		t.Fatalf("defaulted MaxQueuedPairs = %d, want raised to MaxPairs 64", s.cfg.MaxQueuedPairs)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	pairs := somePairs(t, 64)
	resp, raw := postJSON(t, ts, "/v1/match", matchRequest{Pairs: pairs})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("MaxPairs-sized request on an idle server: %d %s", resp.StatusCode, raw)
	}
	if n := len(decodeMatch(t, raw).Results); n != len(pairs) {
		t.Fatalf("%d results for %d pairs", n, len(pairs))
	}

	// Explicit queue bound below MaxPairs: MaxPairs clamps down, and an
	// oversized request is a permanent 400, never an eternal 429.
	s2, _ := newTestServer(t, func(c *Config) { c.MaxQueuedPairs = 4 })
	if s2.cfg.MaxPairs != 4 {
		t.Fatalf("MaxPairs = %d, want clamped to explicit MaxQueuedPairs 4", s2.cfg.MaxPairs)
	}
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	resp, raw = postJSON(t, ts2, "/v1/match", matchRequest{Pairs: somePairs(t, 5)})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized request = %d, want permanent 400: %s", resp.StatusCode, raw)
	}
}

// TestAdmissionShed429Deterministic pins the shed answer's full shape
// without any concurrency: with one admission slot already held, a
// 2-pair request against a 3-pair bound must shed with the typed 429 —
// and succeed once the slot frees, because a 429 is always transient.
func TestAdmissionShed429Deterministic(t *testing.T) {
	s, _ := newTestServer(t, func(c *Config) {
		c.MaxQueuedPairs = 3
		c.RetryAfter = 1500 * time.Millisecond
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Occupy enough of the gate that a 2-pair request cannot fit.
	if !s.adm.tryAcquire(2) {
		t.Fatal("could not pre-occupy the admission gate")
	}
	resp, raw := postJSON(t, ts, "/v1/match", matchRequest{Pairs: somePairs(t, 2)})
	s.adm.release(2)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429: %s", resp.StatusCode, raw)
	}
	// 1500ms rounds up to the header's 2 delta-seconds; the body keeps
	// the exact milliseconds.
	if got := resp.Header.Get("Retry-After"); got != "2" {
		t.Errorf("Retry-After = %q, want 2", got)
	}
	ae := decodeAPIError(t, raw)
	if ae.Code != "overloaded" {
		t.Errorf("code = %q, want overloaded", ae.Code)
	}
	if ae.RetryAfterMs != 1500 {
		t.Errorf("retry_after_ms = %d, want 1500", ae.RetryAfterMs)
	}
	if !strings.Contains(ae.Error, "shed") {
		t.Errorf("error message %q does not mention shedding", ae.Error)
	}
	if got := s.Metrics().RequestsShed.Load(); got != 1 {
		t.Errorf("RequestsShed = %d, want 1", got)
	}
	// /metrics must expose the shed counter and the queue gauges.
	mresp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, rerr := mresp.Body.Read(buf)
		sb.Write(buf[:n])
		if rerr != nil {
			break
		}
	}
	mresp.Body.Close()
	body := sb.String()
	for _, want := range []string{
		"leapme_requests_shed_total 1",
		"leapme_queue_depth 0",
		"leapme_degraded 0",
		"leapme_deadline_expired_total 0",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// A request that fits the bound still scores.
	resp, raw = postJSON(t, ts, "/v1/match", matchRequest{Pairs: somePairs(t, 1)})
	if resp.StatusCode != http.StatusOK {
		t.Errorf("1-pair request after shed: %d %s", resp.StatusCode, raw)
	}
}

// TestDeadlineHeaderValidation pins the budget-header contract: garbage
// is a 400, a generous budget scores normally.
func TestDeadlineHeaderValidation(t *testing.T) {
	s, _ := newTestServer(t, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, bad := range []string{"abc", "-5", "0", "1.5"} {
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/match",
			strings.NewReader(`{"pairs":[{"a":{"name":"x"},"b":{"name":"y"}}]}`))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set(DeadlineHeader, bad)
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("header %q: status %d, want 400", bad, resp.StatusCode)
		}
	}

	pairs := somePairs(t, 2)
	data, err := json.Marshal(matchRequest{Pairs: pairs})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/match", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(DeadlineHeader, "30000")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("generous budget: %d %s", resp.StatusCode, raw)
	}
	if n := len(decodeMatch(t, raw).Results); n != len(pairs) {
		t.Errorf("%d results for %d pairs", n, len(pairs))
	}
}
