package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"leapme/internal/core"
)

func postJSON(t *testing.T, ts *httptest.Server, path string, body any) (*http.Response, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+path, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

func decodeMatch(t *testing.T, raw []byte) matchResponse {
	t.Helper()
	var mr matchResponse
	if err := json.Unmarshal(raw, &mr); err != nil {
		t.Fatalf("bad /v1/match response %s: %v", raw, err)
	}
	return mr
}

// libraryScorer loads model A through the plain library path (Matcher →
// Scorer), bypassing the server entirely — the reference for
// bit-identical checks.
func libraryScorer(t *testing.T) *core.Scorer {
	t.Helper()
	fixture(t)
	m, err := core.NewMatcher(fixStore, core.DefaultOptions(0))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.ReadModel(bytes.NewReader(fixModelA)); err != nil {
		t.Fatal(err)
	}
	sc, err := m.NewScorer()
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

func TestMatchEndpointBitIdentical(t *testing.T) {
	s, _ := newTestServer(t, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	pairs := somePairs(t, 8)
	resp, raw := postJSON(t, ts, "/v1/match", matchRequest{Pairs: pairs})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	mr := decodeMatch(t, raw)
	if len(mr.Results) != len(pairs) {
		t.Fatalf("%d results for %d pairs", len(mr.Results), len(pairs))
	}

	ref := libraryScorer(t)
	for i, p := range pairs {
		want, err := ref.Score(
			ref.Featurize(p.A.Name, p.A.Values),
			ref.Featurize(p.B.Name, p.B.Values))
		if err != nil {
			t.Fatal(err)
		}
		got := mr.Results[i]
		if got.Error != "" {
			t.Fatalf("pair %d errored: %s", i, got.Error)
		}
		if got.Score != want {
			t.Errorf("pair %d: served score %v != library score %v (must be bit-identical)", i, got.Score, want)
		}
		if got.Match != ref.Match(want) {
			t.Errorf("pair %d: match decision diverges", i)
		}
	}
}

func TestMatchEndpointCacheHitBitIdentical(t *testing.T) {
	s, _ := newTestServer(t, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req := matchRequest{Pairs: somePairs(t, 5)}
	_, raw1 := postJSON(t, ts, "/v1/match", req)
	cold := decodeMatch(t, raw1)
	_, raw2 := postJSON(t, ts, "/v1/match", req)
	warm := decodeMatch(t, raw2)

	for i := range cold.Results {
		if warm.Results[i].Score != cold.Results[i].Score {
			t.Errorf("pair %d: warm (cached) score %v != cold score %v",
				i, warm.Results[i].Score, cold.Results[i].Score)
		}
	}
	if warm.Cache.Hits <= cold.Cache.Hits {
		t.Errorf("second request did not hit the feature cache: cold hits %d, warm hits %d",
			cold.Cache.Hits, warm.Cache.Hits)
	}
	if cold.Cache.Entries == 0 {
		t.Error("cache stayed empty")
	}
}

func TestMatchEndpointValidation(t *testing.T) {
	s, _ := newTestServer(t, func(c *Config) { c.MaxPairs = 3 })
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	check := func(body any, want int, label string) {
		t.Helper()
		resp, raw := postJSON(t, ts, "/v1/match", body)
		if resp.StatusCode != want {
			t.Errorf("%s: status %d, want %d (%s)", label, resp.StatusCode, want, raw)
		}
	}
	check(matchRequest{}, http.StatusBadRequest, "no pairs")
	check(matchRequest{Pairs: somePairs(t, 4)}, http.StatusBadRequest, "over MaxPairs")
	check(matchRequest{Model: "nope", Pairs: somePairs(t, 1)}, http.StatusNotFound, "unknown model")
	check(matchRequest{Pairs: []pairSpec{{A: propSpec{Name: ""}, B: propSpec{Name: "x"}}}},
		http.StatusBadRequest, "unnamed property")
	check(map[string]any{"pairs": []any{}, "bogus": 1}, http.StatusBadRequest, "unknown field")

	resp, err := ts.Client().Get(ts.URL + "/v1/match")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/match: status %d", resp.StatusCode)
	}
}

func TestMatchAllEndpoint(t *testing.T) {
	s, _ := newTestServer(t, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	fixture(t)
	values := fixData.InstancesByProperty()
	sources := map[string][]propSpec{}
	count := 0
	for _, p := range fixData.Props {
		if len(sources) >= 2 && sources[p.Source] == nil {
			continue
		}
		if len(sources[p.Source]) >= 8 {
			continue
		}
		sources[p.Source] = append(sources[p.Source], propSpec{Name: p.Name, Values: values[p.Key()]})
		count++
	}
	req := matchAllRequest{Sources: sources, Threshold: ptr(0.0), Top: 10}
	resp, raw := postJSON(t, ts, "/v1/match/all", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	var mar matchAllResponse
	if err := json.Unmarshal(raw, &mar); err != nil {
		t.Fatal(err)
	}
	if mar.Properties != count {
		t.Errorf("Properties = %d, want %d", mar.Properties, count)
	}
	if mar.Candidates == 0 || mar.Scored != mar.Candidates || mar.Failures != 0 {
		t.Errorf("candidates/scored/failures = %d/%d/%d", mar.Candidates, mar.Scored, mar.Failures)
	}
	// Threshold 0 admits everything; Top caps the list, sorted descending.
	if len(mar.Matches) == 0 || len(mar.Matches) > 10 {
		t.Fatalf("got %d matches", len(mar.Matches))
	}
	for i := 1; i < len(mar.Matches); i++ {
		if mar.Matches[i].Score > mar.Matches[i-1].Score {
			t.Fatal("matches not sorted by descending score")
		}
	}

	// Token blocking must also work and cut the candidate count or keep it.
	req.Blocking = "token"
	resp, raw = postJSON(t, ts, "/v1/match/all", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("token blocking: status %d: %s", resp.StatusCode, raw)
	}
	var blocked matchAllResponse
	json.Unmarshal(raw, &blocked)
	if blocked.Candidates > mar.Candidates {
		t.Errorf("token blocking grew candidates: %d > %d", blocked.Candidates, mar.Candidates)
	}

	req.Blocking = "bogus"
	resp, _ = postJSON(t, ts, "/v1/match/all", req)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bogus blocking: status %d", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts, "/v1/match/all", matchAllRequest{Sources: map[string][]propSpec{"one": {{Name: "x"}}}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("single source: status %d", resp.StatusCode)
	}
}

func ptr[T any](v T) *T { return &v }

func TestModelsEndpoint(t *testing.T) {
	fixture(t)
	dir := t.TempDir()
	pa := writeModelFile(t, dir, "a.leapme", fixModelA)
	pb := writeModelFile(t, dir, "b.leapme", fixModelB)
	s, err := New(Config{
		Store:  fixStore,
		Models: []ModelSource{{Name: "alpha", Path: pa}, {Name: "beta", Path: pb}},
		Active: "beta",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	var list []modelDesc
	json.NewDecoder(resp.Body).Decode(&list)
	resp.Body.Close()
	if len(list) != 2 || list[0].Name != "alpha" || list[1].Name != "beta" {
		t.Fatalf("model list = %+v", list)
	}
	if list[0].Active || !list[1].Active {
		t.Errorf("active flags wrong: %+v", list)
	}
	if list[0].InDim == 0 || list[0].CRC == "" || len(list[0].Hidden) == 0 {
		t.Errorf("model metadata incomplete: %+v", list[0])
	}

	r2, raw := postJSON(t, ts, "/v1/models", modelsAction{Activate: "alpha"})
	if r2.StatusCode != http.StatusOK {
		t.Fatalf("activate: %d %s", r2.StatusCode, raw)
	}
	if s.Registry().Active().Name != "alpha" {
		t.Error("activation did not take effect")
	}
	r2, _ = postJSON(t, ts, "/v1/models", modelsAction{Activate: "nope"})
	if r2.StatusCode != http.StatusNotFound {
		t.Errorf("activate unknown: %d", r2.StatusCode)
	}
	r2, raw = postJSON(t, ts, "/v1/models", modelsAction{Reload: true})
	if r2.StatusCode != http.StatusOK {
		t.Fatalf("reload: %d %s", r2.StatusCode, raw)
	}
	r2, _ = postJSON(t, ts, "/v1/models", modelsAction{})
	if r2.StatusCode != http.StatusBadRequest {
		t.Errorf("empty action: %d", r2.StatusCode)
	}
}

func TestHealthReadyMetrics(t *testing.T) {
	s, _ := newTestServer(t, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	get := func(path string) (int, string) {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp.StatusCode, buf.String()
	}
	if code, _ := get("/healthz"); code != http.StatusOK {
		t.Errorf("/healthz = %d", code)
	}
	if code, _ := get("/readyz"); code != http.StatusOK {
		t.Errorf("/readyz = %d", code)
	}
	postJSON(t, ts, "/v1/match", matchRequest{Pairs: somePairs(t, 2)})
	code, body := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	for _, want := range []string{
		"leapme_match_requests_total 1",
		"leapme_pairs_scored_total 2",
		"leapme_batches_total",
		`leapme_feature_cache_misses_total{model="default"}`,
		`leapme_model_info{model="default"`,
		"leapme_ready 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// After Close the server drains: readyz flips, scoring answers 503.
	// The probe body is part of the typed error vocabulary (errvocab):
	// JSON with a dispatchable code, not a bare text line.
	s.Close()
	if code, body := get("/readyz"); code != http.StatusServiceUnavailable {
		t.Errorf("/readyz after Close = %d", code)
	} else if !strings.Contains(body, `"code":"not_ready"`) {
		t.Errorf("/readyz after Close body = %q, want typed not_ready JSON", body)
	}
	resp, _ := postJSON(t, ts, "/v1/match", matchRequest{Pairs: somePairs(t, 1)})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("/v1/match after Close = %d", resp.StatusCode)
	}
}

// TestHotSwapUnderLoad hammers /v1/match from several goroutines while the
// model file is repeatedly replaced and reloaded. Zero requests may fail:
// in-flight requests pin their model version; swaps only affect later ones.
func TestHotSwapUnderLoad(t *testing.T) {
	s, path := newTestServer(t, func(c *Config) { c.Workers = 4 })
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	pairs := somePairs(t, 4)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var failures atomic.Int64
	var requests atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				resp, raw := postJSON(t, ts, "/v1/match", matchRequest{Pairs: pairs})
				requests.Add(1)
				if resp.StatusCode != http.StatusOK {
					failures.Add(1)
					t.Errorf("request failed during hot swap: %d %s", resp.StatusCode, raw)
					return
				}
				mr := decodeMatch(t, raw)
				for i, r := range mr.Results {
					if r.Error != "" {
						failures.Add(1)
						t.Errorf("pair %d failed during hot swap: %s", i, r.Error)
					}
				}
			}
		}()
	}

	versions := [][]byte{fixModelB, fixModelA}
	for swap := 0; swap < 6; swap++ {
		time.Sleep(20 * time.Millisecond)
		if err := os.WriteFile(path, versions[swap%2], 0o644); err != nil {
			t.Fatal(err)
		}
		if err := s.Reload(); err != nil {
			t.Fatalf("reload %d: %v", swap, err)
		}
	}
	cancel()
	wg.Wait()
	if requests.Load() == 0 {
		t.Fatal("load generator made no requests")
	}
	if failures.Load() != 0 {
		t.Fatalf("%d of %d requests failed across 6 hot swaps", failures.Load(), requests.Load())
	}
	if got := s.Metrics().ModelSwaps.Load(); got < 6 {
		t.Errorf("ModelSwaps = %d, want >= 6", got)
	}
}

func TestServerConfigErrors(t *testing.T) {
	fixture(t)
	if _, err := New(Config{Store: fixStore}); err == nil {
		t.Error("New accepted zero models")
	}
	path := writeModelFile(t, t.TempDir(), "m.leapme", fixModelA)
	if _, err := New(Config{
		Store:  fixStore,
		Models: []ModelSource{{Name: "m", Path: path}},
		Active: "other",
	}); err == nil {
		t.Error("New accepted unknown Active model")
	}
	if _, err := New(Config{
		Store:  fixStore,
		Models: []ModelSource{{Name: "m", Path: "/does/not/exist"}},
	}); err == nil {
		t.Error("New accepted missing model file")
	}
}
