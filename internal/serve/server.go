package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync/atomic"
	"time"

	"leapme/internal/blocking"
	"leapme/internal/dataset"
	"leapme/internal/embedding"
	"leapme/internal/features"
)

// Config configures a Server.
type Config struct {
	// Store is the embedding store every model featurizes against.
	Store *embedding.Store
	// Models are the model files to load at startup.
	Models []ModelSource
	// Active names the initially active model (default: the first one).
	Active string
	// Workers sizes the batch-scoring worker pool (default 4).
	Workers int
	// MaxBatch caps pairs per micro-batch (default 32).
	MaxBatch int
	// MaxWait is the micro-batch flush deadline (default 2ms).
	MaxWait time.Duration
	// CacheSize bounds each model's feature cache in entries (default
	// 4096, -1 disables).
	CacheSize int
	// Threshold overrides every model's match threshold (0 keeps each
	// model's own).
	Threshold float64
	// MaxValues caps instance values per served property (0 = all).
	MaxValues int
	// MaxPairs caps pairs per /v1/match request and candidate pairs per
	// /v1/match/all request (default 4096).
	MaxPairs int
	// MaxProps caps properties per /v1/match/all request (default 2048).
	MaxProps int
}

// Server is the matching-as-a-service HTTP server: a model registry, a
// micro-batching scorer and the /v1 handlers. Create with New, mount
// Handler, and Close on shutdown.
type Server struct {
	cfg   Config
	reg   *Registry
	batch *batcher
	met   *Metrics
	mux   *http.ServeMux
	ready atomic.Bool
}

// New loads every configured model and starts the batching workers.
func New(cfg Config) (*Server, error) {
	if len(cfg.Models) == 0 {
		return nil, errors.New("serve: no models configured")
	}
	if cfg.MaxPairs <= 0 {
		cfg.MaxPairs = 4096
	}
	if cfg.MaxProps <= 0 {
		cfg.MaxProps = 2048
	}
	met := newMetrics()
	reg, err := NewRegistry(cfg.Store, RegistryOptions{
		Workers:   cfg.Workers,
		CacheSize: cfg.CacheSize,
		Threshold: cfg.Threshold,
		MaxValues: cfg.MaxValues,
	})
	if err != nil {
		return nil, err
	}
	reg.met = met
	for _, ms := range cfg.Models {
		if _, err := reg.Load(ms.Name, ms.Path); err != nil {
			return nil, err
		}
	}
	if cfg.Active != "" {
		if err := reg.Activate(cfg.Active); err != nil {
			return nil, err
		}
	}
	s := &Server{
		cfg:   cfg,
		reg:   reg,
		batch: newBatcher(cfg.Workers, cfg.MaxBatch, cfg.MaxWait, met),
		met:   met,
		mux:   http.NewServeMux(),
	}
	s.mux.HandleFunc("/v1/match", s.handleMatch)
	s.mux.HandleFunc("/v1/match/all", s.handleMatchAll)
	s.mux.HandleFunc("/v1/models", s.handleModels)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.ready.Store(true)
	return s, nil
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Registry exposes the model registry (listing, activation, reload).
func (s *Server) Registry() *Registry { return s.reg }

// Metrics exposes the server counters.
func (s *Server) Metrics() *Metrics { return s.met }

// Reload re-reads every model from disk — the SIGHUP hook.
func (s *Server) Reload() error { return s.reg.Reload() }

// Close drains the scoring pipeline: readiness flips off, already-
// enqueued pairs finish, new scoring work gets ErrDraining. Call after
// http.Server.Shutdown has drained connections (or with it; in-flight
// handlers race Close only for enqueueing, never for losing answers).
func (s *Server) Close() {
	s.ready.Store(false)
	s.batch.Close()
}

// --- request/response schema ---

// propSpec is a property as it appears on the wire: its name and
// instance values.
type propSpec struct {
	Name   string   `json:"name"`
	Values []string `json:"values,omitempty"`
}

type pairSpec struct {
	A propSpec `json:"a"`
	B propSpec `json:"b"`
}

type matchRequest struct {
	Model     string     `json:"model,omitempty"`
	Threshold *float64   `json:"threshold,omitempty"`
	Pairs     []pairSpec `json:"pairs"`
}

type pairResult struct {
	Score float64 `json:"score"`
	Match bool    `json:"match"`
	Error string  `json:"error,omitempty"`
}

type cacheStats struct {
	Hits    int64 `json:"hits"`
	Misses  int64 `json:"misses"`
	Entries int   `json:"entries"`
}

type matchResponse struct {
	Model   string       `json:"model"`
	CRC     string       `json:"model_crc"`
	Results []pairResult `json:"results"`
	Cache   cacheStats   `json:"cache"`
}

type matchAllRequest struct {
	Model     string                `json:"model,omitempty"`
	Threshold *float64              `json:"threshold,omitempty"`
	Sources   map[string][]propSpec `json:"sources"`
	Blocking  string                `json:"blocking,omitempty"` // none|token|embedding|union
	Top       int                   `json:"top,omitempty"`
}

type matchAllMatch struct {
	A     string  `json:"a"`
	B     string  `json:"b"`
	Score float64 `json:"score"`
}

type matchAllResponse struct {
	Model      string          `json:"model"`
	Properties int             `json:"properties"`
	Candidates int             `json:"candidates"`
	Scored     int             `json:"scored"`
	Failures   int             `json:"failures"`
	Matches    []matchAllMatch `json:"matches"`
	Cache      cacheStats      `json:"cache"`
}

type modelDesc struct {
	Name         string    `json:"name"`
	Path         string    `json:"path"`
	Active       bool      `json:"active"`
	LoadedAt     time.Time `json:"loaded_at"`
	Format       int       `json:"format_version"`
	Features     string    `json:"features"`
	EmbeddingDim int       `json:"embedding_dim,omitempty"`
	InDim        int       `json:"in_dim"`
	Hidden       []int     `json:"hidden"`
	CRC          string    `json:"crc"`
	Threshold    float64   `json:"threshold"`
	Cache        cacheStats `json:"cache"`
}

type modelsAction struct {
	Activate string `json:"activate,omitempty"`
	Reload   bool   `json:"reload,omitempty"`
}

// --- handlers ---

func (s *Server) fail(w http.ResponseWriter, code int, format string, args ...any) {
	s.met.RequestErrors.Add(1)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func (s *Server) decode(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		s.fail(w, http.StatusBadRequest, "bad request body: %v", err)
		return false
	}
	return true
}

func (s *Server) handleMatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.fail(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	if !s.ready.Load() {
		s.fail(w, http.StatusServiceUnavailable, "draining")
		return
	}
	var req matchRequest
	if !s.decode(w, r, &req) {
		return
	}
	if len(req.Pairs) == 0 {
		s.fail(w, http.StatusBadRequest, "no pairs")
		return
	}
	if len(req.Pairs) > s.cfg.MaxPairs {
		s.fail(w, http.StatusBadRequest, "%d pairs exceeds limit %d", len(req.Pairs), s.cfg.MaxPairs)
		return
	}
	for i, p := range req.Pairs {
		if p.A.Name == "" || p.B.Name == "" {
			s.fail(w, http.StatusBadRequest, "pair %d: both properties need a name", i)
			return
		}
	}
	md, err := s.reg.Get(req.Model)
	if err != nil {
		s.fail(w, http.StatusNotFound, "%v", err)
		return
	}
	s.met.MatchRequests.Add(1)

	threshold := md.Threshold()
	if req.Threshold != nil {
		threshold = *req.Threshold
	}
	ctx := r.Context()
	// Featurize (through the cache), then enqueue every pair before
	// awaiting any — that is what lets the dispatcher coalesce one
	// request's pairs, and concurrent requests' pairs, into batches.
	handles := make([]*pending, len(req.Pairs))
	for i, p := range req.Pairs {
		pa := md.Featurize(p.A.Name, p.A.Values)
		pb := md.Featurize(p.B.Name, p.B.Values)
		h, err := s.batch.Enqueue(ctx, md, pa, pb, fmt.Sprintf("pair %d (%s × %s)", i, p.A.Name, p.B.Name))
		if err != nil {
			s.fail(w, http.StatusServiceUnavailable, "enqueue: %v", err)
			return
		}
		handles[i] = h
	}
	results := make([]pairResult, len(handles))
	failed := 0
	for i, h := range handles {
		score, err := s.batch.Await(ctx, h)
		if err != nil {
			results[i] = pairResult{Error: err.Error()}
			failed++
			continue
		}
		results[i] = pairResult{Score: score, Match: score >= threshold}
	}
	if failed == len(results) {
		// Every pair failed — a poisoned request. The guard kept the
		// server alive; this request alone answers 500.
		s.met.RequestErrors.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusInternalServerError)
		json.NewEncoder(w).Encode(matchResponse{Model: md.Name, CRC: fmt.Sprintf("%08x", md.Info.CRC), Results: results, Cache: cacheOf(md)})
		return
	}
	writeJSON(w, matchResponse{Model: md.Name, CRC: fmt.Sprintf("%08x", md.Info.CRC), Results: results, Cache: cacheOf(md)})
}

func cacheOf(md *Model) cacheStats {
	h, m, n := md.CacheStats()
	return cacheStats{Hits: h, Misses: m, Entries: n}
}

func (s *Server) handleMatchAll(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.fail(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	if !s.ready.Load() {
		s.fail(w, http.StatusServiceUnavailable, "draining")
		return
	}
	var req matchAllRequest
	if !s.decode(w, r, &req) {
		return
	}
	if len(req.Sources) < 2 {
		s.fail(w, http.StatusBadRequest, "need at least 2 sources, got %d", len(req.Sources))
		return
	}
	md, err := s.reg.Get(req.Model)
	if err != nil {
		s.fail(w, http.StatusNotFound, "%v", err)
		return
	}

	// Materialise the request's properties, rejecting duplicates — each
	// (source, name) must identify one property.
	var props []dataset.Property
	feats := map[dataset.Key]*features.Prop{}
	total := 0
	for src, specs := range req.Sources {
		for _, spec := range specs {
			if spec.Name == "" {
				s.fail(w, http.StatusBadRequest, "source %q: property without a name", src)
				return
			}
			k := dataset.Key{Source: src, Name: spec.Name}
			if _, dup := feats[k]; dup {
				s.fail(w, http.StatusBadRequest, "duplicate property %s", k)
				return
			}
			total++
			if total > s.cfg.MaxProps {
				s.fail(w, http.StatusBadRequest, "more than %d properties", s.cfg.MaxProps)
				return
			}
			props = append(props, dataset.Property{Source: src, Name: spec.Name})
			feats[k] = md.Featurize(spec.Name, spec.Values)
		}
	}
	sort.Slice(props, func(i, j int) bool {
		if props[i].Source != props[j].Source {
			return props[i].Source < props[j].Source
		}
		return props[i].Name < props[j].Name
	})

	var cands []dataset.Pair
	switch req.Blocking {
	case "", "none":
		dataset.CrossSourcePairs(props, func(a, b dataset.Property) bool {
			cands = append(cands, dataset.Pair{A: a.Key(), B: b.Key()})
			return len(cands) <= s.cfg.MaxPairs
		})
	case "token":
		cands = blocking.NewTokenBlocker().Candidates(props)
	case "embedding":
		cands = blocking.NewEmbeddingBlocker(s.cfg.Store).Candidates(props)
	case "union":
		cands = blocking.Union([]blocking.Blocker{
			blocking.NewTokenBlocker(),
			blocking.NewEmbeddingBlocker(s.cfg.Store),
		}).Candidates(props)
	default:
		s.fail(w, http.StatusBadRequest, "unknown blocking %q (none|token|embedding|union)", req.Blocking)
		return
	}
	if len(cands) > s.cfg.MaxPairs {
		s.fail(w, http.StatusBadRequest, "%d candidate pairs exceeds limit %d (add blocking or split the request)",
			len(cands), s.cfg.MaxPairs)
		return
	}
	s.met.MatchAllRequests.Add(1)

	threshold := md.Threshold()
	if req.Threshold != nil {
		threshold = *req.Threshold
	}
	ctx := r.Context()
	handles := make([]*pending, len(cands))
	for i, c := range cands {
		h, err := s.batch.Enqueue(ctx, md, feats[c.A], feats[c.B], c.A.String()+" × "+c.B.String())
		if err != nil {
			s.fail(w, http.StatusServiceUnavailable, "enqueue: %v", err)
			return
		}
		handles[i] = h
	}
	resp := matchAllResponse{
		Model:      md.Name,
		Properties: len(props),
		Candidates: len(cands),
	}
	for i, h := range handles {
		score, err := s.batch.Await(ctx, h)
		if err != nil {
			resp.Failures++
			continue
		}
		resp.Scored++
		if score >= threshold {
			resp.Matches = append(resp.Matches, matchAllMatch{A: cands[i].A.String(), B: cands[i].B.String(), Score: score})
		}
	}
	sort.Slice(resp.Matches, func(i, j int) bool { return resp.Matches[i].Score > resp.Matches[j].Score })
	if req.Top > 0 && len(resp.Matches) > req.Top {
		resp.Matches = resp.Matches[:req.Top]
	}
	resp.Cache = cacheOf(md)
	writeJSON(w, resp)
}

func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		active := s.reg.Active()
		var out []modelDesc
		for _, md := range s.reg.List() {
			out = append(out, modelDesc{
				Name:         md.Name,
				Path:         md.Path,
				Active:       md == active,
				LoadedAt:     md.LoadedAt,
				Format:       md.Info.FormatVersion,
				Features:     featuresLabel(md),
				EmbeddingDim: md.Info.EmbeddingDim,
				InDim:        md.Info.InDim,
				Hidden:       md.Info.Hidden,
				CRC:          fmt.Sprintf("%08x", md.Info.CRC),
				Threshold:    md.Threshold(),
				Cache:        cacheOf(md),
			})
		}
		writeJSON(w, out)
	case http.MethodPost:
		var act modelsAction
		if !s.decode(w, r, &act) {
			return
		}
		switch {
		case act.Activate != "":
			if err := s.reg.Activate(act.Activate); err != nil {
				s.fail(w, http.StatusNotFound, "%v", err)
				return
			}
			writeJSON(w, map[string]string{"active": act.Activate})
		case act.Reload:
			if err := s.reg.Reload(); err != nil {
				s.fail(w, http.StatusInternalServerError, "reload: %v", err)
				return
			}
			writeJSON(w, map[string]string{"status": "reloaded"})
		default:
			s.fail(w, http.StatusBadRequest, `want {"activate": name} or {"reload": true}`)
		}
	default:
		s.fail(w, http.StatusMethodNotAllowed, "GET or POST")
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Write([]byte("ok\n"))
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if s.ready.Load() && s.reg.Active() != nil {
		w.Write([]byte("ready\n"))
		return
	}
	http.Error(w, "not ready", http.StatusServiceUnavailable)
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.met.WriteTo(w, s.reg, s.ready.Load())
}
