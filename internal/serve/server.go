package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync/atomic"
	"time"

	"leapme/internal/blocking"
	"leapme/internal/chaos"
	"leapme/internal/dataset"
	"leapme/internal/embedding"
	"leapme/internal/features"
	"leapme/internal/index"
)

// DeadlineHeader carries a per-request scoring budget in integer
// milliseconds; the server clamps it to Config.MaxDeadline. Kept in sync
// with internal/client.DeadlineHeader.
const DeadlineHeader = "X-Leapme-Deadline-Ms"

// Config configures a Server.
type Config struct {
	// Store is the embedding store every model featurizes against.
	Store *embedding.Store
	// Models are the model files to load at startup.
	Models []ModelSource
	// Active names the initially active model (default: the first one).
	Active string
	// Workers sizes the batch-scoring worker pool (default 4).
	Workers int
	// MaxBatch caps pairs per micro-batch (default 32).
	MaxBatch int
	// MaxWait is the micro-batch flush deadline (default 2ms).
	MaxWait time.Duration
	// CacheSize bounds each model's feature cache in entries (default
	// 4096, -1 disables).
	CacheSize int
	// Threshold overrides every model's match threshold (0 keeps each
	// model's own).
	Threshold float64
	// MaxValues caps instance values per served property (0 = all).
	MaxValues int
	// MaxPairs caps pairs per /v1/match request and candidate pairs per
	// /v1/match/all request (default 4096). New clamps it down to
	// MaxQueuedPairs so any request that passes validation can be
	// admitted on an idle server: an oversized request fails with a
	// permanent 400, never a 429 that could not possibly succeed.
	MaxPairs int
	// MaxProps caps properties per /v1/match/all request (default 2048).
	MaxProps int
	// MaxQueuedPairs bounds pairs admitted into the scoring pipeline but
	// not yet answered, across all in-flight requests. A request that
	// would push past the bound is shed with a typed 429 and Retry-After
	// instead of queueing (default 4×Workers×MaxBatch, raised to
	// MaxPairs when that is larger so a full-size request still fits).
	MaxQueuedPairs int
	// HighWaterFrac is the fraction of MaxQueuedPairs above which
	// /readyz degrades to 503, steering load balancers away before the
	// hard cap sheds (default 0.75).
	HighWaterFrac float64
	// RetryAfter is the advice attached to shed responses (default 1s).
	RetryAfter time.Duration
	// DefaultDeadline is the per-request scoring budget when the client
	// sends no X-Leapme-Deadline-Ms header (default 10s; negative
	// disables the default so only client-requested budgets apply).
	DefaultDeadline time.Duration
	// MaxDeadline clamps client-requested budgets (default 60s).
	MaxDeadline time.Duration
	// Chaos, when non-nil, arms deterministic fault injection at the
	// serving layer's hook points (see internal/chaos). Production
	// servers leave it nil; the hooks are free.
	Chaos *chaos.Injector
}

// Server is the matching-as-a-service HTTP server: a model registry, a
// micro-batching scorer and the /v1 handlers. Create with New, mount
// Handler, and Close on shutdown.
type Server struct {
	cfg   Config
	reg   *Registry
	batch *batcher
	adm   *admission
	met   *Metrics
	mux   *http.ServeMux
	ready atomic.Bool
}

// New loads every configured model and starts the batching workers.
func New(cfg Config) (*Server, error) {
	if len(cfg.Models) == 0 {
		return nil, errors.New("serve: no models configured")
	}
	if cfg.MaxPairs <= 0 {
		cfg.MaxPairs = 4096
	}
	if cfg.MaxProps <= 0 {
		cfg.MaxProps = 2048
	}
	if cfg.MaxQueuedPairs <= 0 {
		workers, maxBatch := cfg.Workers, cfg.MaxBatch
		if workers <= 0 {
			workers = 4
		}
		if maxBatch <= 0 {
			maxBatch = 32
		}
		cfg.MaxQueuedPairs = 4 * workers * maxBatch
		if cfg.MaxQueuedPairs < cfg.MaxPairs {
			// The default bound must admit a maximal valid request on an
			// idle server; otherwise 513+ pairs under default flags would
			// shed forever — a permanent failure dressed up as transient.
			cfg.MaxQueuedPairs = cfg.MaxPairs
		}
	} else if cfg.MaxPairs > cfg.MaxQueuedPairs {
		// An explicit admission cap below MaxPairs wins: clamp MaxPairs so
		// a request that can never be admitted fails validation with a
		// permanent 400 instead of an eternally retryable 429.
		cfg.MaxPairs = cfg.MaxQueuedPairs
	}
	switch {
	case cfg.DefaultDeadline == 0:
		cfg.DefaultDeadline = 10 * time.Second
	case cfg.DefaultDeadline < 0:
		cfg.DefaultDeadline = 0
	}
	if cfg.MaxDeadline <= 0 {
		cfg.MaxDeadline = 60 * time.Second
	}
	met := newMetrics()
	reg, err := NewRegistry(cfg.Store, RegistryOptions{
		Workers:   cfg.Workers,
		CacheSize: cfg.CacheSize,
		Threshold: cfg.Threshold,
		MaxValues: cfg.MaxValues,
		Chaos:     cfg.Chaos,
	})
	if err != nil {
		return nil, err
	}
	reg.met = met
	for _, ms := range cfg.Models {
		if _, err := reg.LoadSource(ms); err != nil {
			return nil, err
		}
	}
	if cfg.Active != "" {
		if err := reg.Activate(cfg.Active); err != nil {
			return nil, err
		}
	}
	s := &Server{
		cfg:   cfg,
		reg:   reg,
		batch: newBatcher(cfg.Workers, cfg.MaxBatch, cfg.MaxWait, met, cfg.Chaos),
		adm:   newAdmission(cfg.MaxQueuedPairs, cfg.HighWaterFrac, cfg.RetryAfter),
		met:   met,
		mux:   http.NewServeMux(),
	}
	s.mux.HandleFunc("/v1/match", s.handleMatch)
	s.mux.HandleFunc("/v1/match/all", s.handleMatchAll)
	s.mux.HandleFunc("/v1/models", s.handleModels)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.ready.Store(true)
	return s, nil
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Registry exposes the model registry (listing, activation, reload).
func (s *Server) Registry() *Registry { return s.reg }

// Metrics exposes the server counters.
func (s *Server) Metrics() *Metrics { return s.met }

// Reload re-reads every model from disk — the SIGHUP hook.
func (s *Server) Reload() error { return s.reg.Reload() }

// Close drains the scoring pipeline: readiness flips off, already-
// enqueued pairs finish, new scoring work gets ErrDraining. Call after
// http.Server.Shutdown has drained connections (or with it; in-flight
// handlers race Close only for enqueueing, never for losing answers).
func (s *Server) Close() {
	s.ready.Store(false)
	s.batch.Close()
}

// --- request/response schema ---

// propSpec is a property as it appears on the wire: its name and
// instance values.
type propSpec struct {
	Name   string   `json:"name"`
	Values []string `json:"values,omitempty"`
}

type pairSpec struct {
	A propSpec `json:"a"`
	B propSpec `json:"b"`
}

type matchRequest struct {
	Model     string     `json:"model,omitempty"`
	Threshold *float64   `json:"threshold,omitempty"`
	Pairs     []pairSpec `json:"pairs"`
}

type pairResult struct {
	Score float64 `json:"score"`
	Match bool    `json:"match"`
	Error string  `json:"error,omitempty"`
}

type cacheStats struct {
	Hits    int64 `json:"hits"`
	Misses  int64 `json:"misses"`
	Entries int   `json:"entries"`
}

type matchResponse struct {
	Model   string       `json:"model"`
	CRC     string       `json:"model_crc"`
	Results []pairResult `json:"results"`
	Cache   cacheStats   `json:"cache"`
}

type matchAllRequest struct {
	Model     string                `json:"model,omitempty"`
	Threshold *float64              `json:"threshold,omitempty"`
	Sources   map[string][]propSpec `json:"sources"`
	Blocking  string                `json:"blocking,omitempty"` // none|token|embedding|union|ann|ann-union
	Top       int                   `json:"top,omitempty"`
}

type matchAllMatch struct {
	A     string  `json:"a"`
	B     string  `json:"b"`
	Score float64 `json:"score"`
}

type matchAllResponse struct {
	Model      string          `json:"model"`
	Properties int             `json:"properties"`
	Candidates int             `json:"candidates"`
	Scored     int             `json:"scored"`
	Failures   int             `json:"failures"`
	Matches    []matchAllMatch `json:"matches"`
	Cache      cacheStats      `json:"cache"`
}

type modelDesc struct {
	Name         string     `json:"name"`
	Path         string     `json:"path"`
	Active       bool       `json:"active"`
	LoadedAt     time.Time  `json:"loaded_at"`
	Format       int        `json:"format_version"`
	Features     string     `json:"features"`
	EmbeddingDim int        `json:"embedding_dim,omitempty"`
	InDim        int        `json:"in_dim"`
	Hidden       []int      `json:"hidden"`
	CRC          string     `json:"crc"`
	Threshold    float64    `json:"threshold"`
	Cache        cacheStats `json:"cache"`
}

type modelsAction struct {
	Activate string `json:"activate,omitempty"`
	Reload   bool   `json:"reload,omitempty"`
}

// --- handlers ---

// apiError is the typed JSON error body every non-200 answer carries:
// the message, a machine-readable code clients branch on, and — for 429
// shedding — a retry hint mirroring the Retry-After header in exact
// milliseconds.
type apiError struct {
	Error        string `json:"error"`
	Code         string `json:"code"`
	RetryAfterMs int64  `json:"retry_after_ms,omitempty"`
}

// codeFor maps a status to its default error code; call sites with a
// more specific condition (shedding, draining, deadline) use failCode
// directly.
func codeFor(status int) string {
	switch status {
	case http.StatusBadRequest:
		return "bad_request"
	case http.StatusNotFound:
		return "not_found"
	case http.StatusMethodNotAllowed:
		return "method_not_allowed"
	case http.StatusTooManyRequests:
		return "overloaded"
	case http.StatusServiceUnavailable:
		return "unavailable"
	case http.StatusGatewayTimeout:
		return "deadline_exceeded"
	default:
		return "internal"
	}
}

func (s *Server) fail(w http.ResponseWriter, status int, format string, args ...any) {
	s.failCode(w, status, codeFor(status), format, args...)
}

func (s *Server) failCode(w http.ResponseWriter, status int, code, format string, args ...any) {
	s.met.RequestErrors.Add(1)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(apiError{Error: fmt.Sprintf(format, args...), Code: code})
}

// probe answers a non-200 health/readiness probe with a typed apiError.
// Unlike failCode it does not count toward RequestErrors: a load
// balancer polling a draining instance is the system working, not a
// failed request.
func (s *Server) probe(w http.ResponseWriter, status int, code, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(apiError{Error: msg, Code: code})
}

// shed answers a typed 429: the admission queue is full, come back after
// RetryAfter. The header carries ceil-seconds (its wire granularity);
// the JSON body repeats the advice in exact milliseconds.
func (s *Server) shed(w http.ResponseWriter, pairs int) {
	s.met.RequestsShed.Add(1)
	s.met.RequestErrors.Add(1)
	ra := s.adm.retryAfter
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Retry-After", strconv.FormatInt(int64((ra+time.Second-1)/time.Second), 10))
	w.WriteHeader(http.StatusTooManyRequests)
	json.NewEncoder(w).Encode(apiError{
		Error: fmt.Sprintf("admission queue full (%d pairs queued, cap %d): request of %d pairs shed",
			s.adm.Depth(), s.adm.max, pairs),
		Code:         "overloaded",
		RetryAfterMs: ra.Milliseconds(),
	})
}

// failDeadline answers a typed 504 for a request whose scoring budget
// expired — the waiters of a slow or stalled batch land here while the
// rest of the pool keeps serving.
func (s *Server) failDeadline(w http.ResponseWriter, scored, total int) {
	s.met.DeadlineExpired.Add(1)
	s.failCode(w, http.StatusGatewayTimeout, "deadline_exceeded",
		"deadline exceeded with %d of %d pairs scored", scored, total)
}

// enqueueFail maps a batcher Enqueue/Await error onto the typed error
// vocabulary: draining → 503, an expired budget → 504.
func (s *Server) enqueueFail(w http.ResponseWriter, err error, scored, total int) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		s.failDeadline(w, scored, total)
	case errors.Is(err, ErrDraining):
		s.failCode(w, http.StatusServiceUnavailable, "draining", "%v", err)
	default:
		s.failCode(w, http.StatusServiceUnavailable, "canceled", "enqueue: %v", err)
	}
}

// requestContext derives the request's scoring context from its deadline
// budget: the X-Leapme-Deadline-Ms header when present (clamped to
// MaxDeadline), else DefaultDeadline, else no server-imposed deadline.
func (s *Server) requestContext(r *http.Request) (context.Context, context.CancelFunc, error) {
	d := s.cfg.DefaultDeadline
	if h := r.Header.Get(DeadlineHeader); h != "" {
		ms, err := strconv.ParseInt(h, 10, 64)
		if err != nil || ms <= 0 {
			return nil, nil, fmt.Errorf("bad %s header %q: want positive integer milliseconds", DeadlineHeader, h)
		}
		d = time.Duration(ms) * time.Millisecond
	}
	if d > s.cfg.MaxDeadline {
		d = s.cfg.MaxDeadline
	}
	if d <= 0 {
		ctx, cancel := context.WithCancel(r.Context())
		return ctx, cancel, nil
	}
	ctx, cancel := context.WithTimeout(r.Context(), d)
	return ctx, cancel, nil
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func (s *Server) decode(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		s.fail(w, http.StatusBadRequest, "bad request body: %v", err)
		return false
	}
	return true
}

func (s *Server) handleMatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.fail(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	if !s.ready.Load() {
		s.failCode(w, http.StatusServiceUnavailable, "draining", "draining")
		return
	}
	var req matchRequest
	if !s.decode(w, r, &req) {
		return
	}
	if len(req.Pairs) == 0 {
		s.fail(w, http.StatusBadRequest, "no pairs")
		return
	}
	if len(req.Pairs) > s.cfg.MaxPairs {
		s.fail(w, http.StatusBadRequest, "%d pairs exceeds limit %d", len(req.Pairs), s.cfg.MaxPairs)
		return
	}
	for i, p := range req.Pairs {
		if p.A.Name == "" || p.B.Name == "" {
			s.fail(w, http.StatusBadRequest, "pair %d: both properties need a name", i)
			return
		}
	}
	md, err := s.reg.Get(req.Model)
	if err != nil {
		s.fail(w, http.StatusNotFound, "%v", err)
		return
	}
	ctx, cancel, err := s.requestContext(r)
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	defer cancel()
	// Admission: the request's pairs must fit under the queue bound in
	// full, or the whole request sheds with a 429 — never a partial
	// score, never an unbounded pile-up behind the batcher. Slots return
	// per pair as results land (abandoned pairs via drainAbandoned), so
	// the depth gauge keeps counting work still occupying the pipeline.
	if !s.adm.tryAcquire(len(req.Pairs)) {
		s.shed(w, len(req.Pairs))
		return
	}
	s.met.MatchRequests.Add(1)

	threshold := md.Threshold()
	if req.Threshold != nil {
		threshold = *req.Threshold
	}
	// Featurize (through the cache), then enqueue the whole request as
	// one span — the dispatcher coalesces its pairs, and concurrent
	// requests' pairs, into batches. The unit closure only runs when a
	// pair fails, so the steady state formats no strings.
	n := len(req.Pairs)
	as := make([]*features.Prop, n)
	bs := make([]*features.Prop, n)
	for i, p := range req.Pairs {
		as[i] = md.Featurize(p.A.Name, p.A.Values)
		bs[i] = md.Featurize(p.B.Name, p.B.Values)
	}
	sp, err := s.batch.EnqueueSpan(ctx, md, as, bs, func(i int) string {
		return fmt.Sprintf("pair %d (%s × %s)", i, req.Pairs[i].A.Name, req.Pairs[i].B.Name)
	})
	if err != nil {
		s.adm.release(n) // nothing entered the pipeline
		s.enqueueFail(w, err, 0, n)
		return
	}
	results := make([]pairResult, n)
	delivered := make([]bool, n)
	scored, failed, received := 0, 0, 0
	for received < n {
		idx, ok := sp.next(ctx)
		if !ok {
			break
		}
		received++
		delivered[idx] = true
		s.adm.release(1)
		if err := sp.errs[idx]; err != nil {
			results[idx] = pairResult{Error: err.Error()}
			failed++
			continue
		}
		scored++
		results[idx] = pairResult{Score: sp.scores[idx], Match: sp.scores[idx] >= threshold}
	}
	s.drainSpan(sp, n-received)
	// A budget that expired mid-request answers a typed 504 — but only
	// when a wait was actually cut off. A request whose last result
	// landed just before the deadline is a success, not a timeout; the
	// batcher pool is unharmed either way (workers finish the batch into
	// the span's buffered channel), only this request's waiter was
	// cancelled.
	if received < n {
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			s.failDeadline(w, scored, n)
			return
		}
		for i := range results {
			if !delivered[i] {
				results[i] = pairResult{Error: ctx.Err().Error()}
				failed++
			}
		}
	}
	if failed == len(results) {
		// Every pair failed — a poisoned request. The guard kept the
		// server alive; this request alone answers 500.
		s.met.RequestErrors.Add(1)
		w.Header().Set("Content-Type", "application/json")
		//lint:allow errvocab this 500 deliberately carries the full per-pair matchResponse body (not an apiError) so the client sees which pair poisoned the request
		w.WriteHeader(http.StatusInternalServerError)
		json.NewEncoder(w).Encode(matchResponse{Model: md.Name, CRC: fmt.Sprintf("%08x", md.Info.CRC), Results: results, Cache: cacheOf(md)})
		return
	}
	writeJSON(w, matchResponse{Model: md.Name, CRC: fmt.Sprintf("%08x", md.Info.CRC), Results: results, Cache: cacheOf(md)})
}

func cacheOf(md *Model) cacheStats {
	h, m, n := md.CacheStats()
	return cacheStats{Hits: h, Misses: m, Entries: n}
}

// drainSpan returns admission slots for a span's remaining pairs after
// the request's waiter gave up (expired budget, dropped client). Each
// slot is released only when the worker's result actually lands in the
// span channel, so leapme_queue_depth keeps counting zombie pairs still
// occupying the batcher — after a burst of 504s new admissions queue
// behind the real backlog instead of an under-counted one. The goroutine
// always terminates: every enqueued pair is answered into the span's
// buffered channel, even through Close.
func (s *Server) drainSpan(sp *span, remaining int) {
	if remaining <= 0 {
		return
	}
	//lint:allow guardgo the body only receives from a buffered channel and cannot panic; workers' delivery guarantee bounds its life
	go func() {
		for i := 0; i < remaining; i++ {
			<-sp.resp
			s.adm.release(1)
		}
	}()
}

// annCandidates serves the "ann" and "ann-union" blocking modes: indexed
// k-nearest-neighbour retrieval from the model's preloaded snapshot when
// it covers the request's properties, or an ephemeral per-request index
// otherwise (the ANNBlocker falls back internally; the metrics record
// which path served). ann-union additionally merges token blocking, the
// indexed counterpart of "union".
func (s *Server) annCandidates(ctx context.Context, md *Model, props []dataset.Property, withToken bool) ([]dataset.Pair, error) {
	ann := blocking.NewANNBlocker(s.cfg.Store, index.Options{})
	ann.Snapshot = md.Index
	if md.Index != nil && blocking.SnapshotCovers(md.Index, props) {
		s.met.IndexSnapshotHits.Add(1)
	} else {
		s.met.IndexBuilds.Add(1)
	}
	cands, err := ann.CandidatesCtx(ctx, props)
	if err != nil {
		return nil, err
	}
	s.met.IndexQueries.Add(int64(len(props)))
	s.met.IndexCandidates.Add(int64(len(cands)))
	if !withToken {
		return cands, nil
	}
	return blocking.MergePairs(cands, blocking.NewTokenBlocker().Candidates(props)), nil
}

func (s *Server) handleMatchAll(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.fail(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	if !s.ready.Load() {
		s.failCode(w, http.StatusServiceUnavailable, "draining", "draining")
		return
	}
	var req matchAllRequest
	if !s.decode(w, r, &req) {
		return
	}
	if len(req.Sources) < 2 {
		s.fail(w, http.StatusBadRequest, "need at least 2 sources, got %d", len(req.Sources))
		return
	}
	md, err := s.reg.Get(req.Model)
	if err != nil {
		s.fail(w, http.StatusNotFound, "%v", err)
		return
	}

	// Materialise the request's properties, rejecting duplicates — each
	// (source, name) must identify one property.
	var props []dataset.Property
	feats := map[dataset.Key]*features.Prop{}
	total := 0
	for src, specs := range req.Sources {
		for _, spec := range specs {
			if spec.Name == "" {
				s.fail(w, http.StatusBadRequest, "source %q: property without a name", src)
				return
			}
			k := dataset.Key{Source: src, Name: spec.Name}
			if _, dup := feats[k]; dup {
				s.fail(w, http.StatusBadRequest, "duplicate property %s", k)
				return
			}
			total++
			if total > s.cfg.MaxProps {
				s.fail(w, http.StatusBadRequest, "more than %d properties", s.cfg.MaxProps)
				return
			}
			props = append(props, dataset.Property{Source: src, Name: spec.Name})
			feats[k] = md.Featurize(spec.Name, spec.Values)
		}
	}
	sort.Slice(props, func(i, j int) bool {
		if props[i].Source != props[j].Source {
			return props[i].Source < props[j].Source
		}
		return props[i].Name < props[j].Name
	})

	var cands []dataset.Pair
	switch req.Blocking {
	case "", "none":
		dataset.CrossSourcePairs(props, func(a, b dataset.Property) bool {
			cands = append(cands, dataset.Pair{A: a.Key(), B: b.Key()})
			return len(cands) <= s.cfg.MaxPairs
		})
	case "token":
		cands = blocking.NewTokenBlocker().Candidates(props)
	case "embedding":
		cands = blocking.NewEmbeddingBlocker(s.cfg.Store).Candidates(props)
	case "union":
		cands = blocking.Union([]blocking.Blocker{
			blocking.NewTokenBlocker(),
			blocking.NewEmbeddingBlocker(s.cfg.Store),
		}).Candidates(props)
	case "ann", "ann-union":
		cands, err = s.annCandidates(r.Context(), md, props, req.Blocking == "ann-union")
		if err != nil {
			s.fail(w, http.StatusInternalServerError, "ann blocking: %v", err)
			return
		}
	default:
		s.fail(w, http.StatusBadRequest, "unknown blocking %q (none|token|embedding|union|ann|ann-union)", req.Blocking)
		return
	}
	if len(cands) > s.cfg.MaxPairs {
		s.fail(w, http.StatusBadRequest, "%d candidate pairs exceeds limit %d (add blocking or split the request)",
			len(cands), s.cfg.MaxPairs)
		return
	}
	ctx, cancel, err := s.requestContext(r)
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	defer cancel()
	if !s.adm.tryAcquire(len(cands)) {
		s.shed(w, len(cands))
		return
	}
	s.met.MatchAllRequests.Add(1)

	threshold := md.Threshold()
	if req.Threshold != nil {
		threshold = *req.Threshold
	}
	n := len(cands)
	as := make([]*features.Prop, n)
	bs := make([]*features.Prop, n)
	for i, c := range cands {
		as[i] = feats[c.A]
		bs[i] = feats[c.B]
	}
	sp, err := s.batch.EnqueueSpan(ctx, md, as, bs, func(i int) string {
		return cands[i].A.String() + " × " + cands[i].B.String()
	})
	if err != nil {
		s.adm.release(n) // nothing entered the pipeline
		s.enqueueFail(w, err, 0, n)
		return
	}
	resp := matchAllResponse{
		Model:      md.Name,
		Properties: len(props),
		Candidates: n,
	}
	received := 0
	for received < n {
		idx, ok := sp.next(ctx)
		if !ok {
			break
		}
		received++
		s.adm.release(1)
		if sp.errs[idx] != nil {
			resp.Failures++
			continue
		}
		resp.Scored++
		if sp.scores[idx] >= threshold {
			resp.Matches = append(resp.Matches, matchAllMatch{A: cands[idx].A.String(), B: cands[idx].B.String(), Score: sp.scores[idx]})
		}
	}
	s.drainSpan(sp, n-received)
	if received < n {
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			s.failDeadline(w, resp.Scored, n)
			return
		}
		resp.Failures += n - received
	}
	// Matches accumulate in completion order, which races across
	// workers — the sort must be a total order (score, then keys) so the
	// response is deterministic for a given request.
	sort.Slice(resp.Matches, func(i, j int) bool {
		mi, mj := resp.Matches[i], resp.Matches[j]
		if mi.Score > mj.Score {
			return true
		}
		if mj.Score > mi.Score {
			return false
		}
		if mi.A != mj.A {
			return mi.A < mj.A
		}
		return mi.B < mj.B
	})
	if req.Top > 0 && len(resp.Matches) > req.Top {
		resp.Matches = resp.Matches[:req.Top]
	}
	resp.Cache = cacheOf(md)
	writeJSON(w, resp)
}

func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		active := s.reg.Active()
		var out []modelDesc
		for _, md := range s.reg.List() {
			out = append(out, modelDesc{
				Name:         md.Name,
				Path:         md.Path,
				Active:       md == active,
				LoadedAt:     md.LoadedAt,
				Format:       md.Info.FormatVersion,
				Features:     featuresLabel(md),
				EmbeddingDim: md.Info.EmbeddingDim,
				InDim:        md.Info.InDim,
				Hidden:       md.Info.Hidden,
				CRC:          fmt.Sprintf("%08x", md.Info.CRC),
				Threshold:    md.Threshold(),
				Cache:        cacheOf(md),
			})
		}
		writeJSON(w, out)
	case http.MethodPost:
		var act modelsAction
		if !s.decode(w, r, &act) {
			return
		}
		switch {
		case act.Activate != "":
			if err := s.reg.Activate(act.Activate); err != nil {
				s.fail(w, http.StatusNotFound, "%v", err)
				return
			}
			writeJSON(w, map[string]string{"active": act.Activate})
		case act.Reload:
			if err := s.reg.Reload(); err != nil {
				s.fail(w, http.StatusInternalServerError, "reload: %v", err)
				return
			}
			writeJSON(w, map[string]string{"status": "reloaded"})
		default:
			s.fail(w, http.StatusBadRequest, `want {"activate": name} or {"reload": true}`)
		}
	default:
		s.fail(w, http.StatusMethodNotAllowed, "GET or POST")
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Write([]byte("ok\n"))
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	switch {
	case !s.ready.Load() || s.reg.Active() == nil:
		s.probe(w, http.StatusServiceUnavailable, "not_ready", "not ready")
	case s.adm.degraded():
		// Above the high-water mark: still serving, but load balancers
		// should steer new traffic elsewhere before shedding starts.
		s.probe(w, http.StatusServiceUnavailable, "degraded", "degraded: admission queue above high-water mark")
	default:
		w.Write([]byte("ready\n"))
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.met.WriteTo(w, s.reg, s.ready.Load(), s.adm.Depth(), s.adm.degraded())
}
