package serve

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"leapme/internal/chaos"
	"leapme/internal/core"
	"leapme/internal/embedding"
	"leapme/internal/features"
	"leapme/internal/index"
)

// ModelSource names a model file to load, with an optional prebuilt ANN
// index snapshot served alongside it.
type ModelSource struct {
	Name string
	Path string
	// IndexPath, when non-empty, names an index snapshot file (built with
	// `leapme index`) loaded with the model and used by /v1/match/all's
	// "ann" blocking for any request whose properties the snapshot
	// covers. Reloads re-read it, so the snapshot hot-swaps with the
	// model.
	IndexPath string
}

// ParseModelList parses the -model flag syntax: a comma-separated list of
// name=path entries. A bare path gets the name "default" when it is the
// only entry, otherwise it is an error.
func ParseModelList(s string) ([]ModelSource, error) {
	var out []ModelSource
	parts := strings.Split(s, ",")
	var bare []string
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		if name, path, ok := strings.Cut(p, "="); ok {
			name, path = strings.TrimSpace(name), strings.TrimSpace(path)
			if name == "" || path == "" {
				return nil, fmt.Errorf("serve: bad model entry %q (want name=path)", p)
			}
			out = append(out, ModelSource{Name: name, Path: path})
		} else {
			bare = append(bare, p)
		}
	}
	if len(bare) > 1 || (len(bare) == 1 && len(out) > 0) {
		return nil, errors.New("serve: multiple models need explicit names (name=path,...)")
	}
	if len(bare) == 1 {
		out = append(out, ModelSource{Name: "default", Path: bare[0]})
	}
	if len(out) == 0 {
		return nil, errors.New("serve: no models given")
	}
	return out, nil
}

// AttachIndexes parses the -index flag syntax — the same name=path list
// as -model, or a single bare path when exactly one model is configured —
// and sets IndexPath on the matching entries of models in place.
func AttachIndexes(models []ModelSource, s string) error {
	byName := map[string]int{}
	for i, ms := range models {
		byName[ms.Name] = i
	}
	var bare []string
	for _, p := range strings.Split(s, ",") {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		name, path, ok := strings.Cut(p, "=")
		if !ok {
			bare = append(bare, p)
			continue
		}
		name, path = strings.TrimSpace(name), strings.TrimSpace(path)
		if name == "" || path == "" {
			return fmt.Errorf("serve: bad index entry %q (want name=path)", p)
		}
		i, found := byName[name]
		if !found {
			return fmt.Errorf("serve: index entry %q names no configured model", name)
		}
		models[i].IndexPath = path
	}
	if len(bare) > 1 || (len(bare) == 1 && len(models) > 1) {
		return errors.New("serve: multiple indexes need explicit model names (name=path,...)")
	}
	if len(bare) == 1 {
		models[0].IndexPath = bare[0]
	}
	return nil
}

// Model is one immutable loaded model version: its scorer snapshot, a
// pool of per-worker scorer clones, the file metadata and a feature
// cache. A Model is never mutated after Load publishes it; hot swaps
// replace the whole value.
type Model struct {
	Name     string
	Path     string
	Info     core.ModelInfo
	LoadedAt time.Time

	// IndexPath and Index carry the model's optional prebuilt ANN
	// snapshot (nil when none was configured). Like the scorer, the
	// snapshot is immutable once published and hot-swaps wholesale on
	// reload.
	IndexPath string
	Index     *index.Snapshot

	// template serves concurrent-safe featurization and describes the
	// snapshot (threshold, pair dim); scoring checks clones out of pool.
	template *core.Scorer
	pool     chan *core.Scorer
	cache    *featureCache
}

// Threshold returns the model's default match threshold.
func (m *Model) Threshold() float64 { return m.template.Threshold() }

// CacheStats returns the model's feature-cache hit/miss/occupancy counts.
func (m *Model) CacheStats() (hits, misses int64, entries int) {
	return m.cache.Hits(), m.cache.Misses(), m.cache.Len()
}

// Featurize computes (or recalls) the feature vector for a property given
// by name and values, through the model's LRU cache. Safe for concurrent
// use; the returned Prop is shared and must not be mutated.
func (m *Model) Featurize(name string, values []string) *features.Prop {
	key := propDigest(name, values)
	if p, ok := m.cache.Get(key); ok {
		return p
	}
	p := m.template.Featurize(name, values)
	m.cache.Put(key, p)
	return p
}

// acquire checks a scorer clone out of the pool, blocking until one is
// free; release returns it.
func (m *Model) acquire() *core.Scorer  { return <-m.pool }
func (m *Model) release(s *core.Scorer) { m.pool <- s }

// RegistryOptions configures how the registry builds models.
type RegistryOptions struct {
	// Workers sizes each model's scorer pool (default 4). It should match
	// the batcher's worker count: a batch worker never waits for a scorer.
	Workers int
	// CacheSize bounds each model's feature cache in entries (default
	// 4096; 0 after defaulting still means 4096, use -1 to disable).
	CacheSize int
	// Threshold overrides the match threshold baked into model snapshots
	// (0 keeps each model's own).
	Threshold float64
	// MaxValues caps instance values aggregated per served property
	// (0 = all), mirroring core.Options.MaxValues.
	MaxValues int
	// Chaos, when non-nil, arms the PointReload corruption hook: model
	// bytes read during Load/Reload pass through the injector, so tests
	// can prove a corrupt reload keeps the old snapshot serving.
	Chaos *chaos.Injector
}

func (o RegistryOptions) withDefaults() RegistryOptions {
	if o.Workers <= 0 {
		o.Workers = 4
	}
	if o.CacheSize == 0 {
		o.CacheSize = 4096
	}
	return o
}

// Registry holds named models over one embedding store and tracks the
// active one. All methods are safe for concurrent use; readers resolve a
// *Model pointer once and keep using it regardless of later swaps.
type Registry struct {
	store *embedding.Store
	opts  RegistryOptions
	met   *Metrics

	mu         sync.RWMutex
	models     map[string]*Model
	activeName string
	active     atomic.Pointer[Model]
}

// NewRegistry returns an empty registry over the store.
func NewRegistry(store *embedding.Store, opts RegistryOptions) (*Registry, error) {
	if store == nil {
		return nil, errors.New("serve: nil embedding store")
	}
	return &Registry{
		store:  store,
		opts:   opts.withDefaults(),
		models: map[string]*Model{},
	}, nil
}

// build loads a model source into a fresh Model without publishing it.
func (r *Registry) build(ms ModelSource) (*Model, error) {
	name, path := ms.Name, ms.Path
	info, err := core.LoadInfoFile(path)
	if err != nil {
		return nil, fmt.Errorf("serve: describing model %s (%s): %w", name, path, err)
	}
	opts := core.DefaultOptions(0)
	if info.HasDescriptor {
		opts.Features = info.Features
		if info.EmbeddingDim != r.store.Dim() {
			return nil, fmt.Errorf("serve: model %s was trained against embedding dim %d, store has %d",
				name, info.EmbeddingDim, r.store.Dim())
		}
	}
	if r.opts.Threshold > 0 {
		opts.Threshold = r.opts.Threshold
	}
	opts.MaxValues = r.opts.MaxValues
	m, err := core.NewMatcher(r.store, opts)
	if err != nil {
		return nil, fmt.Errorf("serve: model %s: %w", name, err)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("serve: model %s: %w", name, err)
	}
	defer f.Close()
	// Chaos hook: a Corrupt fault bit-flips the model bytes so the CRC
	// check fails the load; Reload then keeps the previous version.
	var rd io.Reader = r.opts.Chaos.Reader(chaos.PointReload, f)
	if err := m.ReadModel(rd); err != nil {
		return nil, fmt.Errorf("serve: loading model %s (%s): %w", name, path, err)
	}
	sc, err := m.NewScorer()
	if err != nil {
		return nil, fmt.Errorf("serve: model %s: %w", name, err)
	}
	md := &Model{
		Name:      name,
		Path:      path,
		Info:      info,
		LoadedAt:  time.Now(),
		IndexPath: ms.IndexPath,
		template:  sc,
		pool:      make(chan *core.Scorer, r.opts.Workers),
		cache:     newFeatureCache(r.opts.CacheSize),
	}
	if ms.IndexPath != "" {
		snap, err := index.ReadSnapshotFile(ms.IndexPath)
		if err != nil {
			return nil, fmt.Errorf("serve: loading index for model %s: %w", name, err)
		}
		if d := snap.Index().Dim(); d != r.store.Dim() {
			return nil, fmt.Errorf("serve: index for model %s was built against embedding dim %d, store has %d",
				name, d, r.store.Dim())
		}
		md.Index = snap
	}
	for i := 0; i < r.opts.Workers; i++ {
		md.pool <- sc.Clone()
	}
	return md, nil
}

// Load reads a model file and publishes it under name, replacing any
// previous version atomically. The first loaded model becomes active; a
// reload of the currently active name swings the active pointer to the
// new version. In-flight requests holding the old *Model are unaffected.
func (r *Registry) Load(name, path string) (*Model, error) {
	return r.LoadSource(ModelSource{Name: name, Path: path})
}

// LoadSource is Load with the full model source, including an optional
// index snapshot path that loads (and on reload, hot-swaps) with the
// model.
func (r *Registry) LoadSource(ms ModelSource) (*Model, error) {
	name := ms.Name
	if name == "" {
		return nil, errors.New("serve: empty model name")
	}
	md, err := r.build(ms)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	r.models[name] = md
	if r.activeName == "" || r.activeName == name {
		r.activeName = name
		r.active.Store(md)
	}
	r.mu.Unlock()
	if r.met != nil {
		r.met.ModelSwaps.Add(1)
	}
	return md, nil
}

// Activate makes the named model the default for requests that do not
// name one.
func (r *Registry) Activate(name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	md, ok := r.models[name]
	if !ok {
		return fmt.Errorf("serve: unknown model %q", name)
	}
	r.activeName = name
	r.active.Store(md)
	if r.met != nil {
		r.met.ModelSwaps.Add(1)
	}
	return nil
}

// Active returns the current default model (nil before the first Load).
func (r *Registry) Active() *Model { return r.active.Load() }

// Get resolves a request's model: the named one, or the active model for
// an empty name.
func (r *Registry) Get(name string) (*Model, error) {
	if name == "" {
		if md := r.Active(); md != nil {
			return md, nil
		}
		return nil, errors.New("serve: no active model")
	}
	r.mu.RLock()
	md, ok := r.models[name]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("serve: unknown model %q", name)
	}
	return md, nil
}

// List returns the loaded models sorted by name.
func (r *Registry) List() []*Model {
	r.mu.RLock()
	out := make([]*Model, 0, len(r.models))
	for _, md := range r.models {
		out = append(out, md)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Reload re-reads every model — and its index snapshot, when configured —
// from its file: the SIGHUP path. A model whose file fails to load keeps
// serving its previous version; the returned error joins all failures.
func (r *Registry) Reload() error {
	var errs []error
	for _, md := range r.List() {
		if _, err := r.LoadSource(ModelSource{Name: md.Name, Path: md.Path, IndexPath: md.IndexPath}); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}
