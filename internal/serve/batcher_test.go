package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"leapme/internal/features"
)

// testModel loads model A into a registry and returns it.
func testModel(t *testing.T) *Model {
	t.Helper()
	fixture(t)
	path := writeModelFile(t, t.TempDir(), "model.leapme", fixModelA)
	reg, err := NewRegistry(fixStore, RegistryOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	md, err := reg.Load("m", path)
	if err != nil {
		t.Fatal(err)
	}
	return md
}

func TestBatcherPoisonIsolation(t *testing.T) {
	md := testModel(t)
	b := newBatcher(2, 8, time.Millisecond, newMetrics(), nil)
	defer b.Close()

	good := somePairs(t, 4)
	ctx := context.Background()
	// A Prop with a truncated feature vector panics inside PairVector —
	// the guard must turn that into an error for that pair alone.
	poison := &features.Prop{Name: "poison", Vec: []float64{1}}

	var handles []*pending
	for i, p := range good {
		pa := md.Featurize(p.A.Name, p.A.Values)
		pb := md.Featurize(p.B.Name, p.B.Values)
		h, err := b.Enqueue(ctx, md, pa, pb, fmt.Sprintf("good %d", i))
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, h)
	}
	bad, err := b.Enqueue(ctx, md, poison, poison, "poison pair")
	if err != nil {
		t.Fatal(err)
	}

	for i, h := range handles {
		score, err := b.Await(ctx, h)
		if err != nil {
			t.Errorf("good pair %d failed next to poison: %v", i, err)
		}
		if score < 0 || score > 1 {
			t.Errorf("good pair %d score out of range: %v", i, score)
		}
	}
	if _, err := b.Await(ctx, bad); err == nil {
		t.Fatal("poisoned pair did not error")
	}

	// The batcher (and its scorer pool) must still work after the panic.
	p := good[0]
	if _, err := b.Score(ctx, md,
		md.Featurize(p.A.Name, p.A.Values),
		md.Featurize(p.B.Name, p.B.Values), "post-poison"); err != nil {
		t.Fatalf("batcher broken after poison: %v", err)
	}
}

func TestBatcherCoalesces(t *testing.T) {
	md := testModel(t)
	met := newMetrics()
	// Long flush deadline: concurrent pairs must ride in shared batches.
	b := newBatcher(2, 16, 50*time.Millisecond, met, nil)
	defer b.Close()

	pairs := somePairs(t, 24)
	ctx := context.Background()
	var wg sync.WaitGroup
	for i := range pairs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p := pairs[i]
			pa := md.Featurize(p.A.Name, p.A.Values)
			pb := md.Featurize(p.B.Name, p.B.Values)
			if _, err := b.Score(ctx, md, pa, pb, "pair"); err != nil {
				t.Errorf("pair %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	batches, scored := met.Batches.Load(), met.BatchPairs.Load()
	if scored != int64(len(pairs)) {
		t.Fatalf("scored %d pairs, want %d", scored, len(pairs))
	}
	if batches >= scored {
		t.Errorf("no coalescing: %d batches for %d pairs", batches, scored)
	}
}

func TestBatcherDrain(t *testing.T) {
	md := testModel(t)
	b := newBatcher(1, 4, time.Millisecond, newMetrics(), nil)

	ctx := context.Background()
	pairs := somePairs(t, 6)
	var handles []*pending
	for _, p := range pairs {
		pa := md.Featurize(p.A.Name, p.A.Values)
		pb := md.Featurize(p.B.Name, p.B.Values)
		h, err := b.Enqueue(ctx, md, pa, pb, "pair")
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, h)
	}
	b.Close() // must drain: every enqueued pair still gets an answer

	for i, h := range handles {
		if _, err := b.Await(ctx, h); err != nil {
			t.Errorf("pair %d lost in drain: %v", i, err)
		}
	}
	p := pairs[0]
	_, err := b.Enqueue(ctx, md,
		md.Featurize(p.A.Name, p.A.Values),
		md.Featurize(p.B.Name, p.B.Values), "late")
	if !errors.Is(err, ErrDraining) {
		t.Errorf("enqueue after Close = %v, want ErrDraining", err)
	}
}
