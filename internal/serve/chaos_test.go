package serve

// The chaos suite (`make test-chaos`, run under -race) injects
// deterministic faults through internal/chaos and proves the overload
// and failure invariants end-to-end:
//
//   - sustained overload sheds with typed 429 + Retry-After, never an
//     unbounded queue;
//   - a stalled worker yields typed 504s for only the affected waiters,
//     and the pool recovers when the stall clears;
//   - an injected scorer panic is isolated to its one pair;
//   - corrupted model bytes on reload keep the old snapshot serving;
//   - the internal/client retry loop converges once injection stops;
//   - Close drains: every in-flight pair is answered, late work gets a
//     typed 503.
//
// All injector decisions run under a fixed seed, so the fault schedule
// is reproducible run to run.

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"leapme/internal/chaos"
	"leapme/internal/client"
)

// decodeAPIError unmarshals the server's typed error body.
func decodeAPIError(t *testing.T, raw []byte) apiError {
	t.Helper()
	var ae apiError
	if err := json.Unmarshal(raw, &ae); err != nil {
		t.Fatalf("error body %q is not typed JSON: %v", raw, err)
	}
	return ae
}

// newChaosServer builds a server with the injector armed and registers
// cleanup. mut further customises the config.
func newChaosServer(t *testing.T, inj *chaos.Injector, mut func(*Config)) (*Server, *httptest.Server) {
	t.Helper()
	s, _ := newTestServer(t, func(c *Config) {
		c.Chaos = inj
		if mut != nil {
			mut(c)
		}
	})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// TestChaosScorerPanicIsolated injects exactly one scorer panic and
// asserts the guard invariant over HTTP: one pair errors, the rest of
// the request and every later request score normally.
func TestChaosScorerPanicIsolated(t *testing.T) {
	inj := chaos.New(1, chaos.Fault{Point: chaos.PointScore, Mode: chaos.Panic, Count: 1})
	s, ts := newChaosServer(t, inj, nil)

	resp, raw := postJSON(t, ts, "/v1/match", matchRequest{Pairs: somePairs(t, 4)})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s (one poisoned pair must not fail the request)", resp.StatusCode, raw)
	}
	mr := decodeMatch(t, raw)
	var failed int
	for _, r := range mr.Results {
		if r.Error != "" {
			failed++
			if !strings.Contains(r.Error, "panic") {
				t.Errorf("pair error %q does not surface the panic", r.Error)
			}
		}
	}
	if failed != 1 {
		t.Fatalf("%d pairs failed, want exactly the 1 injected panic", failed)
	}
	if got := s.Metrics().ScoreFailures.Load(); got != 1 {
		t.Errorf("ScoreFailures = %d, want 1", got)
	}

	// Injection exhausted: the next request is clean.
	resp, raw = postJSON(t, ts, "/v1/match", matchRequest{Pairs: somePairs(t, 4)})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-injection status %d: %s", resp.StatusCode, raw)
	}
	for i, r := range decodeMatch(t, raw).Results {
		if r.Error != "" {
			t.Errorf("pair %d still failing after injection ended: %s", i, r.Error)
		}
	}
}

// TestChaosOverloadSheds stalls the single worker and pushes more pairs
// than the admission bound: the overflow must shed with typed 429 +
// Retry-After while the queue depth never exceeds the cap, and once the
// stall clears the server recovers fully.
func TestChaosOverloadSheds(t *testing.T) {
	inj := chaos.New(1, chaos.Fault{Point: chaos.PointBatch, Mode: chaos.Stall, Delay: 30 * time.Second})
	s, ts := newChaosServer(t, inj, func(c *Config) {
		c.Workers = 1
		c.MaxBatch = 4
		c.MaxQueuedPairs = 8
		c.HighWaterFrac = 0.5
		c.RetryAfter = 2 * time.Second
	})
	defer inj.Disarm()

	pairs := somePairs(t, 4)
	var wg sync.WaitGroup
	var ok, shed atomic.Int64
	start := make(chan struct{})
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			resp, raw := postJSON(t, ts, "/v1/match", matchRequest{Pairs: pairs})
			switch resp.StatusCode {
			case http.StatusOK:
				ok.Add(1)
			case http.StatusTooManyRequests:
				shed.Add(1)
				if resp.Header.Get("Retry-After") != "2" {
					t.Errorf("Retry-After = %q, want 2", resp.Header.Get("Retry-After"))
				}
				ae := decodeAPIError(t, raw)
				if ae.Code != "overloaded" || ae.RetryAfterMs != 2000 {
					t.Errorf("shed body = %+v, want code=overloaded retry_after_ms=2000", ae)
				}
			default:
				t.Errorf("unexpected status %d: %s", resp.StatusCode, raw)
			}
		}()
	}
	close(start)
	// 6 goroutines × 4 pairs against a cap of 8 and a stalled worker:
	// at most 2 requests can be in flight, so at least one sheds while
	// the stall holds. Wait for the first shed, then check the gauges.
	deadline := time.Now().Add(10 * time.Second)
	for shed.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if shed.Load() == 0 {
		t.Fatal("no request was shed under sustained overload")
	}
	if depth := s.adm.Depth(); depth > 8 {
		t.Fatalf("queue depth %d exceeds the admission cap 8", depth)
	}
	// Above high water (4): /readyz must report degraded 503.
	resp, err := ts.Client().Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("/readyz during overload = %d, want 503 degraded", resp.StatusCode)
	}

	inj.Disarm() // stall clears; the admitted requests complete
	wg.Wait()
	if ok.Load() == 0 {
		t.Error("no admitted request completed after the stall cleared")
	}
	if got := s.Metrics().RequestsShed.Load(); got != shed.Load() {
		t.Errorf("RequestsShed = %d, clients saw %d", got, shed.Load())
	}
	// Fully recovered: depth drains to zero, readyz flips back, new
	// requests score.
	for i := 0; s.adm.Depth() != 0 && i < 1000; i++ {
		time.Sleep(time.Millisecond)
	}
	if resp, _ := ts.Client().Get(ts.URL + "/readyz"); resp != nil {
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("/readyz after recovery = %d", resp.StatusCode)
		}
	}
	if resp, raw := postJSON(t, ts, "/v1/match", matchRequest{Pairs: pairs}); resp.StatusCode != http.StatusOK {
		t.Errorf("post-recovery request: %d %s", resp.StatusCode, raw)
	}
}

// TestChaosStalledWorkerTypes504 stalls the first batch: the waiter's
// deadline budget expires into a typed 504, the stalled worker never
// wedges the pool, and the next request (new batch, stall exhausted)
// succeeds.
func TestChaosStalledWorkerTypes504(t *testing.T) {
	inj := chaos.New(1, chaos.Fault{Point: chaos.PointBatch, Mode: chaos.Stall, Delay: 30 * time.Second, Count: 1})
	s, ts := newChaosServer(t, inj, func(c *Config) { c.Workers = 1 })
	defer inj.Disarm()

	data, err := json.Marshal(matchRequest{Pairs: somePairs(t, 2)})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/match", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(DeadlineHeader, "150") // 150ms budget against a 30s stall
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("stalled request status = %d, want 504: %s", resp.StatusCode, raw)
	}
	ae := decodeAPIError(t, raw)
	if ae.Code != "deadline_exceeded" {
		t.Fatalf("error code = %q, want deadline_exceeded", ae.Code)
	}
	if got := s.Metrics().DeadlineExpired.Load(); got != 1 {
		t.Errorf("DeadlineExpired = %d, want 1", got)
	}

	// Only the affected waiters 504ed; the worker unstalls (Count=1 is
	// spent, Disarm as belt and braces) and the pool serves again.
	inj.Disarm()
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp2, raw2 := postJSON(t, ts, "/v1/match", matchRequest{Pairs: somePairs(t, 2)})
		if resp2.StatusCode == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("pool never recovered after the stall: %d %s", resp2.StatusCode, raw2)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestChaosCorruptReloadKeepsServing corrupts model bytes during Reload
// (skipping the startup Load): the reload must fail on the CRC check and
// the old snapshot must keep serving bit-identical scores.
func TestChaosCorruptReloadKeepsServing(t *testing.T) {
	inj := chaos.New(1, chaos.Fault{Point: chaos.PointReload, Mode: chaos.Corrupt, Skip: 1})
	s, ts := newChaosServer(t, inj, nil)

	pairs := somePairs(t, 3)
	_, rawBefore := postJSON(t, ts, "/v1/match", matchRequest{Pairs: pairs})
	before := decodeMatch(t, rawBefore)

	if err := s.Reload(); err == nil {
		t.Fatal("Reload succeeded despite corrupted model bytes")
	}
	if inj.Fired(chaos.PointReload) == 0 {
		t.Fatal("corrupt fault never fired")
	}

	resp, rawAfter := postJSON(t, ts, "/v1/match", matchRequest{Pairs: pairs})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("request after failed reload: %d %s", resp.StatusCode, rawAfter)
	}
	after := decodeMatch(t, rawAfter)
	if after.CRC != before.CRC {
		t.Errorf("model CRC changed across a failed reload: %s → %s", before.CRC, after.CRC)
	}
	for i := range before.Results {
		if after.Results[i].Score != before.Results[i].Score {
			t.Errorf("pair %d: score drifted across a failed reload", i)
		}
	}
}

// TestChaosClientConvergence drives the internal/client retry loop
// against a stalled, shedding server: throttled calls back off and
// retry, and every call converges to success once injection stops.
func TestChaosClientConvergence(t *testing.T) {
	inj := chaos.New(1, chaos.Fault{Point: chaos.PointBatch, Mode: chaos.Stall, Delay: 30 * time.Second})
	s, ts := newChaosServer(t, inj, func(c *Config) {
		c.Workers = 1
		c.MaxBatch = 4
		c.MaxQueuedPairs = 8
		c.RetryAfter = 50 * time.Millisecond
	})
	defer inj.Disarm()

	wire := somePairs(t, 4)
	var cpairs []client.Pair
	for _, p := range wire {
		cpairs = append(cpairs, client.Pair{
			A: client.PropSpec{Name: p.A.Name, Values: p.A.Values},
			B: client.PropSpec{Name: p.B.Name, Values: p.B.Values},
		})
	}
	c, err := client.New(client.Config{
		BaseURL:     ts.URL,
		HTTPClient:  ts.Client(),
		MaxAttempts: 50,
		BaseBackoff: 10 * time.Millisecond,
		MaxBackoff:  100 * time.Millisecond,
		Seed:        7,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Enough concurrent calls to guarantee shedding against the cap of
	// 8 pairs (each call carries 4).
	const calls = 6
	var wg sync.WaitGroup
	var failures atomic.Int64
	for g := 0; g < calls; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
			defer cancel()
			resp, err := c.Match(ctx, &client.MatchRequest{Pairs: cpairs})
			if err != nil {
				failures.Add(1)
				t.Errorf("call %d never converged: %v", g, err)
				return
			}
			for i, r := range resp.Results {
				if r.Error != "" {
					t.Errorf("call %d pair %d: %s", g, i, r.Error)
				}
			}
		}(g)
	}

	// Let the clients pile into the stall until the server has shed at
	// least once, then stop injecting: everything must converge.
	deadline := time.Now().Add(15 * time.Second)
	for s.Metrics().RequestsShed.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	shedSeen := s.Metrics().RequestsShed.Load()
	inj.Disarm()
	wg.Wait()

	if failures.Load() != 0 {
		t.Fatalf("%d of %d calls failed after injection stopped", failures.Load(), calls)
	}
	if shedSeen == 0 {
		t.Error("server never shed; the test exercised no overload")
	}
	st := c.Stats()
	if st.Throttled == 0 || st.Retries == 0 {
		t.Errorf("client stats %+v: expected throttled calls and retries during injection", st)
	}
}

// TestChaosDrainMidStream closes the server while requests are in
// flight: every response is either a full 200 or a typed 503, nothing
// hangs, and Close's drain guarantee holds (all admitted pairs answered).
func TestChaosDrainMidStream(t *testing.T) {
	inj := chaos.New(1, chaos.Fault{Point: chaos.PointBatch, Mode: chaos.Delay, Delay: 20 * time.Millisecond})
	s, ts := newChaosServer(t, inj, func(c *Config) { c.Workers = 2 })

	pairs := somePairs(t, 4)
	var wg sync.WaitGroup
	var ok, unavailable atomic.Int64
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, raw := postJSON(t, ts, "/v1/match", matchRequest{Pairs: pairs})
				switch resp.StatusCode {
				case http.StatusOK:
					mr := decodeMatch(t, raw)
					for _, r := range mr.Results {
						if r.Error != "" {
							t.Errorf("pair failed during drain: %s", r.Error)
						}
					}
					ok.Add(1)
				case http.StatusServiceUnavailable:
					ae := decodeAPIError(t, raw)
					if ae.Code != "draining" && ae.Code != "canceled" {
						t.Errorf("503 with code %q, want draining/canceled", ae.Code)
					}
					unavailable.Add(1)
				default:
					t.Errorf("unexpected status %d during drain: %s", resp.StatusCode, raw)
				}
			}
		}()
	}
	time.Sleep(60 * time.Millisecond) // let requests flow
	s.Close()                         // drains: admitted pairs answered, then 503s
	time.Sleep(40 * time.Millisecond) // observe post-drain 503s
	close(stop)
	wg.Wait()
	if ok.Load() == 0 {
		t.Error("no request succeeded before the drain")
	}
	if unavailable.Load() == 0 {
		t.Error("no request saw the typed draining 503 after Close")
	}
}
