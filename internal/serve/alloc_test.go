package serve

import (
	"context"
	"testing"
	"time"

	"leapme/internal/features"
)

// TestSpanAllocRegression pins the allocation profile of the warm
// request path through the batcher: a span costs a fixed handful of
// allocations (the span struct, its result slices, its channel, and the
// worker's per-run guard closure) REGARDLESS of how many pairs it
// carries. The scoring itself — featurization scratch, kernel forward,
// result delivery — must contribute zero allocations per pair; that is
// the property the arena work in core and nn exists to provide, and
// this test is the serve-side gate that keeps it from regressing.
//
// The HTTP layer on top necessarily allocates per pair for JSON; the
// contract pinned here is that the scoring pipeline underneath does not.
func TestSpanAllocRegression(t *testing.T) {
	md := testModel(t)
	// One worker makes batching deterministic: a 32-pair span is exactly
	// one full batch, a 1-pair span one timer-flushed batch.
	b := newBatcher(1, 32, time.Millisecond, newMetrics(), nil)
	defer b.Close()
	ctx := context.Background()

	specs := somePairs(t, 32)
	n := len(specs)
	as := make([]*features.Prop, 0, 32)
	bs := make([]*features.Prop, 0, 32)
	for i := 0; i < 32; i++ {
		sp := specs[i%n]
		as = append(as, md.Featurize(sp.A.Name, sp.A.Values))
		bs = append(bs, md.Featurize(sp.B.Name, sp.B.Values))
	}

	runSpan := func(k int) {
		sp, err := b.EnqueueSpan(ctx, md, as[:k], bs[:k], nil)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < k; i++ {
			idx, ok := sp.next(ctx)
			if !ok {
				t.Fatal("span wait cut short")
			}
			if sp.errs[idx] != nil {
				t.Fatal(sp.errs[idx])
			}
		}
	}
	// Warm: grow the scorer clones' arenas, the batch-buffer freelist and
	// the feature cache to steady state.
	for i := 0; i < 3; i++ {
		runSpan(1)
		runSpan(32)
	}

	a1 := testing.AllocsPerRun(20, func() { runSpan(1) })
	a32 := testing.AllocsPerRun(20, func() { runSpan(32) })
	t.Logf("allocs per span: 1 pair = %.1f, 32 pairs = %.1f (marginal %.3f/pair)",
		a1, a32, (a32-a1)/31)
	if a32 > a1+1 {
		t.Errorf("scoring allocates per pair: %.1f allocs for 32 pairs vs %.1f for 1 — the arena path regressed", a32, a1)
	}
	if a32 > 16 {
		t.Errorf("fixed per-span allocation budget exceeded: %.1f allocs, want <= 16", a32)
	}
}

// TestRunBatchFixedAllocs is the dynamic gate behind runBatch's
// //lint:hotpath annotation: calling the span hot loop directly (no
// dispatcher, no HTTP) must cost a fixed handful of allocations — the
// per-model-run guard closure — with zero marginal allocations per
// pair. The hotalloc cross-check requires this test to exist; deleting
// it fails `make lint`.
func TestRunBatchFixedAllocs(t *testing.T) {
	md := testModel(t)
	b := newBatcher(1, 32, time.Millisecond, newMetrics(), nil)
	defer b.Close()

	specs := somePairs(t, 32)
	n := len(specs)
	as := make([]*features.Prop, 0, 32)
	bs := make([]*features.Prop, 0, 32)
	for i := 0; i < 32; i++ {
		p := specs[i%n]
		as = append(as, md.Featurize(p.A.Name, p.A.Values))
		bs = append(bs, md.Featurize(p.B.Name, p.B.Values))
	}
	sp := &span{
		model:  md,
		as:     as,
		bs:     bs,
		scores: make([]float64, 32),
		errs:   make([]error, 32),
		resp:   make(chan int, 32),
	}
	batch := make([]pairRef, 32)
	for i := range batch {
		batch[i] = pairRef{sp: sp, idx: i}
	}
	drain := func(k int) {
		for i := 0; i < k; i++ {
			idx := <-sp.resp
			if sp.errs[idx] != nil {
				t.Fatal(sp.errs[idx])
			}
		}
	}
	// Warm: first acquire clones the scorer and grows its batch arenas.
	for i := 0; i < 3; i++ {
		b.runBatch(batch[:1])
		drain(1)
		b.runBatch(batch)
		drain(32)
	}
	a1 := testing.AllocsPerRun(20, func() {
		b.runBatch(batch[:1])
		drain(1)
	})
	a32 := testing.AllocsPerRun(20, func() {
		b.runBatch(batch)
		drain(32)
	})
	t.Logf("runBatch allocs: 1 pair = %.1f, 32 pairs = %.1f", a1, a32)
	if a32 > a1 {
		t.Errorf("runBatch allocates per pair: %.1f allocs for 32 pairs vs %.1f for 1 pair", a32, a1)
	}
	if a32 > 4 {
		t.Errorf("runBatch fixed allocation budget exceeded: %.1f allocs, want <= 4", a32)
	}
}
