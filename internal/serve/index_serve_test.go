package serve

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"leapme/internal/index"
)

// writeSnapshotFile builds an index snapshot over the fixture dataset's
// properties and writes it into dir, returning the path.
func writeSnapshotFile(t testing.TB, dir, name string) string {
	t.Helper()
	fixture(t)
	snap, err := index.BuildSnapshot(context.Background(), fixStore, fixData.Props, index.Options{Seed: 7})
	if err != nil {
		t.Fatalf("BuildSnapshot: %v", err)
	}
	path := filepath.Join(dir, name)
	if err := snap.WriteFile(path); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	return path
}

// fixtureSources converts the fixture dataset into the wire-level sources
// map (all properties, no instance values — blocking only needs names).
func fixtureSources(t testing.TB) map[string][]propSpec {
	t.Helper()
	fixture(t)
	sources := map[string][]propSpec{}
	for _, p := range fixData.Props {
		sources[p.Source] = append(sources[p.Source], propSpec{Name: p.Name})
	}
	return sources
}

func TestAttachIndexes(t *testing.T) {
	models := []ModelSource{{Name: "a", Path: "a.leapme"}, {Name: "b", Path: "b.leapme"}}
	if err := AttachIndexes(models, "a=a.idx, b=b.idx"); err != nil {
		t.Fatalf("named entries: %v", err)
	}
	if models[0].IndexPath != "a.idx" || models[1].IndexPath != "b.idx" {
		t.Errorf("IndexPaths = %q, %q", models[0].IndexPath, models[1].IndexPath)
	}

	one := []ModelSource{{Name: "solo", Path: "m.leapme"}}
	if err := AttachIndexes(one, "solo.idx"); err != nil {
		t.Fatalf("bare path, one model: %v", err)
	}
	if one[0].IndexPath != "solo.idx" {
		t.Errorf("bare IndexPath = %q", one[0].IndexPath)
	}

	if err := AttachIndexes(models, "bare.idx"); err == nil {
		t.Error("bare path with two models: want error")
	}
	if err := AttachIndexes(models, "ghost=x.idx"); err == nil {
		t.Error("unknown model name: want error")
	}
	if err := AttachIndexes(models, "=x.idx"); err == nil {
		t.Error("empty name: want error")
	}
}

func TestRegistrySnapshotLoad(t *testing.T) {
	fixture(t)
	dir := t.TempDir()
	mp := writeModelFile(t, dir, "m.leapme", fixModelA)
	ip := writeSnapshotFile(t, dir, "m.idx")

	reg, err := NewRegistry(fixStore, RegistryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	md, err := reg.LoadSource(ModelSource{Name: "m", Path: mp, IndexPath: ip})
	if err != nil {
		t.Fatalf("LoadSource with index: %v", err)
	}
	if md.Index == nil {
		t.Fatal("model loaded without its snapshot")
	}
	if md.Index.Len() != len(dedupKeys(t)) {
		t.Errorf("snapshot Len = %d, want %d", md.Index.Len(), len(dedupKeys(t)))
	}

	// Reload re-reads the snapshot: overwrite the file with a corrupt one
	// and the reload must fail while the old model keeps serving.
	if err := os.WriteFile(ip, []byte("not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := reg.Reload(); err == nil {
		t.Error("reload over corrupt snapshot: want error")
	}
	if got := reg.Active(); got != md {
		t.Error("corrupt reload displaced the serving model")
	}

	// Restoring the file lets the reload hot-swap both model and snapshot.
	if err := snapRewrite(t, ip); err != nil {
		t.Fatal(err)
	}
	if err := reg.Reload(); err != nil {
		t.Fatalf("reload after restore: %v", err)
	}
	swapped := reg.Active()
	if swapped == md {
		t.Error("reload did not publish a new model value")
	}
	if swapped.Index == nil || swapped.IndexPath != ip {
		t.Error("reload dropped the index snapshot")
	}
}

// dedupKeys returns the fixture dataset's distinct property keys (the
// snapshot collapses duplicates).
func dedupKeys(t testing.TB) map[string]bool {
	t.Helper()
	fixture(t)
	keys := map[string]bool{}
	for _, p := range fixData.Props {
		keys[p.Source+"\x00"+p.Name] = true
	}
	return keys
}

// snapRewrite rebuilds the fixture snapshot at path.
func snapRewrite(t testing.TB, path string) error {
	t.Helper()
	snap, err := index.BuildSnapshot(context.Background(), fixStore, fixData.Props, index.Options{Seed: 7})
	if err != nil {
		return err
	}
	return snap.WriteFile(path)
}

func TestRegistryMissingSnapshotFile(t *testing.T) {
	fixture(t)
	dir := t.TempDir()
	mp := writeModelFile(t, dir, "m.leapme", fixModelA)

	// A model whose configured snapshot cannot be read must not publish.
	reg, err := NewRegistry(fixStore, RegistryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = reg.LoadSource(ModelSource{Name: "m", Path: mp, IndexPath: filepath.Join(dir, "missing.idx")})
	if err == nil {
		t.Fatal("missing snapshot file: want error")
	}
	if reg.Active() != nil {
		t.Error("failed load still published a model")
	}
}

func TestMatchAllANNBlocking(t *testing.T) {
	dir := t.TempDir()
	ip := writeSnapshotFile(t, dir, "m.idx")
	s, _ := newTestServer(t, func(c *Config) {
		c.Models[0].IndexPath = ip
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	sources := fixtureSources(t)
	req := matchAllRequest{Sources: sources, Threshold: ptr(0.0), Blocking: "ann", Top: 10}
	resp, raw := postJSON(t, ts, "/v1/match/all", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ann blocking: status %d: %s", resp.StatusCode, raw)
	}
	var mar matchAllResponse
	if err := json.Unmarshal(raw, &mar); err != nil {
		t.Fatal(err)
	}
	if mar.Candidates == 0 {
		t.Fatal("ann blocking proposed no candidates")
	}

	// Every fixture property is in the snapshot, so the request must have
	// been served from it — one probe per property, zero ephemeral builds.
	m := s.Metrics()
	if got := m.IndexSnapshotHits.Load(); got != 1 {
		t.Errorf("IndexSnapshotHits = %d, want 1", got)
	}
	if got := m.IndexBuilds.Load(); got != 0 {
		t.Errorf("IndexBuilds = %d, want 0", got)
	}
	nProps := 0
	for _, specs := range sources {
		nProps += len(specs)
	}
	if got := m.IndexQueries.Load(); got != int64(nProps) {
		t.Errorf("IndexQueries = %d, want %d", got, nProps)
	}
	if got := m.IndexCandidates.Load(); got != int64(mar.Candidates) {
		t.Errorf("IndexCandidates = %d, want %d", got, mar.Candidates)
	}

	// A property the snapshot has never seen forces the ephemeral-build
	// path — and still answers.
	sources2 := fixtureSources(t)
	for src := range sources2 {
		sources2[src] = append(sources2[src], propSpec{Name: "warranty period expiry"})
		break
	}
	req2 := matchAllRequest{Sources: sources2, Threshold: ptr(0.0), Blocking: "ann", Top: 5}
	resp, raw = postJSON(t, ts, "/v1/match/all", req2)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ann blocking, uncovered prop: status %d: %s", resp.StatusCode, raw)
	}
	if got := m.IndexBuilds.Load(); got != 1 {
		t.Errorf("IndexBuilds after uncovered request = %d, want 1", got)
	}

	// ann-union must propose at least as much as ann alone.
	req.Blocking = "ann-union"
	resp, raw = postJSON(t, ts, "/v1/match/all", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ann-union blocking: status %d: %s", resp.StatusCode, raw)
	}
	var union matchAllResponse
	if err := json.Unmarshal(raw, &union); err != nil {
		t.Fatal(err)
	}
	if union.Candidates < mar.Candidates {
		t.Errorf("ann-union candidates %d < ann candidates %d", union.Candidates, mar.Candidates)
	}

	// The index counters surface on /metrics.
	mresp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	bodyBytes, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(bodyBytes)
	for _, series := range []string{
		"leapme_index_queries_total",
		"leapme_index_candidates_total",
		"leapme_index_builds_total",
		"leapme_index_snapshot_hits_total",
	} {
		if !strings.Contains(body, series) {
			t.Errorf("/metrics missing %s", series)
		}
	}
}

func TestMatchAllANNWithoutSnapshot(t *testing.T) {
	// No snapshot configured: every ann request builds ephemerally.
	s, _ := newTestServer(t, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req := matchAllRequest{Sources: fixtureSources(t), Threshold: ptr(0.0), Blocking: "ann", Top: 5}
	resp, raw := postJSON(t, ts, "/v1/match/all", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	m := s.Metrics()
	if got := m.IndexBuilds.Load(); got != 1 {
		t.Errorf("IndexBuilds = %d, want 1", got)
	}
	if got := m.IndexSnapshotHits.Load(); got != 0 {
		t.Errorf("IndexSnapshotHits = %d, want 0", got)
	}
}
