package guard

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunConvertsPanic(t *testing.T) {
	err := Run(func() error { panic("boom") })
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("got %T (%v), want *PanicError", err, err)
	}
	if fmt.Sprint(pe.Value) != "boom" {
		t.Errorf("panic value = %v", pe.Value)
	}
	if len(pe.Stack) == 0 {
		t.Error("no stack captured")
	}
	if !strings.Contains(pe.Error(), "boom") {
		t.Errorf("Error() = %q", pe.Error())
	}
}

func TestRunPassesThroughErrors(t *testing.T) {
	want := errors.New("plain failure")
	if err := Run(func() error { return want }); err != want {
		t.Errorf("got %v, want %v", err, want)
	}
	if err := Run(func() error { return nil }); err != nil {
		t.Errorf("got %v, want nil", err)
	}
}

func TestReportAccounting(t *testing.T) {
	r := NewReport()
	r.Do("a", func() error { return nil })
	r.Do("b", func() error { return errors.New("bad") })
	r.Do("c", func() error { panic("worse") })
	if r.Units() != 3 || r.Failed() != 2 {
		t.Fatalf("units=%d failed=%d, want 3/2", r.Units(), r.Failed())
	}
	errs := r.Errors()
	if len(errs) != 2 || errs[0].Unit != "b" || errs[1].Unit != "c" {
		t.Fatalf("errors = %+v", errs)
	}
	if err := r.Err(); err == nil || !strings.Contains(err.Error(), "2 of 3") {
		t.Errorf("Err() = %v", err)
	}
	if s := r.String(); !strings.Contains(s, "2 of 3") {
		t.Errorf("String() = %q", s)
	}
}

func TestReportErrNilOnSuccess(t *testing.T) {
	r := NewReport()
	r.Do("a", func() error { return nil })
	if err := r.Err(); err != nil {
		t.Errorf("Err() = %v", err)
	}
}

func TestReportCapsRecordedErrors(t *testing.T) {
	r := NewReport()
	for i := 0; i < 3*maxRecorded; i++ {
		r.Record(fmt.Sprintf("u%d", i), errors.New("x"))
	}
	if r.Failed() != 3*maxRecorded {
		t.Errorf("failed = %d", r.Failed())
	}
	if got := len(r.Errors()); got != maxRecorded {
		t.Errorf("recorded %d errors, want cap %d", got, maxRecorded)
	}
}

func TestGo(t *testing.T) {
	var wg sync.WaitGroup
	r := NewReport()
	Go(&wg, r, "ok", func() error { return nil })
	Go(&wg, r, "panics", func() error { panic("isolated") })
	wg.Wait()
	if r.Units() != 2 || r.Failed() != 1 {
		t.Fatalf("units=%d failed=%d", r.Units(), r.Failed())
	}
}

func TestForEachRunsAllUnits(t *testing.T) {
	var hits int64
	rep, err := ForEach(context.Background(), 4, 100, nil, func(i int) error {
		atomic.AddInt64(&hits, 1)
		if i%10 == 3 {
			panic(i)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if hits != 100 || rep.Units() != 100 {
		t.Fatalf("hits=%d units=%d", hits, rep.Units())
	}
	if rep.Failed() != 10 {
		t.Errorf("failed = %d, want 10", rep.Failed())
	}
}

func TestForEachCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var done int64
	rep, err := ForEach(ctx, 1, 1000, nil, func(i int) error {
		if atomic.AddInt64(&done, 1) == 5 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The single worker may take at most a few already-dispatched units
	// after cancel; nothing close to the full range.
	if u := rep.Units(); u >= 100 {
		t.Errorf("ran %d units after cancellation", u)
	}
}

func TestForEachDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, err := ForEach(ctx, 1, 1<<30, nil, func(i int) error {
		time.Sleep(time.Millisecond)
		return nil
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
}

func TestForEachEmptyAndNilCtx(t *testing.T) {
	rep, err := ForEach(nil, 0, 0, nil, func(i int) error { return nil })
	if err != nil || rep.Units() != 0 {
		t.Fatalf("err=%v units=%d", err, rep.Units())
	}
}
