// Package guard implements the pipeline's failure-domain model: the unit
// of failure is one piece of work (featurizing one property, scoring one
// property pair, one training phase), never the whole run.
//
// The model has three layers:
//
//   - Panic isolation. Run converts a panic inside a work unit into a
//     *PanicError carrying the panic value and stack, so a malformed
//     record or a bug in one scoring callback degrades that single unit
//     instead of aborting a 25-run evaluation. Go is the goroutine
//     variant used by worker pools.
//
//   - Failure accounting. A Report accumulates per-unit outcomes under a
//     mutex: how many units ran, how many failed, and a bounded sample of
//     the failures (labels plus errors). Callers inspect the report after
//     a run — the run itself proceeds past failed units (graceful
//     degradation) — and decide whether the failure rate is acceptable.
//
//   - Cooperative cancellation. ForEach checks its context between units
//     and stops dispatching new work as soon as the context is done, so a
//     cancelled run returns within one work unit. The in-flight units
//     finish; nothing is killed mid-write.
//
// What is NOT a unit failure: programmer errors at the call boundary
// (scoring a property whose features were never computed, dimension
// mismatches) stay hard errors that abort the run — hiding those in a
// report would mask bugs. The split mirrors the rest of the codebase:
// mathx keeps its invariant panics, while input-reachable paths return
// errors.
package guard
