package guard

import (
	"context"
	"fmt"
	"runtime"
	"sync"
)

// ForEach runs fn(0..n-1) on a pool of workers with panic isolation per
// unit, returning the run's Report. workers ≤ 0 uses GOMAXPROCS. label
// names unit i in the report (nil labels units "unit i").
//
// Cancellation is cooperative: once ctx is done no further units are
// dispatched and ForEach returns ctx.Err() after the in-flight units
// finish — a cancelled call returns within roughly one work unit. Unit
// failures do not stop the pool; inspect the report.
func ForEach(ctx context.Context, workers, n int, label func(i int) string, fn func(i int) error) (*Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	rep := NewReport()
	if n <= 0 {
		return rep, ctx.Err()
	}
	if label == nil {
		label = func(i int) string { return fmt.Sprintf("unit %d", i) }
	}

	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				rep.Do(label(i), func() error { return fn(i) })
			}
		}()
	}

	var err error
dispatch:
	for i := 0; i < n; i++ {
		select {
		case idx <- i:
		case <-ctx.Done():
			err = ctx.Err()
			break dispatch
		}
	}
	close(idx)
	wg.Wait()
	if err == nil {
		err = ctx.Err() // cancellation racing the last dispatch still reports
	}
	return rep, err
}
