package guard

import (
	"fmt"
	"runtime/debug"
	"sync"
)

// PanicError wraps a recovered panic so it can travel as an ordinary
// error. Stack is the stack of the panicking goroutine at recovery time.
type PanicError struct {
	Value any
	Stack []byte
}

// Error implements error.
func (e *PanicError) Error() string { return fmt.Sprintf("panic: %v", e.Value) }

// Run executes fn, converting a panic into a *PanicError. A nil return
// means fn completed without panicking and returned nil itself.
func Run(fn func() error) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &PanicError{Value: v, Stack: debug.Stack()}
		}
	}()
	return fn()
}

// Go runs fn in a new goroutine under panic isolation, recording the
// outcome in rep under the given unit label and marking wg done when the
// unit finishes.
func Go(wg *sync.WaitGroup, rep *Report, unit string, fn func() error) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		rep.Do(unit, fn)
	}()
}

// maxRecorded bounds how many unit errors a Report retains verbatim; the
// failure *count* is always exact. A run scoring millions of pairs must
// not turn a systematic failure into an error slice of the same size.
const maxRecorded = 32

// UnitError is one recorded unit failure.
type UnitError struct {
	Unit string
	Err  error
}

// Report accumulates per-unit outcomes of a run. It is safe for
// concurrent use; the zero value is ready.
type Report struct {
	mu     sync.Mutex
	units  int
	failed int
	errs   []UnitError
}

// NewReport returns an empty report.
func NewReport() *Report { return &Report{} }

// Do executes fn as one unit under panic isolation, records the outcome,
// and returns the unit's error (nil on success).
func (r *Report) Do(unit string, fn func() error) error {
	err := Run(fn)
	r.Record(unit, err)
	return err
}

// Record counts one completed unit; a non-nil err marks it failed.
func (r *Report) Record(unit string, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.units++
	if err == nil {
		return
	}
	r.failed++
	if len(r.errs) < maxRecorded {
		r.errs = append(r.errs, UnitError{Unit: unit, Err: err})
	}
}

// Units returns how many units completed (failed or not).
func (r *Report) Units() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.units
}

// Failed returns how many units failed.
func (r *Report) Failed() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.failed
}

// Errors returns a copy of the recorded failures (at most maxRecorded;
// Failed is the exact count).
func (r *Report) Errors() []UnitError {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]UnitError, len(r.errs))
	copy(out, r.errs)
	return out
}

// Err returns nil when no unit failed, otherwise one error summarising
// the failures with the first recorded cause.
func (r *Report) Err() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.failed == 0 {
		return nil
	}
	first := ""
	if len(r.errs) > 0 {
		first = fmt.Sprintf("; first: %s: %v", r.errs[0].Unit, r.errs[0].Err)
	}
	return fmt.Errorf("guard: %d of %d units failed%s", r.failed, r.units, first)
}

// String renders a one-line summary for logs.
func (r *Report) String() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.failed == 0 {
		return fmt.Sprintf("%d units ok", r.units)
	}
	return fmt.Sprintf("%d of %d units failed", r.failed, r.units)
}
