package parallel

import (
	"context"
	"runtime"

	"leapme/internal/guard"
)

// Resolve maps a -workers flag value to an effective worker count:
// n > 0 is used as-is, n < 0 means one worker per CPU (GOMAXPROCS), and
// 0 is returned unchanged — by convention the caller's serial/legacy
// path, kept distinct so existing single-threaded behaviour stays
// bit-for-bit reproducible unless parallelism is asked for.
func Resolve(n int) int {
	if n < 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// ForEach runs fn(0..n-1) on a pool of workers with per-unit panic
// isolation, returning the run's failure report. workers ≤ 0 uses
// GOMAXPROCS. Cancellation is cooperative: a done ctx stops dispatching
// and ForEach returns ctx.Err() once in-flight units finish. Unit
// failures (errors or isolated panics) do not stop the pool; inspect the
// report.
func ForEach(ctx context.Context, workers, n int, label func(i int) string, fn func(i int) error) (*guard.Report, error) {
	return guard.ForEach(ctx, workers, n, label, fn)
}

// Map runs fn(i) for every i in [0, n) across workers and returns the
// results in index order — the ordered merge. out[i] is fn(i)'s value
// regardless of which worker computed it or when, so a caller that folds
// the results left-to-right gets bits identical to the serial loop.
// Units that failed (error or isolated panic) leave the zero value at
// their index; consult the report.
func Map[T any](ctx context.Context, workers, n int, label func(i int) string, fn func(i int) (T, error)) ([]T, *guard.Report, error) {
	out := make([]T, n)
	rep, err := ForEach(ctx, workers, n, label, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	return out, rep, err
}

// Span is a half-open index range [Lo, Hi).
type Span struct{ Lo, Hi int }

// Chunks splits [0, n) into consecutive spans of the given size (the
// last may be shorter). The chunk structure depends only on n and size —
// never on the worker count — which is what makes chunked reductions
// reproducible across worker counts.
func Chunks(n, size int) []Span {
	if n <= 0 {
		return nil
	}
	if size <= 0 {
		size = n
	}
	out := make([]Span, 0, (n+size-1)/size)
	for lo := 0; lo < n; lo += size {
		hi := lo + size
		if hi > n {
			hi = n
		}
		out = append(out, Span{Lo: lo, Hi: hi})
	}
	return out
}

// TreeReduce folds n buffers pairwise in a fixed binary-tree order:
// stride 1 merges buffer i+1 into buffer i for even i, stride 2 merges
// i+2 into i for i ≡ 0 (mod 4), and so on; buffer 0 ends up holding the
// total. merge(dst, src) must fold buffer src into buffer dst. The
// reduction order is a pure function of n, so the result is bit-identical
// no matter how many workers produced the buffers.
func TreeReduce(n int, merge func(dst, src int)) {
	for stride := 1; stride < n; stride *= 2 {
		for i := 0; i+stride < n; i += 2 * stride {
			merge(i, i+stride)
		}
	}
}

// SeedStream derives the i-th independent RNG stream from a master seed
// using the SplitMix64 finalizer. Streams are decorrelated even for
// adjacent i (unlike master+i, which feeds nearly identical seeds to
// generators that mix poorly) and depend only on (master, i), so a
// repetition gets the same stream whether it runs first, last, or
// concurrently with all the others.
func SeedStream(master int64, i int) int64 {
	z := uint64(master) + (uint64(i)+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}
