package parallel

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"testing"
	"time"
)

func TestResolve(t *testing.T) {
	if got := Resolve(3); got != 3 {
		t.Errorf("Resolve(3) = %d", got)
	}
	if got := Resolve(0); got != 0 {
		t.Errorf("Resolve(0) = %d, want 0 (serial/legacy sentinel)", got)
	}
	if got := Resolve(-1); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Resolve(-1) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
}

func TestMapOrderedAcrossWorkerCounts(t *testing.T) {
	const n = 100
	fn := func(i int) (float64, error) { return math.Sqrt(float64(i)) * 1.0001, nil }
	ref, rep, err := Map(context.Background(), 1, n, nil, fn)
	if err != nil || rep.Failed() != 0 {
		t.Fatalf("workers=1: err=%v failed=%d", err, rep.Failed())
	}
	for _, w := range []int{2, 4, 8} {
		got, rep, err := Map(context.Background(), w, n, nil, fn)
		if err != nil || rep.Failed() != 0 {
			t.Fatalf("workers=%d: err=%v failed=%d", w, err, rep.Failed())
		}
		for i := range ref {
			if math.Float64bits(got[i]) != math.Float64bits(ref[i]) {
				t.Fatalf("workers=%d: out[%d] = %x, want %x", w, i, got[i], ref[i])
			}
		}
	}
}

func TestMapIsolatesPanics(t *testing.T) {
	out, rep, err := Map(context.Background(), 4, 10, nil, func(i int) (int, error) {
		if i == 3 {
			panic("boom")
		}
		if i == 5 {
			return 0, errors.New("unit error")
		}
		return i * 2, nil
	})
	if err != nil {
		t.Fatalf("hard error: %v", err)
	}
	if rep.Failed() != 2 {
		t.Errorf("failed units = %d, want 2", rep.Failed())
	}
	if out[3] != 0 || out[5] != 0 {
		t.Errorf("failed units left non-zero values: %d, %d", out[3], out[5])
	}
	if out[4] != 8 {
		t.Errorf("out[4] = %d, want 8", out[4])
	}
}

func TestForEachCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{}, 1)
	_, err := func() (*int, error) {
		rep, err := ForEach(ctx, 2, 1000, nil, func(i int) error {
			select {
			case started <- struct{}{}:
				cancel()
			default:
			}
			time.Sleep(time.Millisecond)
			return nil
		})
		_ = rep
		return nil, err
	}()
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

func TestChunksStructureIsWorkerIndependent(t *testing.T) {
	got := Chunks(10, 4)
	want := []Span{{0, 4}, {4, 8}, {8, 10}}
	if len(got) != len(want) {
		t.Fatalf("Chunks(10,4) = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Chunks(10,4)[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if Chunks(0, 4) != nil {
		t.Error("Chunks(0, 4) should be nil")
	}
	if got := Chunks(5, 0); len(got) != 1 || got[0] != (Span{0, 5}) {
		t.Errorf("Chunks(5, 0) = %v, want one full span", got)
	}
}

// TestTreeReduceOrderIsFixed pins the exact merge sequence: the grouping
// of floating-point additions downstream depends on it.
func TestTreeReduceOrderIsFixed(t *testing.T) {
	var seq []string
	TreeReduce(5, func(dst, src int) { seq = append(seq, fmt.Sprintf("%d<-%d", dst, src)) })
	want := []string{"0<-1", "2<-3", "0<-2", "0<-4"}
	if len(seq) != len(want) {
		t.Fatalf("merge sequence = %v, want %v", seq, want)
	}
	for i := range want {
		if seq[i] != want[i] {
			t.Fatalf("merge sequence = %v, want %v", seq, want)
		}
	}
}

func TestTreeReduceSums(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 16, 33} {
		buf := make([]int, n)
		want := 0
		for i := range buf {
			buf[i] = i + 1
			want += i + 1
		}
		TreeReduce(n, func(dst, src int) { buf[dst] += buf[src] })
		if buf[0] != want {
			t.Errorf("n=%d: sum = %d, want %d", n, buf[0], want)
		}
	}
}

func TestSeedStreamDeterminismAndSpread(t *testing.T) {
	seen := map[int64]bool{}
	for i := 0; i < 1000; i++ {
		s := SeedStream(42, i)
		if s != SeedStream(42, i) {
			t.Fatal("SeedStream is not deterministic")
		}
		if seen[s] {
			t.Fatalf("seed collision at stream %d", i)
		}
		seen[s] = true
	}
	if SeedStream(1, 0) == SeedStream(2, 0) {
		t.Error("different masters produced the same stream 0")
	}
}
