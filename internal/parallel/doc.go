// Package parallel provides the deterministic worker-pool primitives the
// training and featurization pipelines fan out on. Every primitive is
// designed so that the *result* of a computation depends only on its
// inputs — never on the worker count or on goroutine scheduling — which
// is what lets `-workers=8` be proven bit-identical to `-workers=1`
// (see `make test-determinism`).
//
// The three building blocks:
//
//   - ForEach / Map: a bounded worker pool with per-unit panic isolation
//     (via internal/guard) whose results are merged in index order. A
//     pure map followed by an in-order reduce is bit-identical to the
//     serial loop for any worker count, because the floating-point
//     additions happen in exactly the serial order.
//
//   - Chunks + TreeReduce: when the per-unit accumulation itself must be
//     parallelised (mini-batch gradients), the work is split into
//     fixed-size chunks — the chunk structure depends only on the input
//     length, never on the worker count — and the per-chunk partial sums
//     are folded in a fixed binary-tree order. The grouping of additions
//     is then a pure function of the input size, so any worker count
//     produces the same bits.
//
//   - SeedStream: per-repetition RNG streams derived from a master seed
//     with SplitMix64, so repetition i consumes the same random sequence
//     no matter how many repetitions run concurrently or in what order
//     they are scheduled.
package parallel
