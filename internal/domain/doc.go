// Package domain models the e-commerce product domain the paper evaluates
// on: four product categories (cameras, headphones, phones, TVs), each with
// a reference ontology of properties. Every reference property carries a
// set of synonymous surface names (the heterogeneity LEAPME must bridge —
// "camera resolution" vs "effective pixels" vs "megapixel"), a value
// grammar that renders realistic instance values in per-source formats, and
// context words used to generate a training corpus for the embedding
// substrate.
//
// The package replaces two unavailable externals at once:
//
//   - the DI2KG/WDC product datasets: package dataset samples multi-source
//     data from these ontologies with the same heterogeneity statistics;
//   - the pre-trained GloVe vectors: Corpus emits a domain corpus whose
//     co-occurrence structure makes synonym groups embed close together,
//     which is the property the paper's features rely on.
package domain
