package domain

import (
	"math/rand"
	"strings"
	"testing"

	"leapme/internal/embedding"
)

func TestCatalogWellFormed(t *testing.T) {
	for name, cat := range Categories() {
		if cat.Name != name {
			t.Errorf("category %q has Name %q", name, cat.Name)
		}
		if len(cat.Props) < 20 {
			t.Errorf("category %q has only %d properties", name, len(cat.Props))
		}
		seen := map[string]bool{}
		for _, p := range cat.Props {
			if p.Canonical == "" {
				t.Errorf("%s: property with empty canonical name", name)
			}
			if seen[p.Canonical] {
				t.Errorf("%s: duplicate canonical property %q", name, p.Canonical)
			}
			seen[p.Canonical] = true
			if len(p.Synonyms) < 2 {
				t.Errorf("%s/%s: needs at least 2 synonyms, has %d", name, p.Canonical, len(p.Synonyms))
			}
			switch p.Kind {
			case KindEnum, KindEnumSet:
				if len(p.Values) == 0 {
					t.Errorf("%s/%s: enum kind with no values", name, p.Canonical)
				}
			case KindNumericUnit, KindRange:
				if p.Hi <= p.Lo {
					t.Errorf("%s/%s: bad numeric range [%v, %v]", name, p.Canonical, p.Lo, p.Hi)
				}
			case KindModel, KindText:
				if len(p.Words) == 0 {
					t.Errorf("%s/%s: word kind with no words", name, p.Canonical)
				}
			}
		}
	}
}

func TestPropByCanonical(t *testing.T) {
	cat := Cameras()
	if p := cat.PropByCanonical("resolution"); p == nil || p.Canonical != "resolution" {
		t.Error("PropByCanonical failed for existing property")
	}
	if p := cat.PropByCanonical("nonexistent"); p != nil {
		t.Error("PropByCanonical should return nil for unknown")
	}
}

func TestValueGenerationNonEmpty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for name, cat := range Categories() {
		for _, p := range cat.Props {
			for trial := 0; trial < 20; trial++ {
				style := RandomStyle(rng)
				v, err := p.Value(rng, style)
				if err != nil {
					t.Fatalf("%s/%s: %v", name, p.Canonical, err)
				}
				if strings.TrimSpace(v) == "" {
					t.Fatalf("%s/%s: empty value (style %+v)", name, p.Canonical, style)
				}
			}
		}
	}
}

func TestValueStylesDiffer(t *testing.T) {
	// Two sources with different styles should usually render the same
	// property differently: that heterogeneity is the point of the
	// instance features.
	p := Cameras().PropByCanonical("weight")
	a := FormatStyle{UnitIndex: 0, UnitSpace: true}
	b := FormatStyle{UnitIndex: 1, UnitSpace: false}
	rng := rand.New(rand.NewSource(2))
	va, err := p.Value(rng, a)
	if err != nil {
		t.Fatal(err)
	}
	vb, err := p.Value(rng, b)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(va, "grams") || !strings.Contains(vb, "grams") {
		t.Errorf("unit styles not applied: %q vs %q", va, vb)
	}
}

func TestSurfaceNameConventions(t *testing.T) {
	p := Cameras().PropByCanonical("shutter speed")
	got := map[string]bool{}
	for v := 0; v < len(p.Synonyms); v++ {
		for c := 0; c < NumNamingConventions; c++ {
			got[p.SurfaceName(v, c)] = true
		}
	}
	// 5 synonyms × 5 conventions with some collisions; expect plenty of
	// distinct surface forms.
	if len(got) < 10 {
		t.Errorf("only %d distinct surface names", len(got))
	}
	if !got["shutter_speed"] {
		t.Error("snake_case convention missing")
	}
	if !got["shutterSpeed"] {
		t.Error("camelCase convention missing")
	}
	if !got["SHUTTER SPEED"] {
		t.Error("upper-case convention missing")
	}
}

func TestDecorateNameStable(t *testing.T) {
	if decorateName("a b", 1) != "A B" {
		t.Errorf("title case = %q", decorateName("a b", 1))
	}
	if decorateName("a b", 7) != decorateName("a b", 7%NumNamingConventions) {
		t.Error("convention should wrap modulo NumNamingConventions")
	}
}

func TestGenerateNoiseProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	props, err := GenerateNoiseProperties(300, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(props) != 300 {
		t.Fatalf("generated %d, want 300", len(props))
	}
	seen := map[string]bool{}
	for _, np := range props {
		if np.Name == "" {
			t.Fatal("empty noise property name")
		}
		if seen[np.Name] {
			t.Fatalf("duplicate noise property %q", np.Name)
		}
		seen[np.Name] = true
		v, err := np.Spec.Value(rng, RandomStyle(rng))
		if err != nil {
			t.Fatalf("noise property %q: %v", np.Name, err)
		}
		if strings.TrimSpace(v) == "" {
			t.Fatalf("noise property %q produced empty value", np.Name)
		}
	}
}

func TestCorpusShape(t *testing.T) {
	cfg := CorpusConfig{SentencesPerProp: 10, Seed: 1}
	corpus := Corpus([]*Category{Cameras()}, cfg)
	wantLen := 10*len(Cameras().Props) + 10*4 // property + noise-vocabulary sentences
	if len(corpus) != wantLen {
		t.Fatalf("corpus has %d sentences, want %d", len(corpus), wantLen)
	}
	for _, sent := range corpus {
		if len(sent) < 4 {
			t.Fatalf("sentence too short: %v", sent)
		}
	}
}

func TestCorpusDeterministic(t *testing.T) {
	cfg := CorpusConfig{SentencesPerProp: 5, Seed: 42}
	a := Corpus([]*Category{Headphones()}, cfg)
	b := Corpus([]*Category{Headphones()}, cfg)
	if len(a) != len(b) {
		t.Fatal("non-deterministic corpus size")
	}
	for i := range a {
		if strings.Join(a[i], " ") != strings.Join(b[i], " ") {
			t.Fatalf("sentence %d differs between runs", i)
		}
	}
}

// TestCorpusTrainsSynonymGeometry is the end-to-end check of the GloVe
// substitution: embeddings trained on the generated corpus must place
// synonyms of the same property closer together than unrelated properties.
func TestCorpusTrainsSynonymGeometry(t *testing.T) {
	if testing.Short() {
		t.Skip("embedding training in -short mode")
	}
	corpus := Corpus([]*Category{Cameras()}, CorpusConfig{SentencesPerProp: 60, Seed: 1})
	cfg := embedding.DefaultGloVeConfig()
	cfg.Dim = 32
	cfg.Epochs = 25
	store, err := embedding.TrainGloVe(corpus, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Synonyms of "resolution" vs an unrelated property word.
	within := store.Similarity("megapixels", "mp")
	cross := store.Similarity("megapixels", "shutter")
	if within <= cross {
		t.Errorf("megapixels~mp (%.3f) should beat megapixels~shutter (%.3f)", within, cross)
	}
	within2 := store.Similarity("weight", "mass")
	cross2 := store.Similarity("weight", "wifi")
	if within2 <= cross2 {
		t.Errorf("weight~mass (%.3f) should beat weight~wifi (%.3f)", within2, cross2)
	}
}
