package domain

import (
	"fmt"
	"math/rand"
)

// Noise properties model the long tail of source-specific attributes real
// product pages carry (packaging, logistics, marketing fields) that match
// nothing in any other source. The DI2KG camera data is dominated by such
// properties: >3200 properties but only ~9200 matching pairs.

var noiseQualifiers = []string{
	"package", "box", "kit", "shipping", "item", "product", "listing",
	"seller", "store", "catalog", "bundle", "accessory", "order",
	"warranty", "included", "retail", "outer", "inner", "carton",
	"pallet", "vendor", "supplier", "import", "export", "customs",
	"label", "insert", "manual", "invoice", "promo", "gift", "sample",
	"return", "service", "support", "dealer", "outlet", "clearance",
}

var noiseAttributes = []string{
	"width", "height", "depth", "length", "weight", "volume", "id",
	"code", "sku", "upc", "ean", "asin", "number", "reference", "count",
	"quantity", "date", "origin", "category", "condition", "notes",
	"rating", "reviews", "availability", "handling time", "material",
	"contents", "series", "edition", "version", "group", "tier",
	"region", "locale", "zone", "batch", "lot", "grade", "status",
	"priority", "channel", "fee", "tax", "deposit", "surcharge",
	// The long tail below keeps cross-source attribute collisions rare:
	// real sites' unmatched properties are idiosyncratic, not
	// combinations of a handful of measure words.
	"barcode", "packaging type", "assembly", "instructions",
	"certification", "compliance", "adapter", "cable type",
	"mount thread", "tripod socket", "strap", "case", "cleaning kit",
	"firmware", "driver version", "app support", "menu languages",
	"registration", "support url", "hotline", "returns window",
	"restocking", "shipping class", "delivery estimate", "carrier",
	"tracking", "insurance", "signature", "gift wrap", "bundle items",
	"promotion", "discount", "coupon", "loyalty points", "financing",
	"installments", "trade in", "care plan", "serial", "factory",
	"inspection", "quality check", "temperature range",
	"storage conditions", "shelf life", "recyclable", "rohs",
	"energy star", "units per carton", "pallet layers", "container",
	"customs code", "hs code", "duty rate", "vat class", "msds",
	"country of assembly", "import license", "export permit",
	"fragility", "stacking limit", "tare", "gross measure",
	"net measure", "seal type", "closure", "label language",
	"manual pages", "box art", "window display", "demo unit",
	"floor model", "refurb grade", "return reason", "disposition",
	"claim window", "processing days", "cutoff time", "pick location",
	"bin", "aisle", "warehouse", "dock", "route", "wave", "cycle count",
}

// NoiseProperty is a generated source-specific property with no match in
// the reference ontology.
type NoiseProperty struct {
	Name string
	Spec PropertySpec // value grammar for generating instance values
}

// GenerateNoiseProperties produces n distinct noise properties. Names are
// qualifier+attribute pairs, escalating to qualifier+qualifier+attribute
// triples once the pair space thins out (~19·30 = 570 pairs; the triple
// space adds ~10k more). Different sources thus share individual surface
// words — realistic near-miss noise — but never near-identical full names,
// which would be semantic matches mislabeled as negatives.
func GenerateNoiseProperties(n int, rng *rand.Rand) ([]NoiseProperty, error) {
	maxNames := len(noiseQualifiers) * len(noiseAttributes) * len(noiseQualifiers)
	if n > maxNames/2 {
		// n comes straight from generator configuration — an input error,
		// not an invariant violation.
		return nil, fmt.Errorf("domain: %d noise properties exceeds the distinct-name budget %d", n, maxNames/2)
	}
	seen := map[string]bool{}
	out := make([]NoiseProperty, 0, n)
	for len(out) < n {
		q := noiseQualifiers[rng.Intn(len(noiseQualifiers))]
		a := noiseAttributes[rng.Intn(len(noiseAttributes))]
		name := q + " " + a
		if seen[name] {
			q2 := noiseQualifiers[rng.Intn(len(noiseQualifiers))]
			if q2 == q {
				continue
			}
			name = q2 + " " + name
			if seen[name] {
				continue
			}
		}
		seen[name] = true
		out = append(out, NoiseProperty{Name: name, Spec: noiseValueSpec(name, a, rng)})
	}
	return out, nil
}

// nameHash mixes a property name into a small deterministic integer used
// to diversify value grammars between noise properties that share an
// attribute word.
func nameHash(name string) int {
	h := 2166136261
	for i := 0; i < len(name); i++ {
		h = (h ^ int(name[i])) * 16777619 & 0x7fffffff
	}
	return h
}

// noiseTextPool is the vocabulary free-text noise values draw from. Each
// noise property receives its own random subset (see noiseValueSpec) so
// two unmatched properties that happen to share an attribute word do not
// also share a value distribution — real sites phrase such fields
// differently.
var noiseTextPool = []string{
	"standard", "premium", "basic", "extended", "limited", "special",
	"default", "regular", "classic", "deluxe", "economy", "express",
	"priority", "domestic", "international", "seasonal", "exclusive",
	"certified", "generic", "custom",
}

// noiseValueSpec picks a value grammar plausible for the attribute word.
// The grammar is *keyed to the full property name*: two noise properties
// sharing an attribute ("pallet weight" vs "insert weight") measure
// different things at different magnitudes in different units, exactly as
// on real sites — which is what lets a matcher separate them.
func noiseValueSpec(name, attribute string, rng *rand.Rand) PropertySpec {
	h := nameHash(name)
	scale := []float64{0.1, 1, 10, 100}[h%4]
	switch attribute {
	case "width", "height", "depth", "length":
		units := [][]string{{"cm", "centimeters"}, {"mm"}, {"in", "inches"}, {"m", "meters"}}[h/4%4]
		return PropertySpec{Kind: KindNumericUnit, Lo: 1 * scale, Hi: 100 * scale, Decimals: 1,
			Units: units}
	case "weight", "volume":
		units := [][]string{{"kg", "kilograms"}, {"g", "grams"}, {"lbs"}, {"l", "liters"}}[h/4%4]
		return PropertySpec{Kind: KindNumericUnit, Lo: 0.1 * scale, Hi: 10 * scale, Decimals: 2,
			Units: units}
	case "id", "code", "sku", "upc", "ean", "asin", "number", "reference":
		// Identifier widths differ per field (SKU vs EAN vs internal id).
		lo := []float64{1e4, 1e6, 1e8, 1e11}[h/16%4]
		return PropertySpec{Kind: KindNumeric, Lo: lo, Hi: lo * 90, Decimals: 0}
	case "count", "quantity", "reviews":
		hi := []float64{9, 99, 999, 9999}[h/16%4]
		return PropertySpec{Kind: KindNumeric, Lo: 1, Hi: hi, Decimals: 0}
	case "rating":
		switch h / 16 % 3 {
		case 0:
			return PropertySpec{Kind: KindNumericUnit, Lo: 1, Hi: 5, Decimals: 1, Units: []string{"stars", "/5"}}
		case 1:
			return PropertySpec{Kind: KindNumericUnit, Lo: 1, Hi: 10, Decimals: 1, Units: []string{"/10", "points"}}
		default:
			return PropertySpec{Kind: KindNumericUnit, Lo: 10, Hi: 100, Decimals: 0, Units: []string{"%"}}
		}
	case "condition":
		return PropertySpec{Kind: KindEnum, Values: []string{"new", "used", "refurbished", "open box"}}
	case "availability":
		return PropertySpec{Kind: KindEnum, Values: []string{"in stock", "out of stock", "preorder", "backordered"}}
	case "origin":
		return PropertySpec{Kind: KindEnum, Values: []string{"China", "Japan", "Germany", "Vietnam", "Thailand", "USA"}}
	case "material":
		return PropertySpec{Kind: KindEnum, Values: []string{"plastic", "aluminum", "magnesium alloy", "polycarbonate"}}
	case "fee", "tax", "deposit", "surcharge":
		return PropertySpec{Kind: KindPrice, Lo: 1 * scale, Hi: 80 * scale, Decimals: 2}
	case "date":
		return PropertySpec{Kind: KindNumeric, Lo: 2015, Hi: 2021, Decimals: 0}
	default:
		// Long-tail attributes: the grammar kind itself is keyed to the
		// name, so same-attribute collisions across sources still often
		// differ in value shape.
		switch h / 64 % 4 {
		case 0:
			return PropertySpec{Kind: KindNumeric, Lo: 1 * scale, Hi: 500 * scale, Decimals: h % 3}
		case 1:
			return PropertySpec{Kind: KindBoolean, Context: []string{"supported", "included"}}
		case 2:
			vals := make([]string, 4)
			for i := range vals {
				vals[i] = noiseTextPool[(h/256+i*7)%len(noiseTextPool)]
			}
			return PropertySpec{Kind: KindEnum, Values: vals}
		default:
			idx := rng.Perm(len(noiseTextPool))[:6]
			words := make([]string, len(idx))
			for i, j := range idx {
				words[i] = noiseTextPool[j]
			}
			return PropertySpec{Kind: KindText, Words: words}
		}
	}
}
