package domain

import (
	"math/rand"

	"leapme/internal/text"
)

// CorpusConfig controls synthetic corpus generation for embedding training.
type CorpusConfig struct {
	// SentencesPerProp is how many sentences to emit per reference
	// property. More sentences → tighter synonym clusters.
	SentencesPerProp int
	// Seed drives all sampling.
	Seed int64
}

// DefaultCorpusConfig returns a corpus size that trains useful embeddings
// in a few seconds.
func DefaultCorpusConfig() CorpusConfig {
	return CorpusConfig{SentencesPerProp: 120, Seed: 1}
}

// Corpus generates a tokenized training corpus for the given categories.
//
// The generator's one job is to reproduce the co-occurrence structure that
// makes pre-trained GloVe useful to LEAPME: all synonyms of a reference
// property must share context. Each sentence therefore mentions one
// synonym of one property together with that property's context words, a
// rendered instance value, and generic spec-sheet filler, e.g.
//
//	"the camera resolution of this model is 24 mp great sensor detail"
//	"effective pixels rated at 45 megapixels sharp image sensor"
//
// Because "camera resolution", "effective pixels" and "mp" all co-occur
// with {sensor, image, pixels, ...}, their trained vectors converge, while
// unrelated properties (driven by disjoint context sets) stay apart.
func Corpus(categories []*Category, cfg CorpusConfig) [][]string {
	if cfg.SentencesPerProp <= 0 {
		cfg.SentencesPerProp = DefaultCorpusConfig().SentencesPerProp
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var out [][]string
	out = append(out, noiseSentences(cfg.SentencesPerProp*4, rng)...)
	for _, cat := range categories {
		for pi := range cat.Props {
			p := &cat.Props[pi]
			for s := 0; s < cfg.SentencesPerProp; s++ {
				style := RandomStyle(rng)
				sent := make([]string, 0, 16)
				// Context words bracket the synonym tokens so they land
				// inside the co-occurrence window on both sides. Constant
				// filler ("the", "is", category name) is deliberately
				// absent: tokens shared by every sentence give all vectors
				// a common component that washes out cosine contrasts on
				// a corpus this small.
				if len(p.Context) > 0 {
					sent = append(sent, p.Context[rng.Intn(len(p.Context))])
				}
				// One synonym per sentence, cycling so all synonyms appear.
				syn := p.Synonyms[s%max(1, len(p.Synonyms))]
				sent = append(sent, text.Tokenize(syn)...)
				for k := 0; k < 2 && len(p.Context) > 0; k++ {
					sent = append(sent, p.Context[rng.Intn(len(p.Context))])
				}
				// Boolean values are omitted: "yes"/"no" co-occurring with
				// every flag property would pull all flag names into one
				// embedding cluster, which pre-trained prose embeddings
				// do not exhibit. Other kinds contribute their value
				// tokens (units, enum values) to the vocabulary — the
				// instance features need vectors for them.
				if p.Kind != KindBoolean {
					// Corpus generation is best-effort: a spec with a
					// broken value grammar contributes no value tokens
					// rather than aborting corpus construction.
					if v, err := p.Value(rng, style); err == nil {
						sent = append(sent, text.Tokenize(v)...)
					}
				}
				if len(p.Context) > 0 {
					sent = append(sent, p.Context[rng.Intn(len(p.Context))])
				}
				out = append(out, sent)
			}
		}
	}
	return out
}

// noiseSentences gives the noise-property vocabulary (package, box, sku,
// width, ...) embedding coverage. Without it every noise word would be
// out-of-vocabulary and map to the zero vector, making the names
// "box width" and "kit width" embed identically — false positives no
// classifier could avoid. Each sentence pairs a qualifier with an
// attribute and attribute-flavoured context so qualifiers and attributes
// get distinct, structured vectors.
func noiseSentences(n int, rng *rand.Rand) [][]string {
	attrContext := map[string][]string{
		"width": {"size", "measure", "cm"}, "height": {"size", "measure", "cm"},
		"depth": {"size", "measure", "cm"}, "length": {"size", "measure", "cm"},
		"weight": {"mass", "measure", "kg"}, "volume": {"size", "capacity", "liters"},
		"id": {"identifier", "number", "lookup"}, "code": {"identifier", "number", "lookup"},
		"sku": {"identifier", "inventory", "lookup"}, "upc": {"identifier", "barcode", "lookup"},
		"ean": {"identifier", "barcode", "lookup"}, "asin": {"identifier", "amazon", "lookup"},
		"number": {"identifier", "lookup", "digits"}, "reference": {"identifier", "lookup", "digits"},
		"count": {"quantity", "units", "total"}, "quantity": {"quantity", "units", "total"},
		"date": {"time", "day", "calendar"}, "origin": {"country", "made", "from"},
		"category": {"type", "section", "department"}, "condition": {"state", "quality", "used"},
		"notes": {"comment", "remark", "text"}, "rating": {"stars", "score", "review"},
		"reviews": {"stars", "score", "customer"}, "availability": {"stock", "supply", "order"},
		"material": {"build", "made", "surface"}, "contents": {"items", "included", "inside"},
		"series": {"line", "family", "generation"}, "edition": {"line", "release", "variant"},
		"version": {"release", "revision", "variant"}, "group": {"set", "collection", "class"},
		"tier": {"level", "rank", "class"}, "region": {"area", "territory", "market"},
		"locale": {"language", "territory", "market"}, "zone": {"area", "territory", "district"},
		"batch": {"production", "run", "lot"}, "lot": {"production", "run", "batch"},
		"grade": {"quality", "level", "rank"}, "status": {"state", "active", "current"},
		"priority": {"urgency", "level", "rank"}, "channel": {"sales", "distribution", "market"},
		"fee": {"charge", "cost", "payment"}, "tax": {"charge", "duty", "payment"},
		"deposit": {"charge", "payment", "refund"}, "surcharge": {"charge", "extra", "payment"},
	}
	// Long-tail attributes without a curated context get a deterministic
	// pair of generic words, so distinct attributes develop distinct
	// vectors instead of collapsing into one "logistics" direction.
	genericCtx := []string{
		"detail", "record", "entry", "field", "value", "spec", "sheet",
		"page", "section", "form", "document", "file", "report", "table",
		"system", "process", "step", "stage", "policy", "rule", "term",
		"option", "setting", "mode", "flag", "note", "tag", "mark",
		"source", "target", "input", "output", "start", "end", "limit",
		"scope", "range", "level", "unit", "measure",
	}
	var out [][]string
	for i := 0; i < n; i++ {
		q := noiseQualifiers[rng.Intn(len(noiseQualifiers))]
		a := noiseAttributes[rng.Intn(len(noiseAttributes))]
		sent := append([]string{}, text.Tokenize(q)...)
		sent = append(sent, text.Tokenize(a)...)
		if ctx, ok := attrContext[a]; ok {
			sent = append(sent, ctx[rng.Intn(len(ctx))], ctx[rng.Intn(len(ctx))])
		} else {
			h := nameHash(a)
			sent = append(sent, genericCtx[h%len(genericCtx)], genericCtx[h/7%len(genericCtx)])
		}
		// A second qualifier mention keeps qualifier vectors anchored to
		// the logistics cluster without collapsing them together.
		sent = append(sent, "item", noiseQualifiers[rng.Intn(len(noiseQualifiers))])
		out = append(out, sent)
	}
	return out
}

// SynonymGroups returns each reference property's synonym list across the
// given categories — the probe set for embedding.Store.MeasureQuality.
func SynonymGroups(categories []*Category) [][]string {
	var out [][]string
	for _, cat := range categories {
		for _, p := range cat.Props {
			if len(p.Synonyms) > 1 {
				out = append(out, p.Synonyms)
			}
		}
	}
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
