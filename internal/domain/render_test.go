package domain

import (
	"math/rand"
	"strings"
	"testing"

	"leapme/internal/text"
)

// TestSharedValueRendersConsistently is the property the dataset
// generator's entity universe depends on: the same underlying value
// rendered under two styles must express the same fact (equal numeric
// content), even though the surface strings differ.
func TestSharedValueRendersConsistently(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := Cameras().PropByCanonical("weight") // KindNumericUnit
	v, err := p.Sample(rng)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := p.Render(v, FormatStyle{UnitIndex: 0, UnitSpace: true}, rng)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := p.Render(v, FormatStyle{UnitIndex: 1, UnitSpace: false, DecimalComma: true}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if s1 == s2 {
		t.Logf("styles coincided: %q", s1)
	}
	n1 := leadingNumber(s1)
	n2 := leadingNumber(s2)
	if n1 != n2 {
		t.Errorf("same value rendered different numbers: %q vs %q", s1, s2)
	}
}

func leadingNumber(s string) string {
	s = strings.ReplaceAll(s, ",", ".")
	end := 0
	for end < len(s) && (s[end] >= '0' && s[end] <= '9' || s[end] == '.') {
		end++
	}
	return s[:end]
}

func TestEnumRenderStable(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	p := Cameras().PropByCanonical("sensor type")
	v, err := p.Sample(rng)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := p.Render(v, FormatStyle{CaseStyle: 0}, rng)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := p.Render(v, FormatStyle{CaseStyle: 1}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.EqualFold(s1, s2) {
		t.Errorf("same enum value rendered different members: %q vs %q", s1, s2)
	}
}

func TestBooleanRenderRespectsValue(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := Cameras().PropByCanonical("wifi")
	yes := Value{Bool: true}
	no := Value{Bool: false}
	for style := 0; style < 4; style++ {
		sYes, err := p.Render(yes, FormatStyle{BoolStyle: style}, rng)
		if err != nil {
			t.Fatal(err)
		}
		sNo, err := p.Render(no, FormatStyle{BoolStyle: style}, rng)
		if err != nil {
			t.Fatal(err)
		}
		if sYes == sNo {
			t.Errorf("style %d: yes and no render identically: %q", style, sYes)
		}
	}
}

func TestRangeValuesAscending(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	p := Cameras().PropByCanonical("iso range")
	for i := 0; i < 50; i++ {
		v, err := p.Sample(rng)
		if err != nil {
			t.Fatal(err)
		}
		if v.Num2 < v.Num {
			t.Fatalf("range sampled descending: %v > %v", v.Num, v.Num2)
		}
	}
}

func TestRenderNumberNoDigitLoss(t *testing.T) {
	// Regression: integer "5410" must not lose its trailing zero.
	p := &PropertySpec{Kind: KindNumeric, Lo: 5410, Hi: 5410, Decimals: 0}
	rng := rand.New(rand.NewSource(5))
	got, err := p.Value(rng, FormatStyle{})
	if err != nil {
		t.Fatal(err)
	}
	if got != "5410" {
		t.Errorf("renderNumber(5410) = %q", got)
	}
	// And fraction trimming still works.
	p2 := &PropertySpec{Kind: KindNumeric, Lo: 2.5, Hi: 2.5, Decimals: 2}
	got, err = p2.Value(rng, FormatStyle{})
	if err != nil {
		t.Fatal(err)
	}
	if got != "2.5" {
		t.Errorf("renderNumber(2.50) = %q", got)
	}
}

func TestTokenizeRoundTripVocabulary(t *testing.T) {
	// Every synonym token of every category must survive tokenisation as
	// a non-empty word list; otherwise its embedding lookup silently
	// degrades to the zero vector.
	for name, cat := range Categories() {
		for _, p := range cat.Props {
			for _, syn := range p.Synonyms {
				if len(text.Tokenize(syn)) == 0 {
					t.Errorf("%s/%s: synonym %q tokenises to nothing", name, p.Canonical, syn)
				}
			}
		}
	}
}
