package domain

import (
	"fmt"
	"math/rand"
	"strings"
)

// ValueKind describes how instance values of a reference property are
// rendered.
type ValueKind int

// The value grammars.
const (
	KindNumericUnit ValueKind = iota // number + unit, e.g. "24.2 MP"
	KindNumeric                      // bare number, e.g. "4000"
	KindDimensions                   // WxH(xD), e.g. "6000 x 4000"
	KindRange                        // lo–hi + unit, e.g. "30-1/4000 s"
	KindEnum                         // one of a closed list, e.g. "CMOS"
	KindEnumSet                      // comma list drawn from a closed list
	KindModel                        // brand + alphanumeric model code
	KindText                         // short free text from a word pool
	KindBoolean                      // yes/no style flags
	KindPrice                        // currency-formatted number
)

// PropertySpec is one property of a category's reference ontology.
type PropertySpec struct {
	Canonical string   // reference name (ground-truth cluster id)
	Synonyms  []string // surface names sources may use, incl. the canonical
	Kind      ValueKind
	Lo, Hi    float64  // numeric range for the numeric kinds
	Decimals  int      // max decimal places for numeric rendering
	Units     []string // synonymous unit spellings (KindNumericUnit/KindRange)
	Values    []string // closed value list (KindEnum/KindEnumSet)
	Words     []string // word pool (KindText) and brands (KindModel)
	Context   []string // corpus context words tying synonyms together
}

// Category is a product category with its reference ontology.
type Category struct {
	Name  string
	Props []PropertySpec
}

// PropByCanonical returns the spec with the given canonical name, or nil.
func (c *Category) PropByCanonical(name string) *PropertySpec {
	for i := range c.Props {
		if c.Props[i].Canonical == name {
			return &c.Props[i]
		}
	}
	return nil
}

// FormatStyle captures a source's formatting conventions. Two sources
// rendering the same reference property typically produce lexically
// different values, which is exactly the signal the instance meta-features
// must survive.
type FormatStyle struct {
	UnitIndex    int    // which unit spelling the source prefers
	UnitSpace    bool   // "24MP" vs "24 MP"
	DecimalComma bool   // "24,2" vs "24.2"
	DimSep       string // "x", "×", " x "
	BoolStyle    int    // yes/no, Yes/No, true/false, ✓/–
	PriceStyle   int    // $499.00, 499 USD, €499
	CaseStyle    int    // value casing for enums/text
}

// RandomStyle draws a source-level style.
func RandomStyle(rng *rand.Rand) FormatStyle {
	dimSeps := []string{"x", " x ", "×"}
	return FormatStyle{
		UnitIndex:    rng.Intn(8),
		UnitSpace:    rng.Intn(2) == 0,
		DecimalComma: rng.Intn(5) == 0,
		DimSep:       dimSeps[rng.Intn(len(dimSeps))],
		BoolStyle:    rng.Intn(4),
		PriceStyle:   rng.Intn(3),
		CaseStyle:    rng.Intn(3),
	}
}

// Value is an underlying (style-free) property value: the real-world fact
// a spec sheet expresses. Sampling a Value and rendering it are separate
// so that the dataset generator can give the *same* entity the same
// underlying value in every source while each source renders it in its
// own format — exactly the situation in the DI2KG/WDC data, where the
// same products appear on many sites.
type Value struct {
	Num, Num2 float64 // primary and secondary numbers (dims, ranges)
	Enum      []int   // indices into Values (enum and enum-set kinds)
	Bool      bool
	Text      string // canonical text (model codes, free text)
}

// Sample draws an underlying value for the property. An unknown value
// kind is an input error (specs can arrive from user-defined ontologies),
// not a panic.
func (p *PropertySpec) Sample(rng *rand.Rand) (Value, error) {
	switch p.Kind {
	case KindNumericUnit, KindNumeric, KindPrice:
		return Value{Num: p.sample(rng)}, nil
	case KindDimensions:
		w := p.sample(rng)
		return Value{Num: w, Num2: w * (0.5 + rng.Float64()*0.5)}, nil
	case KindRange:
		lo := p.sample(rng)
		return Value{Num: lo, Num2: lo + (p.Hi-lo)*rng.Float64()}, nil
	case KindEnum:
		if len(p.Values) == 0 {
			return Value{}, nil
		}
		return Value{Enum: []int{rng.Intn(len(p.Values))}}, nil
	case KindEnumSet:
		if len(p.Values) == 0 {
			return Value{}, nil
		}
		k := 1 + rng.Intn(min(3, len(p.Values)))
		return Value{Enum: rng.Perm(len(p.Values))[:k]}, nil
	case KindModel:
		brand := pick(p.Words, rng)
		return Value{Text: fmt.Sprintf("%s %s%d", brand, string(rune('A'+rng.Intn(26))), 100+rng.Intn(900))}, nil
	case KindText:
		k := 2 + rng.Intn(4)
		parts := make([]string, k)
		for i := range parts {
			parts[i] = pick(p.Words, rng)
		}
		return Value{Text: strings.Join(parts, " ")}, nil
	case KindBoolean:
		return Value{Bool: rng.Intn(2) == 0}, nil
	default:
		return Value{}, fmt.Errorf("domain: property %q has unknown value kind %d", p.Canonical, p.Kind)
	}
}

// Render expresses an underlying value under a source's format style.
// rng drives rendering-level noise only (e.g. whether a positive flag is
// elaborated), never the value itself. An unknown value kind is an input
// error, mirroring Sample.
func (p *PropertySpec) Render(v Value, style FormatStyle, rng *rand.Rand) (string, error) {
	switch p.Kind {
	case KindNumericUnit:
		n := p.renderNumber(v.Num, style)
		u := p.unit(style)
		if u == "" {
			return n, nil
		}
		if style.UnitSpace {
			return n + " " + u, nil
		}
		return n + u, nil
	case KindNumeric:
		return p.renderNumber(v.Num, style), nil
	case KindDimensions:
		return fmt.Sprintf("%s%s%s", p.renderNumber(v.Num, style), style.DimSep, p.renderNumber(v.Num2, style)), nil
	case KindRange:
		u := p.unit(style)
		sep := ""
		if style.UnitSpace && u != "" {
			sep = " "
		}
		return fmt.Sprintf("%s-%s%s%s", p.renderNumber(v.Num, style), p.renderNumber(v.Num2, style), sep, u), nil
	case KindEnum:
		if len(v.Enum) == 0 || len(p.Values) == 0 {
			return "", nil
		}
		return applyCase(p.Values[v.Enum[0]%len(p.Values)], style.CaseStyle), nil
	case KindEnumSet:
		parts := make([]string, 0, len(v.Enum))
		for _, idx := range v.Enum {
			if len(p.Values) > 0 {
				parts = append(parts, applyCase(p.Values[idx%len(p.Values)], style.CaseStyle))
			}
		}
		return strings.Join(parts, ", "), nil
	case KindModel:
		return v.Text, nil
	case KindText:
		return applyCase(v.Text, style.CaseStyle), nil
	case KindBoolean:
		s := renderBool(v.Bool, style.BoolStyle)
		// Product pages often elaborate positive flags ("Yes (optical
		// stabilization)"); the elaboration reuses the property's own
		// vocabulary, like real spec sheets.
		if v.Bool && len(p.Context) > 0 && rng.Float64() < 0.5 {
			s += " (" + p.Context[rng.Intn(len(p.Context))] + ")"
		}
		return s, nil
	case KindPrice:
		switch style.PriceStyle {
		case 0:
			return fmt.Sprintf("$%.2f", v.Num), nil
		case 1:
			return fmt.Sprintf("%.0f USD", v.Num), nil
		default:
			return fmt.Sprintf("€%.0f", v.Num), nil
		}
	default:
		return "", fmt.Errorf("domain: property %q has unknown value kind %d", p.Canonical, p.Kind)
	}
}

// Value samples and renders in one step — the independent-values path
// used for noise properties and corpus generation.
func (p *PropertySpec) Value(rng *rand.Rand, style FormatStyle) (string, error) {
	v, err := p.Sample(rng)
	if err != nil {
		return "", err
	}
	return p.Render(v, style, rng)
}

// sample draws a value in [Lo, Hi].
func (p *PropertySpec) sample(rng *rand.Rand) float64 {
	if p.Hi <= p.Lo {
		return p.Lo
	}
	return p.Lo + (p.Hi-p.Lo)*rng.Float64()
}

func (p *PropertySpec) unit(style FormatStyle) string {
	if len(p.Units) == 0 {
		return ""
	}
	return p.Units[style.UnitIndex%len(p.Units)]
}

func (p *PropertySpec) renderNumber(x float64, style FormatStyle) string {
	s := fmt.Sprintf("%.*f", p.Decimals, x)
	if strings.Contains(s, ".") {
		// Trim insignificant fraction digits only — never digits of the
		// integer part ("5410" must stay "5410").
		s = strings.TrimRight(strings.TrimRight(s, "0"), ".")
	}
	if s == "" || s == "-" {
		s = "0"
	}
	if style.DecimalComma {
		s = strings.ReplaceAll(s, ".", ",")
	}
	return s
}

func renderBool(v bool, style int) string {
	switch style {
	case 0:
		if v {
			return "yes"
		}
		return "no"
	case 1:
		if v {
			return "Yes"
		}
		return "No"
	case 2:
		if v {
			return "true"
		}
		return "false"
	default:
		if v {
			return "✓"
		}
		return "–"
	}
}

func applyCase(s string, style int) string {
	switch style {
	case 0:
		return s
	case 1:
		return strings.ToLower(s)
	default:
		return titleCase(s)
	}
}

func titleCase(s string) string {
	parts := strings.Fields(s)
	for i, p := range parts {
		r := []rune(p)
		if len(r) > 0 {
			parts[i] = strings.ToUpper(string(r[0])) + string(r[1:])
		}
	}
	return strings.Join(parts, " ")
}

func pick(xs []string, rng *rand.Rand) string {
	if len(xs) == 0 {
		return ""
	}
	return xs[rng.Intn(len(xs))]
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// SurfaceName returns the surface name a source uses for this property:
// one of the synonyms, decorated with a source-specific naming convention.
// variant selects among the synonyms, convention among naming styles; both
// are chosen per (source, property) by the dataset generator.
func (p *PropertySpec) SurfaceName(variant, convention int) string {
	if len(p.Synonyms) == 0 {
		return decorateName(p.Canonical, convention)
	}
	return decorateName(p.Synonyms[variant%len(p.Synonyms)], convention)
}

// NumNamingConventions is the number of naming conventions decorateName
// supports.
const NumNamingConventions = 5

// decorateName applies a source naming convention to a space-separated
// lowercase surface name.
func decorateName(name string, convention int) string {
	words := strings.Fields(name)
	switch convention % NumNamingConventions {
	case 0: // as-is lowercase, space separated
		return strings.Join(words, " ")
	case 1: // Title Case
		return titleCase(strings.Join(words, " "))
	case 2: // snake_case
		return strings.Join(words, "_")
	case 3: // camelCase
		for i := 1; i < len(words); i++ {
			words[i] = titleCase(words[i])
		}
		return strings.Join(words, "")
	default: // UPPER CASE
		return strings.ToUpper(strings.Join(words, " "))
	}
}
