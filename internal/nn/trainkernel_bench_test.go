package nn

import (
	"context"
	"testing"
)

// The three training-path benchmarks share one workload — 3111
// examples of dim 101 through a 101→128→64→2 ReLU net, two epochs —
// so ns/op is directly comparable across the legacy serial path, the
// legacy chunked path, and the flat kernel the bit-identity suite
// pins to them.

var benchCfg = Config{InDim: 101, Hidden: []int{128, 64}, Out: 2, Activation: ActReLU, Seed: 1}

func benchTrainCfg(workers int) TrainConfig {
	return TrainConfig{Schedule: []Phase{{Epochs: 2, LR: 1e-3}}, BatchSize: 32, Seed: 1, Workers: workers}
}

func BenchmarkFitSerial(b *testing.B) {
	rows, _, ys := tkDataset(3111, 101, 2, 1)
	tc := benchTrainCfg(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n, _ := New(benchCfg)
		if _, err := n.Fit(context.Background(), rows, ys, tc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFitChunked(b *testing.B) {
	rows, _, ys := tkDataset(3111, 101, 2, 1)
	tc := benchTrainCfg(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n, _ := New(benchCfg)
		if _, err := n.Fit(context.Background(), rows, ys, tc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTrainKernel(b *testing.B) {
	_, flat, ys := tkDataset(3111, 101, 2, 1)
	tc := benchTrainCfg(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n, _ := New(benchCfg)
		k, err := NewTrainKernel(n, tc)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := k.Fit(context.Background(), flat, ys); err != nil {
			b.Fatal(err)
		}
	}
}
