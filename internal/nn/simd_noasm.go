//go:build !amd64

package nn

// Non-amd64 builds pin useAVX to false; the AVX entry points are
// declared only so simd.go compiles and are never reached.

func hasAVXAsm() bool { return false }

func fwdrow8AVX(x, w *float64, cols int, acc *float64) {
	panic("nn: AVX kernel on non-amd64 build")
}

func fwd2row8AVX(x, w *float64, cols int, acc *float64) {
	panic("nn: AVX kernel on non-amd64 build")
}

func bwdrow8AVX(d, w, dprev *float64, cols int) {
	panic("nn: AVX kernel on non-amd64 build")
}

func axpySetAVX(dst, x *float64, n int, a float64) {
	panic("nn: AVX kernel on non-amd64 build")
}

func axpyAddAVX(dst, x *float64, n int, a float64) {
	panic("nn: AVX kernel on non-amd64 build")
}

func adamStepAVX(w, grad, mw, vw *float64, n int, b1, b2, om1, om2, c1, c2, eps, lr float64) {
	panic("nn: AVX kernel on non-amd64 build")
}
