package nn

import (
	"fmt"
	"math"

	"leapme/internal/mathx"
)

// QuantKernel is the opt-in int8 inference path: per-row symmetrically
// quantised weights (scale = maxAbs/127) with float32 biases and
// float32 accumulation. It is built deterministically from a trained
// float64 network and, like Kernel, is immutable and scratch-threaded,
// so one QuantKernel serves any number of goroutines.
//
// The quantised path is NOT bit-identical to the float64 reference — it
// trades ~1e-3-level probability error (see the equivalence tests for
// the pinned tolerance) for a smaller working set and an unrolled
// multi-accumulator dot. The float64 Kernel remains the default and the
// reference; a model only scores through a QuantKernel when its
// descriptor carries the quantisation flag.
type QuantKernel struct {
	layers []qkLayer
	w      []int8    // all layer weights, row-major, concatenated
	scale  []float32 // per output row: dequantisation scale
	b      []float32 // per output row: bias
	inDim  int
	outDim int
	// maxWidth fixes the scratch stride, as in Kernel.
	maxWidth int
}

// qkLayer locates one dense layer inside the flat arrays.
type qkLayer struct {
	rows, cols int
	woff       int // offset of the rows×cols int8 block in QuantKernel.w
	roff       int // offset of the per-row scale/bias entries
	act        Activation
}

// NewQuantKernel quantises a trained network. Each weight row r gets a
// symmetric scale s_r = maxAbs(row)/127 and int8 weights
// round(w/s_r) ∈ [-127, 127]; an all-zero row gets scale 0 and zero
// weights, which dequantises exactly to zero. The construction reads
// only the network's parameters, so it is deterministic: quantising the
// same model twice yields byte-identical kernels.
func NewQuantKernel(n *Network) *QuantKernel {
	k := &QuantKernel{inDim: n.inDim, outDim: n.OutDim(), maxWidth: n.inDim}
	var wlen, rlen int
	for _, l := range n.layers {
		wlen += l.w.Rows * l.w.Cols
		rlen += l.w.Rows
		if l.w.Rows > k.maxWidth {
			k.maxWidth = l.w.Rows
		}
	}
	k.w = make([]int8, 0, wlen)
	k.scale = make([]float32, 0, rlen)
	k.b = make([]float32, 0, rlen)
	for _, l := range n.layers {
		k.layers = append(k.layers, qkLayer{
			rows: l.w.Rows, cols: l.w.Cols,
			woff: len(k.w), roff: len(k.scale),
			act: l.act,
		})
		for r := 0; r < l.w.Rows; r++ {
			row := l.w.Row(r)
			var maxAbs float64
			for _, v := range row {
				if a := math.Abs(v); a > maxAbs {
					maxAbs = a
				}
			}
			if maxAbs <= 0 {
				k.scale = append(k.scale, 0)
				for range row {
					k.w = append(k.w, 0)
				}
			} else {
				s := maxAbs / 127
				k.scale = append(k.scale, float32(s))
				for _, v := range row {
					q := math.Round(v / s)
					if q > 127 {
						q = 127
					} else if q < -127 {
						q = -127
					}
					k.w = append(k.w, int8(q))
				}
			}
			k.b = append(k.b, float32(l.b[r]))
		}
	}
	return k
}

// InDim returns the expected input dimension.
func (k *QuantKernel) InDim() int { return k.inDim }

// OutDim returns the number of output classes.
func (k *QuantKernel) OutDim() int { return k.outDim }

// ScratchLen returns the float32 scratch length required by Forward and
// PositiveScore for a single input.
func (k *QuantKernel) ScratchLen() int { return k.inDim + 2*k.maxWidth }

// BatchScratchLen returns the float32 scratch length ForwardBatch
// requires for n inputs.
func (k *QuantKernel) BatchScratchLen(n int) int { return n * (k.inDim + 2*k.maxWidth) }

// forwardRaw32 runs all layers on x (converted to float32 inside
// scratch) and returns the pre-softmax logits as a view into scratch.
func (k *QuantKernel) forwardRaw32(x []float64, scratch []float32) []float32 {
	if len(x) != k.inDim {
		panic(fmt.Sprintf("nn: quant kernel input has dim %d, want %d", len(x), k.inDim))
	}
	if len(scratch) < k.ScratchLen() {
		panic(fmt.Sprintf("nn: quant kernel scratch has len %d, want >= %d", len(scratch), k.ScratchLen()))
	}
	xin := scratch[:k.inDim]
	for i, v := range x {
		xin[i] = float32(v)
	}
	buf0 := scratch[k.inDim : k.inDim+k.maxWidth]
	buf1 := scratch[k.inDim+k.maxWidth : k.inDim+2*k.maxWidth]
	cur := xin
	out := buf0
	for li, l := range k.layers {
		w := k.w[l.woff : l.woff+l.rows*l.cols]
		in := cur[:l.cols]
		for r := 0; r < l.rows; r++ {
			s := mathx.DotQ8(w[r*l.cols:(r+1)*l.cols], in)
			out[r] = l.act.applyF32(s*k.scale[l.roff+r] + k.b[l.roff+r])
		}
		cur = out[:l.rows]
		if li%2 == 0 {
			out = buf1
		} else {
			out = buf0
		}
	}
	return cur
}

// Forward writes the softmax class probabilities for x into dst. The
// softmax itself runs in float64 on the float32 logits, matching the
// reference op order so the only divergence from Kernel.Forward is the
// quantisation itself.
//
//lint:hotpath gated by TestKernelZeroAllocs
func (k *QuantKernel) Forward(dst []float64, x []float64, scratch []float32) {
	if len(dst) != k.outDim {
		panic(fmt.Sprintf("nn: quant kernel output has dim %d, want %d", len(dst), k.outDim))
	}
	softmax32(dst, k.forwardRaw32(x, scratch))
}

// PositiveScore returns the probability of class 1 for x without
// allocating.
//
//lint:hotpath gated by TestKernelZeroAllocs
func (k *QuantKernel) PositiveScore(x []float64, scratch []float32) float64 {
	z := k.forwardRaw32(x, scratch)
	m := float64(z[0])
	for _, v := range z[1:] {
		if float64(v) > m {
			m = float64(v)
		}
	}
	var sum float64
	for _, v := range z {
		sum += math.Exp(float64(v) - m)
	}
	return math.Exp(float64(z[1])-m) / sum
}

// ForwardBatch scores n inputs stored back-to-back in xs (len n*InDim)
// into probs (len n*OutDim), batch-major like Kernel.ForwardBatch.
// scratch must have len >= BatchScratchLen(n).
//
//lint:hotpath gated by TestKernelZeroAllocs
func (k *QuantKernel) ForwardBatch(probs []float64, xs []float64, n int, scratch []float32) {
	if n < 0 || len(xs) != n*k.inDim {
		panic(fmt.Sprintf("nn: quant kernel batch input has len %d, want %d", len(xs), n*k.inDim))
	}
	if len(probs) != n*k.outDim {
		panic(fmt.Sprintf("nn: quant kernel batch output has len %d, want %d", len(probs), n*k.outDim))
	}
	if len(scratch) < k.BatchScratchLen(n) {
		panic(fmt.Sprintf("nn: quant kernel batch scratch has len %d, want >= %d", len(scratch), k.BatchScratchLen(n)))
	}
	if n == 0 {
		return
	}
	xin := scratch[:n*k.inDim]
	for i, v := range xs {
		xin[i] = float32(v)
	}
	buf0 := scratch[n*k.inDim : n*(k.inDim+k.maxWidth)]
	buf1 := scratch[n*(k.inDim+k.maxWidth) : n*(k.inDim+2*k.maxWidth)]
	cur, curStride := xin, k.inDim
	out := buf0
	for li, l := range k.layers {
		w := k.w[l.woff : l.woff+l.rows*l.cols]
		for r := 0; r < l.rows; r++ {
			row := w[r*l.cols : (r+1)*l.cols]
			sc, bv := k.scale[l.roff+r], k.b[l.roff+r]
			for p := 0; p < n; p++ {
				s := mathx.DotQ8(row, cur[p*curStride:p*curStride+l.cols])
				out[p*k.maxWidth+r] = l.act.applyF32(s*sc + bv)
			}
		}
		cur, curStride = out, k.maxWidth
		if li%2 == 0 {
			out = buf1
		} else {
			out = buf0
		}
	}
	for p := 0; p < n; p++ {
		softmax32(probs[p*k.outDim:(p+1)*k.outDim], cur[p*k.maxWidth:p*k.maxWidth+k.outDim])
	}
}

// applyF32 is the float32 twin of apply. ReLU stays exact; the
// transcendental activations route through the float64 math package and
// round once, which keeps the float32 path within the documented
// equivalence tolerance.
func (a Activation) applyF32(x float32) float32 {
	switch a {
	case ActReLU:
		if x > 0 {
			return x
		}
		return 0
	case ActSigmoid:
		return float32(1 / (1 + math.Exp(float64(-x))))
	case ActTanh:
		return float32(math.Tanh(float64(x)))
	default:
		return x
	}
}

// softmax32 writes a numerically stable softmax of the float32 logits z
// into the float64 dst, using the same max-shift/exp/normalise order as
// softmax.
func softmax32(dst []float64, z []float32) {
	m := float64(z[0])
	for _, v := range z[1:] {
		if float64(v) > m {
			m = float64(v)
		}
	}
	var sum float64
	for i, v := range z {
		e := math.Exp(float64(v) - m)
		dst[i] = e
		sum += e
	}
	for i := range dst {
		dst[i] /= sum
	}
}
